(* swarm: randomized fault-injection swarm checker.

   Honest mode: generate one adversarial-but-within-model scenario per
   seed, run it, and judge it with the invariant oracles; any violation
   is a protocol (or oracle) bug, reported with the exact command that
   replays it, plus a greedily shrunk fault script.

   Sabotage mode (--sabotage): same machinery, but the commit quorum is
   deliberately weakened through the commit_quorum knob (all the way to
   commit-on-sight — see scenario.ml for why intermediate quorums stay
   safe under honest RBC) while the schedule hides the predicted wave
   leader; the run FAILS unless the oracle catches at least one
   agreement violation. This is the oracle's own regression test: it
   proves the checker can actually see disagreement.

   Examples:
     dune exec bin/swarm.exe -- --seeds 200
     dune exec bin/swarm.exe -- --seeds 100 --quick        # CI smoke
     dune exec bin/swarm.exe -- --seed 7 --verbose         # replay one
     dune exec bin/swarm.exe -- --seeds 30 --sabotage      # oracle self-test *)

open Cmdliner

let seeds_arg =
  Arg.(
    value & opt int 50
    & info [ "seeds" ] ~docv:"K" ~doc:"Run $(docv) consecutive seeds.")

let seed_arg =
  Arg.(
    value & opt (some int) None
    & info [ "seed" ] ~docv:"N"
        ~doc:"Replay exactly one seed (overrides --seeds/--base).")

let base_arg =
  Arg.(
    value & opt int 1
    & info [ "base" ] ~docv:"B" ~doc:"First seed of the sweep (default 1).")

let quick_arg =
  Arg.(
    value & flag
    & info [ "quick" ] ~doc:"Smaller fleets and shorter horizons (CI smoke).")

let sabotage_arg =
  Arg.(
    value & flag
    & info [ "sabotage" ]
        ~doc:
          "Deliberately weaken the commit quorum (and hide the predicted \
           wave leader) and demand the oracle catches the resulting \
           agreement violation (oracle self-test).")

let verbose_arg =
  Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-seed output.")

let rule_arg =
  let rule_conv =
    Arg.enum
      (List.map
         (fun r -> (r.Dagrider.Ordering.rule_name, r))
         Dagrider.Ordering.rules)
  in
  Arg.(
    value & opt rule_conv Dagrider.Ordering.dag_rider
    & info [ "rule" ] ~docv:"RULE"
        ~doc:
          "Commit rule every scenario runs under: dagrider or bullshark. \
           The scenario sampled for a seed is the same either way — only \
           the ordering layer differs. In sabotage mode the hidden victim \
           is the rule's own predicted leader.")

let attack_arg =
  let strategy_conv =
    Arg.enum
      (List.map (fun s -> (Attack.strategy_label s, s)) Attack.all_strategies)
  in
  Arg.(
    value & opt (some strategy_conv) None
    & info [ "attack" ] ~docv:"STRATEGY"
        ~doc:
          "Force a programmable Byzantine adversary into every scenario: \
           $(b,equivocate), $(b,withhold), $(b,grind), $(b,bias) or \
           $(b,lying-sync). The forced adversary replaces the seed's \
           sampled static faults (restarts are kept, and a forced \
           lying-sync run gains one if the seed sampled none); its \
           victims are drawn from the run's own seeded stream. Sampled \
           scenarios already include adversaries without this flag — use \
           it to pin the strategy. Ignored in sabotage mode.")

let weaken_sync_arg =
  Arg.(
    value & flag
    & info [ "weaken-sync" ]
        ~doc:
          "Planted-vulnerability self-test: run every fleet with the \
           deliberately weakened sync validator (any single responder is \
           trusted during catch-up), force a lying-sync adversary unless \
           --attack says otherwise, and FAIL unless the oracles catch the \
           resulting corruption (sync-lie / equivocation violations).")

let loss_arg =
  Arg.(
    value & opt (some float) None
    & info [ "loss" ] ~docv:"P"
        ~doc:
          "Force lossy links: drop each message with probability $(docv) \
           (0 <= P < 1). Combines with --dup/--corrupt/--reorder; any of \
           the four enables the ack/retransmit transport on every \
           scenario (ignored in sabotage mode).")

let dup_arg =
  Arg.(
    value & opt (some float) None
    & info [ "dup" ] ~docv:"P"
        ~doc:"Force lossy links: duplicate each message with probability \
              $(docv).")

let corrupt_arg =
  Arg.(
    value & opt (some float) None
    & info [ "corrupt" ] ~docv:"P"
        ~doc:"Force lossy links: bit-corrupt each message with probability \
              $(docv).")

let reorder_arg =
  Arg.(
    value & opt (some float) None
    & info [ "reorder" ] ~docv:"P"
        ~doc:"Force lossy links: add reordering delay to each message with \
              probability $(docv).")

let lossy_of_flags ~loss ~dup ~corrupt ~reorder =
  match (loss, dup, corrupt, reorder) with
  | None, None, None, None -> None
  | _ ->
    let get = Option.value ~default:0.0 in
    Some
      { Harness.Runner.lf_drop = get loss;
        lf_duplicate = get dup;
        lf_corrupt = get corrupt;
        lf_reorder = get reorder }

(* re-run the (shrunk) failing scenario with tracing — runs are pure
   functions of the seed, so the traced re-run reproduces the failing
   execution (honest AND sabotage mode: trace_scenario replays the
   weakened quorum and leader-hiding schedule too) — drop the event log
   and a per-wave certificate digest under traces/ next to the repro
   command, and attach the protocol analyzer's anomaly summary so the
   first triage pass needs no tooling *)
let traces_dir = "traces"

let dump_trace (sc : Check.Scenario.t) =
  let tracer = Check.Swarm.trace_scenario sc in
  (if not (Sys.file_exists traces_dir) then Sys.mkdir traces_dir 0o755);
  let path =
    Filename.concat traces_dir
      (Printf.sprintf "swarm-seed%d.trace.jsonl" sc.Check.Scenario.seed)
  in
  let oc = open_out path in
  output_string oc (Trace.to_jsonl tracer);
  close_out oc;
  Printf.printf "  trace: %s (%s mode; %d events retained, %d dropped)\n" path
    (if sc.Check.Scenario.sabotage then "sabotage" else "honest")
    (List.length (Trace.events tracer))
    (Trace.dropped tracer);
  (* the forensics sink sees the whole stream even past ring wrap:
     summarize every node's wave stories so triage can see who decided
     what without replaying the trace *)
  let fx = Forensics.of_events (Trace.events tracer) in
  (match Forensics.nodes fx with
  | [] -> ()
  | nodes ->
    let explain_path =
      Filename.concat traces_dir
        (Printf.sprintf "swarm-seed%d.explain.txt" sc.Check.Scenario.seed)
    in
    let oc = open_out explain_path in
    output_string oc
      (Printf.sprintf "%s\n\n" (Check.Scenario.describe sc));
    List.iter
      (fun node ->
        output_string oc (Forensics.summary fx ~node);
        output_char oc '\n')
      nodes;
    close_out oc;
    Printf.printf "  explain: %s (certificate stories of %d node(s))\n"
      explain_path (List.length nodes));
  (* the analyzer sees only the ring's retained window; truncation is
     reported inside the summary rather than hidden *)
  let rule =
    Harness.Runner.effective_rule (Check.Scenario.to_options sc)
  in
  let config =
    { Analyze.default_config with
      wave_length = rule.Dagrider.Ordering.rule_wave_length;
      rule_name = rule.Dagrider.Ordering.rule_name;
      round_robin_n =
        (match rule.Dagrider.Ordering.rule_schedule with
        | Dagrider.Ordering.Coin -> None
        | Dagrider.Ordering.Round_robin -> Some sc.Check.Scenario.n);
      waves_bound = rule.Dagrider.Ordering.rule_bound;
      f = Some sc.Check.Scenario.f;
      byzantine = Check.Scenario.faulty_nodes sc }
  in
  let report = Analyze.analyze ~config (Trace.events tracer) in
  List.iter
    (fun line -> if line <> "" then Printf.printf "  %s\n" line)
    (String.split_on_char '\n' (Analyze.render_anomalies report));
  (* the critical path of the last committed wave: where did the final
     commit's latency go before everything stopped? *)
  let cp = Critpath.analyze (Trace.events tracer) in
  match
    List.find_opt
      (fun p -> p.Critpath.p_complete)
      (List.rev cp.Critpath.r_paths)
  with
  | None -> ()
  | Some p ->
    Printf.printf "  last committed wave (observer p%d):\n" cp.Critpath.r_observer;
    List.iter
      (fun line -> if line <> "" then Printf.printf "    %s\n" line)
      (String.split_on_char '\n' (Critpath.waterfall p));
    (match cp.Critpath.r_stragglers with
    | (node, count, total) :: _ ->
      Printf.printf "    slowest quorum member: p%d (%d commit(s), %.3f waited)\n"
        node count total
    | [] -> ())

let print_failure (o : Check.Swarm.outcome) =
  Printf.printf "FAIL %s\n" (Check.Scenario.describe o.Check.Swarm.scenario);
  List.iter
    (fun v -> Printf.printf "  %s\n" (Check.Oracle.pp v))
    o.Check.Swarm.violations;
  (match o.Check.Swarm.scenario.Check.Scenario.faults with
  | [] -> ()
  | faults ->
    Printf.printf "  shrunk fault script: [%s]\n"
      (String.concat "; " (List.map Check.Scenario.describe_fault faults)));
  Printf.printf "  repro: %s\n"
    (Check.Swarm.repro_command o.Check.Swarm.scenario);
  dump_trace o.Check.Swarm.scenario

let summarize ~sabotage ~weaken_sync (report : Check.Swarm.report) =
  let failed = List.length report.Check.Swarm.failures in
  Printf.printf
    "\nswarm: %d scenario(s), %d with violations, %d agreement violation(s)\n"
    report.Check.Swarm.runs failed report.Check.Swarm.agreement_violations;
  if weaken_sync && not sabotage then begin
    (* the planted corruption surfaces either as the attack-informed
       sync-lie check or as plain cross-node equivocation once the
       honest copy of a poisoned slot arrives elsewhere *)
    let caught =
      List.fold_left
        (fun acc (o : Check.Swarm.outcome) ->
          acc
          + List.length
              (List.filter
                 (fun (v : Check.Oracle.violation) ->
                   v.Check.Oracle.invariant = "sync-lie"
                   || v.Check.Oracle.invariant = "equivocation")
                 o.Check.Swarm.violations))
        0 report.Check.Swarm.failures
    in
    if caught > 0 then begin
      Printf.printf
        "weaken-sync: oracle caught the planted sync corruption (%d \
         violation(s)) — self-test PASSED\n"
        caught;
      0
    end
    else begin
      print_endline
        "weaken-sync: planted sync corruption went uncaught — the sync \
         oracles are blind! self-test FAILED";
      1
    end
  end
  else if sabotage then
    if report.Check.Swarm.agreement_violations > 0 then begin
      print_endline
        "sabotage: oracle caught the weakened quorum — self-test PASSED";
      0
    end
    else begin
      print_endline
        "sabotage: no agreement violation caught — the oracle is blind! \
         self-test FAILED";
      1
    end
  else if failed = 0 then begin
    print_endline "all invariants held";
    0
  end
  else 1

let main seeds seed base quick sabotage verbose rule attack weaken_sync loss
    dup corrupt reorder =
  if seeds < 1 && seed = None then begin
    (* a zero-seed sweep would vacuously report "all invariants held"
       and green-light a typo'd CI invocation *)
    prerr_endline "swarm: --seeds must be at least 1";
    exit 2
  end;
  let seed_list =
    match seed with
    | Some s -> [ s ]
    | None -> List.init seeds (fun i -> base + i)
  in
  let verbose = verbose || seed <> None in
  let progress ~seed (o : Check.Swarm.outcome) =
    ignore seed;
    if o.Check.Swarm.violations <> [] then print_failure o
    else if verbose then
      Printf.printf "ok   %s  delivered=%d..%d commits=%d events=%d\n"
        (Check.Scenario.describe o.Check.Swarm.scenario)
        o.Check.Swarm.delivered_min o.Check.Swarm.delivered_max
        o.Check.Swarm.commits o.Check.Swarm.events
  in
  let lossy = lossy_of_flags ~loss ~dup ~corrupt ~reorder in
  let attack =
    match attack with
    | Some strategy -> Some { Attack.strategy; victims = [] }
    | None ->
      (* the weakened validator is only interesting with someone lying
         to it *)
      if weaken_sync then
        Some { Attack.strategy = Attack.Lying_sync; victims = [] }
      else None
  in
  let report =
    Check.Swarm.run_seeds ~sabotage ~quick ?lossy ?attack ~weaken_sync ~rule
      ~progress ~seeds:seed_list ()
  in
  summarize ~sabotage ~weaken_sync report

let cmd =
  Cmd.v
    (Cmd.info "swarm" ~version:"1.0.0"
       ~doc:
         "Randomized fault-injection swarm checker for the DAG-Rider \
          reproduction.")
    Term.(
      const main $ seeds_arg $ seed_arg $ base_arg $ quick_arg $ sabotage_arg
      $ verbose_arg $ rule_arg $ attack_arg $ weaken_sync_arg $ loss_arg
      $ dup_arg $ corrupt_arg $ reorder_arg)

let () = exit (Cmd.eval' cmd)
