(* dagrider_run: command-line driver for simulations and figure
   regeneration.

   Subcommands:
     run           simulate a fleet and print a summary
     trace         simulate with structured tracing, render the timeline
     analyze       run the protocol analyzer (live run or replayed JSONL)
     critpath      per-commit causal critical path and latency attribution
     explain       render the provenance certificate of a commit/skip
     divergence    first divergent decision between two trace dumps
     profile       simulate under the span profiler, print the hot-span table
     monitor       sustained-load run under the flight recorder: dashboard,
                   SLO health checks, CSV/JSON time-series export
     dot           render the DAG as Graphviz with leader/commit classes
     render-dag    regenerate Figure 1: a live DAG rendered as ASCII/DOT
     render-commit regenerate Figure 2: the cross-wave commit narrative
     experiments   print every experiment table (same as bench default)

   Examples:
     dune exec bin/dagrider_run.exe -- run -n 7 --backend avid --until 60
     dune exec bin/dagrider_run.exe -- run -n 7 --crash 5 --crash 6
     dune exec bin/dagrider_run.exe -- trace -n 4 --limit 80
     dune exec bin/dagrider_run.exe -- trace -n 4 --jsonl run.trace.jsonl
     dune exec bin/dagrider_run.exe -- analyze -n 4 --until 200
     dune exec bin/dagrider_run.exe -- analyze --jsonl run.trace.jsonl
     dune exec bin/dagrider_run.exe -- explain -n 4 --until 200 --wave 3
     dune exec bin/dagrider_run.exe -- explain --jsonl run.trace.jsonl --json
     dune exec bin/dagrider_run.exe -- divergence a.trace.jsonl b.trace.jsonl
     dune exec bin/dagrider_run.exe -- profile -n 7 --until 100 --top 12
     dune exec bin/dagrider_run.exe -- profile --folded out.folded
     dune exec bin/dagrider_run.exe -- dot -n 4 --rounds 12 > dag.dot
     dune exec bin/dagrider_run.exe -- render-dag --dot
     dune exec bin/dagrider_run.exe -- render-commit *)

open Cmdliner

(* ---- shared options ----

   Every simulating subcommand takes the same fleet-shaping flags; they
   are parsed once here into a [Common.t] so a new subcommand (like
   [profile]) gets the full set — backends, schedulers, faults, lossy
   links — without duplicating a single [Arg] definition. *)

module Common = struct
  type t = {
    n : int;
    seed : int;
    backend : Harness.Runner.backend;
    rule : Dagrider.Ordering.rule;
    schedule : Harness.Runner.schedule;
    crashes : int list;
    byzantines : int list;
    block_bytes : int;
    until : float;
    link_faults : Harness.Runner.link_faults option;
  }

  let n_arg =
    Arg.(value & opt int 4 & info [ "n" ] ~docv:"N" ~doc:"Number of processes.")

  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"RNG seed.")

  let until_arg =
    Arg.(
      value & opt float 50.0
      & info [ "until" ] ~docv:"TIME" ~doc:"Virtual time horizon.")

  let backend_arg =
    let backend_conv =
      Arg.enum
        [ ("bracha", Harness.Runner.Bracha);
          ("avid", Harness.Runner.Avid);
          ("gossip", Harness.Runner.Gossip) ]
    in
    Arg.(
      value & opt backend_conv Harness.Runner.Bracha
      & info [ "backend" ] ~docv:"RBC"
          ~doc:"Reliable broadcast: bracha|avid|gossip.")

  let rule_arg =
    let rule_conv =
      Arg.enum
        (List.map
           (fun r -> (r.Dagrider.Ordering.rule_name, r))
           Dagrider.Ordering.rules)
    in
    Arg.(
      value & opt rule_conv Dagrider.Ordering.dag_rider
      & info [ "rule" ] ~docv:"RULE"
          ~doc:
            "Commit rule: dagrider (4-round waves, coin leaders, 2f+1) or \
             bullshark (2-round waves, round-robin leaders, f+1).")

  let sched_arg =
    let sched_conv =
      Arg.enum
        [ ("sync", Harness.Runner.Synchronous);
          ("uniform", Harness.Runner.Uniform_random);
          ("skewed", Harness.Runner.Skewed_random) ]
    in
    Arg.(
      value & opt sched_conv Harness.Runner.Uniform_random
      & info [ "sched" ] ~docv:"SCHED"
          ~doc:"Message schedule: sync|uniform|skewed.")

  let crash_arg =
    Arg.(
      value & opt_all int []
      & info [ "crash" ] ~docv:"PID" ~doc:"Crash this process (repeatable).")

  let byz_arg =
    Arg.(
      value & opt_all int []
      & info [ "byzantine" ] ~docv:"PID"
          ~doc:"Byzantine-but-live process (repeatable).")

  let block_bytes_arg =
    Arg.(
      value & opt int 64
      & info [ "block-bytes" ] ~docv:"BYTES" ~doc:"Synthetic block size.")

  (* lossy-link rates; any nonzero rate switches every protocol stack onto
     the ack/retransmit transport (Harness.Runner.options.link_faults) *)
  let lossy_term =
    let loss =
      Arg.(
        value & opt float 0.0
        & info [ "loss" ] ~docv:"P"
            ~doc:"Drop each message with probability $(docv) (0 <= P < 1).")
    in
    let dup =
      Arg.(
        value & opt float 0.0
        & info [ "dup" ] ~docv:"P"
            ~doc:"Duplicate each message with probability $(docv).")
    in
    let corrupt =
      Arg.(
        value & opt float 0.0
        & info [ "corrupt" ] ~docv:"P"
            ~doc:"Bit-corrupt each message with probability $(docv).")
    in
    let reorder =
      Arg.(
        value & opt float 0.0
        & info [ "reorder" ] ~docv:"P"
            ~doc:
              "Add reordering delay to each message with probability $(docv).")
    in
    let mk lf_drop lf_duplicate lf_corrupt lf_reorder =
      if
        lf_drop = 0.0 && lf_duplicate = 0.0 && lf_corrupt = 0.0
        && lf_reorder = 0.0
      then None
      else Some { Harness.Runner.lf_drop; lf_duplicate; lf_corrupt; lf_reorder }
    in
    Term.(const mk $ loss $ dup $ corrupt $ reorder)

  (* shared trace-I/O flags, defined once so every subcommand agrees on
     names, docv and wording: [replay_jsonl_arg] reads a dump back in
     (analyze / explain / critpath), [dump_jsonl_arg] writes one out
     (trace / monitor), [json_file_arg] exports a report to a file, and
     [json_flag_arg] switches stdout rendering to JSON *)
  let replay_jsonl_arg =
    Arg.(
      value & opt (some string) None
      & info [ "jsonl" ] ~docv:"FILE"
          ~doc:
            "Replay a trace dumped by `trace --jsonl` (or a swarm failure \
             repro) instead of running a fresh simulation.")

  let dump_jsonl_arg ~doc =
    Arg.(value & opt (some string) None & info [ "jsonl" ] ~docv:"FILE" ~doc)

  let json_file_arg ~doc =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

  let json_flag_arg =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit JSON instead of text.")

  let term =
    let mk n seed backend rule schedule crashes byzantines block_bytes until
        link_faults =
      { n;
        seed;
        backend;
        rule;
        schedule;
        crashes;
        byzantines;
        block_bytes;
        until;
        link_faults }
    in
    Term.(
      const mk $ n_arg $ seed_arg $ backend_arg $ rule_arg $ sched_arg
      $ crash_arg $ byz_arg $ block_bytes_arg $ until_arg $ lossy_term)

  let options ?trace c =
    let faults =
      List.map (fun i -> Harness.Runner.Crash i) c.crashes
      @ List.map (fun i -> Harness.Runner.Byzantine_live i) c.byzantines
    in
    { (Harness.Runner.default_options ~n:c.n) with
      seed = c.seed;
      backend = c.backend;
      rule = c.rule;
      schedule = c.schedule;
      faults;
      block_bytes = c.block_bytes;
      link_faults = c.link_faults;
      trace }

  let build ?trace c = Harness.Runner.build (options ?trace c)
end

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

(* ---- run ---- *)

let run_cmd =
  let run (c : Common.t) =
    let fleet = Common.build c in
    Harness.Runner.run fleet ~until:c.until;
    Printf.printf "%-8s %-10s %-7s %-7s %-7s\n" "process" "delivered" "round"
      "waves" "status";
    Array.iteri
      (fun i node ->
        Printf.printf "p%-7d %-10d %-7d %-7d %s\n" i
          (Dagrider.Ordering.delivered_count (Dagrider.Node.ordering node))
          (Dagrider.Node.current_round node)
          (Dagrider.Node.waves_completed node)
          (if Harness.Runner.is_correct fleet i then "correct" else "faulty"))
      (Harness.Runner.nodes fleet);
    (match Harness.Runner.check_total_order fleet with
    | Ok () -> print_endline "\ntotal order: OK"
    | Error e -> Printf.printf "\ntotal order: VIOLATED (%s)\n" e);
    Printf.printf "honest bits sent: %d (%d messages total)\n"
      (Harness.Runner.honest_bits fleet)
      (Metrics.Counters.total_messages (Harness.Runner.counters fleet));
    List.iteri
      (fun i (kind, bits) ->
        if i < 6 then Printf.printf "  %-16s %d bits\n" kind bits)
      (Metrics.Counters.bits_by_kind (Harness.Runner.counters fleet));
    if c.link_faults <> None then begin
      let ls = Harness.Runner.link_stats fleet in
      Printf.printf
        "lossy links: %d data frames, %d retransmits, %d gave up, %d dups \
         suppressed, %d corrupt rejected\n"
        ls.Net.Link.data_sent ls.Net.Link.retransmits ls.Net.Link.gave_up
        ls.Net.Link.dup_suppressed ls.Net.Link.corrupt_rejected;
      match Harness.Runner.drop_counts fleet with
      | [] -> ()
      | drops ->
        Printf.printf "  drops: %s\n"
          (String.concat ", "
             (List.map
                (fun (reason, c) -> Printf.sprintf "%s=%d" reason c)
                drops))
    end
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Simulate a DAG-Rider fleet and print a summary.")
    Term.(const run $ Common.term)

(* ---- trace ---- *)

let trace_cmd =
  let run (c : Common.t) limit jsonl_out =
    let tracer = Trace.create () in
    let fleet = Common.build ~trace:tracer c in
    Harness.Runner.run fleet ~until:c.until;
    (match jsonl_out with
    | Some path ->
      let oc = open_out path in
      output_string oc (Trace.to_jsonl tracer);
      close_out oc;
      Printf.printf "wrote %d events to %s (%d emitted, %d dropped)\n"
        (List.length (Trace.events tracer))
        path (Trace.emitted tracer) (Trace.dropped tracer)
    | None -> print_string (Trace.render_timeline ?limit tracer));
    Printf.printf
      "\nrun summary: n=%d seed=%d until=%.0f; delivered at p0: %d vertices\n"
      c.n c.seed c.until
      (Dagrider.Ordering.delivered_count
         (Dagrider.Node.ordering (Harness.Runner.node fleet 0)))
  in
  let limit_arg =
    Arg.(
      value & opt (some int) (Some 120)
      & info [ "limit" ] ~docv:"K"
          ~doc:"Show only the newest $(docv) events (use --limit -1 for all).")
  in
  let jsonl_arg =
    Common.dump_jsonl_arg
      ~doc:"Dump the trace as JSONL to $(docv) instead of rendering."
  in
  let normalize_limit = function Some k when k < 0 -> None | l -> l in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Simulate with structured tracing and render the event timeline \
          (sends/recvs, RBC phases, rounds, coin flips, leaders, commits).")
    Term.(
      const (fun c limit jsonl -> run c (normalize_limit limit) jsonl)
      $ Common.term $ limit_arg $ jsonl_arg)

(* ---- analyze ---- *)

let analyze_cmd =
  let run (c : Common.t) jsonl json_out =
    let report =
      match jsonl with
      | Some path ->
        (match Analyze.of_jsonl_file path with
        | Ok report -> report
        | Error e ->
          Printf.eprintf "analyze: %s\n" e;
          exit 1)
      | None ->
        let tracer = Trace.create ~capacity:4096 () in
        let fleet = Common.build ~trace:tracer c in
        Harness.Runner.run fleet ~until:c.until;
        Option.get (Harness.Runner.analysis fleet)
    in
    (match json_out with
    | Some path ->
      write_file path (Stdx.Json.to_string (Analyze.report_to_json report));
      Printf.printf "wrote analysis report to %s\n\n" path
    | None -> ());
    if report.Analyze.r_truncated then
      print_string
        "WARNING: trace is TRUNCATED (ring wrapped before the first event \
         seen) — head-dependent numbers are lower bounds\n";
    print_string (Analyze.render report)
  in
  let jsonl_arg = Common.replay_jsonl_arg in
  let json_arg =
    Common.json_file_arg ~doc:"Also write the full report as JSON to $(docv)."
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Run the protocol analyzer: commit-latency breakdown per stage, \
          per-wave commit/skip records vs the paper's 3/2 bound, round \
          skew, RBC phase durations, chain quality, and anomaly detection \
          — over a live traced run or a replayed JSONL trace.")
    Term.(const run $ Common.term $ jsonl_arg $ json_arg)

(* ---- critpath (causal critical-path attribution) ---- *)

let critpath_cmd =
  let run (c : Common.t) jsonl node top json dot_out =
    (* both collectors run over the same event source so the cross-check
       compares like with like; on live runs they stream through sinks
       and see the whole run even past ring wrap *)
    let cp_report, an_report =
      match jsonl with
      | Some path -> (
        match Analyze.of_jsonl_file path with
        | Error e ->
          Printf.eprintf "critpath: %s\n" e;
          exit 1
        | Ok ar ->
          let observer =
            match node with Some p -> p | None -> ar.Analyze.r_observer
          in
          let config =
            { Critpath.default_config with observer = Some observer }
          in
          (match Critpath.of_jsonl_file ~config path with
          | Error e ->
            Printf.eprintf "critpath: %s\n" e;
            exit 1
          | Ok rep -> (rep, ar)))
      | None ->
        let tracer = Trace.create ~capacity:4096 () in
        let fleet = Common.build ~trace:tracer c in
        Harness.Runner.run fleet ~until:c.until;
        let cp = Option.get (Harness.Runner.critpath fleet) in
        let config = { Critpath.default_config with observer = node } in
        (Critpath.finalize ~config cp, Option.get (Harness.Runner.analysis fleet))
    in
    let checks =
      if cp_report.Critpath.r_observer = an_report.Analyze.r_observer then
        Critpath.cross_check cp_report an_report
      else
        [ Printf.sprintf
            "(cross-check skipped: critpath observer p%d, analyzer observer \
             p%d)"
            cp_report.Critpath.r_observer an_report.Analyze.r_observer ]
    in
    if json then
      print_endline
        (Stdx.Json.to_string
           (Stdx.Json.Obj
              [ ("critpath", Critpath.report_to_json cp_report);
                ( "cross_check",
                  Stdx.Json.List
                    (List.map (fun s -> Stdx.Json.String s) checks) ) ]))
    else begin
      print_string (Critpath.render ~top cp_report);
      print_string "\ncross-check vs analyzer stage histograms:\n";
      List.iter (fun line -> Printf.printf "  %s\n" line) checks
    end;
    match dot_out with
    | None -> ()
    | Some path -> (
      (* export the slowest complete commit's causal chain *)
      let slowest =
        List.fold_left
          (fun acc p ->
            if not p.Critpath.p_complete then acc
            else
              match acc with
              | Some best when best.Critpath.p_total >= p.Critpath.p_total ->
                acc
              | _ -> Some p)
          None cp_report.Critpath.r_paths
      in
      match slowest with
      | None -> prerr_endline "critpath: no complete path to export as DOT"
      | Some p ->
        write_file path (Critpath.dot_path p);
        Printf.eprintf "wrote critical path of (r%d,p%d) to %s\n"
          p.Critpath.p_round p.Critpath.p_source path)
  in
  let jsonl_arg = Common.replay_jsonl_arg in
  let node_arg =
    Arg.(
      value & opt (some int) None
      & info [ "node" ] ~docv:"P"
          ~doc:
            "Reconstruct from process $(docv)'s vantage (default: the \
             analyzer's observer).")
  in
  let top_arg =
    Arg.(
      value & opt int 3
      & info [ "top" ] ~docv:"K"
          ~doc:"Render waterfalls for the $(docv) slowest commits.")
  in
  let dot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Write the slowest commit's causal chain as Graphviz to $(docv).")
  in
  Cmd.v
    (Cmd.info "critpath"
       ~doc:
         "Reconstruct the cross-node causal critical path of every committed \
          vertex from correlation-id tracing and attribute its end-to-end \
          latency to segments: handler hold, retransmit stall, network \
          transit, RBC quorum wait (naming the straggler), DAG-insert wait \
          and ordering wait — with per-segment digests, straggler and \
          slowest-link tables, ASCII waterfalls, and a cross-check against \
          the protocol analyzer's stage histograms.")
    Term.(
      const run $ Common.term $ jsonl_arg $ node_arg $ top_arg
      $ Common.json_flag_arg $ dot_arg)

(* ---- explain (commit forensics) ---- *)

(* Parse "ROUND,SOURCE" (also accepts "ROUND:SOURCE"). *)
let vref_conv =
  let parse s =
    let s = String.map (function ':' -> ',' | c -> c) s in
    match String.split_on_char ',' s with
    | [ r; p ] -> (
      match (int_of_string_opt (String.trim r), int_of_string_opt (String.trim p)) with
      | Some r, Some p -> Ok (r, p)
      | _ -> Error (`Msg (Printf.sprintf "bad vertex %S (want ROUND,SOURCE)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad vertex %S (want ROUND,SOURCE)" s))
  in
  let print ppf (r, p) = Format.fprintf ppf "%d,%d" r p in
  Arg.conv (parse, print)

(* Build a forensics collector either from a replayed JSONL dump or by
   running a fresh traced fleet with the shared flags — the same two
   sources [analyze] reads from. *)
let forensics_of (c : Common.t) jsonl =
  match jsonl with
  | Some path ->
    (match Forensics.of_jsonl_file path with
    | Ok fx -> fx
    | Error e ->
      Printf.eprintf "explain: %s\n" e;
      exit 1)
  | None ->
    let tracer = Trace.create ~capacity:4096 () in
    let fleet = Common.build ~trace:tracer c in
    Harness.Runner.run fleet ~until:c.until;
    (match Harness.Runner.forensics fleet with
    | Some fx -> fx
    | None ->
      prerr_endline "explain: traced run produced no forensics collector";
      exit 1)

let explain_cmd =
  let run (c : Common.t) jsonl node wave vertex json =
    let fx = forensics_of c jsonl in
    let node =
      match node with
      | Some n -> n
      | None -> (
        match Forensics.observer fx with
        | Some n -> n
        | None ->
          prerr_endline
            "explain: no provenance certificates in this run (pre-certificate \
             trace?)";
          exit 1)
    in
    match (wave, vertex) with
    | Some _, Some _ ->
      prerr_endline "explain: --wave and --vertex are mutually exclusive";
      exit 1
    | Some w, None ->
      if json then
        print_endline (Stdx.Json.to_string (Forensics.explain_wave_json fx ~node ~wave:w))
      else print_string (Forensics.explain_wave fx ~node ~wave:w)
    | None, Some (round, source) ->
      if json then
        print_endline
          (Stdx.Json.to_string (Forensics.explain_vertex_json fx ~node ~round ~source))
      else print_string (Forensics.explain_vertex fx ~node ~round ~source)
    | None, None ->
      if json then
        let stories = Forensics.stories fx ~node in
        print_endline
          (Stdx.Json.to_string
             (Stdx.Json.List
                (List.map
                   (fun st -> Forensics.explain_wave_json fx ~node ~wave:st.Forensics.st_wave)
                   stories)))
      else print_string (Forensics.summary fx ~node)
  in
  let jsonl_arg = Common.replay_jsonl_arg in
  let node_arg =
    Arg.(
      value & opt (some int) None
      & info [ "node" ] ~docv:"P"
          ~doc:
            "Explain from process $(docv)'s certificates (default: the node \
             with the most).")
  in
  let wave_arg =
    Arg.(
      value & opt (some int) None
      & info [ "wave" ] ~docv:"W" ~doc:"Explain wave $(docv)'s decision.")
  in
  let vertex_arg =
    Arg.(
      value & opt (some vref_conv) None
      & info [ "vertex" ] ~docv:"R,P"
          ~doc:
            "Explain the commit that ordered vertex (round $(b,R), process \
             $(b,P)).")
  in
  let json_arg = Common.json_flag_arg in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Render the provenance certificate chain behind any ordering \
          decision: the wave's leader and schedule evidence, the exact \
          supporting quorum, the chain-back path for retroactive commits, \
          and — for skipped waves — why no commit was legal. Default (no \
          --wave/--vertex) prints the one-line-per-wave story summary.")
    Term.(
      const run $ Common.term $ jsonl_arg $ node_arg $ wave_arg $ vertex_arg
      $ json_arg)

(* ---- divergence (first divergent decision of two runs) ---- *)

let divergence_cmd =
  let run file_a file_b node_a node_b json =
    let load label path =
      match Forensics.of_jsonl_file path with
      | Ok fx -> fx
      | Error e ->
        Printf.eprintf "divergence: %s: %s\n" label e;
        exit 1
    in
    let fa = load "A" file_a and fb = load "B" file_b in
    let pick label fx = function
      | Some n -> n
      | None -> (
        match Forensics.observer fx with
        | Some n -> n
        | None ->
          Printf.eprintf "divergence: %s has no provenance certificates\n" label;
          exit 1)
    in
    let node_a = pick "A" fa node_a and node_b = pick "B" fb node_b in
    if json then
      print_endline
        (Stdx.Json.to_string (Forensics.divergence_to_json fa ~node_a fb ~node_b))
    else print_string (Forensics.render_divergence fa ~node_a fb ~node_b)
  in
  let file_a =
    Arg.(
      required & pos 0 (some string) None
      & info [] ~docv:"A.jsonl" ~doc:"First trace dump.")
  in
  let file_b =
    Arg.(
      required & pos 1 (some string) None
      & info [] ~docv:"B.jsonl" ~doc:"Second trace dump.")
  in
  let node_a_arg =
    Arg.(
      value & opt (some int) None
      & info [ "node-a" ] ~docv:"P"
          ~doc:"Observer process in A (default: most certificates).")
  in
  let node_b_arg =
    Arg.(
      value & opt (some int) None
      & info [ "node-b" ] ~docv:"P"
          ~doc:"Observer process in B (default: most certificates).")
  in
  let json_arg = Common.json_flag_arg in
  Cmd.v
    (Cmd.info "divergence"
       ~doc:
         "Binary-search two runs' certificate streams (two nodes of one run, \
          two seeds, or dagrider-vs-bullshark on one schedule) to the first \
          divergent ordering decision and print both sides' evidence. \
          Same-rule pairs compare per-wave decisions; cross-rule pairs \
          compare the ordered delivery logs.")
    Term.(
      const run $ file_a $ file_b $ node_a_arg $ node_b_arg $ json_arg)

(* ---- profile ---- *)

let profile_cmd =
  let run (c : Common.t) no_trace top folded_out =
    let prof = Prof.create () in
    Prof.install prof;
    let tracer =
      if no_trace then None else Some (Trace.create ~capacity:4096 ())
    in
    let fleet = Common.build ?trace:tracer c in
    (* the root span makes coverage meaningful: every instrumented span
       below it explains a slice of the whole run's wall time *)
    Prof.time "run" (fun () -> Harness.Runner.run fleet ~until:c.until);
    Prof.uninstall ();
    Printf.printf
      "profile: n=%d seed=%d backend=%s until=%.0f trace=%s; delivered at \
       p0: %d vertices\n\n"
      c.n c.seed
      (match c.backend with
      | Harness.Runner.Bracha -> "bracha"
      | Harness.Runner.Avid -> "avid"
      | Harness.Runner.Gossip -> "gossip")
      c.until
      (if no_trace then "off" else "on")
      (Dagrider.Ordering.delivered_count
         (Dagrider.Node.ordering (Harness.Runner.node fleet 0)));
    print_string (Prof.render_table ~top prof);
    print_newline ();
    print_string (Prof.render_gc (Prof.gc_summary prof));
    match folded_out with
    | Some path ->
      write_file path (Prof.folded prof);
      Printf.printf "\nwrote folded stacks to %s (flamegraph.pl-ready)\n" path
    | None -> ()
  in
  let no_trace_arg =
    Arg.(
      value & flag
      & info [ "no-trace" ]
          ~doc:
            "Profile an untraced run (default attaches a tracer and the \
             analyzer sink so their overhead shows up in the table).")
  in
  let top_arg =
    Arg.(
      value & opt int 16
      & info [ "top" ] ~docv:"K" ~doc:"Rows in the hot-span table.")
  in
  let folded_arg =
    Arg.(
      value & opt (some string) None
      & info [ "folded" ] ~docv:"FILE"
          ~doc:
            "Also write folded call stacks to $(docv) for flamegraph.pl / \
             inferno-flamegraph.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Simulate under the span profiler and print the hot-span table: \
          wall time (self and inclusive), allocation, and call counts per \
          span, plus GC pressure and a coverage footer.")
    Term.(const run $ Common.term $ no_trace_arg $ top_arg $ folded_arg)

(* ---- dot (Figures 1-2 style DAG rendering, analyzer-classified) ---- *)

let dot_cmd =
  let run (c : Common.t) rounds shade_wave justify_wave snapshot save_snapshot =
    match snapshot with
    | Some path ->
      (* offline: a saved snapshot has no trace, so no leader classes *)
      let contents =
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      (match Dagrider.Snapshot.dag_of_string contents with
      | Ok dag ->
        print_string (Dagrider.Render.dot_classified ~max_round:rounds dag)
      | Error e ->
        Printf.eprintf "dot: bad snapshot %s: %s\n" path e;
        exit 1)
    | None ->
      let tracer = Trace.create ~capacity:4096 () in
      let fleet = Common.build ~trace:tracer c in
      Harness.Runner.run fleet ~until:c.until;
      let report = Option.get (Harness.Runner.analysis fleet) in
      let dag = Dagrider.Node.dag (Harness.Runner.node fleet 0) in
      (match save_snapshot with
      | Some path ->
        write_file path (Dagrider.Snapshot.dag_to_string dag);
        Printf.eprintf "saved DAG snapshot to %s\n" path
      | None -> ());
      (match justify_wave with
      | Some wave ->
        (* shade the provenance certificate's justification subgraph
           instead of the analyzer classification *)
        let fx = Option.get (Harness.Runner.forensics fleet) in
        let node =
          match Forensics.observer fx with Some n -> n | None -> 0
        in
        (match Forensics.justification fx ~node ~wave with
        | Some (leader, support, chain) ->
          print_string
            (Dagrider.Render.dot_justification ~support ~chain ~legend:true
               ~max_round:rounds dag ~leader)
        | None ->
          Printf.eprintf
            "dot: wave %d has no commit certificate at p%d (skipped or \
             unresolved — try `explain --wave %d`)\n"
            wave node wave;
          exit 1)
      | None ->
        print_string (Analyze.dot ?shade_wave ~max_round:rounds ~dag report))
  in
  let rounds_arg =
    Arg.(
      value & opt int 12 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to show.")
  in
  let shade_arg =
    Arg.(
      value & opt (some int) None
      & info [ "shade-wave" ] ~docv:"W"
          ~doc:
            "Shade the causal history of wave $(docv)'s committed leader \
             (default: the newest committed wave).")
  in
  let justify_arg =
    Arg.(
      value & opt (some int) None
      & info [ "justify-wave" ] ~docv:"W"
          ~doc:
            "Shade wave $(docv)'s justification subgraph from its provenance \
             certificate: leader gold, supporting quorum palegreen, \
             chain-back leaders orange, causal history gray.")
  in
  let snapshot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "snapshot" ] ~docv:"FILE"
          ~doc:"Render a DAG snapshot saved with --save-snapshot (offline).")
  in
  let save_snapshot_arg =
    Arg.(
      value & opt (some string) None
      & info [ "save-snapshot" ] ~docv:"FILE"
          ~doc:"Also save the rendered DAG's snapshot to $(docv).")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:
         "Render the DAG as Graphviz DOT in the style of the paper's \
          Figures 1-2: strong edges solid, weak edges dashed, leaders \
          colored by outcome (committed/skipped/elected), and the causal \
          history of a chosen commit shaded.")
    Term.(
      const run $ Common.term $ rounds_arg $ shade_arg $ justify_arg
      $ snapshot_arg $ save_snapshot_arg)

(* ---- render-dag (Figure 1) ---- *)

let build_fleet ?(rule = Dagrider.Ordering.dag_rider) n seed backend schedule
    crashes byzantines block_bytes =
  Common.build
    { Common.n;
      seed;
      backend;
      rule;
      schedule;
      crashes;
      byzantines;
      block_bytes;
      until = 0.0;
      link_faults = None }

let render_dag_cmd =
  let render n seed until dot rounds =
    let fleet =
      build_fleet n seed Harness.Runner.Bracha Harness.Runner.Uniform_random []
        [] 16
    in
    Harness.Runner.run fleet ~until;
    let dag = Dagrider.Node.dag (Harness.Runner.node fleet 0) in
    let max_round = min rounds (Dagrider.Dag.highest_round dag) in
    if dot then print_string (Dagrider.Render.dot ~max_round dag)
    else begin
      Printf.printf
        "Figure 1 regeneration: p0's local DAG after %.0f time units\n\
         ('*' = vertex, '.' = not yet delivered, 'wN' = N weak edges)\n\n"
        until;
      print_string (Dagrider.Render.ascii ~max_round dag);
      print_newline ();
      (* the figure's caption facts, checked live *)
      let f = (n - 1) / 3 in
      let complete = ref 0 in
      for r = 1 to max_round do
        if Dagrider.Dag.round_size dag r >= (2 * f) + 1 then incr complete
      done;
      Printf.printf
        "every completed round has >= 2f+1 = %d vertices: %d/%d rounds complete\n"
        ((2 * f) + 1) !complete max_round;
      let weak =
        List.length
          (List.filter
             (fun v -> v.Dagrider.Vertex.weak_edges <> [])
             (Dagrider.Dag.vertices dag))
      in
      Printf.printf "vertices carrying weak edges: %d\n" weak
    end
  in
  let dot_arg =
    Arg.(
      value & flag & info [ "dot" ] ~doc:"Emit Graphviz DOT instead of ASCII.")
  in
  let rounds_arg =
    Arg.(value & opt int 10 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to show.")
  in
  Cmd.v
    (Cmd.info "render-dag"
       ~doc:"Regenerate Figure 1: render a live DAG (ASCII or DOT).")
    Term.(
      const render $ Common.n_arg $ Common.seed_arg $ Common.until_arg
      $ dot_arg $ rounds_arg)

(* ---- render-commit (Figure 2) ---- *)

let render_commit_cmd =
  let render n seed until rule =
    let fleet =
      build_fleet ~rule n seed Harness.Runner.Bracha
        Harness.Runner.Skewed_random [] [] 16
    in
    (* collect commits as they happen via each wave's summary afterwards *)
    Harness.Runner.run fleet ~until;
    let node = Harness.Runner.node fleet 0 in
    let dag = Dagrider.Node.dag node in
    let f = (n - 1) / 3 in
    let rule = Harness.Runner.effective_rule (Harness.Runner.options fleet) in
    let wave_length = rule.Dagrider.Ordering.rule_wave_length in
    let commit_quorum = Dagrider.Ordering.quorum_of rule ~f in
    Printf.printf
      "Figure 2 regeneration: wave-by-wave commit decisions at p0 (rule %s)\n\
       (a wave's leader commits directly when >= %d last-round vertices\n\
       have a strong path to it; skipped leaders are committed\n\
       retroactively by the next committing wave's backward chain)\n\n"
      rule.Dagrider.Ordering.rule_name commit_quorum;
    print_string
      (Dagrider.Render.wave_summary dag ~wave_length ~commit_quorum
         ~leader_of:(fun w -> Dagrider.Node.leader_of node ~wave:w));
    Printf.printf
      "\ndecided up to wave %d; leaders of waves without COMMIT above were\n\
       either absent from the wave's first round or under-supported, and\n\
       were committed retroactively if a later leader reaches them.\n"
      (Dagrider.Ordering.decided_wave (Dagrider.Node.ordering node))
  in
  Cmd.v
    (Cmd.info "render-commit"
       ~doc:"Regenerate Figure 2: wave leaders, support counts, commits.")
    Term.(
      const render $ Common.n_arg $ Common.seed_arg $ Common.until_arg
      $ Common.rule_arg)

(* ---- monitor (time-series flight recorder + SLO dashboard) ---- *)

(* Parse "FROM,UNTIL" (also accepts "FROM:UNTIL"). *)
let span_conv =
  let parse s =
    let s = String.map (function ':' -> ',' | c -> c) s in
    match String.split_on_char ',' s with
    | [ a; b ] -> (
      match
        (float_of_string_opt (String.trim a), float_of_string_opt (String.trim b))
      with
      | Some a, Some b when a < b -> Ok (a, b)
      | _ -> Error (`Msg (Printf.sprintf "bad span %S (want FROM,UNTIL)" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad span %S (want FROM,UNTIL)" s))
  in
  let print ppf (a, b) = Format.fprintf ppf "%g,%g" a b in
  Arg.conv (parse, print)

let monitor_cmd =
  let run (c : Common.t) interval window rate batch body_bytes max_pending
      stall min_tps max_p99 max_stall max_growth csv_out json_out jsonl_out =
    let mon = Monitor.create ~interval ~window () in
    let workload =
      if rate <= 0.0 then None
      else
        Some
          { Harness.Runner.wl_rate = rate;
            wl_body_bytes = body_bytes;
            wl_max_batch = batch;
            wl_max_pending = max_pending }
    in
    (* SLOs: throughput on the ordered-transaction stream (or delivered
       vertices when the workload is off), commit-gap liveness, tail
       latency — and, only when asked, bounded DAG growth (the paper's
       default has no GC, so growth is expected and healthy) *)
    let tput_series = if workload = None then "node.delivered" else "tx.ordered" in
    Monitor.add_slo mon
      (Monitor.Min_rate
         { series = tput_series; min_per_unit = min_tps; after = 20.0 });
    Monitor.add_slo mon (Monitor.Max_stall { series = "commits"; max_gap = max_stall });
    Monitor.add_slo mon (Monitor.Max_p99 { max_units = max_p99; after = 20.0 });
    (match max_growth with
    | Some g ->
      Monitor.add_slo mon
        (Monitor.Max_slope
           { series = "dag.vertices"; max_per_unit = g; after = 20.0 })
    | None -> ());
    let tracer =
      match jsonl_out with Some _ -> Some (Trace.create ()) | None -> None
    in
    let schedule =
      match stall with
      | None -> c.schedule
      | Some (from_time, until_time) ->
        (* mid-run partition: cross-half traffic slowed two hundredfold
           inside the window — commits stall, the SLOs should notice *)
        Harness.Runner.Custom
          (fun rng ->
            let inner =
              match c.schedule with
              | Harness.Runner.Synchronous -> Net.Sched.synchronous ()
              | Harness.Runner.Uniform_random -> Net.Sched.uniform_random ~rng
              | Harness.Runner.Skewed_random -> Net.Sched.skewed_random ~rng
              | Harness.Runner.Custom f -> f rng
            in
            let during =
              Net.Sched.partition ~inner
                ~left:(fun i -> i < (c.n + 1) / 2)
                ~factor:200.0
            in
            Net.Sched.with_window ~inner ~from_time ~until_time ~during)
    in
    let options =
      { (Common.options ?trace:tracer c) with schedule; workload;
        monitor = Some mon }
    in
    let fleet = Harness.Runner.build options in
    Harness.Runner.run fleet ~until:c.until;
    print_string (Monitor.render mon);
    (match csv_out with
    | Some path ->
      write_file path (Monitor.to_csv mon);
      Printf.printf "wrote %d time-series rows to %s\n" (Monitor.samples mon)
        path
    | None -> ());
    (match json_out with
    | Some path ->
      write_file path (Stdx.Json.to_string (Monitor.to_json mon));
      Printf.printf "wrote time-series JSON to %s\n" path
    | None -> ());
    (match (jsonl_out, tracer) with
    | Some path, Some tr ->
      write_file path (Trace.to_jsonl tr);
      Printf.printf "wrote trace (health events included) to %s\n" path
    | _ -> ());
    if Monitor.ever_unhealthy mon then exit 1
  in
  let interval_arg =
    Arg.(
      value & opt float 1.0
      & info [ "interval" ] ~docv:"T" ~doc:"Sampling interval (virtual time).")
  in
  let window_arg =
    Arg.(
      value & opt float 10.0
      & info [ "window" ] ~docv:"T"
          ~doc:"Sliding window behind rates, percentiles and slopes.")
  in
  let rate_arg =
    Arg.(
      value & opt float 20.0
      & info [ "rate" ] ~docv:"TX"
          ~doc:
            "Client transactions per time unit per live process (0 disables \
             the workload and falls back to synthetic blocks).")
  in
  let batch_arg =
    Arg.(
      value & opt int 64
      & info [ "batch" ] ~docv:"K" ~doc:"Mempool transactions per block.")
  in
  let body_arg =
    Arg.(
      value & opt int 32
      & info [ "body-bytes" ] ~docv:"BYTES" ~doc:"Transaction payload size.")
  in
  let max_pending_arg =
    Arg.(
      value & opt (some int) None
      & info [ "max-pending" ] ~docv:"K"
          ~doc:"Mempool backpressure cap (default unbounded).")
  in
  let stall_arg =
    Arg.(
      value & opt (some span_conv) None
      & info [ "stall" ] ~docv:"FROM,UNTIL"
          ~doc:
            "Inject a network partition (cross-half delay x200) inside this \
             virtual-time window to exercise the health checks.")
  in
  let min_tps_arg =
    Arg.(
      value & opt float 1.0
      & info [ "min-tps" ] ~docv:"R"
          ~doc:"SLO: minimum windowed ordering rate after warmup.")
  in
  let max_p99_arg =
    Arg.(
      value & opt float 50.0
      & info [ "max-p99" ] ~docv:"T"
          ~doc:"SLO: maximum sliding-window p99 latency after warmup.")
  in
  let max_stall_arg =
    Arg.(
      value & opt float 15.0
      & info [ "max-stall" ] ~docv:"T"
          ~doc:"SLO: maximum gap between commits at the observer.")
  in
  let max_growth_arg =
    Arg.(
      value & opt (some float) None
      & info [ "max-growth" ] ~docv:"R"
          ~doc:
            "SLO: maximum DAG growth (vertices per time unit) — off by \
             default because the paper's protocol has no GC and growth is \
             expected; combine with a gc-enabled build to check bounded \
             memory.")
  in
  let csv_arg =
    Arg.(
      value & opt (some string) None
      & info [ "csv" ] ~docv:"FILE" ~doc:"Export the time series as CSV.")
  in
  let json_arg =
    Common.json_file_arg
      ~doc:"Export the time series, health states and verdict as JSON."
  in
  let jsonl_arg =
    Common.dump_jsonl_arg
      ~doc:
        "Also trace the run and dump JSONL (health transitions appear as \
         typed events)."
  in
  Cmd.v
    (Cmd.info "monitor"
       ~doc:
         "Run a sustained-load fleet under the time-series flight recorder: \
          ASCII dashboard with per-series sparklines, windowed rates, \
          sliding latency percentiles, and SLO health checks (exit 1 if any \
          check ever failed). Use --csv/--json for plotting exports and \
          --stall to inject a partition.")
    Term.(
      const run $ Common.term $ interval_arg $ window_arg $ rate_arg
      $ batch_arg $ body_arg $ max_pending_arg $ stall_arg $ min_tps_arg
      $ max_p99_arg $ max_stall_arg $ max_growth_arg $ csv_arg $ json_arg
      $ jsonl_arg)

(* ---- experiments ---- *)

let experiments_cmd =
  let run seed =
    List.iter
      (fun t -> print_string (Harness.Experiments.render t))
      (Harness.Experiments.all ~seed ())
  in
  Cmd.v
    (Cmd.info "experiments" ~doc:"Print every experiment table (slow).")
    Term.(const run $ Common.seed_arg)

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group ~default
          (Cmd.info "dagrider_run" ~version:"1.0.0"
             ~doc:"DAG-Rider simulation driver (PODC 2021 reproduction).")
          [ run_cmd; trace_cmd; analyze_cmd; critpath_cmd; explain_cmd;
            divergence_cmd; profile_cmd; monitor_cmd; dot_cmd; render_dag_cmd;
            render_commit_cmd; experiments_cmd ]))
