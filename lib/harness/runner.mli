(** Simulation harness: builds a fleet of DAG-Rider nodes over one
    engine and runs deterministic executions.

    Everything — tests, examples, experiment benches — goes through this
    module so that the wiring (networks per backend, coin setup, seeded
    RNG streams, fault injection) lives in exactly one place. A run is
    fully determined by its {!options}. *)

type backend = Bracha | Avid | Gossip

type schedule =
  | Synchronous
  | Uniform_random
  | Skewed_random
  | Custom of (Stdx.Rng.t -> Net.Sched.t)

type fault =
  | Crash of int
      (** Never starts and never sends — the strongest silent fault. *)
  | Byzantine_silent of int
      (** Marked corrupted in the accounting and silent (for chain
          quality / resilience runs). *)
  | Byzantine_live of int
      (** Runs the protocol honestly but is counted as Byzantine —
          models a Byzantine process whose best strategy is to
          participate (e.g. to place its blocks in the order); used by
          the chain-quality experiment. *)
  | Byzantine_attacker of int
      (** An active attacker: relays reliable-broadcast traffic (so it
          cannot be detected by silence) but, instead of running the
          protocol, periodically broadcasts garbage payloads, vertices
          that fail validation, equivocating payloads for its own
          rounds, and replays — everything a malicious implementation
          can push through the broadcast channel. Correct processes must
          drop all of it and keep both safety and liveness. *)
  | Adversary of int * Attack.spec
      (** A programmable compromised process (see {!Attack}): it runs
          the {e real} node — real DAG, real wire codecs, real coin
          participation — but its own-vertex broadcasts detour through
          an adaptive strategy (equivocation through the backend's
          genuine messages, selective withholding, coin-grinding,
          leader-biasing) and, under [Lying_sync], its catch-up
          responder serves corrupted state to restarting peers. Each
          driver gets a dedicated RNG stream split after every
          historical one, so attacked runs are pure functions of the
          seed and attack-free runs replay byte-identically. *)

type link_faults = {
  lf_drop : float;  (** per-message loss probability *)
  lf_duplicate : float;  (** per-message duplication probability *)
  lf_corrupt : float;  (** per-message bit-corruption probability *)
  lf_reorder : float;  (** per-message extra-delay (reordering) probability *)
}
(** Per-link fault rates applied to every frame of every protocol stack
    (see {!Net.Faults.lossy}). *)

val default_link_faults : link_faults
(** All rates 0.0 — a convenient base for [{ default_link_faults with
    lf_drop = ... }]. *)

type workload = {
  wl_rate : float;  (** transactions per time unit per live process *)
  wl_body_bytes : int;  (** transaction payload size *)
  wl_max_batch : int;  (** mempool batch cap per assembled block *)
  wl_max_pending : int option;  (** mempool backpressure cap (default none) *)
}
(** Sustained client load: with [workload = Some _] every live process
    gets a {!Workload.Mempool} fed by a deterministic per-process
    transaction stream (recurring engine events, no RNG), its
    [block_source] assembles real batches instead of synthetic padding
    blocks, and every a_deliver retires the delivered block's
    transactions — the closed loop the throughput-over-time curves are
    measured on. *)

val default_workload : workload
(** 20 tx/unit/process, 32-byte bodies, batches of 64, no cap. *)

type options = {
  n : int;
  f : int;
  seed : int;
  backend : backend;
  schedule : schedule;
  block_bytes : int; (** synthetic block payload size (0 = empty) *)
  rule : Dagrider.Ordering.rule;
      (** the commit rule the fleet orders with
          ({!Dagrider.Ordering.dag_rider} by default). The DAG/RBC/coin
          substrate is rule-independent: two builds differing only in
          [rule] produce byte-identical DAGs and message schedules. *)
  wave_length : int;
      (** the coin cadence; also the ordering wave length for
          coin-scheduled rules (see {!effective_rule}) *)
  commit_quorum : int option;
  enable_weak_edges : bool;
  gc_depth : int option;
  coin_in_dag : bool;
      (** use the paper's footnote-1 coin (shares ride vertices; no
          separate coin messages) *)
  coin_override : Crypto.Threshold_coin.t option;
      (** supply an externally generated coin (e.g. the output of an
          {!Adkg} ceremony) instead of the default trusted-dealer setup *)
  on_deliver :
    (node:int -> block:string -> round:int -> source:int -> time:float -> unit)
    option;
      (** observe every a_deliver with its virtual timestamp (latency
          experiments); [None] costs nothing *)
  on_commit : (node:int -> Dagrider.Ordering.commit -> unit) option;
      (** observe every committed wave leader at every node (the swarm
          checker's leader-support oracle); [None] costs nothing *)
  faults : fault list;
  link_faults : link_faults option;
      (** [Some lf] breaks the §2 reliable-link assumption: every
          protocol stack (RBC, coin, sync) runs over {!Net.Link}
          ack/retransmit endpoints on a fault-injected frame network
          with [lf]'s per-message rates. [None] (the default) keeps the
          historical direct wiring — no extra RNG streams, no frame
          overhead, delivered logs byte-identical to builds predating
          the lossy transport. *)
  sync_trusting : bool;
      (** deliberately weaken every node's catch-up admission back to
          trusting any single sync responder (the pre-hardening
          behavior). Exists {e only} for the checker's
          planted-vulnerability self-test, which proves the oracles
          flag a corrupted catch-up; never set it in an experiment. *)
  trace : Trace.t option;
      (** record structured events from every layer — network
          sends/recvs, RBC phases, DAG/round progress, coin flips,
          leader elections, commits, a_delivers, plus a periodic engine
          sample. [build] wires the tracer's clock to the engine and
          fans it out to every network, RBC instance, and node. [None]
          (the default) installs nothing: the run's event schedule and
          delivered logs are identical to a build without tracing. *)
  workload : workload option;
      (** drive the fleet with sustained client traffic (see
          {!workload}); [None] (the default) keeps the historical
          synthetic-block proposals *)
  monitor : Monitor.t option;
      (** attach a time-series flight recorder: [build] registers probes
          over the lowest never-faulty process's node ([node.delivered],
          [commits], [dag.vertices]), the shared network counters
          ([net.bits]/[net.messages]/[net.drops]), the engine, the GC,
          and — when a workload is on — the mempool fleet
          ([tx.submitted], [tx.ordered], [mempool.pending]/[in_flight]/
          [rejected]); feeds proposal→a_deliver latencies observed at
          that process into the sliding-window percentiles; arms the
          engine sampler at the monitor's interval; and, when a tracer
          is also installed, routes SLO health transitions into it.
          Probes only read state and the sampler draws no randomness, so
          delivery logs are byte-identical with and without a monitor.
          [None] (the default) installs nothing. *)
}

val default_options : n:int -> options
(** [f = (n-1)/3], seed 42, Bracha backend, uniform-random schedule,
    32-byte blocks, the paper's rule and wave parameters, no faults. *)

val effective_rule : options -> Dagrider.Ordering.rule
(** The rule the nodes actually run: coin-scheduled rules order on the
    coin cadence (so [rule_wave_length] is overridden by
    [options.wave_length], keeping the wave-length ablation one knob);
    round-robin rules keep their own wave length and leave
    [options.wave_length] as the coin cadence only. *)

type t

val build : options -> t

val engine : t -> Sim.Engine.t
val counters : t -> Metrics.Counters.t
val coin : t -> Crypto.Threshold_coin.t
val nodes : t -> Dagrider.Node.t array
val options : t -> options

val node : t -> int -> Dagrider.Node.t

val mempools : t -> Workload.Mempool.t array option
(** The per-process transaction pools, iff built with a workload. *)

val monitor : t -> Monitor.t option
(** The attached flight recorder, iff one was passed in the options. *)

val is_correct : t -> int -> bool
(** Correct = not listed in [faults]. *)

val correct_indices : t -> int list

val start : t -> unit
(** Start every non-crashed node (crashed ones never join). *)

val run : t -> until:float -> unit
(** Advance virtual time; can be called repeatedly to step through an
    execution. *)

val run_until_delivered :
  t -> count:int -> max_time:float -> float option
(** Run until every correct node has delivered at least [count]
    vertices, returning the virtual time this happened, or [None] if
    [max_time] elapsed first. *)

val delivered_logs : t -> Dagrider.Vertex.t list array
(** Per-node totally ordered outputs. *)

val delivered_refs : t -> Dagrider.Vertex.vref list array
(** Per-node ordered outputs as lightweight (round, source) references —
    the mid-run snapshot the swarm checker's oracle compares across
    checkpoints. *)

val silence_node : t -> ?drop_in_flight:bool -> int -> unit
(** Mid-run adaptive corruption of process [i]: mark it Byzantine (it
    leaves {!correct_indices}), discard its not-yet-delivered messages
    when [drop_in_flight] (default [true], per the §2 adaptive
    adversary), and detach its handlers on every network so it neither
    receives nor reacts from this moment on. The scenario generator must
    keep the total number of ever-faulty processes within [f]. *)

val check_total_order : t -> (unit, string) result
(** Every pair of correct nodes' logs must be prefix-comparable
    (Total order + Agreement). Returns a description of the first
    divergence otherwise. *)

val check_integrity : t -> (unit, string) result
(** No node delivered two vertices with the same (round, source), and no
    vertex appears twice in one log. *)

val honest_bits : t -> int
(** Bits sent by correct processes (the paper's communication measure). *)

val latency : t -> Metrics.Latency.t
(** The harness's built-in proposal-to-delivery recorder. Every
    synthetic block is timestamped when its proposer creates the vertex
    carrying it and again at each process's [a_deliver] — always on, no
    RNG or engine events involved, so it never perturbs the schedule. *)

val link_stats : t -> Net.Link.stats
(** Reliable-transport counters summed over every endpoint of every
    stack (all zero when [link_faults] is [None]). *)

val drop_counts : t -> (string * int) list
(** Deliveries lost on any stack, merged by reason tag ("fault",
    "corrupt", "give-up", "duplicate", "decode", "no-handler",
    "corrupted-src"), sorted by reason. *)

val retransmits_by_link : t -> ((int * int) * int) list
(** [((src, dst), count)] for every directed link with at least one
    retransmission, merged across stacks, sorted — the loss-aware
    diagnostics the analyzer and swarm checker read. *)

val metrics_snapshot : t -> Metrics.Registry.snapshot
(** One snapshot of the run's health: the active commit rule
    ([rule.<name>] = 1 plus [rule.wave_length] / [rule.waves_bound] /
    [rule.commit_quorum] gauges — explicit so downstream tooling need
    not infer the rule from span names), communication counters (total,
    honest, per message kind), engine gauges (virtual time, events
    executed, events pending), latency histograms (first delivery and
    per-process delivery), per-node delivered counts, drop counters by
    reason ([net.drops.*]), on workload-driven builds the mempool fleet
    gauges ([mempool.pending]/[in_flight]/[submitted]/[retired]/
    [rejected], summed across processes), and — on lossy builds — the
    aggregated reliable-transport counters ([link.*]). Traced builds
    additionally export the tracer's ring health
    ([trace.emitted]/[trace.dropped_events]/[trace.capacity]/
    [trace.occupancy] — nonzero [trace.dropped_events] means the
    retained window is a suffix of the run) and the live critical-path
    segment aggregates ([critpath.*], see {!Critpath.segment_means}). *)

val analysis : t -> Analyze.report option
(** The protocol analyzer's view of this run: [Some] iff the run was
    built with a tracer. The analyzer is fed live through a
    {!Trace.add_sink} hook, so it sees the {e whole} event stream even
    when the tracer's ring buffer wrapped. Configured from the run's
    options (wave length, f) with the currently-faulty processes as the
    Byzantine set and the lowest correct process as observer; callable
    mid-run for progress snapshots. Untraced runs return [None] and pay
    nothing. *)

val analysis_report : t -> Stdx.Json.t option
(** {!analysis} serialized via {!Analyze.report_to_json}. *)

val critpath : t -> Critpath.t option
(** The run's streaming critical-path collector: [Some] iff the run was
    built with a tracer. Fed live through {!Trace.add_sink} with the
    vantage process (lowest process no declared fault touches) as its
    streaming observer, so per-commit causal paths are reconstructed
    online — {!Critpath.segment_means} is cheap at any point mid-run. *)

val critpath_report : t -> Critpath.report option
(** {!Critpath.finalize} on the collector ([None] untraced). *)

val forensics : t -> Forensics.t option
(** The run's provenance-certificate collector: [Some] iff the run was
    built with a tracer (fed live through {!Trace.add_sink}, like the
    analyzer, so it holds every certificate even past ring wrap). This
    is what [explain]/[divergence] read and what the swarm oracle
    re-validates via {!Check} — untraced runs return [None] and pay
    nothing. *)

type attack_report = {
  ar_node : int;
  ar_spec : Attack.spec;
  ar_victims : int list;  (** the resolved victim set *)
  ar_forks : Attack.fork list;
      (** every equivocation actually sent (oldest first) — the
          equivocation-exclusion oracle's ground truth *)
  ar_lies : Attack.lie list;
      (** every forged sync vertex actually served — the lie-exclusion
          oracle's ground truth *)
  ar_actions : int;  (** total deliberate deviations *)
}

val attack_reports : t -> attack_report list
(** One report per declared {!fault.Adversary}, in process order; empty
    when none was declared. Read {e after} the run: the oracles compare
    the recorded forks/lies against what correct processes actually
    admitted. *)

val restart_node : t -> int -> unit
(** Crash-and-recover process [i] in place: checkpoint it (through the
    full {!Dagrider.Snapshot} serialization round-trip, as a real
    restart would), rebuild it from the checkpoint on the same
    networks, and let the sync protocol catch it up with the live
    fleet. Follow-up sync requests run on seeded exponential backoff
    with jitter (initial 3.0, factor 1.6, cap 20.0, jitter 0.3 —
    {!Net.Link}'s retransmit shape), stopping as soon as the node's DAG
    has no under-populated round below its frontier and that frontier
    is within one round of the live fleet's, or after 6 attempts
    (emitting {!Trace.kind.Sync_retry} per attempt and
    {!Trace.kind.Sync_gave_up} on exhaustion). The backoff stream is
    keyed off the run seed and [i], so replays are byte-identical.
    Restarting mid-partition is legal — lost requests are retried.
    @raise Invalid_argument if [i] never started (declared [Crash] or
    [Byzantine_silent]): there is no state to restart from. *)
