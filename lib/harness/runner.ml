type backend = Bracha | Avid | Gossip

type schedule =
  | Synchronous
  | Uniform_random
  | Skewed_random
  | Custom of (Stdx.Rng.t -> Net.Sched.t)

type fault =
  | Crash of int
  | Byzantine_silent of int
  | Byzantine_live of int
  | Byzantine_attacker of int
  | Adversary of int * Attack.spec

type link_faults = {
  lf_drop : float;
  lf_duplicate : float;
  lf_corrupt : float;
  lf_reorder : float;
}

let default_link_faults =
  { lf_drop = 0.0; lf_duplicate = 0.0; lf_corrupt = 0.0; lf_reorder = 0.0 }

type workload = {
  wl_rate : float;
  wl_body_bytes : int;
  wl_max_batch : int;
  wl_max_pending : int option;
}

let default_workload =
  { wl_rate = 20.0; wl_body_bytes = 32; wl_max_batch = 64; wl_max_pending = None }

type options = {
  n : int;
  f : int;
  seed : int;
  backend : backend;
  schedule : schedule;
  block_bytes : int;
  rule : Dagrider.Ordering.rule;
  wave_length : int;
  commit_quorum : int option;
  enable_weak_edges : bool;
  gc_depth : int option;
  coin_in_dag : bool;
  coin_override : Crypto.Threshold_coin.t option;
  on_deliver :
    (node:int -> block:string -> round:int -> source:int -> time:float -> unit)
    option;
  on_commit : (node:int -> Dagrider.Ordering.commit -> unit) option;
  faults : fault list;
  link_faults : link_faults option;
  sync_trusting : bool;
  trace : Trace.t option;
  workload : workload option;
  monitor : Monitor.t option;
}

let default_options ~n =
  { n;
    f = (n - 1) / 3;
    seed = 42;
    backend = Bracha;
    schedule = Uniform_random;
    block_bytes = 32;
    rule = Dagrider.Ordering.dag_rider;
    wave_length = 4;
    commit_quorum = None;
    enable_weak_edges = true;
    gc_depth = None;
    coin_in_dag = false;
    coin_override = None;
    on_deliver = None;
    on_commit = None;
    faults = [];
    link_faults = None;
    sync_trusting = false;
    trace = None;
    workload = None;
    monitor = None }

(* The rule the nodes actually run (Node applies the same resolution):
   coin-scheduled rules order on the coin cadence [options.wave_length];
   round-robin rules keep their own wave length. *)
let effective_rule options =
  match options.rule.Dagrider.Ordering.rule_schedule with
  | Dagrider.Ordering.Coin ->
    { options.rule with
      Dagrider.Ordering.rule_wave_length = options.wave_length }
  | Dagrider.Ordering.Round_robin -> options.rule

(* One protocol stack's transport: the port the protocol talks to, the
   fault-injection hooks the harness needs, and the loss-diagnostics
   counters. Direct mode wraps a bare network; lossy mode runs the
   stack over Net.Link endpoints on a fault-injected frame network. *)
type 'msg stack = {
  st_port : 'msg Net.Port.t;
  st_corrupt : drop_in_flight:bool -> int -> unit; (* carrier-level, §2 adaptive *)
  st_detach : int -> unit; (* stop process i sending/receiving for good *)
  st_link_stats : unit -> Net.Link.stats;
  st_retransmits : unit -> ((int * int) * int) list; (* (src,dst) -> count *)
  st_drop_counts : unit -> (string * int) list;
}

type t = {
  options : options;
  engine : Sim.Engine.t;
  counters : Metrics.Counters.t;
  coin : Crypto.Threshold_coin.t;
  coin_stack : Dagrider.Node.coin_msg stack;
  sync_stack : Dagrider.Node.sync_msg stack;
  make_rbc : Dagrider.Node.rbc_factory;
  node_config : Dagrider.Node.config;
  nodes : Dagrider.Node.t array;
  silence_rbc : drop_in_flight:bool -> int -> unit;
  rbc_link_stats : unit -> Net.Link.stats;
  rbc_retransmits : unit -> ((int * int) * int) list;
  rbc_drop_counts : unit -> (string * int) list;
  faulty : bool array;  (* counted as Byzantine *)
  crashed : bool array; (* additionally, never started *)
  attack_drivers : Attack.t option array; (* per-process, iff Adversary *)
  latency : Metrics.Latency.t;
  analyzer : Analyze.t option; (* streaming trace consumer, iff traced *)
  forensics : Forensics.t option; (* certificate collector, iff traced *)
  critpath : Critpath.t option; (* causal path collector, iff traced *)
  mempools : Workload.Mempool.t array option; (* iff workload-driven *)
  mctx : monitor_ctx option; (* iff a monitor is attached *)
  mutable started : bool;
}

and monitor_ctx = {
  mc_mon : Monitor.t;
  mc_observer : int; (* lowest never-faulty process: the vantage point *)
  mc_commits : int ref; (* direct+chained commits seen at the observer *)
}

let fault_index = function
  | Crash i | Byzantine_silent i | Byzantine_live i | Byzantine_attacker i -> i
  | Adversary (i, _) -> i

let make_sched ~schedule ~rng =
  match schedule with
  | Synchronous -> Net.Sched.synchronous ()
  | Uniform_random -> Net.Sched.uniform_random ~rng
  | Skewed_random -> Net.Sched.skewed_random ~rng
  | Custom f -> f rng

(* Deterministic synthetic block: identifies its proposer and round, and
   pads to the requested size so communication accounting is realistic. *)
let synthetic_block ~block_bytes ~me ~round =
  let tag = Printf.sprintf "blk:p%d:r%d:" me round in
  if String.length tag >= block_bytes then tag
  else tag ^ String.make (block_bytes - String.length tag) 'x'

(* The three per-node closures, shared by [build] and [restart_node] so a
   restarted node keeps the workload/monitor wiring of the original.
   With no workload and no monitor the closures reduce to the historical
   ones — nothing extra touches the engine or any RNG, so delivery logs
   stay byte-identical to builds predating these features. *)
let node_hooks ~options ~engine ~latency ~mempools ~mctx ~me =
  let a_deliver =
    let user_hook =
      match options.on_deliver with
      | None -> fun ~block:_ ~round:_ ~source:_ -> ()
      | Some hook ->
        fun ~block ~round ~source ->
          hook ~node:me ~block ~round ~source ~time:(Sim.Engine.now engine)
    in
    let retire =
      match mempools with
      | None -> fun _ -> ()
      | Some pools ->
        (* every delivered block retires its transactions here, foreign
           ones included (a client may have multi-submitted) *)
        fun block -> ignore (Workload.Mempool.retire_block pools.(me) block)
    in
    let observe =
      match mctx with
      | Some mc when mc.mc_observer = me ->
        fun block ->
          if block <> "" then
            (match Metrics.Latency.proposed_at latency block with
            | Some at ->
              let now = Sim.Engine.now engine in
              Monitor.observe_latency mc.mc_mon ~now (now -. at)
            | None -> ())
      | _ -> fun _ -> ()
    in
    fun ~block ~round ~source ->
      Metrics.Latency.delivered latency block ~process:me
        ~now:(Sim.Engine.now engine);
      retire block;
      observe block;
      user_hook ~block ~round ~source
  in
  let on_commit =
    let user_hook =
      match options.on_commit with
      | None -> fun _ -> ()
      | Some hook -> fun commit -> hook ~node:me commit
    in
    match mctx with
    | Some mc when mc.mc_observer = me ->
      fun commit ->
        incr mc.mc_commits;
        user_hook commit
    | _ -> user_hook
  in
  (* [block_source] fires exactly when this node creates its round
     vertex, so the proposal timestamp lands on the vertex's birth *)
  let block_source =
    match mempools with
    | None ->
      fun ~round ->
        let block =
          synthetic_block ~block_bytes:options.block_bytes ~me ~round
        in
        Metrics.Latency.proposed latency block ~now:(Sim.Engine.now engine);
        block
    | Some pools ->
      fun ~round ->
        let block = Workload.Mempool.assemble_block pools.(me) in
        (* an empty mempool still yields a vertex, just with no payload;
           "" is shared across nodes so it gets no latency record *)
        if block <> "" then
          Metrics.Latency.proposed latency block ~now:(Sim.Engine.now engine);
        (match options.trace with
        | Some tr ->
          Trace.emit tr
            (Trace.Block_assembled
               { node = me;
                 round;
                 txs = List.length (Workload.Txgen.block_txs block) })
        | None -> ());
        block
  in
  (a_deliver, on_commit, block_source)

let build options =
  let { n; f; seed; _ } = options in
  if n < 1 || f < 0 then invalid_arg "Runner.build: bad n/f";
  let root_rng = Stdx.Rng.create seed in
  let sched_rng = Stdx.Rng.split root_rng in
  let coin_rng = Stdx.Rng.split root_rng in
  let gossip_rng = Stdx.Rng.split root_rng in
  (* split AFTER every pre-existing stream and ONLY when lossy links are
     on, so fault-free runs consume exactly the historical RNG sequence
     (and [Check.Scenario.predicted_leader]'s mirror stays valid) *)
  let lossy_rng =
    match options.link_faults with
    | None -> None
    | Some lf ->
      if lf.lf_drop >= 1.0 then
        invalid_arg "Runner.build: lf_drop must be < 1";
      Some (lf, Stdx.Rng.split root_rng)
  in
  (* programmable adversaries (lib/attack): their RNG root splits after
     every pre-existing stream — and only when at least one is declared —
     so attack-free runs consume exactly the historical RNG sequence *)
  let adversaries =
    List.filter_map
      (function Adversary (i, spec) -> Some (i, spec) | _ -> None)
      options.faults
  in
  let adversary_rng =
    if adversaries = [] then None else Some (Stdx.Rng.split root_rng)
  in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = make_sched ~schedule:options.schedule ~rng:sched_rng in
  let coin =
    match options.coin_override with
    | Some coin -> coin
    | None -> Crypto.Threshold_coin.setup ~rng:coin_rng ~n ~f
  in
  (* tracing is strictly additive: with [trace = None] nothing below is
     installed, so the event schedule is identical to an untraced build *)
  (match options.trace with
  | None -> ()
  | Some tr ->
    Trace.set_clock tr (fun () -> Sim.Engine.now engine);
    Sim.Engine.set_sampler engine ~interval:1.0
      (fun ~time:_ ~executed ~pending ->
        Trace.emit tr (Trace.Engine_sample { executed; pending })));
  (* a traced run also streams into the protocol analyzer, so
     [analysis_report] covers the whole run even when the ring wraps;
     the sink only reads events — it cannot perturb the schedule *)
  let analyzer =
    match options.trace with
    | None -> None
    | Some tr ->
      let acc = Analyze.create () in
      Trace.add_sink tr (Analyze.feed acc);
      Some acc
  in
  (* ...and into the forensics collector, which keeps every provenance
     certificate for explain / divergence / oracle re-validation *)
  let forensics =
    match options.trace with
    | None -> None
    | Some tr ->
      let fx = Forensics.create () in
      Trace.add_sink tr (Forensics.feed fx);
      Some fx
  in
  (* the vantage point for observer-anchored collectors: the lowest
     process no declared fault touches (mid-run silencing can still
     corrupt it — acceptable, same caveat as the monitor's observer) *)
  let vantage =
    let declared = List.map fault_index options.faults in
    let rec first i =
      if i >= n then 0 else if List.mem i declared then first (i + 1) else i
    in
    first 0
  in
  (* ...and into the critical-path collector, streaming at the vantage
     process so per-commit causal chains exist the moment each
     a_deliver fires — segment gauges stay O(1) to read mid-run *)
  let critpath =
    match options.trace with
    | None -> None
    | Some tr ->
      let cp = Critpath.create ~observer:vantage () in
      Trace.add_sink tr (Critpath.feed cp);
      Some cp
  in
  (* One transport stack per protocol; same engine/schedule/counters, so
     semantically a single multiplexed network. Direct mode builds the
     reliable network the harness always used; lossy mode interposes a
     fault-injected frame network with one {!Net.Link} endpoint per
     process. Stacks are created in a fixed order (coin, sync, rbc) and
     every lossy RNG derives from [lossy_rng] in creation order, so
     lossy executions stay pure functions of the seed. *)
  let make_stack (type msg) ~(encode : msg -> string)
      ~(decode : string -> msg option) : msg stack =
    match lossy_rng with
    | None ->
      ignore encode;
      ignore decode;
      let net = Net.Network.create ~engine ~sched ~counters ~n in
      (match options.trace with
      | None -> ()
      | Some tr -> Net.Network.set_trace net tr);
      { st_port = Net.Port.of_network net;
        st_corrupt =
          (fun ~drop_in_flight i -> Net.Network.corrupt net ~drop_in_flight i);
        st_detach = (fun i -> Net.Network.unregister net i);
        st_link_stats = (fun () -> Net.Link.zero_stats);
        st_retransmits = (fun () -> []);
        st_drop_counts = (fun () -> Net.Network.drop_counts net) }
    | Some (lf, lrng) ->
      let net : Net.Link.frame Net.Network.t =
        Net.Network.create ~engine ~sched ~counters ~n
      in
      (match options.trace with
      | None -> ()
      | Some tr -> Net.Network.set_trace net tr);
      Net.Network.set_faults net
        (Net.Faults.lossy ~rng:(Stdx.Rng.split lrng) ~drop:lf.lf_drop
           ~duplicate:lf.lf_duplicate ~corrupt:lf.lf_corrupt
           ~reorder:lf.lf_reorder ());
      Net.Network.set_corrupter net
        (Net.Link.corrupt_frame ~rng:(Stdx.Rng.split lrng));
      let links =
        Array.init n (fun me ->
            Net.Link.attach ~net ~engine ~rng:(Stdx.Rng.split lrng)
              ?trace:options.trace ~me ~encode ~decode ())
      in
      { st_port = Net.Port.of_links links;
        st_corrupt =
          (fun ~drop_in_flight i -> Net.Network.corrupt net ~drop_in_flight i);
        st_detach = (fun i -> Net.Link.detach links.(i));
        st_link_stats =
          (fun () ->
            Array.fold_left
              (fun acc l -> Net.Link.add_stats acc (Net.Link.stats l))
              Net.Link.zero_stats links);
        st_retransmits =
          (fun () ->
            List.concat
              (List.mapi
                 (fun src l ->
                   List.map
                     (fun (dst, count) -> ((src, dst), count))
                     (Net.Link.retransmits_by_dst l))
                 (Array.to_list links)));
        st_drop_counts = (fun () -> Net.Network.drop_counts net) }
  in
  let coin_stack =
    make_stack ~encode:Dagrider.Node.encode_coin_msg
      ~decode:Dagrider.Node.decode_coin_msg
  in
  let sync_stack =
    make_stack ~encode:Dagrider.Node.encode_sync_msg
      ~decode:Dagrider.Node.decode_sync_msg
  in
  (* [make_rbc_full] also yields the backend's targeted-send capability
     (Bracha Init / AVID dispersal / Gossip seed toward chosen
     destinations) — the attack driver's arsenal. Honest nodes only ever
     see the plain factory below. *)
  let (make_rbc_full :
        me:int ->
        deliver:Rbc.Rbc_intf.deliver ->
        Dagrider.Node.rbc_handle
        * (dsts:int list -> round:int -> payload:string -> unit)),
      (silence_rbc : drop_in_flight:bool -> int -> unit),
      rbc_link_stats,
      rbc_retransmits,
      rbc_drop_counts =
    let silencer stack ~drop_in_flight i =
      stack.st_corrupt ~drop_in_flight i;
      stack.st_detach i
    in
    match options.backend with
    | Bracha ->
      let stack =
        make_stack ~encode:Rbc.Bracha.encode_msg ~decode:Rbc.Bracha.decode_msg
      in
      ( (fun ~me ~deliver ->
          let b = Rbc.Bracha.create_port ~port:stack.st_port ~me ~f ~deliver in
          (match options.trace with
          | None -> ()
          | Some tr -> Rbc.Bracha.set_trace b tr);
          ( { Dagrider.Node.rbc_bcast =
                (fun ~payload ~round -> Rbc.Bracha.bcast b ~payload ~round) },
            fun ~dsts ~round ~payload ->
              List.iter
                (fun dst -> Rbc.Bracha.inject_init b ~dst ~round ~payload)
                dsts )),
        silencer stack,
        stack.st_link_stats,
        stack.st_retransmits,
        stack.st_drop_counts )
    | Avid ->
      let stack =
        make_stack ~encode:Rbc.Avid.encode_msg ~decode:Rbc.Avid.decode_msg
      in
      ( (fun ~me ~deliver ->
          let a = Rbc.Avid.create_port ~port:stack.st_port ~me ~f ~deliver in
          (match options.trace with
          | None -> ()
          | Some tr -> Rbc.Avid.set_trace a tr);
          ( { Dagrider.Node.rbc_bcast =
                (fun ~payload ~round -> Rbc.Avid.bcast a ~payload ~round) },
            fun ~dsts ~round ~payload ->
              Rbc.Avid.inject_disperse a ~dsts ~round ~payload )),
        silencer stack,
        stack.st_link_stats,
        stack.st_retransmits,
        stack.st_drop_counts )
    | Gossip ->
      let stack =
        make_stack ~encode:Rbc.Gossip.encode_msg ~decode:Rbc.Gossip.decode_msg
      in
      ( (fun ~me ~deliver ->
          let rng = Stdx.Rng.split gossip_rng in
          let g =
            Rbc.Gossip.create_port ~port:stack.st_port ~rng ~me ~f ~deliver ()
          in
          (match options.trace with
          | None -> ()
          | Some tr -> Rbc.Gossip.set_trace g tr);
          ( { Dagrider.Node.rbc_bcast =
                (fun ~payload ~round -> Rbc.Gossip.bcast g ~payload ~round) },
            fun ~dsts ~round ~payload ->
              List.iter
                (fun dst -> Rbc.Gossip.inject_gossip g ~dst ~round ~payload)
                dsts )),
        silencer stack,
        stack.st_link_stats,
        stack.st_retransmits,
        stack.st_drop_counts )
  in
  let make_rbc : Dagrider.Node.rbc_factory =
   fun ~me ~deliver -> fst (make_rbc_full ~me ~deliver)
  in
  let config =
    { Dagrider.Node.n;
      f;
      rule = options.rule;
      wave_length = options.wave_length;
      commit_quorum = options.commit_quorum;
      enable_weak_edges = options.enable_weak_edges;
      gc_depth = options.gc_depth;
      coin_mode =
        (if options.coin_in_dag then Dagrider.Node.In_dag
         else Dagrider.Node.Separate_network) }
  in
  let latency = Metrics.Latency.create () in
  let mempools =
    match options.workload with
    | None -> None
    | Some wl ->
      if wl.wl_rate <= 0.0 then
        invalid_arg "Runner.build: wl_rate must be positive";
      Some
        (Array.init n (fun me ->
             Workload.Mempool.create ~max_batch:wl.wl_max_batch
               ?max_pending:wl.wl_max_pending ~owner:me ()))
  in
  let mctx =
    match options.monitor with
    | None -> None
    | Some mon -> Some { mc_mon = mon; mc_observer = vantage; mc_commits = ref 0 }
  in
  let attack_drivers : Attack.t option array = Array.make n None in
  let nodes =
    Array.init n (fun me ->
        let a_deliver, on_commit, block_source =
          node_hooks ~options ~engine ~latency ~mempools ~mctx ~me
        in
        (* an adversary runs the REAL node — real DAG, real codecs, real
           coin participation — but its broadcasts detour through the
           attack driver, which decides what actually hits the wire *)
        let make_rbc_for_me : Dagrider.Node.rbc_factory =
          match List.assoc_opt me adversaries with
          | None -> make_rbc
          | Some spec ->
            fun ~me ~deliver ->
              let handle, send = make_rbc_full ~me ~deliver in
              let arsenal =
                { Attack.ars_n = n;
                  ars_f = f;
                  ars_me = me;
                  ars_send = send;
                  ars_bcast =
                    (fun ~round ~payload ->
                      handle.Dagrider.Node.rbc_bcast ~payload ~round) }
              in
              let rng =
                match adversary_rng with
                | Some root -> Stdx.Rng.split root
                | None -> assert false
              in
              let driver =
                Attack.create ~spec ~arsenal ~rng
                  ~schedule:(fun ~delay k -> Sim.Engine.schedule engine ~delay k)
                  ?trace:options.trace ()
              in
              attack_drivers.(me) <- Some driver;
              { Dagrider.Node.rbc_bcast =
                  (fun ~payload ~round ->
                    Attack.on_own_vertex driver ~payload ~round) }
        in
        Dagrider.Node.create ~config ~me ~coin ~coin_net:coin_stack.st_port
          ~make_rbc:make_rbc_for_me ~sync_net:sync_stack.st_port
          ~sync_trusting:options.sync_trusting ?trace:options.trace
          ~block_source ~a_deliver ~on_commit ())
  in
  (* wire each driver's protocol brain, and swap in the lying catch-up
     responder where that strategy was picked (Port.register replaces
     the honest handler Node.create installed) *)
  Array.iteri
    (fun i d ->
      match d with
      | None -> ()
      | Some driver ->
        Attack.set_node driver nodes.(i);
        (match List.assoc_opt i adversaries with
        | Some { Attack.strategy = Attack.Lying_sync; _ } ->
          Attack.lying_sync_handler driver ~sync_net:sync_stack.st_port
        | _ -> ()))
    attack_drivers;
  let faulty = Array.make n false in
  let crashed = Array.make n false in
  List.iter
    (fun fault ->
      let i = fault_index fault in
      if i < 0 || i >= n then invalid_arg "Runner.build: fault index out of range";
      faulty.(i) <- true;
      (match fault with
      | Adversary _ ->
        (* the attacker node starts and runs; its deviations were wired
           into its broadcast path at creation time *)
        ()
      | Crash _ | Byzantine_silent _ ->
        crashed.(i) <- true;
        (* a silent process neither proposes nor relays: silence its RBC
           participation and its coin handler entirely *)
        silence_rbc ~drop_in_flight:false i;
        coin_stack.st_detach i
      | Byzantine_live _ -> ()
      | Byzantine_attacker _ ->
        crashed.(i) <- true (* the honest node never starts... *);
        (* ...but an attacker endpoint takes its place: it keeps the RBC
           relay machinery (created by Node.create above) and injects a
           rotating menu of malicious broadcasts *)
        let handle =
          make_rbc ~me:i ~deliver:(fun ~payload:_ ~round:_ ~source:_ -> ())
        in
        let attack_rng = Stdx.Rng.create (seed + (1_000 * i)) in
        let genesis =
          List.init n (fun source -> { Dagrider.Vertex.round = 0; source })
        in
        let rec attack step =
          (match step mod 4 with
          | 0 ->
            (* undecodable garbage *)
            handle.Dagrider.Node.rbc_bcast
              ~payload:(String.init 40 (fun _ -> Char.chr (Stdx.Rng.int attack_rng 256)))
              ~round:(1 + (step / 4))
          | 1 ->
            (* structurally invalid vertex: too few strong edges *)
            let v =
              { Dagrider.Vertex.round = 1 + (step / 4);
                source = i;
                block = "bad";
                strong_edges = [ List.hd genesis ];
                weak_edges = [] }
            in
            handle.Dagrider.Node.rbc_bcast ~payload:(Dagrider.Vertex.encode v)
              ~round:(1 + (step / 4))
          | 2 ->
            (* equivocation attempt: a second, different payload for a
               round it already used (reliable broadcast must dedupe) *)
            let v =
              { Dagrider.Vertex.round = 1;
                source = i;
                block = Printf.sprintf "equivocation-%d" step;
                strong_edges = genesis;
                weak_edges = [] }
            in
            handle.Dagrider.Node.rbc_bcast ~payload:(Dagrider.Vertex.encode v)
              ~round:1
          | _ ->
            (* edge sources out of range *)
            let v =
              { Dagrider.Vertex.round = 1 + (step / 4);
                source = i;
                block = "";
                strong_edges =
                  List.init 3 (fun k -> { Dagrider.Vertex.round = step / 4; source = n + k });
                weak_edges = [] }
            in
            handle.Dagrider.Node.rbc_bcast ~payload:(Dagrider.Vertex.encode v)
              ~round:(1 + (step / 4)));
          Sim.Engine.schedule engine ~delay:1.0 (fun () -> attack (step + 1))
        in
        Sim.Engine.schedule engine ~delay:0.5 (fun () -> attack 0));
      coin_stack.st_corrupt ~drop_in_flight:false i)
    options.faults;
  (* deterministic client traffic: one transaction per period per live
     process, injected by recurring engine events — no RNG stream, so a
     workload-driven run is still a pure function of the seed *)
  (match (options.workload, mempools) with
  | Some wl, Some pools ->
    let period = 1.0 /. wl.wl_rate in
    let gens =
      Array.init n (fun me ->
          Workload.Txgen.gen ~owner:me ~body_bytes:wl.wl_body_bytes)
    in
    for me = 0 to n - 1 do
      if not crashed.(me) then begin
        let rec inject () =
          let accepted =
            Workload.Mempool.submit pools.(me) (Workload.Txgen.next_tx gens.(me))
          in
          (match options.trace with
          | Some tr -> Trace.emit tr (Trace.Tx_submitted { node = me; accepted })
          | None -> ignore accepted);
          Sim.Engine.schedule engine ~delay:period inject
        in
        Sim.Engine.schedule engine ~delay:period inject
      end
    done
  | _ -> ());
  (* monitor probes only read state (and the sampler draws no RNG), so —
     like tracing — an attached monitor leaves delivery logs untouched *)
  (match mctx with
  | None -> ()
  | Some mc ->
    let mon = mc.mc_mon in
    let obs = mc.mc_observer in
    Monitor.add_probe mon ~name:"node.delivered" ~kind:Monitor.Counter
      (fun () ->
        float_of_int
          (Dagrider.Ordering.delivered_count
             (Dagrider.Node.ordering nodes.(obs))));
    Monitor.add_probe mon ~name:"commits" ~kind:Monitor.Counter (fun () ->
        float_of_int !(mc.mc_commits));
    Monitor.add_probe mon ~name:"dag.vertices" ~kind:Monitor.Gauge (fun () ->
        float_of_int (Dagrider.Dag.size (Dagrider.Node.dag nodes.(obs))));
    Monitor.add_probe mon ~name:"net.bits" ~kind:Monitor.Counter (fun () ->
        float_of_int (Metrics.Counters.total_bits counters));
    Monitor.add_probe mon ~name:"net.messages" ~kind:Monitor.Counter
      (fun () -> float_of_int (Metrics.Counters.total_messages counters));
    Monitor.add_probe mon ~name:"net.drops" ~kind:Monitor.Counter (fun () ->
        let sum counts = List.fold_left (fun a (_, c) -> a + c) 0 counts in
        float_of_int
          (sum (coin_stack.st_drop_counts ())
          + sum (sync_stack.st_drop_counts ())
          + sum (rbc_drop_counts ())));
    Monitor.add_probe mon ~name:"engine.events" ~kind:Monitor.Counter
      (fun () -> float_of_int (Sim.Engine.events_executed engine));
    Monitor.add_probe mon ~name:"gc.heap_words" ~kind:Monitor.Gauge (fun () ->
        float_of_int (Gc.quick_stat ()).Gc.heap_words);
    (match mempools with
    | None -> ()
    | Some pools ->
      let sum f = Array.fold_left (fun acc p -> acc + f p) 0 pools in
      Monitor.add_probe mon ~name:"tx.submitted" ~kind:Monitor.Counter
        (fun () -> float_of_int (sum Workload.Mempool.submitted));
      (* the observer retires every ordered transaction, its own and
         foreign alike — fleet ordering throughput from one vantage *)
      Monitor.add_probe mon ~name:"tx.ordered" ~kind:Monitor.Counter
        (fun () -> float_of_int (Workload.Mempool.retired pools.(obs)));
      Monitor.add_probe mon ~name:"mempool.pending" ~kind:Monitor.Gauge
        (fun () -> float_of_int (sum Workload.Mempool.pending));
      Monitor.add_probe mon ~name:"mempool.in_flight" ~kind:Monitor.Gauge
        (fun () -> float_of_int (sum Workload.Mempool.in_flight));
      Monitor.add_probe mon ~name:"mempool.rejected" ~kind:Monitor.Counter
        (fun () -> float_of_int (sum Workload.Mempool.rejected)));
    (* critical-path SLO series: the live segment means the streaming
       collector maintains — where each committed vertex's latency went *)
    (match critpath with
    | None -> ()
    | Some cp ->
      List.iter
        (fun (name, kind) ->
          Monitor.add_probe mon ~name ~kind (fun () ->
              match List.assoc_opt name (Critpath.segment_means cp) with
              | Some v -> v
              | None -> 0.0))
        ([ ("critpath.commits", Monitor.Counter);
           ("critpath.reconciled", Monitor.Counter);
           ("critpath.quorum-wait.mean", Monitor.Gauge);
           ("critpath.transit.mean", Monitor.Gauge);
           ("critpath.order-wait.mean", Monitor.Gauge);
           ("critpath.total.mean", Monitor.Gauge) ]
        @
        (* per-tx mempool dwell only exists on workload-driven runs;
           keep workload-free series free of the always-zero column *)
        match mempools with
        | None -> []
        | Some _ -> [ ("critpath.mempool-wait.mean", Monitor.Gauge) ]));
    (match options.trace with
    | None -> ()
    | Some tr -> Monitor.set_trace mon tr);
    Sim.Engine.set_sampler engine ~interval:(Monitor.interval mon)
      (fun ~time ~executed:_ ~pending:_ -> Monitor.sample mon ~now:time));
  { options;
    engine;
    counters;
    coin;
    coin_stack;
    sync_stack;
    make_rbc;
    node_config = config;
    nodes;
    silence_rbc;
    rbc_link_stats;
    rbc_retransmits;
    rbc_drop_counts;
    faulty;
    crashed;
    attack_drivers;
    latency;
    analyzer;
    forensics;
    critpath;
    mempools;
    mctx;
    started = false }

let engine t = t.engine
let counters t = t.counters
let coin t = t.coin
let nodes t = t.nodes
let options t = t.options
let node t i = t.nodes.(i)
let mempools t = t.mempools
let monitor t = t.options.monitor

let is_correct t i = not t.faulty.(i)

let correct_indices t =
  List.filter (is_correct t) (List.init t.options.n (fun i -> i))

let start t =
  if not t.started then begin
    t.started <- true;
    Array.iteri
      (fun i node -> if not t.crashed.(i) then Dagrider.Node.start node)
      t.nodes
  end

let run t ~until =
  start t;
  ignore (Sim.Engine.run t.engine ~until ())

let delivered_logs t =
  Array.map Dagrider.Node.delivered_log t.nodes

let delivered_refs t =
  Array.map
    (fun node -> List.map Dagrider.Vertex.vref_of (Dagrider.Node.delivered_log node))
    t.nodes

let silence_node t ?(drop_in_flight = true) i =
  if i < 0 || i >= t.options.n then invalid_arg "Runner.silence_node: bad index";
  t.faulty.(i) <- true;
  t.silence_rbc ~drop_in_flight i;
  t.coin_stack.st_corrupt ~drop_in_flight i;
  t.coin_stack.st_detach i;
  t.sync_stack.st_corrupt ~drop_in_flight i;
  t.sync_stack.st_detach i

let run_until_delivered t ~count ~max_time =
  start t;
  let done_ () =
    List.for_all
      (fun i ->
        Dagrider.Ordering.delivered_count (Dagrider.Node.ordering t.nodes.(i))
        >= count)
      (correct_indices t)
  in
  let rec loop horizon =
    if done_ () then Some (Sim.Engine.now t.engine)
    else if horizon >= max_time then None
    else begin
      ignore (Sim.Engine.run t.engine ~until:horizon ());
      loop (horizon +. 1.0)
    end
  in
  loop 1.0

(* logs must be prefix-comparable pairwise; comparing everyone against
   the longest log gives the same answer in one pass *)
let check_total_order t =
  let correct = correct_indices t in
  let logs =
    List.map
      (fun i -> (i, Array.of_list (Dagrider.Node.delivered_log t.nodes.(i))))
      correct
  in
  match logs with
  | [] -> Ok ()
  | _ ->
    let _, longest =
      List.fold_left
        (fun ((_, best) as acc) ((_, log) as cand) ->
          if Array.length log > Array.length best then cand else acc)
        (List.hd logs) (List.tl logs)
    in
    let rec check_one = function
      | [] -> Ok ()
      | (i, log) :: rest ->
        let rec cmp j =
          if j >= Array.length log then check_one rest
          else if
            Dagrider.Vertex.vref_of log.(j)
            <> Dagrider.Vertex.vref_of longest.(j)
          then
            Error
              (Printf.sprintf
                 "node %d diverges at position %d: (r=%d,p=%d) vs (r=%d,p=%d)"
                 i j log.(j).Dagrider.Vertex.round log.(j).Dagrider.Vertex.source
                 longest.(j).Dagrider.Vertex.round longest.(j).Dagrider.Vertex.source)
          else cmp (j + 1)
        in
        cmp 0
    in
    check_one logs

let check_integrity t =
  let correct = correct_indices t in
  let rec check_logs = function
    | [] -> Ok ()
    | i :: rest ->
      let log = Dagrider.Node.delivered_log t.nodes.(i) in
      let seen = Hashtbl.create 256 in
      let rec scan = function
        | [] -> check_logs rest
        | v :: vs ->
          let key = Dagrider.Vertex.vref_of v in
          if Hashtbl.mem seen key then
            Error
              (Printf.sprintf "node %d delivered (r=%d,p=%d) twice" i
                 key.Dagrider.Vertex.round key.Dagrider.Vertex.source)
          else begin
            Hashtbl.add seen key ();
            scan vs
          end
      in
      scan log
  in
  check_logs correct

let honest_bits t =
  Metrics.Counters.total_bits_from t.counters ~senders:(is_correct t)

let latency t = t.latency

(* ---- loss diagnostics: aggregate across the three stacks ---- *)

let link_stats t =
  Net.Link.add_stats
    (t.coin_stack.st_link_stats ())
    (Net.Link.add_stats (t.sync_stack.st_link_stats ()) (t.rbc_link_stats ()))

let merge_counts pairs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (key, count) ->
      let cell =
        match Hashtbl.find_opt tbl key with
        | Some cell -> cell
        | None ->
          let cell = ref 0 in
          Hashtbl.add tbl key cell;
          cell
      in
      cell := !cell + count)
    pairs;
  List.sort compare (Hashtbl.fold (fun k cell acc -> (k, !cell) :: acc) tbl [])

let drop_counts t =
  merge_counts
    (t.coin_stack.st_drop_counts ()
    @ t.sync_stack.st_drop_counts ()
    @ t.rbc_drop_counts ())

let retransmits_by_link t =
  merge_counts
    (t.coin_stack.st_retransmits ()
    @ t.sync_stack.st_retransmits ()
    @ t.rbc_retransmits ())

let metrics_snapshot t =
  let reg = Metrics.Registry.create () in
  (* name the commit rule explicitly ("rule.<name>" = 1) so downstream
     tooling doesn't have to infer it from span names like
     order.wave.<rule>, and export the rule's shape next to it *)
  let rule = effective_rule t.options in
  Metrics.Registry.incr reg ("rule." ^ rule.Dagrider.Ordering.rule_name) ();
  Metrics.Registry.set_gauge reg "rule.wave_length"
    (float_of_int rule.Dagrider.Ordering.rule_wave_length);
  Metrics.Registry.set_gauge reg "rule.waves_bound"
    rule.Dagrider.Ordering.rule_bound;
  Metrics.Registry.set_gauge reg "rule.commit_quorum"
    (float_of_int
       (match t.options.commit_quorum with
       | Some q -> q
       | None -> Dagrider.Ordering.quorum_of rule ~f:t.options.f));
  Metrics.Registry.incr reg "net.bits.total"
    ~by:(Metrics.Counters.total_bits t.counters) ();
  Metrics.Registry.incr reg "net.bits.honest" ~by:(honest_bits t) ();
  Metrics.Registry.incr reg "net.messages.total"
    ~by:(Metrics.Counters.total_messages t.counters) ();
  List.iter
    (fun (kind, bits) ->
      Metrics.Registry.incr reg ("net.bits." ^ kind) ~by:bits ())
    (Metrics.Counters.bits_by_kind t.counters);
  Metrics.Registry.set_gauge reg "engine.time" (Sim.Engine.now t.engine);
  Metrics.Registry.set_gauge reg "engine.events"
    (float_of_int (Sim.Engine.events_executed t.engine));
  Metrics.Registry.set_gauge reg "engine.pending"
    (float_of_int (Sim.Engine.pending t.engine));
  List.iter
    (Metrics.Registry.observe reg "latency.first_delivery")
    (Metrics.Latency.all_first_delivery_latencies t.latency);
  List.iter
    (Metrics.Registry.observe reg "latency.per_process")
    (Metrics.Latency.all_per_process_latencies t.latency);
  Array.iteri
    (fun i node ->
      Metrics.Registry.incr reg (Printf.sprintf "node.%d.delivered" i)
        ~by:(Dagrider.Ordering.delivered_count (Dagrider.Node.ordering node))
        ())
    t.nodes;
  List.iter
    (fun (reason, count) ->
      Metrics.Registry.incr reg ("net.drops." ^ reason) ~by:count ())
    (drop_counts t);
  (if t.options.link_faults <> None then
     let { Net.Link.data_sent;
           retransmits;
           gave_up;
           dup_suppressed;
           corrupt_rejected;
           decode_failures } =
       link_stats t
     in
     Metrics.Registry.incr reg "link.data_sent" ~by:data_sent ();
     Metrics.Registry.incr reg "link.retransmits" ~by:retransmits ();
     Metrics.Registry.incr reg "link.gave_up" ~by:gave_up ();
     Metrics.Registry.incr reg "link.dup_suppressed" ~by:dup_suppressed ();
     Metrics.Registry.incr reg "link.corrupt_rejected" ~by:corrupt_rejected ();
     Metrics.Registry.incr reg "link.decode_failures" ~by:decode_failures ());
  (match t.mempools with
  | None -> ()
  | Some pools ->
    let sum f = Array.fold_left (fun acc p -> acc + f p) 0 pools in
    Metrics.Registry.set_gauge reg "mempool.pending"
      (float_of_int (sum Workload.Mempool.pending));
    Metrics.Registry.set_gauge reg "mempool.in_flight"
      (float_of_int (sum Workload.Mempool.in_flight));
    Metrics.Registry.set_gauge reg "mempool.submitted"
      (float_of_int (sum Workload.Mempool.submitted));
    Metrics.Registry.set_gauge reg "mempool.retired"
      (float_of_int (sum Workload.Mempool.retired));
    Metrics.Registry.set_gauge reg "mempool.rejected"
      (float_of_int (sum Workload.Mempool.rejected)));
  (* tracer ring health: nonzero dropped_events means [Trace.events] is
     a suffix of the run — replay-based tools should warn *)
  (match t.options.trace with
  | None -> ()
  | Some tr ->
    Metrics.Registry.set_gauge reg "trace.emitted"
      (float_of_int (Trace.emitted tr));
    Metrics.Registry.set_gauge reg "trace.dropped_events"
      (float_of_int (Trace.dropped tr));
    Metrics.Registry.set_gauge reg "trace.capacity"
      (float_of_int (Trace.capacity tr));
    Metrics.Registry.set_gauge reg "trace.occupancy"
      (float_of_int (Trace.occupancy tr)));
  (match t.critpath with
  | None -> ()
  | Some cp ->
    List.iter
      (fun (name, v) -> Metrics.Registry.set_gauge reg name v)
      (Critpath.segment_means cp));
  let gcs = Gc.quick_stat () in
  Metrics.Registry.set_gauge reg "gc.minor_collections"
    (float_of_int gcs.Gc.minor_collections);
  Metrics.Registry.set_gauge reg "gc.major_collections"
    (float_of_int gcs.Gc.major_collections);
  Metrics.Registry.set_gauge reg "gc.promoted_words" gcs.Gc.promoted_words;
  Metrics.Registry.set_gauge reg "gc.top_heap_words"
    (float_of_int gcs.Gc.top_heap_words);
  (match Prof.installed () with
  | None -> ()
  | Some prof ->
    List.iter
      (fun (r : Prof.row) ->
        let base = "prof." ^ r.Prof.r_name in
        Metrics.Registry.incr reg (base ^ ".calls") ~by:r.Prof.r_count ();
        Metrics.Registry.set_gauge reg (base ^ ".self_s") r.Prof.r_self_s;
        Metrics.Registry.set_gauge reg (base ^ ".total_s") r.Prof.r_total_s;
        Metrics.Registry.set_gauge reg (base ^ ".alloc_bytes")
          r.Prof.r_alloc_bytes;
        List.iter (Metrics.Registry.observe reg base) r.Prof.r_samples)
      (Prof.rows prof));
  Metrics.Registry.snapshot reg

let analysis_config t =
  let byzantine =
    List.filter (fun i -> t.faulty.(i)) (List.init t.options.n (fun i -> i))
  in
  let observer =
    match correct_indices t with i :: _ -> Some i | [] -> Some 0
  in
  let rule = effective_rule t.options in
  { Analyze.default_config with
    wave_length = rule.Dagrider.Ordering.rule_wave_length;
    rule_name = rule.Dagrider.Ordering.rule_name;
    round_robin_n =
      (match rule.Dagrider.Ordering.rule_schedule with
      | Dagrider.Ordering.Coin -> None
      | Dagrider.Ordering.Round_robin -> Some t.options.n);
    waves_bound = rule.Dagrider.Ordering.rule_bound;
    f = Some t.options.f;
    byzantine;
    observer }

let analysis t =
  match t.analyzer with
  | None -> None
  | Some acc -> Some (Analyze.finalize ~config:(analysis_config t) acc)

let analysis_report t = Option.map Analyze.report_to_json (analysis t)

let forensics t = t.forensics

let critpath t = t.critpath

let critpath_report t =
  Option.map (fun cp -> Critpath.finalize cp) t.critpath

type attack_report = {
  ar_node : int;
  ar_spec : Attack.spec;
  ar_victims : int list;
  ar_forks : Attack.fork list;
  ar_lies : Attack.lie list;
  ar_actions : int;
}

let attack_reports t =
  let reports = ref [] in
  Array.iteri
    (fun i d ->
      match d with
      | None -> ()
      | Some driver ->
        let spec =
          List.fold_left
            (fun acc fault ->
              match fault with
              | Adversary (j, spec) when j = i -> Some spec
              | _ -> acc)
            None t.options.faults
        in
        let spec =
          match spec with Some s -> s | None -> assert false
        in
        reports :=
          { ar_node = i;
            ar_spec = spec;
            ar_victims = Attack.victims driver;
            ar_forks = Attack.forks driver;
            ar_lies = Attack.lies driver;
            ar_actions = Attack.actions driver }
          :: !reports)
    t.attack_drivers;
  List.rev !reports

let restart_node t i =
  if i < 0 || i >= t.options.n then invalid_arg "Runner.restart_node: bad index";
  if t.crashed.(i) then
    invalid_arg
      "Runner.restart_node: process never started (crashed/silent from \
       genesis) — there is no state to restart from";
  let ck = Dagrider.Node.checkpoint t.nodes.(i) in
  (* serialize and reload, as a disk-backed restart would *)
  let dag =
    match
      Dagrider.Snapshot.dag_of_string
        (Dagrider.Snapshot.dag_to_string ck.Dagrider.Node.ck_dag)
    with
    | Ok d -> d
    | Error e -> invalid_arg ("Runner.restart_node: snapshot corrupt: " ^ e)
  in
  let delivered_refs =
    match
      Dagrider.Snapshot.delivered_of_string
        (Dagrider.Snapshot.delivered_to_string
           (List.map Dagrider.Vertex.vref_of ck.Dagrider.Node.ck_delivered))
    with
    | Ok refs -> refs
    | Error e -> invalid_arg ("Runner.restart_node: delivered log corrupt: " ^ e)
  in
  let ck =
    { Dagrider.Node.ck_dag = dag;
      ck_delivered =
        List.map (fun r -> Option.get (Dagrider.Dag.find dag r)) delivered_refs;
      ck_decided_wave = ck.Dagrider.Node.ck_decided_wave;
      ck_round = ck.Dagrider.Node.ck_round }
  in
  let a_deliver, on_commit, block_source =
    node_hooks ~options:t.options ~engine:t.engine ~latency:t.latency
      ~mempools:t.mempools ~mctx:t.mctx ~me:i
  in
  let restored =
    Dagrider.Node.restore ~config:t.node_config ~me:i ~coin:t.coin
      ~coin_net:t.coin_stack.st_port ~make_rbc:t.make_rbc
      ~sync_net:t.sync_stack.st_port
      ~sync_trusting:t.options.sync_trusting ?trace:t.options.trace
      ~block_source
      ~a_deliver ~on_commit ck
  in
  t.nodes.(i) <- restored;
  (* Re-registration ordering: [restore] re-registered i's handlers on
     the shared ports and issued its first sync request before we made
     the instance visible in [t.nodes]. Responses travel through the
     engine queue, so by the time any arrives the swap below has
     happened — this also makes restarting mid-partition legal (the
     requests are just frames; losing them is what the retries below
     are for). The check guards that ordering against refactors. *)
  assert (t.nodes.(i) == restored);
  (* Follow-up syncs collect vertices whose broadcasts straddled the
     restart. The old schedule was a fixed +5/+10 pair — under loss or
     a partition both were often lost, and on a calm network the second
     was redundant. Replace it with seeded exponential backoff + jitter
     + give-up, mirroring Net.Link's retransmit policy. The stream is
     keyed off the run seed and the process index (not split from the
     build-time chain), so replays stay byte-identical and builds
     without restarts draw nothing. *)
  let rng = Stdx.Rng.create ((t.options.seed lxor 0x5bac0ff) + (7919 * i)) in
  let backoff = 1.6 and max_rto = 20.0 and jitter = 0.3 and max_attempts = 6 in
  let jittered d = d *. (1.0 +. (jitter *. Stdx.Rng.float rng 1.0)) in
  (* caught up = no under-populated round below our frontier and a
     frontier no further than one round behind the live fleet's *)
  let caught_up () =
    let node = t.nodes.(i) in
    let dag = Dagrider.Node.dag node in
    let hi = Dagrider.Dag.highest_round dag in
    let quorum = t.options.n - t.options.f in
    let rec hole r =
      if r >= hi then false
      else if Dagrider.Dag.round_size dag r < quorum then true
      else hole (r + 1)
    in
    let fleet_hi = ref 0 in
    Array.iteri
      (fun j other ->
        if j <> i && (not t.faulty.(j)) && not t.crashed.(j) then
          fleet_hi :=
            max !fleet_hi
              (Dagrider.Dag.highest_round (Dagrider.Node.dag other)))
      t.nodes;
    (not (hole 1)) && hi + 1 >= !fleet_hi
  in
  let emit kind =
    match t.options.trace with
    | None -> ()
    | Some tr -> Trace.emit tr kind
  in
  let rec retry ~attempt ~rto =
    if caught_up () then ()
    else if attempt > max_attempts then
      emit (Trace.Sync_gave_up { node = i; attempts = max_attempts })
    else begin
      let node = t.nodes.(i) in
      emit
        (Trace.Sync_retry
           { node = i;
             attempt;
             from_round =
               Dagrider.Dag.highest_round (Dagrider.Node.dag node) + 1 });
      if Dagrider.Node.request_sync node then begin
        let next_rto = min max_rto (rto *. backoff) in
        Sim.Engine.schedule t.engine ~delay:(jittered next_rto) (fun () ->
            retry ~attempt:(attempt + 1) ~rto:next_rto)
      end
    end
  in
  Sim.Engine.schedule t.engine ~delay:(jittered 3.0) (fun () ->
      retry ~attempt:1 ~rto:3.0)
