type backend = Bracha | Avid | Gossip

type schedule =
  | Synchronous
  | Uniform_random
  | Skewed_random
  | Custom of (Stdx.Rng.t -> Net.Sched.t)

type fault =
  | Crash of int
  | Byzantine_silent of int
  | Byzantine_live of int
  | Byzantine_attacker of int

type options = {
  n : int;
  f : int;
  seed : int;
  backend : backend;
  schedule : schedule;
  block_bytes : int;
  wave_length : int;
  commit_quorum : int option;
  enable_weak_edges : bool;
  gc_depth : int option;
  coin_in_dag : bool;
  coin_override : Crypto.Threshold_coin.t option;
  on_deliver :
    (node:int -> block:string -> round:int -> source:int -> time:float -> unit)
    option;
  on_commit : (node:int -> Dagrider.Ordering.commit -> unit) option;
  faults : fault list;
  trace : Trace.t option;
}

let default_options ~n =
  { n;
    f = (n - 1) / 3;
    seed = 42;
    backend = Bracha;
    schedule = Uniform_random;
    block_bytes = 32;
    wave_length = 4;
    commit_quorum = None;
    enable_weak_edges = true;
    gc_depth = None;
    coin_in_dag = false;
    coin_override = None;
    on_deliver = None;
    on_commit = None;
    faults = [];
    trace = None }

type t = {
  options : options;
  engine : Sim.Engine.t;
  counters : Metrics.Counters.t;
  coin : Crypto.Threshold_coin.t;
  coin_net : Dagrider.Node.coin_msg Net.Network.t;
  sync_net : Dagrider.Node.sync_msg Net.Network.t;
  make_rbc : Dagrider.Node.rbc_factory;
  node_config : Dagrider.Node.config;
  nodes : Dagrider.Node.t array;
  silence_rbc : drop_in_flight:bool -> int -> unit;
  faulty : bool array;  (* counted as Byzantine *)
  crashed : bool array; (* additionally, never started *)
  latency : Metrics.Latency.t;
  analyzer : Analyze.t option; (* streaming trace consumer, iff traced *)
  mutable started : bool;
}

let fault_index = function
  | Crash i | Byzantine_silent i | Byzantine_live i | Byzantine_attacker i -> i

let make_sched ~schedule ~rng =
  match schedule with
  | Synchronous -> Net.Sched.synchronous ()
  | Uniform_random -> Net.Sched.uniform_random ~rng
  | Skewed_random -> Net.Sched.skewed_random ~rng
  | Custom f -> f rng

(* Deterministic synthetic block: identifies its proposer and round, and
   pads to the requested size so communication accounting is realistic. *)
let synthetic_block ~block_bytes ~me ~round =
  let tag = Printf.sprintf "blk:p%d:r%d:" me round in
  if String.length tag >= block_bytes then tag
  else tag ^ String.make (block_bytes - String.length tag) 'x'

let build options =
  let { n; f; seed; _ } = options in
  if n < 1 || f < 0 then invalid_arg "Runner.build: bad n/f";
  let root_rng = Stdx.Rng.create seed in
  let sched_rng = Stdx.Rng.split root_rng in
  let coin_rng = Stdx.Rng.split root_rng in
  let gossip_rng = Stdx.Rng.split root_rng in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = make_sched ~schedule:options.schedule ~rng:sched_rng in
  let coin =
    match options.coin_override with
    | Some coin -> coin
    | None -> Crypto.Threshold_coin.setup ~rng:coin_rng ~n ~f
  in
  (* tracing is strictly additive: with [trace = None] nothing below is
     installed, so the event schedule is identical to an untraced build *)
  (match options.trace with
  | None -> ()
  | Some tr ->
    Trace.set_clock tr (fun () -> Sim.Engine.now engine);
    Sim.Engine.set_sampler engine ~interval:1.0
      (fun ~time:_ ~executed ~pending ->
        Trace.emit tr (Trace.Engine_sample { executed; pending })));
  (* a traced run also streams into the protocol analyzer, so
     [analysis_report] covers the whole run even when the ring wraps;
     the sink only reads events — it cannot perturb the schedule *)
  let analyzer =
    match options.trace with
    | None -> None
    | Some tr ->
      let acc = Analyze.create () in
      Trace.add_sink tr (Analyze.feed acc);
      Some acc
  in
  let coin_net = Net.Network.create ~engine ~sched ~counters ~n in
  let sync_net = Net.Network.create ~engine ~sched ~counters ~n in
  (match options.trace with
  | None -> ()
  | Some tr ->
    Net.Network.set_trace coin_net tr;
    Net.Network.set_trace sync_net tr);
  (* one typed network per backend protocol; same engine/schedule/counters,
     so semantically a single multiplexed network. [mute_rbc] silences a
     process on that network after wiring (true-crash fault injection). *)
  let (make_rbc : Dagrider.Node.rbc_factory),
      (silence_rbc : drop_in_flight:bool -> int -> unit) =
    let silencer net ~drop_in_flight i =
      Net.Network.corrupt net ~drop_in_flight i;
      Net.Network.unregister net i
    in
    let traced net =
      (match options.trace with
      | None -> ()
      | Some tr -> Net.Network.set_trace net tr);
      net
    in
    match options.backend with
    | Bracha ->
      let net = traced (Net.Network.create ~engine ~sched ~counters ~n) in
      ( (fun ~me ~deliver ->
          let b = Rbc.Bracha.create ~net ~me ~f ~deliver in
          (match options.trace with
          | None -> ()
          | Some tr -> Rbc.Bracha.set_trace b tr);
          { Dagrider.Node.rbc_bcast =
              (fun ~payload ~round -> Rbc.Bracha.bcast b ~payload ~round) }),
        silencer net )
    | Avid ->
      let net = traced (Net.Network.create ~engine ~sched ~counters ~n) in
      ( (fun ~me ~deliver ->
          let a = Rbc.Avid.create ~net ~me ~f ~deliver in
          (match options.trace with
          | None -> ()
          | Some tr -> Rbc.Avid.set_trace a tr);
          { Dagrider.Node.rbc_bcast =
              (fun ~payload ~round -> Rbc.Avid.bcast a ~payload ~round) }),
        silencer net )
    | Gossip ->
      let net = traced (Net.Network.create ~engine ~sched ~counters ~n) in
      ( (fun ~me ~deliver ->
          let rng = Stdx.Rng.split gossip_rng in
          let g = Rbc.Gossip.create ~net ~rng ~me ~f ~deliver () in
          (match options.trace with
          | None -> ()
          | Some tr -> Rbc.Gossip.set_trace g tr);
          { Dagrider.Node.rbc_bcast =
              (fun ~payload ~round -> Rbc.Gossip.bcast g ~payload ~round) }),
        silencer net )
  in
  let config =
    { Dagrider.Node.n;
      f;
      wave_length = options.wave_length;
      commit_quorum = options.commit_quorum;
      enable_weak_edges = options.enable_weak_edges;
      gc_depth = options.gc_depth;
      coin_mode =
        (if options.coin_in_dag then Dagrider.Node.In_dag
         else Dagrider.Node.Separate_network) }
  in
  let latency = Metrics.Latency.create () in
  let nodes =
    Array.init n (fun me ->
        let a_deliver =
          let user_hook =
            match options.on_deliver with
            | None -> fun ~block:_ ~round:_ ~source:_ -> ()
            | Some hook ->
              fun ~block ~round ~source ->
                hook ~node:me ~block ~round ~source
                  ~time:(Sim.Engine.now engine)
          in
          fun ~block ~round ~source ->
            Metrics.Latency.delivered latency block ~process:me
              ~now:(Sim.Engine.now engine);
            user_hook ~block ~round ~source
        in
        let on_commit =
          match options.on_commit with
          | None -> fun _ -> ()
          | Some hook -> fun commit -> hook ~node:me commit
        in
        (* [block_source] fires exactly when this node creates its round
           vertex, so the proposal timestamp lands on the vertex's birth *)
        let block_source ~round =
          let block =
            synthetic_block ~block_bytes:options.block_bytes ~me ~round
          in
          Metrics.Latency.proposed latency block ~now:(Sim.Engine.now engine);
          block
        in
        Dagrider.Node.create ~config ~me ~coin ~coin_net ~make_rbc ~sync_net
          ?trace:options.trace ~block_source ~a_deliver ~on_commit ())
  in
  let faulty = Array.make n false in
  let crashed = Array.make n false in
  List.iter
    (fun fault ->
      let i = fault_index fault in
      if i < 0 || i >= n then invalid_arg "Runner.build: fault index out of range";
      faulty.(i) <- true;
      (match fault with
      | Crash _ | Byzantine_silent _ ->
        crashed.(i) <- true;
        (* a silent process neither proposes nor relays: silence its RBC
           participation and its coin handler entirely *)
        silence_rbc ~drop_in_flight:false i;
        Net.Network.unregister coin_net i
      | Byzantine_live _ -> ()
      | Byzantine_attacker _ ->
        crashed.(i) <- true (* the honest node never starts... *);
        (* ...but an attacker endpoint takes its place: it keeps the RBC
           relay machinery (created by Node.create above) and injects a
           rotating menu of malicious broadcasts *)
        let handle =
          make_rbc ~me:i ~deliver:(fun ~payload:_ ~round:_ ~source:_ -> ())
        in
        let attack_rng = Stdx.Rng.create (seed + (1_000 * i)) in
        let genesis =
          List.init n (fun source -> { Dagrider.Vertex.round = 0; source })
        in
        let rec attack step =
          (match step mod 4 with
          | 0 ->
            (* undecodable garbage *)
            handle.Dagrider.Node.rbc_bcast
              ~payload:(String.init 40 (fun _ -> Char.chr (Stdx.Rng.int attack_rng 256)))
              ~round:(1 + (step / 4))
          | 1 ->
            (* structurally invalid vertex: too few strong edges *)
            let v =
              { Dagrider.Vertex.round = 1 + (step / 4);
                source = i;
                block = "bad";
                strong_edges = [ List.hd genesis ];
                weak_edges = [] }
            in
            handle.Dagrider.Node.rbc_bcast ~payload:(Dagrider.Vertex.encode v)
              ~round:(1 + (step / 4))
          | 2 ->
            (* equivocation attempt: a second, different payload for a
               round it already used (reliable broadcast must dedupe) *)
            let v =
              { Dagrider.Vertex.round = 1;
                source = i;
                block = Printf.sprintf "equivocation-%d" step;
                strong_edges = genesis;
                weak_edges = [] }
            in
            handle.Dagrider.Node.rbc_bcast ~payload:(Dagrider.Vertex.encode v)
              ~round:1
          | _ ->
            (* edge sources out of range *)
            let v =
              { Dagrider.Vertex.round = 1 + (step / 4);
                source = i;
                block = "";
                strong_edges =
                  List.init 3 (fun k -> { Dagrider.Vertex.round = step / 4; source = n + k });
                weak_edges = [] }
            in
            handle.Dagrider.Node.rbc_bcast ~payload:(Dagrider.Vertex.encode v)
              ~round:(1 + (step / 4)));
          Sim.Engine.schedule engine ~delay:1.0 (fun () -> attack (step + 1))
        in
        Sim.Engine.schedule engine ~delay:0.5 (fun () -> attack 0));
      Net.Network.corrupt coin_net ~drop_in_flight:false i)
    options.faults;
  { options;
    engine;
    counters;
    coin;
    coin_net;
    sync_net;
    make_rbc;
    node_config = config;
    nodes;
    silence_rbc;
    faulty;
    crashed;
    latency;
    analyzer;
    started = false }

let engine t = t.engine
let counters t = t.counters
let coin t = t.coin
let nodes t = t.nodes
let options t = t.options
let node t i = t.nodes.(i)

let is_correct t i = not t.faulty.(i)

let correct_indices t =
  List.filter (is_correct t) (List.init t.options.n (fun i -> i))

let start t =
  if not t.started then begin
    t.started <- true;
    Array.iteri
      (fun i node -> if not t.crashed.(i) then Dagrider.Node.start node)
      t.nodes
  end

let run t ~until =
  start t;
  ignore (Sim.Engine.run t.engine ~until ())

let delivered_logs t =
  Array.map Dagrider.Node.delivered_log t.nodes

let delivered_refs t =
  Array.map
    (fun node -> List.map Dagrider.Vertex.vref_of (Dagrider.Node.delivered_log node))
    t.nodes

let silence_node t ?(drop_in_flight = true) i =
  if i < 0 || i >= t.options.n then invalid_arg "Runner.silence_node: bad index";
  t.faulty.(i) <- true;
  t.silence_rbc ~drop_in_flight i;
  Net.Network.corrupt t.coin_net ~drop_in_flight i;
  Net.Network.unregister t.coin_net i;
  Net.Network.corrupt t.sync_net ~drop_in_flight i;
  Net.Network.unregister t.sync_net i

let run_until_delivered t ~count ~max_time =
  start t;
  let done_ () =
    List.for_all
      (fun i ->
        Dagrider.Ordering.delivered_count (Dagrider.Node.ordering t.nodes.(i))
        >= count)
      (correct_indices t)
  in
  let rec loop horizon =
    if done_ () then Some (Sim.Engine.now t.engine)
    else if horizon >= max_time then None
    else begin
      ignore (Sim.Engine.run t.engine ~until:horizon ());
      loop (horizon +. 1.0)
    end
  in
  loop 1.0

(* logs must be prefix-comparable pairwise; comparing everyone against
   the longest log gives the same answer in one pass *)
let check_total_order t =
  let correct = correct_indices t in
  let logs =
    List.map
      (fun i -> (i, Array.of_list (Dagrider.Node.delivered_log t.nodes.(i))))
      correct
  in
  match logs with
  | [] -> Ok ()
  | _ ->
    let _, longest =
      List.fold_left
        (fun ((_, best) as acc) ((_, log) as cand) ->
          if Array.length log > Array.length best then cand else acc)
        (List.hd logs) (List.tl logs)
    in
    let rec check_one = function
      | [] -> Ok ()
      | (i, log) :: rest ->
        let rec cmp j =
          if j >= Array.length log then check_one rest
          else if
            Dagrider.Vertex.vref_of log.(j)
            <> Dagrider.Vertex.vref_of longest.(j)
          then
            Error
              (Printf.sprintf
                 "node %d diverges at position %d: (r=%d,p=%d) vs (r=%d,p=%d)"
                 i j log.(j).Dagrider.Vertex.round log.(j).Dagrider.Vertex.source
                 longest.(j).Dagrider.Vertex.round longest.(j).Dagrider.Vertex.source)
          else cmp (j + 1)
        in
        cmp 0
    in
    check_one logs

let check_integrity t =
  let correct = correct_indices t in
  let rec check_logs = function
    | [] -> Ok ()
    | i :: rest ->
      let log = Dagrider.Node.delivered_log t.nodes.(i) in
      let seen = Hashtbl.create 256 in
      let rec scan = function
        | [] -> check_logs rest
        | v :: vs ->
          let key = Dagrider.Vertex.vref_of v in
          if Hashtbl.mem seen key then
            Error
              (Printf.sprintf "node %d delivered (r=%d,p=%d) twice" i
                 key.Dagrider.Vertex.round key.Dagrider.Vertex.source)
          else begin
            Hashtbl.add seen key ();
            scan vs
          end
      in
      scan log
  in
  check_logs correct

let honest_bits t =
  Metrics.Counters.total_bits_from t.counters ~senders:(is_correct t)

let latency t = t.latency

let metrics_snapshot t =
  let reg = Metrics.Registry.create () in
  Metrics.Registry.incr reg "net.bits.total"
    ~by:(Metrics.Counters.total_bits t.counters) ();
  Metrics.Registry.incr reg "net.bits.honest" ~by:(honest_bits t) ();
  Metrics.Registry.incr reg "net.messages.total"
    ~by:(Metrics.Counters.total_messages t.counters) ();
  List.iter
    (fun (kind, bits) ->
      Metrics.Registry.incr reg ("net.bits." ^ kind) ~by:bits ())
    (Metrics.Counters.bits_by_kind t.counters);
  Metrics.Registry.set_gauge reg "engine.time" (Sim.Engine.now t.engine);
  Metrics.Registry.set_gauge reg "engine.events"
    (float_of_int (Sim.Engine.events_executed t.engine));
  Metrics.Registry.set_gauge reg "engine.pending"
    (float_of_int (Sim.Engine.pending t.engine));
  List.iter
    (Metrics.Registry.observe reg "latency.first_delivery")
    (Metrics.Latency.all_first_delivery_latencies t.latency);
  List.iter
    (Metrics.Registry.observe reg "latency.per_process")
    (Metrics.Latency.all_per_process_latencies t.latency);
  Array.iteri
    (fun i node ->
      Metrics.Registry.incr reg (Printf.sprintf "node.%d.delivered" i)
        ~by:(Dagrider.Ordering.delivered_count (Dagrider.Node.ordering node))
        ())
    t.nodes;
  Metrics.Registry.snapshot reg

let analysis_config t =
  let byzantine =
    List.filter (fun i -> t.faulty.(i)) (List.init t.options.n (fun i -> i))
  in
  let observer =
    match correct_indices t with i :: _ -> Some i | [] -> Some 0
  in
  { Analyze.default_config with
    wave_length = t.options.wave_length;
    f = Some t.options.f;
    byzantine;
    observer }

let analysis t =
  match t.analyzer with
  | None -> None
  | Some acc -> Some (Analyze.finalize ~config:(analysis_config t) acc)

let analysis_report t = Option.map Analyze.report_to_json (analysis t)

let restart_node t i =
  if i < 0 || i >= t.options.n then invalid_arg "Runner.restart_node: bad index";
  let ck = Dagrider.Node.checkpoint t.nodes.(i) in
  (* serialize and reload, as a disk-backed restart would *)
  let dag =
    match
      Dagrider.Snapshot.dag_of_string
        (Dagrider.Snapshot.dag_to_string ck.Dagrider.Node.ck_dag)
    with
    | Ok d -> d
    | Error e -> invalid_arg ("Runner.restart_node: snapshot corrupt: " ^ e)
  in
  let delivered_refs =
    match
      Dagrider.Snapshot.delivered_of_string
        (Dagrider.Snapshot.delivered_to_string
           (List.map Dagrider.Vertex.vref_of ck.Dagrider.Node.ck_delivered))
    with
    | Ok refs -> refs
    | Error e -> invalid_arg ("Runner.restart_node: delivered log corrupt: " ^ e)
  in
  let ck =
    { Dagrider.Node.ck_dag = dag;
      ck_delivered =
        List.map (fun r -> Option.get (Dagrider.Dag.find dag r)) delivered_refs;
      ck_decided_wave = ck.Dagrider.Node.ck_decided_wave;
      ck_round = ck.Dagrider.Node.ck_round }
  in
  let a_deliver =
    let user_hook =
      match t.options.on_deliver with
      | None -> fun ~block:_ ~round:_ ~source:_ -> ()
      | Some hook ->
        fun ~block ~round ~source ->
          hook ~node:i ~block ~round ~source ~time:(Sim.Engine.now t.engine)
    in
    fun ~block ~round ~source ->
      Metrics.Latency.delivered t.latency block ~process:i
        ~now:(Sim.Engine.now t.engine);
      user_hook ~block ~round ~source
  in
  let on_commit =
    match t.options.on_commit with
    | None -> fun _ -> ()
    | Some hook -> fun commit -> hook ~node:i commit
  in
  let block_source ~round =
    let block =
      synthetic_block ~block_bytes:t.options.block_bytes ~me:i ~round
    in
    Metrics.Latency.proposed t.latency block ~now:(Sim.Engine.now t.engine);
    block
  in
  let restored =
    Dagrider.Node.restore ~config:t.node_config ~me:i ~coin:t.coin
      ~coin_net:t.coin_net ~make_rbc:t.make_rbc ~sync_net:t.sync_net
      ?trace:t.options.trace ~block_source ~a_deliver ~on_commit ck
  in
  t.nodes.(i) <- restored;
  (* broadcasts that straddled the restart surface a little later *)
  Sim.Engine.schedule t.engine ~delay:5.0 (fun () ->
      Dagrider.Node.request_sync restored);
  Sim.Engine.schedule t.engine ~delay:10.0 (fun () ->
      Dagrider.Node.request_sync restored)
