(** Experiment harnesses that regenerate the paper's Table 1 and the
    measured claims (DESIGN.md §4 index). Each function returns a
    rendered table plus the raw numbers the render came from, so the
    bench driver can print and EXPERIMENTS.md can quote them.

    Absolute numbers are simulator-specific; the reproduced artifact is
    the {e shape}: orderings between systems, growth exponents, and
    threshold positions. *)

type table = {
  title : string;
  header : string list;
  rows : string list list;
  snapshots : (string * Metrics.Registry.snapshot) list;
      (** labeled {!Metrics.Registry} snapshots of the underlying runs
          (per-kind bit counters, engine gauges, latency percentiles) —
          populated by the experiments that go through {!Runner}
          (currently E1 communication and the latency table); empty
          where the rendered rows are the whole story *)
  notes : string list;
}

val render : table -> string

val to_json : table -> Stdx.Json.t
(** The table plus its snapshots as one JSON object
    ([{"title", "header", "rows", "notes", "snapshots"}]); the bench's
    [--json] export is a list of these. *)

(** E1 — Table 1, communication complexity column. Bits sent by honest
    processes per ordered value, for each system and system size, plus
    log-log growth exponents. *)
val table1_communication : ?ns:int list -> ?seed:int -> unit -> table

(** E2 — Table 1, expected time complexity column. Virtual time units
    until O(n) values from distinct correct proposers are ordered
    (DAG-Rider) / until n concurrent slots are output in order (VABA and
    Dumbo SMRs, the Ben-Or–El-Yaniv O(log n) effect). *)
val table1_time : ?ns:int list -> ?seed:int -> unit -> table

(** E3 — Table 1, eventual fairness + post-quantum safety columns.
    Fairness is measured (victim share under a 25x targeted delay);
    post-quantum safety is structural (which primitives sit on each
    system's safety path). *)
val table1_fairness : ?seed:int -> unit -> table

(** The combined Table 1 reproduction: one row per system, all four
    columns, measured where measurable. *)
val table1_combined : ?seed:int -> unit -> table

(** E6 — Claim 6: expected number of waves until the commit rule fires.
    The paper proves <= 3/2 against the worst-case adversary; random and
    skewed schedules should sit well under that. *)
val claim6_waves : ?seed:int -> ?runs:int -> unit -> table

(** E7 — chain quality (§3): worst prefix ratio of correct-process
    vertices with f Byzantine-but-live processes. Bound: (f+1)/(2f+1). *)
val chain_quality : ?seed:int -> unit -> table

(** E8 — §6.2 batching amortization: bits per transaction as the batch
    size grows from 1 to n log n transactions per vertex. *)
val batching : ?seed:int -> unit -> table

(** Ablation — wave length (DESIGN.md §5): direct-commit probability and
    rounds per committed wave for wave lengths 2..6. *)
val ablation_wave_length : ?seed:int -> unit -> table

(** Ablation — reliable broadcast instantiation: bits per ordered value
    and delivery latency for Bracha / AVID / gossip at one system size,
    with small and large blocks (the Table 1 trade-off rows). *)
val ablation_rbc : ?seed:int -> unit -> table

(** Ablation — weak edges: victim inclusion with and without weak edges
    under censorship (the Validity mechanism). *)
val ablation_weak_edges : ?seed:int -> unit -> table

(** Ablation — coin transport: separate share channel vs the paper's
    footnote-1 in-DAG shares (bits, messages, progress). *)
val ablation_coin : ?seed:int -> unit -> table

(** Supporting measurement — proposal-to-delivery latency distribution
    per backend and coin transport (mean / p50 / p99 in time units). *)
val latency : ?seed:int -> unit -> table

(** Ablation — garbage collection: vertices retained vs delivered with
    pruning on/off, plus output equivalence. *)
val ablation_gc : ?seed:int -> unit -> table

(** Supporting measurement — throughput scaling: ordered transactions
    per time unit as n grows (DAG-Rider+AVID with batching). *)
val throughput : ?seed:int -> unit -> table

(** Supporting measurement — sustained load over time (the way
    Narwhal-lineage systems report headline numbers): an n=10 fleet
    under continuous client traffic, flight-recorded each virtual time
    unit. Rows are windowed tx/s, commits/s, and sliding p99 latency
    over the run, next to the observer's DAG size with garbage
    collection off (the paper's setting — grows without bound) and with
    gc_depth 8. The monitored fleet's metrics snapshot (including the
    mempool gauges) rides along for the bench's JSON export. *)
val sustained_load : ?seed:int -> unit -> table

(** Related work (paper §7) — Aleph-style per-vertex binary agreement
    vs DAG-Rider: validity under censorship, per-vertex cost, agreement
    instance counts. *)
val related_work : ?seed:int -> unit -> table

(** Commit rules on one DAG substrate — DAG-Rider (4-round waves, coin
    leaders) vs Bullshark (2-round waves, round-robin leaders):
    proposal-to-delivery latency on identical seeded synchronous
    schedules at n = 4 and n = 10. The rule changes no network draw, so
    the latency delta is attributable to the commit rule alone. *)
val rules_latency : ?seed:int -> unit -> table

val all : ?seed:int -> unit -> table list
(** Every table above, in DESIGN.md §4 order. *)
