type table = {
  title : string;
  header : string list;
  rows : string list list;
  snapshots : (string * Metrics.Registry.snapshot) list;
  notes : string list;
}

let render t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (Stdx.Table.render ~header:t.header ~rows:t.rows);
  List.iter (fun n -> Buffer.add_string buf ("  note: " ^ n ^ "\n")) t.notes;
  Buffer.contents buf

let to_json t =
  let str s = Stdx.Json.String s in
  Stdx.Json.Obj
    [ ("title", str t.title);
      ("header", Stdx.Json.List (List.map str t.header));
      ( "rows",
        Stdx.Json.List
          (List.map (fun r -> Stdx.Json.List (List.map str r)) t.rows) );
      ("notes", Stdx.Json.List (List.map str t.notes));
      ( "snapshots",
        Stdx.Json.Obj
          (List.map
             (fun (k, s) -> (k, Metrics.Registry.snapshot_to_json s))
             t.snapshots) ) ]

let fmt_int = string_of_int
let fmt_float f = Printf.sprintf "%.2f" f

(* ---- shared drivers ---- *)

(* Run DAG-Rider and return (honest bits, values ordered at p0, time to
   order >= count values from distinct correct sources). *)
let run_dagrider ~backend ~n ~seed ~block_bytes ~until () =
  let opts =
    { (Runner.default_options ~n) with backend; seed; block_bytes }
  in
  let h = Runner.build opts in
  Runner.run h ~until;
  let log = Dagrider.Node.delivered_log (Runner.node h 0) in
  (Runner.honest_bits h, List.length log, h)

(* time until node 0 has ordered values from >= count distinct sources *)
let dagrider_time_to_distinct ?schedule ~backend ~n ~seed ~count ~max_time () =
  let opts =
    { (Runner.default_options ~n) with backend; seed; block_bytes = 32 }
  in
  let opts =
    match schedule with None -> opts | Some schedule -> { opts with schedule }
  in
  let h = Runner.build opts in
  Runner.start h;
  let distinct_sources () =
    Dagrider.Node.delivered_log (Runner.node h 0)
    |> List.map (fun v -> v.Dagrider.Vertex.source)
    |> List.sort_uniq compare |> List.length
  in
  let rec loop t =
    if distinct_sources () >= count then Some (Sim.Engine.now (Runner.engine h))
    else if t >= max_time then None
    else begin
      ignore (Sim.Engine.run (Runner.engine h) ~until:t ());
      loop (t +. 0.5)
    end
  in
  loop 0.5

type smr_run = {
  smr_bits : int;
  smr_outputs : int;
  smr_time_n_slots : float option; (* time until n slots output in order *)
  smr_victim_outputs : int;
}

let run_smr ~protocol ~n ~seed ~block_bytes ~until ?(victim_factor = 1.0)
    ?(bimodal = false) () =
  let f = (n - 1) / 3 in
  let rng = Stdx.Rng.create seed in
  let sched_rng = Stdx.Rng.split rng in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let base =
    if bimodal then
      (* fixed sluggish set: the last f processes are 100x slow for the
         whole run (legal asynchrony; they are still correct) *)
      Net.Sched.delay_matching
        ~inner:(Net.Sched.uniform_random ~rng:sched_rng)
        ~pred:(fun ~src ~dst:_ ~kind:_ -> src >= n - f)
        ~factor:100.0
    else Net.Sched.uniform_random ~rng:sched_rng
  in
  let sched =
    if victim_factor > 1.0 then
      Net.Sched.delay_process ~inner:base ~victim:(n - 1) ~factor:victim_factor
    else base
  in
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.split rng) ~n in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n ~f in
  let outputs = ref 0 in
  let victim_outputs = ref 0 in
  let time_n = ref None in
  let batch ~slot ~me =
    let tag = Printf.sprintf "s%d;p%d;" slot me in
    if String.length tag >= block_bytes then tag
    else tag ^ String.make (block_bytes - String.length tag) 'x'
  in
  let smr =
    Baselines.Smr.create ~engine ~counters ~sched ~auth ~coin ~protocol ~n ~f
      ~concurrency:n ~total_slots:10_000 ~batch
      ~on_output:(fun ~slot ~value ~time ->
        incr outputs;
        if slot = n - 1 && !time_n = None then time_n := Some time;
        (match String.split_on_char ';' value with
        | _ :: p :: _ when p = Printf.sprintf "p%d" (n - 1) -> incr victim_outputs
        | _ -> ()))
      ()
  in
  Baselines.Smr.start smr;
  ignore (Sim.Engine.run engine ~until ());
  { smr_bits = Metrics.Counters.total_bits counters;
    smr_outputs = !outputs;
    smr_time_n_slots = !time_n;
    smr_victim_outputs = !victim_outputs }

(* ---- E1: communication ---- *)

let table1_communication ?(ns = [ 4; 7; 10; 13 ]) ?(seed = 42) () =
  (* the paper's metric (§3): bits sent by honest processes per ordered
     TRANSACTION, with batches of Theta(n log n) transactions per block
     — the amortization regime in which Table 1's O(n) rows are stated *)
  let tx_bytes = 64 in
  let until = 40.0 in
  let txs_per_block n =
    n * max 1 (int_of_float (Float.round (log (float_of_int n))))
  in
  let snapshots = ref [] in
  let dag name backend ~n =
    let block_bytes = tx_bytes * txs_per_block n in
    let bits, ordered, h = run_dagrider ~backend ~n ~seed ~block_bytes ~until () in
    snapshots :=
      (Printf.sprintf "%s/n=%d" name n, Runner.metrics_snapshot h)
      :: !snapshots;
    float_of_int bits /. float_of_int (max 1 (ordered * txs_per_block n))
  in
  let smr protocol ~n =
    let block_bytes = tx_bytes * txs_per_block n in
    let r = run_smr ~protocol ~n ~seed ~block_bytes ~until () in
    float_of_int r.smr_bits
    /. float_of_int (max 1 (r.smr_outputs * txs_per_block n))
  in
  let systems =
    [ ("VABA SMR", smr Baselines.Smr.Vaba_smr);
      ("Dumbo SMR", smr Baselines.Smr.Dumbo_smr);
      ("DAG-Rider+Bracha", dag "DAG-Rider+Bracha" Runner.Bracha);
      ("DAG-Rider+gossip", dag "DAG-Rider+gossip" Runner.Gossip);
      ("DAG-Rider+AVID", dag "DAG-Rider+AVID" Runner.Avid) ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        let per_n = List.map (fun n -> (float_of_int n, f ~n)) ns in
        let exponent = Stdx.Stats.growth_exponent per_n in
        name
        :: List.map (fun (_, v) -> Printf.sprintf "%.0f" v) per_n
        @ [ fmt_float exponent ])
      systems
  in
  { title =
      "E1 / Table 1: bits sent by honest processes per ordered transaction";
    header =
      ("system" :: List.map (fun n -> Printf.sprintf "n=%d" n) ns)
      @ [ "growth exp" ];
    rows;
    snapshots = List.rev !snapshots;
    notes =
      [ Printf.sprintf
          "%d-byte txs, n*round(ln n) txs per block; %g-time-unit horizon; seed %d"
          tx_bytes until seed;
        "paper's claimed amortized growth: VABA O(n^2); Dumbo O(n); \
         DAG-Rider+Bracha O(n^2) (echoes carry whole vertices); \
         DAG-Rider+gossip O(n log n); DAG-Rider+AVID O(n)" ] }

(* ---- E2: time ---- *)

let table1_time ?(ns = [ 4; 7; 10; 13 ]) ?(seed = 42) () =
  (* under a dispersed (bimodal) schedule, straggler messages make every
     single-shot instance's completion time a genuine random variable;
     the SMRs must output n concurrent slots IN ORDER, so they pay the
     max of n draws (the Ben-Or-El-Yaniv O(log n)), while DAG-Rider's
     waves keep ordering n proposers' values per commit at a flat rate *)
  let seeds = List.init 8 (fun i -> seed + i) in
  let avg xs =
    List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)
  in
  let dag_time ~n =
    (* "O(n) values proposed by different correct processes" = 2f+1
       distinct proposers; DAG-Rider is quorum-gated, so stragglers
       cannot hold it back *)
    let f = (n - 1) / 3 in
    avg
      (List.map
         (fun seed ->
           let schedule =
             Runner.Custom
               (fun rng ->
                 Net.Sched.delay_matching
                   ~inner:(Net.Sched.uniform_random ~rng)
                   ~pred:(fun ~src ~dst:_ ~kind:_ -> src >= n - f)
                   ~factor:100.0)
           in
           match
             dagrider_time_to_distinct ~schedule ~backend:Runner.Bracha ~n ~seed
               ~count:((2 * f) + 1) ~max_time:300.0 ()
           with
           | Some t -> t
           | None -> 300.0)
         seeds)
  in
  let smr_time ~protocol ~n =
    avg
      (List.map
         (fun seed ->
           let r =
             run_smr ~protocol ~n ~seed ~block_bytes:64 ~until:600.0
               ~bimodal:true ()
           in
           match r.smr_time_n_slots with Some t -> t | None -> 600.0)
         seeds)
  in
  let systems =
    [ ("VABA SMR", fun ~n -> smr_time ~protocol:Baselines.Smr.Vaba_smr ~n);
      ("Dumbo SMR", fun ~n -> smr_time ~protocol:Baselines.Smr.Dumbo_smr ~n);
      ("DAG-Rider", fun ~n -> dag_time ~n) ]
  in
  let rows =
    List.map
      (fun (name, f) ->
        let per_n = List.map (fun n -> f ~n) ns in
        let first = List.hd per_n and last = List.nth per_n (List.length per_n - 1) in
        name
        :: List.map fmt_float per_n
        @ [ fmt_float (last /. first) ])
      systems
  in
  { title =
      "E2 / Table 1: time units to order n values (n distinct proposers / n in-order slots)";
    header =
      ("system" :: List.map (fun n -> Printf.sprintf "n=%d" n) ns)
      @ [ "slowdown n_max/n_min" ];
    rows;
    snapshots = [];
    notes =
      [ "8-seed averages with the last f processes slowed 100x (legal \
         asynchrony); a slot whose coin elects a slowed leader burns \
         the view and retries — geometric views, so clearing n in-order \
         slots costs the max of n geometrics ~ O(log n) (Ben-Or & \
         El-Yaniv) — while DAG-Rider advances on the fast 2f+1 and one \
         commit orders every fast proposer's backlog at once (no \
         re-proposing), staying ~flat" ] }

(* ---- E3: fairness + post-quantum ---- *)

let fairness_measurement ~seed =
  let n = 4 in
  let horizon = 120.0 in
  let victim = n - 1 in
  (* DAG-Rider under censorship *)
  let dr_share =
    let schedule =
      Runner.Custom
        (fun rng ->
          Net.Sched.delay_process
            ~inner:(Net.Sched.uniform_random ~rng)
            ~victim ~factor:25.0)
    in
    let opts = { (Runner.default_options ~n) with seed; schedule } in
    let h = Runner.build opts in
    Runner.run h ~until:horizon;
    let log = Dagrider.Node.delivered_log (Runner.node h 0) in
    let total = List.length log in
    let hit =
      List.length (List.filter (fun v -> v.Dagrider.Vertex.source = victim) log)
    in
    float_of_int hit /. float_of_int (max 1 total)
  in
  let smr_share protocol =
    let r =
      run_smr ~protocol ~n ~seed ~block_bytes:64 ~until:horizon
        ~victim_factor:25.0 ()
    in
    float_of_int r.smr_victim_outputs /. float_of_int (max 1 r.smr_outputs)
  in
  (dr_share, smr_share Baselines.Smr.Vaba_smr, smr_share Baselines.Smr.Dumbo_smr)

let table1_fairness ?(seed = 42) () =
  let dr, vaba, dumbo = fairness_measurement ~seed in
  let pct x = Printf.sprintf "%.1f%%" (100.0 *. x) in
  { title =
      "E3 / Table 1: eventual fairness (victim share under 25x targeted delay; fair share 25%) and post-quantum safety";
    header = [ "system"; "victim share"; "eventually fair"; "post-quantum safety" ];
    rows =
      [ [ "VABA SMR"; pct vaba; (if vaba < 0.125 then "no" else "yes");
          "no (signatures on safety path)" ];
        [ "Dumbo SMR"; pct dumbo; (if dumbo < 0.125 then "no" else "yes");
          "no (signatures on safety path)" ];
        [ "DAG-Rider"; pct dr; (if dr >= 0.125 then "yes" else "NO");
          "yes (safety uses only hashes + info-theoretic coin agreement)" ] ];
    snapshots = [];
    notes =
      [ "n = 4, so an unbiased order gives the victim 25% of values;";
        "post-quantum column is structural: DAG-Rider's safety path has no \
         signature verification (grep the dagrider library for Auth — none)" ] }

let table1_combined ?(seed = 42) () =
  let comm = table1_communication ~ns:[ 4; 7; 10 ] ~seed () in
  let time = table1_time ~ns:[ 4; 7; 10 ] ~seed () in
  let dr, vaba, dumbo = fairness_measurement ~seed in
  let find rows name idx = List.nth (List.find (fun r -> List.hd r = name) rows) idx in
  let comm_exp name = find comm.rows name 4 in
  let time_cells name =
    Printf.sprintf "%s -> %s"
      (find time.rows name 1)
      (find time.rows name 3)
  in
  let fair x = if x >= 0.125 then "yes" else "no" in
  { title = "Table 1 (combined reproduction): measured shape per system";
    header =
      [ "system"; "comm growth exp (bits/value)"; "time n=4 -> n=10";
        "post-quantum safety"; "eventual fairness" ];
    rows =
      [ [ "VABA SMR"; comm_exp "VABA SMR"; time_cells "VABA SMR"; "no"; fair vaba ];
        [ "Dumbo SMR"; comm_exp "Dumbo SMR"; time_cells "Dumbo SMR"; "no"; fair dumbo ];
        [ "DAG-Rider+Bracha"; comm_exp "DAG-Rider+Bracha"; time_cells "DAG-Rider";
          "yes"; fair dr ];
        [ "DAG-Rider+gossip"; comm_exp "DAG-Rider+gossip"; time_cells "DAG-Rider";
          "yes"; fair dr ];
        [ "DAG-Rider+AVID"; comm_exp "DAG-Rider+AVID"; time_cells "DAG-Rider";
          "yes"; fair dr ] ];
    snapshots = [];
    notes =
      [ "paper's Table 1 claims: VABA O(n^2)/O(log n)/no/no; Dumbo \
         O(n)/O(log n)/no/no; DAG-Rider+Bracha O(n^2)/O(1)/yes/yes; +[25] \
         O(n log n)/O(1)/yes/(1-eps); +[14] O(n)/O(1)/yes/yes" ] }

(* ---- E6: Claim 6 ---- *)

let claim6_waves ?(seed = 42) ?(runs = 5) () =
  (* analyzer-backed: each run is traced and the per-wave records come
     from Analyze (waves processed per direct commit, i.e. how many
     waves pass until the commit rule fires) *)
  let measure ~schedule ~sched_name =
    let reports =
      List.map
        (fun s ->
          let opts =
            { (Runner.default_options ~n:4) with
              seed = seed + s;
              schedule;
              trace = Some (Trace.create ~capacity:4096 ()) }
          in
          let h = Runner.build opts in
          Runner.run h ~until:250.0;
          Option.get (Runner.analysis h))
        (List.init runs Fun.id)
    in
    let mean =
      List.fold_left (fun acc r -> acc +. r.Analyze.r_waves_per_commit) 0.0
        reports
      /. float_of_int runs
    in
    let skipped =
      List.fold_left (fun acc r -> acc + r.Analyze.r_waves_skipped) 0 reports
    in
    let anomalies =
      List.fold_left
        (fun acc r -> acc + List.length r.Analyze.r_anomalies)
        0 reports
    in
    [ sched_name; fmt_int runs; fmt_float mean;
      (if mean <= 1.5 then "<= 3/2: yes" else "above paper bound");
      fmt_int skipped; fmt_int anomalies ]
  in
  { title =
      "E6 / Claim 6: waves per direct commit, analyzer-derived (paper bound: \
       3/2 expected, worst case)";
    header =
      [ "schedule"; "runs"; "waves per commit"; "vs paper bound";
        "waves skipped"; "anomalies" ];
    rows =
      [ measure ~schedule:Runner.Uniform_random ~sched_name:"uniform random";
        measure ~schedule:Runner.Skewed_random ~sched_name:"skewed random";
        measure ~schedule:Runner.Synchronous ~sched_name:"synchronous" ];
    snapshots = [];
    notes =
      [ "the 3/2 bound is against the worst-case adaptive adversary; \
         non-adversarial schedules should sit near 1.0";
        "derived from traced runs via Analyze (same pipeline as \
         `dagrider_run analyze`): a wave counts against the bound when \
         the ordering processes it, and for it when its commit rule \
         fires directly" ] }

(* ---- E7: chain quality ---- *)

let chain_quality ?(seed = 42) () =
  (* analyzer-backed: the audit runs inside Analyze over the traced
     observer's a_deliver stream, so the same code path serves
     `dagrider_run analyze` and this experiment *)
  let run ~n ~f ~faults =
    let opts =
      { (Runner.default_options ~n) with
        seed;
        faults;
        trace = Some (Trace.create ~capacity:4096 ()) }
    in
    let h = Runner.build opts in
    Runner.run h ~until:100.0;
    let report = Option.get (Runner.analysis h) in
    let cq = report.Analyze.r_chain_quality in
    [ Printf.sprintf "n=%d f=%d" n f;
      fmt_int cq.Metrics.Chain_quality.total;
      fmt_float cq.Metrics.Chain_quality.worst_prefix_ratio;
      fmt_float report.Analyze.r_chain_quality_bound;
      (if cq.Metrics.Chain_quality.holds then "holds" else "VIOLATED") ]
  in
  { title = "E7 / chain quality: correct-process share of every ordered prefix";
    header =
      [ "config"; "values ordered"; "worst prefix ratio"; "paper bound (f+1)/(2f+1)";
        "verdict" ];
    rows =
      [ run ~n:4 ~f:1 ~faults:[ Runner.Byzantine_live 0 ];
        run ~n:7 ~f:2 ~faults:[ Runner.Byzantine_live 0; Runner.Byzantine_live 1 ];
        run ~n:10 ~f:3
          ~faults:
            [ Runner.Byzantine_live 0; Runner.Byzantine_live 1;
              Runner.Byzantine_live 2 ] ];
    snapshots = [];
    notes =
      [ "Byzantine-live processes run the protocol (their best strategy for \
         order share); the bound must hold on every (2f+1)-multiple prefix";
        "audited by the protocol analyzer over the traced observer's \
         a_deliver stream (same code path as `dagrider_run analyze`)" ] }

(* ---- E8: batching ---- *)

let batching ?(seed = 42) () =
  let n = 7 in
  let tx_bytes = 32 in
  let ln_n = int_of_float (ceil (log (float_of_int n))) in
  let run ~txs_per_block =
    let block_bytes = txs_per_block * tx_bytes in
    let bits, ordered, _ =
      run_dagrider ~backend:Runner.Bracha ~n ~seed ~block_bytes ~until:40.0 ()
    in
    let txs = ordered * txs_per_block in
    [ fmt_int txs_per_block;
      fmt_int ordered;
      fmt_int txs;
      Printf.sprintf "%.0f" (float_of_int bits /. float_of_int (max 1 txs)) ]
  in
  { title = "E8 / batching amortization (DAG-Rider+Bracha, n=7): bits per transaction vs batch size";
    header = [ "txs per block"; "blocks ordered"; "txs ordered"; "bits per tx" ];
    rows =
      [ run ~txs_per_block:1; run ~txs_per_block:n;
        run ~txs_per_block:(n * ln_n); run ~txs_per_block:(n * n);
        run ~txs_per_block:(4 * n * n) ];
    snapshots = [];
    notes =
      [ "the paper: batching O(n) proposals per vertex shaves a factor n off \
         per-transaction cost even with Bracha (\"since we are anyway \
         including a vector of O(n) references in every broadcast\")" ] }

(* ---- ablations ---- *)

let ablation_wave_length ?(seed = 42) () =
  let run ~wave_length =
    let opts =
      { (Runner.default_options ~n:4) with seed; wave_length }
    in
    let h = Runner.build opts in
    Runner.run h ~until:150.0;
    let node = Runner.node h 0 in
    let completed = Dagrider.Node.waves_completed node in
    let decided = Dagrider.Ordering.decided_wave (Dagrider.Node.ordering node) in
    let rounds = Dagrider.Node.current_round node in
    [ fmt_int wave_length;
      fmt_int completed;
      fmt_int decided;
      fmt_float (float_of_int decided /. float_of_int (max 1 completed));
      fmt_float (float_of_int rounds /. float_of_int (max 1 decided)) ]
  in
  { title = "Ablation: wave length (paper uses 4)";
    header =
      [ "wave len"; "waves completed"; "waves decided"; "decide rate";
        "rounds per decided wave" ];
    rows = List.map (fun wl -> run ~wave_length:wl) [ 2; 3; 4; 5; 6 ];
    snapshots = [];
    notes =
      [ "under non-adversarial schedules short waves also commit — the paper \
         needs >= 4 rounds for the common-core argument to bound the commit \
         probability against the worst-case adaptive adversary (Lemma 2); \
         longer waves just add latency" ] }

let ablation_rbc ?(seed = 42) () =
  let run ~backend ~name ~block_bytes =
    let bits, ordered, h =
      run_dagrider ~backend ~n:7 ~seed ~block_bytes ~until:40.0 ()
    in
    let now = Sim.Engine.now (Runner.engine h) in
    [ name;
      fmt_int block_bytes;
      fmt_int ordered;
      Printf.sprintf "%.0f" (float_of_int bits /. float_of_int (max 1 ordered));
      fmt_float (now /. float_of_int (max 1 ordered) *. float_of_int 7) ]
  in
  { title = "Ablation: reliable-broadcast instantiation (n=7)";
    header =
      [ "backend"; "block bytes"; "values ordered"; "bits per value";
        "time units per n values" ];
    rows =
      [ run ~backend:Runner.Bracha ~name:"Bracha" ~block_bytes:64;
        run ~backend:Runner.Gossip ~name:"gossip" ~block_bytes:64;
        run ~backend:Runner.Avid ~name:"AVID" ~block_bytes:64;
        run ~backend:Runner.Bracha ~name:"Bracha" ~block_bytes:4096;
        run ~backend:Runner.Gossip ~name:"gossip" ~block_bytes:4096;
        run ~backend:Runner.Avid ~name:"AVID" ~block_bytes:4096 ];
    snapshots = [];
    notes =
      [ "Bracha's echo/ready carry the whole vertex: it loses badly on large \
         blocks; AVID ships |block|/(f+1) fragments and wins there; gossip \
         trades certainty (epsilon failure) for subquadratic messages" ] }

let ablation_weak_edges ?(seed = 42) () =
  let run ~enable_weak_edges =
    let schedule =
      Runner.Custom
        (fun rng ->
          Net.Sched.delay_process
            ~inner:(Net.Sched.uniform_random ~rng)
            ~victim:3 ~factor:15.0)
    in
    let opts =
      { (Runner.default_options ~n:4) with seed; schedule; enable_weak_edges }
    in
    let h = Runner.build opts in
    Runner.run h ~until:150.0;
    let log = Dagrider.Node.delivered_log (Runner.node h 0) in
    let victim =
      List.length (List.filter (fun v -> v.Dagrider.Vertex.source = 3) log)
    in
    [ (if enable_weak_edges then "on (paper)" else "off");
      fmt_int (List.length log);
      fmt_int victim;
      (if victim > 0 then "validity holds" else "victim starved: validity broken") ]
  in
  { title = "Ablation: weak edges under censorship (victim's messages delayed 15x)";
    header = [ "weak edges"; "values ordered"; "from victim"; "verdict" ];
    rows = [ run ~enable_weak_edges:true; run ~enable_weak_edges:false ];
    snapshots = [];
    notes =
      [ "weak edges exist exactly to pull slow processes' vertices into \
         committed leaders' causal histories (paper §5, Validity)" ] }

(* ---- proposal-to-delivery latency ---- *)

let latency ?(seed = 42) () =
  let n = 4 in
  let injections_per_node = 15 in
  let snapshots = ref [] in
  let run ~backend ~name ~coin_in_dag =
    let recorder = Metrics.Latency.create () in
    let opts =
      { (Runner.default_options ~n) with
        seed;
        backend;
        coin_in_dag;
        on_deliver =
          Some
            (fun ~node ~block ~round:_ ~source:_ ~time ->
              ignore node;
              Metrics.Latency.delivered recorder block ~process:node ~now:time) }
    in
    let h = Runner.build opts in
    (* inject uniquely tagged blocks on a fixed cadence and record their
       proposal times *)
    let engine = Runner.engine h in
    for i = 0 to n - 1 do
      for k = 0 to injections_per_node - 1 do
        let at = 1.0 +. (2.0 *. float_of_int k) +. (0.1 *. float_of_int i) in
        Sim.Engine.schedule_at engine ~time:at (fun () ->
            let block = Printf.sprintf "probe:%d:%d" i k in
            Metrics.Latency.proposed recorder block ~now:(Sim.Engine.now engine);
            Dagrider.Node.a_bcast (Runner.node h i) block)
      done
    done;
    Runner.run h ~until:120.0;
    snapshots := (name, Runner.metrics_snapshot h) :: !snapshots;
    let stats = Stdx.Stats.create () in
    List.iter (Stdx.Stats.add stats) (Metrics.Latency.all_first_delivery_latencies recorder);
    let undelivered = List.length (Metrics.Latency.undelivered recorder) in
    [ name;
      fmt_int (Stdx.Stats.count stats);
      fmt_int undelivered;
      fmt_float (Stdx.Stats.mean stats);
      fmt_float (Stdx.Stats.percentile stats 50.0);
      fmt_float (Stdx.Stats.percentile stats 99.0) ]
  in
  { title =
      "Latency: proposal (a_bcast) to first delivery (a_deliver), in time units";
    header =
      [ "configuration"; "delivered"; "undelivered"; "mean"; "p50"; "p99" ];
    rows =
      [ run ~backend:Runner.Bracha ~name:"Bracha, separate coin" ~coin_in_dag:false;
        run ~backend:Runner.Bracha ~name:"Bracha, coin in DAG" ~coin_in_dag:true;
        run ~backend:Runner.Avid ~name:"AVID, separate coin" ~coin_in_dag:false;
        run ~backend:Runner.Gossip ~name:"gossip, separate coin" ~coin_in_dag:false ];
    snapshots = List.rev !snapshots;
    notes =
      [ Printf.sprintf
          "%d probes per process at a 2-unit cadence, n = %d; a probe's            latency spans: queueing in blocksToPropose + RBC of its vertex            + wave completion + coin resolution + commit"
          injections_per_node n ] }

(* ---- coin transport ablation (paper footnote 1) ---- *)

let ablation_coin ?(seed = 42) () =
  let run ~coin_in_dag =
    let opts =
      { (Runner.default_options ~n:7) with seed; coin_in_dag; block_bytes = 64 }
    in
    let h = Runner.build opts in
    Runner.run h ~until:60.0;
    let counters = Runner.counters h in
    let coin_bits =
      match List.assoc_opt "coin-share" (Metrics.Counters.bits_by_kind counters) with
      | Some b -> b
      | None -> 0
    in
    let node = Runner.node h 0 in
    [ (if coin_in_dag then "in DAG (footnote 1)" else "separate channel");
      fmt_int (Metrics.Counters.total_bits counters);
      fmt_int coin_bits;
      fmt_int (Metrics.Counters.total_messages counters);
      fmt_int (Dagrider.Ordering.delivered_count (Dagrider.Node.ordering node));
      fmt_int (Dagrider.Node.waves_completed node) ]
  in
  { title = "Ablation: coin share transport (paper footnote 1)";
    header =
      [ "coin transport"; "total bits"; "coin-share bits"; "messages";
        "delivered"; "waves" ];
    rows = [ run ~coin_in_dag:false; run ~coin_in_dag:true ];
    snapshots = [];
    notes =
      [ "embedding shares in the first vertex after each wave removes the          n^2-messages-per-wave coin channel entirely; shares then arrive          with reliable-broadcast deliveries, bound to their holder by the          broadcast's authenticated source" ] }

(* ---- garbage collection ablation ---- *)

let ablation_gc ?(seed = 42) () =
  let run gc_depth =
    let opts =
      { (Runner.default_options ~n:4) with seed; gc_depth; block_bytes = 64 }
    in
    let h = Runner.build opts in
    Runner.run h ~until:200.0;
    let node = Runner.node h 0 in
    let dag = Dagrider.Node.dag node in
    let retained = List.length (Dagrider.Dag.vertices dag) in
    let log = Dagrider.Node.delivered_log node in
    ( (match gc_depth with None -> "off (paper)" | Some d -> Printf.sprintf "depth %d" d),
      retained,
      List.length log,
      List.map Dagrider.Vertex.vref_of log )
  in
  let off_name, off_retained, off_delivered, off_log = run None in
  let on_name, on_retained, on_delivered, on_log = run (Some 8) in
  let row (name, retained, delivered) =
    [ name; fmt_int retained; fmt_int delivered;
      Printf.sprintf "%.1f%%" (100.0 *. float_of_int retained /. float_of_int (max 1 delivered)) ]
  in
  { title = "Ablation: garbage collection of delivered rounds (extension; off by default)";
    header = [ "gc"; "vertices retained"; "vertices delivered"; "retained/delivered" ];
    rows =
      [ row (off_name, off_retained, off_delivered);
        row (on_name, on_retained, on_delivered) ];
    snapshots = [];
    notes =
      [ Printf.sprintf "identical ordered output with GC on and off: %b"
          (off_log = on_log);
        "without GC the DAG grows linearly forever; pruning keeps a          constant window behind the decided wave (rounds whose vertices          were all delivered), which is what a long-lived deployment needs" ] }

(* ---- throughput scaling ---- *)

let throughput ?(seed = 42) () =
  let tx_bytes = 64 in
  let run ~n =
    let f = (n - 1) / 3 in
    let txs_per_block = n * 4 in
    let block_bytes = tx_bytes * txs_per_block in
    let until = 40.0 in
    let bits, ordered, h =
      run_dagrider ~backend:Runner.Avid ~n ~seed ~block_bytes ~until ()
    in
    let txs = ordered * txs_per_block in
    [ Printf.sprintf "n=%d f=%d" n f;
      fmt_int txs_per_block;
      fmt_int txs;
      Printf.sprintf "%.0f" (float_of_int txs /. Sim.Engine.now (Runner.engine h));
      Printf.sprintf "%.0f" (float_of_int bits /. float_of_int (max 1 txs)) ]
  in
  { title =
      "Throughput scaling (DAG-Rider+AVID, 4n txs per block): ordered txs per time unit";
    header = [ "system"; "txs/block"; "txs ordered"; "txs per time unit"; "bits per tx" ];
    rows = List.map (fun n -> run ~n) [ 4; 7; 10; 13 ];
    snapshots = [];
    notes =
      [ "every process proposes in every round, so throughput grows with n          while per-transaction cost stays amortized — the property the          paper's descendants (Narwhal/Bullshark) industrialized" ] }

(* ---- sustained load over time (monitor-instrumented) ---- *)

let sustained_load ?(seed = 42) () =
  let horizon = 120.0 in
  let step = 20.0 in
  let build gc_depth =
    let mon = Monitor.create ~interval:1.0 ~window:20.0 () in
    Monitor.add_slo mon
      (Monitor.Min_rate
         { series = "tx.ordered"; min_per_unit = 1.0; after = 30.0 });
    Monitor.add_slo mon (Monitor.Max_stall { series = "commits"; max_gap = 30.0 });
    let opts =
      { (Runner.default_options ~n:10) with
        seed;
        gc_depth;
        workload = Some { Runner.default_workload with wl_rate = 10.0 };
        monitor = Some mon }
    in
    (Runner.build opts, mon)
  in
  let nogc, mon_nogc = build None in
  let gc, mon_gc = build (Some 8) in
  let rows = ref [] in
  let t = ref 0.0 in
  while !t < horizon -. 0.5 do
    t := !t +. step;
    Runner.run nogc ~until:!t;
    Runner.run gc ~until:!t;
    rows :=
      [ Printf.sprintf "%.0f" !t;
        Printf.sprintf "%.1f" (Monitor.current mon_nogc "tx.ordered/rate");
        Printf.sprintf "%.2f" (Monitor.current mon_nogc "commits/rate");
        Printf.sprintf "%.2f" (Monitor.current mon_nogc "latency.p99");
        fmt_int (int_of_float (Monitor.current mon_nogc "dag.vertices"));
        fmt_int (int_of_float (Monitor.current mon_gc "dag.vertices")) ]
      :: !rows
  done;
  let final name = int_of_float (Monitor.current mon_nogc name) in
  { title =
      "Sustained load over time (n=10, 10 tx/unit/process): windowed rates, \
       tail latency, and DAG growth";
    header =
      [ "t"; "tx/s"; "commits/s"; "p99 latency"; "dag vertices (gc off)";
        "dag vertices (gc 8)" ];
    rows = List.rev !rows;
    snapshots = [ ("sustained-load n=10 gc off", Runner.metrics_snapshot nogc) ];
    notes =
      [ Printf.sprintf "health (gc off): %s; health (gc 8): %s"
          (Monitor.verdict mon_nogc) (Monitor.verdict mon_gc);
        Printf.sprintf
          "flight recorder took %d samples per fleet at interval %gu"
          (Monitor.total_samples mon_nogc)
          (Monitor.interval mon_nogc);
        Printf.sprintf
          "without §8 garbage collection the observer's DAG holds %d vertices \
           at t=%.0f and keeps growing linearly (window slope %+.1f \
           vertices/unit) — the unbounded-memory trend motivating ROADMAP \
           item 3; gc_depth 8 caps it at %d"
          (final "dag.vertices") horizon
          (Monitor.slope mon_nogc "dag.vertices")
          (int_of_float (Monitor.current mon_gc "dag.vertices")) ] }

(* ---- related work (paper section 7): Aleph vs DAG-Rider ---- *)

let related_work ?(seed = 42) () =
  let n = 4 and f = 1 in
  let horizon = 120.0 in
  let victim = 3 in
  let censor rng inner = Net.Sched.delay_process ~inner:(inner rng) ~victim ~factor:25.0 in
  let run_aleph () =
    let rng = Stdx.Rng.create seed in
    let engine = Sim.Engine.create () in
    let counters = Metrics.Counters.create () in
    let sched =
      censor (Stdx.Rng.split rng) (fun rng -> Net.Sched.uniform_random ~rng)
    in
    let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n ~f in
    let aleph =
      Baselines.Aleph.create ~engine ~counters ~sched ~coin ~n ~f
        ~block:(fun ~round ~me ->
          let tag = Printf.sprintf "a%d.%d." round me in
          tag ^ String.make (max 0 (32 - String.length tag)) 'x')
    in
    Baselines.Aleph.run aleph ~until:horizon;
    let log = Baselines.Aleph.delivered_log aleph 0 in
    let victim_count =
      List.length (List.filter (fun v -> v.Dagrider.Vertex.source = victim) log)
    in
    ( List.length log,
      victim_count,
      Metrics.Counters.total_bits counters,
      Baselines.Aleph.abba_instances_run aleph )
  in
  let run_dagrider () =
    let opts =
      { (Runner.default_options ~n) with
        seed;
        schedule =
          Runner.Custom
            (fun rng ->
              Net.Sched.delay_process
                ~inner:(Net.Sched.uniform_random ~rng)
                ~victim ~factor:25.0) }
    in
    let h = Runner.build opts in
    Runner.run h ~until:horizon;
    let log = Dagrider.Node.delivered_log (Runner.node h 0) in
    let victim_count =
      List.length (List.filter (fun v -> v.Dagrider.Vertex.source = victim) log)
    in
    (List.length log, victim_count, Metrics.Counters.total_bits (Runner.counters h), 0)
  in
  let a_total, a_victim, a_bits, a_instances = run_aleph () in
  let d_total, d_victim, d_bits, _ = run_dagrider () in
  let row name (total, victim_n, bits, instances) =
    [ name;
      fmt_int total;
      fmt_int victim_n;
      Printf.sprintf "%.0f" (float_of_int bits /. float_of_int (max 1 total));
      (if instances > 0 then fmt_int instances else "0 (coin only)") ]
  in
  { title =
      "Related work (section 7): Aleph-style BAB vs DAG-Rider under a 25x-censored process";
    header =
      [ "protocol"; "vertices ordered"; "from victim"; "bits per vertex";
        "binary-agreement endpoints" ];
    rows =
      [ row "Aleph (per-vertex ABBA)" (a_total, a_victim, a_bits, a_instances);
        row "DAG-Rider" (d_total, d_victim, d_bits, 0) ];
    snapshots = [];
    notes =
      [ "the paper's section-7 claims, measured: Aleph runs n binary          agreements per round and has no weak edges, so the censored          process's vertices are decided out and never ordered; DAG-Rider          orders them (Validity) and uses one coin flip per wave instead          of n agreement instances per round" ] }

(* ---- commit rules on one substrate: Bullshark vs DAG-Rider ---- *)

let rules_latency ?(seed = 42) () =
  let injections_per_node = 12 in
  let snapshots = ref [] in
  let run ~rule ~n =
    let recorder = Metrics.Latency.create () in
    let opts =
      { (Runner.default_options ~n) with
        seed;
        rule;
        schedule = Runner.Synchronous;
        on_deliver =
          Some
            (fun ~node ~block ~round:_ ~source:_ ~time ->
              Metrics.Latency.delivered recorder block ~process:node ~now:time) }
    in
    let h = Runner.build opts in
    (* the same probe cadence as the latency experiment; the schedule and
       every injection time are identical across rules, so the latency
       delta is attributable to the commit rule alone *)
    let engine = Runner.engine h in
    for i = 0 to n - 1 do
      for k = 0 to injections_per_node - 1 do
        let at = 1.0 +. (2.0 *. float_of_int k) +. (0.1 *. float_of_int i) in
        Sim.Engine.schedule_at engine ~time:at (fun () ->
            let block = Printf.sprintf "probe:%d:%d" i k in
            Metrics.Latency.proposed recorder block ~now:(Sim.Engine.now engine);
            Dagrider.Node.a_bcast (Runner.node h i) block)
      done
    done;
    Runner.run h ~until:120.0;
    let name = Printf.sprintf "%s, n=%d" rule.Dagrider.Ordering.rule_name n in
    snapshots := (name, Runner.metrics_snapshot h) :: !snapshots;
    let node = Runner.node h 0 in
    let stats = Stdx.Stats.create () in
    List.iter (Stdx.Stats.add stats)
      (Metrics.Latency.all_first_delivery_latencies recorder);
    ( Stdx.Stats.mean stats,
      [ name;
        fmt_int (Dagrider.Node.waves_completed node);
        fmt_int (Dagrider.Ordering.delivered_count (Dagrider.Node.ordering node));
        fmt_int (List.length (Metrics.Latency.undelivered recorder));
        fmt_float (Stdx.Stats.mean stats);
        fmt_float (Stdx.Stats.percentile stats 50.0);
        fmt_float (Stdx.Stats.percentile stats 99.0) ] )
  in
  let d4_mean, d4 = run ~rule:Dagrider.Ordering.dag_rider ~n:4 in
  let b4_mean, b4 = run ~rule:Dagrider.Ordering.bullshark ~n:4 in
  let d10_mean, d10 = run ~rule:Dagrider.Ordering.dag_rider ~n:10 in
  let b10_mean, b10 = run ~rule:Dagrider.Ordering.bullshark ~n:10 in
  { title =
      "Commit rules on one DAG substrate: proposal-to-delivery latency, synchronous schedule";
    header =
      [ "rule"; "waves"; "delivered"; "undelivered"; "mean"; "p50"; "p99" ];
    rows = [ d4; b4; d10; b10 ];
    snapshots = List.rev !snapshots;
    notes =
      [ Printf.sprintf
          "identical seeded schedules per n (the rule changes no network          draw); Bullshark mean latency vs DAG-Rider: n=4 %.2f vs %.2f,          n=10 %.2f vs %.2f"
          b4_mean d4_mean b10_mean d10_mean;
        "Bullshark's 2-round waves with a round-robin leader commit as          soon as f+1 last-round vertices carry a strong edge to it;          DAG-Rider pays 4 rounds per wave plus retrospective coin          resolution before any leader can be chosen" ] }

let all ?(seed = 42) () =
  [ table1_communication ~seed ();
    table1_time ~seed ();
    table1_fairness ~seed ();
    table1_combined ~seed ();
    claim6_waves ~seed ();
    chain_quality ~seed ();
    batching ~seed ();
    ablation_wave_length ~seed ();
    ablation_rbc ~seed ();
    ablation_weak_edges ~seed ();
    ablation_coin ~seed ();
    ablation_gc ~seed ();
    latency ~seed ();
    throughput ~seed ();
    sustained_load ~seed ();
    related_work ~seed ();
    rules_latency ~seed () ]
