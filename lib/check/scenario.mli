(** Randomized adversarial scenarios, fully determined by one seed.

    A scenario bundles everything the swarm driver needs to replay an
    execution bit-for-bit: fleet shape (n, f), reliable-broadcast
    backend, a composed delay schedule (base asynchrony plus windowed
    partitions, kind-targeted delay storms, slow processes, sluggish
    rotations), and a timed fault script (build-time crashes and
    Byzantine variants, mid-run adaptive corruptions, crash-recovery
    restarts). [generate ~seed] samples all of it from the seed alone,
    so a failing seed printed by the swarm IS the repro. *)

type base_sched = Uniform | Skewed | Bimodal | Heavy_tailed

type sched_layer =
  | Partition_window of {
      from_time : float;
      until_time : float;
      left : int list; (** one side of the cut *)
      factor : float;
    }
  | Kind_storm_window of {
      from_time : float;
      until_time : float;
      kinds : string list; (** message-kind prefixes to stretch *)
      factor : float;
    }
  | Slow_process of { victim : int; factor : float }
  | Hide_process of { victim : int; factor : float }
      (** stretch the victim's outgoing messages to everyone {e but}
          itself — its own chain stays intact while the rest of the
          fleet sees its vertices late (the sabotage attack's lever) *)
  | Sluggish of { period : float; factor : float }
      (** {!Net.Sched.mobile_sluggish} over the whole run *)

type fault_action =
  | Static of Harness.Runner.fault (** present from the start *)
  | Corrupt_at of { time : float; node : int }
      (** mid-run adaptive corruption ({!Harness.Runner.silence_node}:
          in-flight messages dropped per {!Net.Network.corrupt}) *)
  | Restart_at of { time : float; node : int }
      (** crash-recover a {e correct} process in place
          ({!Harness.Runner.restart_node}) *)

type t = {
  seed : int;
  quick : bool;
  sabotage : bool;
  n : int;
  f : int;
  backend : Harness.Runner.backend;
  rule : Dagrider.Ordering.rule;
      (** commit rule the fleet orders with; the DAG substrate and the
          sampled schedule are rule-independent *)
  base : base_sched;
  layers : sched_layer list;
  faults : fault_action list;
  horizon : float;
  commit_quorum : int option; (** [Some 0] in sabotage mode *)
  link_faults : Harness.Runner.link_faults option;
      (** lossy links under every protocol stack (drop / duplicate /
          corrupt / reorder per message; see
          {!Harness.Runner.options.link_faults}) *)
  lossy_forced : bool;
      (** [link_faults] came from the caller, not the seed — the repro
          command must carry the rates explicitly *)
  attack : (int * Attack.spec) option;
      (** the programmable adversary, if any — also present in [faults]
          as [Static (Adversary _)]; kept here so the CLI and repro
          rendering can reach the spec without pattern-matching the
          script *)
  attack_forced : bool;
      (** the adversary came from the caller ([~attack]), not the seed —
          the repro command must carry the [--attack] flag *)
  sync_weakened : bool;
      (** run the fleet with the deliberately weakened sync validator
          ([sync_trusting]; planted-vulnerability self-test only) *)
}

val generate :
  ?sabotage:bool ->
  ?quick:bool ->
  ?lossy:Harness.Runner.link_faults ->
  ?attack:Attack.spec ->
  ?weaken_sync:bool ->
  ?rule:Dagrider.Ordering.rule ->
  seed:int ->
  unit ->
  t
(** Sample a scenario. The fault script never makes more than [f]
    processes faulty in total (static plus mid-run), so every paper
    invariant must hold — any oracle violation is a bug. With
    [~sabotage:true] the fault script is empty but [commit_quorum] is
    weakened (commit-on-sight, below the rule's quorum) while the
    schedule hides the predicted leader's vertices, which breaks the
    quorum-intersection argument behind Lemma 2: the oracle must catch
    the resulting agreement / leader-support violations, proving it is
    not vacuous. See the comment in [scenario.ml] for why intermediate
    quorums such as [f+1] are still safe under honest reliable
    broadcast. [~quick] shrinks fleet sizes and the horizon for smoke
    runs.

    [~rule] (default {!Dagrider.Ordering.dag_rider}) selects the commit
    rule; it changes no sampled draw, so seed [s] under Bullshark runs
    the same fleet shape, schedule, and fault script as seed [s] under
    DAG-Rider. The sabotage attack is rule-aware: the slowed victim is
    the target wave's round-robin leader rather than the replayed
    coin's choice.

    Honest scenarios also sample lossy links (1 in 4), drawn after
    everything else so the rest of the scenario is unchanged vs the
    same seed without them; [~lossy] forces specific rates instead
    (ignored by sabotage scenarios, whose attack depends on exact
    delivery timing). Lossy scenarios double the horizon — the
    retransmit timeout stretches every quorum — and drop the validity
    promise while keeping every safety oracle.

    A programmable adversary ({!Attack.spec}) is drawn last of all —
    after even the lossy links — roughly 1 in 3 honest seeds whose
    sampled fault budget left room, so pre-adversary seeds replay
    unchanged. [~attack] forces a spec instead, consuming no draws: the
    forced adversary {e replaces} the sampled static faults (restarts
    are kept, and a forced [Lying_sync] run gains one if the seed
    sampled none) so the run stays within the [f] budget. [~weaken_sync]
    runs the fleet with the deliberately weakened sync validator
    ({!Harness.Runner.options.sync_trusting}) — the
    planted-vulnerability mode the self-test uses to prove the sync
    oracles are not vacuous; never combine it with an expectation of a
    clean run. *)

val build_sched : t -> Stdx.Rng.t -> Net.Sched.t
(** Compose the schedule: base policy wrapped by each layer (partitions
    and storms inside {!Net.Sched.with_window}). Pass as
    [Harness.Runner.Custom]. *)

val to_options : t -> Harness.Runner.options
(** Runner options for this scenario (schedule, static faults,
    [commit_quorum]); the driver adds its observation hooks on top. *)

val faulty_nodes : t -> int list
(** Distinct indices ever made faulty by the script (excludes
    restarts). *)

val expect_validity : t -> bool
(** Only fault-free honest scenarios promise that every process's
    proposals appear in every log within the horizon. *)

val describe : t -> string
(** One-line human summary (backend, schedule stack, fault script). *)

val describe_fault : fault_action -> string
