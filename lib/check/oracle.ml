type violation = {
  invariant : string;
  node : int;
  detail : string;
}

let pp v = Printf.sprintf "[%s] node %d: %s" v.invariant v.node v.detail

let pp_vref (r : Dagrider.Vertex.vref) =
  Printf.sprintf "(r=%d,p=%d)" r.Dagrider.Vertex.round r.Dagrider.Vertex.source

let check_agreement ~logs =
  match logs with
  | [] -> []
  | _ ->
    let arrays = List.map (fun (i, log) -> (i, Array.of_list log)) logs in
    let _, longest =
      List.fold_left
        (fun ((_, best) as acc) ((_, log) as cand) ->
          if Array.length log > Array.length best then cand else acc)
        (List.hd arrays) (List.tl arrays)
    in
    List.concat_map
      (fun (i, log) ->
        let rec cmp j =
          if j >= Array.length log then []
          else if log.(j) <> longest.(j) then
            [ { invariant = "agreement";
                node = i;
                detail =
                  Printf.sprintf "diverges at position %d: %s vs %s" j
                    (pp_vref log.(j)) (pp_vref longest.(j)) } ]
          else cmp (j + 1)
        in
        cmp 0)
      arrays

let check_extension ~node ~before ~after =
  let rec cmp j before after =
    match (before, after) with
    | [], _ -> []
    | _ :: _, [] ->
      [ { invariant = "extension";
          node;
          detail =
            Printf.sprintf "log shrank: %d entries left at position %d"
              (List.length before) j } ]
    | b :: bs, a :: as_ ->
      if b <> a then
        [ { invariant = "extension";
            node;
            detail =
              Printf.sprintf "rewrote position %d: %s became %s" j (pp_vref b)
                (pp_vref a) } ]
      else cmp (j + 1) bs as_
  in
  cmp 0 before after

let check_no_duplicates ~logs =
  List.concat_map
    (fun (i, log) ->
      let seen = Hashtbl.create 256 in
      let rec scan = function
        | [] -> []
        | r :: rest ->
          if Hashtbl.mem seen r then
            [ { invariant = "integrity";
                node = i;
                detail = Printf.sprintf "delivered %s twice" (pp_vref r) } ]
          else begin
            Hashtbl.add seen r ();
            scan rest
          end
      in
      scan log)
    logs

type commit_record = {
  cr_node : int;
  cr_wave : int;
  cr_leader : Dagrider.Vertex.vref;
  cr_direct : bool;
}

(* evaluated synchronously from the on_commit hook, so [dag] is the
   node's state at the moment the rule fired — support only grows
   afterwards, which is exactly why a weakened quorum can hide from
   end-of-run audits but not from this one. The quorum is re-derived
   from the rule (2f+1 for DAG-Rider, f+1 for Bullshark), never taken
   from the options — a sabotaged [commit_quorum] must not weaken the
   oracle that is supposed to catch it. *)
let quorum_label (rule : Dagrider.Ordering.rule) =
  match rule.Dagrider.Ordering.rule_quorum with
  | Dagrider.Ordering.Two_f_plus_one -> "2f+1"
  | Dagrider.Ordering.F_plus_one -> "f+1"

let check_direct_commit ~rule ~f ~dag ~node ~wave ~leader =
  let wave_length = rule.Dagrider.Ordering.rule_wave_length in
  let commit_quorum = Dagrider.Ordering.quorum_of rule ~f in
  if
    Dagrider.Ordering.commit_rule_met ~wave_length ~commit_quorum ~dag ~wave
      ~leader
  then []
  else
    [ { invariant = "leader-support";
        node;
        detail =
          Printf.sprintf
            "wave %d leader %s committed directly with < %s strong-path \
             support at commit time"
            wave
            (pp_vref (Dagrider.Vertex.vref_of leader))
            (quorum_label rule) } ]

let check_dag_wf ~n ~f ~node dag =
  List.filter_map
    (fun v ->
      match Dagrider.Vertex.validate ~n ~f v with
      | Ok () -> None
      | Error reason ->
        Some
          { invariant = "dag-wf";
            node;
            detail =
              Printf.sprintf "accepted invalid vertex %s: %s"
                (pp_vref (Dagrider.Vertex.vref_of v)) reason })
    (Dagrider.Dag.vertices dag)

(* two correct processes holding different vertices for one
   (round, source) means reliable broadcast let an equivocation through *)
let check_equivocation ~dags =
  let seen : (Dagrider.Vertex.vref, int * string) Hashtbl.t =
    Hashtbl.create 1024
  in
  List.concat_map
    (fun (i, dag) ->
      List.filter_map
        (fun v ->
          let r = Dagrider.Vertex.vref_of v in
          let digest = Dagrider.Vertex.digest v in
          match Hashtbl.find_opt seen r with
          | None ->
            Hashtbl.add seen r (i, digest);
            None
          | Some (_, d) when d = digest -> None
          | Some (j, _) ->
            Some
              { invariant = "equivocation";
                node = i;
                detail =
                  Printf.sprintf
                    "vertex %s differs from the copy node %d accepted"
                    (pp_vref r) j })
        (Dagrider.Dag.vertices dag))
    dags

(* a directly committed leader must have the rule's strong-path support
   quorum in its wave's last round (Lemma 1's precondition for
   DAG-Rider's 2f+1; the f+1 vote count for Bullshark); a chained
   leader must be strong-path-reachable from the next leader the same
   process committed (the Line 39-43 backward walk). support can only
   grow after the commit, so evaluating on the final DAG is sound. *)
let check_leader_support ~rule ~f ~commits ~dag_of =
  let wave_length = rule.Dagrider.Ordering.rule_wave_length in
  let commit_quorum = Dagrider.Ordering.quorum_of rule ~f in
  let by_node = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let prev = try Hashtbl.find by_node c.cr_node with Not_found -> [] in
      Hashtbl.replace by_node c.cr_node (c :: prev))
    commits;
  Hashtbl.fold
    (fun node cs acc ->
      match dag_of node with
      | None -> acc
      | Some dag ->
        let cs = List.sort (fun a b -> compare a.cr_wave b.cr_wave) cs in
        let rec walk acc = function
          | [] -> acc
          | c :: rest ->
            let acc =
              match Dagrider.Dag.find dag c.cr_leader with
              | None ->
                { invariant = "leader-support";
                  node;
                  detail =
                    Printf.sprintf "committed leader %s absent from own DAG"
                      (pp_vref c.cr_leader) }
                :: acc
              | Some leader ->
                if c.cr_direct then
                  if
                    Dagrider.Ordering.commit_rule_met ~wave_length
                      ~commit_quorum ~dag ~wave:c.cr_wave ~leader
                  then acc
                  else
                    { invariant = "leader-support";
                      node;
                      detail =
                        Printf.sprintf
                          "wave %d leader %s committed directly with < %s \
                           strong-path support"
                          c.cr_wave (pp_vref c.cr_leader) (quorum_label rule) }
                    :: acc
                else begin
                  match rest with
                  | [] ->
                    { invariant = "leader-support";
                      node;
                      detail =
                        Printf.sprintf
                          "wave %d leader %s chained with no later commit"
                          c.cr_wave (pp_vref c.cr_leader) }
                    :: acc
                  | next :: _ ->
                    if Dagrider.Dag.strong_path dag next.cr_leader c.cr_leader
                    then acc
                    else
                      { invariant = "leader-support";
                        node;
                        detail =
                          Printf.sprintf
                            "wave %d leader %s has no strong path from the \
                             next committed leader %s (wave %d)"
                            c.cr_wave (pp_vref c.cr_leader)
                            (pp_vref next.cr_leader) next.cr_wave }
                      :: acc
                end
            in
            walk acc rest
        in
        walk acc cs)
    by_node []

(* Leader-skip legality, auditable end-of-run because causal history is
   closed at vertex insertion: when a node committed wave [w2], the
   backward chain examined every uncommitted wave below it with [w2]'s
   leader (or a nearer chained one) as the reference vertex, and any
   strong path from that vertex existed already — the whole path lies
   in its causal history. So if the final DAG holds a skipped wave's
   leader vertex AND a strong path to it from the next committed
   leader, the chain-back was obliged to commit that wave: skipping it
   was a bug. [leader_of node wave] supplies the leader schedule
   (round-robin rules know every leader; coin rules only audit waves
   whose instance the node resolved — [None] skips the wave). *)
let check_skip_legality ~wave_length ~commits ~dag_of ~leader_of =
  let by_node = Hashtbl.create 16 in
  List.iter
    (fun c ->
      let prev = try Hashtbl.find by_node c.cr_node with Not_found -> [] in
      Hashtbl.replace by_node c.cr_node (c :: prev))
    commits;
  Hashtbl.fold
    (fun node cs acc ->
      match dag_of node with
      | None -> acc
      | Some dag ->
        let cs = List.sort (fun a b -> compare a.cr_wave b.cr_wave) cs in
        let violations = ref acc in
        let audit_gap ~lo ~next =
          for w = lo to next.cr_wave - 1 do
            match leader_of node w with
            | None -> ()
            | Some leader_source -> (
              match
                Dagrider.Ordering.leader_vertex ~wave_length ~dag ~wave:w
                  ~leader_source
              with
              | None -> () (* legal: leader vertex absent from the DAG *)
              | Some lv ->
                if
                  Dagrider.Dag.strong_path dag next.cr_leader
                    (Dagrider.Vertex.vref_of lv)
                then
                  violations :=
                    { invariant = "skip-legality";
                      node;
                      detail =
                        Printf.sprintf
                          "wave %d leader %s was skipped although the next \
                           committed leader %s (wave %d) reaches it by a \
                           strong path"
                          w
                          (pp_vref (Dagrider.Vertex.vref_of lv))
                          (pp_vref next.cr_leader) next.cr_wave }
                    :: !violations)
          done
        in
        let rec walk lo = function
          | [] -> ()
          | c :: rest ->
            audit_gap ~lo ~next:c;
            walk (c.cr_wave + 1) rest
        in
        walk 1 cs;
        !violations)
    by_node []

(* Re-validate provenance certificates against the final DAGs. A
   certificate is a {e claim} about why a decision was legal; the
   checker re-derives every part of the claim it can from the DAG it
   ends up with — a certificate the checker cannot verify is itself a
   failure, whether the bug is in the ordering or in the emission.
   Strong paths and vertex presence are monotone (support only grows),
   so positive claims stay checkable end-of-run; the claimed-at-the-time
   {e counts} of skip certificates are checked for internal consistency
   instead. *)
let check_certificates ~rule ~f ~forensics ~dag_of =
  let wave_length = rule.Dagrider.Ordering.rule_wave_length in
  let quorum = Dagrider.Ordering.quorum_of rule ~f in
  let bad node detail = { invariant = "certificate"; node; detail } in
  let check_common node ~wave ~rule_name ~cert_quorum ~leader_round =
    let acc = [] in
    let acc =
      if rule_name <> rule.Dagrider.Ordering.rule_name then
        bad node
          (Printf.sprintf "wave %d certificate names rule %S, run used %S" wave
             rule_name rule.Dagrider.Ordering.rule_name)
        :: acc
      else acc
    in
    let acc =
      if cert_quorum <> quorum then
        bad node
          (Printf.sprintf "wave %d certificate claims quorum %d, rule needs %d"
             wave cert_quorum quorum)
        :: acc
      else acc
    in
    if leader_round <> Dagrider.Ordering.round_of ~wave_length ~wave ~k:1 then
      bad node
        (Printf.sprintf "wave %d certificate places the leader in round %d, \
                         the wave's first round is %d"
           wave leader_round
           (Dagrider.Ordering.round_of ~wave_length ~wave ~k:1))
      :: acc
    else acc
  in
  let check_commit node dag ~floor tbl_committed (c : Forensics.commit_cert) =
    let acc =
      check_common node ~wave:c.Forensics.c_wave ~rule_name:c.Forensics.c_rule
        ~cert_quorum:c.Forensics.c_quorum ~leader_round:c.Forensics.c_leader_round
    in
    let leader =
      { Dagrider.Vertex.round = c.Forensics.c_leader_round;
        source = c.Forensics.c_leader_source }
    in
    if c.Forensics.c_leader_round < floor then
      (* the wave sits below the GC horizon: its vertices were pruned,
         so absence is not evidence against the certificate — only the
         schedule/quorum field checks above still apply *)
      acc
    else if not (Dagrider.Dag.contains dag leader) then
      bad node
        (Printf.sprintf "wave %d committed leader %s absent from the final DAG"
           c.Forensics.c_wave (pp_vref leader))
      :: acc
    else if c.Forensics.c_direct then begin
      let last_round =
        Dagrider.Ordering.round_of ~wave_length ~wave:c.Forensics.c_wave
          ~k:wave_length
      in
      let acc =
        if List.length c.Forensics.c_support < quorum then
          bad node
            (Printf.sprintf
               "wave %d direct commit cites %d supporters, below quorum %d"
               c.Forensics.c_wave
               (List.length c.Forensics.c_support)
               quorum)
          :: acc
        else acc
      in
      List.fold_left
        (fun acc src ->
          let sref = { Dagrider.Vertex.round = last_round; source = src } in
          if not (Dagrider.Dag.contains dag sref) then
            bad node
              (Printf.sprintf "wave %d cites supporter %s missing from the \
                               final DAG"
                 c.Forensics.c_wave (pp_vref sref))
            :: acc
          else if not (Dagrider.Dag.strong_path dag sref leader) then
            bad node
              (Printf.sprintf "wave %d cites supporter %s with no strong path \
                               to leader %s"
                 c.Forensics.c_wave (pp_vref sref) (pp_vref leader))
            :: acc
          else acc)
        acc c.Forensics.c_support
    end
    else begin
      let via =
        { Dagrider.Vertex.round = c.Forensics.c_via_round;
          source = c.Forensics.c_via_source }
      in
      let via_wave = ((c.Forensics.c_via_round - 1) / wave_length) + 1 in
      let acc =
        if
          via_wave <= c.Forensics.c_wave || via_wave > c.Forensics.c_anchor
          || not (Hashtbl.mem tbl_committed via_wave)
        then
          bad node
            (Printf.sprintf
               "wave %d chained via %s (wave %d), which is not a later \
                committed wave of the same chain (anchor %d)"
               c.Forensics.c_wave (pp_vref via) via_wave c.Forensics.c_anchor)
          :: acc
        else acc
      in
      if not (Dagrider.Dag.contains dag via) then
        bad node
          (Printf.sprintf "wave %d chain-back evidence %s absent from the \
                           final DAG"
             c.Forensics.c_wave (pp_vref via))
        :: acc
      else if not (Dagrider.Dag.strong_path dag via leader) then
        bad node
          (Printf.sprintf "wave %d chained without a strong path from %s to \
                           leader %s"
             c.Forensics.c_wave (pp_vref via) (pp_vref leader))
        :: acc
      else acc
    end
  in
  let check_final_skip node dag ~floor ~next_commit (s : Forensics.skip_cert) =
    let acc =
      check_common node ~wave:s.Forensics.s_wave ~rule_name:s.Forensics.s_rule
        ~cert_quorum:s.Forensics.s_quorum ~leader_round:s.Forensics.s_leader_round
    in
    let leader =
      { Dagrider.Vertex.round = s.Forensics.s_leader_round;
        source = s.Forensics.s_leader_source }
    in
    let acc =
      if List.length s.Forensics.s_support >= quorum then
        bad node
          (Printf.sprintf
             "wave %d skip cites %d supporters — at or above quorum %d, the \
              skip was illegal by its own evidence"
             s.Forensics.s_wave
             (List.length s.Forensics.s_support)
             quorum)
        :: acc
      else acc
    in
    let acc =
      if s.Forensics.s_reason = "leader-absent" && s.Forensics.s_support <> []
      then
        bad node
          (Printf.sprintf "wave %d skip claims an absent leader yet cites \
                           supporters"
             s.Forensics.s_wave)
        :: acc
      else acc
    in
    (* claimed supporters are monotone facts — still checkable (unless
       the wave fell below the GC horizon and was pruned) *)
    let acc =
      if s.Forensics.s_leader_round >= floor && Dagrider.Dag.contains dag leader
      then
        List.fold_left
          (fun acc src ->
            let sref =
              { Dagrider.Vertex.round =
                  Dagrider.Ordering.round_of ~wave_length
                    ~wave:s.Forensics.s_wave ~k:wave_length;
                source = src }
            in
            if
              Dagrider.Dag.contains dag sref
              && Dagrider.Dag.strong_path dag sref leader
            then acc
            else
              bad node
                (Printf.sprintf "wave %d skip cites supporter %s the final \
                                 DAG does not confirm"
                   s.Forensics.s_wave (pp_vref sref))
              :: acc)
          acc s.Forensics.s_support
      else acc
    in
    (* skip legality: if the next committed leader reaches this wave's
       leader by a strong path in the final DAG, the chain-back was
       obliged to commit it (causal closure at insertion makes this
       auditable end-of-run, as in check_skip_legality) *)
    match next_commit with
    | Some (next : Forensics.commit_cert)
      when s.Forensics.s_leader_round >= floor
           && Dagrider.Dag.contains dag leader
           && Dagrider.Dag.strong_path dag
                { Dagrider.Vertex.round = next.Forensics.c_leader_round;
                  source = next.Forensics.c_leader_source }
                leader ->
      bad node
        (Printf.sprintf
           "wave %d was finally skipped although committed wave %d's leader \
            reaches its leader %s by a strong path"
           s.Forensics.s_wave next.Forensics.c_wave (pp_vref leader))
      :: acc
    | _ -> acc
  in
  List.concat_map
    (fun node ->
      match dag_of node with
      | None -> []
      | Some dag ->
        (* the GC horizon: rounds below the lowest retained one were
           pruned and cannot be audited against this DAG *)
        let floor =
          List.fold_left
            (fun acc v -> min acc v.Dagrider.Vertex.round)
            max_int
            (Dagrider.Dag.vertices dag)
        in
        let sts = Forensics.stories forensics ~node in
        let committed = Hashtbl.create 64 in
        List.iter
          (fun st ->
            match st.Forensics.st_commit with
            | Some c -> Hashtbl.replace committed st.Forensics.st_wave c
            | None -> ())
          sts;
        let next_commit_after w =
          List.fold_left
            (fun acc st ->
              match (acc, st.Forensics.st_commit) with
              | None, Some c when st.Forensics.st_wave > w -> Some c
              | _ -> acc)
            None sts
        in
        List.concat_map
          (fun st ->
            (match st.Forensics.st_commit with
            | Some c -> check_commit node dag ~floor committed c
            | None -> [])
            @
            match (st.Forensics.st_commit, st.Forensics.st_skip) with
            | None, Some s ->
              check_final_skip node dag ~floor
                ~next_commit:(next_commit_after st.Forensics.st_wave)
                s
            | _ -> [])
          sts)
    (Forensics.nodes forensics)

let check_chain_quality ~f ~correct ~logs =
  List.filter_map
    (fun (i, log) ->
      let sources = List.map (fun v -> v.Dagrider.Vertex.source) log in
      let r = Metrics.Chain_quality.audit ~f ~correct ~sources in
      if r.Metrics.Chain_quality.holds then None
      else
        Some
          { invariant = "chain-quality";
            node = i;
            detail =
              Printf.sprintf
                "worst prefix (len %d) has correct ratio %.3f < %.3f"
                r.Metrics.Chain_quality.worst_prefix_len
                r.Metrics.Chain_quality.worst_prefix_ratio
                (float_of_int (f + 1) /. float_of_int ((2 * f) + 1)) })
    logs

(* ---- attack-informed oracles ----

   The adversary driver records the ground truth of every deviation it
   actually sent (forked vertices, forged sync payloads); these checks
   replay that ledger against the honest fleet's final DAGs. They are
   strictly sharper than the black-box checks above: [check_equivocation]
   only fires when two honest DAGs happen to disagree, while the fork
   ledger also proves the {e safe} outcomes — every fork was excluded or
   converged — and ties each verdict to the attack that caused it. *)

let short_digest d = String.sub (Crypto.Sha256.to_hex d) 0 12

type fork_outcome =
  | Fork_excluded
  | Fork_converged of string

let fork_outcome ~dags ~attacker (fk : Attack.fork) =
  let slot =
    { Dagrider.Vertex.round = fk.Attack.fork_round; source = attacker }
  in
  let held =
    List.filter_map
      (fun (i, dag) ->
        Option.map
          (fun v -> (i, Dagrider.Vertex.digest v))
          (Dagrider.Dag.find dag slot))
      dags
  in
  match held with
  | [] -> Ok Fork_excluded
  | (_, d0) :: rest ->
    if List.for_all (fun (_, d) -> String.equal d d0) rest then
      Ok (Fork_converged d0)
    else Error held

let check_fork_outcomes ~(reports : Harness.Runner.attack_report list) ~dags =
  List.concat_map
    (fun (ar : Harness.Runner.attack_report) ->
      let attacker = ar.Harness.Runner.ar_node in
      List.concat_map
        (fun (fk : Attack.fork) ->
          match fork_outcome ~dags ~attacker fk with
          | Ok Fork_excluded -> []
          | Ok (Fork_converged d) ->
            (* converging is legal, but only onto a variant the attacker
               actually broadcast — anything else means the backend
               manufactured a vertex *)
            if List.exists (String.equal d) fk.Attack.fork_digests then []
            else
              [ { invariant = "fork-outcome";
                  node = attacker;
                  detail =
                    Printf.sprintf
                      "round-%d fork converged on digest %s the attacker \
                       never sent"
                      fk.Attack.fork_round (short_digest d) } ]
          | Error held ->
            let node = match held with (i, _) :: _ -> i | [] -> attacker in
            [ { invariant = "fork-outcome";
                node;
                detail =
                  Printf.sprintf "p%d's round-%d fork split the fleet: %s"
                    attacker fk.Attack.fork_round
                    (String.concat ", "
                       (List.map
                          (fun (i, d) ->
                            Printf.sprintf "p%d=%s" i (short_digest d))
                          held)) } ])
        ar.Harness.Runner.ar_forks)
    reports

let check_lie_exclusion ~(reports : Harness.Runner.attack_report list) ~dags =
  List.concat_map
    (fun (ar : Harness.Runner.attack_report) ->
      List.concat_map
        (fun (lie : Attack.lie) ->
          let slot =
            { Dagrider.Vertex.round = lie.Attack.lie_round;
              source = lie.Attack.lie_source }
          in
          List.filter_map
            (fun (i, dag) ->
              match Dagrider.Dag.find dag slot with
              | Some v
                when String.equal (Dagrider.Vertex.digest v)
                       lie.Attack.lie_digest ->
                Some
                  { invariant = "sync-lie";
                    node = i;
                    detail =
                      Printf.sprintf
                        "admitted p%d's forged catch-up vertex for %s"
                        ar.Harness.Runner.ar_node (pp_vref slot) }
              | _ -> None)
            dags)
        (* one forged slot is typically served many times; judge it once *)
        (List.sort_uniq compare ar.Harness.Runner.ar_lies))
    reports

let check_validity ~n ~logs =
  List.concat_map
    (fun (i, log) ->
      if List.length log < 3 * n then []
      else
        let proposed = Array.make n false in
        List.iter (fun v -> proposed.(v.Dagrider.Vertex.source) <- true) log;
        List.filter_map
          (fun s ->
            if proposed.(s) then None
            else
              Some
                { invariant = "validity";
                  node = i;
                  detail =
                    Printf.sprintf
                      "no proposal from correct process %d in a %d-entry log" s
                      (List.length log) })
          (List.init n (fun s -> s)))
    logs

let check_fleet ~runner ~commits ~expect_validity =
  let opts = Harness.Runner.options runner in
  let n = opts.Harness.Runner.n and f = opts.Harness.Runner.f in
  let correct = Harness.Runner.correct_indices runner in
  let is_correct = Harness.Runner.is_correct runner in
  let full_logs =
    List.map
      (fun i ->
        (i, Dagrider.Node.delivered_log (Harness.Runner.node runner i)))
      correct
  in
  let ref_logs =
    List.map
      (fun (i, log) -> (i, List.map Dagrider.Vertex.vref_of log))
      full_logs
  in
  let dags =
    List.map
      (fun i -> (i, Dagrider.Node.dag (Harness.Runner.node runner i)))
      correct
  in
  let dag_of node =
    if is_correct node then Some (Dagrider.Node.dag (Harness.Runner.node runner node))
    else None
  in
  let live_commits = List.filter (fun c -> is_correct c.cr_node) commits in
  let rule = Harness.Runner.effective_rule opts in
  let leader_of node wave =
    if is_correct node then
      Dagrider.Node.leader_of (Harness.Runner.node runner node) ~wave
    else None
  in
  check_agreement ~logs:ref_logs
  @ check_no_duplicates ~logs:ref_logs
  @ List.concat_map (fun (i, dag) -> check_dag_wf ~n ~f ~node:i dag) dags
  @ check_equivocation ~dags
  @ check_leader_support ~rule ~f ~commits:live_commits ~dag_of
  @ check_skip_legality ~wave_length:rule.Dagrider.Ordering.rule_wave_length
      ~commits:live_commits ~dag_of ~leader_of
  @ (match Harness.Runner.forensics runner with
    | Some forensics -> check_certificates ~rule ~f ~forensics ~dag_of
    | None -> [])
  @ check_chain_quality ~f ~correct:is_correct ~logs:full_logs
  @ (match Harness.Runner.attack_reports runner with
    | [] -> []
    | reports ->
      check_fork_outcomes ~reports ~dags @ check_lie_exclusion ~reports ~dags)
  @ (if expect_validity then check_validity ~n ~logs:full_logs else [])
