(** Invariant oracles for swarm-tested executions.

    Each check asserts one of the paper's correctness properties over
    the observable state of a fleet — delivered logs, per-node DAGs, and
    the stream of commit events — and returns a list of violations
    (empty = the property held). The checks are deliberately
    re-derivations: they recompute support counts and path predicates
    from the DAG instead of trusting the protocol's own bookkeeping, so
    a protocol bug cannot hide by corrupting the state it is judged by.

    The log-level checks take plain data so tests can feed hand-built
    histories; {!check_fleet} bundles every end-of-run invariant over a
    live {!Harness.Runner.t}. *)

type violation = {
  invariant : string;
      (** which property broke: ["agreement"], ["extension"],
          ["integrity"], ["dag-wf"], ["equivocation"],
          ["leader-support"], ["skip-legality"], ["certificate"],
          ["chain-quality"], ["fork-outcome"], ["sync-lie"], or
          ["validity"] *)
  node : int; (** the process at which the violation was observed *)
  detail : string;
}

val pp : violation -> string

val check_agreement :
  logs:(int * Dagrider.Vertex.vref list) list -> violation list
(** Total order + Agreement (paper §2): every pair of correct logs must
    be prefix-comparable. Implemented by comparing each log positionwise
    against the longest one, which is equivalent and single-pass. *)

val check_extension :
  node:int ->
  before:Dagrider.Vertex.vref list ->
  after:Dagrider.Vertex.vref list ->
  violation list
(** A process's ordered output is append-only: a snapshot taken later
    must have the earlier snapshot as a prefix. Run between the swarm
    driver's periodic checkpoints. *)

val check_no_duplicates :
  logs:(int * Dagrider.Vertex.vref list) list -> violation list
(** Integrity: no (round, source) is delivered twice in one log. *)

type commit_record = {
  cr_node : int;   (** process that committed *)
  cr_wave : int;
  cr_leader : Dagrider.Vertex.vref;
  cr_direct : bool; (** by its own wave's rule, vs chained backwards *)
}
(** One {!Dagrider.Ordering.commit} as observed through
    {!Harness.Runner.options.on_commit}. *)

val check_direct_commit :
  rule:Dagrider.Ordering.rule ->
  f:int ->
  dag:Dagrider.Dag.t ->
  node:int ->
  wave:int ->
  leader:Dagrider.Vertex.t ->
  violation list
(** The commit-time form of the leader-support invariant: call from the
    [on_commit] hook (which fires synchronously inside the ordering
    step) for a {e direct} commit, with the committing node's DAG.
    Because strong-path support only grows after the commit, this is
    strictly stronger than auditing the final DAG — it is the check that
    catches a sabotaged [commit_quorum] even when the support gap closes
    later. The quorum is re-derived from [rule] (2f+1 for DAG-Rider,
    f+1 for Bullshark), never from the run's options, so a weakened
    [commit_quorum] cannot weaken the oracle judging it. *)

val check_leader_support :
  rule:Dagrider.Ordering.rule ->
  f:int ->
  commits:commit_record list ->
  dag_of:(int -> Dagrider.Dag.t option) ->
  violation list
(** End-of-run leader audit over each node's own commit sequence:
    every {e direct} commit must satisfy [rule]'s strong-path quorum in
    its wave's last round (support only grows after the commit, so the
    final DAG is sound to judge by), and every {e chained} commit must
    be strong-path-reachable from the next wave that node committed
    (Algorithm 3's line 39–43 backward walk). *)

val check_skip_legality :
  wave_length:int ->
  commits:commit_record list ->
  dag_of:(int -> Dagrider.Dag.t option) ->
  leader_of:(int -> int -> int option) ->
  violation list
(** The skip-side complement of [check_leader_support]: a wave a node
    never committed is audited against the next wave it {e did} commit.
    If the skipped wave's leader vertex is in the node's final DAG and
    the next committed leader reaches it by a strong path, the backward
    chain was obliged to commit it — causal history is closed at vertex
    insertion, so any such path already existed when the chain ran, and
    the skip is a bug. [leader_of node wave] supplies the schedule:
    round-robin rules answer for every wave, coin rules only for
    instances that node resolved ([None] exempts the wave). This is the
    oracle that catches an illegally aggressive leader-skip rule, e.g.
    a Bullshark fallback that skips a leader its successor can see. *)

val check_certificates :
  rule:Dagrider.Ordering.rule ->
  f:int ->
  forensics:Forensics.t ->
  dag_of:(int -> Dagrider.Dag.t option) ->
  violation list
(** Re-validate every provenance certificate a traced run emitted
    against the final DAGs — a certificate the checker cannot verify is
    itself a failure. Per commit certificate: the rule name and quorum
    match the run's rule (re-derived from [rule] and [f], never the
    certificate's own claim), the leader sits in the wave's first round
    and exists in the node's final DAG, a direct commit's cited
    supporter set is [>= quorum] and each cited supporter reaches the
    leader by a strong path, and a chained commit's [via] leader is a
    later committed wave of the same chain that reaches it by a strong
    path (all monotone facts, so the final DAG is sound to judge by).
    Per final skip certificate: the cited support is below quorum and
    consistent with the reason, each cited supporter is confirmed, and
    no later committed leader reaches the skipped leader by a strong
    path (the skip-legality argument of {!check_skip_legality}).
    Certificates for waves below a GC'd DAG's lowest retained round
    keep only the field checks — pruned vertices cannot witness either
    way. *)

type fork_outcome =
  | Fork_excluded
      (** no honest process holds any variant of the forked slot —
          reliable broadcast starved both sides of a quorum *)
  | Fork_converged of string
      (** every honest holder agrees on the variant with this digest *)
(** How the honest fleet resolved one recorded equivocation. Both
    outcomes are legal; what is {e illegal} is a split. *)

val fork_outcome :
  dags:(int * Dagrider.Dag.t) list ->
  attacker:int ->
  Attack.fork ->
  (fork_outcome, (int * string) list) result
(** Judge one fork from the attacker's {!Attack.forks} ledger against
    the correct processes' final DAGs. [Error held] is the violation
    case — honest processes accepted {e different} variants — with the
    (node, digest) evidence. *)

val check_fork_outcomes :
  reports:Harness.Runner.attack_report list ->
  dags:(int * Dagrider.Dag.t) list ->
  violation list
(** The equivocation-exclusion oracle, attack-informed: every fork the
    adversary driver actually sent must be excluded or converged — a
    split fleet, or convergence onto a digest the attacker never sent,
    is a ["fork-outcome"] violation. Sharper than the black-box
    equivocation check because it also {e proves} the safe outcomes,
    fork by fork, instead of only noticing disagreements. *)

val check_lie_exclusion :
  reports:Harness.Runner.attack_report list ->
  dags:(int * Dagrider.Dag.t) list ->
  violation list
(** No honest DAG may contain any forged catch-up vertex from a lying
    sync peer's {!Attack.lies} ledger (matched by slot {e and} digest —
    the honest vertex for the same slot is of course fine). A match is
    a ["sync-lie"] violation: the hardened sync admission path let a
    single Byzantine responder poison a restarted node. *)

val check_fleet :
  runner:Harness.Runner.t ->
  commits:commit_record list ->
  expect_validity:bool ->
  violation list
(** End-of-run sweep of every invariant over the correct processes:

    - {b agreement} and {b integrity} on the delivered logs (above);
    - {b dag-wf}: every vertex in every correct DAG passes
      {!Dagrider.Vertex.validate} — [>= 2f+1] strong edges, all to the
      previous round, edge sources in range;
    - {b equivocation}: no two correct processes hold different vertices
      (by digest) for one (round, source) — reliable broadcast must have
      filtered equivocators;
    - {b leader-support}: every {e directly} committed leader has the
      rule's quorum of last-round vertices with a strong path to it
      (2f+1 for DAG-Rider, f+1 for Bullshark), recomputed from the DAG
      with the {e rule's} quorum regardless of the configured
      [commit_quorum] (this is what catches a sabotaged quorum); every
      {e chained} leader is strong-path-reachable from the next
      committed leader;
    - {b skip-legality}: no skipped wave's leader is strong-path
      reachable from the next committed leader (above);
    - {b certificate} (traced runs only): every provenance certificate
      the run emitted re-validates against the final DAGs
      ({!check_certificates});
    - {b chain-quality}: the [(f+1)/(2f+1)]-per-prefix bound
      ({!Metrics.Chain_quality.audit});
    - {b fork-outcome} and {b sync-lie} (attacked runs only): every
      deviation in the adversary drivers' ledgers
      ({!Harness.Runner.attack_reports}) was excluded or converged
      ({!check_fork_outcomes}, {!check_lie_exclusion});
    - {b validity} (only when [expect_validity], i.e. fault-free
      scenarios): once a log is long enough to show steady state
      ([>= 3n] entries), every correct process's proposals appear in
      it. *)
