(** Swarm driver: run generated scenarios, judge them with the oracle,
    shrink failures, and emit deterministic repro commands.

    One scenario runs as: build the fleet from
    {!Scenario.to_options} (plus commit/delivery observation hooks),
    arm the timed fault script on the engine, then advance virtual time
    in slices — checking agreement and log-append-onlyness at every
    slice boundary — and finish with the full {!Oracle.check_fleet}
    sweep. TigerBeetle-style: everything is a pure function of the
    seed, so "re-run seed N" reproduces the execution exactly. *)

type outcome = {
  scenario : Scenario.t;
  violations : Oracle.violation list; (** deduplicated; empty = pass *)
  delivered_min : int; (** fewest vertices delivered by a correct node *)
  delivered_max : int;
  commits : int; (** commit events observed fleet-wide *)
  events : int;  (** simulator events executed *)
}

val run_scenario : ?trace:Trace.t -> Scenario.t -> outcome
(** [?trace] threads a tracer into the fleet's options
    ({!Harness.Runner.options.trace}); because a scenario run is a pure
    function of the seed, tracing a re-run reproduces the original
    execution event for event. *)

val trace_scenario : Scenario.t -> Trace.t
(** Re-run [sc] with a fresh tracer and return it — the swarm CLI calls
    this on every (shrunk) failure so the event log can be written next
    to the repro command. *)

val repro_command : Scenario.t -> string
(** The exact command line that replays this scenario. *)

val shrink_list : keep:('a list -> bool) -> 'a list -> 'a list
(** Greedy delta-debugging pass: try dropping each element in turn,
    keeping the drop whenever [keep] still holds on the remainder.
    [keep] must hold on the input list. *)

val shrink : outcome -> outcome
(** Minimize a failing scenario's fault script: greedily drop fault
    actions while the run still produces a violation. Returns the
    outcome of the smallest still-failing scenario (the input itself if
    nothing could be dropped or it was not failing). *)

type report = {
  runs : int;
  failures : outcome list; (** shrunk, in seed order *)
  agreement_violations : int;
      (** total "agreement" violations across failures — the count
          sabotage mode must drive above zero *)
}

val run_seeds :
  ?sabotage:bool ->
  ?quick:bool ->
  ?lossy:Harness.Runner.link_faults ->
  ?attack:Attack.spec ->
  ?weaken_sync:bool ->
  ?rule:Dagrider.Ordering.rule ->
  ?progress:(seed:int -> outcome -> unit) ->
  seeds:int list ->
  unit ->
  report
(** Generate-and-run each seed; failing outcomes are shrunk before they
    are reported. [progress] observes every run (the CLI uses it for
    live output). [lossy] forces every scenario onto lossy links at the
    given rates (the CLI's --loss/--dup/--corrupt flags). [attack]
    forces the given adversary into every scenario (the CLI's --attack
    flag); [weaken_sync] runs every fleet with the deliberately
    weakened sync validator — the planted-vulnerability mode, expected
    to {e produce} violations. [rule] runs every scenario under the
    given commit rule (the CLI's --rule flag). *)
