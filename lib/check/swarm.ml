type outcome = {
  scenario : Scenario.t;
  violations : Oracle.violation list;
  delivered_min : int;
  delivered_max : int;
  commits : int;
  events : int;
}

(* how many slices the horizon is cut into; each boundary runs the
   mid-run safety checks (agreement + append-only logs) *)
let slices = 5

let run_scenario ?trace (sc : Scenario.t) =
  let commits = ref [] in
  let violations = ref [] in
  (* the hook fires synchronously inside the ordering step, before the
     runner is in scope — close over a ref so it can reach the
     committing node's DAG at commit time *)
  let runner_ref = ref None in
  let options =
    { (Scenario.to_options sc) with
      Harness.Runner.trace;
      on_commit =
        Some
          (fun ~node c ->
            commits :=
              { Oracle.cr_node = node;
                cr_wave = c.Dagrider.Ordering.wave;
                cr_leader = Dagrider.Vertex.vref_of c.Dagrider.Ordering.leader;
                cr_direct = c.Dagrider.Ordering.direct }
              :: !commits;
            if c.Dagrider.Ordering.direct then
              match !runner_ref with
              | None -> ()
              | Some runner ->
                violations :=
                  Oracle.check_direct_commit
                    ~rule:
                      (Harness.Runner.effective_rule
                         (Harness.Runner.options runner))
                    ~f:sc.Scenario.f
                    ~dag:(Dagrider.Node.dag (Harness.Runner.node runner node))
                    ~node ~wave:c.Dagrider.Ordering.wave
                    ~leader:c.Dagrider.Ordering.leader
                  @ !violations) }
  in
  let runner = Harness.Runner.build options in
  runner_ref := Some runner;
  let engine = Harness.Runner.engine runner in
  List.iter
    (function
      | Scenario.Static _ -> ()
      | Scenario.Corrupt_at { time; node } ->
        Sim.Engine.schedule_at engine ~time (fun () ->
            Harness.Runner.silence_node runner node)
      | Scenario.Restart_at { time; node } ->
        Sim.Engine.schedule_at engine ~time (fun () ->
            (* the script only restarts correct processes, but a
               corruption scheduled at an earlier time may have claimed
               this node since generation; restarting a faulty node
               would resurrect it, so re-check *)
            if Harness.Runner.is_correct runner node then
              Harness.Runner.restart_node runner node))
    sc.Scenario.faults;
  let n = sc.Scenario.n in
  let prev = Array.make n [] in
  let slice = sc.Scenario.horizon /. float_of_int slices in
  for k = 1 to slices do
    Harness.Runner.run runner ~until:(float_of_int k *. slice);
    let refs = Harness.Runner.delivered_refs runner in
    let correct = Harness.Runner.correct_indices runner in
    let logs = List.map (fun i -> (i, refs.(i))) correct in
    violations := Oracle.check_agreement ~logs @ !violations;
    List.iter
      (fun i ->
        violations :=
          Oracle.check_extension ~node:i ~before:prev.(i) ~after:refs.(i)
          @ !violations)
      correct;
    Array.blit refs 0 prev 0 n
  done;
  violations :=
    Oracle.check_fleet ~runner ~commits:!commits
      ~expect_validity:(Scenario.expect_validity sc)
    @ !violations;
  let correct = Harness.Runner.correct_indices runner in
  let counts =
    List.map
      (fun i ->
        Dagrider.Ordering.delivered_count
          (Dagrider.Node.ordering (Harness.Runner.node runner i)))
      correct
  in
  { scenario = sc;
    violations = List.sort_uniq compare !violations;
    delivered_min = List.fold_left min max_int counts;
    delivered_max = List.fold_left max 0 counts;
    commits = List.length !commits;
    events = Sim.Engine.events_executed engine }

let trace_scenario (sc : Scenario.t) =
  let tracer = Trace.create () in
  ignore (run_scenario ~trace:tracer sc);
  tracer

let repro_command (sc : Scenario.t) =
  Printf.sprintf "dune exec bin/swarm.exe -- --seed %d%s%s%s%s" sc.Scenario.seed
    (if sc.Scenario.rule.Dagrider.Ordering.rule_name = "dagrider" then ""
     else " --rule " ^ sc.Scenario.rule.Dagrider.Ordering.rule_name)
    (if sc.Scenario.quick then " --quick" else "")
    (if sc.Scenario.sabotage then " --sabotage" else "")
    (match sc.Scenario.link_faults with
    (* seed-sampled rates replay from the seed alone; forced rates came
       from the command line and must be repeated there *)
    | Some lf when sc.Scenario.lossy_forced ->
      Printf.sprintf " --loss %g --dup %g --corrupt %g --reorder %g"
        lf.Harness.Runner.lf_drop lf.Harness.Runner.lf_duplicate
        lf.Harness.Runner.lf_corrupt lf.Harness.Runner.lf_reorder
    | _ -> "")
    (* same split for the adversary: a sampled one replays from the
       seed, a forced one must be repeated on the command line *)
    ^ (match sc.Scenario.attack with
      | Some (_, spec) when sc.Scenario.attack_forced ->
        " --attack " ^ Attack.strategy_label spec.Attack.strategy
      | _ -> "")
    ^ if sc.Scenario.sync_weakened then " --weaken-sync" else ""

let shrink_list ~keep xs =
  let rec go kept = function
    | [] -> List.rev kept
    | x :: rest ->
      if keep (List.rev_append kept rest) then go kept rest
      else go (x :: kept) rest
  in
  go [] xs

let shrink (outcome : outcome) =
  if outcome.violations = [] then outcome
  else begin
    let sc = outcome.scenario in
    let cache = Hashtbl.create 16 in
    let failing faults =
      let key = List.map Scenario.describe_fault faults in
      match Hashtbl.find_opt cache key with
      | Some o -> o
      | None ->
        (* keep the convenience field in step with the script, so a
           shrunk scenario that dropped its adversary doesn't still
           advertise one *)
        let attack =
          List.find_map
            (function
              | Scenario.Static (Harness.Runner.Adversary (i, s)) ->
                Some (i, s)
              | _ -> None)
            faults
        in
        let o = run_scenario { sc with Scenario.faults; attack } in
        Hashtbl.add cache key o;
        o
    in
    let minimal =
      shrink_list
        ~keep:(fun faults -> (failing faults).violations <> [])
        sc.Scenario.faults
    in
    if minimal = sc.Scenario.faults then outcome else failing minimal
  end

type report = {
  runs : int;
  failures : outcome list;
  agreement_violations : int;
}

let run_seeds ?(sabotage = false) ?(quick = false) ?lossy ?attack
    ?(weaken_sync = false) ?rule ?progress ~seeds () =
  let failures = ref [] in
  List.iter
    (fun seed ->
      let sc =
        Scenario.generate ~sabotage ~quick ?lossy ?attack ~weaken_sync ?rule
          ~seed ()
      in
      let outcome = run_scenario sc in
      let outcome =
        if outcome.violations = [] then outcome else shrink outcome
      in
      (match progress with Some f -> f ~seed outcome | None -> ());
      if outcome.violations <> [] then failures := outcome :: !failures)
    seeds;
  let failures = List.rev !failures in
  { runs = List.length seeds;
    failures;
    agreement_violations =
      List.fold_left
        (fun acc o ->
          acc
          + List.length
              (List.filter
                 (fun v -> v.Oracle.invariant = "agreement")
                 o.violations))
        0 failures }
