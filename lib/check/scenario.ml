type base_sched = Uniform | Skewed | Bimodal | Heavy_tailed

type sched_layer =
  | Partition_window of {
      from_time : float;
      until_time : float;
      left : int list;
      factor : float;
    }
  | Kind_storm_window of {
      from_time : float;
      until_time : float;
      kinds : string list;
      factor : float;
    }
  | Slow_process of { victim : int; factor : float }
  | Hide_process of { victim : int; factor : float }
  | Sluggish of { period : float; factor : float }

type fault_action =
  | Static of Harness.Runner.fault
  | Corrupt_at of { time : float; node : int }
  | Restart_at of { time : float; node : int }

type t = {
  seed : int;
  quick : bool;
  sabotage : bool;
  n : int;
  f : int;
  backend : Harness.Runner.backend;
  rule : Dagrider.Ordering.rule;
  base : base_sched;
  layers : sched_layer list;
  faults : fault_action list;
  horizon : float;
  commit_quorum : int option;
  link_faults : Harness.Runner.link_faults option;
  lossy_forced : bool;
  attack : (int * Attack.spec) option;
  attack_forced : bool;
  sync_weakened : bool;
}

let rbc_prefix = function
  | Harness.Runner.Bracha -> "bracha-"
  | Harness.Runner.Avid -> "avid-"
  | Harness.Runner.Gossip -> "gossip-"

(* a window somewhere in the first ~70% of the run, so attacks always
   release before the horizon and liveness can be observed resuming *)
let sample_window rng ~horizon =
  let from_time = horizon *. (0.15 +. (0.45 *. Stdx.Rng.float rng 1.0)) in
  let until_time = from_time +. 3.0 +. Stdx.Rng.float rng 8.0 in
  (from_time, Float.min until_time (horizon *. 0.85))

let sample_layer rng ~n ~backend ~horizon =
  match Stdx.Rng.int rng 4 with
  | 0 ->
    let from_time, until_time = sample_window rng ~horizon in
    let k = 1 + Stdx.Rng.int rng (n - 1) in
    Partition_window
      { from_time;
        until_time;
        left = Stdx.Rng.sample_without_replacement rng ~k ~n;
        factor = 20.0 +. Stdx.Rng.float rng 40.0 }
  | 1 ->
    let from_time, until_time = sample_window rng ~horizon in
    let kinds =
      match Stdx.Rng.int rng 4 with
      | 0 -> [ "coin-" ]
      | 1 -> [ rbc_prefix backend ]
      | 2 -> [ "sync-" ]
      | _ -> [ "coin-"; rbc_prefix backend ]
    in
    Kind_storm_window
      { from_time; until_time; kinds; factor = 5.0 +. Stdx.Rng.float rng 25.0 }
  | 2 ->
    Slow_process
      { victim = Stdx.Rng.int rng n; factor = 5.0 +. Stdx.Rng.float rng 15.0 }
  | _ ->
    Sluggish
      { period = 5.0 +. Stdx.Rng.float rng 10.0;
        factor = 4.0 +. Stdx.Rng.float rng 6.0 }

let sample_fault rng ~horizon node =
  match Stdx.Rng.int rng 5 with
  | 0 -> Static (Harness.Runner.Crash node)
  | 1 -> Static (Harness.Runner.Byzantine_silent node)
  | 2 -> Static (Harness.Runner.Byzantine_live node)
  | 3 -> Static (Harness.Runner.Byzantine_attacker node)
  | _ ->
    Corrupt_at
      { time = horizon *. (0.1 +. (0.5 *. Stdx.Rng.float rng 1.0)); node }

let static_index = function
  | Harness.Runner.Crash i
  | Harness.Runner.Byzantine_silent i
  | Harness.Runner.Byzantine_live i
  | Harness.Runner.Byzantine_attacker i -> i
  | Harness.Runner.Adversary (i, _) -> i

let fault_node = function
  | Static f -> static_index f
  | Corrupt_at { node; _ } | Restart_at { node; _ } -> node

let faulty_nodes t =
  List.sort_uniq compare
    (List.filter_map
       (function
         | Restart_at _ -> None
         | fault -> Some (fault_node fault))
       t.faults)

(* mirror of Runner.build's seed derivation (create, then the sched and
   coin splits in order) — keep in sync with runner.ml; the sabotage
   self-test fails loudly if the two ever drift, because the predicted
   leader stops matching the elected one and no violation is produced *)
let predicted_leader ~seed ~n ~f ~wave =
  let root_rng = Stdx.Rng.create seed in
  let (_ : Stdx.Rng.t) = Stdx.Rng.split root_rng in
  let coin_rng = Stdx.Rng.split root_rng in
  let coin = Crypto.Threshold_coin.setup ~rng:coin_rng ~n ~f in
  let shares =
    List.init (f + 1) (fun holder ->
        Crypto.Threshold_coin.make_share coin ~holder ~instance:wave)
  in
  match Crypto.Threshold_coin.combine coin ~instance:wave shares with
  | Some leader -> leader
  | None -> wave mod n

let generate ?(sabotage = false) ?(quick = false) ?lossy ?attack
    ?(weaken_sync = false) ?(rule = Dagrider.Ordering.dag_rider) ~seed () =
  (* offset keeps the sampling stream distinct from the run's own seeded
     streams (Runner also derives from [seed]) *)
  let rng = Stdx.Rng.create (seed lxor 0x5ca40c0de) in
  (* sabotage runs longer: each extra wave is one more chance for the
     marginal-support + anchor-exclusion coincidence to line up *)
  let horizon =
    if sabotage then if quick then 60.0 else 100.0
    else if quick then 25.0
    else 50.0
  in
  (* sabotage pins the smallest fleet: with f = 1 the sabotaged quorum
     is met by the leader's own chain alone, which makes the divergence
     below essentially deterministic rather than a rare coincidence *)
  let n =
    if sabotage then 4
    else Stdx.Rng.choose rng (if quick then [| 4; 7 |] else [| 4; 7; 10 |])
  in
  let f = (n - 1) / 3 in
  let backend =
    Stdx.Rng.choose rng
      [| Harness.Runner.Bracha; Harness.Runner.Avid; Harness.Runner.Gossip |]
  in
  let base =
    (* sabotage wants per-link delay variance: boundary-straddling
       arrivals are what make leader support differ across processes *)
    if sabotage then Stdx.Rng.choose rng [| Bimodal; Heavy_tailed |]
    else Stdx.Rng.choose rng [| Uniform; Skewed; Bimodal; Heavy_tailed |]
  in
  let layers, faults =
    if sabotage then begin
      (* The only protocol deviation is the gutted commit quorum — the
         schedule is adversarial but fault-free, so every violation
         indicts the quorum.

         Why the quorum is taken all the way to 0: this implementation
         turned out to tolerate milder weakenings against a delay-only
         adversary.  At quorum f+1, every vertex carries 2f+1 strong
         edges, so a later anchor's strong closure has width >= 2f+1 at
         every earlier round and (f+1) + (2f+1) > n = 3f+1 forces a
         committed leader's supporter into it — skippers always chain
         the committed wave and logs stay consistent (the paper's 2f+1
         margin is buying tolerance to f *equivocating* supporters, a
         power the honest RBC backends deny the adversary).  Even at
         quorum f the chained backward walk keeps rescuing agreement in
         practice: with echo-amplified broadcast a vertex is delivered
         fleet-wide within about a hop, so any supporter chain intact
         enough to justify a commit is also strong-linked widely enough
         for every skipper's next anchor to reach it.  Hundreds of
         swarm seeds at Some (f+1) and Some f produced weakened commits
         (the commit-time leader-support oracle flags those) but not
         one divergent log.  See EXPERIMENTS.md.

         At quorum 0 the rule degenerates to commit-on-sight: a wave is
         committed whenever its leader vertex happens to be present at
         processing time, with no support demanded at all.  White-box
         leader targeting then makes divergence reliable: the run is a
         pure function of the seed, so the generator replays the
         runner's rng derivation, reconstructs the threshold coin,
         predicts which process a chosen wave elects, and slows that
         process heavily.  Its vertices arrive rounds late — after
         everyone has moved on, so no honest vertex ever takes a strong
         edge to them — and the coin-share storm spreads wave
         processing times apart, so the late leader vertex lands before
         some processes' processing moment (they commit the wave) and
         after others' (they skip, and their later anchors have no
         strong path into the never-linked leader chain, so the wave is
         skipped forever): prefix divergence the oracle must report as
         an agreement violation. *)
      let target_wave = 2 + Stdx.Rng.int rng 3 in
      (* round-robin rules publish their whole leader schedule, so the
         victim is a table lookup; coin rules need the rng replay above *)
      let victim =
        match rule.Dagrider.Ordering.rule_schedule with
        | Dagrider.Ordering.Round_robin ->
          Dagrider.Ordering.round_robin_leader ~n ~wave:target_wave
        | Dagrider.Ordering.Coin -> predicted_leader ~seed ~n ~f ~wave:target_wave
      in
      let slow =
        Slow_process { victim; factor = 5.0 +. Stdx.Rng.float rng 12.0 }
      in
      let coin_storm =
        Kind_storm_window
          { from_time = horizon *. (0.1 +. (0.2 *. Stdx.Rng.float rng 1.0));
            until_time = horizon *. (0.6 +. (0.25 *. Stdx.Rng.float rng 1.0));
            kinds = [ "coin-" ];
            factor = 4.0 +. Stdx.Rng.float rng 8.0 }
      in
      (* extra marginal chaos: per-receiver asymmetries spread the
         processing moments further apart *)
      let extras =
        List.init (Stdx.Rng.int rng 3) (fun _ ->
            match Stdx.Rng.int rng 3 with
            | 0 ->
              let from_time, until_time = sample_window rng ~horizon in
              Partition_window
                { from_time;
                  until_time;
                  left =
                    Stdx.Rng.sample_without_replacement rng
                      ~k:(1 + Stdx.Rng.int rng (n - 1))
                      ~n;
                  factor = 2.0 +. Stdx.Rng.float rng 2.0 }
            | 1 ->
              Sluggish
                { period = 4.0 +. Stdx.Rng.float rng 8.0;
                  factor = 2.0 +. Stdx.Rng.float rng 2.0 }
            | _ ->
              let from_time, until_time = sample_window rng ~horizon in
              Kind_storm_window
                { from_time;
                  until_time;
                  kinds = [ rbc_prefix backend ];
                  factor = 2.0 +. Stdx.Rng.float rng 2.0 })
      in
      (slow :: coin_storm :: extras, [])
    end
    else begin
      let layers =
        List.init (Stdx.Rng.int rng 3) (fun _ ->
            sample_layer rng ~n ~backend ~horizon)
      in
      let budget = Stdx.Rng.int rng (f + 1) in
      let victims = Stdx.Rng.sample_without_replacement rng ~k:budget ~n in
      let faults = List.map (sample_fault rng ~horizon) victims in
      let restarts =
        if Stdx.Rng.int rng 3 = 0 then begin
          let candidates =
            List.filter (fun i -> not (List.mem i victims))
              (List.init n (fun i -> i))
          in
          match candidates with
          | [] -> []
          | _ ->
            List.init
              (1 + Stdx.Rng.int rng 2)
              (fun _ ->
                Restart_at
                  { time = horizon *. (0.2 +. (0.5 *. Stdx.Rng.float rng 1.0));
                    node = Stdx.Rng.choose rng (Array.of_list candidates) })
        end
        else []
      in
      (layers, faults @ restarts)
    end
  in
  (* lossy links are sampled LAST, so enabling them never perturbs the
     draws above; the sabotage branch skips them entirely — its attack
     choreography depends on precise delivery timing. An explicit
     [lossy] override (the CLI's --loss/--dup/--corrupt flags) replaces
     whatever was sampled, again without consuming extra draws. *)
  let link_faults, lossy_forced =
    if sabotage then (None, false)
    else begin
      (* the sampling draws happen whether or not the override is used,
         so a forced-lossy run consumes exactly the draws the sampled
         one did and everything drawn after (the adversary) agrees *)
      let sampled =
        if Stdx.Rng.int rng 4 = 0 then
          Some
            { Harness.Runner.lf_drop = 0.05 +. Stdx.Rng.float rng 0.2;
              lf_duplicate = Stdx.Rng.float rng 0.1;
              lf_corrupt = Stdx.Rng.float rng 0.05;
              lf_reorder = Stdx.Rng.float rng 0.2 }
        else None
      in
      match lossy with Some lf -> (Some lf, true) | None -> (sampled, false)
    end
  in
  (* the adversary is drawn after even the lossy links, so enabling
     attacked sampling never perturbs any draw an older seed made. A
     forced [~attack] spec (the CLI's --attack flag) consumes no draws
     at all — it {e replaces} the sampled fault script with the one
     adversary (plus the sampled restarts, which are not faults), so the
     run stays within the [f] budget and the oracle verdicts stay
     meaningful *)
  let faults, attack, attack_forced =
    if sabotage then (faults, None, false)
    else begin
      let busy = List.sort_uniq compare (List.map fault_node faults) in
      let candidates =
        List.filter (fun i -> not (List.mem i busy)) (List.init n (fun i -> i))
      in
      match attack with
      | Some spec ->
        let node = match candidates with c :: _ -> c | [] -> 0 in
        let restarts =
          List.filter (function Restart_at _ -> true | _ -> false) faults
        in
        (* a lying catch-up peer only ever acts when somebody restarts
           and asks for sync: guarantee one restart in forced runs *)
        let restarts =
          if restarts <> [] || spec.Attack.strategy <> Attack.Lying_sync then
            restarts
          else
            [ Restart_at { time = horizon *. 0.45; node = (node + 1) mod n } ]
        in
        ( Static (Harness.Runner.Adversary (node, spec)) :: restarts,
          Some (node, spec),
          true )
      | None ->
        let static_faulty =
          List.filter (function Restart_at _ -> false | _ -> true) faults
        in
        (* short-circuit order matters: when the fault budget is already
           spent no draw is consumed, and nothing is sampled after this
           block, so both shapes stay replayable from the seed *)
        if
          List.length static_faulty >= f
          || candidates = []
          || Stdx.Rng.int rng 3 <> 0
        then (faults, None, false)
        else begin
          let node = Stdx.Rng.choose rng (Array.of_list candidates) in
          let strategy =
            Stdx.Rng.choose rng (Array.of_list Attack.all_strategies)
          in
          let spec = { Attack.strategy; victims = [] } in
          (* consed at the head so the shrinker tries dropping the
             adversary before any other fault *)
          ( Static (Harness.Runner.Adversary (node, spec)) :: faults,
            Some (node, spec),
            false )
        end
    end
  in
  (* retransmission (rto 3.0, backoff) stretches end-to-end latency:
     give lossy runs room to keep committing inside the horizon *)
  let horizon = if link_faults <> None then horizon *. 2.0 else horizon in
  { seed;
    quick;
    sabotage;
    n;
    f;
    backend;
    rule;
    base;
    layers;
    faults;
    horizon;
    commit_quorum = (if sabotage then Some 0 else None);
    link_faults;
    lossy_forced;
    attack;
    attack_forced;
    sync_weakened = weaken_sync && not sabotage }

let base_sched base rng =
  match base with
  | Uniform -> Net.Sched.uniform_random ~rng
  | Skewed -> Net.Sched.skewed_random ~rng
  | Bimodal -> Net.Sched.bimodal ~rng ()
  | Heavy_tailed -> Net.Sched.heavy_tailed ~rng

let build_sched t rng =
  List.fold_left
    (fun inner layer ->
      match layer with
      | Partition_window { from_time; until_time; left; factor } ->
        Net.Sched.with_window ~inner ~from_time ~until_time
          ~during:
            (Net.Sched.partition ~inner ~left:(fun i -> List.mem i left)
               ~factor)
      | Kind_storm_window { from_time; until_time; kinds; factor } ->
        Net.Sched.with_window ~inner ~from_time ~until_time
          ~during:(Net.Sched.kind_storm ~inner ~kinds ~factor)
      | Slow_process { victim; factor } ->
        Net.Sched.delay_process ~inner ~victim ~factor
      | Hide_process { victim; factor } ->
        Net.Sched.delay_matching ~inner
          ~pred:(fun ~src ~dst ~kind ->
            ignore kind;
            src = victim && dst <> victim)
          ~factor
      | Sluggish { period; factor } ->
        Net.Sched.mobile_sluggish ~inner ~n:t.n ~f:t.f ~period ~factor)
    (base_sched t.base rng) t.layers

let to_options t =
  let statics =
    List.filter_map (function Static f -> Some f | _ -> None) t.faults
  in
  { (Harness.Runner.default_options ~n:t.n) with
    f = t.f;
    seed = t.seed;
    backend = t.backend;
    rule = t.rule;
    schedule = Harness.Runner.Custom (build_sched t);
    commit_quorum = t.commit_quorum;
    faults = statics;
    link_faults = t.link_faults;
    sync_trusting = t.sync_weakened }

let expect_validity t =
  (not t.sabotage)
  && t.faults = []
  && t.link_faults = None
  && List.for_all
       (function Slow_process _ | Hide_process _ -> false | _ -> true)
       t.layers

let describe_backend = function
  | Harness.Runner.Bracha -> "bracha"
  | Harness.Runner.Avid -> "avid"
  | Harness.Runner.Gossip -> "gossip"

let describe_base = function
  | Uniform -> "uniform"
  | Skewed -> "skewed"
  | Bimodal -> "bimodal"
  | Heavy_tailed -> "heavy-tailed"

let describe_layer = function
  | Partition_window { from_time; until_time; left; factor } ->
    Printf.sprintf "partition{%s}x%.0f@[%.1f,%.1f)"
      (String.concat "," (List.map string_of_int left))
      factor from_time until_time
  | Kind_storm_window { from_time; until_time; kinds; factor } ->
    Printf.sprintf "storm[%s]x%.0f@[%.1f,%.1f)" (String.concat "," kinds)
      factor from_time until_time
  | Slow_process { victim; factor } ->
    Printf.sprintf "slow(p%d)x%.0f" victim factor
  | Hide_process { victim; factor } ->
    Printf.sprintf "hide(p%d)x%.0f" victim factor
  | Sluggish { period; factor } ->
    Printf.sprintf "sluggish(T=%.1f)x%.0f" period factor

let describe_fault = function
  | Static (Harness.Runner.Crash i) -> Printf.sprintf "crash p%d" i
  | Static (Harness.Runner.Byzantine_silent i) -> Printf.sprintf "silent p%d" i
  | Static (Harness.Runner.Byzantine_live i) -> Printf.sprintf "byz-live p%d" i
  | Static (Harness.Runner.Byzantine_attacker i) ->
    Printf.sprintf "attacker p%d" i
  | Static (Harness.Runner.Adversary (i, spec)) -> Attack.describe ~node:i spec
  | Corrupt_at { time; node } -> Printf.sprintf "corrupt p%d@%.1f" node time
  | Restart_at { time; node } -> Printf.sprintf "restart p%d@%.1f" node time

let describe_lossy (lf : Harness.Runner.link_faults) =
  Printf.sprintf "lossy(drop=%.2f,dup=%.2f,corrupt=%.2f,reorder=%.2f)"
    lf.Harness.Runner.lf_drop lf.Harness.Runner.lf_duplicate
    lf.Harness.Runner.lf_corrupt lf.Harness.Runner.lf_reorder

let describe t =
  Printf.sprintf
    "seed %d: n=%d f=%d backend=%s%s sched=%s%s faults=[%s]%s%s%s horizon=%.0f%s"
    t.seed t.n t.f
    (describe_backend t.backend)
    (if t.rule.Dagrider.Ordering.rule_name = "dagrider" then ""
     else " rule=" ^ t.rule.Dagrider.Ordering.rule_name)
    (describe_base t.base)
    (match t.layers with
    | [] -> ""
    | ls -> "+" ^ String.concat "+" (List.map describe_layer ls))
    (String.concat "; " (List.map describe_fault t.faults))
    (match t.commit_quorum with
    | None -> ""
    | Some q -> Printf.sprintf " quorum=%d(SABOTAGED)" q)
    (match t.link_faults with
    | None -> ""
    | Some lf ->
      " " ^ describe_lossy lf ^ if t.lossy_forced then "(forced)" else "")
    ((if t.attack <> None && t.attack_forced then " attack(forced)" else "")
    ^ if t.sync_weakened then " sync=TRUSTING(WEAKENED)" else "")
    t.horizon
    (if t.quick then " (quick)" else "")
