let ascii ?(highlight = fun _ -> false) ?(min_round = 1) ?max_round dag =
  let top =
    match max_round with
    | Some r -> min r (Dag.highest_round dag)
    | None -> Dag.highest_round dag
  in
  let lo = max 1 min_round in
  let n = Dag.n dag in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "round   ";
  for r = lo to top do
    Buffer.add_string buf (Printf.sprintf "%-5d" r)
  done;
  Buffer.add_char buf '\n';
  for source = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "p%-2d     " source);
    for round = lo to top do
      let cell =
        match Dag.find dag { Vertex.round; source } with
        | None -> "."
        | Some v ->
          let mark =
            if highlight { Vertex.round; source } then "@" else "*"
          in
          let weak = List.length v.Vertex.weak_edges in
          if weak > 0 then Printf.sprintf "%sw%d" mark weak else mark
      in
      Buffer.add_string buf (Printf.sprintf "%-5s" cell)
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

type vertex_class =
  | Plain
  | Elected_leader
  | Skipped_leader
  | Committed_leader
  | Shaded
  | Supporter
  | Chained_leader

let class_style = function
  | Plain -> ""
  | Elected_leader -> " [style=filled, fillcolor=lightskyblue]"
  | Skipped_leader -> " [style=filled, fillcolor=lightcoral]"
  | Committed_leader -> " [style=filled, fillcolor=gold]"
  | Shaded -> " [style=filled, fillcolor=gray90]"
  | Supporter -> " [style=filled, fillcolor=palegreen]"
  | Chained_leader -> " [style=filled, fillcolor=orange]"

let dot_classified ?(classify = fun _ -> Plain) ?(legend = false) ?max_round dag
    =
  let top =
    match max_round with
    | Some r -> min r (Dag.highest_round dag)
    | None -> Dag.highest_round dag
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph dag {\n  rankdir=LR;\n  node [shape=circle];\n";
  if legend then
    Buffer.add_string buf
      "  // legend: gold = committed leader, lightcoral = skipped leader,\n\
      \  //         lightskyblue = elected (unresolved) leader,\n\
      \  //         gray90 = causal history of the chosen commit,\n\
      \  //         palegreen = supporting-quorum vertex,\n\
      \  //         orange = chain-back leader,\n\
      \  //         solid edge = strong, dashed edge = weak\n";
  let node_id (vref : Vertex.vref) =
    Printf.sprintf "r%dp%d" vref.Vertex.round vref.Vertex.source
  in
  for round = 1 to top do
    Buffer.add_string buf (Printf.sprintf "  { rank=same;");
    List.iter
      (fun v ->
        let vref = Vertex.vref_of v in
        Buffer.add_string buf (Printf.sprintf " %s;" (node_id vref)))
      (Dag.round_vertices dag round);
    Buffer.add_string buf " }\n"
  done;
  for round = 1 to top do
    List.iter
      (fun v ->
        let vref = Vertex.vref_of v in
        let style = class_style (classify vref) in
        Buffer.add_string buf
          (Printf.sprintf "  %s [label=\"%d,%d\"]%s;\n" (node_id vref)
             vref.Vertex.round vref.Vertex.source style);
        List.iter
          (fun (e : Vertex.vref) ->
            if e.Vertex.round >= 1 then
              Buffer.add_string buf
                (Printf.sprintf "  %s -> %s;\n" (node_id vref) (node_id e)))
          v.Vertex.strong_edges;
        List.iter
          (fun (e : Vertex.vref) ->
            Buffer.add_string buf
              (Printf.sprintf "  %s -> %s [style=dashed];\n" (node_id vref)
                 (node_id e)))
          v.Vertex.weak_edges)
      (Dag.round_vertices dag round)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dot_justification ?(support = []) ?(chain = []) ?legend ?max_round dag
    ~leader =
  let classes : (Vertex.vref, vertex_class) Hashtbl.t = Hashtbl.create 64 in
  (* paint lowest-priority first so the stronger roles win the slot *)
  if Dag.contains dag leader then
    List.iter
      (fun v -> Hashtbl.replace classes v Shaded)
      (Dag.reachable_from dag leader ~via_strong_only:false);
  List.iter (fun v -> Hashtbl.replace classes v Supporter) support;
  List.iter (fun v -> Hashtbl.replace classes v Chained_leader) chain;
  Hashtbl.replace classes leader Committed_leader;
  dot_classified
    ~classify:(fun v ->
      match Hashtbl.find_opt classes v with Some c -> c | None -> Plain)
    ?legend ?max_round dag

let dot ?(highlight = fun _ -> false) ?max_round dag =
  dot_classified
    ~classify:(fun vref -> if highlight vref then Committed_leader else Plain)
    ?max_round dag

let wave_summary dag ~wave_length ~commit_quorum ~leader_of =
  let top_wave = Dag.highest_round dag / wave_length in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "wave | leader | present | support (need %d)\n" commit_quorum);
  for w = 1 to top_wave do
    match leader_of w with
    | None -> Buffer.add_string buf (Printf.sprintf "%4d | (coin unresolved)\n" w)
    | Some leader_source ->
      let line =
        match Ordering.leader_vertex ~wave_length ~dag ~wave:w ~leader_source with
        | None -> Printf.sprintf "%4d | p%-4d | no      | -\n" w leader_source
        | Some leader ->
          let last = Ordering.round_of ~wave_length ~wave:w ~k:wave_length in
          let support =
            List.length
              (List.filter
                 (fun v ->
                   Dag.strong_path dag (Vertex.vref_of v) (Vertex.vref_of leader))
                 (Dag.round_vertices dag last))
          in
          Printf.sprintf "%4d | p%-4d | yes     | %d%s\n" w leader_source support
            (if support >= commit_quorum then " COMMIT" else "")
      in
      Buffer.add_string buf line
  done;
  Buffer.contents buf
