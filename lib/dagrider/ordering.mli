(** The zero-communication ordering layer, parameterized by a
    {e commit rule} (paper §5, Algorithm 3; Bullshark's partially
    synchronous rule as the second instance).

    The DAG is split into waves of [rule_wave_length] rounds;
    [round (w, k)] is round [L(w-1) + k] for [k] in [1..L]. When a
    process completes a wave it identifies that wave's leader vertex —
    retrospectively via the global coin (DAG-Rider) or by a predefined
    round-robin schedule (Bullshark) — and commits it if at least
    [commit_quorum] vertices of the wave's last round have a strong
    path to it. Committed leaders chain backwards through waves whose
    commit rule this process missed (Lines 39–43), and each leader's
    not-yet-delivered causal history is output in a deterministic
    order.

    This module is purely local: it reads the DAG and the resolved
    leader schedule and produces delivery events — exactly the paper's
    "zero extra communication" claim, kept testable by construction. *)

type leader_schedule =
  | Coin        (** retrospective threshold-coin election (DAG-Rider) *)
  | Round_robin (** predefined leader [(w-1) mod n] (Bullshark PS) *)

type quorum_rule =
  | Two_f_plus_one (** supermajority of the wave's last round *)
  | F_plus_one     (** one correct vote suffices (Bullshark fast path) *)

type rule = {
  rule_name : string;        (** stable CLI / JSON / span identifier *)
  rule_wave_length : int;    (** rounds per wave (4 resp. 2) *)
  rule_schedule : leader_schedule;
  rule_quorum : quorum_rule; (** direct-commit vote threshold *)
  rule_bound : float;
      (** advisory waves-per-commit bound the analyzer audits:
          DAG-Rider's expected 1.5 (Claim 6); for Bullshark 2.0 — the
          round-robin rotation commits every correct leader's wave in
          synchronous periods ([n/(n-f) <= 1.5] of the waves), with
          slack for timeout-fallback schedules where leader slots are
          skipped and recovered by the chain-back *)
}

val dag_rider : rule
(** The paper's Algorithm 3: 4-round waves, coin-chosen retrospective
    leaders, [2f+1] strong-path supporters. *)

val bullshark : rule
(** The partially synchronous Bullshark rule on the same DAG substrate:
    2-round waves, round-robin predefined leaders, [f+1] first-round
    votes. The timeout-driven leader skip of the real protocol maps to
    wave completion here: a process that assembles the wave's last
    round without the leader (or without [f+1] votes for it) skips the
    wave and relies on a later leader's chain-back. *)

val rules : rule list

val rule_names : string list

val rule_of_name : string -> rule option
(** Look a rule up by [rule_name] ("dagrider" / "bullshark"). *)

val quorum_of : rule -> f:int -> int
(** The rule's direct-commit quorum: [2f+1] or [f+1]. *)

val round_robin_leader : n:int -> wave:int -> int
(** The predefined Bullshark leader of a wave: [(wave - 1) mod n].
    @raise Invalid_argument if [wave < 1]. *)

type t

type commit = {
  wave : int;               (** wave whose leader this is *)
  leader : Vertex.t;        (** the committed leader vertex *)
  delivered : Vertex.t list;(** newly delivered causal history, in order *)
  direct : bool;            (** committed by its own wave's commit rule
                                ([false] = chained from a later wave) *)
  support : Vertex.vref list;
      (** provenance of a direct commit: the wave's last-round vertices
          with a strong path to the leader — the exact set the Line 36
          vote count was taken over. Empty for chained commits, whose
          evidence is [via]. *)
  anchor : int;
      (** the wave whose direct commit fired this decision; equals
          [wave] for direct commits, the wave at the top of the
          lines-38-43 chain for chained ones *)
  via : Vertex.vref;
      (** the next committed leader up the chain whose strong path to
          this leader justified a chained commit; the leader itself
          when [direct] *)
}

type skip_reason =
  | Leader_absent    (** no leader vertex in the local DAG (Line 47) *)
  | Under_supported  (** leader present, support below the quorum *)

val skip_reason_label : skip_reason -> string
(** Stable identifiers "leader-absent" / "under-supported" (the trace
    certificate encoding). *)

val create :
  ?rule:rule -> ?wave_length:int -> ?commit_quorum:int -> f:int -> unit -> t
(** Defaults to {!dag_rider} ([wave_length = 4], [commit_quorum = 2f+1]).
    [wave_length] overrides the rule's wave length and [commit_quorum]
    its quorum — the ablation benches use the overrides to demonstrate
    {e why} the paper's values are right (DESIGN.md §5): shorter coin
    waves break the common-core argument, a weaker quorum breaks
    Lemma 1. *)

val round_of : wave_length:int -> wave:int -> k:int -> int
(** [round(w, k) = L(w-1) + k] for wave length [L]; [k] must be in
    [1..L]. @raise Invalid_argument otherwise. *)

val wave_of_completed_round : wave_length:int -> int -> int option
(** [Some w] if completing this round completes wave [w]
    (i.e. the round is [round(w, L)]), else [None]. *)

val leader_vertex :
  wave_length:int ->
  dag:Dag.t -> wave:int -> leader_source:int -> Vertex.t option
(** [get_wave_vertex_leader] (Line 46): the chosen process's vertex in
    the wave's first round, if the local DAG has it. *)

val supporters :
  wave_length:int -> dag:Dag.t -> wave:int -> leader:Vertex.t -> Vertex.t list
(** The vertices of [round(w, L)] with a strong path to the leader —
    the set whose size Line 36 compares against the quorum, in DAG
    order (sorted by source). *)

val skip_evidence :
  wave_length:int ->
  dag:Dag.t -> wave:int -> leader_source:int ->
  skip_reason * Vertex.t list
(** Why a wave's commit rule is not met right now, with the partial
    supporter set as evidence ([Leader_absent] carries the empty list).
    Pure DAG probe — meaningful whenever {!process_wave} returned no
    commit for the wave. *)

val commit_rule_met :
  wave_length:int -> commit_quorum:int ->
  dag:Dag.t -> wave:int -> leader:Vertex.t -> bool
(** Line 36: do [>= commit_quorum] vertices in [round(w, L)] have a
    strong path to the leader? With [wave_length = 2] and
    [commit_quorum = f+1] this is exactly Bullshark's first-round vote
    count — a strong path between consecutive rounds is a strong edge. *)

val process_wave :
  t ->
  dag:Dag.t ->
  wave:int ->
  choose_leader:(int -> int) ->
  commit list
(** Handle [wave_ready w] with the leaders of all waves [<= w]
    available through [choose_leader] (coin outputs, or the round-robin
    schedule). Returns the commits produced (in delivery order:
    earliest wave first), each with its newly delivered vertices. Empty
    when the commit rule is not met — the wave is then left for a later
    wave's backward chain, exactly as in the paper. Waves at or below
    the decided wave are ignored. Profiled under the per-rule span
    ["order.wave.<rule_name>"]. *)

val restore : t -> delivered:Vertex.t list -> decided_wave:int -> unit
(** Reload persisted progress into a {e fresh} ordering state: the
    vertices are marked delivered (in the given order) and the decided
    wave is set, so a restarted node neither re-delivers nor re-decides
    old waves. @raise Invalid_argument if the state is not fresh. *)

val rule : t -> rule
(** The rule this state runs, with [rule_wave_length] reflecting any
    [wave_length] override given at {!create}. *)

val wave_length : t -> int

val commit_quorum : t -> int

val decided_wave : t -> int

val delivered_log : t -> Vertex.t list
(** Every vertex delivered so far, oldest first — the process's totally
    ordered output (for cross-process agreement checks). *)

val delivered_count : t -> int

val is_delivered : t -> Vertex.vref -> bool
