type rbc_handle = { rbc_bcast : payload:string -> round:int -> unit }

type rbc_factory = me:int -> deliver:Rbc.Rbc_intf.deliver -> rbc_handle

type coin_msg = Coin_share of Crypto.Threshold_coin.share

type sync_msg =
  | Sync_request of { from_round : int }
  | Sync_response of { vertices : (string * int * int) list }

type coin_mode = Separate_network | In_dag

type config = {
  n : int;
  f : int;
  rule : Ordering.rule;
  wave_length : int;
  commit_quorum : int option;
  enable_weak_edges : bool;
  gc_depth : int option;
  coin_mode : coin_mode;
}

let default_config ~n ~f =
  { n;
    f;
    rule = Ordering.dag_rider;
    wave_length = 4;
    commit_quorum = None;
    enable_weak_edges = true;
    gc_depth = None;
    coin_mode = Separate_network }

(* The effective commit rule. Coin-scheduled rules order on the coin
   cadence by definition (coin instance w IS ordering wave w), so
   [config.wave_length] — the coin cadence — overrides their wave
   length; that keeps the wave-length ablation a one-knob change.
   Round-robin rules keep their own wave length and treat
   [config.wave_length] purely as the coin cadence: the coin machinery
   keeps running identically underneath so that rule choice cannot
   perturb the message schedule (and with it the RNG chain). *)
let effective_rule config =
  match config.rule.Ordering.rule_schedule with
  | Ordering.Coin ->
    { config.rule with Ordering.rule_wave_length = config.wave_length }
  | Ordering.Round_robin -> config.rule

type t = {
  config : config;
  me : int;
  trace : Trace.t option;
  coin : Crypto.Threshold_coin.t;
  coin_net : coin_msg Net.Port.t;
  mutable sync_net : sync_msg Net.Port.t option;
  dag : Dag.t;
  ordering : Ordering.t;
  mutable rbc : rbc_handle option;
  blocks_to_propose : string Queue.t;
  block_source : round:int -> string;
  a_deliver : block:string -> round:int -> source:int -> unit;
  on_commit : Ordering.commit -> unit;
  mutable buffer : Vertex.t list;
  mutable round : int; (* current round r of Algorithm 2 *)
  mutable started : bool;
  (* wave machinery — two cadences: ordering waves follow the commit
     rule's wave length, coin instances follow [config.wave_length]
     (they coincide for coin-scheduled rules) *)
  mutable waves_completed : int; (* highest ordering wave completed *)
  mutable coin_waves_completed : int; (* highest coin instance completed *)
  shares : (int, Crypto.Threshold_coin.share list ref) Hashtbl.t;
  leaders : (int, int) Hashtbl.t; (* resolved coin: wave -> process *)
  mutable share_sent_up_to : int;
  mutable next_wave_to_order : int;
  (* catch-up hardening: a sync response is one peer's unauthenticated
     claim, so a vertex this node cannot cross-check against its DAG
     needs byte-identical confirmation from f+1 distinct responders
     before admission (at most f are Byzantine, so one voucher is
     honest). Keyed (round, source, digest) -> responders seen. *)
  sync_trusting : bool;
  sync_pending : (int * int * string, int list ref) Hashtbl.t;
}

let me t = t.me
let current_round t = t.round
let dag t = t.dag
let ordering t = t.ordering
let delivered_log t = Ordering.delivered_log t.ordering
let buffered t = List.length t.buffer
let waves_completed t = t.waves_completed
let coin_instances_resolved t = Hashtbl.length t.leaders

let leader_of t ~wave =
  match (Ordering.rule t.ordering).Ordering.rule_schedule with
  | Ordering.Coin -> Hashtbl.find_opt t.leaders wave
  | Ordering.Round_robin ->
    if wave >= 1 then Some (Ordering.round_robin_leader ~n:t.config.n ~wave)
    else None

(* the raw coin-instance resolution, independent of the ordering rule's
   schedule — the coin cadence is the same under every rule, so readers
   of this accessor (e.g. adaptive adversaries) behave identically
   across rules and keep the DAG substrate rule-oblivious *)
let coin_leader_of t ~wave = Hashtbl.find_opt t.leaders wave

let rbc t =
  match t.rbc with
  | Some r -> r
  | None -> invalid_arg "Node: rbc backend not wired (internal error)"

let tr_emit t kind =
  match t.trace with None -> () | Some tr -> Trace.emit tr kind

(* ---- vertex creation (Algorithm 2, lines 16-21 and 27-31) ---- *)

let next_block t ~round =
  match Queue.take_opt t.blocks_to_propose with
  | Some b -> b
  | None -> t.block_source ~round

let set_weak_edges t ~strong_edges ~round =
  if (not t.config.enable_weak_edges) || round < 3 then []
  else begin
    (* vertices already reachable through the strong edges *)
    let reachable = Hashtbl.create 128 in
    let absorb vref =
      List.iter
        (fun r -> Hashtbl.replace reachable r ())
        (Dag.reachable_from t.dag vref ~via_strong_only:false)
    in
    List.iter absorb strong_edges;
    let weak = ref [] in
    for r = round - 2 downto 1 do
      List.iter
        (fun u ->
          let uref = Vertex.vref_of u in
          if not (Hashtbl.mem reachable uref) then begin
            weak := uref :: !weak;
            absorb uref
          end)
        (Dag.round_vertices t.dag r)
    done;
    !weak
  end

(* In [In_dag] coin mode the RBC payload is the vertex encoding plus a
   trailing share record and a flag byte:
     <vertex bytes> <u32 holder> <u32 instance> <u32 value> '\001'
   or just <vertex bytes> '\000'. The suffix parses backwards, so the
   vertex codec itself stays unchanged. *)

let put_u32_str v =
  String.init 4 (fun i -> Char.chr ((v lsr (8 * (3 - i))) land 0xFF))

let read_u32 s pos =
  let b i = Char.code s.[pos + i] in
  (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3

let wrap_payload ~vertex_bytes ~share =
  match share with
  | None -> vertex_bytes ^ "\000"
  | Some (s : Crypto.Threshold_coin.share) ->
    vertex_bytes
    ^ put_u32_str s.holder
    ^ put_u32_str s.instance
    ^ put_u32_str s.value
    ^ "\001"

let unwrap_payload payload =
  let len = String.length payload in
  if len = 0 then None
  else
    match payload.[len - 1] with
    | '\000' -> Some (String.sub payload 0 (len - 1), None)
    | '\001' when len >= 13 ->
      let base = len - 13 in
      let share =
        { Crypto.Threshold_coin.holder = read_u32 payload base;
          instance = read_u32 payload (base + 4);
          value = read_u32 payload (base + 8) }
      in
      Some (String.sub payload 0 base, Some share)
    | _ -> None

(* the share this vertex must carry in [In_dag] mode: round w*L + 1 is
   the first round a process can only enter after completing wave w *)
let in_dag_share t ~round =
  if t.config.coin_mode <> In_dag then None
  else begin
    let wave_length = t.config.wave_length in
    if round > wave_length && (round - 1) mod wave_length = 0 then begin
      let wave = (round - 1) / wave_length in
      tr_emit t (Trace.Coin_flip { node = t.me; wave });
      Some (Crypto.Threshold_coin.make_share t.coin ~holder:t.me ~instance:wave)
    end
    else None
  end

let create_and_broadcast_vertex t ~round =
  let strong_edges =
    List.map Vertex.vref_of (Dag.round_vertices t.dag (round - 1))
  in
  let weak_edges = set_weak_edges t ~strong_edges ~round in
  let v =
    { Vertex.round;
      source = t.me;
      block = next_block t ~round;
      strong_edges;
      weak_edges }
  in
  let payload =
    match t.config.coin_mode with
    | Separate_network -> Vertex.encode v
    | In_dag ->
      wrap_payload ~vertex_bytes:(Vertex.encode v)
        ~share:(in_dag_share t ~round)
  in
  tr_emit t (Trace.Vertex_created { node = t.me; round });
  (rbc t).rbc_bcast ~payload ~round

(* ---- wire codecs for the coin and sync channels ----

   Messages on these channels travel as typed OCaml values on reliable
   networks, but over lossy links (Net.Link) they are carried as bytes
   — these codecs are what the link endpoints are attached with, and
   they face the same hostile inputs as the RBC codecs (fuzzed in the
   suite, must return None rather than raise). *)

module Wire = Rbc.Rbc_intf.Wire

let max_sync_vertices = 500

let encode_coin_msg (Coin_share (s : Crypto.Threshold_coin.share)) =
  let buf = Buffer.create 16 in
  Wire.put_u8 buf 1;
  Wire.put_u32 buf s.holder;
  Wire.put_u32 buf s.instance;
  Wire.put_u32 buf s.value;
  Buffer.contents buf

let decode_coin_msg src =
  Wire.decode src (fun r ->
      match Wire.get_u8 r with
      | 1 ->
        let holder = Wire.get_u32 r in
        let instance = Wire.get_u32 r in
        let value = Wire.get_u32 r in
        Wire.finish r
          (Coin_share { Crypto.Threshold_coin.holder; instance; value })
      | _ -> None)

let encode_sync_msg msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Sync_request { from_round } ->
    Wire.put_u8 buf 1;
    Wire.put_u32 buf from_round
  | Sync_response { vertices } ->
    Wire.put_u8 buf 2;
    Wire.put_u32 buf (List.length vertices);
    List.iter
      (fun (payload, round, source) ->
        Wire.put_u32 buf round;
        Wire.put_u32 buf source;
        Wire.put_bytes buf payload)
      vertices);
  Buffer.contents buf

let decode_sync_msg src =
  Wire.decode src (fun r ->
      match Wire.get_u8 r with
      | 1 ->
        let from_round = Wire.get_u32 r in
        Wire.finish r (Sync_request { from_round })
      | 2 ->
        let count = Wire.get_u32 r in
        (* honest responses are capped; a huge count is an attack on the
           decoder's allocator, not a message *)
        if count > max_sync_vertices then raise Wire.Bad;
        let vertices =
          List.init count (fun _ ->
              let round = Wire.get_u32 r in
              let source = Wire.get_u32 r in
              let payload = Wire.get_bytes r in
              (payload, round, source))
        in
        Wire.finish r (Sync_response { vertices })
      | _ -> None)

(* ---- coin handling ---- *)

(* coin shares and sync messages are charged at their exact encoded
   size, like every other message in the stack *)
let coin_share_bits (s : Crypto.Threshold_coin.share) =
  ignore s;
  (* u32 holder + u32 instance + u32 field element *)
  8 * 12

let broadcast_share t ~wave =
  tr_emit t (Trace.Coin_flip { node = t.me; wave });
  let share = Crypto.Threshold_coin.make_share t.coin ~holder:t.me ~instance:wave in
  Net.Port.broadcast t.coin_net ~src:t.me ~kind:"coin-share"
    ~bits:(coin_share_bits share) (Coin_share share)

let shares_for t wave =
  match Hashtbl.find_opt t.shares wave with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.add t.shares wave r;
    r

let maybe_gc t =
  match t.config.gc_depth with
  | None -> ()
  | Some depth ->
    let decided = Ordering.decided_wave t.ordering in
    if decided > 0 then begin
      let decided_start =
        Ordering.round_of ~wave_length:(Ordering.wave_length t.ordering)
          ~wave:decided ~k:1
      in
      let cutoff = decided_start - depth in
      (* only prune rounds whose vertices were all delivered: anything
         in the decided leader's past is, stragglers might not be *)
      let rec safe_cutoff r =
        if r >= cutoff then cutoff
        else if
          List.for_all
            (fun v -> Ordering.is_delivered t.ordering (Vertex.vref_of v))
            (Dag.round_vertices t.dag r)
        then safe_cutoff (r + 1)
        else r
      in
      let bound = safe_cutoff 1 in
      if bound > 1 then Dag.prune_below t.dag ~round:bound
    end

(* ---- provenance certificates (forensics) ----

   Alongside the compact Commit / Leader_skipped events, a traced node
   emits one certificate per ordering decision carrying the full
   evidence: the schedule that named the leader, the exact supporter
   set counted against the quorum, and — for chained commits — which
   later leader's strong path recovered the wave. lib/forensics
   reconstructs explain/divergence views purely from these. *)

let sched_label = function
  | Ordering.Coin -> "coin"
  | Ordering.Round_robin -> "round-robin"

let emit_skip_cert t ~wave ~leader_source =
  match t.trace with
  | None -> ()
  | Some tr ->
    let rule = Ordering.rule t.ordering in
    let wave_length = Ordering.wave_length t.ordering in
    let reason, support =
      Ordering.skip_evidence ~wave_length ~dag:t.dag ~wave ~leader_source
    in
    Trace.emit tr
      (Trace.Skip_cert
         { node = t.me;
           rule = rule.Ordering.rule_name;
           sched = sched_label rule.Ordering.rule_schedule;
           wave;
           leader_round = Ordering.round_of ~wave_length ~wave ~k:1;
           leader_source;
           reason = Ordering.skip_reason_label reason;
           support = List.map (fun v -> v.Vertex.source) support;
           quorum = Ordering.commit_quorum t.ordering })

let emit_commit_cert t (c : Ordering.commit) =
  match t.trace with
  | None -> ()
  | Some tr ->
    let rule = Ordering.rule t.ordering in
    Trace.emit tr
      (Trace.Commit_cert
         { node = t.me;
           rule = rule.Ordering.rule_name;
           sched = sched_label rule.Ordering.rule_schedule;
           wave = c.Ordering.wave;
           leader_round = c.Ordering.leader.Vertex.round;
           leader_source = c.Ordering.leader.Vertex.source;
           direct = c.Ordering.direct;
           anchor_wave = c.Ordering.anchor;
           via_round = c.Ordering.via.Vertex.round;
           via_source = c.Ordering.via.Vertex.source;
           support =
             List.map
               (fun (r : Vertex.vref) -> r.Vertex.source)
               c.Ordering.support;
           quorum = Ordering.commit_quorum t.ordering;
           delivered = List.length c.Ordering.delivered })

(* Run the ordering step for every wave that is locally complete and
   whose leader is known, strictly in wave order (Algorithm 3 needs
   leaders of all waves <= w when processing w). Coin-scheduled rules
   wait for the wave's coin to resolve; round-robin rules know every
   leader up front — completing the wave is their "timeout": the wave
   is processed immediately and an absent or under-voted leader is
   skipped for the chain-back to recover. *)
let rec try_order_waves t =
  let w = t.next_wave_to_order in
  let choose_leader =
    match (Ordering.rule t.ordering).Ordering.rule_schedule with
    | Ordering.Coin ->
      if Hashtbl.mem t.leaders w then
        Some (fun w' -> Hashtbl.find t.leaders w')
      else None
    | Ordering.Round_robin ->
      Some (fun w' -> Ordering.round_robin_leader ~n:t.config.n ~wave:w')
  in
  match choose_leader with
  | Some choose_leader when w <= t.waves_completed ->
    let commits =
      Ordering.process_wave t.ordering ~dag:t.dag ~wave:w ~choose_leader
    in
    if commits = [] then begin
      tr_emit t
        (Trace.Leader_skipped
           { node = t.me; wave = w; leader = choose_leader w });
      (* w <= decided_wave only happens on restore edge cases where the
         wave was in fact already decided — no skip evidence then *)
      if w > Ordering.decided_wave t.ordering then
        emit_skip_cert t ~wave:w ~leader_source:(choose_leader w)
    end;
    List.iter
      (fun (c : Ordering.commit) ->
        tr_emit t
          (Trace.Commit
             { node = t.me;
               wave = c.wave;
               leader_round = c.leader.Vertex.round;
               leader_source = c.leader.Vertex.source;
               direct = c.direct;
               delivered = List.length c.delivered });
        emit_commit_cert t c;
        t.on_commit c;
        List.iter
          (fun v ->
            tr_emit t
              (Trace.A_deliver
                 { node = t.me;
                   round = v.Vertex.round;
                   source = v.Vertex.source });
            t.a_deliver ~block:v.Vertex.block ~round:v.Vertex.round
              ~source:v.Vertex.source)
          c.delivered)
      commits;
    if commits <> [] then maybe_gc t;
    t.next_wave_to_order <- w + 1;
    try_order_waves t
  | Some _ | None -> ()

let try_resolve_coin t ~wave =
  if not (Hashtbl.mem t.leaders wave) then begin
    let shares = !(shares_for t wave) in
    match Crypto.Threshold_coin.combine t.coin ~instance:wave shares with
    | Some leader ->
      Hashtbl.add t.leaders wave leader;
      tr_emit t (Trace.Leader_elected { node = t.me; wave; leader });
      try_order_waves t
    | None -> ()
  end

let on_coin_msg t ~src:_ (Coin_share share) =
  let sp = Prof.enter "node.coin" in
  (try
     if Crypto.Threshold_coin.verify_share t.coin share then begin
       let bucket = shares_for t share.instance in
       bucket := share :: !bucket;
       try_resolve_coin t ~wave:share.instance
     end
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

(* ---- round advancement (Algorithm 2, lines 5-15) ---- *)

let coin_wave_ready t ~wave =
  if wave > t.coin_waves_completed then begin
    t.coin_waves_completed <- wave;
    (* the coin for w is flipped only now that w is complete; in In_dag
       mode the share rides the next vertex broadcast instead *)
    if t.config.coin_mode = Separate_network && wave > t.share_sent_up_to
    then begin
      for w = t.share_sent_up_to + 1 to wave do
        broadcast_share t ~wave:w
      done;
      t.share_sent_up_to <- wave
    end;
    try_resolve_coin t ~wave
  end

(* Both cadences fire off the same round completion. The ordering wave
   counter is bumped first so commits triggered from inside the coin
   resolution (coin-scheduled rules resolve and order in one step) see
   the completed wave — the exact order of the pre-split code. *)
let wave_ready t ~round =
  (match
     Ordering.wave_of_completed_round
       ~wave_length:(Ordering.wave_length t.ordering) round
   with
  | Some w when w > t.waves_completed -> t.waves_completed <- w
  | Some _ | None -> ());
  (match
     Ordering.wave_of_completed_round ~wave_length:t.config.wave_length round
   with
  | Some w -> coin_wave_ready t ~wave:w
  | None -> ());
  try_order_waves t

let rec try_advance t =
  (* move buffered vertices whose causal history is present into the DAG
     (lines 6-9); iterate to a fixpoint since additions enable others *)
  let progressed = ref true in
  while !progressed do
    progressed := false;
    let ready, waiting =
      List.partition (fun v -> Dag.can_add t.dag v) t.buffer
    in
    if ready <> [] then begin
      List.iter
        (fun v ->
          (* two copies of one slot can become addable in the same sweep
             only through the deliberately weakened sync path (honest
             admission cross-checks the slot first); first writer wins
             and the cross-node equivocation oracle judges the result *)
          if not (Dag.contains t.dag (Vertex.vref_of v)) then begin
            Dag.add t.dag v;
            tr_emit t
              (Trace.Vertex_added
                 { node = t.me;
                   round = v.Vertex.round;
                   source = v.Vertex.source })
          end)
        ready;
      t.buffer <- waiting;
      progressed := true
    end
  done;
  (* lines 10-15: complete rounds while quorums are in *)
  if Dag.round_size t.dag t.round >= (2 * t.config.f) + 1 then begin
    wave_ready t ~round:t.round;
    t.round <- t.round + 1;
    tr_emit t (Trace.Round_advanced { node = t.me; round = t.round });
    create_and_broadcast_vertex t ~round:t.round;
    try_advance t
  end

let accept_embedded_share t ~round ~source share =
  match share with
  | None -> ()
  | Some (share : Crypto.Threshold_coin.share) ->
    let wave_length = t.config.wave_length in
    (* bind the share to the authenticated broadcast: its holder must be
       the vertex's source and its instance the wave this round proves
       complete — otherwise a Byzantine process could replay shares *)
    if
      share.holder = source
      && round > wave_length
      && (round - 1) mod wave_length = 0
      && share.instance = (round - 1) / wave_length
      && Crypto.Threshold_coin.verify_share t.coin share
    then begin
      let bucket = shares_for t share.instance in
      bucket := share :: !bucket;
      try_resolve_coin t ~wave:share.instance
    end

let on_r_deliver t ~payload ~round ~source =
  let sp = Prof.enter "node.r_deliver" in
  (try
     match
     match t.config.coin_mode with
     | Separate_network -> Some (payload, None)
     | In_dag -> unwrap_payload payload
   with
  | None -> () (* malformed Byzantine payload *)
  | Some (vertex_bytes, share) -> (
    match Vertex.decode ~round ~source vertex_bytes with
    | None -> () (* malformed Byzantine payload *)
    | Some v -> (
      match Vertex.validate ~n:t.config.n ~f:t.config.f v with
      | Error _ -> () (* fails Algorithm 2 line 25's checks *)
      | Ok () ->
        accept_embedded_share t ~round ~source share;
        if not (Dag.contains t.dag (Vertex.vref_of v)) then begin
          t.buffer <- v :: t.buffer;
          try_advance t
        end))
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

(* ---- catch-up sync (for restarted processes) ---- *)


(* first round that might still be missing vertices: the lowest round
   below the frontier that has fewer than n vertices *)
let first_incomplete_round t =
  let rec go r =
    if r >= t.round then r
    else if Dag.round_size t.dag r < t.config.n then r
    else go (r + 1)
  in
  go 1

let request_sync t =
  match t.sync_net with
  | None ->
    (* surface the misconfiguration instead of silently doing nothing:
       a restart driver that calls this without wiring a sync channel
       would otherwise look like a liveness bug in the protocol *)
    tr_emit t (Trace.Sync_unavailable { node = t.me });
    false
  | Some net ->
    (* u8 tag + u32 from_round *)
    Net.Port.broadcast net ~src:t.me ~kind:"sync-request" ~bits:(8 * 5)
      (Sync_request { from_round = first_incomplete_round t });
    true

(* Validated admission for synced vertices. Reliable-broadcast
   deliveries carry quorum evidence by construction; a sync response is
   a single peer's bare claim, so each triple is checked against the
   DAG's structural invariants and, when it cannot be cross-checked
   locally, held until f+1 distinct responders vouch for byte-identical
   content. Rejections are typed trace events ("envelope", "decode",
   "invalid", "conflict") so forensics can attribute the lie. Note sync
   responses carry the {e bare} vertex encoding (never the In_dag share
   framing): shares for old waves are useless to a restarting node, and
   decoding directly avoids mis-parsing raw bytes as a frame suffix. *)

let max_sync_pending = 2048

let sync_reject t ~src ~round ~source reason =
  tr_emit t (Trace.Sync_reject { node = t.me; src; round; source; reason })

let admit_sync_vertex t ~src ~payload ~round ~source =
  if round < 1 || source < 0 || source >= t.config.n then
    sync_reject t ~src ~round ~source "envelope"
  else
    match Vertex.decode ~round ~source payload with
    | None -> sync_reject t ~src ~round ~source "decode"
    | Some v -> (
      match Vertex.validate ~n:t.config.n ~f:t.config.f v with
      | Error _ -> sync_reject t ~src ~round ~source "invalid"
      | Ok () -> (
        let vr = Vertex.vref_of v in
        match Dag.find t.dag vr with
        | Some existing ->
          (* the slot is occupied: a digest mismatch is a forgery (our
             copy came through reliable broadcast), a match is old news *)
          if Vertex.digest existing <> Vertex.digest v then
            sync_reject t ~src ~round ~source "conflict"
        | None ->
          let digest = Vertex.digest v in
          let buffered_already =
            List.exists
              (fun b -> Vertex.vref_of b = vr && Vertex.digest b = digest)
              t.buffer
          in
          if not buffered_already then begin
            let need = if t.sync_trusting then 1 else t.config.f + 1 in
            if need <= 1 then begin
              t.buffer <- v :: t.buffer;
              try_advance t
            end
            else begin
              let key = (round, source, digest) in
              let responders =
                match Hashtbl.find_opt t.sync_pending key with
                | Some r -> r
                | None ->
                  if Hashtbl.length t.sync_pending >= max_sync_pending then
                    Hashtbl.reset t.sync_pending;
                  let r = ref [] in
                  Hashtbl.add t.sync_pending key r;
                  r
              in
              if not (List.mem src !responders) then
                responders := src :: !responders;
              if List.length !responders >= need then begin
                Hashtbl.remove t.sync_pending key;
                t.buffer <- v :: t.buffer;
                try_advance t
              end
            end
          end))

let on_sync_msg t ~src msg =
  let sp = Prof.enter "node.sync" in
  (try
     match msg with
  | Sync_request { from_round } -> (
    match t.sync_net with
    | None -> ()
    | Some net ->
      let from_round = max 1 from_round in
      let vertices = ref [] in
      let count = ref 0 in
      (try
         for r = from_round to Dag.highest_round t.dag do
           List.iter
             (fun v ->
               if !count < max_sync_vertices then begin
                 incr count;
                 vertices :=
                   (Vertex.encode v, v.Vertex.round, v.Vertex.source)
                   :: !vertices
               end
               else raise Exit)
             (Dag.round_vertices t.dag r)
         done
       with Exit -> ());
      if !vertices <> [] then begin
        (* u8 tag + u32 count + per vertex: u32 round + u32 source +
           u32 len + payload bytes *)
        let bits =
          List.fold_left
            (fun acc (payload, _, _) -> acc + (8 * (String.length payload + 12)))
            (8 * 5) !vertices
        in
        Net.Port.send net ~src:t.me ~dst:src ~kind:"sync-response" ~bits
          (Sync_response { vertices = List.rev !vertices })
      end)
  | Sync_response { vertices } ->
    List.iter
      (fun (payload, round, source) ->
        admit_sync_vertex t ~src ~payload ~round ~source)
      vertices
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

(* ---- construction ---- *)

let create ~config ~me ~coin ~coin_net ~make_rbc ?sync_net
    ?(sync_trusting = false) ?trace
    ?(block_source = fun ~round:_ -> "")
    ?(a_deliver = fun ~block:_ ~round:_ ~source:_ -> ())
    ?(on_commit = fun _ -> ()) () =
  if config.n < 1 || config.f < 0 then invalid_arg "Node.create: bad config";
  if me < 0 || me >= config.n then invalid_arg "Node.create: bad process id";
  let t =
    { config;
      me;
      trace;
      coin;
      coin_net;
      sync_net;
      dag = Dag.create ~n:config.n;
      ordering =
        Ordering.create ~rule:(effective_rule config)
          ?commit_quorum:config.commit_quorum ~f:config.f ();
      rbc = None;
      blocks_to_propose = Queue.create ();
      block_source;
      a_deliver;
      on_commit;
      buffer = [];
      round = 0;
      started = false;
      waves_completed = 0;
      coin_waves_completed = 0;
      shares = Hashtbl.create 16;
      leaders = Hashtbl.create 16;
      share_sent_up_to = 0;
      next_wave_to_order = 1;
      sync_trusting;
      sync_pending = Hashtbl.create 16 }
  in
  let deliver ~payload ~round ~source =
    on_r_deliver t ~payload ~round ~source
  in
  t.rbc <- Some (make_rbc ~me ~deliver);
  Net.Port.register coin_net me (fun ~src msg -> on_coin_msg t ~src msg);
  (match sync_net with
  | Some net ->
    Net.Port.register net me (fun ~src msg -> on_sync_msg t ~src msg)
  | None -> ());
  t

type checkpoint = {
  ck_dag : Dag.t;
  ck_delivered : Vertex.t list;
  ck_decided_wave : int;
  ck_round : int;
}

let checkpoint t =
  { ck_dag = t.dag;
    ck_delivered = Ordering.delivered_log t.ordering;
    ck_decided_wave = Ordering.decided_wave t.ordering;
    ck_round = t.round }

let restore ~config ~me ~coin ~coin_net ~make_rbc ?sync_net ?sync_trusting
    ?trace ?block_source ?a_deliver ?on_commit ck =
  let t =
    create ~config ~me ~coin ~coin_net ~make_rbc ?sync_net ?sync_trusting
      ?trace ?block_source ?a_deliver ?on_commit ()
  in
  (* graft the persisted DAG in: rebuild through Dag.add to re-establish
     the causal-closure invariant *)
  List.iter (fun v -> Dag.add t.dag v) (Dag.vertices ck.ck_dag);
  Ordering.restore t.ordering ~delivered:ck.ck_delivered
    ~decided_wave:ck.ck_decided_wave;
  t.round <- ck.ck_round;
  (* wave_ready fires when advancing from round L*w to L*w + 1, so a
     node in round r has completed exactly (r - 1) / L waves of each
     cadence; coin shares for the completed coin instances were sent
     before the checkpoint and must not be re-sent *)
  t.waves_completed <-
    max 0 ((ck.ck_round - 1) / Ordering.wave_length t.ordering);
  t.coin_waves_completed <- max 0 ((ck.ck_round - 1) / config.wave_length);
  t.share_sent_up_to <- t.coin_waves_completed;
  t.next_wave_to_order <- ck.ck_decided_wave + 1;
  t.started <- true;
  ignore (request_sync t : bool);
  t

let start t =
  if not t.started then begin
    t.started <- true;
    (* round 0 (genesis) is complete by construction; enter round 1 *)
    t.round <- 1;
    create_and_broadcast_vertex t ~round:1
  end

let a_bcast t block = Queue.add block t.blocks_to_propose
