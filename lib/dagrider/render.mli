(** DAG rendering: the repo's regeneration of the paper's Figure 1
    (DAG structure) and Figure 2 (cross-wave commit) from live runs.

    Two output formats: an ASCII grid (process rows × round columns,
    like the paper's horizontal layout) and Graphviz DOT for exact
    edge-level inspection. *)

val ascii :
  ?highlight:(Vertex.vref -> bool) ->
  ?min_round:int ->
  ?max_round:int ->
  Dag.t ->
  string
(** Grid rendering: one row per process, one column per round. Cells
    show [*] for a present vertex, [@] for a highlighted one (e.g. a
    committed leader), [.] for absent; a weak-edge count is appended as
    [*w2] when a vertex carries weak edges. *)

val dot :
  ?highlight:(Vertex.vref -> bool) ->
  ?max_round:int ->
  Dag.t ->
  string
(** Graphviz digraph; strong edges solid, weak edges dashed, highlighted
    vertices filled. Rounds are ranked as columns. *)

type vertex_class =
  | Plain
  | Elected_leader  (** coin chose it; ordering has not processed it *)
  | Skipped_leader  (** ordering skipped it (absent / under-supported) *)
  | Committed_leader  (** directly or retroactively committed *)
  | Shaded  (** in the chosen commit's causal history (Figure 2) *)
  | Supporter
      (** last-round vertex of the supporting quorum (strong path to
          the leader — the set Line 36 counted) *)
  | Chained_leader
      (** leader committed by the lines-38-43 chain-back of the
          rendered commit *)

val class_style : vertex_class -> string
(** The Graphviz attribute suffix {!dot_classified} appends to a node of
    the given class ([" [style=filled, fillcolor=gold]"] for
    {!Committed_leader}, [""] for {!Plain}) — exposed so other renderers
    (e.g. the critical-path tracer's DOT export) reuse the exact Figure
    1/2 palette instead of restating color names. *)

val dot_classified :
  ?classify:(Vertex.vref -> vertex_class) ->
  ?legend:bool ->
  ?max_round:int ->
  Dag.t ->
  string
(** {!dot} with per-vertex styling in the style of the paper's
    Figures 1–2: committed leaders gold, skipped leaders red, elected
    leaders blue, causal-history members gray, everything else plain.
    [legend] (default false) prepends a comment block naming the
    colors. [dot] is [dot_classified] with highlight mapped to
    {!Committed_leader} and no legend. *)

val dot_justification :
  ?support:Vertex.vref list ->
  ?chain:Vertex.vref list ->
  ?legend:bool ->
  ?max_round:int ->
  Dag.t ->
  leader:Vertex.vref ->
  string
(** {!dot_classified} shading one commit's justification subgraph: the
    leader gold, its supporting-quorum vertices palegreen, the
    chain-back leaders orange, and the leader's causal history gray —
    the visual form of a provenance certificate (role colors override
    history shading where they overlap). *)

val wave_summary :
  Dag.t ->
  wave_length:int -> commit_quorum:int -> leader_of:(int -> int option) ->
  string
(** Per-wave table: leader source, whether the leader vertex is present,
    and its last-round strong-path support count vs the rule's commit
    quorum (2f+1 for DAG-Rider, f+1 for Bullshark) — the data behind
    Figure 2's narrative. *)
