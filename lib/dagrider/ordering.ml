type leader_schedule = Coin | Round_robin

type quorum_rule = Two_f_plus_one | F_plus_one

type rule = {
  rule_name : string;
  rule_wave_length : int;
  rule_schedule : leader_schedule;
  rule_quorum : quorum_rule;
  rule_bound : float;
}

let dag_rider =
  { rule_name = "dagrider";
    rule_wave_length = 4;
    rule_schedule = Coin;
    rule_quorum = Two_f_plus_one;
    rule_bound = 1.5 }

let bullshark =
  { rule_name = "bullshark";
    rule_wave_length = 2;
    rule_schedule = Round_robin;
    rule_quorum = F_plus_one;
    rule_bound = 2.0 }

let rules = [ dag_rider; bullshark ]

let rule_names = List.map (fun r -> r.rule_name) rules

let rule_of_name name =
  List.find_opt (fun r -> String.equal r.rule_name name) rules

let quorum_of rule ~f =
  match rule.rule_quorum with
  | Two_f_plus_one -> (2 * f) + 1
  | F_plus_one -> f + 1

let round_robin_leader ~n ~wave =
  if wave < 1 then invalid_arg "Ordering.round_robin_leader: wave must be >= 1";
  (wave - 1) mod n

type t = {
  f : int;
  rule : rule;
  wave_length : int;
  commit_quorum : int;
  span : string;
  mutable decided_wave : int;
  delivered_set : (Vertex.vref, unit) Hashtbl.t;
  mutable log_rev : Vertex.t list;
  mutable delivered_count : int;
}

type commit = {
  wave : int;
  leader : Vertex.t;
  delivered : Vertex.t list;
  direct : bool;
  support : Vertex.vref list;
  anchor : int;
  via : Vertex.vref;
}

type skip_reason = Leader_absent | Under_supported

let skip_reason_label = function
  | Leader_absent -> "leader-absent"
  | Under_supported -> "under-supported"

let create ?(rule = dag_rider) ?wave_length ?commit_quorum ~f () =
  let wave_length =
    match wave_length with Some l -> l | None -> rule.rule_wave_length
  in
  if wave_length < 1 then invalid_arg "Ordering.create: wave_length < 1";
  let rule = { rule with rule_wave_length = wave_length } in
  let commit_quorum =
    match commit_quorum with Some q -> q | None -> quorum_of rule ~f
  in
  { f;
    rule;
    wave_length;
    commit_quorum;
    span = "order.wave." ^ rule.rule_name;
    decided_wave = 0;
    delivered_set = Hashtbl.create 256;
    log_rev = [];
    delivered_count = 0 }

let round_of ~wave_length ~wave ~k =
  if k < 1 || k > wave_length then
    invalid_arg "Ordering.round_of: k out of wave";
  if wave < 1 then invalid_arg "Ordering.round_of: wave must be >= 1";
  (wave_length * (wave - 1)) + k

let wave_of_completed_round ~wave_length r =
  if r >= wave_length && r mod wave_length = 0 then Some (r / wave_length)
  else None

let leader_vertex ~wave_length ~dag ~wave ~leader_source =
  Dag.find dag
    { Vertex.round = round_of ~wave_length ~wave ~k:1; source = leader_source }

let supporters ~wave_length ~dag ~wave ~leader =
  let last_round = round_of ~wave_length ~wave ~k:wave_length in
  List.filter
    (fun v -> Dag.strong_path dag (Vertex.vref_of v) (Vertex.vref_of leader))
    (Dag.round_vertices dag last_round)

let commit_rule_met ~wave_length ~commit_quorum ~dag ~wave ~leader =
  List.length (supporters ~wave_length ~dag ~wave ~leader) >= commit_quorum

let skip_evidence ~wave_length ~dag ~wave ~leader_source =
  match leader_vertex ~wave_length ~dag ~wave ~leader_source with
  | None -> (Leader_absent, [])
  | Some leader -> (Under_supported, supporters ~wave_length ~dag ~wave ~leader)

let deliver_leader t ~dag ~wave ~leader ~direct ~support ~anchor ~via =
  let history = Dag.causal_history dag (Vertex.vref_of leader) in
  let fresh =
    List.filter
      (fun v -> not (Hashtbl.mem t.delivered_set (Vertex.vref_of v)))
      history
  in
  List.iter
    (fun v ->
      Hashtbl.add t.delivered_set (Vertex.vref_of v) ();
      t.log_rev <- v :: t.log_rev;
      t.delivered_count <- t.delivered_count + 1)
    fresh;
  { wave; leader; delivered = fresh; direct; support; anchor; via }

let process_wave_impl t ~dag ~wave ~choose_leader =
  if wave <= t.decided_wave then []
  else
    let wave_length = t.wave_length in
    match
      leader_vertex ~wave_length ~dag ~wave ~leader_source:(choose_leader wave)
    with
    | None -> []
    | Some leader ->
      let support = supporters ~wave_length ~dag ~wave ~leader in
      if List.length support < t.commit_quorum then []
      else begin
        (* Lines 38-43: push this wave's leader, then walk back through
           undecided waves, chaining any leader the current one reaches
           by a strong path. The chain-back is rule-generic: for the
           2-round Bullshark rule it is what commits a skipped leader's
           wave retroactively once a later leader reaches it. *)
        let stack = ref [ (wave, leader) ] in
        let current = ref leader in
        let w' = ref (wave - 1) in
        while !w' > t.decided_wave do
          (match
             leader_vertex ~wave_length ~dag ~wave:!w'
               ~leader_source:(choose_leader !w')
           with
          | Some v'
            when Dag.strong_path dag (Vertex.vref_of !current) (Vertex.vref_of v') ->
            stack := (!w', v') :: !stack;
            current := v'
          | Some _ | None -> ());
          decr w'
        done;
        t.decided_wave <- wave;
        (* Lines 51-57: pop in increasing wave order and deliver causal
           histories not yet delivered. Each commit carries its
           provenance: direct commits cite the last-round supporter set,
           chained ones the next leader up the chain ([via]) whose
           strong path justified them; [anchor] names the wave whose
           direct commit fired the whole chain. *)
        let support_refs = List.map Vertex.vref_of support in
        let rec emit = function
          | [] -> []
          | [ (w, v) ] ->
            [ deliver_leader t ~dag ~wave:w ~leader:v ~direct:true
                ~support:support_refs ~anchor:wave ~via:(Vertex.vref_of v) ]
          | (w, v) :: ((_, next) :: _ as rest) ->
            let c =
              deliver_leader t ~dag ~wave:w ~leader:v ~direct:false ~support:[]
                ~anchor:wave ~via:(Vertex.vref_of next)
            in
            c :: emit rest
        in
        emit !stack
      end

let process_wave t ~dag ~wave ~choose_leader =
  let sp = Prof.enter t.span in
  let out =
    try process_wave_impl t ~dag ~wave ~choose_leader
    with e -> Prof.leave_reraise sp e
  in
  Prof.leave sp;
  out

let restore t ~delivered ~decided_wave =
  if t.delivered_count > 0 || t.decided_wave > 0 then
    invalid_arg "Ordering.restore: state is not fresh";
  List.iter
    (fun v ->
      Hashtbl.replace t.delivered_set (Vertex.vref_of v) ();
      t.log_rev <- v :: t.log_rev;
      t.delivered_count <- t.delivered_count + 1)
    delivered;
  t.decided_wave <- decided_wave

let rule t = t.rule

let wave_length t = t.wave_length

let commit_quorum t = t.commit_quorum

let decided_wave t = t.decided_wave

let delivered_log t = List.rev t.log_rev

let delivered_count t = t.delivered_count

let is_delivered t vref = Hashtbl.mem t.delivered_set vref
