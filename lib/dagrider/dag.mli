(** A process's local view of the round-structured DAG (paper §4).

    [DAG_i[r]] is the set of round-[r] vertices the process has
    incorporated; a vertex is only added once all its strong- and
    weak-edge targets are present (Algorithm 2 line 7), so by
    construction every vertex's full causal history is in the store
    (Claim 1) — an invariant [add] enforces.

    Round 0 holds [n] genesis vertices (one per source, no edges) that
    bootstrap round 1's strong edges; see DESIGN.md §6 on this reading
    of the paper's "predefined hardcoded set". *)

type t

val create : n:int -> t
(** Fresh DAG containing only the genesis round. *)

val n : t -> int

val find : t -> Vertex.vref -> Vertex.t option

val contains : t -> Vertex.vref -> bool

val round_vertices : t -> int -> Vertex.t list
(** Vertices of a round, sorted by source (deterministic iteration). *)

val round_size : t -> int -> int

val size : t -> int
(** Total vertices in the store, genesis included — an O(1) probe for
    growth monitoring (the DAG only grows until §8-style garbage
    collection prunes it). *)

val highest_round : t -> int
(** Largest round with at least one vertex (0 for a fresh DAG). *)

val can_add : t -> Vertex.t -> bool
(** All edge targets present? (Algorithm 2 line 7.) *)

val add : t -> Vertex.t -> unit
(** Insert a vertex.
    @raise Invalid_argument if a predecessor is missing (the buffer in
    {!Node} must hold the vertex back until {!can_add}), or if a
    different vertex already occupies [(round, source)] — reliable
    broadcast makes that impossible for honest stacks, so it indicates a
    harness bug. Re-adding the identical vertex is a no-op. *)

val strong_path : t -> Vertex.vref -> Vertex.vref -> bool
(** [strong_path t v u]: is [u] reachable from [v] via strong edges only
    (Algorithm 1 line 3)? Reflexive: [strong_path t v v = true] when [v]
    is present. *)

val path : t -> Vertex.vref -> Vertex.vref -> bool
(** Reachability via strong or weak edges (Algorithm 1 line 1). *)

val causal_history : t -> Vertex.vref -> Vertex.t list
(** Every vertex reachable from [v] (inclusive), i.e. the set
    [{u | path v u}], sorted by {!Vertex.compare_vref}. Empty if [v] is
    absent. Genesis vertices are excluded — they carry no blocks. *)

val reachable_from : t -> Vertex.vref -> via_strong_only:bool -> Vertex.vref list
(** Lower-level reachability (inclusive, genesis included); used by weak
    edge computation and the renderer. *)

val vertices : t -> Vertex.t list
(** All non-genesis vertices, sorted. *)

val prune_below : t -> round:int -> unit
(** Garbage-collection extension (DESIGN.md §6): drop all rounds
    [< round]. Reachability queries then treat missing targets as dead
    ends; only call with rounds at or below the lowest undelivered
    committed history. Off by default everywhere. *)
