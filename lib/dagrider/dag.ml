type t = {
  n : int;
  store : (Vertex.vref, Vertex.t) Hashtbl.t;
  by_round : (int, int ref) Hashtbl.t; (* round -> vertex count *)
  mutable highest : int;
  mutable pruned_below : int;
}

let genesis_vertex n source =
  ignore n;
  { Vertex.round = 0; source; block = ""; strong_edges = []; weak_edges = [] }

let create ~n =
  if n <= 0 then invalid_arg "Dag.create: n must be positive";
  let t =
    { n;
      store = Hashtbl.create 256;
      by_round = Hashtbl.create 64;
      highest = 0;
      pruned_below = 0 }
  in
  for source = 0 to n - 1 do
    Hashtbl.add t.store { Vertex.round = 0; source } (genesis_vertex n source)
  done;
  Hashtbl.add t.by_round 0 (ref n);
  t

let n t = t.n

let find t vref = Hashtbl.find_opt t.store vref

let contains t vref = Hashtbl.mem t.store vref

let size t = Hashtbl.length t.store

let round_vertices t round =
  let acc = ref [] in
  for source = t.n - 1 downto 0 do
    match find t { Vertex.round; source } with
    | Some v -> acc := v :: !acc
    | None -> ()
  done;
  !acc

let round_size t round =
  match Hashtbl.find_opt t.by_round round with
  | Some r -> !r
  | None -> 0

let highest_round t = t.highest

(* After garbage collection, edges into pruned rounds count as satisfied:
   those vertices were delivered everywhere before pruning (see
   [prune_below]'s contract), so holding the new vertex back for them
   would only hurt liveness. *)
let edge_present t e = contains t e || e.Vertex.round < t.pruned_below

let can_add t v =
  List.for_all (edge_present t)
    (v.Vertex.strong_edges @ v.Vertex.weak_edges)

let add_impl t v =
  let vref = Vertex.vref_of v in
  match find t vref with
  | Some existing ->
    if existing <> v then
      invalid_arg "Dag.add: conflicting vertex for (round, source)"
  | None ->
    if not (can_add t v) then invalid_arg "Dag.add: missing predecessor";
    Hashtbl.add t.store vref v;
    (match Hashtbl.find_opt t.by_round v.round with
    | Some r -> incr r
    | None -> Hashtbl.add t.by_round v.round (ref 1));
    if v.round > t.highest then t.highest <- v.round

let add t v =
  let sp = Prof.enter "dag.add" in
  (try add_impl t v with e -> Prof.leave_reraise sp e);
  Prof.leave sp

(* BFS over edges; rounds strictly decrease along edges, so termination
   is immediate and the frontier stays small. *)
let reachable_from t start ~via_strong_only =
  if not (contains t start) then []
  else begin
    let visited = Hashtbl.create 64 in
    let queue = Queue.create () in
    Hashtbl.add visited start ();
    Queue.add start queue;
    let out = ref [] in
    while not (Queue.is_empty queue) do
      let vref = Queue.pop queue in
      out := vref :: !out;
      match find t vref with
      | None -> ()
      | Some v ->
        let targets =
          if via_strong_only then v.strong_edges
          else v.strong_edges @ v.weak_edges
        in
        List.iter
          (fun e ->
            if (not (Hashtbl.mem visited e)) && contains t e then begin
              Hashtbl.add visited e ();
              Queue.add e queue
            end)
          targets
    done;
    !out
  end

let reaches t start target ~via_strong_only =
  if (not (contains t start)) || not (contains t target) then false
  else if start = target then true
  else if target.Vertex.round >= start.Vertex.round then false
  else begin
    let sp = Prof.enter "dag.path" in
    let found =
      try
       let visited = Hashtbl.create 64 in
       let queue = Queue.create () in
       Hashtbl.add visited start ();
       Queue.add start queue;
       let found = ref false in
       while (not !found) && not (Queue.is_empty queue) do
         let vref = Queue.pop queue in
         if vref = target then found := true
         else
           match find t vref with
           | None -> ()
           | Some v ->
             let targets =
               if via_strong_only then v.strong_edges
               else v.strong_edges @ v.weak_edges
             in
             List.iter
               (fun (e : Vertex.vref) ->
                 (* no point exploring below the target's round *)
                 if
                   e.Vertex.round >= target.Vertex.round
                   && (not (Hashtbl.mem visited e))
                   && contains t e
                 then begin
                   Hashtbl.add visited e ();
                   Queue.add e queue
                 end)
               targets
       done;
       !found
      with e -> Prof.leave_reraise sp e
    in
    Prof.leave sp;
    found
  end

let strong_path t v u = reaches t v u ~via_strong_only:true

let path t v u = reaches t v u ~via_strong_only:false

let causal_history t vref =
  let sp = Prof.enter "dag.causal_history" in
  let out =
    try
      let refs = reachable_from t vref ~via_strong_only:false in
      let vs =
        List.filter_map
          (fun (r : Vertex.vref) ->
            if r.Vertex.round = 0 then None (* genesis carries no blocks *)
            else find t r)
          refs
      in
      List.sort
        (fun a b -> Vertex.compare_vref (Vertex.vref_of a) (Vertex.vref_of b))
        vs
    with e -> Prof.leave_reraise sp e
  in
  Prof.leave sp;
  out

let vertices t =
  let vs =
    Hashtbl.fold
      (fun (vref : Vertex.vref) v acc ->
        if vref.Vertex.round = 0 then acc else v :: acc)
      t.store []
  in
  List.sort (fun a b -> Vertex.compare_vref (Vertex.vref_of a) (Vertex.vref_of b)) vs

let prune_below t ~round =
  if round > t.pruned_below then begin
    let doomed =
      Hashtbl.fold
        (fun (vref : Vertex.vref) _ acc ->
          if vref.Vertex.round < round then vref :: acc else acc)
        t.store []
    in
    List.iter
      (fun vref ->
        Hashtbl.remove t.store vref;
        match Hashtbl.find_opt t.by_round vref.Vertex.round with
        | Some r -> decr r
        | None -> ())
      doomed;
    t.pruned_below <- round
  end
