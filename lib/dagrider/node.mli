(** A complete DAG-Rider process: Algorithm 2 (DAG construction) driving
    Algorithm 3 (ordering) over a pluggable reliable-broadcast backend
    and the threshold coin.

    Lifecycle: [create] wires the handlers, [start] broadcasts the
    round-1 vertex; from then on the process is purely reactive —
    reliable-broadcast deliveries fill the buffer, buffered vertices
    whose causal history is present join the DAG, completing a round
    broadcasts the next vertex, completing a wave broadcasts a coin
    share, and a resolved coin triggers the local ordering step. The
    paper's [while true] loop (Algorithm 2 line 5) becomes this event
    chain; no behaviour is lost because every iteration of the paper's
    loop is enabled by exactly one of these events.

    Coin timing: a share for instance [w] is released only when this
    process {e completes} wave [w] (paper §5, "parties flip the global
    coin only after they complete w"), and ordering for wave [w] runs
    only once instances [1..w] have all resolved, so leaders are always
    processed in wave order. *)

type rbc_handle = { rbc_bcast : payload:string -> round:int -> unit }
(** What the node needs from a reliable-broadcast backend. *)

type rbc_factory = me:int -> deliver:Rbc.Rbc_intf.deliver -> rbc_handle
(** Backend constructor; see {!Backend} for the stock ones. *)

type coin_msg = Coin_share of Crypto.Threshold_coin.share
(** Message type of the coin-share network. *)

type sync_msg =
  | Sync_request of { from_round : int }
  | Sync_response of { vertices : (string * int * int) list }
      (** (encoded vertex, round, source) triples *)
(** Catch-up channel for restarted processes: reliable broadcast never
    re-delivers instances that completed while a process was down, so a
    restarted node asks its peers for the missing DAG region. A response
    carries {e bare} vertex encodings and, unlike an RBC delivery, is a
    single peer's unauthenticated claim — so admission is hardened:
    each triple must pass the envelope check (source in range, round
    >= 1), decode, and {!Vertex.validate}; a triple whose
    [(round, source)] slot is already occupied by a different digest is
    rejected as a forgery; and a vertex the node cannot cross-check
    locally is held until [f+1] {e distinct} responders vouch for
    byte-identical content (at most [f] are Byzantine, so at least one
    voucher is honest). Every rejection emits a typed
    {!Trace.kind.Sync_reject} event ("envelope" | "decode" | "invalid"
    | "conflict") for forensic attribution. *)

val encode_coin_msg : coin_msg -> string
(** Canonical wire encoding of a coin share (used when the coin channel
    runs over lossy links, where messages travel as bytes). *)

val decode_coin_msg : string -> coin_msg option
(** Inverse of {!encode_coin_msg}; [None] on any malformed input. *)

val encode_sync_msg : sync_msg -> string

val decode_sync_msg : string -> sync_msg option
(** [None] on any malformed input, including responses claiming more
    vertices than an honest responder would ever send. *)

type coin_mode =
  | Separate_network
      (** shares travel on their own broadcast channel (the default
          wiring; simplest to reason about) *)
  | In_dag
      (** the paper's footnote 1: a process's share for wave [w]'s coin
          rides inside the vertex it broadcasts in round
          [wave_length * w + 1] — the first vertex it can only create
          after completing wave [w], preserving unpredictability. No
          separate coin messages are sent at all; shares arrive with
          reliable-broadcast deliveries and are bound to their holder by
          the broadcast's authenticated source. *)

type config = {
  n : int;
  f : int;
  rule : Ordering.rule;    (** the commit rule ({!Ordering.dag_rider} by
                               default, {!Ordering.bullshark} for 2-round
                               round-robin waves) *)
  wave_length : int;       (** the {e coin} cadence in rounds; the
                               paper's value is 4. Coin-scheduled rules
                               order on this cadence too (it overrides
                               their [rule_wave_length], keeping the
                               wave-length ablation one knob); under a
                               round-robin rule the coin keeps flipping
                               on this cadence — unused by ordering —
                               so rule choice cannot perturb the
                               message schedule or the RNG chain *)
  commit_quorum : int option; (** [None] = the rule's quorum ([2f+1]
                                  resp. [f+1]) *)
  enable_weak_edges : bool;(** [false] only for the validity ablation *)
  gc_depth : int option;   (** prune rounds this far behind the decided
                               wave; [None] (default) keeps everything *)
  coin_mode : coin_mode;
}

val default_config : n:int -> f:int -> config

type t

val create :
  config:config ->
  me:int ->
  coin:Crypto.Threshold_coin.t ->
  coin_net:coin_msg Net.Port.t ->
  make_rbc:rbc_factory ->
  ?sync_net:sync_msg Net.Port.t ->
  ?sync_trusting:bool ->
  ?trace:Trace.t ->
  ?block_source:(round:int -> string) ->
  ?a_deliver:(block:string -> round:int -> source:int -> unit) ->
  ?on_commit:(Ordering.commit -> unit) ->
  unit ->
  t
(** [block_source] supplies a block when [blocksToPropose] is empty —
    the paper assumes processes always have blocks (Algorithm 2 line
    17); the default returns an empty block. [a_deliver] is the BAB
    output upcall; [on_commit] observes committed leaders (experiment
    instrumentation). [trace] records this process's protocol events
    ({!Trace.Vertex_created}, [Vertex_added], [Round_advanced],
    [Coin_flip], [Leader_elected], [Leader_skipped], [Commit],
    [A_deliver]); omitted, no event is ever allocated.
    [sync_trusting] (default [false]) deliberately {e weakens} the
    sync admission path back to trusting any single responder —
    exists only so the checker's planted-vulnerability self-test can
    prove the oracles catch a corrupted catch-up; never enable it in
    an experiment. *)

type checkpoint = {
  ck_dag : Dag.t;
  ck_delivered : Vertex.t list; (** the ordered log, oldest first *)
  ck_decided_wave : int;
  ck_round : int; (** the round whose vertex was last broadcast *)
}
(** Everything a process must persist to restart without equivocating:
    its DAG ({!Snapshot} serializes it), its delivered log and decided
    wave (so nothing is re-delivered), and its last broadcast round (so
    it never signs two different vertices for one round). *)

val checkpoint : t -> checkpoint

val restore : config:config -> me:int ->
  coin:Crypto.Threshold_coin.t ->
  coin_net:coin_msg Net.Port.t ->
  make_rbc:rbc_factory ->
  ?sync_net:sync_msg Net.Port.t ->
  ?sync_trusting:bool ->
  ?trace:Trace.t ->
  ?block_source:(round:int -> string) ->
  ?a_deliver:(block:string -> round:int -> source:int -> unit) ->
  ?on_commit:(Ordering.commit -> unit) ->
  checkpoint ->
  t
(** Rebuild a node from a checkpoint. The node resumes at the
    checkpointed round: it does not re-broadcast that round's vertex
    (it may already be delivered elsewhere — re-broadcasting a fresh
    one would be equivocation) and advances as soon as the round's
    quorum assembles. Coin shares for waves completed before the
    checkpoint are not re-sent; unresolved waves re-resolve from
    incoming shares. *)

val start : t -> unit
(** Broadcast the first vertex. Idempotent; a no-op on restored nodes
    (their current round's vertex is already out). *)

val a_bcast : t -> string -> unit
(** Enqueue a transaction block; it rides in this process's next unsent
    vertex (Algorithm 3 lines 32–33). *)

val me : t -> int
val current_round : t -> int
val dag : t -> Dag.t
val ordering : t -> Ordering.t

val delivered_log : t -> Vertex.t list
(** Totally ordered output so far. *)

val buffered : t -> int
(** Vertices delivered by RBC but still missing predecessors. *)

val waves_completed : t -> int
(** Highest {e ordering} wave completed (the commit rule's cadence). *)

val coin_instances_resolved : t -> int

val leader_of : t -> wave:int -> int option
(** The wave's leader as this node knows it: the coin's choice once
    this node resolved that instance ([None] before f+1 shares
    arrived), or the predefined [(wave - 1) mod n] under a round-robin
    rule. Used by the renderers. *)

val coin_leader_of : t -> wave:int -> int option
(** The raw threshold-coin resolution for [wave], regardless of which
    ordering rule is active (the coin runs at its own cadence under
    every rule). [None] until this node has combined f+1 shares.
    Readers that must stay rule-oblivious — the adaptive adversaries —
    use this instead of {!leader_of}. *)

val request_sync : t -> bool
(** Ask every peer for the DAG region this node is missing. Returns
    [false] — and emits a {!Trace.kind.Sync_unavailable} event — when no
    [sync_net] was wired, so a restart driver cannot mistake a
    misconfigured channel for protocol stall. Called once by {!restore};
    the restart driver should re-call it later (with backoff) to collect
    vertices whose broadcasts straddled the restart. *)
