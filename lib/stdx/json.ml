type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ---- emission ---- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* floats print so that [float_of_string] recovers them exactly, and
   always with a '.' or exponent so the parser reads them back as Float,
   keeping value round-trips type-stable *)
let float_repr f =
  if Float.is_nan f || f = infinity || f = neg_infinity then
    (* not representable in JSON; callers should not emit these *)
    "null"
  else begin
    let s = Printf.sprintf "%.17g" f in
    let shortest =
      let cand = Printf.sprintf "%.12g" f in
      if float_of_string cand = f then cand else s
    in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') shortest then
      shortest
    else shortest ^ ".0"
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s ->
    Buffer.add_char buf '"';
    escape_into buf s;
    Buffer.add_char buf '"'
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (key, value) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_char buf '"';
        escape_into buf key;
        Buffer.add_string buf "\":";
        write buf value)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* ---- parsing (the subset this module emits, plus whitespace) ---- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let peek p = if p.pos < String.length p.src then Some p.src.[p.pos] else None

let advance p = p.pos <- p.pos + 1

let fail p msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg p.pos))

let skip_ws p =
  while
    match peek p with
    | Some (' ' | '\t' | '\n' | '\r') -> true
    | _ -> false
  do
    advance p
  done

let expect p c =
  match peek p with
  | Some got when got = c -> advance p
  | _ -> fail p (Printf.sprintf "expected %C" c)

let expect_word p word =
  let len = String.length word in
  if p.pos + len <= String.length p.src && String.sub p.src p.pos len = word
  then p.pos <- p.pos + len
  else fail p (Printf.sprintf "expected %s" word)

let parse_hex4 p =
  let v = ref 0 in
  for _ = 1 to 4 do
    (match peek p with
    | Some c ->
      let d =
        match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail p "bad \\u escape"
      in
      v := (!v * 16) + d
    | None -> fail p "bad \\u escape");
    advance p
  done;
  !v

let parse_string p =
  expect p '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek p with
    | None -> fail p "unterminated string"
    | Some '"' ->
      advance p;
      Buffer.contents buf
    | Some '\\' ->
      advance p;
      (match peek p with
      | Some '"' -> Buffer.add_char buf '"'; advance p
      | Some '\\' -> Buffer.add_char buf '\\'; advance p
      | Some '/' -> Buffer.add_char buf '/'; advance p
      | Some 'n' -> Buffer.add_char buf '\n'; advance p
      | Some 'r' -> Buffer.add_char buf '\r'; advance p
      | Some 't' -> Buffer.add_char buf '\t'; advance p
      | Some 'b' -> Buffer.add_char buf '\b'; advance p
      | Some 'f' -> Buffer.add_char buf '\012'; advance p
      | Some 'u' ->
        advance p;
        let code = parse_hex4 p in
        (* we only emit \u00XX for control bytes; decode the low byte *)
        if code < 0x100 then Buffer.add_char buf (Char.chr code)
        else fail p "unsupported \\u escape above 0xFF"
      | _ -> fail p "bad escape");
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance p;
      go ()
  in
  go ()

let parse_number p =
  let start = p.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek p with Some c when is_num_char c -> true | _ -> false) do
    advance p
  done;
  let s = String.sub p.src start (p.pos - start) in
  if s = "" then fail p "expected number"
  else if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail p "bad float"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
      match float_of_string_opt s with
      | Some f -> Float f
      | None -> fail p "bad number")

let rec parse_value p =
  skip_ws p;
  match peek p with
  | None -> fail p "unexpected end of input"
  | Some 'n' -> expect_word p "null"; Null
  | Some 't' -> expect_word p "true"; Bool true
  | Some 'f' -> expect_word p "false"; Bool false
  | Some '"' -> String (parse_string p)
  | Some '[' ->
    advance p;
    skip_ws p;
    if peek p = Some ']' then begin
      advance p;
      List []
    end
    else begin
      let items = ref [ parse_value p ] in
      skip_ws p;
      while peek p = Some ',' do
        advance p;
        items := parse_value p :: !items;
        skip_ws p
      done;
      expect p ']';
      List (List.rev !items)
    end
  | Some '{' ->
    advance p;
    skip_ws p;
    if peek p = Some '}' then begin
      advance p;
      Obj []
    end
    else begin
      let field () =
        skip_ws p;
        let key = parse_string p in
        skip_ws p;
        expect p ':';
        let value = parse_value p in
        (key, value)
      in
      let fields = ref [ field () ] in
      skip_ws p;
      while peek p = Some ',' do
        advance p;
        fields := field () :: !fields;
        skip_ws p
      done;
      expect p '}';
      Obj (List.rev !fields)
    end
  | Some _ -> parse_number p

let of_string src =
  let p = { src; pos = 0 } in
  try
    let v = parse_value p in
    skip_ws p;
    if p.pos = String.length src then Ok v else Error "trailing garbage"
  with Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
