type t = {
  mutable values : float list;
  mutable n : int;
  mutable sum : float;
  mutable sum_sq : float;
  mutable min_v : float;
  mutable max_v : float;
  (* sorted snapshot of [values], rebuilt lazily by [percentile] and
     invalidated by [add] — repeated percentile queries between
     additions (summary, registry snapshots) cost one sort total *)
  mutable sorted : float array option;
}

let create () =
  { values = []; n = 0; sum = 0.0; sum_sq = 0.0;
    min_v = infinity; max_v = neg_infinity; sorted = None }

let add t x =
  t.values <- x :: t.values;
  t.n <- t.n + 1;
  t.sum <- t.sum +. x;
  t.sum_sq <- t.sum_sq +. (x *. x);
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.sorted <- None

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.sum /. float_of_int t.n

let stddev t =
  if t.n < 2 then 0.0
  else
    let m = mean t in
    let var = (t.sum_sq /. float_of_int t.n) -. (m *. m) in
    let var = var *. float_of_int t.n /. float_of_int (t.n - 1) in
    if var <= 0.0 then 0.0 else sqrt var

let min_value t = if t.n = 0 then 0.0 else t.min_v
let max_value t = if t.n = 0 then 0.0 else t.max_v

let sorted_values t =
  match t.sorted with
  | Some arr -> arr
  | None ->
    let arr = Array.of_list t.values in
    Array.sort compare arr;
    t.sorted <- Some arr;
    arr

let percentile t p =
  if t.n = 0 then 0.0
  else begin
    let arr = sorted_values t in
    let rank =
      int_of_float (ceil (p /. 100.0 *. float_of_int t.n)) - 1
    in
    let rank = max 0 (min (t.n - 1) rank) in
    arr.(rank)
  end

let summary t =
  Printf.sprintf "n=%d mean=%.3f p50=%.3f p99=%.3f max=%.3f"
    t.n (mean t) (percentile t 50.0) (percentile t 99.0) (max_value t)

let linear_fit points =
  let n = List.length points in
  if n < 2 then invalid_arg "Stats.linear_fit: need at least two points";
  let fn = float_of_int n in
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if denom = 0.0 then invalid_arg "Stats.linear_fit: degenerate x values";
  let b = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let a = (sy -. (b *. sx)) /. fn in
  (a, b)

let growth_exponent points =
  let logs =
    List.filter_map
      (fun (x, y) ->
        if x > 0.0 && y > 0.0 then Some (log x, log y) else None)
      points
  in
  let _, b = linear_fit logs in
  b
