(** Minimal JSON emitter/parser — just enough for the machine-readable
    bench output ([bench/main.exe -- ... --json]) and the tracer's JSONL
    event logs, with no external dependency.

    Emission is compact (no whitespace). Floats are printed with a
    decimal point or exponent so they parse back as [Float] (type-stable
    round-trips); non-finite floats are emitted as [null]. The parser
    accepts everything the emitter produces plus arbitrary whitespace;
    [\u] escapes above [0x00FF] are rejected (the emitter never produces
    them — strings are treated as raw bytes). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries the offset of the
    first problem or "trailing garbage". *)

val member : string -> t -> t option
(** Field lookup on an [Obj]; [None] on anything else. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** [Int] widens to float. *)

val to_string_opt : t -> string option
val to_bool_opt : t -> bool option
val to_list_opt : t -> t list option
