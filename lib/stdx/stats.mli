(** Streaming summary statistics and least-squares fitting helpers used by
    the experiment harnesses to report latency/throughput distributions
    and growth exponents. *)

type t
(** A mutable accumulator of float observations. *)

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** Mean of the observations; 0 if empty. *)

val stddev : t -> float
(** Sample standard deviation; 0 if fewer than two observations. *)

val min_value : t -> float
val max_value : t -> float

val percentile : t -> float -> float
(** [percentile t p] with [p] in [\[0, 100\]]; nearest-rank on the sorted
    observations. 0 if empty. The sorted array is cached and invalidated
    by {!add}, so alternating queries (p50/p99/...) between additions
    sort at most once. *)

val summary : t -> string
(** One-line human-readable summary: count/mean/p50/p99/max. *)

val linear_fit : (float * float) list -> float * float
(** Least-squares fit [y = a + b*x]; returns [(a, b)].
    @raise Invalid_argument on fewer than two points. *)

val growth_exponent : (float * float) list -> float
(** Log-log slope of [(x, y)] points: the exponent [k] of the best-fit
    [y ~ c * x^k]. Points with non-positive coordinates are dropped. *)
