(* Call-path trie. Each node aggregates every visit to one span name
   reached through one particular stack of enclosing spans; the flat
   per-name view ([rows]) merges nodes by name, the folded-stacks view
   walks paths. *)
type node = {
  nd_name : string;
  nd_children : (string, node) Hashtbl.t;
  mutable nd_count : int;
  mutable nd_total : float;
  mutable nd_self : float;
  mutable nd_alloc : float;
  mutable nd_self_alloc : float;
}

let make_node name =
  { nd_name = name;
    nd_children = Hashtbl.create 4;
    nd_count = 0;
    nd_total = 0.0;
    nd_self = 0.0;
    nd_alloc = 0.0;
    nd_self_alloc = 0.0 }

(* One open span. Child time/alloc accumulate here so the parent's
   self numbers can subtract them at [leave]. *)
type frame = {
  fr_node : node;
  fr_t0 : float;
  fr_a0 : float;
  mutable fr_child_time : float;
  mutable fr_child_alloc : float;
}

(* bounded per-call duration sample per span name, for percentile
   summaries without retaining one float per call. Algorithm R
   reservoir: every call has probability cap/seen of being retained,
   so the sample stays uniform over the whole run instead of freezing
   on the first [sample_cap] (warmup-biased) calls. The replacement
   index comes from a per-sample deterministic xorshift — same run,
   same sample. *)
let sample_cap = 2048

type sample = {
  mutable sm_seen : int;
  mutable sm_filled : int;
  mutable sm_state : int;
  sm_buf : float array;
}

type t = {
  clock : unit -> float;
  alloc_bytes : unit -> float;
  root : node; (* virtual; its children are the top-level spans *)
  samples : (string, sample) Hashtbl.t;
  gc0 : Gc.stat;
  alloc0 : float;
  mutable stack : frame list;
  mutable unbalanced : int;
}

let create ?(clock = Unix.gettimeofday) ?(alloc_bytes = Gc.allocated_bytes) ()
    =
  { clock;
    alloc_bytes;
    root = make_node "";
    samples = Hashtbl.create 32;
    gc0 = Gc.quick_stat ();
    alloc0 = alloc_bytes ();
    stack = [];
    unbalanced = 0 }

(* ---- the ambient slot ---- *)

let current : t option ref = ref None

let install t = current := Some t

let uninstall () = current := None

let installed () = !current

(* ---- instrumentation ---- *)

type span = Off | On of t * frame

let enter name =
  match !current with
  | None -> Off
  | Some t ->
    let parent = match t.stack with [] -> t.root | f :: _ -> f.fr_node in
    let node =
      match Hashtbl.find_opt parent.nd_children name with
      | Some n -> n
      | None ->
        let n = make_node name in
        Hashtbl.add parent.nd_children name n;
        n
    in
    let fr =
      { fr_node = node;
        fr_t0 = t.clock ();
        fr_a0 = t.alloc_bytes ();
        fr_child_time = 0.0;
        fr_child_alloc = 0.0 }
    in
    t.stack <- fr :: t.stack;
    On (t, fr)

let record_sample t name dt =
  let s =
    match Hashtbl.find_opt t.samples name with
    | Some s -> s
    | None ->
      let s =
        { sm_seen = 0;
          sm_filled = 0;
          sm_state = Hashtbl.hash name lor 1;
          sm_buf = Array.make sample_cap 0.0 }
      in
      Hashtbl.add t.samples name s;
      s
  in
  s.sm_seen <- s.sm_seen + 1;
  if s.sm_filled < sample_cap then begin
    s.sm_buf.(s.sm_filled) <- dt;
    s.sm_filled <- s.sm_filled + 1
  end
  else begin
    (* xorshift step on OCaml's 63-bit int; state is seeded nonzero *)
    let x = s.sm_state in
    let x = x lxor (x lsl 13) in
    let x = x lxor (x lsr 7) in
    let x = x lxor (x lsl 17) in
    s.sm_state <- x;
    let j = (x land max_int) mod s.sm_seen in
    if j < sample_cap then s.sm_buf.(j) <- dt
  end

let leave = function
  | Off -> ()
  | On (t, fr) -> (
    match t.stack with
    | top :: rest when top == fr ->
      t.stack <- rest;
      let dt = t.clock () -. fr.fr_t0 in
      let da = t.alloc_bytes () -. fr.fr_a0 in
      let n = fr.fr_node in
      n.nd_count <- n.nd_count + 1;
      n.nd_total <- n.nd_total +. dt;
      n.nd_self <- n.nd_self +. (dt -. fr.fr_child_time);
      n.nd_alloc <- n.nd_alloc +. da;
      n.nd_self_alloc <- n.nd_self_alloc +. (da -. fr.fr_child_alloc);
      (match rest with
      | parent :: _ ->
        parent.fr_child_time <- parent.fr_child_time +. dt;
        parent.fr_child_alloc <- parent.fr_child_alloc +. da
      | [] -> ());
      record_sample t n.nd_name dt
    | _ -> t.unbalanced <- t.unbalanced + 1)

let leave_reraise sp e =
  let bt = Printexc.get_raw_backtrace () in
  leave sp;
  Printexc.raise_with_backtrace e bt

let time name f =
  let sp = enter name in
  Fun.protect ~finally:(fun () -> leave sp) f

let depth t = List.length t.stack

let unbalanced t = t.unbalanced

(* ---- results ---- *)

type row = {
  r_name : string;
  r_count : int;
  r_total_s : float;
  r_self_s : float;
  r_alloc_bytes : float;
  r_self_alloc_bytes : float;
  r_samples : float list;
}

let sorted_children node =
  Hashtbl.fold (fun _ n acc -> n :: acc) node.nd_children []
  |> List.sort (fun a b -> compare a.nd_name b.nd_name)

let rec iter_nodes f path node =
  let path = if node.nd_name = "" then path else node.nd_name :: path in
  if node.nd_name <> "" then f (List.rev path) node;
  List.iter (iter_nodes f path) (sorted_children node)

let rows t =
  let by_name : (string, row) Hashtbl.t = Hashtbl.create 32 in
  iter_nodes
    (fun _path n ->
      let prev =
        match Hashtbl.find_opt by_name n.nd_name with
        | Some r -> r
        | None ->
          { r_name = n.nd_name;
            r_count = 0;
            r_total_s = 0.0;
            r_self_s = 0.0;
            r_alloc_bytes = 0.0;
            r_self_alloc_bytes = 0.0;
            r_samples = [] }
      in
      Hashtbl.replace by_name n.nd_name
        { prev with
          r_count = prev.r_count + n.nd_count;
          r_total_s = prev.r_total_s +. n.nd_total;
          r_self_s = prev.r_self_s +. n.nd_self;
          r_alloc_bytes = prev.r_alloc_bytes +. n.nd_alloc;
          r_self_alloc_bytes = prev.r_self_alloc_bytes +. n.nd_self_alloc })
    [] t.root;
  let rows = Hashtbl.fold (fun _ r acc -> r :: acc) by_name [] in
  let rows =
    List.map
      (fun r ->
        match Hashtbl.find_opt t.samples r.r_name with
        | None -> r
        | Some s ->
          { r with
            r_samples =
              Array.to_list (Array.sub s.sm_buf 0 s.sm_filled) })
      rows
  in
  List.sort
    (fun a b ->
      match compare b.r_self_s a.r_self_s with
      | 0 -> compare a.r_name b.r_name
      | c -> c)
    rows

let top_level_totals t =
  List.fold_left
    (fun (total, self) n -> (total +. n.nd_total, self +. n.nd_self))
    (0.0, 0.0) (sorted_children t.root)

let observed_s t = fst (top_level_totals t)

let coverage t =
  let total, self = top_level_totals t in
  if total <= 0.0 then 0.0 else 1.0 -. (self /. total)

let render_table ?(top = 16) t =
  let buf = Buffer.create 1024 in
  let observed = observed_s t in
  let pct x = if observed <= 0.0 then 0.0 else 100.0 *. x /. observed in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %10s %10s %6s %10s %10s\n" "span" "calls" "self(s)"
       "self%" "total(s)" "alloc(MB)");
  let shown = ref 0 in
  List.iter
    (fun r ->
      if !shown < top then begin
        incr shown;
        Buffer.add_string buf
          (Printf.sprintf "%-24s %10d %10.4f %5.1f%% %10.4f %10.2f\n" r.r_name
             r.r_count r.r_self_s (pct r.r_self_s) r.r_total_s
             (r.r_alloc_bytes /. 1e6))
      end)
    (rows t);
  Buffer.add_string buf
    (Printf.sprintf
       "observed %.4fs under top-level spans; %.1f%% attributed below them\n"
       observed (100.0 *. coverage t));
  if t.unbalanced > 0 then
    Buffer.add_string buf
      (Printf.sprintf "WARNING: %d unbalanced leave(s)\n" t.unbalanced);
  Buffer.contents buf

let folded t =
  let buf = Buffer.create 1024 in
  iter_nodes
    (fun path n ->
      let us = int_of_float (Float.round (n.nd_self *. 1e6)) in
      if n.nd_count > 0 && us > 0 then
        Buffer.add_string buf
          (Printf.sprintf "%s %d\n" (String.concat ";" path) us))
    [] t.root;
  Buffer.contents buf

(* ---- GC ---- *)

type gc_summary = {
  gc_minor_collections : int;
  gc_major_collections : int;
  gc_promoted_words : float;
  gc_top_heap_words : int;
  gc_allocated_bytes : float;
}

let gc_summary t =
  let g = Gc.quick_stat () in
  { gc_minor_collections = g.minor_collections - t.gc0.minor_collections;
    gc_major_collections = g.major_collections - t.gc0.major_collections;
    gc_promoted_words = g.promoted_words -. t.gc0.promoted_words;
    gc_top_heap_words = g.top_heap_words;
    gc_allocated_bytes = t.alloc_bytes () -. t.alloc0 }

let render_gc g =
  Printf.sprintf
    "gc: %.2f MB allocated, %d minor / %d major collections, %.2f MB \
     promoted, top heap %.2f MB\n"
    (g.gc_allocated_bytes /. 1e6)
    g.gc_minor_collections g.gc_major_collections
    (g.gc_promoted_words *. float_of_int (Sys.word_size / 8) /. 1e6)
    (float_of_int g.gc_top_heap_words
    *. float_of_int (Sys.word_size / 8)
    /. 1e6)
