(** Span-based performance profiler: wall-clock time, allocated bytes,
    and call counts attributed to named spans across the hot paths
    (engine dispatch, RBC send/deliver, link retransmission, DAG
    insert/path queries, wave ordering, the analyzer sink).

    Mirrors {!Trace}'s zero-cost-when-disabled contract, with one
    twist: the hot paths live in libraries that never see a harness
    options record, so the profiler is ambient — {!install} puts one
    [t] in a process-wide slot and every instrumentation site reads it
    through {!enter}/{!leave}. With nothing installed, [enter] is a
    ref read plus a match returning a constant: no allocation, no
    clock or GC reads, and (unlike a sampling profiler) no signal
    machinery — a disabled-profiler run executes the exact same event
    schedule and delivers byte-identical logs.

    Spans nest: each [enter] pushes onto a stack, [leave] pops, and
    the time/allocation of a child is subtracted from the parent's
    *self* numbers, so self columns partition the observed wall time.
    Aggregation is a trie keyed by call path, which is exactly the
    shape flamegraph tooling wants ({!folded}); {!rows} flattens it by
    span name for the hot-span table ({!render_table}). *)

type t

val create :
  ?clock:(unit -> float) -> ?alloc_bytes:(unit -> float) -> unit -> t
(** [clock] defaults to [Unix.gettimeofday] (seconds); [alloc_bytes]
    to [Gc.allocated_bytes]. Both injectable for deterministic tests.
    Creation snapshots [Gc.quick_stat] as the {!gc_summary} baseline. *)

val install : t -> unit
(** Make [t] the ambient profiler every {!enter} site reports to.
    Replaces any previously installed profiler. *)

val uninstall : unit -> unit

val installed : unit -> t option

(** {2 Instrumentation} *)

type span
(** A handle returned by {!enter}; pass it to the matching {!leave}.
    When no profiler is installed the handle is a shared constant. *)

val enter : string -> span
(** Open a span. [name] should be a static string (it keys the
    aggregation tables). Near-zero cost when nothing is installed. *)

val leave : span -> unit
(** Close a span. Closing out of order (not the innermost open span)
    is counted in {!unbalanced} and otherwise ignored. *)

val leave_reraise : span -> exn -> 'a
(** [leave_reraise sp e] closes [sp] and re-raises [e] with its
    original backtrace. Exception path for open-coded spans — without
    it, an exception between {!enter} and {!leave} strands a frame on
    the ambient stack and every later span mis-nests under it:
    {[
      let sp = Prof.enter "x" in
      (try body with e -> Prof.leave_reraise sp e);
      Prof.leave sp
    ]} *)

val time : string -> (unit -> 'a) -> 'a
(** [time name f] wraps [f] in a span, exception-safely. Convenience
    for non-hot call sites; hot paths use {!enter}/{!leave} directly. *)

val depth : t -> int
(** Currently open spans — 0 between well-balanced regions. *)

val unbalanced : t -> int
(** Number of {!leave}s that did not match the innermost open span. *)

(** {2 Results} *)

type row = {
  r_name : string;
  r_count : int;
  r_total_s : float;  (** inclusive wall seconds *)
  r_self_s : float;  (** exclusive wall seconds (children subtracted) *)
  r_alloc_bytes : float;  (** inclusive allocated bytes *)
  r_self_alloc_bytes : float;
  r_samples : float list;
      (** bounded per-call duration sample, seconds: a deterministic
          uniform reservoir (Algorithm R, capacity 2048) over every
          call, not the first N — percentiles computed from it reflect
          the whole run, warmup and steady state alike *)
}

val rows : t -> row list
(** Flat per-name aggregation over the call-path trie, sorted by self
    time descending. Same-name spans at different paths merge. *)

val observed_s : t -> float
(** Wall seconds under top-level (outermost) spans. *)

val coverage : t -> float
(** Fraction of {!observed_s} attributed below the top-level spans,
    i.e. [1 - self(top-level)/total(top-level)]; 0 when nothing was
    observed. With a single root span wrapping a run, this is the
    share of the run's wall time the instrumented spans explain. *)

val render_table : ?top:int -> t -> string
(** Hot-span table (default top 16 by self time) plus a coverage
    footer. *)

val folded : t -> string
(** Folded-stacks output, one line per call path:
    ["run;engine.dispatch;dag.add 1234"] where the value is the
    path's self time in microseconds — directly consumable by
    [flamegraph.pl] / [inferno-flamegraph]. Deterministic order. *)

type gc_summary = {
  gc_minor_collections : int;  (** since profiler creation *)
  gc_major_collections : int;
  gc_promoted_words : float;
  gc_top_heap_words : int;  (** absolute high-water mark *)
  gc_allocated_bytes : float;  (** since profiler creation *)
}

val gc_summary : t -> gc_summary

val render_gc : gc_summary -> string
