(** Proposal-to-delivery latency recording.

    An experiment marks the virtual time a payload was proposed
    ([proposed]) and the time each process delivered it ([delivered]);
    the recorder exposes per-payload first-delivery latency and summary
    statistics, in the paper's "time units". *)

type t

type key = string
(** Payload identifier (any unique string; experiments use the block
    digest or "source:seqno"). *)

val create : unit -> t

val proposed : t -> key -> now:float -> unit
(** First call wins; re-proposals keep the original timestamp. *)

val delivered : t -> key -> process:int -> now:float -> unit

val first_delivery_latency : t -> key -> float option
(** Time from proposal to the earliest delivery at any process; [None]
    if not yet delivered or never proposed. *)

val all_first_delivery_latencies : t -> float list
(** Latencies of every payload delivered at least once, sorted
    ascending (the recorder is hash-backed; sorting keeps reports
    independent of table iteration order). *)

val undelivered : t -> key list
(** Proposed payloads no process has delivered yet (liveness audits),
    sorted by key. *)

val proposed_at : t -> key -> float option
(** The recorded proposal timestamp ([None] if never proposed) — lets a
    live observer (the monitor's sliding-window percentiles) compute a
    delivery's latency at the moment it happens. *)

val delivery_count : t -> key -> int
(** Number of distinct processes that delivered the payload. *)

val per_process_latency : t -> key -> (int * float) list
(** Proposal-to-delivery latency at each process that delivered the
    payload, sorted by process id. Only the first delivery at each
    process counts; [[]] if never proposed or not yet delivered. *)

val all_per_process_latencies : t -> float list
(** Every (payload, process) delivery latency pooled together, sorted
    ascending — the distribution a "time to delivery at each process"
    histogram is built from. *)
