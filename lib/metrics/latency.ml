type key = string

type record = {
  proposed_at : float;
  mutable first_delivery : float option;
  mutable deliveries : (int * float) list;
      (* first delivery time per process, newest first *)
}

type t = { records : (key, record) Hashtbl.t }

let create () = { records = Hashtbl.create 64 }

let proposed t key ~now =
  if not (Hashtbl.mem t.records key) then
    Hashtbl.add t.records key
      { proposed_at = now; first_delivery = None; deliveries = [] }

let delivered t key ~process ~now =
  match Hashtbl.find_opt t.records key with
  | None -> ()
  | Some r ->
    if not (List.mem_assoc process r.deliveries) then
      r.deliveries <- (process, now) :: r.deliveries;
    (match r.first_delivery with
    | Some earlier when earlier <= now -> ()
    | _ -> r.first_delivery <- Some now)

let first_delivery_latency t key =
  match Hashtbl.find_opt t.records key with
  | None -> None
  | Some r ->
    Option.map (fun d -> d -. r.proposed_at) r.first_delivery

(* Hashtbl iteration order depends on the table's internal layout, so
   every [fold]-built list below is sorted before it escapes — reports
   and registry snapshots must not change shape when a hash function or
   resize policy does. *)
let all_first_delivery_latencies t =
  List.sort compare
    (Hashtbl.fold
       (fun _ r acc ->
         match r.first_delivery with
         | Some d -> (d -. r.proposed_at) :: acc
         | None -> acc)
       t.records [])

let undelivered t =
  List.sort compare
    (Hashtbl.fold
       (fun key r acc -> if r.first_delivery = None then key :: acc else acc)
       t.records [])

let proposed_at t key =
  Option.map (fun r -> r.proposed_at) (Hashtbl.find_opt t.records key)

let delivery_count t key =
  match Hashtbl.find_opt t.records key with
  | None -> 0
  | Some r -> List.length r.deliveries

let per_process_latency t key =
  match Hashtbl.find_opt t.records key with
  | None -> []
  | Some r ->
    List.sort
      (fun (p, _) (q, _) -> compare (p : int) q)
      (List.map (fun (p, at) -> (p, at -. r.proposed_at)) r.deliveries)

let all_per_process_latencies t =
  List.sort compare
    (Hashtbl.fold
       (fun _ r acc ->
         List.fold_left
           (fun acc (_, at) -> (at -. r.proposed_at) :: acc)
           acc r.deliveries)
       t.records [])
