type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  histograms : (string, Stdx.Stats.t) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 16 }

let incr t name ?(by = 1) () =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let set_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h = Stdx.Stats.create () in
    Hashtbl.add t.histograms name h;
    h

let observe t name v = Stdx.Stats.add (histogram t name) v

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge_value t name =
  Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

(* ---- snapshots ---- *)

type histogram_summary = {
  h_count : int;
  h_mean : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}

let summarize stats =
  { h_count = Stdx.Stats.count stats;
    h_mean = Stdx.Stats.mean stats;
    h_min = Stdx.Stats.min_value stats;
    h_max = Stdx.Stats.max_value stats;
    h_p50 = Stdx.Stats.percentile stats 50.0;
    h_p90 = Stdx.Stats.percentile stats 90.0;
    h_p99 = Stdx.Stats.percentile stats 99.0 }

let by_name (a, _) (b, _) = compare (a : string) b

let snapshot (t : t) =
  { counters =
      List.sort by_name
        (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []);
    gauges =
      List.sort by_name
        (Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges []);
    histograms =
      List.sort by_name
        (Hashtbl.fold
           (fun k stats acc -> (k, summarize stats) :: acc)
           t.histograms []) }

let summary_to_json s =
  Stdx.Json.Obj
    [ ("count", Stdx.Json.Int s.h_count);
      ("mean", Stdx.Json.Float s.h_mean);
      ("min", Stdx.Json.Float s.h_min);
      ("max", Stdx.Json.Float s.h_max);
      ("p50", Stdx.Json.Float s.h_p50);
      ("p90", Stdx.Json.Float s.h_p90);
      ("p99", Stdx.Json.Float s.h_p99) ]

let snapshot_to_json s =
  Stdx.Json.Obj
    [ ( "counters",
        Stdx.Json.Obj (List.map (fun (k, v) -> (k, Stdx.Json.Int v)) s.counters)
      );
      ( "gauges",
        Stdx.Json.Obj (List.map (fun (k, v) -> (k, Stdx.Json.Float v)) s.gauges)
      );
      ( "histograms",
        Stdx.Json.Obj
          (List.map (fun (k, v) -> (k, summary_to_json v)) s.histograms) ) ]

let render s =
  let buf = Buffer.create 512 in
  if s.counters <> [] then begin
    Buffer.add_string buf "counters:\n";
    List.iter
      (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "  %-32s %d\n" k v))
      s.counters
  end;
  if s.gauges <> [] then begin
    Buffer.add_string buf "gauges:\n";
    List.iter
      (fun (k, v) ->
        Buffer.add_string buf (Printf.sprintf "  %-32s %.3f\n" k v))
      s.gauges
  end;
  if s.histograms <> [] then begin
    Buffer.add_string buf "histograms:\n";
    List.iter
      (fun (k, h) ->
        Buffer.add_string buf
          (Printf.sprintf
             "  %-32s n=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f\n" k
             h.h_count h.h_mean h.h_p50 h.h_p90 h.h_p99 h.h_max))
      s.histograms
  end;
  Buffer.contents buf
