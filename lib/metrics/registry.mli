(** Named-metrics registry: counters, gauges, and histograms under one
    roof, with point-in-time snapshots that serialize to JSON.

    This generalizes {!Counters} (which stays as the network layer's
    hot-path accounting): the registry is where a run's whole health
    picture is assembled — communication totals, per-kind breakdowns,
    engine progress, and latency distributions (histograms ride
    {!Stdx.Stats}, so percentile queries reuse its cached sort). The
    harness builds one snapshot per run ([Runner.metrics_snapshot]) and
    the bench serializes them into the [--json] output. *)

type t

val create : unit -> t

val incr : t -> string -> ?by:int -> unit -> unit
(** Bump a named counter (created at zero on first use). *)

val set_gauge : t -> string -> float -> unit
(** Set a point-in-time value (last write wins). *)

val observe : t -> string -> float -> unit
(** Add one observation to a named histogram. *)

val histogram : t -> string -> Stdx.Stats.t
(** Get-or-create the underlying accumulator (bulk feeding). *)

val counter_value : t -> string -> int
(** 0 if never bumped. *)

val gauge_value : t -> string -> float option

type histogram_summary = {
  h_count : int;
  h_mean : float;
  h_min : float;
  h_max : float;
  h_p50 : float;
  h_p90 : float;
  h_p99 : float;
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_summary) list;
}
(** All three sections sorted by metric name (deterministic output). *)

val snapshot : t -> snapshot

val snapshot_to_json : snapshot -> Stdx.Json.t
(** [{"counters": {..}, "gauges": {..}, "histograms": {name: {count,
    mean, min, max, p50, p90, p99}}}]. *)

val render : snapshot -> string
(** Human-readable multi-line rendering. *)
