type kind =
  | Send of { src : int; dst : int; msg_kind : string; bits : int; id : int }
  | Recv of { src : int; dst : int; msg_kind : string; id : int }
  | Drop of {
      src : int;
      dst : int;
      msg_kind : string;
      reason : string;
      id : int;
    }
  | Retransmit of {
      src : int;
      dst : int;
      msg_kind : string;
      seq : int;
      attempt : int;
      id : int;
    }
  | Corrupt_reject of { src : int; dst : int; msg_kind : string; id : int }
  | Rbc_phase of { node : int; origin : int; round : int; phase : string }
  | Vertex_created of { node : int; round : int }
  | Vertex_added of { node : int; round : int; source : int }
  | Round_advanced of { node : int; round : int }
  | Coin_flip of { node : int; wave : int }
  | Leader_elected of { node : int; wave : int; leader : int }
  | Leader_skipped of { node : int; wave : int; leader : int }
  | Commit of {
      node : int;
      wave : int;
      leader_round : int;
      leader_source : int;
      direct : bool;
      delivered : int;
    }
  | Commit_cert of {
      node : int;
      rule : string;
      sched : string;
      wave : int;
      leader_round : int;
      leader_source : int;
      direct : bool;
      anchor_wave : int;
      via_round : int;
      via_source : int;
      support : int list;
      quorum : int;
      delivered : int;
    }
  | Skip_cert of {
      node : int;
      rule : string;
      sched : string;
      wave : int;
      leader_round : int;
      leader_source : int;
      reason : string;
      support : int list;
      quorum : int;
    }
  | A_deliver of { node : int; round : int; source : int }
  | Sync_retry of { node : int; attempt : int; from_round : int }
  | Sync_gave_up of { node : int; attempts : int }
  | Sync_reject of {
      node : int;
      src : int;
      round : int;
      source : int;
      reason : string;
    }
  | Sync_unavailable of { node : int }
  | Attack_event of {
      node : int;
      strategy : string;
      round : int;
      info : string;
    }
  | Engine_sample of { executed : int; pending : int }
  | Health of { check : string; ok : bool; value : float; threshold : float }
  | Tx_submitted of { node : int; accepted : bool }
  | Block_assembled of { node : int; round : int; txs : int }

type event = { seq : int; time : float; cause : int; kind : kind }

type t = {
  capacity : int;
  ring : event option array;
  mutable emitted : int;
  mutable clock : unit -> float;
  mutable sinks : (event -> unit) list;
  mutable next_id : int;
  mutable cause : int;
}

let default_capacity = 1 lsl 16

let create ?(capacity = default_capacity) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be positive";
  { capacity;
    ring = Array.make capacity None;
    emitted = 0;
    clock = (fun () -> 0.0);
    sinks = [];
    next_id = 0;
    cause = -1 }

let set_clock t clock = t.clock <- clock

let add_sink t sink = t.sinks <- t.sinks @ [ sink ]

let fresh_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let current_cause t = t.cause

let with_cause t cause f =
  let saved = t.cause in
  t.cause <- cause;
  Fun.protect ~finally:(fun () -> t.cause <- saved) f

let emit t kind =
  let seq = t.emitted in
  t.emitted <- seq + 1;
  let e = { seq; time = t.clock (); cause = t.cause; kind } in
  t.ring.(seq mod t.capacity) <- Some e;
  match t.sinks with
  | [] -> ()
  | sinks -> List.iter (fun sink -> sink e) sinks

let emitted t = t.emitted

let dropped t = max 0 (t.emitted - t.capacity)

let capacity t = t.capacity

let occupancy t = min t.emitted t.capacity

let events t =
  let count = min t.emitted t.capacity in
  let first = t.emitted - count in
  List.init count (fun i ->
      match t.ring.((first + i) mod t.capacity) with
      | Some e -> e
      | None -> assert false)

(* ---- labels ---- *)

let node_of = function
  | Send { src; _ } -> Some src
  | Recv { dst; _ } -> Some dst
  | Drop { dst; _ } -> Some dst
  | Retransmit { src; _ } -> Some src
  | Corrupt_reject { dst; _ } -> Some dst
  | Rbc_phase { node; _ }
  | Vertex_created { node; _ }
  | Vertex_added { node; _ }
  | Round_advanced { node; _ }
  | Coin_flip { node; _ }
  | Leader_elected { node; _ }
  | Leader_skipped { node; _ }
  | Commit { node; _ }
  | Commit_cert { node; _ }
  | Skip_cert { node; _ }
  | A_deliver { node; _ }
  | Sync_retry { node; _ }
  | Sync_gave_up { node; _ }
  | Sync_reject { node; _ }
  | Sync_unavailable { node; _ }
  | Attack_event { node; _ }
  | Tx_submitted { node; _ }
  | Block_assembled { node; _ } -> Some node
  | Engine_sample _ | Health _ -> None

let kind_label = function
  | Send _ -> "send"
  | Recv _ -> "recv"
  | Drop _ -> "drop"
  | Retransmit _ -> "retransmit"
  | Corrupt_reject _ -> "corrupt-reject"
  | Rbc_phase _ -> "rbc-phase"
  | Vertex_created _ -> "vertex-created"
  | Vertex_added _ -> "vertex-added"
  | Round_advanced _ -> "round-advanced"
  | Coin_flip _ -> "coin-flip"
  | Leader_elected _ -> "leader-elected"
  | Leader_skipped _ -> "leader-skipped"
  | Commit _ -> "commit"
  | Commit_cert _ -> "commit-cert"
  | Skip_cert _ -> "skip-cert"
  | A_deliver _ -> "a-deliver"
  | Sync_retry _ -> "sync-retry"
  | Sync_gave_up _ -> "sync-gave-up"
  | Sync_reject _ -> "sync-reject"
  | Sync_unavailable _ -> "sync-unavailable"
  | Attack_event _ -> "attack"
  | Engine_sample _ -> "engine-sample"
  | Health _ -> "health"
  | Tx_submitted _ -> "tx-submitted"
  | Block_assembled _ -> "block-assembled"

let id_tag id = if id >= 0 then Printf.sprintf " #%d" id else ""

let describe_kind = function
  | Send { src; dst; msg_kind; bits; id } ->
    Printf.sprintf "send p%d->p%d %s (%d bits)%s" src dst msg_kind bits
      (id_tag id)
  | Recv { src; dst; msg_kind; id } ->
    Printf.sprintf "recv p%d->p%d %s%s" src dst msg_kind (id_tag id)
  | Drop { src; dst; msg_kind; reason; id } ->
    Printf.sprintf "drop p%d->p%d %s (%s)%s" src dst msg_kind reason (id_tag id)
  | Retransmit { src; dst; msg_kind; seq; attempt; id } ->
    Printf.sprintf "retransmit p%d->p%d %s seq=%d attempt=%d%s" src dst
      msg_kind seq attempt (id_tag id)
  | Corrupt_reject { src; dst; msg_kind; id } ->
    Printf.sprintf "corrupt frame rejected p%d->p%d %s%s" src dst msg_kind
      (id_tag id)
  | Rbc_phase { node; origin; round; phase } ->
    Printf.sprintf "rbc p%d: instance (p%d,r%d) -> %s" node origin round phase
  | Vertex_created { node; round } ->
    Printf.sprintf "p%d created its r%d vertex" node round
  | Vertex_added { node; round; source } ->
    Printf.sprintf "p%d added (r%d,p%d) to its DAG" node round source
  | Round_advanced { node; round } ->
    Printf.sprintf "p%d advanced to round %d" node round
  | Coin_flip { node; wave } ->
    Printf.sprintf "p%d flipped the wave-%d coin (share out)" node wave
  | Leader_elected { node; wave; leader } ->
    Printf.sprintf "p%d resolved wave %d: leader p%d" node wave leader
  | Leader_skipped { node; wave; leader } ->
    Printf.sprintf "p%d skipped wave %d (leader p%d unsupported/absent)" node
      wave leader
  | Commit { node; wave; leader_round; leader_source; direct; delivered } ->
    Printf.sprintf "p%d committed wave %d leader (r%d,p%d)%s, %d delivered"
      node wave leader_round leader_source
      (if direct then "" else " [chained]")
      delivered
  | Commit_cert
      { node; rule; wave; leader_round; leader_source; direct; anchor_wave;
        via_round; via_source; support; quorum; delivered; _ } ->
    if direct then
      Printf.sprintf
        "p%d cert[%s]: wave %d leader (r%d,p%d) committed direct, support \
         {%s} >= %d, %d delivered"
        node rule wave leader_round leader_source
        (String.concat "," (List.map string_of_int support))
        quorum delivered
    else
      Printf.sprintf
        "p%d cert[%s]: wave %d leader (r%d,p%d) committed chained via \
         (r%d,p%d) from wave %d, %d delivered"
        node rule wave leader_round leader_source via_round via_source
        anchor_wave delivered
  | Skip_cert { node; rule; wave; leader_round; leader_source; reason; support;
                quorum; _ } ->
    Printf.sprintf
      "p%d cert[%s]: wave %d leader (r%d,p%d) skipped (%s, support {%s} < %d)"
      node rule wave leader_round leader_source reason
      (String.concat "," (List.map string_of_int support))
      quorum
  | A_deliver { node; round; source } ->
    Printf.sprintf "p%d a-delivered (r%d,p%d)" node round source
  | Sync_retry { node; attempt; from_round } ->
    Printf.sprintf "p%d sync retry #%d (catch-up from round %d)" node attempt
      from_round
  | Sync_gave_up { node; attempts } ->
    Printf.sprintf "p%d gave up on sync catch-up after %d attempt(s)" node
      attempts
  | Sync_reject { node; src; round; source; reason } ->
    Printf.sprintf "p%d rejected sync vertex (r%d,p%d) from p%d (%s)" node
      round source src reason
  | Sync_unavailable { node } ->
    Printf.sprintf "p%d requested sync but has no sync network" node
  | Attack_event { node; strategy; round; info } ->
    Printf.sprintf "p%d ATTACK %s r%d: %s" node strategy round info
  | Engine_sample { executed; pending } ->
    Printf.sprintf "engine: %d events executed, %d pending" executed pending
  | Health { check; ok; value; threshold } ->
    Printf.sprintf "health %s: %s (%.3g vs %.3g)" check
      (if ok then "OK" else "FAILING")
      value threshold
  | Tx_submitted { node; accepted } ->
    Printf.sprintf "p%d tx submitted%s" node
      (if accepted then "" else " (rejected)")
  | Block_assembled { node; round; txs } ->
    Printf.sprintf "p%d assembled its r%d block (%d txs)" node round txs

(* ---- JSONL ---- *)

let event_to_json { seq; time; cause; kind } =
  let base = [ ("seq", Stdx.Json.Int seq); ("t", Stdx.Json.Float time) ] in
  (* correlation fields are emitted only when set, so traces written
     before they existed — and untraced-style events with no ids — keep
     their exact byte shape *)
  let base =
    if cause >= 0 then base @ [ ("cause", Stdx.Json.Int cause) ] else base
  in
  let ev name fields =
    Stdx.Json.Obj (base @ (("ev", Stdx.Json.String name) :: fields))
  in
  let i k v = (k, Stdx.Json.Int v) in
  let s k v = (k, Stdx.Json.String v) in
  let il k vs = (k, Stdx.Json.List (List.map (fun v -> Stdx.Json.Int v) vs)) in
  let mid id = if id >= 0 then [ i "id" id ] else [] in
  match kind with
  | Send { src; dst; msg_kind; bits; id } ->
    ev "send"
      ([ i "src" src; i "dst" dst; s "kind" msg_kind; i "bits" bits ]
      @ mid id)
  | Recv { src; dst; msg_kind; id } ->
    ev "recv" ([ i "src" src; i "dst" dst; s "kind" msg_kind ] @ mid id)
  | Drop { src; dst; msg_kind; reason; id } ->
    ev "drop"
      ([ i "src" src; i "dst" dst; s "kind" msg_kind; s "reason" reason ]
      @ mid id)
  | Retransmit { src; dst; msg_kind; seq; attempt; id } ->
    ev "retransmit"
      ([ i "src" src; i "dst" dst; s "kind" msg_kind; i "mseq" seq;
         i "attempt" attempt ]
      @ mid id)
  | Corrupt_reject { src; dst; msg_kind; id } ->
    ev "corrupt-reject"
      ([ i "src" src; i "dst" dst; s "kind" msg_kind ] @ mid id)
  | Rbc_phase { node; origin; round; phase } ->
    ev "rbc-phase"
      [ i "node" node; i "origin" origin; i "round" round; s "phase" phase ]
  | Vertex_created { node; round } ->
    ev "vertex-created" [ i "node" node; i "round" round ]
  | Vertex_added { node; round; source } ->
    ev "vertex-added" [ i "node" node; i "round" round; i "source" source ]
  | Round_advanced { node; round } ->
    ev "round-advanced" [ i "node" node; i "round" round ]
  | Coin_flip { node; wave } -> ev "coin-flip" [ i "node" node; i "wave" wave ]
  | Leader_elected { node; wave; leader } ->
    ev "leader-elected" [ i "node" node; i "wave" wave; i "leader" leader ]
  | Leader_skipped { node; wave; leader } ->
    ev "leader-skipped" [ i "node" node; i "wave" wave; i "leader" leader ]
  | Commit { node; wave; leader_round; leader_source; direct; delivered } ->
    ev "commit"
      [ i "node" node; i "wave" wave; i "leader_round" leader_round;
        i "leader_source" leader_source;
        ("direct", Stdx.Json.Bool direct); i "delivered" delivered ]
  | Commit_cert
      { node; rule; sched; wave; leader_round; leader_source; direct;
        anchor_wave; via_round; via_source; support; quorum; delivered } ->
    ev "commit-cert"
      [ i "node" node; s "rule" rule; s "sched" sched; i "wave" wave;
        i "leader_round" leader_round; i "leader_source" leader_source;
        ("direct", Stdx.Json.Bool direct); i "anchor_wave" anchor_wave;
        i "via_round" via_round; i "via_source" via_source;
        il "support" support; i "quorum" quorum; i "delivered" delivered ]
  | Skip_cert
      { node; rule; sched; wave; leader_round; leader_source; reason; support;
        quorum } ->
    ev "skip-cert"
      [ i "node" node; s "rule" rule; s "sched" sched; i "wave" wave;
        i "leader_round" leader_round; i "leader_source" leader_source;
        s "reason" reason; il "support" support; i "quorum" quorum ]
  | A_deliver { node; round; source } ->
    ev "a-deliver" [ i "node" node; i "round" round; i "source" source ]
  | Sync_retry { node; attempt; from_round } ->
    ev "sync-retry"
      [ i "node" node; i "attempt" attempt; i "from_round" from_round ]
  | Sync_gave_up { node; attempts } ->
    ev "sync-gave-up" [ i "node" node; i "attempts" attempts ]
  | Sync_reject { node; src; round; source; reason } ->
    ev "sync-reject"
      [ i "node" node; i "src" src; i "round" round; i "source" source;
        s "reason" reason ]
  | Sync_unavailable { node } -> ev "sync-unavailable" [ i "node" node ]
  | Attack_event { node; strategy; round; info } ->
    ev "attack"
      [ i "node" node; s "strategy" strategy; i "round" round; s "info" info ]
  | Engine_sample { executed; pending } ->
    ev "engine-sample" [ i "executed" executed; i "pending" pending ]
  | Health { check; ok; value; threshold } ->
    ev "health"
      [ s "check" check; ("ok", Stdx.Json.Bool ok);
        ("value", Stdx.Json.Float value);
        ("threshold", Stdx.Json.Float threshold) ]
  | Tx_submitted { node; accepted } ->
    ev "tx-submitted" [ i "node" node; ("accepted", Stdx.Json.Bool accepted) ]
  | Block_assembled { node; round; txs } ->
    ev "block-assembled" [ i "node" node; i "round" round; i "txs" txs ]

let event_of_json json =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match Option.bind (Stdx.Json.member name json) conv with
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "missing or mistyped field %S" name)
  in
  let int_field name = field name Stdx.Json.to_int_opt in
  (* correlation fields are absent in traces written before they
     existed: default them rather than failing the line *)
  let opt_int_field name =
    match Stdx.Json.member name json with
    | None -> Ok (-1)
    | Some j -> (
      match Stdx.Json.to_int_opt j with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "mistyped field %S" name))
  in
  let str_field name = field name Stdx.Json.to_string_opt in
  let bool_field name = field name Stdx.Json.to_bool_opt in
  let int_list_field name =
    field name (fun j ->
        Option.bind (Stdx.Json.to_list_opt j) (fun items ->
            List.fold_right
              (fun item acc ->
                match (Stdx.Json.to_int_opt item, acc) with
                | Some n, Some rest -> Some (n :: rest)
                | _ -> None)
              items (Some [])))
  in
  let* seq = int_field "seq" in
  let* time = field "t" Stdx.Json.to_float_opt in
  let* cause = opt_int_field "cause" in
  let* ev = str_field "ev" in
  let* kind =
    match ev with
    | "send" ->
      let* src = int_field "src" in
      let* dst = int_field "dst" in
      let* msg_kind = str_field "kind" in
      let* bits = int_field "bits" in
      let* id = opt_int_field "id" in
      Ok (Send { src; dst; msg_kind; bits; id })
    | "recv" ->
      let* src = int_field "src" in
      let* dst = int_field "dst" in
      let* msg_kind = str_field "kind" in
      let* id = opt_int_field "id" in
      Ok (Recv { src; dst; msg_kind; id })
    | "drop" ->
      let* src = int_field "src" in
      let* dst = int_field "dst" in
      let* msg_kind = str_field "kind" in
      let* reason = str_field "reason" in
      let* id = opt_int_field "id" in
      Ok (Drop { src; dst; msg_kind; reason; id })
    | "retransmit" ->
      let* src = int_field "src" in
      let* dst = int_field "dst" in
      let* msg_kind = str_field "kind" in
      let* seq = int_field "mseq" in
      let* attempt = int_field "attempt" in
      let* id = opt_int_field "id" in
      Ok (Retransmit { src; dst; msg_kind; seq; attempt; id })
    | "corrupt-reject" ->
      let* src = int_field "src" in
      let* dst = int_field "dst" in
      let* msg_kind = str_field "kind" in
      let* id = opt_int_field "id" in
      Ok (Corrupt_reject { src; dst; msg_kind; id })
    | "rbc-phase" ->
      let* node = int_field "node" in
      let* origin = int_field "origin" in
      let* round = int_field "round" in
      let* phase = str_field "phase" in
      Ok (Rbc_phase { node; origin; round; phase })
    | "vertex-created" ->
      let* node = int_field "node" in
      let* round = int_field "round" in
      Ok (Vertex_created { node; round })
    | "vertex-added" ->
      let* node = int_field "node" in
      let* round = int_field "round" in
      let* source = int_field "source" in
      Ok (Vertex_added { node; round; source })
    | "round-advanced" ->
      let* node = int_field "node" in
      let* round = int_field "round" in
      Ok (Round_advanced { node; round })
    | "coin-flip" ->
      let* node = int_field "node" in
      let* wave = int_field "wave" in
      Ok (Coin_flip { node; wave })
    | "leader-elected" ->
      let* node = int_field "node" in
      let* wave = int_field "wave" in
      let* leader = int_field "leader" in
      Ok (Leader_elected { node; wave; leader })
    | "leader-skipped" ->
      let* node = int_field "node" in
      let* wave = int_field "wave" in
      let* leader = int_field "leader" in
      Ok (Leader_skipped { node; wave; leader })
    | "commit" ->
      let* node = int_field "node" in
      let* wave = int_field "wave" in
      let* leader_round = int_field "leader_round" in
      let* leader_source = int_field "leader_source" in
      let* direct = bool_field "direct" in
      let* delivered = int_field "delivered" in
      Ok (Commit { node; wave; leader_round; leader_source; direct; delivered })
    | "commit-cert" ->
      let* node = int_field "node" in
      let* rule = str_field "rule" in
      let* sched = str_field "sched" in
      let* wave = int_field "wave" in
      let* leader_round = int_field "leader_round" in
      let* leader_source = int_field "leader_source" in
      let* direct = bool_field "direct" in
      let* anchor_wave = int_field "anchor_wave" in
      let* via_round = int_field "via_round" in
      let* via_source = int_field "via_source" in
      let* support = int_list_field "support" in
      let* quorum = int_field "quorum" in
      let* delivered = int_field "delivered" in
      Ok
        (Commit_cert
           { node; rule; sched; wave; leader_round; leader_source; direct;
             anchor_wave; via_round; via_source; support; quorum; delivered })
    | "skip-cert" ->
      let* node = int_field "node" in
      let* rule = str_field "rule" in
      let* sched = str_field "sched" in
      let* wave = int_field "wave" in
      let* leader_round = int_field "leader_round" in
      let* leader_source = int_field "leader_source" in
      let* reason = str_field "reason" in
      let* support = int_list_field "support" in
      let* quorum = int_field "quorum" in
      Ok
        (Skip_cert
           { node; rule; sched; wave; leader_round; leader_source; reason;
             support; quorum })
    | "a-deliver" ->
      let* node = int_field "node" in
      let* round = int_field "round" in
      let* source = int_field "source" in
      Ok (A_deliver { node; round; source })
    | "sync-retry" ->
      let* node = int_field "node" in
      let* attempt = int_field "attempt" in
      let* from_round = int_field "from_round" in
      Ok (Sync_retry { node; attempt; from_round })
    | "sync-gave-up" ->
      let* node = int_field "node" in
      let* attempts = int_field "attempts" in
      Ok (Sync_gave_up { node; attempts })
    | "sync-reject" ->
      let* node = int_field "node" in
      let* src = int_field "src" in
      let* round = int_field "round" in
      let* source = int_field "source" in
      let* reason = str_field "reason" in
      Ok (Sync_reject { node; src; round; source; reason })
    | "sync-unavailable" ->
      let* node = int_field "node" in
      Ok (Sync_unavailable { node })
    | "attack" ->
      let* node = int_field "node" in
      let* strategy = str_field "strategy" in
      let* round = int_field "round" in
      let* info = str_field "info" in
      Ok (Attack_event { node; strategy; round; info })
    | "engine-sample" ->
      let* executed = int_field "executed" in
      let* pending = int_field "pending" in
      Ok (Engine_sample { executed; pending })
    | "health" ->
      let* check = str_field "check" in
      let* ok = bool_field "ok" in
      let* value = field "value" Stdx.Json.to_float_opt in
      let* threshold = field "threshold" Stdx.Json.to_float_opt in
      Ok (Health { check; ok; value; threshold })
    | "tx-submitted" ->
      let* node = int_field "node" in
      let* accepted = bool_field "accepted" in
      Ok (Tx_submitted { node; accepted })
    | "block-assembled" ->
      let* node = int_field "node" in
      let* round = int_field "round" in
      let* txs = int_field "txs" in
      Ok (Block_assembled { node; round; txs })
    | other -> Error (Printf.sprintf "unknown event kind %S" other)
  in
  Ok { seq; time; cause; kind }

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Stdx.Json.to_string (event_to_json e));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf

let events_of_jsonl text =
  let lines =
    List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' text)
  in
  let rec go acc lineno = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
      match Stdx.Json.of_string line with
      | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
      | Ok json -> (
        match event_of_json json with
        | Error e -> Error (Printf.sprintf "line %d: %s" lineno e)
        | Ok ev -> go (ev :: acc) (lineno + 1) rest))
  in
  go [] 1 lines

(* ---- ASCII timeline ---- *)

let render_events ?(max_lanes = 16) events =
  let buf = Buffer.create 4096 in
  let lanes =
    List.fold_left
      (fun acc e ->
        match node_of e.kind with Some p -> max acc (p + 1) | None -> acc)
      0 events
  in
  let lanes = min lanes max_lanes in
  let lane_cells node =
    String.init lanes (fun i ->
        match node with
        | Some p when p = i -> '*'
        | Some p when p >= lanes && i = lanes - 1 -> '+'
        | _ -> '.')
  in
  Buffer.add_string buf
    (Printf.sprintf "%10s  %8s  %-*s  %s\n" "time" "seq" (max lanes 5)
       (if lanes > 0 then "lanes" else "-")
       "event");
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%10.3f  %8d  %-*s  %s\n" e.time e.seq (max lanes 5)
           (lane_cells (node_of e.kind))
           (describe_kind e.kind)))
    events;
  Buffer.contents buf

let render_timeline ?max_lanes ?limit t =
  let evs = events t in
  let evs =
    match limit with
    | None -> evs
    | Some k when k >= List.length evs -> evs
    | Some k ->
      (* keep the newest [k] — the tail is where failures live *)
      let skip = List.length evs - k in
      List.filteri (fun i _ -> i >= skip) evs
  in
  let header =
    Printf.sprintf
      "trace: %d event(s) emitted, %d retained (capacity %d), %d dropped\n"
      t.emitted
      (min t.emitted t.capacity)
      t.capacity (dropped t)
  in
  header ^ render_events ?max_lanes evs
