(** Structured execution tracing for the whole stack.

    A tracer is a fixed-capacity ring buffer of typed events, each
    stamped with the virtual time it was emitted at and a monotone
    sequence number. Every layer takes an optional tracer — network
    sends/receives, reliable-broadcast phase transitions, DAG vertex
    and round progress, coin flips, leader election, wave commits, and
    the BAB [a_deliver] upcalls — so one trace interleaves the full
    causal story of a run. With no tracer installed ([None] everywhere)
    nothing is allocated and the simulation is byte-identical to an
    untraced build of the same seed.

    The buffer keeps the {e newest} [capacity] events: when it wraps,
    the oldest are overwritten (failures live at the tail). Export is
    JSONL — one compact JSON object per line, decodable by
    {!events_of_jsonl} for offline analysis — and there is an ASCII
    timeline renderer for eyeballs. *)

type kind =
  | Send of { src : int; dst : int; msg_kind : string; bits : int; id : int }
      (** a message left [src] (kind tags as in {!Metrics.Counters}).
          [id] is the logical-message correlation id ([-1] when the
          sender allocated none): every wire event for one logical
          message — its send, retransmit copies, delivery or drop —
          carries the same id, and the handler that consumes it emits
          its own events with [cause = id], so a causal chain can be
          walked across nodes *)
  | Recv of { src : int; dst : int; msg_kind : string; id : int }
      (** delivery at [dst]'s handler *)
  | Drop of {
      src : int;
      dst : int;
      msg_kind : string;
      reason : string;
      id : int;
    }
      (** a delivery that never reached a handler. Reasons used by the
          stack: "fault" (link-fault policy loss), "corrupt" (fault
          policy corruption with no corrupter installed), "corrupted-src"
          (adaptive adversary discarded an in-flight message of a newly
          corrupted sender), "no-handler" (endpoint unregistered),
          "give-up" (reliable link exhausted its retransmit budget),
          "duplicate" (reliable link suppressed a redelivery),
          "decode" (frame payload failed the protocol decoder) *)
  | Retransmit of {
      src : int;
      dst : int;
      msg_kind : string;
      seq : int;
      attempt : int;
      id : int;
    }
      (** the reliable link timed out waiting for an ack and resent
          frame [seq]; [attempt] counts from 1. [id] matches the
          original send's correlation id, so backoff stalls attach to
          the logical message they delayed *)
  | Corrupt_reject of { src : int; dst : int; msg_kind : string; id : int }
      (** a frame failed its checksum at [dst] and was discarded (the
          sender will retransmit) *)
  | Rbc_phase of { node : int; origin : int; round : int; phase : string }
      (** reliable-broadcast instance [(origin, round)] changed phase at
          [node]: "init"/"disperse"/"gossip", "echo", "ready",
          "deliver", "discard" *)
  | Vertex_created of { node : int; round : int }
      (** Algorithm 2 lines 16-21: [node] built and broadcast its own
          round-[round] vertex *)
  | Vertex_added of { node : int; round : int; source : int }
      (** Algorithm 2 lines 6-9: a buffered vertex joined [node]'s DAG *)
  | Round_advanced of { node : int; round : int }
      (** Algorithm 2 lines 10-15: the 2f+1 quorum for the previous
          round assembled; [round] is the round being entered *)
  | Coin_flip of { node : int; wave : int }
      (** [node] completed wave [wave] and released its coin share *)
  | Leader_elected of { node : int; wave : int; leader : int }
      (** f+1 shares combined at [node]: wave [wave]'s leader is known *)
  | Leader_skipped of { node : int; wave : int; leader : int }
      (** ordering processed a resolved wave without committing it
          (leader vertex absent or under-supported, Algorithm 3) *)
  | Commit of {
      node : int;
      wave : int;
      leader_round : int;
      leader_source : int;
      direct : bool; (** [false] = chained retroactively, lines 38-43 *)
      delivered : int; (** fresh vertices ordered by this commit *)
    }
  | Commit_cert of {
      node : int;
      rule : string;  (** commit rule in force ("dagrider", "bullshark") *)
      sched : string;  (** leader schedule evidence: "coin" | "round-robin" *)
      wave : int;
      leader_round : int;
      leader_source : int;
      direct : bool;
      anchor_wave : int;
          (** the wave whose {e direct} commit fired this decision; equals
              [wave] for direct commits, the directly-committed wave at
              the top of the lines-38-43 chain for chained ones *)
      via_round : int;
      via_source : int;
          (** the next leader up the chain whose strong path justifies a
              chained commit; equals the leader itself when [direct] *)
      support : int list;
          (** direct commits: sources of the wave's last-round vertices
              with a strong path to the leader (the exact quorum the
              Algorithm 3 line 14 / Bullshark vote check counted).
              Chained commits carry the empty list — their evidence is
              [via]'s strong path. *)
      quorum : int;  (** votes required by the rule: 2f+1 or f+1 *)
      delivered : int;
    }
      (** provenance certificate for one commit decision (forensics) *)
  | Skip_cert of {
      node : int;
      rule : string;
      sched : string;
      wave : int;
      leader_round : int;
      leader_source : int;
      reason : string;
          (** why no commit was legal when the wave was processed:
              "leader-absent" (no leader vertex in the DAG) or
              "under-supported" (support below the rule's quorum) *)
      support : int list;
          (** sources of the last-round vertices that {e did} have a
              strong path to the leader (empty when absent) *)
      quorum : int;
    }
      (** provenance certificate for one skip decision. A wave skipped
          at its own time can still be recovered later by a chained
          {!Commit_cert} for the same wave (chain-back found a strong
          path after all); a skip with no later commit is final. *)
  | A_deliver of { node : int; round : int; source : int }
      (** the atomic-broadcast output upcall *)
  | Sync_retry of { node : int; attempt : int; from_round : int }
      (** a restarted node (re)broadcast a catch-up request for rounds
          [>= from_round]; [attempt] counts from 1 across the harness's
          exponential-backoff schedule *)
  | Sync_gave_up of { node : int; attempts : int }
      (** the catch-up retry budget ran out before the node observed
          itself back at the fleet frontier — stalled catch-up is now
          visible instead of silent *)
  | Sync_reject of {
      node : int;
      src : int;
      round : int;
      source : int;
      reason : string;
    }
      (** [node] refused a sync-response vertex claimed for
          [(round, source)] served by peer [src]. Reasons: "decode"
          (payload failed the vertex codec), "invalid" (structural
          validation failed), "envelope" (claimed round/source out of
          range), "conflict" (a different vertex for the same slot is
          already in the DAG or pending with other evidence) *)
  | Sync_unavailable of { node : int }
      (** [request_sync] was called on a node built without a sync
          network — previously a silent no-op *)
  | Attack_event of {
      node : int;
      strategy : string;
      round : int;
      info : string;
    }
      (** an installed Byzantine attacker acted: [strategy] names the
          behavior ("equivocate", "withhold", "disclose", "grind",
          "bias", "lying-sync", "fuzz") and [info] carries the
          attacker-attributed detail (victim sets, variant digests,
          timing decisions) for forensics stories *)
  | Engine_sample of { executed : int; pending : int }
      (** periodic simulator health sample (event count, queue depth) *)
  | Health of { check : string; ok : bool; value : float; threshold : float }
      (** an SLO health check changed state at the monitor's sample
          tick: [check] is the check's name, [value] the measured
          quantity (a windowed rate, p99, stall gap, or growth slope)
          and [threshold] the declared bound it is compared against.
          Emitted on transitions only, so a trace shows exactly when a
          run went unhealthy and when it recovered. *)
  | Tx_submitted of { node : int; accepted : bool }
      (** a client transaction entered (or was rejected by) [node]'s
          mempool; [accepted = false] means dedup or backpressure turned
          it away. Emitted by the workload driver only when tracing. *)
  | Block_assembled of { node : int; round : int; txs : int }
      (** [node] drained [txs] transactions from its mempool into the
          block of its round-[round] vertex (Algorithm 2 line 17's
          proposal payload). With the built-in FIFO mempool, the [txs]
          oldest accepted-and-unretired submissions of [node] are the
          ones drained — which is what lets the critical-path tracer
          attribute per-transaction mempool dwell from the event stream
          alone. *)

type event = { seq : int; time : float; cause : int; kind : kind }
(** [cause] is the correlation id of the message whose delivery handler
    emitted this event, or [-1] when the event was emitted outside any
    handler (or before correlation ids existed). It is stamped
    automatically by {!emit} from the ambient cause installed by
    {!with_cause} — individual call sites never thread it by hand. *)

type t

val default_capacity : int
(** 65536 events. *)

val create : ?capacity:int -> unit -> t
(** The clock initially reads 0.0 everywhere; whoever owns the
    simulation engine calls {!set_clock} (the harness does it in
    [Runner.build]).
    @raise Invalid_argument on a non-positive capacity. *)

val set_clock : t -> (unit -> float) -> unit
(** Install the virtual-time source events are stamped with. *)

val add_sink : t -> (event -> unit) -> unit
(** Register a live consumer called on every {!emit}, after the event is
    written to the ring — the hook a streaming analyzer uses to see the
    {e whole} event stream even when it is longer than the ring (the
    ring then only bounds what {!events} can replay, not what sinks
    observed). Sinks run in registration order, must not emit into the
    same tracer, and see events exactly once. With no sinks registered,
    [emit] costs what it did before this hook existed. *)

val emit : t -> kind -> unit

val fresh_id : t -> int
(** Allocate the next logical-message correlation id (monotone from 0).
    The transport allocates one per {e logical} message: retransmit
    copies of a frame reuse the original's id. *)

val with_cause : t -> int -> (unit -> 'a) -> 'a
(** [with_cause t id f] runs [f] with the ambient cause set to [id];
    every {!emit} inside [f]'s dynamic extent is stamped with
    [cause = id]. The previous ambient cause is restored on exit, also
    on exceptions, so nested deliveries attribute correctly. *)

val current_cause : t -> int
(** The ambient cause {!emit} would stamp right now ([-1] at top
    level). *)

val events : t -> event list
(** Retained events, oldest first. *)

val emitted : t -> int
(** Total events ever emitted (including overwritten ones). *)

val dropped : t -> int
(** Events lost to ring-buffer wrap: [max 0 (emitted - capacity)]. *)

val capacity : t -> int

val occupancy : t -> int
(** Events currently retained in the ring:
    [min emitted capacity]. *)

val node_of : kind -> int option
(** The process a kind is attributed to ([None] for engine samples). *)

val kind_label : kind -> string
(** Stable short name, identical to the JSONL "ev" field. *)

val describe_kind : kind -> string
(** One-line human rendering (the timeline's event column). *)

val event_to_json : event -> Stdx.Json.t

val event_of_json : Stdx.Json.t -> (event, string) result
(** Inverse of {!event_to_json}. *)

val to_jsonl : t -> string
(** One compact JSON object per line, oldest first. *)

val events_of_jsonl : string -> (event list, string) result
(** Parse a JSONL dump (blank lines ignored); error names the line. *)

val render_events : ?max_lanes:int -> event list -> string
(** ASCII timeline: one row per event with its virtual time, sequence
    number, a lane column marking the process involved ([max_lanes]
    caps the lane width, default 16), and the human description. *)

val render_timeline : ?max_lanes:int -> ?limit:int -> t -> string
(** {!render_events} over the retained events (newest [limit] if given),
    prefixed with an emitted/retained/dropped summary line. *)
