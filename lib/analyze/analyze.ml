type config = {
  wave_length : int;
  rule_name : string;
  round_robin_n : int option;
  waves_bound : float;
  f : int option;
  byzantine : int list;
  observer : int option;
  stall_factor : float;
  slow_wave_factor : float;
  skip_streak : int;
  lossy_link_factor : float;
  lossy_link_min : int;
}

let default_config =
  { wave_length = 4;
    rule_name = "dagrider";
    round_robin_n = None;
    waves_bound = 1.5;
    f = None;
    byzantine = [];
    observer = None;
    stall_factor = 8.0;
    slow_wave_factor = 4.0;
    skip_streak = 3;
    lossy_link_factor = 4.0;
    lossy_link_min = 20 }

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p99 : float;
  s_max : float;
}

type wave_outcome =
  | Committed_direct
  | Committed_chained of int
  | Skipped of string
  | Unresolved

type wave_record = {
  w_wave : int;
  w_leader : int option;
  w_elected_at : float option;
  w_resolution : float option;
  w_outcome : wave_outcome;
  w_committed_at : float option;
  w_delivered : int;
  w_running_mean : float;
}

type anomaly =
  | Round_stall of {
      node : int;
      round : int;
      at : float;
      gap : float;
      median : float;
    }
  | Commit_stall of {
      node : int;
      after_wave : int;
      at : float;
      gap : float;
      median : float;
    }
  | Quorum_starvation of {
      node : int;
      round : int;
      stuck_for : float;
      have : int;
      need : int;
    }
  | Skip_streak of { node : int; first_wave : int; length : int }
  | Slow_wave of { wave : int; took : float; median : float }
  | Lossy_link of {
      src : int;
      dst : int;
      retransmits : int;
      gave_up : int;
      median : float;
    }
  | Attacker_active of { node : int; strategy : string; actions : int }
  | Sync_rejections of { node : int; count : int; reasons : string list }

let describe_anomaly = function
  | Round_stall { node; round; at; gap; median } ->
    Printf.sprintf
      "round stall: p%d entered round %d at t=%.2f after a %.2f-unit gap \
       (median %.2f)"
      node round at gap median
  | Commit_stall { node; after_wave; at; gap; median } ->
    Printf.sprintf
      "commit stall: p%d went %.2f units without a direct commit after \
       wave %d (until t=%.2f; median gap %.2f)"
      node gap after_wave at median
  | Quorum_starvation { node; round; stuck_for; have; need } ->
    Printf.sprintf
      "quorum starvation: p%d stuck in round %d for the last %.2f units \
       with %d/%d round vertices"
      node round stuck_for have need
  | Skip_streak { node; first_wave; length } ->
    Printf.sprintf "skip streak: p%d skipped %d consecutive waves from wave %d"
      node length first_wave
  | Slow_wave { wave; took; median } ->
    Printf.sprintf
      "slow wave: wave %d took %.2f units from first coin share to \
       election (median %.2f)"
      wave took median
  | Lossy_link { src; dst; retransmits; gave_up; median } ->
    Printf.sprintf
      "lossy link starving p%d: %d retransmits on p%d->p%d (median link \
       %.1f)%s"
      dst retransmits src dst median
      (if gave_up > 0 then
         Printf.sprintf ", %d frames abandoned after retry exhaustion" gave_up
       else "")
  | Attacker_active { node; strategy; actions } ->
    Printf.sprintf "attacker active: p%d ran %d %s action(s)" node actions
      strategy
  | Sync_rejections { node; count; reasons } ->
    Printf.sprintf
      "sync defense: p%d rejected %d catch-up vertex(es) (%s)" node count
      (String.concat ", " reasons)

type report = {
  r_processes : int;
  r_f : int;
  r_wave_length : int;
  r_rule : string;
  r_waves_bound : float;
  r_observer : int;
  r_events : int;
  r_truncated : bool;
  r_span : float * float;
  r_sends : int;
  r_send_bits : int;
  r_stages : (string * summary) list;
  r_incomplete_vertices : int;
  r_waves : wave_record list;
  r_waves_resolved : int;
  r_commits_direct : int;
  r_commits_chained : int;
  r_waves_skipped : int;
  r_waves_per_commit : float;
  r_claim6_ok : bool;
  r_rounds : (int * int) list;
  r_round_skew : summary;
  r_rbc_phases : (string * summary) list;
  r_ordered : int;
  r_chain_quality : Metrics.Chain_quality.report;
  r_chain_quality_bound : float;
  r_drops : (string * int) list;
  r_retransmits : int;
  r_corrupt_rejects : int;
  r_link_retransmits : ((int * int) * int) list;
  r_anomalies : anomaly list;
}

(* ---- accumulation ---- *)

(* the observer's ordering events, chronological once reversed *)
type ord_ev =
  | Oelect of { wave : int; leader : int; at : float }
  | Oskip of { wave : int; leader : int; at : float }
  | Ocommit of {
      wave : int;
      leader_source : int;
      direct : bool;
      delivered : int;
      at : float;
    }

type t = {
  mutable count : int;
  mutable first_seq : int; (* -1 until the first event *)
  mutable t_min : float;
  mutable t_max : float;
  mutable have_time : bool;
  mutable max_node : int;
  mutable sends : int;
  mutable send_bits : int;
  created : (int * int, float) Hashtbl.t; (* (round, source) -> time *)
  rbc_deliver : (int * int * int, float) Hashtbl.t;
      (* (node, origin, round) -> deliver time *)
  rbc_last : (int * int * int, string * float) Hashtbl.t;
  rbc_stats : (string, Stdx.Stats.t) Hashtbl.t; (* "echo->ready" -> durations *)
  inserted : (int * int * int, float) Hashtbl.t;
      (* (node, round, source) -> time *)
  advances : (int, (int * float) list ref) Hashtbl.t; (* node -> rev *)
  coin_first : (int, float) Hashtbl.t; (* wave -> first share out *)
  ord : (int, ord_ev list ref) Hashtbl.t; (* node -> rev *)
  last_commit : (int, float) Hashtbl.t;
  adeliv : (int, (int * int * float * float option) list ref) Hashtbl.t;
      (* node -> rev (round, source, at, attributed commit time) *)
  skip_certs : (int * int, string) Hashtbl.t;
      (* (node, wave) -> certificate skip reason (authoritative,
         replaces the insertion-table heuristic when present) *)
  drop_reasons : (string, int ref) Hashtbl.t;
  retrans_links : (int * int, int ref) Hashtbl.t; (* (src, dst) -> count *)
  giveup_links : (int * int, int ref) Hashtbl.t;
  mutable retransmit_events : int;
  mutable corrupt_rejects : int;
  attack_acts : (int * string, int ref) Hashtbl.t;
      (* (attacker, strategy) -> actions (attacker-attributed events) *)
  sync_rejects : (int, string list ref) Hashtbl.t;
      (* node -> rejection reasons, reverse-chronological *)
}

let create () =
  { count = 0;
    first_seq = -1;
    t_min = 0.0;
    t_max = 0.0;
    have_time = false;
    max_node = -1;
    sends = 0;
    send_bits = 0;
    created = Hashtbl.create 1024;
    rbc_deliver = Hashtbl.create 4096;
    rbc_last = Hashtbl.create 4096;
    rbc_stats = Hashtbl.create 16;
    inserted = Hashtbl.create 4096;
    advances = Hashtbl.create 16;
    coin_first = Hashtbl.create 256;
    ord = Hashtbl.create 16;
    last_commit = Hashtbl.create 16;
    adeliv = Hashtbl.create 16;
    skip_certs = Hashtbl.create 64;
    drop_reasons = Hashtbl.create 8;
    retrans_links = Hashtbl.create 64;
    giveup_links = Hashtbl.create 16;
    retransmit_events = 0;
    corrupt_rejects = 0;
    attack_acts = Hashtbl.create 8;
    sync_rejects = Hashtbl.create 8 }

let incr_cell tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.add tbl key (ref 1)

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some r -> r := v :: !r
  | None -> Hashtbl.add tbl key (ref [ v ])

let feed t (e : Trace.event) =
  let sp = Prof.enter "analyze.feed" in
  (try
  if t.first_seq < 0 then t.first_seq <- e.Trace.seq;
  t.count <- t.count + 1;
  let time = e.Trace.time in
  if not t.have_time then begin
    t.have_time <- true;
    t.t_min <- time;
    t.t_max <- time
  end
  else begin
    if time < t.t_min then t.t_min <- time;
    if time > t.t_max then t.t_max <- time
  end;
  let bump i = if i > t.max_node then t.max_node <- i in
  (match e.Trace.kind with
  | Trace.Send { src; dst; bits; _ } ->
    bump src;
    bump dst;
    t.sends <- t.sends + 1;
    t.send_bits <- t.send_bits + bits
  | Trace.Recv { src; dst; _ } ->
    bump src;
    bump dst
  | Trace.Rbc_phase { node; origin; round; phase } ->
    bump node;
    bump origin;
    let key = (node, origin, round) in
    (match Hashtbl.find_opt t.rbc_last key with
    | Some (prev, at) ->
      let label = prev ^ "->" ^ phase in
      let st =
        match Hashtbl.find_opt t.rbc_stats label with
        | Some st -> st
        | None ->
          let st = Stdx.Stats.create () in
          Hashtbl.add t.rbc_stats label st;
          st
      in
      Stdx.Stats.add st (time -. at)
    | None -> ());
    Hashtbl.replace t.rbc_last key (phase, time);
    if phase = "deliver" && not (Hashtbl.mem t.rbc_deliver key) then
      Hashtbl.add t.rbc_deliver key time
  | Trace.Vertex_created { node; round } ->
    bump node;
    if not (Hashtbl.mem t.created (round, node)) then
      Hashtbl.add t.created (round, node) time
  | Trace.Vertex_added { node; round; source } ->
    bump node;
    bump source;
    let key = (node, round, source) in
    if not (Hashtbl.mem t.inserted key) then Hashtbl.add t.inserted key time
  | Trace.Round_advanced { node; round } ->
    bump node;
    push t.advances node (round, time)
  | Trace.Coin_flip { node; wave } ->
    bump node;
    if not (Hashtbl.mem t.coin_first wave) then
      Hashtbl.add t.coin_first wave time
  | Trace.Leader_elected { node; wave; leader } ->
    bump node;
    bump leader;
    push t.ord node (Oelect { wave; leader; at = time })
  | Trace.Leader_skipped { node; wave; leader } ->
    bump node;
    bump leader;
    push t.ord node (Oskip { wave; leader; at = time })
  | Trace.Commit { node; wave; leader_source; direct; delivered; _ } ->
    bump node;
    bump leader_source;
    push t.ord node (Ocommit { wave; leader_source; direct; delivered; at = time });
    Hashtbl.replace t.last_commit node time
  | Trace.Commit_cert { node; leader_source; _ } ->
    (* the compact Commit event drives the wave records; the certificate
       adds nothing the analyzer aggregates (forensics consumes it) *)
    bump node;
    bump leader_source
  | Trace.Skip_cert { node; wave; leader_source; reason; _ } ->
    bump node;
    bump leader_source;
    if not (Hashtbl.mem t.skip_certs (node, wave)) then
      Hashtbl.add t.skip_certs (node, wave) reason
  | Trace.A_deliver { node; round; source } ->
    bump node;
    bump source;
    push t.adeliv node (round, source, time, Hashtbl.find_opt t.last_commit node)
  | Trace.Drop { src; dst; reason; _ } ->
    bump src;
    bump dst;
    incr_cell t.drop_reasons reason;
    if reason = "give-up" then incr_cell t.giveup_links (src, dst)
  | Trace.Retransmit { src; dst; _ } ->
    bump src;
    bump dst;
    t.retransmit_events <- t.retransmit_events + 1;
    incr_cell t.retrans_links (src, dst)
  | Trace.Corrupt_reject { src; dst; _ } ->
    bump src;
    bump dst;
    t.corrupt_rejects <- t.corrupt_rejects + 1
  | Trace.Sync_retry { node; _ } | Trace.Sync_gave_up { node; _ }
  | Trace.Sync_unavailable { node } ->
    bump node
  | Trace.Sync_reject { node; reason; _ } ->
    bump node;
    push t.sync_rejects node reason
  | Trace.Attack_event { node; strategy; _ } ->
    bump node;
    incr_cell t.attack_acts (node, strategy)
  | Trace.Engine_sample _ -> ()
  | Trace.Health _ | Trace.Tx_submitted _ | Trace.Block_assembled _ ->
    (* monitor SLO transitions and workload lifecycle: the monitor and
       the critical-path tracer own their aggregation; the analyzer
       just passes them through *)
    ())
   with exn -> Prof.leave_reraise sp exn);
  Prof.leave sp

(* ---- finalize ---- *)

let empty_summary = { s_count = 0; s_mean = 0.0; s_p50 = 0.0; s_p99 = 0.0; s_max = 0.0 }

let summary_of_stats st =
  if Stdx.Stats.count st = 0 then empty_summary
  else
    { s_count = Stdx.Stats.count st;
      s_mean = Stdx.Stats.mean st;
      s_p50 = Stdx.Stats.percentile st 50.0;
      s_p99 = Stdx.Stats.percentile st 99.0;
      s_max = Stdx.Stats.max_value st }

let median xs =
  let st = Stdx.Stats.create () in
  List.iter (Stdx.Stats.add st) xs;
  Stdx.Stats.percentile st 50.0

let chronological tbl key =
  match Hashtbl.find_opt tbl key with Some r -> List.rev !r | None -> []

(* gaps need a meaningful median before a multiple of it means anything,
   and tiny absolute gaps are scheduling noise whatever the ratio *)
let min_gaps_for_median = 4
let min_flagged_gap = 0.5

let finalize ?(config = default_config) t =
  let processes = max 1 (t.max_node + 1) in
  let f =
    match config.f with Some f -> f | None -> (processes - 1) / 3
  in
  let wave_length = max 1 config.wave_length in
  let span = if t.have_time then (t.t_min, t.t_max) else (0.0, 0.0) in
  let horizon = snd span in
  (* observer: longest a_deliver log, ties to the lowest id *)
  let observer =
    match config.observer with
    | Some o -> o
    | None ->
      let best = ref 0 and best_len = ref (-1) in
      for i = 0 to processes - 1 do
        let len = List.length (chronological t.adeliv i) in
        if len > !best_len then begin
          best := i;
          best_len := len
        end
      done;
      !best
  in
  let leader_round w = ((w - 1) * wave_length) + 1 in
  (* ---- wave records from the observer's ordering events ---- *)
  let obs_ord = chronological t.ord observer in
  let elected : (int, int * float) Hashtbl.t = Hashtbl.create 256 in
  let skipped : (int, int * float) Hashtbl.t = Hashtbl.create 64 in
  let committed : (int, float * bool * int * int) Hashtbl.t =
    (* wave -> (at, direct, delivered, resolver) *)
    Hashtbl.create 256
  in
  let pending_chained = ref [] in
  List.iter
    (fun ev ->
      match ev with
      | Oelect { wave; leader; at } ->
        (* under a round-robin rule the election events in the stream
           are coin-instance resolutions on the coin cadence — their
           numbering is unrelated to ordering waves, so they must not
           be folded into the wave records *)
        if config.round_robin_n = None && not (Hashtbl.mem elected wave) then
          Hashtbl.add elected wave (leader, at)
      | Oskip { wave; leader; at } ->
        if not (Hashtbl.mem skipped wave) then Hashtbl.add skipped wave (leader, at)
      | Ocommit { wave; direct; delivered; at; _ } ->
        if direct then begin
          (* the anchor: chained commits emitted just before it belong
             to this wave's backward chain (Algorithm 3 lines 38-43) *)
          Hashtbl.replace committed wave (at, true, delivered, wave);
          List.iter
            (fun (w, a, d) -> Hashtbl.replace committed w (a, false, d, wave))
            !pending_chained;
          pending_chained := []
        end
        else pending_chained := (wave, at, delivered) :: !pending_chained)
    obs_ord;
  (* chained commits with no following anchor in the stream (truncated
     tail): attribute them to themselves *)
  List.iter
    (fun (w, a, d) -> Hashtbl.replace committed w (a, false, d, w))
    !pending_chained;
  let wave_ids =
    let seen = Hashtbl.create 256 in
    let note w = if not (Hashtbl.mem seen w) then Hashtbl.add seen w () in
    Hashtbl.iter (fun w _ -> note w) elected;
    Hashtbl.iter (fun w _ -> note w) skipped;
    Hashtbl.iter (fun w _ -> note w) committed;
    (* coin instances number ordering waves only on coin-scheduled
       rules; under round-robin they run on a separate cadence *)
    if config.round_robin_n = None then
      Hashtbl.iter (fun w _ -> note w) t.coin_first;
    List.sort compare (Hashtbl.fold (fun w () acc -> w :: acc) seen [])
  in
  let processed = ref 0 and direct_commits = ref 0 in
  let chained_commits = ref 0 and skipped_final = ref 0 in
  let waves =
    List.map
      (fun w ->
        let leader_elect = Hashtbl.find_opt elected w in
        let skip = Hashtbl.find_opt skipped w in
        let commit = Hashtbl.find_opt committed w in
        if skip <> None || commit <> None then incr processed;
        let outcome, committed_at, delivered =
          match commit with
          | Some (at, true, delivered, _) ->
            incr direct_commits;
            (Committed_direct, Some at, delivered)
          | Some (at, false, delivered, resolver) ->
            incr chained_commits;
            (Committed_chained resolver, Some at, delivered)
          | None -> (
            match skip with
            | Some (leader, at) ->
              incr skipped_final;
              (* the skip certificate carries the authoritative reason;
                 traces predating certificates fall back to the
                 insertion-table heuristic *)
              let reason =
                match Hashtbl.find_opt t.skip_certs (observer, w) with
                | Some "leader-absent" -> "leader vertex absent"
                | Some "under-supported" -> "leader under-supported"
                | Some other -> other
                | None -> (
                  match
                    Hashtbl.find_opt t.inserted (observer, leader_round w, leader)
                  with
                  | Some ins when ins <= at -> "leader under-supported"
                  | _ -> "leader vertex absent")
              in
              (Skipped reason, None, 0)
            | None -> (Unresolved, None, 0))
        in
        let leader =
          match (leader_elect, skip, config.round_robin_n) with
          | Some (l, _), _, _ -> Some l
          | None, Some (l, _), _ -> Some l
          | None, None, Some n ->
            (* round-robin leaders are implicit in the schedule *)
            Some ((w - 1) mod n)
          | None, None, None -> (
            match commit with
            | Some _ -> None (* leader_source is the vertex, same thing *)
            | None -> None)
        in
        let elected_at = Option.map snd leader_elect in
        let resolution =
          match (Hashtbl.find_opt t.coin_first w, elected_at) with
          | Some c, Some e when e >= c -> Some (e -. c)
          | _ -> None
        in
        let running_mean =
          if !direct_commits = 0 then
            if !processed = 0 then 0.0 else infinity
          else float_of_int !processed /. float_of_int !direct_commits
        in
        { w_wave = w;
          w_leader = leader;
          w_elected_at = elected_at;
          w_resolution = resolution;
          w_outcome = outcome;
          w_committed_at = committed_at;
          w_delivered = delivered;
          w_running_mean = running_mean })
      wave_ids
  in
  let waves_per_commit =
    if !direct_commits = 0 then if !processed = 0 then 0.0 else infinity
    else float_of_int !processed /. float_of_int !direct_commits
  in
  (* ---- commit-latency breakdown at the observer ---- *)
  let obs_adeliv = chronological t.adeliv observer in
  let st_rbc = Stdx.Stats.create () in
  let st_insert = Stdx.Stats.create () in
  let st_commit = Stdx.Stats.create () in
  let st_order = Stdx.Stats.create () in
  let st_total = Stdx.Stats.create () in
  let incomplete = ref 0 in
  List.iter
    (fun (round, source, at, commit_at) ->
      match
        ( Hashtbl.find_opt t.created (round, source),
          Hashtbl.find_opt t.rbc_deliver (observer, source, round),
          Hashtbl.find_opt t.inserted (observer, round, source),
          commit_at )
      with
      | Some created, Some rbc, Some ins, Some commit ->
        Stdx.Stats.add st_rbc (rbc -. created);
        Stdx.Stats.add st_insert (ins -. rbc);
        Stdx.Stats.add st_commit (commit -. ins);
        Stdx.Stats.add st_order (at -. commit);
        Stdx.Stats.add st_total (at -. created)
      | _ -> incr incomplete)
    obs_adeliv;
  let stages =
    [ ("create->rbc_deliver", summary_of_stats st_rbc);
      ("rbc_deliver->dag_insert", summary_of_stats st_insert);
      ("dag_insert->commit", summary_of_stats st_commit);
      ("commit->a_deliver", summary_of_stats st_order);
      ("create->a_deliver (total)", summary_of_stats st_total) ]
  in
  (* ---- per-process rounds and skew ---- *)
  let rounds =
    List.init processes (fun i ->
        let top =
          List.fold_left (fun acc (r, _) -> max acc r) 0 (chronological t.advances i)
        in
        (i, top))
  in
  let round_skew =
    let entries : (int, float * float) Hashtbl.t = Hashtbl.create 1024 in
    for i = 0 to processes - 1 do
      List.iter
        (fun (r, at) ->
          match Hashtbl.find_opt entries r with
          | None -> Hashtbl.add entries r (at, at)
          | Some (lo, hi) -> Hashtbl.replace entries r (min lo at, max hi at))
        (chronological t.advances i)
    done;
    let st = Stdx.Stats.create () in
    Hashtbl.fold (fun r (lo, hi) acc -> (r, hi -. lo) :: acc) entries []
    |> List.sort compare
    |> List.iter (fun (_, skew) -> Stdx.Stats.add st skew);
    summary_of_stats st
  in
  let rbc_phases =
    Hashtbl.fold (fun label st acc -> (label, summary_of_stats st) :: acc) t.rbc_stats []
    |> List.sort compare
  in
  (* ---- chain quality ---- *)
  let sources = List.map (fun (_, s, _, _) -> s) obs_adeliv in
  let correct i = not (List.mem i config.byzantine) in
  let chain_quality = Metrics.Chain_quality.audit ~f ~correct ~sources in
  let bound = float_of_int (f + 1) /. float_of_int ((2 * f) + 1) in
  (* ---- anomalies ---- *)
  let anomalies = ref [] in
  let add a = anomalies := a :: !anomalies in
  (* round stalls + horizon starvation, per process *)
  for node = 0 to processes - 1 do
    let adv = chronological t.advances node in
    let gaps =
      let rec go acc = function
        | (_, a) :: ((r2, b) :: _ as rest) -> go ((r2, b, b -. a) :: acc) rest
        | _ -> List.rev acc
      in
      go [] adv
    in
    if List.length gaps >= min_gaps_for_median then begin
      let med = median (List.map (fun (_, _, g) -> g) gaps) in
      let threshold = max (config.stall_factor *. med) min_flagged_gap in
      List.iter
        (fun (round, at, gap) ->
          if gap > threshold then add (Round_stall { node; round; at; gap; median = med }))
        gaps;
      match List.rev adv with
      | (last_round, last_at) :: _ ->
        let end_gap = horizon -. last_at in
        if end_gap > threshold then begin
          let have =
            Hashtbl.fold
              (fun (n, r, _) _ acc ->
                if n = node && r = last_round then acc + 1 else acc)
              t.inserted 0
          in
          add
            (Quorum_starvation
               { node;
                 round = last_round;
                 stuck_for = end_gap;
                 have;
                 need = (2 * f) + 1 })
        end
      | [] -> ()
    end
  done;
  (* commit stalls at the observer (direct commits anchor the clock) *)
  let commit_times =
    List.filter_map
      (function Ocommit { wave; direct = true; at; _ } -> Some (wave, at) | _ -> None)
      obs_ord
  in
  (match commit_times with
  | [] -> ()
  | (first_wave, _) :: _ ->
    ignore first_wave;
    let gaps =
      let rec go acc = function
        | (w1, a) :: ((_, b) :: _ as rest) -> go ((w1, b, b -. a) :: acc) rest
        | _ -> List.rev acc
      in
      go [] commit_times
    in
    if List.length gaps >= min_gaps_for_median then begin
      let med = median (List.map (fun (_, _, g) -> g) gaps) in
      let threshold = max (config.stall_factor *. med) min_flagged_gap in
      List.iter
        (fun (after_wave, at, gap) ->
          if gap > threshold then
            add (Commit_stall { node = observer; after_wave; at; gap; median = med }))
        gaps;
      let last_wave, last_at = List.nth commit_times (List.length commit_times - 1) in
      let end_gap = horizon -. last_at in
      if end_gap > threshold then
        add
          (Commit_stall
             { node = observer;
               after_wave = last_wave;
               at = horizon;
               gap = end_gap;
               median = med })
    end);
  (* skip streaks at the observer *)
  let streak = ref 0 and streak_start = ref 0 in
  let flush_streak () =
    if !streak >= config.skip_streak then
      add (Skip_streak { node = observer; first_wave = !streak_start; length = !streak });
    streak := 0
  in
  List.iter
    (fun ev ->
      match ev with
      | Oskip { wave; _ } ->
        if !streak = 0 then streak_start := wave;
        incr streak
      | Ocommit _ -> flush_streak ()
      | Oelect _ -> ())
    obs_ord;
  flush_streak ();
  (* slow waves: coin release to observer election *)
  let resolutions =
    List.filter_map (fun wr -> Option.map (fun d -> (wr.w_wave, d)) wr.w_resolution) waves
  in
  if List.length resolutions >= min_gaps_for_median then begin
    let med = median (List.map snd resolutions) in
    let threshold = max (config.slow_wave_factor *. med) min_flagged_gap in
    List.iter
      (fun (wave, took) ->
        if took > threshold then add (Slow_wave { wave; took; median = med }))
      resolutions
  end;
  (* ---- loss diagnostics ---- *)
  let drops =
    Hashtbl.fold (fun reason r acc -> (reason, !r) :: acc) t.drop_reasons []
    |> List.sort compare
  in
  let link_retransmits =
    Hashtbl.fold (fun link r acc -> (link, !r) :: acc) t.retrans_links []
    |> List.sort (fun (l1, c1) (l2, c2) ->
           match compare c2 c1 with 0 -> compare l1 l2 | o -> o)
  in
  (* a lossy link starving its destination: uniform loss keeps every
     link near the median, so only links far above it (or links that
     exhausted a retry budget) are flagged. Links appearing only in the
     give-up table still count — their retransmissions may have fallen
     outside the ring buffer's retained window *)
  let suspect_links =
    Hashtbl.fold
      (fun link r acc ->
        if Hashtbl.mem t.retrans_links link then acc else (link, !r) :: acc)
      t.giveup_links []
    |> List.map (fun (link, _) -> (link, 0))
    |> List.append link_retransmits
  in
  (if suspect_links <> [] then
     let med =
       median (List.map (fun (_, c) -> float_of_int c) link_retransmits)
     in
     let threshold =
       max (config.lossy_link_factor *. med) (float_of_int config.lossy_link_min)
     in
     List.iter
       (fun ((src, dst), retransmits) ->
         let gave_up =
           match Hashtbl.find_opt t.giveup_links (src, dst) with
           | Some r -> !r
           | None -> 0
         in
         if gave_up > 0 || float_of_int retransmits > threshold then
           add (Lossy_link { src; dst; retransmits; gave_up; median = med }))
       suspect_links);
  (* attacker-attributed activity and sync-defense rejections: always
     flagged when present, so an attacked trace names its adversary *)
  Hashtbl.fold (fun key r acc -> (key, !r) :: acc) t.attack_acts []
  |> List.sort compare
  |> List.iter (fun ((node, strategy), actions) ->
         add (Attacker_active { node; strategy; actions }));
  Hashtbl.fold (fun node r acc -> (node, !r) :: acc) t.sync_rejects []
  |> List.sort compare
  |> List.iter (fun (node, reasons) ->
         let distinct = List.sort_uniq compare reasons in
         add
           (Sync_rejections
              { node; count = List.length reasons; reasons = distinct }));
  { r_processes = processes;
    r_f = f;
    r_wave_length = wave_length;
    r_rule = config.rule_name;
    r_waves_bound = config.waves_bound;
    r_observer = observer;
    r_events = t.count;
    r_truncated = t.first_seq > 0;
    r_span = span;
    r_sends = t.sends;
    r_send_bits = t.send_bits;
    r_stages = stages;
    r_incomplete_vertices = !incomplete;
    r_waves = waves;
    r_waves_resolved =
      (* coin rules: waves whose leader the observer elected; round
         robin: every leader is predefined, so count processed waves *)
      (match config.round_robin_n with
      | None -> Hashtbl.length elected
      | Some _ -> !processed);
    r_commits_direct = !direct_commits;
    r_commits_chained = !chained_commits;
    r_waves_skipped = !skipped_final;
    r_waves_per_commit = waves_per_commit;
    r_claim6_ok = waves_per_commit <= config.waves_bound;
    r_rounds = rounds;
    r_round_skew = round_skew;
    r_rbc_phases = rbc_phases;
    r_ordered = List.length obs_adeliv;
    r_chain_quality = chain_quality;
    r_chain_quality_bound = bound;
    r_drops = drops;
    r_retransmits = t.retransmit_events;
    r_corrupt_rejects = t.corrupt_rejects;
    r_link_retransmits = link_retransmits;
    r_anomalies = List.rev !anomalies }

let analyze ?config events =
  let t = create () in
  List.iter (feed t) events;
  finalize ?config t

let of_tracer ?config tracer = analyze ?config (Trace.events tracer)

let of_jsonl_file ?config path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
    match Trace.events_of_jsonl text with
    | Error e -> Error e
    | Ok events -> Ok (analyze ?config events))

(* ---- output ---- *)

let summary_to_json s =
  Stdx.Json.Obj
    [ ("count", Stdx.Json.Int s.s_count);
      ("mean", Stdx.Json.Float s.s_mean);
      ("p50", Stdx.Json.Float s.s_p50);
      ("p99", Stdx.Json.Float s.s_p99);
      ("max", Stdx.Json.Float s.s_max) ]

let outcome_label = function
  | Committed_direct -> "committed"
  | Committed_chained _ -> "committed-chained"
  | Skipped _ -> "skipped"
  | Unresolved -> "unresolved"

let wave_to_json w =
  let opt_f = function None -> Stdx.Json.Null | Some v -> Stdx.Json.Float v in
  let extra =
    match w.w_outcome with
    | Committed_chained by -> [ ("resolved_by", Stdx.Json.Int by) ]
    | Skipped reason -> [ ("skip_reason", Stdx.Json.String reason) ]
    | Committed_direct | Unresolved -> []
  in
  Stdx.Json.Obj
    ([ ("wave", Stdx.Json.Int w.w_wave);
       ( "leader",
         match w.w_leader with None -> Stdx.Json.Null | Some l -> Stdx.Json.Int l );
       ("outcome", Stdx.Json.String (outcome_label w.w_outcome));
       ("elected_at", opt_f w.w_elected_at);
       ("resolution", opt_f w.w_resolution);
       ("committed_at", opt_f w.w_committed_at);
       ("delivered", Stdx.Json.Int w.w_delivered);
       ("running_waves_per_commit", Stdx.Json.Float w.w_running_mean) ]
    @ extra)

let anomaly_to_json a =
  let obj kind fields =
    Stdx.Json.Obj
      (("kind", Stdx.Json.String kind)
      :: fields
      @ [ ("text", Stdx.Json.String (describe_anomaly a)) ])
  in
  let i k v = (k, Stdx.Json.Int v) in
  let fl k v = (k, Stdx.Json.Float v) in
  match a with
  | Round_stall { node; round; at; gap; median } ->
    obj "round-stall" [ i "node" node; i "round" round; fl "at" at; fl "gap" gap; fl "median" median ]
  | Commit_stall { node; after_wave; at; gap; median } ->
    obj "commit-stall"
      [ i "node" node; i "after_wave" after_wave; fl "at" at; fl "gap" gap; fl "median" median ]
  | Quorum_starvation { node; round; stuck_for; have; need } ->
    obj "quorum-starvation"
      [ i "node" node; i "round" round; fl "stuck_for" stuck_for; i "have" have; i "need" need ]
  | Skip_streak { node; first_wave; length } ->
    obj "skip-streak" [ i "node" node; i "first_wave" first_wave; i "length" length ]
  | Slow_wave { wave; took; median } ->
    obj "slow-wave" [ i "wave" wave; fl "took" took; fl "median" median ]
  | Lossy_link { src; dst; retransmits; gave_up; median } ->
    obj "lossy-link"
      [ i "src" src;
        i "dst" dst;
        i "retransmits" retransmits;
        i "gave_up" gave_up;
        fl "median" median ]
  | Attacker_active { node; strategy; actions } ->
    obj "attacker-active"
      [ i "node" node; ("strategy", Stdx.Json.String strategy);
        i "actions" actions ]
  | Sync_rejections { node; count; reasons } ->
    obj "sync-rejections"
      [ i "node" node; i "count" count;
        ( "reasons",
          Stdx.Json.List (List.map (fun r -> Stdx.Json.String r) reasons) ) ]

let report_to_json r =
  let lo, hi = r.r_span in
  Stdx.Json.Obj
    [ ("processes", Stdx.Json.Int r.r_processes);
      ("f", Stdx.Json.Int r.r_f);
      ("wave_length", Stdx.Json.Int r.r_wave_length);
      ("rule", Stdx.Json.String r.r_rule);
      ("rule_name", Stdx.Json.String r.r_rule);
      ("waves_bound", Stdx.Json.Float r.r_waves_bound);
      ("observer", Stdx.Json.Int r.r_observer);
      ("events", Stdx.Json.Int r.r_events);
      ("truncated", Stdx.Json.Bool r.r_truncated);
      ("span", Stdx.Json.List [ Stdx.Json.Float lo; Stdx.Json.Float hi ]);
      ("sends", Stdx.Json.Int r.r_sends);
      ("send_bits", Stdx.Json.Int r.r_send_bits);
      ( "stages",
        Stdx.Json.Obj (List.map (fun (k, s) -> (k, summary_to_json s)) r.r_stages) );
      ("incomplete_vertices", Stdx.Json.Int r.r_incomplete_vertices);
      ("waves", Stdx.Json.List (List.map wave_to_json r.r_waves));
      ("waves_resolved", Stdx.Json.Int r.r_waves_resolved);
      ("commits_direct", Stdx.Json.Int r.r_commits_direct);
      ("commits_chained", Stdx.Json.Int r.r_commits_chained);
      ("waves_skipped", Stdx.Json.Int r.r_waves_skipped);
      ("waves_per_commit", Stdx.Json.Float r.r_waves_per_commit);
      ("claim6_bound", Stdx.Json.Float r.r_waves_bound);
      ("claim6_ok", Stdx.Json.Bool r.r_claim6_ok);
      ( "rounds",
        Stdx.Json.Obj
          (List.map
             (fun (i, top) -> (Printf.sprintf "p%d" i, Stdx.Json.Int top))
             r.r_rounds) );
      ("round_skew", summary_to_json r.r_round_skew);
      ( "rbc_phases",
        Stdx.Json.Obj (List.map (fun (k, s) -> (k, summary_to_json s)) r.r_rbc_phases) );
      ("ordered", Stdx.Json.Int r.r_ordered);
      ( "chain_quality",
        Stdx.Json.Obj
          [ ("total", Stdx.Json.Int r.r_chain_quality.Metrics.Chain_quality.total);
            ( "correct_entries",
              Stdx.Json.Int r.r_chain_quality.Metrics.Chain_quality.correct_entries );
            ( "worst_prefix_len",
              Stdx.Json.Int r.r_chain_quality.Metrics.Chain_quality.worst_prefix_len );
            ( "worst_prefix_ratio",
              Stdx.Json.Float r.r_chain_quality.Metrics.Chain_quality.worst_prefix_ratio );
            ("bound", Stdx.Json.Float r.r_chain_quality_bound);
            ("holds", Stdx.Json.Bool r.r_chain_quality.Metrics.Chain_quality.holds) ] );
      ( "drops",
        Stdx.Json.Obj
          (List.map (fun (reason, c) -> (reason, Stdx.Json.Int c)) r.r_drops) );
      ("retransmits", Stdx.Json.Int r.r_retransmits);
      ("corrupt_rejects", Stdx.Json.Int r.r_corrupt_rejects);
      ( "link_retransmits",
        Stdx.Json.List
          (List.map
             (fun ((src, dst), c) ->
               Stdx.Json.Obj
                 [ ("src", Stdx.Json.Int src);
                   ("dst", Stdx.Json.Int dst);
                   ("count", Stdx.Json.Int c) ])
             r.r_link_retransmits) );
      ("anomalies", Stdx.Json.List (List.map anomaly_to_json r.r_anomalies)) ]

let fmt_summary s =
  if s.s_count = 0 then "(no samples)"
  else
    Printf.sprintf "n=%-6d mean=%-8.3f p50=%-8.3f p99=%-8.3f max=%.3f" s.s_count
      s.s_mean s.s_p50 s.s_p99 s.s_max

let render_anomalies r =
  match r.r_anomalies with
  | [] -> "anomalies: none detected\n"
  | anomalies ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf "anomalies: %d flagged\n" (List.length anomalies));
    List.iter
      (fun a -> Buffer.add_string buf ("  - " ^ describe_anomaly a ^ "\n"))
      anomalies;
    Buffer.contents buf

let render ?(max_waves = 12) r =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let lo, hi = r.r_span in
  add "== protocol analysis ==\n";
  add
    "processes: %d (f=%d, rule %s, wave length %d); observer: p%d; \
     events: %d%s; span: %.2f..%.2f\n"
    r.r_processes r.r_f r.r_rule r.r_wave_length r.r_observer r.r_events
    (if r.r_truncated then " (TRUNCATED: stream lost its head)" else "")
    lo hi;
  add "sends: %d (%d bits); ordered at observer: %d vertices\n\n" r.r_sends
    r.r_send_bits r.r_ordered;
  add "commit-latency breakdown (time units per ordered vertex):\n";
  List.iter (fun (label, s) -> add "  %-26s %s\n" label (fmt_summary s)) r.r_stages;
  if r.r_incomplete_vertices > 0 then
    add "  (%d vertices lacked a stage event and were skipped)\n"
      r.r_incomplete_vertices;
  add "\nwaves: %d resolved; %d direct commits, %d chained, %d skipped\n"
    r.r_waves_resolved r.r_commits_direct r.r_commits_chained r.r_waves_skipped;
  add "waves per commit: %.3f (%s bound %.2f: %s)\n" r.r_waves_per_commit
    (if r.r_rule = "dagrider" then "Claim 6" else r.r_rule)
    r.r_waves_bound
    (if r.r_claim6_ok then "ok" else "ABOVE BOUND");
  let shown =
    let total = List.length r.r_waves in
    if total <= max_waves then r.r_waves
    else List.filteri (fun i _ -> i >= total - max_waves) r.r_waves
  in
  if shown <> [] then begin
    add "  wave | leader | outcome            | resolution | delivered | running w/c\n";
    List.iter
      (fun w ->
        let outcome =
          match w.w_outcome with
          | Committed_direct -> "committed"
          | Committed_chained by -> Printf.sprintf "chained (by w%d)" by
          | Skipped reason -> "skipped: " ^ reason
          | Unresolved -> "unresolved"
        in
        add "  %4d | %-6s | %-18s | %10s | %9d | %.3f\n" w.w_wave
          (match w.w_leader with Some l -> Printf.sprintf "p%d" l | None -> "?")
          outcome
          (match w.w_resolution with
          | Some d -> Printf.sprintf "%.3f" d
          | None -> "-")
          w.w_delivered w.w_running_mean)
      shown
  end;
  add "\nround progress: %s\n"
    (String.concat ", "
       (List.map (fun (i, top) -> Printf.sprintf "p%d=r%d" i top) r.r_rounds));
  add "round skew (per-round entry spread): %s\n" (fmt_summary r.r_round_skew);
  if r.r_rbc_phases <> [] then begin
    add "\nreliable-broadcast phase durations:\n";
    List.iter
      (fun (label, s) -> add "  %-22s %s\n" label (fmt_summary s))
      r.r_rbc_phases
  end;
  let cq = r.r_chain_quality in
  add
    "\nchain quality: %d/%d entries from correct processes; worst prefix \
     %.3f (len %d) vs bound %.3f: %s\n"
    cq.Metrics.Chain_quality.correct_entries cq.Metrics.Chain_quality.total
    cq.Metrics.Chain_quality.worst_prefix_ratio
    cq.Metrics.Chain_quality.worst_prefix_len r.r_chain_quality_bound
    (if cq.Metrics.Chain_quality.holds then "holds" else "VIOLATED");
  if r.r_drops <> [] || r.r_retransmits > 0 || r.r_corrupt_rejects > 0 then begin
    add "\nloss diagnostics: %d retransmits, %d corrupt frames rejected\n"
      r.r_retransmits r.r_corrupt_rejects;
    if r.r_drops <> [] then
      add "  drops by reason: %s\n"
        (String.concat ", "
           (List.map
              (fun (reason, c) -> Printf.sprintf "%s=%d" reason c)
              r.r_drops));
    (match r.r_link_retransmits with
    | [] -> ()
    | links ->
      let shown = List.filteri (fun i _ -> i < 8) links in
      add "  busiest links (retransmits): %s%s\n"
        (String.concat ", "
           (List.map
              (fun ((src, dst), c) -> Printf.sprintf "p%d->p%d=%d" src dst c)
              shown))
        (if List.length links > List.length shown then ", ..." else ""))
  end;
  add "\n%s" (render_anomalies r);
  Buffer.contents buf

(* ---- DOT export ---- *)

let dot ?shade_wave ?max_round ~dag r =
  let leader_round w = ((w - 1) * r.r_wave_length) + 1 in
  let classes : (Dagrider.Vertex.vref, Dagrider.Render.vertex_class) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun w ->
      match w.w_leader with
      | None -> ()
      | Some l ->
        let vref = { Dagrider.Vertex.round = leader_round w.w_wave; source = l } in
        let cls =
          match w.w_outcome with
          | Committed_direct | Committed_chained _ -> Dagrider.Render.Committed_leader
          | Skipped _ -> Dagrider.Render.Skipped_leader
          | Unresolved -> Dagrider.Render.Elected_leader
        in
        Hashtbl.replace classes vref cls)
    r.r_waves;
  (* shade the chosen commit's causal history (the paper's Figure 2) *)
  let chosen =
    match shade_wave with
    | Some w -> List.find_opt (fun wr -> wr.w_wave = w) r.r_waves
    | None ->
      List.fold_left
        (fun acc wr ->
          match (wr.w_outcome, wr.w_leader) with
          | (Committed_direct | Committed_chained _), Some l
            when Dagrider.Dag.contains dag
                   { Dagrider.Vertex.round = leader_round wr.w_wave; source = l }
            -> Some wr
          | _ -> acc)
        None r.r_waves
  in
  (match chosen with
  | Some ({ w_leader = Some l; _ } as wr) ->
    let vref = { Dagrider.Vertex.round = leader_round wr.w_wave; source = l } in
    if Dagrider.Dag.contains dag vref then
      List.iter
        (fun v ->
          if not (Hashtbl.mem classes v) then
            Hashtbl.replace classes v Dagrider.Render.Shaded)
        (Dagrider.Dag.reachable_from dag vref ~via_strong_only:false)
  | _ -> ());
  Dagrider.Render.dot_classified ~legend:true
    ~classify:(fun v ->
      match Hashtbl.find_opt classes v with
      | Some c -> c
      | None -> Dagrider.Render.Plain)
    ?max_round dag
