(** Protocol analyzer: turns a {!Trace} event stream into diagnostics
    keyed to the paper's Algorithms 1–3.

    The input is any sequence of trace events — consumed live through
    {!Trace.add_sink} (so runs longer than the ring buffer are analyzed
    in full), replayed from a JSONL dump, or taken from a tracer's
    retained window. From it the analyzer derives:

    - a per-vertex commit-latency breakdown (vertex creation →
      reliable-broadcast deliver → DAG insert → wave commit →
      [a_deliver], one histogram per stage);
    - per-wave records: the elected leader, direct vs retroactive
      (chained) commit, skip reason, waves-to-resolve, and the running
      waves-per-commit mean vs the paper's 3/2 bound (Claim 6);
    - per-process round progress and round skew, and RBC
      phase-transition durations;
    - a chain-quality audit over every (2f+1)-multiple prefix of the
      ordered log (paper §3, via {!Metrics.Chain_quality});
    - anomalies: stalled rounds and commits, quorum starvation at the
      trace horizon, leader-skip streaks, and waves whose resolution
      time exceeds a configurable multiple of the median.

    All ordering-level diagnostics are computed from one {e observer}
    process's events (commits, skips, [a_deliver]s); network-level ones
    (round skew, RBC phases) pool every process. Feeding is cheap and
    config-free — configuration binds at {!finalize}, so one accumulator
    can be finalized under several configs. *)

type config = {
  wave_length : int;
      (** {e ordering} rounds per wave (4 for DAG-Rider, 2 for
          Bullshark) — leader rounds and skip attribution derive from
          it *)
  rule_name : string;
      (** commit rule the trace ran under, echoed into the report
          ("dagrider" by default) *)
  round_robin_n : int option;
      (** [Some n] = round-robin leader schedule over [n] processes
          (Bullshark): wave leaders are inferred as [(w-1) mod n], and
          coin events in the stream — which then run on their own
          cadence with unrelated instance numbering — are kept out of
          the wave records. [None] (default) = coin-scheduled leaders,
          where coin instance [w] {e is} ordering wave [w]. *)
  waves_bound : float;
      (** the rule's waves-per-commit bound audited by [r_claim6_ok]
          (1.5 for DAG-Rider per Claim 6) *)
  f : int option;  (** fault bound; [None] infers [(n-1)/3] *)
  byzantine : int list;
      (** processes counted Byzantine by the chain-quality audit *)
  observer : int option;
      (** process whose ordering events anchor the report; [None] picks
          the process with the longest [a_deliver] log *)
  stall_factor : float;
      (** flag a round/commit gap exceeding this multiple of that
          process's median gap (default 8.0) *)
  slow_wave_factor : float;
      (** flag a wave whose coin-to-election time exceeds this multiple
          of the median resolution time (default 4.0) *)
  skip_streak : int;
      (** flag runs of at least this many consecutive leader skips
          without an intervening commit (default 3) *)
  lossy_link_factor : float;
      (** flag a link whose retransmit count exceeds this multiple of
          the median per-link count (default 4.0) *)
  lossy_link_min : int;
      (** ...and also exceeds this absolute floor, so mildly unlucky
          links in short runs stay unflagged (default 20) *)
}

val default_config : config
(** The paper's rule: [wave_length = 4], [rule_name = "dagrider"],
    [round_robin_n = None], [waves_bound = 1.5], everything inferred,
    [stall_factor = 8.0], [slow_wave_factor = 4.0], [skip_streak = 3],
    [lossy_link_factor = 4.0], [lossy_link_min = 20]. *)

type summary = {
  s_count : int;
  s_mean : float;
  s_p50 : float;
  s_p99 : float;
  s_max : float;
}
(** Histogram digest of one stage/metric (all zeros when empty). *)

type wave_outcome =
  | Committed_direct  (** commit rule fired in the wave itself *)
  | Committed_chained of int
      (** committed retroactively by the given later wave's backward
          chain (Algorithm 3 lines 38–43) *)
  | Skipped of string
      (** never committed; the payload says why the ordering skipped it
          ("leader vertex absent" or "leader under-supported") *)
  | Unresolved  (** coin flipped but the observer never elected it *)

type wave_record = {
  w_wave : int;
  w_leader : int option;  (** the coin's choice, where observed *)
  w_elected_at : float option;  (** observer's election time *)
  w_resolution : float option;
      (** first coin share out → observer's election *)
  w_outcome : wave_outcome;
  w_committed_at : float option;
  w_delivered : int;  (** fresh vertices ordered by this wave's commit *)
  w_running_mean : float;
      (** waves resolved per wave committed, up to and including this
          wave — the running Claim 6 measure *)
}

type anomaly =
  | Round_stall of {
      node : int;
      round : int;  (** the round whose entry was late *)
      at : float;
      gap : float;
      median : float;  (** that node's median inter-round gap *)
    }
  | Commit_stall of {
      node : int;
      after_wave : int;  (** last wave committed before the gap *)
      at : float;
      gap : float;
      median : float;
    }
  | Quorum_starvation of {
      node : int;
      round : int;  (** round it is stuck in at the trace horizon *)
      stuck_for : float;
      have : int;  (** round-[round] vertices in its DAG *)
      need : int;  (** the 2f+1 advance quorum *)
    }
  | Skip_streak of { node : int; first_wave : int; length : int }
  | Slow_wave of { wave : int; took : float; median : float }
  | Lossy_link of {
      src : int;
      dst : int;
      retransmits : int;  (** frames re-sent on this directed link *)
      gave_up : int;  (** frames abandoned after retry exhaustion *)
      median : float;  (** median retransmit count across active links *)
    }
      (** One directed link is starving its destination: its retransmit
          count is far above the median (uniform loss keeps links close
          together, so this singles out targeted loss), or the transport
          exhausted a frame's retry budget on it. *)
  | Attacker_active of { node : int; strategy : string; actions : int }
      (** attacker-attributed events in the trace: process [node] ran
          [actions] deliberate deviations under the named strategy — an
          attacked run always names its adversary in the anomaly list *)
  | Sync_rejections of { node : int; count : int; reasons : string list }
      (** the hardened catch-up validator at [node] refused [count]
          sync-response vertices; [reasons] are the distinct rejection
          causes seen (see {!Trace.kind.Sync_reject}) *)

val describe_anomaly : anomaly -> string
(** One-line human rendering. *)

type report = {
  r_processes : int;
  r_f : int;
  r_wave_length : int;
  r_rule : string;  (** the config's [rule_name] *)
  r_waves_bound : float;  (** the config's [waves_bound] *)
  r_observer : int;
  r_events : int;  (** events fed *)
  r_truncated : bool;
      (** the stream did not start at sequence 0 (ring-buffer wrap
          before the first event seen) — head-dependent numbers are
          lower bounds *)
  r_span : float * float;  (** first and last event times *)
  r_sends : int;
  r_send_bits : int;
  r_stages : (string * summary) list;
      (** commit-latency breakdown at the observer, pipeline order *)
  r_incomplete_vertices : int;
      (** ordered vertices skipped by the stage breakdown because some
          stage event was missing (truncated stream) *)
  r_waves : wave_record list;  (** ascending wave number *)
  r_waves_resolved : int;
      (** waves the observer elected a leader for (coin rules), or
          processed to an outcome (round-robin rules, whose leaders
          are all predefined) *)
  r_commits_direct : int;
  r_commits_chained : int;
  r_waves_skipped : int;  (** skipped and never committed *)
  r_waves_per_commit : float;
      (** resolved / committed; [infinity] when nothing committed *)
  r_claim6_ok : bool;  (** [r_waves_per_commit <= waves_bound] *)
  r_rounds : (int * int) list;  (** per process: highest round entered *)
  r_round_skew : summary;
      (** per-round spread (last − first process to enter it) *)
  r_rbc_phases : (string * summary) list;
      (** reliable-broadcast phase-transition durations, pooled over
          processes, keyed ["echo->ready"]-style *)
  r_ordered : int;  (** observer's [a_deliver] count *)
  r_chain_quality : Metrics.Chain_quality.report;
  r_chain_quality_bound : float;  (** (f+1)/(2f+1) *)
  r_drops : (string * int) list;
      (** lost deliveries by reason tag, sorted by reason (empty for a
          fault-free trace) *)
  r_retransmits : int;  (** {!Trace.Retransmit} events fed *)
  r_corrupt_rejects : int;  (** {!Trace.Corrupt_reject} events fed *)
  r_link_retransmits : ((int * int) * int) list;
      (** per directed link [(src, dst)], descending by count — the
          loss-aware view behind the {!Lossy_link} anomaly *)
  r_anomalies : anomaly list;
}

(** {1 Accumulation} *)

type t
(** A streaming accumulator; feed in any order-preserving way. *)

val create : unit -> t

val feed : t -> Trace.event -> unit
(** O(1) per event; [Trace.add_sink tracer (feed acc)] analyzes a live
    run in full. *)

val finalize : ?config:config -> t -> report
(** Compute the report from everything fed so far. Pure with respect to
    the accumulator — feeding can continue and [finalize] can be called
    again (e.g. mid-run progress reports). *)

val analyze : ?config:config -> Trace.event list -> report
(** Feed a replayed event list and finalize. *)

val of_tracer : ?config:config -> Trace.t -> report
(** Analyze a tracer's retained window ({!Trace.events} — the newest
    [capacity] events; [r_truncated] reports whether older ones were
    lost). *)

val of_jsonl_file : ?config:config -> string -> (report, string) result
(** Replay a JSONL trace dump written by [dagrider_run trace --jsonl]
    or the swarm checker. *)

(** {1 Output} *)

val report_to_json : report -> Stdx.Json.t

val render : ?max_waves:int -> report -> string
(** Human-readable report: run shape, stage histograms, wave table
    (newest [max_waves], default 12), RBC phases, chain quality,
    anomalies. *)

val render_anomalies : report -> string
(** Just the anomaly lines ("none detected" when clean) — what the
    swarm checker appends to a failure repro. *)

val dot :
  ?shade_wave:int -> ?max_round:int -> dag:Dagrider.Dag.t -> report -> string
(** Figure 1/2-style Graphviz rendering of [dag] annotated with the
    report's wave outcomes: committed leaders gold, skipped leaders
    red, elected-but-unresolved leaders blue, and the causal history of
    [shade_wave]'s leader (default: the highest committed wave present
    in [dag]) shaded gray. Strong edges solid, weak edges dashed
    (via {!Dagrider.Render.dot_classified}). *)
