(** Programmable Byzantine attackers (paper §2 adversary, instantiated).

    The paper assumes an adversary that controls up to [f] processes,
    sees all messages, and schedules delivery; the swarm checker's
    schedule sampling already covers the scheduling half. This module
    supplies the other half: {e compromised processes} that run the real
    protocol stack — real vertex codec, real reliable-broadcast wire
    messages, real sync envelopes — but deviate adaptively, in the
    styles the literature actually exploits:

    - {b Equivocate}: fork the process's own round vertex and show
      different variants to different destination sets, pushed through
      the backend's genuine Init/Disperse/Gossip messages. Honest
      reliable broadcast must {e exclude} the fork (no side reaches a
      quorum) or {e converge} it (everyone ends on one variant); the
      {!forks} record lets an oracle prove which happened.
    - {b Withhold}: selective vertex withholding / delayed disclosure
      against chosen victims — the fairness-degradation lever.
    - {b Grind}: HashGraph-style coin grinding — watch the threshold
      coin's resolved leaders and time own proposals to rush waves the
      attacker leads and starve the rest (under [In_dag] coin mode this
      also delays the attacker's embedded share).
    - {b Bias}: the round-robin analogue against Bullshark's predefined
      schedule — rush own leader slots, stall victims' slots.
    - {b Lying_sync}: a lying catch-up peer serving corrupted
      [Sync_response] state (forged attribution to honest processes,
      garbage payloads, out-of-range envelopes) to restarting nodes;
      {!lies} records every forgery so an oracle can prove none was
      admitted.

    The driver is deliberately decoupled from the harness: it acts only
    through an {!arsenal} of backend capabilities the harness
    constructs, and observes only its own node's DAG/coin state plus a
    seeded RNG — so attacked runs stay a pure function of the seed, and
    attack decisions are rule-oblivious (they read the coin instances
    and the static round-robin table, never the ordering rule), which
    keeps the DAG substrate identical across commit rules for the
    differential harness. *)

type strategy = Equivocate | Withhold | Grind | Bias | Lying_sync

val all_strategies : strategy list

val strategy_label : strategy -> string
(** "equivocate" | "withhold" | "grind" | "bias" | "lying-sync". *)

val strategy_of_string : string -> strategy option
(** Inverse of {!strategy_label} (CLI parsing). *)

type spec = {
  strategy : strategy;
  victims : int list;
      (** targeted processes; [[]] lets the driver sample up to [f]
          victims from its seeded RNG at install time *)
}

val describe : node:int -> spec -> string
(** e.g. ["p3 equivocate vs {1}"] — scenario/repro rendering. *)

type fork = {
  fork_round : int;
  fork_digests : string list;
      (** {!Dagrider.Vertex.digest} of every variant sent for the
          attacker's own [(fork_round, me)] slot *)
}

type lie = { lie_round : int; lie_source : int; lie_digest : string }
(** One forged sync vertex: a payload served under honest process
    [lie_source]'s name whose digest differs from anything that process
    broadcast. No honest DAG may ever contain it. *)

type arsenal = {
  ars_n : int;
  ars_f : int;
  ars_me : int;
  ars_send : dsts:int list -> round:int -> payload:string -> unit;
      (** deliver [(me, round)]'s payload toward exactly [dsts],
          through the backend's real wire messages (Bracha Init, AVID
          dispersal fragments, Gossip) *)
  ars_bcast : round:int -> payload:string -> unit;
      (** the honest broadcast (pass-through) *)
}

type t

val create :
  spec:spec ->
  arsenal:arsenal ->
  rng:Stdx.Rng.t ->
  schedule:(delay:float -> (unit -> unit) -> unit) ->
  ?trace:Trace.t ->
  unit ->
  t
(** [schedule] is the simulation's timer (delayed disclosure, grinding
    delays); [rng] must be a dedicated stream so attacked runs replay
    byte-identically. *)

val set_node : t -> Dagrider.Node.t -> unit
(** Install the attacker's protocol brain — the real node whose DAG and
    resolved coins the adaptive strategies watch. Must be called before
    the run starts (the harness does). *)

val victims : t -> int list
(** The resolved victim set (sampled at {!create} when the spec left it
    empty). *)

val on_own_vertex : t -> payload:string -> round:int -> unit
(** The interception point: the harness routes the attacker node's
    [rbc_bcast] here instead of the backend, and the strategy decides
    what actually goes on the wire (fork, withhold, delay, or pass
    through). *)

val lying_sync_handler :
  t -> sync_net:Dagrider.Node.sync_msg Net.Port.t -> unit
(** Register the lying catch-up responder on the attacker's sync
    endpoint (replacing its honest handler): every [Sync_request] is
    answered with a corrupted [Sync_response] mixing forged-but-valid
    vertices attributed to honest processes, undecodable garbage, and
    out-of-range envelopes. Only meaningful for {!Lying_sync}; other
    strategies leave the honest responder in place. *)

val forks : t -> fork list
(** Every equivocation actually sent, oldest first. *)

val lies : t -> lie list
(** Every forged sync vertex actually served, oldest first. *)

val actions : t -> int
(** Total deliberate deviations (trace-visible attacker actions). *)
