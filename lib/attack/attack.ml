type strategy = Equivocate | Withhold | Grind | Bias | Lying_sync

let all_strategies = [ Equivocate; Withhold; Grind; Bias; Lying_sync ]

let strategy_label = function
  | Equivocate -> "equivocate"
  | Withhold -> "withhold"
  | Grind -> "grind"
  | Bias -> "bias"
  | Lying_sync -> "lying-sync"

let strategy_of_string = function
  | "equivocate" -> Some Equivocate
  | "withhold" -> Some Withhold
  | "grind" -> Some Grind
  | "bias" -> Some Bias
  | "lying-sync" -> Some Lying_sync
  | _ -> None

type spec = { strategy : strategy; victims : int list }

let describe ~node spec =
  let v =
    match spec.victims with
    | [] -> ""
    | vs ->
      Printf.sprintf " vs {%s}" (String.concat "," (List.map string_of_int vs))
  in
  Printf.sprintf "p%d %s%s" node (strategy_label spec.strategy) v

type fork = { fork_round : int; fork_digests : string list }

type lie = { lie_round : int; lie_source : int; lie_digest : string }

type arsenal = {
  ars_n : int;
  ars_f : int;
  ars_me : int;
  ars_send : dsts:int list -> round:int -> payload:string -> unit;
  ars_bcast : round:int -> payload:string -> unit;
}

type t = {
  spec : spec;
  arsenal : arsenal;
  rng : Stdx.Rng.t;
  schedule : delay:float -> (unit -> unit) -> unit;
  trace : Trace.t option;
  victims : int list;
  mutable node : Dagrider.Node.t option;
  mutable forks : fork list; (* newest first, reversed on read *)
  mutable lies : lie list;
  mutable actions : int;
}

let create ~(spec : spec) ~arsenal ~rng ~schedule ?trace () =
  let victims =
    match spec.victims with
    | _ :: _ as vs ->
      List.filter (fun i -> i >= 0 && i < arsenal.ars_n && i <> arsenal.ars_me) vs
    | [] ->
      (* sample up to f victims among the other processes — the adversary
         corrupts whom it likes, but a deterministic function of the seed *)
      let others =
        Array.of_list
          (List.filter
             (fun i -> i <> arsenal.ars_me)
             (List.init arsenal.ars_n (fun i -> i)))
      in
      Stdx.Rng.shuffle rng others;
      let k = max 1 (min arsenal.ars_f (Array.length others)) in
      List.sort compare (Array.to_list (Array.sub others 0 k))
  in
  { spec;
    arsenal;
    rng;
    schedule;
    trace;
    victims;
    node = None;
    forks = [];
    lies = [];
    actions = 0 }

let set_node t node = t.node <- Some node

let victims t = t.victims

let note t ~round ~info =
  t.actions <- t.actions + 1;
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr
      (Trace.Attack_event
         { node = t.arsenal.ars_me;
           strategy = strategy_label t.spec.strategy;
           round;
           info })

(* ---- payload surgery -----------------------------------------------

   RBC payloads are either a bare vertex encoding (separate-network coin
   mode) or the vertex encoding plus the In_dag share suffix
   (<12 share bytes> '\001', or just '\000' — see Node's framing). A
   variant must mutate the *block* while keeping the edges and any
   embedded share intact, so it passes Vertex.validate at honest
   processes and forks only the content. *)

let split_frame ~me payload =
  let len = String.length payload in
  let try_bare () =
    match Dagrider.Vertex.decode ~round:1 ~source:me payload with
    | Some _ -> Some (payload, "")
    | None -> None
  in
  (* the bare decode consumes the whole string, so a framed payload never
     parses bare and vice versa; try bare first (the common mode) *)
  match try_bare () with
  | Some _ as r -> r
  | None ->
    if len >= 1 && payload.[len - 1] = '\000' then
      Some (String.sub payload 0 (len - 1), "\000")
    else if len >= 13 && payload.[len - 1] = '\001' then
      Some (String.sub payload 0 (len - 13), String.sub payload (len - 13) 13)
    else None

let variant t ~payload ~round ~tag =
  match split_frame ~me:t.arsenal.ars_me payload with
  | None -> None
  | Some (vertex_bytes, suffix) -> (
    match
      Dagrider.Vertex.decode ~round ~source:t.arsenal.ars_me vertex_bytes
    with
    | None -> None
    | Some v ->
      let forked = { v with Dagrider.Vertex.block = v.Dagrider.Vertex.block ^ tag } in
      Some
        ( Dagrider.Vertex.encode forked ^ suffix,
          Dagrider.Vertex.digest v,
          Dagrider.Vertex.digest forked ))

let others t =
  List.filter (fun i -> i <> t.arsenal.ars_me) (List.init t.arsenal.ars_n (fun i -> i))

(* ---- strategies ---- *)

let do_equivocate t ~payload ~round =
  if round <= 1 || Stdx.Rng.float t.rng 1.0 >= 0.6 then
    t.arsenal.ars_bcast ~round ~payload
  else
    match variant t ~payload ~round ~tag:"!fork" with
    | None -> t.arsenal.ars_bcast ~round ~payload
    | Some (payload_b, digest_a, digest_b) ->
      let a_side, b_side =
        if Stdx.Rng.bool t.rng then
          (* minority fork: only the victims see variant B — honest RBC
             should converge everyone onto A *)
          ( t.arsenal.ars_me
            :: List.filter (fun i -> not (List.mem i t.victims)) (others t),
            t.victims )
        else begin
          (* even split: neither side should assemble a quorum — honest
             RBC should exclude the vertex entirely *)
          let o = Array.of_list (others t) in
          Stdx.Rng.shuffle t.rng o;
          let cut = Array.length o / 2 in
          ( t.arsenal.ars_me :: Array.to_list (Array.sub o 0 cut),
            Array.to_list (Array.sub o cut (Array.length o - cut)) )
        end
      in
      t.arsenal.ars_send ~dsts:a_side ~round ~payload;
      t.arsenal.ars_send ~dsts:b_side ~round ~payload:payload_b;
      t.forks <- { fork_round = round; fork_digests = [ digest_a; digest_b ] } :: t.forks;
      note t ~round
        ~info:
          (Printf.sprintf "forked to {%s}|{%s}"
             (String.concat "," (List.map string_of_int a_side))
             (String.concat "," (List.map string_of_int b_side)))

let do_withhold t ~payload ~round =
  let spared =
    t.arsenal.ars_me
    :: List.filter (fun i -> not (List.mem i t.victims)) (others t)
  in
  t.arsenal.ars_send ~dsts:spared ~round ~payload;
  if Stdx.Rng.float t.rng 1.0 < 0.75 then begin
    let delay = 2.0 +. Stdx.Rng.float t.rng 4.0 in
    note t ~round
      ~info:
        (Printf.sprintf "withheld from {%s}, disclosing at +%.2f"
           (String.concat "," (List.map string_of_int t.victims))
           delay);
    t.schedule ~delay (fun () ->
        t.arsenal.ars_send ~dsts:t.victims ~round ~payload)
  end
  else
    note t ~round
      ~info:
        (Printf.sprintf "withheld from {%s} permanently"
           (String.concat "," (List.map string_of_int t.victims)))

(* the coin cadence is fixed (4 rounds) independently of the commit rule,
   so grinding on resolved coin instances never reads ordering state —
   attacked schedules stay identical across rules *)
let coin_wave_length = 4

let do_grind t ~payload ~round =
  let support_wave = ((max 1 (round - 1)) - 1) / coin_wave_length + 1 in
  let leader =
    match t.node with
    | None -> None
    | Some node -> Dagrider.Node.coin_leader_of node ~wave:support_wave
  in
  match leader with
  | Some l when l = t.arsenal.ars_me ->
    note t ~round ~info:(Printf.sprintf "rushing wave %d (own coin)" support_wave);
    t.arsenal.ars_bcast ~round ~payload
  | Some l ->
    let delay = 1.0 +. Stdx.Rng.float t.rng 2.0 in
    note t ~round
      ~info:
        (Printf.sprintf "stalling wave %d (coin chose p%d) by %.2f"
           support_wave l delay);
    t.schedule ~delay (fun () -> t.arsenal.ars_bcast ~round ~payload)
  | None -> t.arsenal.ars_bcast ~round ~payload

(* Bullshark's predefined schedule: 2-round waves, leader (w-1) mod n.
   Reading the static table keeps the strategy rule-oblivious. *)
let bias_wave_length = 2

let do_bias t ~payload ~round =
  let wave = ((round - 1) / bias_wave_length) + 1 in
  let leader = Dagrider.Ordering.round_robin_leader ~n:t.arsenal.ars_n ~wave in
  if leader = t.arsenal.ars_me then begin
    note t ~round ~info:(Printf.sprintf "rushing own slot (wave %d)" wave);
    t.arsenal.ars_bcast ~round ~payload
  end
  else if List.mem leader t.victims then begin
    let delay = 1.0 +. Stdx.Rng.float t.rng 1.5 in
    note t ~round
      ~info:
        (Printf.sprintf "starving victim leader p%d (wave %d) by %.2f" leader
           wave delay);
    t.schedule ~delay (fun () -> t.arsenal.ars_bcast ~round ~payload)
  end
  else t.arsenal.ars_bcast ~round ~payload

let on_own_vertex t ~payload ~round =
  match t.spec.strategy with
  | Equivocate -> do_equivocate t ~payload ~round
  | Withhold -> do_withhold t ~payload ~round
  | Grind -> do_grind t ~payload ~round
  | Bias -> do_bias t ~payload ~round
  | Lying_sync -> t.arsenal.ars_bcast ~round ~payload

(* ---- the lying catch-up peer ---- *)

let max_lies_per_response = 96

let sync_msg_bits vertices =
  List.fold_left
    (fun acc (payload, _, _) -> acc + (8 * (String.length payload + 12)))
    (8 * 5) vertices

let lying_sync_handler t ~sync_net =
  let me = t.arsenal.ars_me in
  Net.Port.register sync_net me (fun ~src msg ->
      match msg with
      | Dagrider.Node.Sync_response _ -> ()
      | Dagrider.Node.Sync_request { from_round } when src <> me -> (
        match t.node with
        | None -> ()
        | Some node ->
          let dag = Dagrider.Node.dag node in
          let from_round = max 1 from_round in
          let hi = Dagrider.Dag.highest_round dag in
          let forged = ref [] in
          let count = ref 0 in
          (try
             for r = from_round to hi do
               List.iter
                 (fun (v : Dagrider.Vertex.t) ->
                   if v.Dagrider.Vertex.source <> me then begin
                     if !count >= max_lies_per_response then raise Exit;
                     incr count;
                     (* a plausible forgery: the victim's missing region,
                        real edges, attributed to an honest process — only
                        the block differs from what that process signed *)
                     let fake =
                       { v with
                         Dagrider.Vertex.block = v.Dagrider.Vertex.block ^ "?lie" }
                     in
                     t.lies <-
                       { lie_round = v.Dagrider.Vertex.round;
                         lie_source = v.Dagrider.Vertex.source;
                         lie_digest = Dagrider.Vertex.digest fake }
                       :: t.lies;
                     forged :=
                       ( Dagrider.Vertex.encode fake,
                         v.Dagrider.Vertex.round,
                         v.Dagrider.Vertex.source )
                       :: !forged
                   end)
                 (Dagrider.Dag.round_vertices dag r)
             done
           with Exit -> ());
          (* fabricated frontier layers past this DAG's head: vertices
             attributed to honest processes that do not exist anywhere
             yet, with predicted slot references as support so they pass
             structural validation and graft straight onto the victim's
             DAG the instant the prior round completes — i.e. before the
             real broadcasts for that round can finish their quorum
             dance, so the pre-buffered forgery wins the slot. No honest
             responder can vouch for these, so the f+1 quorum starves
             them; only a trusting validator falls for it *)
          if hi >= 1 then
            for r = hi + 1 to hi + 3 do
              let support =
                List.init
                  ((2 * t.arsenal.ars_f) + 1)
                  (fun j -> { Dagrider.Vertex.round = r - 1; source = j })
              in
              for s = 0 to t.arsenal.ars_n - 1 do
                if s <> me && !count < max_lies_per_response then begin
                  incr count;
                  let fake =
                    { Dagrider.Vertex.round = r;
                      source = s;
                      block = "?fabricated";
                      strong_edges = support;
                      weak_edges = [] }
                  in
                  t.lies <-
                    { lie_round = r;
                      lie_source = s;
                      lie_digest = Dagrider.Vertex.digest fake }
                    :: t.lies;
                  forged := (Dagrider.Vertex.encode fake, r, s) :: !forged
                end
              done
            done;
          (* garnish with an undecodable payload and an out-of-range
             envelope so every rejection path gets exercised *)
          let garnish =
            [ ("\xde\xad\xbe\xef", max 1 from_round, 0);
              ("", from_round + 1, t.arsenal.ars_n + 3) ]
          in
          let vertices = List.rev_append !forged garnish in
          note t ~round:from_round
            ~info:
              (Printf.sprintf "served %d forged + %d junk sync vertices to p%d"
                 !count (List.length garnish) src);
          (* blast the response several times: each copy draws its own
             network latency, so the liar's earliest usually beats the
             n-1 honest responders to the victim's catch-up holes — a
             trusting validator admits first-come, while the hardened
             quorum counts distinct responders and is unmoved *)
          for _ = 1 to 4 do
            Net.Port.send sync_net ~src:me ~dst:src ~kind:"sync-response"
              ~bits:(sync_msg_bits vertices)
              (Dagrider.Node.Sync_response { vertices })
          done)
      | Dagrider.Node.Sync_request _ -> ())

let forks t = List.rev t.forks

let lies t = List.rev t.lies

let actions t = t.actions
