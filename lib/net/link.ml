(* Reliable link endpoints over a lossy frame network: sequence-numbered
   data frames, acks, timeout-driven retransmission with exponential
   backoff + jitter, receiver-side dedup, and a checksum gate. One
   endpoint per process per protocol stack; together they rebuild the
   paper's §2 reliable-link abstraction on top of a Faults-afflicted
   Network. *)

type frame =
  | Data of { seq : int; kind : string; bytes : string; sum : int }
  | Ack of { seq : int; sum : int }

(* ---- checksum (FNV-1a/32 over a canonical rendering) ---- *)

let fnv_prime = 0x01000193
let fnv_basis = 0x811c9dc5
let mix h byte = (h lxor (byte land 0xFF)) * fnv_prime land 0xFFFFFFFF

let mix_int h v =
  let h = mix h (v lsr 24) in
  let h = mix h (v lsr 16) in
  let h = mix h (v lsr 8) in
  mix h v

let mix_string h s = String.fold_left (fun h c -> mix h (Char.code c)) h s

let data_sum ~seq ~kind ~bytes =
  let h = mix fnv_basis (Char.code 'D') in
  let h = mix_int h seq in
  let h = mix_string h kind in
  let h = mix h 0 in
  mix_string h bytes

let ack_sum ~seq = mix_int (mix fnv_basis (Char.code 'A')) seq

let frame_sum = function
  | Data { seq; kind; bytes; _ } -> data_sum ~seq ~kind ~bytes
  | Ack { seq; _ } -> ack_sum ~seq

let frame_intact = function
  | Data { seq; kind; bytes; sum } -> sum = data_sum ~seq ~kind ~bytes
  | Ack { seq; sum } -> sum = ack_sum ~seq

let make_data ~seq ~kind ~bytes =
  Data { seq; kind; bytes; sum = data_sum ~seq ~kind ~bytes }

let make_ack ~seq = Ack { seq; sum = ack_sum ~seq }

(* Flip one uniformly chosen bit of the frame's payload-or-seq without
   touching the stored checksum — what the Faults corrupt verdict does
   to frame networks (Network.set_corrupter). *)
let corrupt_frame ~rng frame =
  let flip_seq seq = seq lxor (1 lsl Stdx.Rng.int rng 32) in
  match frame with
  | Data { seq; kind; bytes; sum } ->
    let payload_bits = 8 * String.length bytes in
    let target = Stdx.Rng.int rng (32 + payload_bits) in
    if target < 32 then Data { seq = seq lxor (1 lsl target); kind; bytes; sum }
    else
      let bit = target - 32 in
      let bytes =
        String.mapi
          (fun i c ->
            if i = bit / 8 then Char.chr (Char.code c lxor (1 lsl (bit mod 8)))
            else c)
          bytes
      in
      Data { seq; kind; bytes; sum }
  | Ack { seq; sum } -> Ack { seq = flip_seq seq; sum }

(* ---- wire-size accounting ---- *)

(* u32 seq + u32 checksum + u32 kind length + the kind tag itself ride
   every data frame; acks are u8 tag + u32 seq + u32 checksum *)
let data_overhead_bits ~kind = 8 * (12 + String.length kind)
let ack_bits = 8 * 9

(* ---- endpoint ---- *)

type config = {
  rto : float;
  backoff : float;
  max_rto : float;
  jitter : float;
  max_attempts : int;
}

let default_config =
  { rto = 3.0; backoff = 1.6; max_rto = 20.0; jitter = 0.3; max_attempts = 25 }

type stats = {
  data_sent : int;
  retransmits : int;
  gave_up : int;
  dup_suppressed : int;
  corrupt_rejected : int;
  decode_failures : int;
}

let zero_stats =
  { data_sent = 0;
    retransmits = 0;
    gave_up = 0;
    dup_suppressed = 0;
    corrupt_rejected = 0;
    decode_failures = 0 }

let add_stats a b =
  { data_sent = a.data_sent + b.data_sent;
    retransmits = a.retransmits + b.retransmits;
    gave_up = a.gave_up + b.gave_up;
    dup_suppressed = a.dup_suppressed + b.dup_suppressed;
    corrupt_rejected = a.corrupt_rejected + b.corrupt_rejected;
    decode_failures = a.decode_failures + b.decode_failures }

type outstanding = {
  o_kind : string;
  o_frame : frame;
  o_bits : int;
  o_id : int; (* logical-message correlation id; every send copy reuses it *)
  mutable o_attempt : int;
}

type 'msg t = {
  net : frame Network.t;
  engine : Sim.Engine.t;
  rng : Stdx.Rng.t;
  config : config;
  me : int;
  encode : 'msg -> string;
  decode : string -> 'msg option;
  trace : Trace.t option;
  mutable handler : (src:int -> 'msg -> unit) option;
  mutable detached : bool;
  next_seq : int array; (* per destination *)
  unacked : (int * int, outstanding) Hashtbl.t; (* (dst, seq) *)
  (* receiver dedup, per source: every seq < floor was delivered;
     [seen] holds the delivered seqs >= floor (out-of-order arrivals)
     until the floor catches up — a sliding window, not unbounded *)
  floor : int array;
  seen : (int, unit) Hashtbl.t array;
  per_dst_retransmits : int array;
  mutable s : stats;
}

let tr_emit t kind =
  match t.trace with None -> () | Some tr -> Trace.emit tr kind

(* receiver-side events happen inside the delivery of some frame: the
   ambient cause IS that frame's correlation id *)
let cur_mid t =
  match t.trace with None -> -1 | Some tr -> Trace.current_cause tr

let mid_opt id = if id >= 0 then Some id else None

let stats t = t.s

let retransmits_by_dst t =
  Array.to_list t.per_dst_retransmits
  |> List.mapi (fun dst count -> (dst, count))
  |> List.filter (fun (_, count) -> count > 0)

let set_handler t handler = t.handler <- Some handler

let clear_handler t = t.handler <- None

let rec schedule_retry t ~dst ~seq ~timeout =
  Sim.Engine.schedule t.engine ~delay:timeout (fun () ->
      if not t.detached then
        match Hashtbl.find_opt t.unacked (dst, seq) with
        | None -> () (* acked in the meantime *)
        | Some o ->
          if o.o_attempt >= t.config.max_attempts then begin
            Hashtbl.remove t.unacked (dst, seq);
            t.s <- { t.s with gave_up = t.s.gave_up + 1 };
            tr_emit t
              (Trace.Drop
                 { src = t.me; dst; msg_kind = o.o_kind; reason = "give-up";
                   id = o.o_id })
          end
          else begin
            let sp = Prof.enter "link.retransmit" in
            (try
               o.o_attempt <- o.o_attempt + 1;
               t.s <- { t.s with retransmits = t.s.retransmits + 1 };
               t.per_dst_retransmits.(dst) <- t.per_dst_retransmits.(dst) + 1;
               tr_emit t
                 (Trace.Retransmit
                    { src = t.me; dst; msg_kind = o.o_kind; seq;
                      attempt = o.o_attempt; id = o.o_id });
               Network.send ?mid:(mid_opt o.o_id) t.net ~src:t.me ~dst
                 ~kind:o.o_kind ~bits:o.o_bits o.o_frame;
               let next =
                 Float.min (timeout *. t.config.backoff) t.config.max_rto
               in
               let jittered =
                 next *. (1.0 +. (t.config.jitter *. Stdx.Rng.float t.rng 1.0))
               in
               schedule_retry t ~dst ~seq ~timeout:jittered
             with e -> Prof.leave_reraise sp e);
            Prof.leave sp
          end)

let send t ~dst ~kind ~bits msg =
  if not t.detached then begin
    let seq = t.next_seq.(dst) in
    t.next_seq.(dst) <- seq + 1;
    let bytes = t.encode msg in
    let frame = make_data ~seq ~kind ~bytes in
    (* allocate the logical id here, not in Network.send, so retransmit
       copies of this frame share it *)
    let mid =
      match t.trace with None -> -1 | Some tr -> Trace.fresh_id tr
    in
    Hashtbl.replace t.unacked (dst, seq)
      { o_kind = kind;
        o_frame = frame;
        o_bits = bits + data_overhead_bits ~kind;
        o_id = mid;
        o_attempt = 0 };
    t.s <- { t.s with data_sent = t.s.data_sent + 1 };
    Network.send ?mid:(mid_opt mid) t.net ~src:t.me ~dst ~kind
      ~bits:(bits + data_overhead_bits ~kind)
      frame;
    schedule_retry t ~dst ~seq ~timeout:t.config.rto
  end

let broadcast t ~kind ~bits msg =
  for dst = 0 to Network.n t.net - 1 do
    send t ~dst ~kind ~bits msg
  done

let mark_seen t ~src ~seq =
  if seq < t.floor.(src) || Hashtbl.mem t.seen.(src) seq then false
  else begin
    Hashtbl.add t.seen.(src) seq ();
    while Hashtbl.mem t.seen.(src) t.floor.(src) do
      Hashtbl.remove t.seen.(src) t.floor.(src);
      t.floor.(src) <- t.floor.(src) + 1
    done;
    true
  end

let on_frame t ~src frame =
  let sp = Prof.enter "link.on_frame" in
  (try
     if not t.detached then
    match frame with
    | Data { seq; kind; bytes; _ } ->
      if not (frame_intact frame) then begin
        t.s <- { t.s with corrupt_rejected = t.s.corrupt_rejected + 1 };
        tr_emit t
          (Trace.Corrupt_reject
             { src; dst = t.me; msg_kind = kind; id = cur_mid t })
        (* no ack: the sender's retransmission recovers the frame *)
      end
      else begin
        (* ack every intact data frame, duplicates included — the
           original ack may have been the copy the link lost *)
        Network.send t.net ~src:t.me ~dst:src ~kind:"link-ack" ~bits:ack_bits
          (make_ack ~seq);
        if not (mark_seen t ~src ~seq) then begin
          t.s <- { t.s with dup_suppressed = t.s.dup_suppressed + 1 };
          tr_emit t
            (Trace.Drop
               { src; dst = t.me; msg_kind = kind; reason = "duplicate";
                 id = cur_mid t })
        end
        else
          match t.decode bytes with
          | None ->
            (* transport did its job; the payload itself is garbage
               (Byzantine sender) — count it and move on *)
            t.s <- { t.s with decode_failures = t.s.decode_failures + 1 };
            tr_emit t
              (Trace.Drop
                 { src; dst = t.me; msg_kind = kind; reason = "decode";
                   id = cur_mid t })
          | Some msg -> (
            match t.handler with
            | Some handler -> handler ~src msg
            | None ->
              tr_emit t
                (Trace.Drop
                   { src; dst = t.me; msg_kind = kind; reason = "no-handler";
                     id = cur_mid t }))
      end
    | Ack { seq; _ } ->
      if not (frame_intact frame) then begin
        (* a corrupted ack must not acknowledge anything: drop it and
           let the (re-acked) retransmission settle the frame *)
        t.s <- { t.s with corrupt_rejected = t.s.corrupt_rejected + 1 };
        tr_emit t
          (Trace.Corrupt_reject
             { src; dst = t.me; msg_kind = "link-ack"; id = cur_mid t })
      end
      else Hashtbl.remove t.unacked (src, seq)
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

let attach ~net ~engine ~rng ?(config = default_config) ?trace ~me ~encode
    ~decode () =
  if config.rto <= 0.0 || config.backoff < 1.0 || config.max_rto < config.rto
  then invalid_arg "Link.attach: bad timer config";
  if config.jitter < 0.0 then invalid_arg "Link.attach: negative jitter";
  if config.max_attempts < 1 then invalid_arg "Link.attach: max_attempts < 1";
  let n = Network.n net in
  let t =
    { net;
      engine;
      rng;
      config;
      me;
      encode;
      decode;
      trace;
      handler = None;
      detached = false;
      next_seq = Array.make n 0;
      unacked = Hashtbl.create 64;
      floor = Array.make n 0;
      seen = Array.init n (fun _ -> Hashtbl.create 8);
      per_dst_retransmits = Array.make n 0;
      s = zero_stats }
  in
  Network.register net me (fun ~src frame -> on_frame t ~src frame);
  t

let detach t =
  if not t.detached then begin
    t.detached <- true;
    t.handler <- None;
    Hashtbl.reset t.unacked;
    Network.unregister t.net t.me
  end
