type 'msg t = {
  n : int;
  send_fn : src:int -> dst:int -> kind:string -> bits:int -> 'msg -> unit;
  register_fn : int -> (src:int -> 'msg -> unit) -> unit;
  unregister_fn : int -> unit;
}

let n t = t.n

let send t = t.send_fn

let broadcast t ~src ~kind ~bits msg =
  for dst = 0 to t.n - 1 do
    t.send_fn ~src ~dst ~kind ~bits msg
  done

let register t i handler = t.register_fn i handler

let unregister t i = t.unregister_fn i

let of_network net =
  { n = Network.n net;
    send_fn = (fun ~src ~dst ~kind ~bits msg ->
        Network.send net ~src ~dst ~kind ~bits msg);
    register_fn = (fun i handler -> Network.register net i handler);
    unregister_fn = (fun i -> Network.unregister net i) }

let of_links links =
  if Array.length links = 0 then invalid_arg "Port.of_links: no endpoints";
  { n = Array.length links;
    send_fn = (fun ~src ~dst ~kind ~bits msg ->
        Link.send links.(src) ~dst ~kind ~bits msg);
    register_fn = (fun i handler -> Link.set_handler links.(i) handler);
    unregister_fn = (fun i -> Link.clear_handler links.(i)) }
