type 'msg t = {
  engine : Sim.Engine.t;
  sched : Sched.t;
  counters : Metrics.Counters.t;
  n : int;
  handlers : (src:int -> 'msg -> unit) option array;
  (* logical operation counter: orders sends vs corruption events even
     when they share a virtual timestamp *)
  mutable op_seq : int;
  corrupted_at_op : int option array;
  mutable delivered : int;
  mutable trace : Trace.t option;
}

let create ~engine ~sched ~counters ~n =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  { engine;
    sched;
    counters;
    n;
    handlers = Array.make n None;
    op_seq = 0;
    corrupted_at_op = Array.make n None;
    delivered = 0;
    trace = None }

let set_trace t tr = t.trace <- Some tr

let n t = t.n

let check_index t i label =
  if i < 0 || i >= t.n then invalid_arg ("Network: bad process index in " ^ label)

let register t i handler =
  check_index t i "register";
  t.handlers.(i) <- Some handler

let unregister t i =
  check_index t i "unregister";
  t.handlers.(i) <- None

let send t ~src ~dst ~kind ~bits msg =
  check_index t src "send";
  check_index t dst "send";
  if bits < 0 then invalid_arg "Network.send: negative size";
  Metrics.Counters.record_send t.counters ~src ~kind ~bits;
  (match t.trace with
  | None -> ()
  | Some tr -> Trace.emit tr (Trace.Send { src; dst; msg_kind = kind; bits }));
  let now = Sim.Engine.now t.engine in
  let { Sched.delay } = t.sched.Sched.decide ~now ~src ~dst ~kind in
  let sent_op = t.op_seq in
  t.op_seq <- sent_op + 1;
  Sim.Engine.schedule t.engine ~delay (fun () ->
      (* adaptive adversary: drop messages a process sent before it was
         corrupted if they had not yet been delivered *)
      let dropped =
        match t.corrupted_at_op.(src) with
        | Some since_op -> sent_op < since_op
        | None -> false
      in
      if not dropped then
        match t.handlers.(dst) with
        | Some handler ->
          t.delivered <- t.delivered + 1;
          (match t.trace with
          | None -> ()
          | Some tr -> Trace.emit tr (Trace.Recv { src; dst; msg_kind = kind }));
          handler ~src msg
        | None -> ())

let broadcast t ~src ~kind ~bits msg =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst ~kind ~bits msg
  done

let corrupt t ?(drop_in_flight = true) i =
  check_index t i "corrupt";
  match t.corrupted_at_op.(i) with
  | Some _ -> ()
  | None ->
    let since_op = if drop_in_flight then t.op_seq else min_int in
    t.corrupted_at_op.(i) <- Some since_op

let is_corrupted t i =
  check_index t i "is_corrupted";
  t.corrupted_at_op.(i) <> None

let correct t i = not (is_corrupted t i)

let delivered_count t = t.delivered
