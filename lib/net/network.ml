type 'msg t = {
  engine : Sim.Engine.t;
  sched : Sched.t;
  counters : Metrics.Counters.t;
  n : int;
  handlers : (src:int -> 'msg -> unit) option array;
  (* logical operation counter: orders sends vs corruption events even
     when they share a virtual timestamp *)
  mutable op_seq : int;
  corrupted_at_op : int option array;
  mutable delivered : int;
  mutable trace : Trace.t option;
  (* link faults: [None] keeps the send path exactly as it was — no
     extra RNG draws, no extra engine events *)
  mutable faults : Faults.t option;
  mutable corrupter : ('msg -> 'msg) option;
  drops : (string, int ref) Hashtbl.t; (* reason -> count *)
}

let create ~engine ~sched ~counters ~n =
  if n <= 0 then invalid_arg "Network.create: n must be positive";
  { engine;
    sched;
    counters;
    n;
    handlers = Array.make n None;
    op_seq = 0;
    corrupted_at_op = Array.make n None;
    delivered = 0;
    trace = None;
    faults = None;
    corrupter = None;
    drops = Hashtbl.create 8 }

let set_trace t tr = t.trace <- Some tr

let set_faults t faults = t.faults <- Some faults

let set_corrupter t corrupter = t.corrupter <- Some corrupter

let n t = t.n

let check_index t i label =
  if i < 0 || i >= t.n then invalid_arg ("Network: bad process index in " ^ label)

let register t i handler =
  check_index t i "register";
  t.handlers.(i) <- Some handler

let unregister t i =
  check_index t i "unregister";
  t.handlers.(i) <- None

let note_drop ?(mid = -1) t ~src ~dst ~kind ~reason =
  (match Hashtbl.find_opt t.drops reason with
  | Some r -> incr r
  | None -> Hashtbl.add t.drops reason (ref 1));
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr (Trace.Drop { src; dst; msg_kind = kind; reason; id = mid })

let drop_counts t =
  Hashtbl.fold (fun reason r acc -> (reason, !r) :: acc) t.drops []
  |> List.sort compare

let deliver_later t ~src ~dst ~kind ~delay ~sent_op ~mid msg =
  Sim.Engine.schedule t.engine ~delay (fun () ->
      (* adaptive adversary: drop messages a process sent before it was
         corrupted if they had not yet been delivered *)
      let dropped =
        match t.corrupted_at_op.(src) with
        | Some since_op -> sent_op < since_op
        | None -> false
      in
      if dropped then note_drop t ~src ~dst ~kind ~reason:"corrupted-src" ~mid
      else
        match t.handlers.(dst) with
        | Some handler ->
          t.delivered <- t.delivered + 1;
          (match t.trace with
          | None -> handler ~src msg
          | Some tr ->
            Trace.emit tr (Trace.Recv { src; dst; msg_kind = kind; id = mid });
            (* everything the handler emits — RBC phases, vertex
               lifecycle, follow-up sends — is stamped with this
               message's id as its cause *)
            Trace.with_cause tr mid (fun () -> handler ~src msg))
        | None -> note_drop t ~src ~dst ~kind ~reason:"no-handler" ~mid)

let send ?mid t ~src ~dst ~kind ~bits msg =
  check_index t src "send";
  check_index t dst "send";
  if bits < 0 then invalid_arg "Network.send: negative size";
  Metrics.Counters.record_send t.counters ~src ~kind ~bits;
  (* correlation ids exist only when traced: the untraced path takes no
     extra allocation and stays byte-identical *)
  let mid =
    match t.trace with
    | None -> -1
    | Some tr -> (
      match mid with Some m -> m | None -> Trace.fresh_id tr)
  in
  (match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr (Trace.Send { src; dst; msg_kind = kind; bits; id = mid }));
  let now = Sim.Engine.now t.engine in
  let sent_op = t.op_seq in
  t.op_seq <- sent_op + 1;
  match t.faults with
  | None ->
    let { Sched.delay } = t.sched.Sched.decide ~now ~src ~dst ~kind in
    deliver_later t ~src ~dst ~kind ~delay ~sent_op ~mid msg
  | Some faults ->
    let verdict = faults.Faults.decide ~now ~src ~dst ~kind in
    if verdict.Faults.drop then
      note_drop t ~src ~dst ~kind ~reason:"fault" ~mid
    else begin
      (* corruption needs a representation-aware mutator; a network
         whose messages cannot be corrupted loses the message instead *)
      let msg, lost =
        if not verdict.Faults.corrupt then (msg, false)
        else
          match t.corrupter with
          | Some corrupter -> (corrupter msg, false)
          | None -> (msg, true)
      in
      if lost then note_drop t ~src ~dst ~kind ~reason:"corrupt" ~mid
      else begin
        let { Sched.delay } = t.sched.Sched.decide ~now ~src ~dst ~kind in
        deliver_later t ~src ~dst ~kind
          ~delay:(delay +. verdict.Faults.extra_delay)
          ~sent_op ~mid msg;
        (* each duplicate re-queries the schedule, so copies race each
           other — duplication doubles as reordering; all copies carry
           the one logical id *)
        for _ = 1 to verdict.Faults.duplicates do
          let { Sched.delay } = t.sched.Sched.decide ~now ~src ~dst ~kind in
          deliver_later t ~src ~dst ~kind ~delay ~sent_op ~mid msg
        done
      end
    end

let broadcast t ~src ~kind ~bits msg =
  for dst = 0 to t.n - 1 do
    send t ~src ~dst ~kind ~bits msg
  done

let corrupt t ?(drop_in_flight = true) i =
  check_index t i "corrupt";
  match t.corrupted_at_op.(i) with
  | Some _ -> ()
  | None ->
    let since_op = if drop_in_flight then t.op_seq else min_int in
    t.corrupted_at_op.(i) <- Some since_op

let is_corrupted t i =
  check_index t i "is_corrupted";
  t.corrupted_at_op.(i) <> None

let correct t i = not (is_corrupted t i)

let delivered_count t = t.delivered
