(** Reliable transport endpoints over a lossy {!Network}.

    When a {!Faults} policy breaks the §2 reliable-link assumption,
    this module rebuilds it: each process attaches one endpoint per
    protocol stack to a shared network of {!frame}s, and typed
    messages travel as sequence-numbered, checksummed data frames.
    The sender retransmits every unacked frame on a timeout schedule
    with exponential backoff, multiplicative jitter and a cap, giving
    up only after [max_attempts] (so a crashed peer cannot pin memory
    forever); the receiver acks every intact data frame — duplicates
    included, since the previous ack may be the copy that was lost —
    suppresses redeliveries through a per-sender sliding window, and
    rejects corrupted frames by checksum so retransmission recovers
    them. Under any fault rate < 1 every message between correct
    attached endpoints is eventually delivered exactly once (up to the
    astronomically unlikely exhaustion of the retransmit budget),
    which is the contract the RBC layer assumes.

    All timers run on the simulation engine and all jitter comes from
    the supplied RNG: lossy executions remain pure functions of the
    seed. *)

type frame =
  | Data of { seq : int; kind : string; bytes : string; sum : int }
  | Ack of { seq : int; sum : int }
      (** Sequence numbers are per (sender, destination) stream; [sum]
          is a FNV-1a/32 checksum over the rest of the frame —
          including acks, so a bit-flipped ack cannot acknowledge a
          frame that was never delivered. *)

type config = {
  rto : float;  (** initial retransmission timeout *)
  backoff : float;  (** timeout multiplier per retry (>= 1) *)
  max_rto : float;  (** backoff cap *)
  jitter : float;
      (** each retry waits [timeout * (1 + jitter * U[0,1))] —
          desynchronizes retransmit storms *)
  max_attempts : int;  (** retransmissions before giving up *)
}

val default_config : config
(** rto 3.0 (a few times the baseline schedules' one-way delays),
    backoff 1.6, cap 20.0, jitter 0.3, 25 attempts. *)

type stats = {
  data_sent : int;  (** first transmissions (not counting retries) *)
  retransmits : int;
  gave_up : int;  (** frames abandoned after [max_attempts] *)
  dup_suppressed : int;  (** redeliveries absorbed by the dedup window *)
  corrupt_rejected : int;  (** frames (data or ack) failing the checksum *)
  decode_failures : int;
      (** intact frames whose payload the protocol decoder rejected *)
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

type 'msg t

val attach :
  net:frame Network.t ->
  engine:Sim.Engine.t ->
  rng:Stdx.Rng.t ->
  ?config:config ->
  ?trace:Trace.t ->
  me:int ->
  encode:('msg -> string) ->
  decode:(string -> 'msg option) ->
  unit ->
  'msg t
(** Create process [me]'s endpoint and register it on the frame
    network. Messages are encoded to bytes on send and decoded on
    delivery, so lossy runs exercise the protocol's real wire codecs.
    With a tracer, the endpoint emits {!Trace.Retransmit},
    {!Trace.Corrupt_reject}, and {!Trace.Drop} (reasons "give-up",
    "duplicate", "decode", "no-handler").
    @raise Invalid_argument on a nonsensical [config]. *)

val set_handler : 'msg t -> (src:int -> 'msg -> unit) -> unit
(** Install (or replace) the upcall for delivered messages. *)

val clear_handler : 'msg t -> unit
(** Deliveries are dropped (reason "no-handler") until re-set; the
    transport keeps acking, like a kernel with no listening socket. *)

val send : 'msg t -> dst:int -> kind:string -> bits:int -> 'msg -> unit
(** Queue one reliable delivery. [bits] is the protocol-level size;
    the frame header (sequence number, checksum, kind tag) is charged
    on top, and again on every retransmission. *)

val broadcast : 'msg t -> kind:string -> bits:int -> 'msg -> unit
(** {!send} to all [n] processes, self included. *)

val detach : 'msg t -> unit
(** Silence the endpoint for good: unregister from the frame network,
    drop the handler, and cancel all pending retransmissions (used by
    the harness's adaptive corruption). Idempotent; there is no
    re-attach. *)

val stats : 'msg t -> stats

val retransmits_by_dst : 'msg t -> (int * int) list
(** [(dst, retransmit count)] for destinations with at least one
    retransmission — the per-link counters the analyzer aggregates. *)

val corrupt_frame : rng:Stdx.Rng.t -> frame -> frame
(** Flip one random bit of the frame (payload or sequence number)
    without fixing the checksum — install as the frame network's
    {!Network.set_corrupter}. *)

val frame_sum : frame -> int
(** The checksum the frame should carry (exposed for tests). *)

val frame_intact : frame -> bool
(** Does the stored checksum match the content? *)
