type verdict = {
  drop : bool;
  duplicates : int;
  corrupt : bool;
  extra_delay : float;
}

let clean = { drop = false; duplicates = 0; corrupt = false; extra_delay = 0.0 }

type t = {
  name : string;
  decide : now:float -> src:int -> dst:int -> kind:string -> verdict;
}

let none =
  { name = "none"; decide = (fun ~now:_ ~src:_ ~dst:_ ~kind:_ -> clean) }

let check_prob label p =
  if p < 0.0 || p > 1.0 then
    invalid_arg (Printf.sprintf "Faults.lossy: %s must be in [0,1]" label)

let lossy ~rng ?(drop = 0.0) ?(duplicate = 0.0) ?(corrupt = 0.0)
    ?(reorder = 0.0) ?(reorder_spread = 3.0) () =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "corrupt" corrupt;
  check_prob "reorder" reorder;
  if reorder_spread < 0.0 then
    invalid_arg "Faults.lossy: reorder_spread must be non-negative";
  let name =
    Printf.sprintf "lossy(drop=%.2f,dup=%.2f,corrupt=%.2f,reorder=%.2f)" drop
      duplicate corrupt reorder
  in
  (* the draw sequence per decision is fixed (drop, duplicate, corrupt,
     reorder, then the spread iff reordered) so executions stay pure
     functions of the seed *)
  let decide ~now:_ ~src:_ ~dst:_ ~kind:_ =
    let dropped = drop > 0.0 && Stdx.Rng.float rng 1.0 < drop in
    let duplicates =
      if duplicate > 0.0 && Stdx.Rng.float rng 1.0 < duplicate then 1 else 0
    in
    let corrupted = corrupt > 0.0 && Stdx.Rng.float rng 1.0 < corrupt in
    let extra_delay =
      if reorder > 0.0 && Stdx.Rng.float rng 1.0 < reorder then
        Stdx.Rng.float rng reorder_spread
      else 0.0
    in
    { drop = dropped; duplicates; corrupt = corrupted; extra_delay }
  in
  { name; decide }

let on_links ~pred inner =
  { name = inner.name ^ "+targeted";
    decide =
      (fun ~now ~src ~dst ~kind ->
        if pred ~src ~dst then inner.decide ~now ~src ~dst ~kind else clean) }

let with_window ~from_time ~until_time inner =
  { name = Printf.sprintf "%s+window[%.1f,%.1f)" inner.name from_time until_time;
    decide =
      (fun ~now ~src ~dst ~kind ->
        if now >= from_time && now < until_time then
          inner.decide ~now ~src ~dst ~kind
        else clean) }
