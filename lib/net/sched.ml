type decision = { delay : float }

type t = {
  name : string;
  decide : now:float -> src:int -> dst:int -> kind:string -> decision;
}

let synchronous () =
  { name = "synchronous";
    decide = (fun ~now:_ ~src:_ ~dst:_ ~kind:_ -> { delay = 1.0 }) }

let uniform_random ~rng =
  { name = "uniform-random";
    decide =
      (fun ~now:_ ~src:_ ~dst:_ ~kind:_ ->
        (* (0, 1]: avoid 0 so causality chains keep strictly increasing time *)
        { delay = 1.0 -. Stdx.Rng.float rng 0.999 }) }

let skewed_random ~rng =
  { name = "skewed-random";
    decide =
      (fun ~now:_ ~src:_ ~dst:_ ~kind:_ ->
        let d = Stdx.Rng.exponential rng ~mean:0.3 in
        { delay = Float.max 0.001 (Float.min 1.0 d) }) }

let bimodal ~rng ?(slow_fraction = 0.25) ?(slow_factor = 5.0) () =
  { name = "bimodal";
    decide =
      (fun ~now:_ ~src:_ ~dst:_ ~kind:_ ->
        let base = 1.0 -. Stdx.Rng.float rng 0.999 in
        if Stdx.Rng.float rng 1.0 < slow_fraction then
          { delay = base *. slow_factor }
        else { delay = base }) }

let heavy_tailed ~rng =
  { name = "heavy-tailed";
    decide =
      (fun ~now:_ ~src:_ ~dst:_ ~kind:_ ->
        { delay = Float.max 0.001 (Stdx.Rng.exponential rng ~mean:1.0) }) }

let mobile_sluggish ~inner ~n ~f ~period ~factor =
  { name = Printf.sprintf "%s+mobile-sluggish(f=%d)" inner.name f;
    decide =
      (fun ~now ~src ~dst ~kind ->
        let epoch = int_of_float (Float.max 0.0 now /. period) in
        let slowed i = (((i - (epoch * f)) mod n) + n) mod n < f in
        let d = inner.decide ~now ~src ~dst ~kind in
        if slowed src then { delay = d.delay *. factor } else d) }

let delay_process ~inner ~victim ~factor =
  { name = Printf.sprintf "%s+delay(p%d,x%.0f)" inner.name victim factor;
    decide =
      (fun ~now ~src ~dst ~kind ->
        let d = inner.decide ~now ~src ~dst ~kind in
        if src = victim then { delay = d.delay *. factor } else d) }

let delay_matching ~inner ~pred ~factor =
  { name = inner.name ^ "+targeted";
    decide =
      (fun ~now ~src ~dst ~kind ->
        let d = inner.decide ~now ~src ~dst ~kind in
        if pred ~src ~dst ~kind then { delay = d.delay *. factor } else d) }

let rush_process ~inner ~favored =
  { name = Printf.sprintf "%s+rush(p%d)" inner.name favored;
    decide =
      (fun ~now ~src ~dst ~kind ->
        if src = favored then { delay = 0.001 }
        else inner.decide ~now ~src ~dst ~kind) }

let partition ~inner ~left ~factor =
  { name = Printf.sprintf "%s+partition(x%.0f)" inner.name factor;
    decide =
      (fun ~now ~src ~dst ~kind ->
        let d = inner.decide ~now ~src ~dst ~kind in
        if left src <> left dst then { delay = d.delay *. factor } else d) }

let kind_storm ~inner ~kinds ~factor =
  { name = Printf.sprintf "%s+storm[%s](x%.0f)" inner.name
      (String.concat "," kinds) factor;
    decide =
      (fun ~now ~src ~dst ~kind ->
        let d = inner.decide ~now ~src ~dst ~kind in
        if List.exists (fun prefix ->
               String.length kind >= String.length prefix
               && String.sub kind 0 (String.length prefix) = prefix)
             kinds
        then { delay = d.delay *. factor }
        else d) }

let with_window ~inner ~from_time ~until_time ~during =
  { name = Printf.sprintf "%s+window[%s]" inner.name during.name;
    decide =
      (fun ~now ~src ~dst ~kind ->
        if now >= from_time && now < until_time then
          during.decide ~now ~src ~dst ~kind
        else inner.decide ~now ~src ~dst ~kind) }
