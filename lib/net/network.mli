(** Reliable authenticated point-to-point links over the simulator.

    Matches the paper's model (§2): between correct processes every sent
    message is eventually delivered and the recipient knows the sender's
    identity (delivery hands the handler the true source — authentication
    is by construction). The adversary appears twice: the {!Sched.t}
    policy controls every arrival time, and [corrupt] lets an adaptive
    adversary drop the not-yet-delivered messages of a newly corrupted
    process.

    The network is polymorphic in the message type; each protocol stack
    instantiates it with its own variant. Every send is charged to the
    {!Metrics.Counters.t} with a caller-supplied bit size and kind tag. *)

type 'msg t

val create :
  engine:Sim.Engine.t ->
  sched:Sched.t ->
  counters:Metrics.Counters.t ->
  n:int ->
  'msg t

val set_trace : 'msg t -> Trace.t -> unit
(** Attach a tracer: from now on every send emits {!Trace.Send}
    (stamped before the scheduler decides the delay), every delivery
    that reaches a registered handler emits {!Trace.Recv}, and every
    delivery that does not emits {!Trace.Drop} with a reason tag
    ("fault", "corrupt", "corrupted-src", or "no-handler"). Without a
    tracer the hot path is unchanged. *)

val set_faults : 'msg t -> Faults.t -> unit
(** Install a link-fault policy: every subsequent send asks it for a
    {!Faults.verdict} and may be dropped, duplicated, delayed further,
    or corrupted (see {!set_corrupter}). Without a policy installed the
    send path is exactly the reliable original — no extra RNG draws or
    engine events, so fault-free runs are byte-identical. *)

val set_corrupter : 'msg t -> ('msg -> 'msg) -> unit
(** How to bit-corrupt a message when the fault policy asks for it
    (e.g. {!Link.corrupt_frame} for frame networks). Corruption
    verdicts on a network with no corrupter degrade to drops (reason
    "corrupt") — a typed message that cannot be mutated in a
    representable way is simply lost. *)

val drop_counts : 'msg t -> (string * int) list
(** Deliveries that never reached a handler, counted by reason tag,
    sorted by reason. Empty until something is dropped. *)

val n : 'msg t -> int

val register : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Install process [i]'s message handler. Re-registering replaces the
    handler (used by restart tests).
    @raise Invalid_argument on a bad index. *)

val unregister : 'msg t -> int -> unit
(** Remove process [i]'s handler; subsequent deliveries to [i] are
    dropped silently. Models a crashed endpoint (fault injection);
    {!register} revives it.
    @raise Invalid_argument on a bad index. *)

val send :
  ?mid:int ->
  'msg t ->
  src:int ->
  dst:int ->
  kind:string ->
  bits:int ->
  'msg ->
  unit
(** Asynchronous unicast; delivery is scheduled per the policy. Sends to
    self also go through the queue (a process never handles its own
    message re-entrantly).

    When traced, the send carries a logical-message correlation id:
    [mid] if given (how {!Link} keeps one id across retransmit copies of
    the same frame), a {!Trace.fresh_id} otherwise. The {!Trace.Send},
    {!Trace.Recv}, and {!Trace.Drop} events all carry it, and the
    receiving handler runs under {!Trace.with_cause}, so every event it
    emits names this message as its cause. Untraced, [mid] is ignored
    and no id is allocated. *)

val broadcast : 'msg t -> src:int -> kind:string -> bits:int -> 'msg -> unit
(** Best-effort send to all [n] processes including the sender. This is
    NOT reliable broadcast — it is the all-to-all primitive reliable
    broadcast protocols are built from. *)

val corrupt : 'msg t -> ?drop_in_flight:bool -> int -> unit
(** Mark a process Byzantine from the current time on. With
    [drop_in_flight] (default [true]) its messages sent before this
    moment but not yet delivered are discarded, per the adaptive
    adversary in §2. The process keeps running — Byzantine behaviour
    itself is whatever handler/driver the test installs. *)

val is_corrupted : 'msg t -> int -> bool

val correct : 'msg t -> int -> bool
(** Complement of {!is_corrupted}; shaped for the metrics predicates. *)

val delivered_count : 'msg t -> int
(** Total deliveries so far (debugging / progress assertions). *)
