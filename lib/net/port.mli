(** Transport abstraction the protocol stacks are written against.

    A port is the narrow waist between a protocol (reliable broadcast,
    coin shares, catch-up sync) and whatever carries its messages: a
    bare {!Network} when links are assumed reliable, or an array of
    {!Link} endpoints rebuilding reliability over a lossy network. The
    API mirrors {!Network}'s send/broadcast/register shape, so
    protocol code is transport-agnostic and {!of_network} delegates
    directly — a port over a reliable network behaves byte-identically
    to using the network in place. *)

type 'msg t

val n : 'msg t -> int

val send : 'msg t -> src:int -> dst:int -> kind:string -> bits:int -> 'msg -> unit

val broadcast : 'msg t -> src:int -> kind:string -> bits:int -> 'msg -> unit
(** {!send} to all [n] processes, self included. *)

val register : 'msg t -> int -> (src:int -> 'msg -> unit) -> unit
(** Install process [i]'s handler; re-registering replaces it. *)

val unregister : 'msg t -> int -> unit

val of_network : 'msg Network.t -> 'msg t
(** Direct delegation — same behavior, same schedule, same traces. *)

val of_links : 'msg Link.t array -> 'msg t
(** [send ~src] goes out through [links.(src)]; handlers install on
    the destination endpoint. The array must hold one endpoint per
    process, index-aligned.
    @raise Invalid_argument on an empty array. *)
