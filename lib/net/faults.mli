(** Link-fault injection policies.

    The paper's model (§2) gives every pair of correct processes a
    reliable authenticated link; {!Sched} only chooses {e when} a
    message arrives. A fault policy breaks the reliability half: per
    message it may drop the delivery, schedule extra duplicate copies,
    flag the payload for bit-corruption, or add reordering delay —
    each decided per-link with seeded probabilities, so lossy
    executions stay deterministic replays of their seed. {!Network}
    consults the installed policy on every send (see
    {!Network.set_faults}); the {!Link} transport is the layer that
    rebuilds the reliable abstraction on top. *)

type verdict = {
  drop : bool;  (** lose the message entirely *)
  duplicates : int;  (** deliver this many extra copies *)
  corrupt : bool;  (** flip bits in every delivered copy *)
  extra_delay : float;  (** added to the schedule's delay (reordering) *)
}

val clean : verdict
(** Deliver exactly once, unmodified, on time. *)

type t = {
  name : string;
  decide : now:float -> src:int -> dst:int -> kind:string -> verdict;
}

val none : t
(** Always {!clean} — the paper's reliable links. *)

val lossy :
  rng:Stdx.Rng.t ->
  ?drop:float ->
  ?duplicate:float ->
  ?corrupt:float ->
  ?reorder:float ->
  ?reorder_spread:float ->
  unit ->
  t
(** Independent per-message faults: each probability (default 0.0)
    triggers its fault via a seeded draw. A reordered message gains a
    uniform extra delay in [0, reorder_spread) (default spread 3.0 —
    several times the baseline schedules' delays, enough to overtake
    later sends). Draw order is fixed, so a policy built from a split
    of the run's root RNG keeps the execution deterministic.
    @raise Invalid_argument on a probability outside [0,1] or a
    negative spread. *)

val on_links : pred:(src:int -> dst:int -> bool) -> t -> t
(** Restrict a policy to matching links; others get {!clean}. Note the
    inner policy only draws on matching links, so narrowing a policy
    also changes the RNG stream — derive policies from separate splits
    when comparing runs. *)

val with_window : from_time:float -> until_time:float -> t -> t
(** Apply the inner policy only in [[from_time, until_time)] — a burst
    of loss, like {!Sched.with_window} is a burst of latency. *)
