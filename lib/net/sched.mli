(** Message-delivery scheduling policies — the asynchronous adversary.

    In the paper's model the adversary controls the arrival time of every
    message, constrained only by eventual delivery on links between
    correct processes. A policy maps each send to a finite delivery
    delay; the discrete-event engine then delivers in delay order.

    Delay convention: links between correct processes stay within
    [(0, base_max]] with [base_max = 1.0], so one paper "time unit" (the
    maximum correct-link delay, §3) equals one unit of virtual time and
    measured spans are comparable across policies. Targeted policies may
    stretch {e selected} messages far beyond 1.0 — the adversary is
    allowed to do that; it just makes the run's real time-unit larger,
    which is exactly the effect the protocol must survive. *)

type decision = { delay : float }

type t = {
  name : string;
  decide : now:float -> src:int -> dst:int -> kind:string -> decision;
}

val synchronous : unit -> t
(** Every message takes exactly 1.0 — the friendliest schedule. *)

val uniform_random : rng:Stdx.Rng.t -> t
(** Delay uniform in (0, 1]; the "random asynchrony" baseline. *)

val skewed_random : rng:Stdx.Rng.t -> t
(** Heavy-tailed: most messages fast, a few slow (exponential with mean
    0.3, capped at 1.0) — models jittery WANs while keeping the
    time-unit normalization. *)

val bimodal : rng:Stdx.Rng.t -> ?slow_fraction:float -> ?slow_factor:float -> unit -> t
(** Most messages uniform in (0, 1], but a [slow_fraction] (default
    0.25) of them take up to [slow_factor] (default 5.0). The stragglers
    make per-instance completion times genuinely dispersed, which is
    what exposes the O(log n) max-of-n-slots effect in the SMR
    baselines (experiment E2); all systems in a comparison run under
    the same policy, so relative shape is preserved. *)

val heavy_tailed : rng:Stdx.Rng.t -> t
(** Exponential delays with mean 1.0 and no cap: the upper tail makes
    the completion time of a fixed-size protocol instance itself
    heavy-tailed, so the max over n concurrent instances grows like
    log n — the regime in which the Ben-Or–El-Yaniv bound binds. *)

val mobile_sluggish :
  inner:t -> n:int -> f:int -> period:float -> factor:float -> t
(** The classic "mobile sluggish" adversary: at any time a rotating set
    of [f] processes (indices [(floor(now/period) * f + i) mod n]) has
    its outgoing messages stretched by [factor]. No process is slowed
    forever (liveness is preserved), but a protocol that must wait for a
    {e specific} elected process pays ~[period] whenever the coin picks
    a currently-slowed one — the geometric-views regime in which the
    Ben-Or–El-Yaniv O(log n) bound for slot-parallel SMRs binds, while
    quorum-driven DAG rounds keep advancing on the fast 2f+1. *)

val delay_process : inner:t -> victim:int -> factor:float -> t
(** Stretch every message {e from} [victim] by [factor] (censorship /
    slow-process scenario; used by the fairness experiment E3). *)

val delay_matching :
  inner:t -> pred:(src:int -> dst:int -> kind:string -> bool) -> factor:float -> t
(** Stretch messages selected by [pred]; general targeted adversary (used
    to reproduce Figure 2's "leader hidden from the wave" schedule). *)

val rush_process : inner:t -> favored:int -> t
(** Deliver the favored process's messages (almost) instantly; combined
    with [delay_process] this builds maximally unbalanced schedules. *)

val partition : inner:t -> left:(int -> bool) -> factor:float -> t
(** Stretch every message crossing between [{i | left i}] and its
    complement by [factor] — a (temporary, when wrapped in
    {!with_window}) network partition. Delays stay finite, so eventual
    delivery — the only constraint the paper's adversary has — is
    preserved; a quorum-splitting partition simply stalls waves until
    the window closes. *)

val kind_storm : inner:t -> kinds:string list -> factor:float -> t
(** Stretch every message whose kind starts with one of the given
    prefixes by [factor] — a protocol-phase-targeted delay storm (e.g.
    ["coin-"] starves wave resolution while the DAG keeps growing,
    ["bracha-ready"] holds broadcasts at the brink of delivery).
    Compose with {!with_window} for a bounded storm. *)

val with_window :
  inner:t -> from_time:float -> until_time:float -> during:t -> t
(** Use [during] for sends whose time falls in [\[from_time, until_time)],
    [inner] otherwise — lets an attack run for a bounded phase and then
    release (needed to show eventual liveness after an attack). *)
