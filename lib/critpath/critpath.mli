(** Causal critical-path tracer: cross-node, per-commit latency
    attribution.

    Where {!Analyze} answers "how long did each pipeline stage take on
    average", this module answers "{e which messages, which links, and
    which stragglers} made THIS commit as slow as it was". It consumes
    the same {!Trace} event stream — live through {!Trace.add_sink} or
    replayed from a JSONL dump — and uses the wire-level correlation
    ids ({!Trace.kind.Send}[.id] / {!Trace.event}[.cause]) to rebuild,
    for every vertex the observer [a_deliver]ed, the cross-node causal
    chain from the proposer's [Vertex_created] to the observer's
    reliable-broadcast delivery, and to partition the end-to-end
    create→[a_deliver] latency into disjoint segments:

    - {b handler-hold}: time a causal message sat between the arrival
      of its trigger and its own first send (node-side processing);
    - {b retransmit-stall}: first send → last send of the copy that
      got through (reliable-link backoff under loss);
    - {b transit}: last send → delivery (scheduler/network flight
      time), per directed link;
    - {b quorum-wait}: earliest quorum-completing ready arrival →
      RBC deliver at the observer — the time spent waiting for the
      {e straggler}, who is named;
    - {b dag-wait}: RBC deliver → DAG insert (Algorithm 2 buffering
      on missing strong edges);
    - {b order-wait}: DAG insert → [a_deliver] (wave resolution and
      Algorithm 3 ordering).

    The six segments telescope: on a consistent (untruncated) trace
    their sum reconciles with the end-to-end latency exactly, which
    {!report.r_reconciled} counts and {!cross_check} audits against the
    analyzer's stage histograms.

    When the run carries a traced workload ({!Trace.kind.Tx_submitted}
    / {!Trace.kind.Block_assembled}), a {e mempool-wait} segment is
    attributed per transaction as well: the built-in mempool drains
    FIFO, so mirroring each node's accepted submissions in a queue and
    popping [txs] entries at every block assembly recovers exact per-tx
    dwell from the event stream alone. Mempool dwell precedes vertex
    creation, so it reports alongside — not inside — the telescoping
    create→[a_deliver] decomposition and never perturbs residuals. *)

type config = {
  observer : int option;
      (** process whose [a_deliver] log anchors reconstruction; [None]
          picks the streaming observer if one was set at {!create},
          else the process with the longest log (lowest id on ties) *)
  tolerance : float;
      (** |residual| bound (in virtual time) under which a path counts
          as reconciled (default 1.0 — one simulator tick) *)
}

val default_config : config

type hop = {
  h_id : int;  (** correlation id of the message *)
  h_src : int;
  h_dst : int;
  h_kind : string;  (** wire kind, e.g. "bracha-echo" *)
  h_sent : float;  (** first send *)
  h_last_sent : float;  (** last (re)send before first delivery *)
  h_recv : float;  (** delivery at [h_dst] *)
  h_hold : float;
      (** handler hold charged to this hop: trigger arrival (or vertex
          creation, for the first hop) → [h_sent] *)
  h_attempts : int;  (** send copies observed (1 = no retransmit) *)
}
(** One edge of the causal chain. Stall = [h_last_sent - h_sent],
    transit = [h_recv - h_last_sent]. *)

type path = {
  p_round : int;
  p_source : int;
  (* landmarks (nan when the event is missing from the stream) *)
  p_created : float;
  p_rbc_deliver : float;
  p_inserted : float;
  p_committed : float;  (** observer's last commit before [a_deliver] *)
  p_adeliver : float;
  p_first_ready : float;  (** earliest counted quorum-ready arrival *)
  p_straggler : int;
      (** source of the message whose handling completed the deliver
          quorum — who the observer waited for ([-1] unknown) *)
  p_trigger : string;  (** that message's wire kind *)
  p_hops : hop list;  (** origin-first causal chain *)
  (* segments (nan on incomplete paths where not derivable) *)
  p_transit : float;
  p_stall : float;
  p_hold : float;
  p_quorum : float;
  p_dag : float;
  p_order : float;
  p_txs : int;
      (** transactions this vertex carried whose mempool dwell could be
          attributed (0 without a traced workload, or when the ring
          dropped the submissions — under-counts, never invents) *)
  p_tx_wait : float;
      (** mean mempool dwell (submit → block assembly) of those txs;
          nan when [p_txs = 0]. Pre-creation time: not part of
          [p_total] or the residual. *)
  p_total : float;  (** end-to-end create → [a_deliver] *)
  p_residual : float;  (** [p_total] − segment sum; 0 when consistent *)
  p_complete : bool;
  p_reason : string;
      (** why reconstruction fell short ("" when complete):
          "no-create" | "no-rbc-deliver" | "no-dag-insert" |
          "no-trigger" | "chain-broken" | "chain-cycle" *)
}

type report = {
  r_observer : int;
  r_processes : int;
  r_events : int;
  r_truncated : bool;
      (** stream did not start at sequence 0 (ring wrapped before the
          first event seen) — chains into the lost head come out
          "chain-broken", so completeness numbers are lower bounds *)
  r_tolerance : float;
  r_paths : path list;  (** observer's [a_deliver] order *)
  r_complete : int;
  r_reconciled : int;  (** complete and |residual| ≤ tolerance *)
  r_max_residual : float;  (** worst |residual| over complete paths *)
  r_incomplete : (string * int) list;  (** reason → count, sorted *)
  r_segments : (string * Analyze.summary) list;
      (** per-segment digests over complete paths, pipeline order:
          "handler-hold", "retransmit-stall", "transit", "quorum-wait",
          "dag-wait", "order-wait", "total"; a leading "mempool-wait"
          (per-tx dwell) appears when the run carried a traced
          workload *)
  r_stragglers : (int * int * float) list;
      (** (node, paths it completed last, total quorum-wait charged),
          descending by count — who the fleet keeps waiting for *)
  r_edges : ((int * int) * Analyze.summary) list;
      (** per directed link (src, dst): transit digests over chain
          hops, descending by mean — the slowest links *)
}

(** {1 Accumulation} *)

type t
(** A streaming accumulator; feed events in stream order. *)

val create : ?observer:int -> ?tolerance:float -> unit -> t
(** With [observer], paths are reconstructed {e online} as that
    process's [a_deliver] events arrive, so {!segment_means} is cheap
    enough for monitor probes mid-run. Without it, reconstruction
    happens at {!finalize} for whichever observer the config picks. *)

val feed : t -> Trace.event -> unit
(** O(1) per event; [Trace.add_sink tracer (feed acc)] reconstructs a
    live run in full even when the ring wraps. *)

val finalize : ?config:config -> t -> report
(** Pure with respect to the accumulator — feeding can continue and
    [finalize] can be called again. *)

val analyze : ?config:config -> Trace.event list -> report

val of_tracer : ?config:config -> Trace.t -> report
(** Reconstruct from a tracer's retained window ({!Trace.events});
    [r_truncated] reports whether older events were lost. *)

val of_jsonl_file : ?config:config -> string -> (report, string) result
(** Replay a JSONL trace dump written by [dagrider_run trace --jsonl]
    or the swarm checker. Pre-correlation-id dumps parse fine; their
    chains all come out "chain-broken" but landmarks still resolve. *)

val segment_means : t -> (string * float) list
(** Live aggregates over paths streamed so far (streaming mode only;
    all zeros otherwise), keyed "critpath.commits",
    "critpath.complete", "critpath.reconciled",
    "critpath.<segment>.mean" — the series {!Harness.Runner} exports
    to {!Monitor} probes and [metrics_snapshot]. *)

(** {1 Validation} *)

val cross_check : report -> Analyze.report -> string list
(** Audit the reconstruction against the analyzer's independent stage
    histograms (same observer required): recompute the analyzer's five
    landmark stages from the reconstructed paths and compare count and
    mean per stage. Each line starts with ["ok"] or ["MISMATCH"]. *)

(** {1 Output} *)

val report_to_json : report -> Stdx.Json.t

val waterfall : path -> string
(** ASCII waterfall for one commit: a header naming total latency and
    the straggler, then one bar row per causal hop ([~] = retransmit
    stall, [=] = transit) and per tail segment ([#] = quorum-wait),
    positioned on the create→[a_deliver] time axis. *)

val render : ?top:int -> report -> string
(** Human-readable report: completeness and reconciliation counts,
    per-segment digests, straggler and slowest-link tables, then
    waterfalls of the [top] (default 3) slowest complete commits. *)

val dot_path : path -> string
(** Graphviz rendering of one commit's critical path — the causal hop
    chain plus the quorum/dag/order tail — reusing the Figure 1/2
    palette via {!Dagrider.Render.class_style}: origin vertex gold,
    chain hops gray, straggler lightcoral, observer stages
    lightskyblue/palegreen. *)
