type config = { observer : int option; tolerance : float }

let default_config = { observer = None; tolerance = 1.0 }

type hop = {
  h_id : int;
  h_src : int;
  h_dst : int;
  h_kind : string;
  h_sent : float;
  h_last_sent : float;
  h_recv : float;
  h_hold : float;
  h_attempts : int;
}

type path = {
  p_round : int;
  p_source : int;
  p_created : float;
  p_rbc_deliver : float;
  p_inserted : float;
  p_committed : float;
  p_adeliver : float;
  p_first_ready : float;
  p_straggler : int;
  p_trigger : string;
  p_hops : hop list;
  p_transit : float;
  p_stall : float;
  p_hold : float;
  p_quorum : float;
  p_dag : float;
  p_order : float;
  p_txs : int;
  p_tx_wait : float;
  p_total : float;
  p_residual : float;
  p_complete : bool;
  p_reason : string;
}

type report = {
  r_observer : int;
  r_processes : int;
  r_events : int;
  r_truncated : bool;
  r_tolerance : float;
  r_paths : path list;
  r_complete : int;
  r_reconciled : int;
  r_max_residual : float;
  r_incomplete : (string * int) list;
  r_segments : (string * Analyze.summary) list;
  r_stragglers : (int * int * float) list;
  r_edges : ((int * int) * Analyze.summary) list;
}

(* One logical message, folded over its Send/Retransmit/Recv events.
   [m_last_send] is the last send copy observed BEFORE the first
   delivery (events arrive in stream order, so once [m_recv] is set a
   late retransmit-timer copy no longer moves it) — that keeps both
   stall and transit non-negative. [m_cause] comes from the first Send
   only: retransmit copies fire from timer context (cause -1). *)
type msg = {
  m_src : int;
  m_dst : int;
  m_kind : string;
  m_first_send : float;
  mutable m_last_send : float;
  m_cause : int;
  mutable m_recv : float; (* nan until delivered *)
  mutable m_attempts : int;
}

type stream_stats = {
  ss_quorum : Stdx.Stats.t;
  ss_transit : Stdx.Stats.t;
  ss_stall : Stdx.Stats.t;
  ss_hold : Stdx.Stats.t;
  ss_dag : Stdx.Stats.t;
  ss_order : Stdx.Stats.t;
  ss_txwait : Stdx.Stats.t;
  ss_total : Stdx.Stats.t;
  mutable ss_commits : int;
  mutable ss_complete : int;
  mutable ss_reconciled : int;
}

type t = {
  mutable first_seq : int; (* -1 until the first event *)
  mutable events : int;
  mutable max_node : int;
  msgs : (int, msg) Hashtbl.t; (* correlation id -> folded message *)
  (* (sender, activation cause) -> ready-kind sends of that activation:
     the join from a node's "ready" phase event to the wire copies it
     broadcast, used to time quorum arrivals at the observer *)
  ready_sends : (int * int, (int * int) list ref) Hashtbl.t;
  created : (int * int, float * int) Hashtbl.t; (* (round, source) *)
  deliver : (int * int * int, float * int) Hashtbl.t; (* (node, origin, round) *)
  ready_at : (int * int * int, int) Hashtbl.t; (* (node, origin, round) -> cause *)
  inserted : (int * int * int, float) Hashtbl.t; (* (node, round, source) *)
  last_commit : (int, float) Hashtbl.t;
  adeliv : (int, (int * int * float * float) list ref) Hashtbl.t;
  (* FIFO mirror of each node's built-in mempool: accepted submit times
     not yet drained into a block. [blocks] records, per assembled
     (round, source) vertex, how many of its txs the mirror could match
     and their summed dwell — a truncated stream under-counts instead
     of inventing dwell *)
  txq : (int, float Queue.t) Hashtbl.t;
  blocks : (int * int, int * float) Hashtbl.t;
  kinds : (string, string) Hashtbl.t; (* intern pool for JSONL replays *)
  stream_observer : int option;
  tolerance : float;
  mutable built : path list; (* newest first; streaming mode only *)
  stream : stream_stats;
}

let create ?observer ?(tolerance = 1.0) () =
  { first_seq = -1;
    events = 0;
    max_node = -1;
    msgs = Hashtbl.create 4096;
    ready_sends = Hashtbl.create 1024;
    created = Hashtbl.create 256;
    deliver = Hashtbl.create 1024;
    ready_at = Hashtbl.create 1024;
    inserted = Hashtbl.create 1024;
    last_commit = Hashtbl.create 16;
    adeliv = Hashtbl.create 16;
    txq = Hashtbl.create 16;
    blocks = Hashtbl.create 256;
    kinds = Hashtbl.create 16;
    stream_observer = observer;
    tolerance;
    built = [];
    stream =
      { ss_quorum = Stdx.Stats.create ();
        ss_transit = Stdx.Stats.create ();
        ss_stall = Stdx.Stats.create ();
        ss_hold = Stdx.Stats.create ();
        ss_dag = Stdx.Stats.create ();
        ss_order = Stdx.Stats.create ();
        ss_txwait = Stdx.Stats.create ();
        ss_total = Stdx.Stats.create ();
        ss_commits = 0;
        ss_complete = 0;
        ss_reconciled = 0 } }

let intern t s =
  match Hashtbl.find_opt t.kinds s with
  | Some v -> v
  | None ->
    Hashtbl.add t.kinds s s;
    s

let push tbl key v =
  match Hashtbl.find_opt tbl key with
  | Some cell -> cell := v :: !cell
  | None -> Hashtbl.add tbl key (ref [ v ])

let add_first tbl key v = if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v

let is_ready_kind kind =
  let n = String.length kind in
  n >= 6 && String.sub kind (n - 6) 6 = "-ready"

let nan = Float.nan

let mk_hop id (m : msg) ~hold =
  { h_id = id;
    h_src = m.m_src;
    h_dst = m.m_dst;
    h_kind = m.m_kind;
    h_sent = m.m_first_send;
    h_last_sent = m.m_last_send;
    h_recv = m.m_recv;
    h_hold = hold;
    h_attempts = m.m_attempts }

(* ---- per-commit reconstruction ---- *)

let build_path t ~observer (round, source, at, commit_at) =
  (* mempool dwell of the txs this vertex carried; pre-creation time,
     so it sits outside the telescoping segments and the residual *)
  let txs, tx_wait =
    match Hashtbl.find_opt t.blocks (round, source) with
    | Some (n, sum) when n > 0 -> (n, sum /. float_of_int n)
    | _ -> (0, nan)
  in
  let created = Hashtbl.find_opt t.created (round, source) in
  let delivered = Hashtbl.find_opt t.deliver (observer, source, round) in
  let ins = Hashtbl.find_opt t.inserted (observer, round, source) in
  let f_created = match created with Some (x, _) -> x | None -> nan in
  let f_rbc = match delivered with Some (x, _) -> x | None -> nan in
  let f_ins = match ins with Some x -> x | None -> nan in
  let base reason =
    { p_round = round;
      p_source = source;
      p_created = f_created;
      p_rbc_deliver = f_rbc;
      p_inserted = f_ins;
      p_committed = commit_at;
      p_adeliver = at;
      p_first_ready = nan;
      p_straggler = -1;
      p_trigger = "";
      p_hops = [];
      p_transit = nan;
      p_stall = nan;
      p_hold = nan;
      p_quorum = nan;
      p_dag =
        (if Float.is_nan f_rbc || Float.is_nan f_ins then nan
         else f_ins -. f_rbc);
      p_order = (if Float.is_nan f_ins then nan else at -. f_ins);
      p_txs = txs;
      p_tx_wait = tx_wait;
      p_total = (if Float.is_nan f_created then nan else at -. f_created);
      p_residual = nan;
      p_complete = false;
      p_reason = reason }
  in
  match (created, delivered, ins) with
  | None, _, _ -> base "no-create"
  | _, None, _ -> base "no-rbc-deliver"
  | _, _, None -> base "no-dag-insert"
  | Some (t0, c0), Some (t1, cd), Some t2 ->
    (* the straggler: whoever sent the message whose handling completed
       the deliver quorum at the observer *)
    let straggler, trigger =
      if cd < 0 then (-1, "")
      else
        match Hashtbl.find_opt t.msgs cd with
        | Some m -> (m.m_src, m.m_kind)
        | None -> (-1, "")
    in
    (* quorum arrivals: for each peer that reached its own "ready"
       phase for this vertex, find the ready copy it sent the observer
       and take its delivery time (only arrivals at or before the
       observer's deliver count — later ones were not waited for) *)
    let arrivals = ref [] in
    for q = 0 to t.max_node do
      match Hashtbl.find_opt t.ready_at (q, source, round) with
      | None -> ()
      | Some cq -> (
        match Hashtbl.find_opt t.ready_sends (q, cq) with
        | None -> ()
        | Some sends ->
          List.iter
            (fun (dst, id) ->
              if dst = observer then
                match Hashtbl.find_opt t.msgs id with
                | Some m when (not (Float.is_nan m.m_recv)) && m.m_recv <= t1
                  ->
                  arrivals := (m.m_recv, id) :: !arrivals
                | _ -> ())
            !sends)
    done;
    let chain_start, first_ready =
      match List.sort compare !arrivals with
      | (recv, id) :: _ -> (Some id, recv)
      | [] ->
        (* no indexed ready arrivals (e.g. gossip sampled past the
           observer): chain from the deliver trigger itself, charging
           no quorum wait *)
        if cd < 0 then (None, nan)
        else (
          match Hashtbl.find_opt t.msgs cd with
          | Some m when not (Float.is_nan m.m_recv) -> (Some cd, m.m_recv)
          | _ -> (None, nan))
    in
    (match chain_start with
    | None ->
      { (base "no-trigger") with p_straggler = straggler; p_trigger = trigger }
    | Some start_id ->
      (* walk the cause chain backward to the origin's own activation;
         hops accumulate origin-first *)
      let rec walk hops ~transit ~stall ~hold id depth =
        if depth > 10_000 then Error "chain-cycle"
        else
          match Hashtbl.find_opt t.msgs id with
          | None -> Error "chain-broken"
          | Some m when Float.is_nan m.m_recv -> Error "chain-broken"
          | Some m ->
            let transit = transit +. (m.m_recv -. m.m_last_send) in
            let stall = stall +. (m.m_last_send -. m.m_first_send) in
            if m.m_cause = c0 && m.m_src = source then
              (* the origin's send shares the activation that created
                 the vertex: the chain is rooted *)
              let h = m.m_first_send -. t0 in
              Ok (mk_hop id m ~hold:h :: hops, transit, stall, hold +. h)
            else if m.m_cause < 0 then Error "chain-broken"
            else (
              match Hashtbl.find_opt t.msgs m.m_cause with
              | None -> Error "chain-broken"
              | Some mc when Float.is_nan mc.m_recv -> Error "chain-broken"
              | Some mc ->
                let h = m.m_first_send -. mc.m_recv in
                walk
                  (mk_hop id m ~hold:h :: hops)
                  ~transit ~stall ~hold:(hold +. h) m.m_cause (depth + 1))
      in
      (match walk [] ~transit:0.0 ~stall:0.0 ~hold:0.0 start_id 0 with
      | Error reason ->
        { (base reason) with
          p_straggler = straggler;
          p_trigger = trigger;
          p_first_ready = first_ready }
      | Ok (hops, transit, stall, hold) ->
        let quorum = t1 -. first_ready in
        let dag = t2 -. t1 in
        let order = at -. t2 in
        let total = at -. t0 in
        let sum = transit +. stall +. hold +. quorum +. dag +. order in
        { p_round = round;
          p_source = source;
          p_created = t0;
          p_rbc_deliver = t1;
          p_inserted = t2;
          p_committed = commit_at;
          p_adeliver = at;
          p_first_ready = first_ready;
          p_straggler = straggler;
          p_trigger = trigger;
          p_hops = hops;
          p_transit = transit;
          p_stall = stall;
          p_hold = hold;
          p_quorum = quorum;
          p_dag = dag;
          p_order = order;
          p_txs = txs;
          p_tx_wait = tx_wait;
          p_total = total;
          p_residual = total -. sum;
          p_complete = true;
          p_reason = "" }))

let note_stream t p =
  let ss = t.stream in
  ss.ss_commits <- ss.ss_commits + 1;
  if p.p_complete then begin
    ss.ss_complete <- ss.ss_complete + 1;
    if Float.abs p.p_residual <= t.tolerance then
      ss.ss_reconciled <- ss.ss_reconciled + 1;
    Stdx.Stats.add ss.ss_quorum p.p_quorum;
    Stdx.Stats.add ss.ss_transit p.p_transit;
    Stdx.Stats.add ss.ss_stall p.p_stall;
    Stdx.Stats.add ss.ss_hold p.p_hold;
    Stdx.Stats.add ss.ss_dag p.p_dag;
    Stdx.Stats.add ss.ss_order p.p_order;
    if p.p_txs > 0 then Stdx.Stats.add ss.ss_txwait p.p_tx_wait;
    Stdx.Stats.add ss.ss_total p.p_total
  end

let feed t (e : Trace.event) =
  if t.first_seq < 0 then t.first_seq <- e.Trace.seq;
  t.events <- t.events + 1;
  let at = e.Trace.time in
  let bump i = if i > t.max_node then t.max_node <- i in
  match e.Trace.kind with
  | Trace.Send { src; dst; msg_kind; id; _ } when id >= 0 -> (
    bump src;
    bump dst;
    match Hashtbl.find_opt t.msgs id with
    | Some m ->
      m.m_attempts <- m.m_attempts + 1;
      if Float.is_nan m.m_recv then m.m_last_send <- at
    | None ->
      let kind = intern t msg_kind in
      Hashtbl.add t.msgs id
        { m_src = src;
          m_dst = dst;
          m_kind = kind;
          m_first_send = at;
          m_last_send = at;
          m_cause = e.Trace.cause;
          m_recv = nan;
          m_attempts = 1 };
      if e.Trace.cause >= 0 && is_ready_kind kind then
        push t.ready_sends (src, e.Trace.cause) (dst, id))
  | Trace.Recv { id; _ } when id >= 0 -> (
    match Hashtbl.find_opt t.msgs id with
    | Some m -> if Float.is_nan m.m_recv then m.m_recv <- at
    | None -> () (* send fell off the ring before we saw it *))
  | Trace.Rbc_phase { node; origin; round; phase } ->
    bump node;
    if String.equal phase "deliver" then
      add_first t.deliver (node, origin, round) (at, e.Trace.cause)
    else if String.equal phase "ready" then
      add_first t.ready_at (node, origin, round) e.Trace.cause
  | Trace.Vertex_created { node; round } ->
    bump node;
    add_first t.created (round, node) (at, e.Trace.cause)
  | Trace.Vertex_added { node; round; source } ->
    bump node;
    add_first t.inserted (node, round, source) at
  | Trace.Tx_submitted { node; accepted } ->
    bump node;
    if accepted then begin
      let q =
        match Hashtbl.find_opt t.txq node with
        | Some q -> q
        | None ->
          let q = Queue.create () in
          Hashtbl.add t.txq node q;
          q
      in
      Queue.push at q
    end
  | Trace.Block_assembled { node; round; txs } ->
    bump node;
    (match Hashtbl.find_opt t.txq node with
    | None -> ()
    | Some q ->
      let n = ref 0 and sum = ref 0.0 in
      for _ = 1 to txs do
        if not (Queue.is_empty q) then begin
          sum := !sum +. (at -. Queue.pop q);
          incr n
        end
      done;
      if !n > 0 then add_first t.blocks (round, node) (!n, !sum))
  | Trace.Commit { node; _ } -> Hashtbl.replace t.last_commit node at
  | Trace.A_deliver { node; round; source } -> (
    bump node;
    let commit_at =
      match Hashtbl.find_opt t.last_commit node with
      | Some c -> c
      | None -> nan
    in
    push t.adeliv node (round, source, at, commit_at);
    match t.stream_observer with
    | Some obs when obs = node ->
      let p = build_path t ~observer:obs (round, source, at, commit_at) in
      t.built <- p :: t.built;
      note_stream t p
    | _ -> ())
  | _ -> ()

(* ---- aggregation ---- *)

let empty_summary =
  { Analyze.s_count = 0; s_mean = 0.0; s_p50 = 0.0; s_p99 = 0.0; s_max = 0.0 }

let summary_of_stats st =
  if Stdx.Stats.count st = 0 then empty_summary
  else
    { Analyze.s_count = Stdx.Stats.count st;
      s_mean = Stdx.Stats.mean st;
      s_p50 = Stdx.Stats.percentile st 50.0;
      s_p99 = Stdx.Stats.percentile st 99.0;
      s_max = Stdx.Stats.max_value st }

let segment_order =
  [ "handler-hold";
    "retransmit-stall";
    "transit";
    "quorum-wait";
    "dag-wait";
    "order-wait";
    "total" ]

let segment_sel = function
  | "handler-hold" -> fun p -> p.p_hold
  | "retransmit-stall" -> fun p -> p.p_stall
  | "transit" -> fun p -> p.p_transit
  | "quorum-wait" -> fun p -> p.p_quorum
  | "dag-wait" -> fun p -> p.p_dag
  | "order-wait" -> fun p -> p.p_order
  | "total" -> fun p -> p.p_total
  | _ -> fun _ -> nan

let pick_observer t =
  match t.stream_observer with
  | Some o -> o
  | None ->
    let best = ref None in
    Hashtbl.iter
      (fun node cell ->
        let len = List.length !cell in
        match !best with
        | Some (bn, blen) when blen > len || (blen = len && bn < node) -> ()
        | _ -> best := Some (node, len))
      t.adeliv;
    (match !best with Some (node, _) -> node | None -> 0)

let finalize ?(config = default_config) t =
  let observer =
    match config.observer with Some o -> o | None -> pick_observer t
  in
  let paths =
    match t.stream_observer with
    | Some o when o = observer -> List.rev t.built
    | _ ->
      let entries =
        match Hashtbl.find_opt t.adeliv observer with
        | Some cell -> List.rev !cell
        | None -> []
      in
      List.map (build_path t ~observer) entries
  in
  let complete = List.filter (fun p -> p.p_complete) paths in
  let reconciled =
    List.length
      (List.filter
         (fun p -> Float.abs p.p_residual <= config.tolerance)
         complete)
  in
  let max_residual =
    List.fold_left
      (fun acc p -> Float.max acc (Float.abs p.p_residual))
      0.0 complete
  in
  let incomplete =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun p ->
        if not p.p_complete then
          match Hashtbl.find_opt tbl p.p_reason with
          | Some cell -> incr cell
          | None -> Hashtbl.add tbl p.p_reason (ref 1))
      paths;
    List.sort compare
      (Hashtbl.fold (fun k cell acc -> (k, !cell) :: acc) tbl [])
  in
  let segments =
    List.map
      (fun name ->
        let sel = segment_sel name in
        let st = Stdx.Stats.create () in
        List.iter (fun p -> Stdx.Stats.add st (sel p)) complete;
        (name, summary_of_stats st))
      segment_order
  in
  (* per-tx mempool dwell is pre-creation time — reported as its own
     leading segment only when the run carried a traced workload, so
     workload-free reports are unchanged *)
  let segments =
    let st = Stdx.Stats.create () in
    List.iter
      (fun p -> if p.p_txs > 0 then Stdx.Stats.add st p.p_tx_wait)
      complete;
    if Stdx.Stats.count st = 0 then segments
    else ("mempool-wait", summary_of_stats st) :: segments
  in
  let stragglers =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun p ->
        if p.p_straggler >= 0 then begin
          let count, wait =
            match Hashtbl.find_opt tbl p.p_straggler with
            | Some (c, w) -> (c, w)
            | None -> (0, 0.0)
          in
          let q = if Float.is_nan p.p_quorum then 0.0 else p.p_quorum in
          Hashtbl.replace tbl p.p_straggler (count + 1, wait +. q)
        end)
      paths;
    List.sort
      (fun (n1, c1, _) (n2, c2, _) -> compare (-c1, n1) (-c2, n2))
      (Hashtbl.fold (fun node (c, w) acc -> (node, c, w) :: acc) tbl [])
  in
  let edges =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun p ->
        List.iter
          (fun h ->
            let st =
              match Hashtbl.find_opt tbl (h.h_src, h.h_dst) with
              | Some st -> st
              | None ->
                let st = Stdx.Stats.create () in
                Hashtbl.add tbl (h.h_src, h.h_dst) st;
                st
            in
            Stdx.Stats.add st (h.h_recv -. h.h_last_sent))
          p.p_hops)
      complete;
    List.sort
      (fun (e1, s1) (e2, s2) ->
        compare (-.s1.Analyze.s_mean, e1) (-.s2.Analyze.s_mean, e2))
      (Hashtbl.fold
         (fun edge st acc -> ((edge, summary_of_stats st)) :: acc)
         tbl [])
  in
  { r_observer = observer;
    r_processes = t.max_node + 1;
    r_events = t.events;
    r_truncated = t.first_seq > 0;
    r_tolerance = config.tolerance;
    r_paths = paths;
    r_complete = List.length complete;
    r_reconciled = reconciled;
    r_max_residual = max_residual;
    r_incomplete = incomplete;
    r_segments = segments;
    r_stragglers = stragglers;
    r_edges = edges }

let analyze ?config events =
  let t = create () in
  List.iter (feed t) events;
  finalize ?config t

let of_tracer ?config tr = analyze ?config (Trace.events tr)

let of_jsonl_file ?config path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | contents -> (
    match Trace.events_of_jsonl contents with
    | Error e -> Error e
    | Ok events -> Ok (analyze ?config events))

let segment_means t =
  let ss = t.stream in
  let mean st = if Stdx.Stats.count st = 0 then 0.0 else Stdx.Stats.mean st in
  [ ("critpath.commits", float_of_int ss.ss_commits);
    ("critpath.complete", float_of_int ss.ss_complete);
    ("critpath.reconciled", float_of_int ss.ss_reconciled);
    ("critpath.mempool-wait.mean", mean ss.ss_txwait);
    ("critpath.handler-hold.mean", mean ss.ss_hold);
    ("critpath.retransmit-stall.mean", mean ss.ss_stall);
    ("critpath.transit.mean", mean ss.ss_transit);
    ("critpath.quorum-wait.mean", mean ss.ss_quorum);
    ("critpath.dag-wait.mean", mean ss.ss_dag);
    ("critpath.order-wait.mean", mean ss.ss_order);
    ("critpath.total.mean", mean ss.ss_total) ]

(* ---- cross-validation against the analyzer ---- *)

let cross_check (r : report) (ar : Analyze.report) =
  (* mirror the analyzer's all-or-nothing rule: a vertex contributes to
     the stage histograms only when every landmark resolved *)
  let eligible =
    List.filter
      (fun p ->
        not
          (Float.is_nan p.p_created
          || Float.is_nan p.p_rbc_deliver
          || Float.is_nan p.p_inserted
          || Float.is_nan p.p_committed))
      r.r_paths
  in
  let stage label sel =
    let st = Stdx.Stats.create () in
    List.iter (fun p -> Stdx.Stats.add st (sel p)) eligible;
    match List.assoc_opt label ar.Analyze.r_stages with
    | None -> Printf.sprintf "MISMATCH %-26s analyzer lacks this stage" label
    | Some s ->
      let n = Stdx.Stats.count st in
      let mean = if n = 0 then 0.0 else Stdx.Stats.mean st in
      let close =
        Float.abs (mean -. s.Analyze.s_mean)
        <= 1e-6 *. (1.0 +. Float.abs s.Analyze.s_mean)
      in
      let ok = n = s.Analyze.s_count && close in
      Printf.sprintf "%s %-26s critpath n=%-5d mean=%-9.4f analyzer n=%-5d mean=%-9.4f"
        (if ok then "ok      " else "MISMATCH")
        label n mean s.Analyze.s_count s.Analyze.s_mean
  in
  [ stage "create->rbc_deliver" (fun p -> p.p_rbc_deliver -. p.p_created);
    stage "rbc_deliver->dag_insert" (fun p -> p.p_inserted -. p.p_rbc_deliver);
    stage "dag_insert->commit" (fun p -> p.p_committed -. p.p_inserted);
    stage "commit->a_deliver" (fun p -> p.p_adeliver -. p.p_committed);
    stage "create->a_deliver (total)" (fun p -> p.p_adeliver -. p.p_created) ]

(* ---- output ---- *)

let summary_to_json (s : Analyze.summary) =
  Stdx.Json.Obj
    [ ("n", Stdx.Json.Int s.Analyze.s_count);
      ("mean", Stdx.Json.Float s.Analyze.s_mean);
      ("p50", Stdx.Json.Float s.Analyze.s_p50);
      ("p99", Stdx.Json.Float s.Analyze.s_p99);
      ("max", Stdx.Json.Float s.Analyze.s_max) ]

let float_or_null v =
  if Float.is_nan v then Stdx.Json.Null else Stdx.Json.Float v

let hop_to_json h =
  Stdx.Json.Obj
    [ ("id", Stdx.Json.Int h.h_id);
      ("src", Stdx.Json.Int h.h_src);
      ("dst", Stdx.Json.Int h.h_dst);
      ("kind", Stdx.Json.String h.h_kind);
      ("sent", Stdx.Json.Float h.h_sent);
      ("last_sent", Stdx.Json.Float h.h_last_sent);
      ("recv", Stdx.Json.Float h.h_recv);
      ("hold", Stdx.Json.Float h.h_hold);
      ("attempts", Stdx.Json.Int h.h_attempts) ]

let path_to_json p =
  Stdx.Json.Obj
    [ ("round", Stdx.Json.Int p.p_round);
      ("source", Stdx.Json.Int p.p_source);
      ("created", float_or_null p.p_created);
      ("rbc_deliver", float_or_null p.p_rbc_deliver);
      ("inserted", float_or_null p.p_inserted);
      ("committed", float_or_null p.p_committed);
      ("a_deliver", Stdx.Json.Float p.p_adeliver);
      ("first_ready", float_or_null p.p_first_ready);
      ("straggler", Stdx.Json.Int p.p_straggler);
      ("trigger", Stdx.Json.String p.p_trigger);
      ("hops", Stdx.Json.List (List.map hop_to_json p.p_hops));
      ("handler_hold", float_or_null p.p_hold);
      ("retransmit_stall", float_or_null p.p_stall);
      ("transit", float_or_null p.p_transit);
      ("quorum_wait", float_or_null p.p_quorum);
      ("dag_wait", float_or_null p.p_dag);
      ("order_wait", float_or_null p.p_order);
      ("txs", Stdx.Json.Int p.p_txs);
      ("tx_wait", float_or_null p.p_tx_wait);
      ("total", float_or_null p.p_total);
      ("residual", float_or_null p.p_residual);
      ("complete", Stdx.Json.Bool p.p_complete);
      ("reason", Stdx.Json.String p.p_reason) ]

let report_to_json r =
  Stdx.Json.Obj
    [ ("observer", Stdx.Json.Int r.r_observer);
      ("processes", Stdx.Json.Int r.r_processes);
      ("events", Stdx.Json.Int r.r_events);
      ("truncated", Stdx.Json.Bool r.r_truncated);
      ("tolerance", Stdx.Json.Float r.r_tolerance);
      ("commits", Stdx.Json.Int (List.length r.r_paths));
      ("complete", Stdx.Json.Int r.r_complete);
      ("reconciled", Stdx.Json.Int r.r_reconciled);
      ("max_residual", Stdx.Json.Float r.r_max_residual);
      ( "incomplete",
        Stdx.Json.Obj
          (List.map (fun (k, v) -> (k, Stdx.Json.Int v)) r.r_incomplete) );
      ( "segments",
        Stdx.Json.Obj
          (List.map (fun (k, s) -> (k, summary_to_json s)) r.r_segments) );
      ( "stragglers",
        Stdx.Json.List
          (List.map
             (fun (node, count, wait) ->
               Stdx.Json.Obj
                 [ ("node", Stdx.Json.Int node);
                   ("paths", Stdx.Json.Int count);
                   ("total_quorum_wait", Stdx.Json.Float wait) ])
             r.r_stragglers) );
      ( "edges",
        Stdx.Json.List
          (List.map
             (fun ((src, dst), s) ->
               Stdx.Json.Obj
                 [ ("src", Stdx.Json.Int src);
                   ("dst", Stdx.Json.Int dst);
                   ("transit", summary_to_json s) ])
             r.r_edges) );
      ("paths", Stdx.Json.List (List.map path_to_json r.r_paths)) ]

(* ---- rendering ---- *)

let bar_width = 40

(* one bar row on the [t0, t0+span] axis; [segs] are (from, to, char)
   in absolute time *)
let bar ~t0 ~span segs =
  let buf = Bytes.make bar_width ' ' in
  let cell x =
    let i = int_of_float (Float.of_int bar_width *. (x -. t0) /. span) in
    if i < 0 then 0 else if i > bar_width then bar_width else i
  in
  List.iter
    (fun (a, b, ch) ->
      if not (Float.is_nan a || Float.is_nan b) then begin
        let i0 = cell a in
        let i1 = max (cell b) (i0 + 1) in
        for i = i0 to min (bar_width - 1) (i1 - 1) do
          Bytes.set buf i ch
        done
      end)
    segs;
  Bytes.to_string buf

let waterfall p =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "commit (r%d,p%d)" p.p_round p.p_source;
  if Float.is_nan p.p_total then add "  total ?"
  else add "  total %.3f" p.p_total;
  if p.p_txs > 0 then
    add "  %d txs (mempool wait %.3f)" p.p_txs p.p_tx_wait;
  if p.p_straggler >= 0 then
    add "  straggler p%d (%s)" p.p_straggler p.p_trigger;
  if not p.p_complete then add "  [incomplete: %s]" p.p_reason;
  add "\n";
  let t0 = p.p_created in
  let span = p.p_adeliver -. t0 in
  if Float.is_nan span || span <= 0.0 then
    add "  (no renderable time axis)\n"
  else begin
    let row label segs note =
      add "  %-24s |%s| %s\n" label (bar ~t0 ~span segs) note
    in
    List.iter
      (fun h ->
        let label =
          Printf.sprintf "p%d %s > p%d" h.h_src h.h_kind h.h_dst
        in
        let note =
          let transit = h.h_recv -. h.h_last_sent in
          let stall = h.h_last_sent -. h.h_sent in
          if h.h_attempts > 1 then
            Printf.sprintf "transit %.3f stall %.3f (x%d)" transit stall
              h.h_attempts
          else Printf.sprintf "transit %.3f" transit
        in
        row label
          [ (h.h_sent, h.h_last_sent, '~'); (h.h_last_sent, h.h_recv, '=') ]
          note)
      p.p_hops;
    if not (Float.is_nan p.p_quorum) then
      row
        (if p.p_straggler >= 0 then
           Printf.sprintf "quorum wait (p%d last)" p.p_straggler
         else "quorum wait")
        [ (p.p_first_ready, p.p_rbc_deliver, '#') ]
        (Printf.sprintf "%.3f" p.p_quorum);
    if not (Float.is_nan p.p_dag) then
      row "dag insert"
        [ (p.p_rbc_deliver, p.p_inserted, '=') ]
        (Printf.sprintf "%.3f" p.p_dag);
    if not (Float.is_nan p.p_order) then
      row "ordering"
        [ (p.p_inserted, p.p_adeliver, '=') ]
        (Printf.sprintf "%.3f" p.p_order);
    if p.p_complete then add "  residual %.6f\n" p.p_residual
  end;
  Buffer.contents buf

let fmt_summary (s : Analyze.summary) =
  Printf.sprintf "n=%-6d mean=%-9.3f p50=%-9.3f p99=%-9.3f max=%-9.3f"
    s.Analyze.s_count s.Analyze.s_mean s.Analyze.s_p50 s.Analyze.s_p99
    s.Analyze.s_max

let render ?(top = 3) r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "== critical paths ==\n";
  add "observer p%d over %d processes; %d events\n" r.r_observer r.r_processes
    r.r_events;
  if r.r_truncated then
    add
      "WARNING: trace is TRUNCATED (ring wrapped before the first event \
       seen) — causal chains into the lost head come out chain-broken and \
       completeness numbers are lower bounds\n";
  add
    "paths: %d commits reconstructed, %d complete, %d reconciled \
     (|residual| <= %.2f), max residual %.6f\n"
    (List.length r.r_paths) r.r_complete r.r_reconciled r.r_tolerance
    r.r_max_residual;
  if r.r_incomplete <> [] then begin
    add "incomplete:";
    List.iter (fun (reason, n) -> add " %s x%d" reason n) r.r_incomplete;
    add "\n"
  end;
  add "\nsegments per committed vertex:\n";
  List.iter
    (fun (label, s) -> add "  %-18s %s\n" label (fmt_summary s))
    r.r_segments;
  if r.r_stragglers <> [] then begin
    add "\nstragglers (completed the observer's deliver quorum last):\n";
    List.iter
      (fun (node, count, wait) ->
        add "  p%-3d x%-5d total quorum wait %.3f\n" node count wait)
      r.r_stragglers
  end;
  if r.r_edges <> [] then begin
    add "\nslowest links (critical-path transit):\n";
    List.iter
      (fun ((src, dst), s) -> add "  p%d > p%-3d %s\n" src dst (fmt_summary s))
      r.r_edges
  end;
  let slowest =
    List.filteri
      (fun i _ -> i < top)
      (List.stable_sort
         (fun a b -> compare b.p_total a.p_total)
         (List.filter (fun p -> p.p_complete) r.r_paths))
  in
  if slowest <> [] then begin
    add "\nslowest commits:\n";
    List.iter (fun p -> add "%s" (waterfall p)) slowest
  end;
  Buffer.contents buf

let dot_path p =
  let buf = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let style c = Dagrider.Render.class_style c in
  add "digraph critpath {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  add
    "  // critical path of commit (r%d,p%d): gold = origin vertex,\n\
    \  // gray = causal chain hop, lightcoral = quorum straggler,\n\
    \  // lightskyblue / palegreen = observer-side stages\n"
    p.p_round p.p_source;
  add "  create [label=\"create (r%d,p%d)\\nt=%.3f\"]%s;\n" p.p_round
    p.p_source p.p_created
    (style Dagrider.Render.Committed_leader);
  let prev = ref "create" in
  List.iteri
    (fun i h ->
      let id = Printf.sprintf "hop%d" i in
      add "  %s [label=\"p%d recv %s\\nt=%.3f\"]%s;\n" id h.h_dst h.h_kind
        h.h_recv
        (style Dagrider.Render.Shaded);
      let note =
        if h.h_attempts > 1 then
          Printf.sprintf "%s x%d\\nstall %.3f transit %.3f" h.h_kind
            h.h_attempts
            (h.h_last_sent -. h.h_sent)
            (h.h_recv -. h.h_last_sent)
        else Printf.sprintf "%s\\ntransit %.3f" h.h_kind (h.h_recv -. h.h_last_sent)
      in
      add "  %s -> %s [label=\"%s\"];\n" !prev id note;
      prev := id)
    p.p_hops;
  if not (Float.is_nan p.p_quorum) then begin
    let label =
      if p.p_straggler >= 0 then
        Printf.sprintf "quorum complete\\n(p%d last, %s)" p.p_straggler
          p.p_trigger
      else "quorum complete"
    in
    add "  quorum [label=\"%s\\nt=%.3f\"]%s;\n" label p.p_rbc_deliver
      (style Dagrider.Render.Skipped_leader);
    add "  %s -> quorum [label=\"quorum wait %.3f\"];\n" !prev p.p_quorum;
    prev := "quorum"
  end;
  if not (Float.is_nan p.p_dag) then begin
    add "  insert [label=\"dag insert\\nt=%.3f\"]%s;\n" p.p_inserted
      (style Dagrider.Render.Elected_leader);
    add "  %s -> insert [label=\"dag wait %.3f\"];\n" !prev p.p_dag;
    prev := "insert"
  end;
  add "  adeliver [label=\"a_deliver\\nt=%.3f\"]%s;\n" p.p_adeliver
    (style Dagrider.Render.Supporter);
  (if Float.is_nan p.p_order then add "  %s -> adeliver;\n" !prev
   else add "  %s -> adeliver [label=\"order wait %.3f\"];\n" !prev p.p_order);
  add "}\n";
  Buffer.contents buf
