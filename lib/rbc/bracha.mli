(** Bracha reliable broadcast (Bracha 1987), the classic O(n^2 |m|)
    instantiation (Table 1 row "DAG-Rider + [11]").

    Protocol, per instance [(origin, round)]:
    - the sender broadcasts [Init payload];
    - on the {e first} [Init] received for the instance, a process
      broadcasts [Echo payload];
    - on [2f+1] [Echo]s for the same payload digest, or [f+1] [Ready]s
      for the same digest, a process broadcasts [Ready payload] (once);
    - on [2f+1] [Ready]s for the same digest it delivers.

    Quorum intersection of the Echo stage prevents two correct processes
    from becoming ready for different payloads of an equivocating
    Byzantine sender; the [f+1]-Ready amplification gives totality.
    Echo/Ready carry the full payload (the textbook protocol — this is
    exactly why the complexity row is quadratic in [|m|]). *)

type msg =
  | Init of { round : int; payload : string }
  | Echo of { origin : int; round : int; payload : string }
  | Ready of { origin : int; round : int; payload : string }
(** Exposed so tests can inject Byzantine traffic directly. *)

val encode_msg : msg -> string
(** Canonical wire encoding; senders charge exactly its size. *)

val decode_msg : string -> msg option
(** Inverse of {!encode_msg}; [None] on any malformed input. *)

type t

val create_port :
  port:msg Net.Port.t -> me:int -> f:int -> deliver:Rbc_intf.deliver -> t
(** Registers process [me]'s handler on the port — a direct network or
    reliable links over a lossy one; the protocol is transport-agnostic
    (its handlers are idempotent, so even transport-level duplicates
    are harmless). *)

val create :
  net:msg Net.Network.t -> me:int -> f:int -> deliver:Rbc_intf.deliver -> t
(** [create_port] over [Net.Port.of_network net]. *)

val set_trace : t -> Trace.t -> unit
(** Emit {!Trace.Rbc_phase} events ("init", "echo", "ready", "deliver")
    for every instance transition at this process from now on. *)

val bcast : t -> payload:string -> round:int -> unit
(** [r_bcast] of the abstraction. A correct process calls this at most
    once per round (the DAG layer guarantees it). *)

val delivered_instances : t -> int
(** Number of instances this process has delivered (for tests). *)

val inject_init : t -> dst:int -> round:int -> payload:string -> unit
(** Byzantine-attacker capability: send a raw [Init] for this process's
    instance [(me, round)] to a {e single} destination — the primitive
    an equivocating or withholding sender uses to show different
    payloads (or nothing) to different victims. Runs the real wire
    codec; honest processes must exclude or converge the resulting
    forks via Echo-quorum intersection. Attack harness only. *)
