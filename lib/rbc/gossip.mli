(** Sample-based probabilistic reliable broadcast, after Guerraoui et
    al., "Scalable Byzantine Reliable Broadcast" (DISC 2019) — the
    O(n log n) instantiation of Table 1 row "DAG-Rider + [25]".

    Structure (simplified from the paper's Murmur/Sieve/Contagion stack,
    keeping the sample-based costs and the ε-failure trade-off):
    - {b dissemination} (Murmur): the sender gossips the payload to a
      random sample of [G = ceil (gossip_factor * ln n)] peers; every
      process relays on first receipt to its own sample — an epidemic
      that reaches all correct processes whp;
    - {b consistency} (Sieve): on first receipt a process sends a
      digest-only [Echo] to a random sample of size [E]; a process that
      has accumulated [echo_threshold * E] echoes for one digest becomes
      {e ready};
    - {b totality} (Contagion): ready processes send digest-only [Ready]
      to a sample of size [R]; [ready_threshold * R] readies (plus the
      payload itself) trigger delivery, and readies are re-gossiped once
      on a feedback threshold.

    Unlike Bracha/AVID the guarantees hold with probability [1 - ε]
    rather than 1 — the paper's reliable-broadcast abstraction is stated
    with probability-1 clauses precisely so that such gossip protocols
    qualify (§2). Per-process cost is [O(log n)] messages of size
    [O(|m|)] (dissemination) plus [O(log n)] digests, hence the
    [O(n log n (|m| + λ))] total. *)

type msg =
  | Gossip of { origin : int; round : int; payload : string }
  | Echo of { origin : int; round : int; digest : string }
  | Ready of { origin : int; round : int; digest : string }

val encode_msg : msg -> string
val decode_msg : string -> msg option

type params = {
  gossip_factor : float;  (** sample multiplier on ln n; default 3.0 *)
  echo_sample : float;    (** echo sample multiplier on ln n; default 4.0 *)
  ready_sample : float;   (** ready sample multiplier on ln n; default 4.0 *)
  echo_threshold : float; (** fraction of echo sample required; default 0.66 *)
  ready_threshold : float;(** fraction of ready sample required; default 0.33 *)
}

val default_params : params

type t

val create_port :
  port:msg Net.Port.t ->
  rng:Stdx.Rng.t ->
  ?params:params ->
  me:int ->
  f:int ->
  deliver:Rbc_intf.deliver ->
  unit ->
  t
(** Transport-agnostic constructor (see {!Net.Port}). *)

val create :
  net:msg Net.Network.t ->
  rng:Stdx.Rng.t ->
  ?params:params ->
  me:int ->
  f:int ->
  deliver:Rbc_intf.deliver ->
  unit ->
  t
(** [create_port] over [Net.Port.of_network net]. *)

val set_trace : t -> Trace.t -> unit
(** Emit {!Trace.Rbc_phase} events ("init", "gossip", "echo", "ready",
    "deliver") for every instance transition at this process from now
    on. *)

val bcast : t -> payload:string -> round:int -> unit

val delivered_instances : t -> int

val inject_gossip : t -> dst:int -> round:int -> payload:string -> unit
(** Byzantine-attacker capability: gossip a chosen payload for this
    process's instance [(me, round)] to a single destination — the
    equivocation/withholding primitive. When samples cover the whole
    network (small n) the hardened quorum floors make correct processes
    exclude or converge the fork; in the sampled regime the guarantee is
    the paper's probabilistic one. Attack harness only. *)
