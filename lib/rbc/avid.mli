(** Asynchronous verifiable information dispersal used as reliable
    broadcast (Cachin–Tessaro 2005) — the O(n^2 log n + n |m|)
    instantiation behind Table 1's optimal row "DAG-Rider + [14]".

    Per instance [(origin, round)]:
    - the sender Reed–Solomon-encodes the payload into [n] fragments
      ([k = f+1] suffice to reconstruct), builds a Merkle tree over them,
      and sends process [i] its fragment with an inclusion proof
      ([Disperse]);
    - a process receiving its valid fragment relays it to everyone
      ([Echo]) — so each process transmits [O(|m|/n + log n)] bits
      instead of [O(|m|)];
    - on [2f+1] valid echoed fragments under one root it broadcasts the
      constant-size [Ready root]; [f+1] [Ready]s amplify;
    - on [2f+1] [Ready]s and [f+1] stored fragments it reconstructs,
      {e re-encodes} and recomputes the Merkle root. If the root matches,
      it delivers; otherwise the committed vector was not a codeword (a
      Byzantine dispersal) and the instance is deterministically
      discarded by every correct process — agreement holds either way.

    The re-encoding check is what makes reconstruction independent of
    which [f+1] fragments a process happens to hold: a committed vector
    either is a codeword (all subsets give the same polynomial) or no
    subset's reconstruction can re-produce the committed root. *)

type msg =
  | Disperse of {
      round : int;
      root : string;
      data_len : int;
      frag_index : int;
      frag : string;
      proof : Crypto.Merkle.proof;
    }
  | Echo of {
      origin : int;
      round : int;
      root : string;
      data_len : int;
      frag_index : int;
      frag : string;
      proof : Crypto.Merkle.proof;
    }
  | Ready of { origin : int; round : int; root : string; data_len : int }

val encode_msg : msg -> string
(** Canonical wire encoding (fragments, Merkle proofs and all); senders
    charge exactly its size. *)

val decode_msg : string -> msg option

type t

val create_port :
  port:msg Net.Port.t -> me:int -> f:int -> deliver:Rbc_intf.deliver -> t
(** Transport-agnostic constructor (see {!Net.Port}). *)

val create :
  net:msg Net.Network.t -> me:int -> f:int -> deliver:Rbc_intf.deliver -> t
(** [create_port] over [Net.Port.of_network net]. *)

val set_trace : t -> Trace.t -> unit
(** Emit {!Trace.Rbc_phase} events ("disperse", "echo", "ready",
    "deliver", "discard") for every instance transition at this process
    from now on. *)

val bcast : t -> payload:string -> round:int -> unit

val delivered_instances : t -> int

val bcast_inconsistent : t -> payload:string -> round:int -> unit
(** Byzantine dispersal helper for tests: commits to a fragment vector
    that is {e not} a codeword (one fragment corrupted before building
    the tree). Correct processes must all discard the instance. *)

val inject_disperse : t -> dsts:int list -> round:int -> payload:string -> unit
(** Byzantine-attacker capability: run the real dispersal (RS encoding,
    Merkle commitment, per-fragment proofs) for [payload] but send only
    the fragments belonging to [dsts] — equivocation sends two such
    dispersals with different payloads to disjoint sets, withholding
    sends one to a strict subset. Out-of-range destinations are
    ignored. Attack harness only. *)
