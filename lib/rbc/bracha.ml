open Rbc_intf

type msg =
  | Init of { round : int; payload : string }
  | Echo of { origin : int; round : int; payload : string }
  | Ready of { origin : int; round : int; payload : string }

let encode_msg msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Init { round; payload } ->
    Wire.put_u8 buf 1;
    Wire.put_u32 buf round;
    Wire.put_bytes buf payload
  | Echo { origin; round; payload } ->
    Wire.put_u8 buf 2;
    Wire.put_u32 buf origin;
    Wire.put_u32 buf round;
    Wire.put_bytes buf payload
  | Ready { origin; round; payload } ->
    Wire.put_u8 buf 3;
    Wire.put_u32 buf origin;
    Wire.put_u32 buf round;
    Wire.put_bytes buf payload);
  Buffer.contents buf

let decode_msg src =
  Wire.decode src (fun r ->
      match Wire.get_u8 r with
      | 1 ->
        let round = Wire.get_u32 r in
        let payload = Wire.get_bytes r in
        Wire.finish r (Init { round; payload })
      | 2 ->
        let origin = Wire.get_u32 r in
        let round = Wire.get_u32 r in
        let payload = Wire.get_bytes r in
        Wire.finish r (Echo { origin; round; payload })
      | 3 ->
        let origin = Wire.get_u32 r in
        let round = Wire.get_u32 r in
        let payload = Wire.get_bytes r in
        Wire.finish r (Ready { origin; round; payload })
      | _ -> None)

let msg_bits msg = Wire.bits (encode_msg msg)

type instance = {
  mutable echoed : bool;
  mutable ready_sent : bool;
  mutable delivered : bool;
  echoes : (string, Iset.t ref) Hashtbl.t; (* digest -> echoers *)
  readies : (string, Iset.t ref) Hashtbl.t; (* digest -> ready senders *)
  payloads : (string, string) Hashtbl.t; (* digest -> payload *)
}

type t = {
  net : msg Net.Port.t;
  me : int;
  f : int;
  deliver : deliver;
  instances : instance Tbl.t;
  mutable delivered_count : int;
  mutable trace : Trace.t option;
}

let set_trace t tr = t.trace <- Some tr

let phase t ~origin ~round p =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr (Trace.Rbc_phase { node = t.me; origin; round; phase = p })

let get_instance t key =
  match Tbl.find_opt t.instances key with
  | Some inst -> inst
  | None ->
    let inst =
      { echoed = false;
        ready_sent = false;
        delivered = false;
        echoes = Hashtbl.create 4;
        readies = Hashtbl.create 4;
        payloads = Hashtbl.create 4 }
    in
    Tbl.add t.instances key inst;
    inst

let quorum t = (2 * t.f) + 1
let amplify t = t.f + 1

let add_voter table digest voter =
  let set =
    match Hashtbl.find_opt table digest with
    | Some s -> s
    | None ->
      let s = ref Iset.empty in
      Hashtbl.add table digest s;
      s
  in
  set := Iset.add voter !set;
  Iset.cardinal !set

let send_echo t ~origin ~round ~payload =
  phase t ~origin ~round "echo";
  let msg = Echo { origin; round; payload } in
  Net.Port.broadcast t.net ~src:t.me ~kind:"bracha-echo"
    ~bits:(msg_bits msg) msg

let send_ready t inst ~origin ~round ~payload =
  if not inst.ready_sent then begin
    inst.ready_sent <- true;
    phase t ~origin ~round "ready";
    let msg = Ready { origin; round; payload } in
    Net.Port.broadcast t.net ~src:t.me ~kind:"bracha-ready"
      ~bits:(msg_bits msg) msg
  end

let try_deliver t inst ~origin ~round ~digest =
  if not inst.delivered then
    match Hashtbl.find_opt inst.readies digest with
    | Some set when Iset.cardinal !set >= quorum t ->
      (match Hashtbl.find_opt inst.payloads digest with
      | Some payload ->
        inst.delivered <- true;
        t.delivered_count <- t.delivered_count + 1;
        phase t ~origin ~round "deliver";
        t.deliver ~payload ~round ~source:origin
      | None -> ())
    | _ -> ()

let handle t ~src msg =
  let sp = Prof.enter "rbc.bracha.recv" in
  (try
     match msg with
  | Init { round; payload } ->
    let origin = src in
    let inst = get_instance t (origin, round) in
    if not inst.echoed then begin
      inst.echoed <- true;
      send_echo t ~origin ~round ~payload
    end
  | Echo { origin; round; payload } ->
    let inst = get_instance t (origin, round) in
    let digest = Crypto.Sha256.digest_string payload in
    if not (Hashtbl.mem inst.payloads digest) then
      Hashtbl.add inst.payloads digest payload;
    let count = add_voter inst.echoes digest src in
    if count >= quorum t then
      send_ready t inst ~origin ~round ~payload
  | Ready { origin; round; payload } ->
    let inst = get_instance t (origin, round) in
    let digest = Crypto.Sha256.digest_string payload in
    if not (Hashtbl.mem inst.payloads digest) then
      Hashtbl.add inst.payloads digest payload;
    let count = add_voter inst.readies digest src in
    if count >= amplify t then
      send_ready t inst ~origin ~round ~payload;
    try_deliver t inst ~origin ~round ~digest
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

let create_port ~port ~me ~f ~deliver =
  let t =
    { net = port;
      me;
      f;
      deliver;
      instances = Tbl.create 64;
      delivered_count = 0;
      trace = None }
  in
  Net.Port.register port me (fun ~src msg -> handle t ~src msg);
  t

let create ~net ~me ~f ~deliver =
  create_port ~port:(Net.Port.of_network net) ~me ~f ~deliver

let bcast t ~payload ~round =
  let sp = Prof.enter "rbc.bracha.bcast" in
  (try
     phase t ~origin:t.me ~round "init";
     let msg = Init { round; payload } in
     Net.Port.broadcast t.net ~src:t.me ~kind:"bracha-init"
       ~bits:(msg_bits msg) msg
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

let inject_init t ~dst ~round ~payload =
  let msg = Init { round; payload } in
  Net.Port.send t.net ~src:t.me ~dst ~kind:"bracha-init" ~bits:(msg_bits msg)
    msg

let delivered_instances t = t.delivered_count
