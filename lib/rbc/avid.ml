open Rbc_intf

type msg =
  | Disperse of {
      round : int;
      root : string;
      data_len : int;
      frag_index : int;
      frag : string;
      proof : Crypto.Merkle.proof;
    }
  | Echo of {
      origin : int;
      round : int;
      root : string;
      data_len : int;
      frag_index : int;
      frag : string;
      proof : Crypto.Merkle.proof;
    }
  | Ready of { origin : int; round : int; root : string; data_len : int }

let put_proof buf (proof : Crypto.Merkle.proof) =
  Wire.put_u32 buf proof.Crypto.Merkle.leaf_index;
  Wire.put_u32 buf (List.length proof.Crypto.Merkle.path);
  List.iter (Wire.put_bytes buf) proof.Crypto.Merkle.path

let get_proof r =
  let leaf_index = Wire.get_u32 r in
  let count = Wire.get_u32 r in
  if count > 64 then raise Wire.Bad;
  let path = List.init count (fun _ -> Wire.get_bytes r) in
  if List.exists (fun d -> String.length d <> 32) path then raise Wire.Bad;
  { Crypto.Merkle.leaf_index; path }

let encode_msg msg =
  let buf = Buffer.create 128 in
  (match msg with
  | Disperse { round; root; data_len; frag_index; frag; proof } ->
    Wire.put_u8 buf 1;
    Wire.put_u32 buf round;
    Wire.put_bytes buf root;
    Wire.put_u32 buf data_len;
    Wire.put_u32 buf frag_index;
    Wire.put_bytes buf frag;
    put_proof buf proof
  | Echo { origin; round; root; data_len; frag_index; frag; proof } ->
    Wire.put_u8 buf 2;
    Wire.put_u32 buf origin;
    Wire.put_u32 buf round;
    Wire.put_bytes buf root;
    Wire.put_u32 buf data_len;
    Wire.put_u32 buf frag_index;
    Wire.put_bytes buf frag;
    put_proof buf proof
  | Ready { origin; round; root; data_len } ->
    Wire.put_u8 buf 3;
    Wire.put_u32 buf origin;
    Wire.put_u32 buf round;
    Wire.put_bytes buf root;
    Wire.put_u32 buf data_len);
  Buffer.contents buf

let decode_msg src =
  Wire.decode src (fun r ->
      match Wire.get_u8 r with
      | 1 ->
        let round = Wire.get_u32 r in
        let root = Wire.get_bytes r in
        let data_len = Wire.get_u32 r in
        let frag_index = Wire.get_u32 r in
        let frag = Wire.get_bytes r in
        let proof = get_proof r in
        if String.length root <> 32 then None
        else Wire.finish r (Disperse { round; root; data_len; frag_index; frag; proof })
      | 2 ->
        let origin = Wire.get_u32 r in
        let round = Wire.get_u32 r in
        let root = Wire.get_bytes r in
        let data_len = Wire.get_u32 r in
        let frag_index = Wire.get_u32 r in
        let frag = Wire.get_bytes r in
        let proof = get_proof r in
        if String.length root <> 32 then None
        else
          Wire.finish r
            (Echo { origin; round; root; data_len; frag_index; frag; proof })
      | 3 ->
        let origin = Wire.get_u32 r in
        let round = Wire.get_u32 r in
        let root = Wire.get_bytes r in
        let data_len = Wire.get_u32 r in
        if String.length root <> 32 then None
        else Wire.finish r (Ready { origin; round; root; data_len })
      | _ -> None)

let msg_bits msg = Wire.bits (encode_msg msg)

(* All quorum state is keyed by the pair (root, data_len): a Byzantine
   process that lies about either is voting for a different commitment
   and cannot poison the honest one. *)
type commit = { root : string; data_len : int }

type instance = {
  mutable echoed : bool;
  mutable ready_sent : bool;
  mutable delivered : bool;
  mutable discarded : bool;
  fragments : (commit, (int, string) Hashtbl.t) Hashtbl.t;
  echoers : (commit, Iset.t ref) Hashtbl.t;
  readies : (commit, Iset.t ref) Hashtbl.t;
}

type t = {
  net : msg Net.Port.t;
  me : int;
  n : int;
  f : int;
  k : int;
  coder : Crypto.Reed_solomon.coder;
  deliver : deliver;
  instances : instance Tbl.t;
  mutable delivered_count : int;
  mutable trace : Trace.t option;
}

let set_trace t tr = t.trace <- Some tr

let phase t ~origin ~round p =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr (Trace.Rbc_phase { node = t.me; origin; round; phase = p })

let get_instance t key =
  match Tbl.find_opt t.instances key with
  | Some inst -> inst
  | None ->
    let inst =
      { echoed = false;
        ready_sent = false;
        delivered = false;
        discarded = false;
        fragments = Hashtbl.create 4;
        echoers = Hashtbl.create 4;
        readies = Hashtbl.create 4 }
    in
    Tbl.add t.instances key inst;
    inst

let quorum t = (2 * t.f) + 1
let amplify t = t.f + 1

let add_voter table commit voter =
  let set =
    match Hashtbl.find_opt table commit with
    | Some s -> s
    | None ->
      let s = ref Iset.empty in
      Hashtbl.add table commit s;
      s
  in
  set := Iset.add voter !set;
  Iset.cardinal !set

let store_fragment inst ~commit ~frag_index ~frag =
  let frags =
    match Hashtbl.find_opt inst.fragments commit with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 8 in
      Hashtbl.add inst.fragments commit h;
      h
  in
  if not (Hashtbl.mem frags frag_index) then Hashtbl.add frags frag_index frag

let valid_fragment t ~commit ~frag ~proof ~frag_index =
  frag_index = proof.Crypto.Merkle.leaf_index
  && String.length frag
     = Crypto.Reed_solomon.fragment_length t.coder ~data_len:commit.data_len
  && Crypto.Merkle.verify ~root:commit.root ~leaf_count:t.n ~leaf:frag proof

let send_ready t inst ~origin ~round ~commit =
  if not inst.ready_sent then begin
    inst.ready_sent <- true;
    phase t ~origin ~round "ready";
    let msg =
      Ready { origin; round; root = commit.root; data_len = commit.data_len }
    in
    Net.Port.broadcast t.net ~src:t.me ~kind:"avid-ready"
      ~bits:(msg_bits msg) msg
  end

let try_deliver t inst ~origin ~round ~commit =
  if (not inst.delivered) && not inst.discarded then
    match Hashtbl.find_opt inst.readies commit with
    | Some set when Iset.cardinal !set >= quorum t -> begin
      match Hashtbl.find_opt inst.fragments commit with
      | Some frags when Hashtbl.length frags >= t.k -> begin
        let pieces =
          Hashtbl.fold (fun i frag acc -> (i, frag) :: acc) frags []
        in
        match
          Crypto.Reed_solomon.decode t.coder ~data_len:commit.data_len pieces
        with
        | exception Invalid_argument _ ->
          inst.discarded <- true;
          phase t ~origin ~round "discard"
        | payload ->
          (* re-encode and check the committed root: rejects Byzantine
             non-codeword dispersals deterministically, so every correct
             process makes the same deliver/discard decision *)
          let re_frags = Crypto.Reed_solomon.encode t.coder payload in
          let tree = Crypto.Merkle.build re_frags in
          if String.equal (Crypto.Merkle.root tree) commit.root then begin
            inst.delivered <- true;
            t.delivered_count <- t.delivered_count + 1;
            phase t ~origin ~round "deliver";
            t.deliver ~payload ~round ~source:origin
          end
          else begin
            inst.discarded <- true;
            phase t ~origin ~round "discard"
          end
      end
      | _ -> ()
    end
    | _ -> ()

let handle t ~src msg =
  let sp = Prof.enter "rbc.avid.recv" in
  (try
     match msg with
  | Disperse { round; root; data_len; frag_index; frag; proof } ->
    let origin = src in
    let commit = { root; data_len } in
    let inst = get_instance t (origin, round) in
    if
      frag_index = t.me
      && (not inst.echoed)
      && valid_fragment t ~commit ~frag ~proof ~frag_index
    then begin
      inst.echoed <- true;
      store_fragment inst ~commit ~frag_index ~frag;
      phase t ~origin ~round "echo";
      let msg = Echo { origin; round; root; data_len; frag_index; frag; proof } in
      Net.Port.broadcast t.net ~src:t.me ~kind:"avid-echo"
        ~bits:(msg_bits msg) msg
    end
  | Echo { origin; round; root; data_len; frag_index; frag; proof } ->
    let commit = { root; data_len } in
    let inst = get_instance t (origin, round) in
    if valid_fragment t ~commit ~frag ~proof ~frag_index then begin
      store_fragment inst ~commit ~frag_index ~frag;
      let count = add_voter inst.echoers commit src in
      if count >= quorum t then send_ready t inst ~origin ~round ~commit;
      try_deliver t inst ~origin ~round ~commit
    end
  | Ready { origin; round; root; data_len } ->
    let commit = { root; data_len } in
    let inst = get_instance t (origin, round) in
    let count = add_voter inst.readies commit src in
    if count >= amplify t then send_ready t inst ~origin ~round ~commit;
    try_deliver t inst ~origin ~round ~commit
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

let create_port ~port ~me ~f ~deliver =
  let n = Net.Port.n port in
  let k = f + 1 in
  let t =
    { net = port;
      me;
      n;
      f;
      k;
      coder = Crypto.Reed_solomon.make ~k ~n;
      deliver;
      instances = Tbl.create 64;
      delivered_count = 0;
      trace = None }
  in
  Net.Port.register port me (fun ~src msg -> handle t ~src msg);
  t

let create ~net ~me ~f ~deliver =
  create_port ~port:(Net.Port.of_network net) ~me ~f ~deliver

let disperse t ~round ~frags ~data_len =
  phase t ~origin:t.me ~round "disperse";
  let tree = Crypto.Merkle.build frags in
  let root = Crypto.Merkle.root tree in
  Array.iteri
    (fun i frag ->
      let proof = Crypto.Merkle.prove tree i in
      let msg = Disperse { round; root; data_len; frag_index = i; frag; proof } in
      Net.Port.send t.net ~src:t.me ~dst:i ~kind:"avid-disperse"
        ~bits:(msg_bits msg) msg)
    frags

let bcast t ~payload ~round =
  let sp = Prof.enter "rbc.avid.bcast" in
  (try
     let frags = Crypto.Reed_solomon.encode t.coder payload in
     disperse t ~round ~frags ~data_len:(String.length payload)
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

let inject_disperse t ~dsts ~round ~payload =
  let frags = Crypto.Reed_solomon.encode t.coder payload in
  let data_len = String.length payload in
  let tree = Crypto.Merkle.build frags in
  let root = Crypto.Merkle.root tree in
  List.iter
    (fun i ->
      if i >= 0 && i < t.n then begin
        let proof = Crypto.Merkle.prove tree i in
        let msg =
          Disperse { round; root; data_len; frag_index = i; frag = frags.(i); proof }
        in
        Net.Port.send t.net ~src:t.me ~dst:i ~kind:"avid-disperse"
          ~bits:(msg_bits msg) msg
      end)
    dsts

let bcast_inconsistent t ~payload ~round =
  let frags = Crypto.Reed_solomon.encode t.coder payload in
  (* corrupt one parity fragment before committing: the vector is no
     longer a codeword, so the re-encode check must fail everywhere *)
  let last = Array.length frags - 1 in
  frags.(last) <-
    String.map (fun c -> Char.chr (Char.code c lxor 0xFF)) frags.(last);
  disperse t ~round ~frags ~data_len:(String.length payload)

let delivered_instances t = t.delivered_count
