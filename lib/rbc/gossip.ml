open Rbc_intf

type msg =
  | Gossip of { origin : int; round : int; payload : string }
  | Echo of { origin : int; round : int; digest : string }
  | Ready of { origin : int; round : int; digest : string }

let encode_msg msg =
  let buf = Buffer.create 64 in
  (match msg with
  | Gossip { origin; round; payload } ->
    Wire.put_u8 buf 1;
    Wire.put_u32 buf origin;
    Wire.put_u32 buf round;
    Wire.put_bytes buf payload
  | Echo { origin; round; digest } ->
    Wire.put_u8 buf 2;
    Wire.put_u32 buf origin;
    Wire.put_u32 buf round;
    Wire.put_bytes buf digest
  | Ready { origin; round; digest } ->
    Wire.put_u8 buf 3;
    Wire.put_u32 buf origin;
    Wire.put_u32 buf round;
    Wire.put_bytes buf digest);
  Buffer.contents buf

let decode_msg src =
  Wire.decode src (fun r ->
      match Wire.get_u8 r with
      | 1 ->
        let origin = Wire.get_u32 r in
        let round = Wire.get_u32 r in
        let payload = Wire.get_bytes r in
        Wire.finish r (Gossip { origin; round; payload })
      | 2 ->
        let origin = Wire.get_u32 r in
        let round = Wire.get_u32 r in
        let digest = Wire.get_bytes r in
        if String.length digest <> 32 then None
        else Wire.finish r (Echo { origin; round; digest })
      | 3 ->
        let origin = Wire.get_u32 r in
        let round = Wire.get_u32 r in
        let digest = Wire.get_bytes r in
        if String.length digest <> 32 then None
        else Wire.finish r (Ready { origin; round; digest })
      | _ -> None)

let msg_bits msg = Wire.bits (encode_msg msg)

type params = {
  gossip_factor : float;
  echo_sample : float;
  ready_sample : float;
  echo_threshold : float;
  ready_threshold : float;
}

let default_params =
  { gossip_factor = 3.0;
    echo_sample = 4.0;
    ready_sample = 4.0;
    echo_threshold = 0.5;
    ready_threshold = 0.33 }

type instance = {
  mutable payload : string option;
  mutable accepted_digest : string option;
  mutable relayed : bool;
  mutable echo_sent : bool;
  mutable ready_sent : bool;
  mutable delivered : bool;
  echoes : (string, Iset.t ref) Hashtbl.t; (* digest -> echoers seen *)
  readies : (string, Iset.t ref) Hashtbl.t;
  alt_payloads : (string, string) Hashtbl.t;
      (* digest -> payload for variants seen after first acceptance: the
         repair store a minority side of an equivocation converges from *)
}

type t = {
  net : msg Net.Port.t;
  rng : Stdx.Rng.t;
  me : int;
  n : int;
  deliver : deliver;
  gossip_size : int;
  echo_size : int;
  ready_size : int;
  echo_need : int;
  ready_need : int;
  ready_feedback : int;
  instances : instance Tbl.t;
  mutable delivered_count : int;
  mutable trace : Trace.t option;
}

let set_trace t tr = t.trace <- Some tr

let phase t ~origin ~round p =
  match t.trace with
  | None -> ()
  | Some tr ->
    Trace.emit tr (Trace.Rbc_phase { node = t.me; origin; round; phase = p })

let sample_size n factor =
  let ln_n = log (float_of_int (max 2 n)) in
  min n (max 1 (int_of_float (ceil (factor *. ln_n))))

let get_instance t key =
  match Tbl.find_opt t.instances key with
  | Some inst -> inst
  | None ->
    let inst =
      { payload = None;
        accepted_digest = None;
        relayed = false;
        echo_sent = false;
        ready_sent = false;
        delivered = false;
        echoes = Hashtbl.create 4;
        readies = Hashtbl.create 4;
        alt_payloads = Hashtbl.create 2 }
    in
    Tbl.add t.instances key inst;
    inst

let add_voter table digest voter =
  let set =
    match Hashtbl.find_opt table digest with
    | Some s -> s
    | None ->
      let s = ref Iset.empty in
      Hashtbl.add table digest s;
      s
  in
  set := Iset.add voter !set;
  Iset.cardinal !set

let count_for table digest =
  match Hashtbl.find_opt table digest with
  | Some set -> Iset.cardinal !set
  | None -> 0

let send_sample t ~size ~kind ~bits msg =
  let peers = Stdx.Rng.sample_without_replacement t.rng ~k:size ~n:t.n in
  List.iter
    (fun dst -> Net.Port.send t.net ~src:t.me ~dst ~kind ~bits msg)
    peers

(* Equivocation repair: if the network's ready evidence has committed to
   a digest other than the one we first accepted (we were on the minority
   side of a fork) and we know that variant's payload, re-accept it — the
   fork then converges instead of leaving us unable to ever deliver the
   instance. We deliberately do NOT re-send Echo/Ready for the new digest
   (a correct process votes at most once per instance); the quorum that
   justified the switch already carries delivery. *)
let try_switch t inst =
  if not inst.delivered then
    let committed =
      Hashtbl.fold
        (fun digest set acc ->
          match acc with
          | Some _ -> acc
          | None ->
            if
              Some digest <> inst.accepted_digest
              && Iset.cardinal !set >= t.ready_need
              && Hashtbl.mem inst.alt_payloads digest
            then Some digest
            else None)
        inst.readies None
    in
    match committed with
    | None -> ()
    | Some digest ->
      inst.payload <- Some (Hashtbl.find inst.alt_payloads digest);
      inst.accepted_digest <- Some digest

(* Re-examine the instance after any state change: become ready when the
   echo threshold (or the ready feedback threshold) is met for the digest
   we accepted, and deliver on the ready threshold. *)
let progress t inst ~origin ~round =
  try_switch t inst;
  match inst.accepted_digest with
  | None -> ()
  | Some digest ->
    let echo_count = count_for inst.echoes digest in
    let ready_count = count_for inst.readies digest in
    if
      (not inst.ready_sent)
      && (echo_count >= t.echo_need || ready_count >= t.ready_feedback)
    then begin
      inst.ready_sent <- true;
      phase t ~origin ~round "ready";
      let msg = Ready { origin; round; digest } in
      send_sample t ~size:t.ready_size ~kind:"gossip-ready"
        ~bits:(msg_bits msg) msg
    end;
    if (not inst.delivered) && ready_count >= t.ready_need then
      match inst.payload with
      | Some payload ->
        inst.delivered <- true;
        t.delivered_count <- t.delivered_count + 1;
        phase t ~origin ~round "deliver";
        t.deliver ~payload ~round ~source:origin
      | None -> ()

let handle t ~src msg =
  let sp = Prof.enter "rbc.gossip.recv" in
  (try
     match msg with
  | Gossip { origin; round; payload } ->
    let inst = get_instance t (origin, round) in
    if inst.payload <> None then begin
      (* a variant of an instance we already accepted: remember it so the
         repair in [try_switch] can converge if the network commits to it *)
      let digest = Crypto.Sha256.digest_string payload in
      if
        Some digest <> inst.accepted_digest
        && not (Hashtbl.mem inst.alt_payloads digest)
        && Hashtbl.length inst.alt_payloads < 4
      then Hashtbl.add inst.alt_payloads digest payload;
      progress t inst ~origin ~round
    end;
    if inst.payload = None then begin
      let digest = Crypto.Sha256.digest_string payload in
      inst.payload <- Some payload;
      inst.accepted_digest <- Some digest;
      if not inst.relayed then begin
        inst.relayed <- true;
        phase t ~origin ~round "gossip";
        let msg = Gossip { origin; round; payload } in
        send_sample t ~size:t.gossip_size ~kind:"gossip-relay"
          ~bits:(msg_bits msg) msg
      end;
      if not inst.echo_sent then begin
        inst.echo_sent <- true;
        phase t ~origin ~round "echo";
        let msg = Echo { origin; round; digest } in
        send_sample t ~size:t.echo_size ~kind:"gossip-echo"
          ~bits:(msg_bits msg) msg
      end;
      progress t inst ~origin ~round
    end
  | Echo { origin; round; digest } ->
    let inst = get_instance t (origin, round) in
    ignore (add_voter inst.echoes digest src);
    progress t inst ~origin ~round
  | Ready { origin; round; digest } ->
    let inst = get_instance t (origin, round) in
    ignore (add_voter inst.readies digest src);
    progress t inst ~origin ~round
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

let create_port ~port ~rng ?(params = default_params) ~me ~f ~deliver () =
  let n = Net.Port.n port in
  let gossip_size = sample_size n params.gossip_factor in
  let echo_size = sample_size n params.echo_sample in
  let ready_size = sample_size n params.ready_sample in
  let echo_need =
    max 1 (int_of_float (ceil (params.echo_threshold *. float_of_int echo_size)))
  in
  let ready_need =
    max 1 (int_of_float (ceil (params.ready_threshold *. float_of_int ready_size)))
  in
  (* Byzantine floors for the degenerate small-n regime: when a sample
     covers the whole network the epidemic is just broadcast, and the
     fractional thresholds above can fall below quorum-intersection
     bounds — an equivocating sender could then split echoes/readies and
     make correct processes deliver divergent payloads. Lift them to the
     Bracha quorums (2f+1 echoes and readies, f+1 ready feedback)
     exactly in that regime; partial samples keep the paper's
     probabilistic thresholds and its ε failure trade-off. *)
  let echo_need = if echo_size >= n then max echo_need ((2 * f) + 1) else echo_need in
  let ready_need =
    if ready_size >= n then max ready_need ((2 * f) + 1) else ready_need
  in
  let feedback_floor = if ready_size >= n then f + 1 else 1 in
  let t =
    { net = port;
      rng;
      me;
      n;
      deliver;
      gossip_size;
      echo_size;
      ready_size;
      echo_need;
      ready_need;
      ready_feedback = max feedback_floor (ready_need / 2);
      instances = Tbl.create 64;
      delivered_count = 0;
      trace = None }
  in
  Net.Port.register port me (fun ~src msg -> handle t ~src msg);
  t

let create ~net ~rng ?params ~me ~f ~deliver () =
  create_port ~port:(Net.Port.of_network net) ~rng ?params ~me ~f ~deliver ()

let bcast t ~payload ~round =
  let sp = Prof.enter "rbc.gossip.bcast" in
  (try
     phase t ~origin:t.me ~round "init";
     (* the sender seeds the epidemic through its own gossip sample and also
        processes the message locally (send-to-self through the queue) *)
     let msg = Gossip { origin = t.me; round; payload } in
     send_sample t ~size:t.gossip_size ~kind:"gossip-init"
       ~bits:(msg_bits msg) msg;
     Net.Port.send t.net ~src:t.me ~dst:t.me ~kind:"gossip-init"
       ~bits:(msg_bits msg) msg
   with e -> Prof.leave_reraise sp e);
  Prof.leave sp

let inject_gossip t ~dst ~round ~payload =
  let msg = Gossip { origin = t.me; round; payload } in
  Net.Port.send t.net ~src:t.me ~dst ~kind:"gossip-init" ~bits:(msg_bits msg)
    msg

let delivered_instances t = t.delivered_count
