(** Client-facing transaction pool feeding a DAG-Rider node.

    The paper assumes each process always has a block to propose
    (Algorithm 2 line 17); a real deployment sits a mempool between
    clients and the node: clients submit transactions, the node's
    [block_source] drains a batch per vertex, and the a_deliver stream
    retires transactions once they appear in the total order — including
    transactions that arrived via {e other} processes' blocks (clients
    often submit to several processes for latency). *)

type t

val create : ?max_batch:int -> ?max_pending:int -> owner:int -> unit -> t
(** [max_batch] (default 64) caps transactions per assembled block.
    [max_pending] (default unbounded) caps the pending queue: submits
    beyond it are shed with backpressure (see {!submit}). *)

val submit : t -> Txgen.tx -> bool
(** Queue a transaction. [false] if it was a duplicate (same owner and
    seqno as a pending or already-retired transaction) and was dropped,
    or if the pending queue is at [max_pending] — a backpressure
    rejection counted in {!rejected}; unlike a duplicate, a rejected
    transaction is {e not} remembered, so the client may retry it once
    the queue drains. *)

val assemble_block : t -> string
(** Drain up to [max_batch] pending transactions into a block (the
    node's [block_source]). Returns the empty block when nothing is
    pending — the vertex still flies, carrying no payload. Assembled
    transactions move to the in-flight set; they are not re-proposed
    (Validity guarantees the vertex carrying them is eventually
    ordered). *)

val retire_block : t -> string -> int
(** Process a delivered block (from {e any} source): every transaction
    in it is marked ordered and will be rejected as a duplicate if
    re-submitted. Returns how many of them were ours (pending or
    in-flight here). *)

val pending : t -> int
val in_flight : t -> int
val submitted : t -> int
val retired : t -> int
val rejected : t -> int
(** Counters for experiments and backpressure decisions. [rejected]
    counts submits shed by the [max_pending] cap. *)
