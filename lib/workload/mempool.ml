type key = int * int (* owner, seqno *)

type t = {
  owner : int;
  max_batch : int;
  max_pending : int option;
  queue : Txgen.tx Queue.t;
  (* every key we have ever seen, for dedup across submit/retire *)
  seen : (key, unit) Hashtbl.t;
  inflight : (key, unit) Hashtbl.t;
  (* keys ordered elsewhere while still queued here: dropped lazily when
     the queue pops them (a client may submit to several processes) *)
  retired_keys : (key, unit) Hashtbl.t;
  mutable submitted : int;
  mutable retired : int;
  mutable rejected : int;
}

let create ?(max_batch = 64) ?max_pending ~owner () =
  { owner;
    max_batch;
    max_pending;
    queue = Queue.create ();
    seen = Hashtbl.create 256;
    inflight = Hashtbl.create 256;
    retired_keys = Hashtbl.create 256;
    submitted = 0;
    retired = 0;
    rejected = 0 }

let key_of (tx : Txgen.tx) = (tx.owner, tx.seqno)

let submit t tx =
  let k = key_of tx in
  if Hashtbl.mem t.seen k then false
  else
    match t.max_pending with
    | Some cap when Queue.length t.queue >= cap ->
      (* backpressure: shed without recording the key, so the client may
         retry once the queue drains *)
      t.rejected <- t.rejected + 1;
      false
    | _ ->
      Hashtbl.add t.seen k ();
      Queue.add tx t.queue;
      t.submitted <- t.submitted + 1;
      true

let assemble_block t =
  let rec take acc count =
    if count >= t.max_batch then List.rev acc
    else
      match Queue.take_opt t.queue with
      | None -> List.rev acc
      | Some tx when Hashtbl.mem t.retired_keys (key_of tx) ->
        (* already ordered through another process's block *)
        take acc count
      | Some tx ->
        Hashtbl.replace t.inflight (key_of tx) ();
        take (tx :: acc) (count + 1)
  in
  Txgen.block_of_txs (take [] 0)

let retire_block t block =
  let mine = ref 0 in
  List.iter
    (fun tx ->
      let k = key_of tx in
      if Hashtbl.mem t.inflight k then begin
        Hashtbl.remove t.inflight k;
        incr mine
      end;
      Hashtbl.replace t.retired_keys k ();
      (* remember foreign transactions too: a client that multi-submits
         must not get its transaction ordered twice through us *)
      if not (Hashtbl.mem t.seen k) then Hashtbl.add t.seen k ();
      t.retired <- t.retired + 1)
    (Txgen.block_txs block);
  !mine

let pending t = Queue.length t.queue

let in_flight t = Hashtbl.length t.inflight

let submitted t = t.submitted

let retired t = t.retired

let rejected t = t.rejected
