(** Deterministic discrete-event simulation engine.

    The whole reproduction runs on virtual time: every message delivery,
    timer, and protocol step is an event in one priority queue ordered by
    [(time, insertion sequence)], so a run is a pure function of the seed
    and the code — re-running with the same seed replays the exact
    schedule, which is what makes the adversarial-schedule tests
    meaningful.

    Virtual time is a [float] in abstract "time units". The paper (§3,
    after Canetti–Rabin) defines a time unit as the maximum message delay
    among correct processes; schedulers in [Net.Sched] keep correct-link
    delays within [(0, 1]] so that measured spans are directly comparable
    to the paper's time-complexity claims. *)

type t

val create : unit -> t

val now : t -> float
(** Current virtual time. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~delay f] runs [f] at [now t +. delay]. [delay] must be
    non-negative; events at equal times run in scheduling order.
    @raise Invalid_argument on a negative delay. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Absolute-time variant; times in the past are clamped to [now]. *)

val run : t -> ?max_events:int -> ?until:float -> unit -> int
(** Drain the event queue. Stops when it is empty, after [max_events]
    events (default unlimited), or before the first event later than
    [until] (default unlimited). Returns the number of events executed.
    When stopping on [until], the clock advances to [until]. *)

val step : t -> bool
(** Execute one event. Returns [false] if the queue was empty. *)

val pending : t -> int
(** Events currently queued. *)

val events_executed : t -> int
(** Total events executed since creation (simulation-cost metric). *)

val set_sampler : t -> interval:float -> (time:float -> executed:int -> pending:int -> unit) -> unit
(** Install a periodic observer: every [interval] time units the engine
    runs [f ~time ~executed ~pending] as a regular event. The sampler
    re-arms itself only while other events remain queued, so a drained
    simulation still terminates — but note it does occupy queue slots,
    so only install one when observing (the harness does this exactly
    when tracing is enabled, keeping untraced runs schedule-identical).
    @raise Invalid_argument on a non-positive interval. *)
