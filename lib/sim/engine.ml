type t = {
  queue : (unit -> unit) Stdx.Pqueue.t;
  mutable clock : float;
  mutable seq : int;
  mutable executed : int;
}

let create () =
  { queue = Stdx.Pqueue.create (); clock = 0.0; seq = 0; executed = 0 }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  t.seq <- t.seq + 1;
  Stdx.Pqueue.push t.queue ~priority:time ~seq:t.seq f

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Engine.schedule: negative delay";
  schedule_at t ~time:(t.clock +. delay) f

let step t =
  (* the span covers the pop and clock bookkeeping too, so profiled
     coverage charges the full per-event cost to the engine *)
  let sp = Prof.enter "engine.dispatch" in
  let stepped =
    try
      match Stdx.Pqueue.pop t.queue with
      | None -> false
      | Some (time, _, f) ->
        t.clock <- time;
        t.executed <- t.executed + 1;
        f ();
        true
    with e -> Prof.leave_reraise sp e
  in
  Prof.leave sp;
  stepped

let run t ?(max_events = max_int) ?(until = infinity) () =
  let rec loop count =
    if count >= max_events then count
    else
      match Stdx.Pqueue.peek t.queue with
      | None -> count
      | Some (time, _, _) when time > until ->
        t.clock <- until;
        count
      | Some _ ->
        ignore (step t);
        loop (count + 1)
  in
  loop 0

let pending t = Stdx.Pqueue.length t.queue

let events_executed t = t.executed

let set_sampler t ~interval f =
  if interval <= 0.0 then invalid_arg "Engine.set_sampler: interval must be positive";
  let rec tick () =
    (* [pending] here excludes the sampler event itself (already popped) *)
    f ~time:t.clock ~executed:t.executed ~pending:(pending t);
    (* re-arm only while other work remains, so [run] still terminates *)
    if pending t > 0 then schedule t ~delay:interval tick
  in
  schedule t ~delay:interval tick
