type probe_kind = Gauge | Counter

(* Every series shares the owner's time ring, so retained index [i]
   (0 = oldest) lives at [(start + i) mod capacity] in every array —
   one bookkeeping pass per tick keeps all exports row-aligned. *)
type series = {
  s_name : string;
  s_label : string; (* "gauge" | "counter" | "rate" | "latency" *)
  s_values : float array;
}

type probe = {
  p_name : string;
  p_kind : probe_kind;
  p_read : unit -> float;
  p_series : series;
  p_rate : series option; (* counters only *)
}

type slo =
  | Min_rate of { series : string; min_per_unit : float; after : float }
  | Max_p99 of { max_units : float; after : float }
  | Max_stall of { series : string; max_gap : float }
  | Max_slope of { series : string; max_per_unit : float; after : float }

type health = {
  h_name : string;
  h_ok : bool;
  h_value : float;
  h_threshold : float;
}

type check = {
  c_name : string;
  c_slo : slo;
  c_threshold : float;
  mutable c_ok : bool;
  mutable c_value : float;
}

type t = {
  capacity : int;
  m_interval : float;
  m_window : float;
  times : float array;
  mutable start : int;
  mutable len : int;
  mutable total : int;
  mutable probes : probe list; (* reverse registration order *)
  mutable series : series list; (* reverse registration order *)
  mutable checks : check list; (* reverse declaration order *)
  mutable tracer : Trace.t option;
  mutable ever_unhealthy : bool;
  (* latency observations inside the sliding window, (time, latency),
     time-sorted because virtual time is monotone *)
  lat_obs : (float * float) Queue.t;
  mutable lat_p50 : series option;
  mutable lat_p99 : series option;
}

let create ?(capacity = 4096) ?(interval = 1.0) ?(window = 10.0) () =
  if capacity <= 0 then invalid_arg "Monitor.create: capacity must be positive";
  if interval <= 0.0 then invalid_arg "Monitor.create: interval must be positive";
  if window <= 0.0 then invalid_arg "Monitor.create: window must be positive";
  { capacity;
    m_interval = interval;
    m_window = window;
    times = Array.make capacity 0.0;
    start = 0;
    len = 0;
    total = 0;
    probes = [];
    series = [];
    checks = [];
    tracer = None;
    ever_unhealthy = false;
    lat_obs = Queue.create ();
    lat_p50 = None;
    lat_p99 = None }

let interval t = t.m_interval

let window t = t.m_window

let set_trace t tr = t.tracer <- Some tr

let samples t = t.len

let total_samples t = t.total

let find_series t name =
  List.find_opt (fun s -> s.s_name = name) t.series

let new_series t ~name ~label =
  if find_series t name <> None then
    invalid_arg (Printf.sprintf "Monitor: duplicate series %S" name);
  let s = { s_name = name; s_label = label; s_values = Array.make t.capacity 0.0 } in
  t.series <- s :: t.series;
  s

let add_probe t ~name ~kind read =
  if t.total > 0 then
    invalid_arg "Monitor.add_probe: probes must be registered before sampling";
  let label = match kind with Gauge -> "gauge" | Counter -> "counter" in
  let s = new_series t ~name ~label in
  let r =
    match kind with
    | Gauge -> None
    | Counter -> Some (new_series t ~name:(name ^ "/rate") ~label:"rate")
  in
  t.probes <- { p_name = name; p_kind = kind; p_read = read; p_series = s; p_rate = r }
              :: t.probes

let series_names t =
  List.rev_map (fun s -> s.s_name) t.series

(* retained index (0 = oldest) -> array slot *)
let slot t i = (t.start + i) mod t.capacity

let get_time t i = t.times.(slot t i)

let get s t i = s.s_values.(slot t i)

let push_time t now =
  if t.len < t.capacity then begin
    t.times.(slot t t.len) <- now;
    t.len <- t.len + 1
  end
  else begin
    t.times.(t.start) <- now;
    t.start <- (t.start + 1) mod t.capacity
  end;
  t.total <- t.total + 1

(* write this tick's value for [s] (after push_time) *)
let put t s v = s.s_values.(slot t (t.len - 1)) <- v

let current t name =
  match find_series t name with
  | Some s when t.len > 0 -> get s t (t.len - 1)
  | _ -> 0.0

let rate t name =
  match find_series t name with
  | Some s when t.len >= 2 ->
    let last = t.len - 1 in
    let now = get_time t last in
    (* newest tick at least [window] old; oldest retained as fallback *)
    let j = ref 0 in
    (try
       for i = last - 1 downto 0 do
         if get_time t i <= now -. t.m_window then begin
           j := i;
           raise Exit
         end
       done
     with Exit -> ());
    let dt = now -. get_time t !j in
    if dt <= 0.0 then 0.0 else (get s t last -. get s t !j) /. dt
  | _ -> 0.0

let window_points t s =
  let last = t.len - 1 in
  let now = get_time t last in
  let acc = ref [] in
  for i = last downto 0 do
    let ti = get_time t i in
    if ti >= now -. t.m_window then acc := (ti, get s t i) :: !acc
  done;
  !acc

let slope t name =
  match find_series t name with
  | Some s when t.len >= 2 -> (
    match window_points t s with
    | _ :: _ :: _ as pts ->
      let _, b = Stdx.Stats.linear_fit pts in
      b
    | _ -> 0.0)
  | _ -> 0.0

let stall_gap t name =
  match find_series t name with
  | Some s when t.len >= 2 ->
    let last = t.len - 1 in
    let max_gap = ref 0.0 in
    let last_increase = ref (get_time t 0) in
    for i = 1 to last do
      if get s t i > get s t (i - 1) then begin
        let gap = get_time t i -. !last_increase in
        if gap > !max_gap then max_gap := gap;
        last_increase := get_time t i
      end
    done;
    (* the still-open gap at the tail *)
    let tail = get_time t last -. !last_increase in
    if tail > !max_gap then max_gap := tail;
    !max_gap
  | _ -> 0.0

let observe_latency t ~now lat =
  Queue.add (now, lat) t.lat_obs;
  while
    (not (Queue.is_empty t.lat_obs))
    && fst (Queue.peek t.lat_obs) < now -. t.m_window
  do
    ignore (Queue.pop t.lat_obs)
  done

let latency_percentile t p =
  if Queue.is_empty t.lat_obs then 0.0
  else begin
    let st = Stdx.Stats.create () in
    Queue.iter (fun (_, lat) -> Stdx.Stats.add st lat) t.lat_obs;
    Stdx.Stats.percentile st p
  end

(* ---- SLO health checks ---- *)

let default_name = function
  | Min_rate { series; _ } -> Printf.sprintf "min-rate(%s)" series
  | Max_p99 _ -> "max-p99"
  | Max_stall { series; _ } -> Printf.sprintf "max-stall(%s)" series
  | Max_slope { series; _ } -> Printf.sprintf "max-slope(%s)" series

let threshold_of = function
  | Min_rate { min_per_unit; _ } -> min_per_unit
  | Max_p99 { max_units; _ } -> max_units
  | Max_stall { max_gap; _ } -> max_gap
  | Max_slope { max_per_unit; _ } -> max_per_unit

let add_slo t ?name slo =
  let name = match name with Some n -> n | None -> default_name slo in
  if List.exists (fun c -> c.c_name = name) t.checks then
    invalid_arg (Printf.sprintf "Monitor.add_slo: duplicate check %S" name);
  t.checks <-
    { c_name = name; c_slo = slo; c_threshold = threshold_of slo;
      c_ok = true; c_value = 0.0 }
    :: t.checks

let eval_check t now c =
  match c.c_slo with
  | Min_rate { series; min_per_unit; after } ->
    let v = rate t series in
    (v, now < after || v >= min_per_unit)
  | Max_p99 { max_units; after } ->
    let v = latency_percentile t 99.0 in
    (v, now < after || v <= max_units)
  | Max_stall { series; max_gap } ->
    let v = stall_gap t series in
    (v, v <= max_gap)
  | Max_slope { series; max_per_unit; after } ->
    let v = slope t series in
    (v, now < after || v <= max_per_unit)

let health t =
  List.rev_map
    (fun c ->
      { h_name = c.c_name; h_ok = c.c_ok; h_value = c.c_value;
        h_threshold = c.c_threshold })
    t.checks

let healthy t = List.for_all (fun c -> c.c_ok) t.checks

let ever_unhealthy t = t.ever_unhealthy

let verdict t =
  let failing = List.rev (List.filter (fun c -> not c.c_ok) t.checks) in
  match failing with
  | [] ->
    if t.ever_unhealthy then "healthy (recovered from earlier failures)"
    else "healthy"
  | cs ->
    "FAILING: " ^ String.concat ", " (List.map (fun c -> c.c_name) cs)

(* ---- sampling ---- *)

let sample t ~now =
  if t.total = 0 then begin
    (* latency series register lazily so they land after every probe
       series in registration order *)
    t.lat_p50 <- Some (new_series t ~name:"latency.p50" ~label:"latency");
    t.lat_p99 <- Some (new_series t ~name:"latency.p99" ~label:"latency")
  end;
  push_time t now;
  List.iter
    (fun p ->
      put t p.p_series (p.p_read ());
      match p.p_rate with
      | Some r -> put t r (rate t p.p_name)
      | None -> ())
    (List.rev t.probes);
  (* evict observations that slid out of the window even if none arrived
     since the last tick *)
  while
    (not (Queue.is_empty t.lat_obs))
    && fst (Queue.peek t.lat_obs) < now -. t.m_window
  do
    ignore (Queue.pop t.lat_obs)
  done;
  (match t.lat_p50 with Some s -> put t s (latency_percentile t 50.0) | None -> ());
  (match t.lat_p99 with Some s -> put t s (latency_percentile t 99.0) | None -> ());
  List.iter
    (fun c ->
      let value, ok = eval_check t now c in
      let changed = ok <> c.c_ok in
      c.c_value <- value;
      c.c_ok <- ok;
      if not ok then t.ever_unhealthy <- true;
      if changed then
        match t.tracer with
        | Some tr ->
          Trace.emit tr
            (Trace.Health
               { check = c.c_name; ok; value; threshold = c.c_threshold })
        | None -> ())
    (List.rev t.checks)

(* ---- export ---- *)

let to_csv t =
  let buf = Buffer.create 4096 in
  let series = List.rev t.series in
  Buffer.add_string buf "time";
  List.iter (fun s -> Buffer.add_char buf ','; Buffer.add_string buf s.s_name) series;
  Buffer.add_char buf '\n';
  for i = 0 to t.len - 1 do
    Buffer.add_string buf (Printf.sprintf "%.6g" (get_time t i));
    List.iter
      (fun s ->
        Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "%.6g" (get s t i)))
      series;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let to_json t =
  let open Stdx.Json in
  let series_json =
    List.rev_map
      (fun s ->
        let points = ref [] in
        for i = t.len - 1 downto 0 do
          points := List [ Float (get_time t i); Float (get s t i) ] :: !points
        done;
        (s.s_name, Obj [ ("kind", String s.s_label); ("points", List !points) ]))
      t.series
  in
  let health_json =
    List.map
      (fun h ->
        Obj
          [ ("check", String h.h_name);
            ("ok", Bool h.h_ok);
            ("value", Float h.h_value);
            ("threshold", Float h.h_threshold) ])
      (health t)
  in
  Obj
    [ ("interval", Float t.m_interval);
      ("window", Float t.m_window);
      ("samples", Int t.total);
      ("retained", Int t.len);
      ("series", Obj series_json);
      ("health", List health_json);
      ("healthy", Bool (healthy t));
      ("ever_unhealthy", Bool t.ever_unhealthy);
      ("verdict", String (verdict t)) ]

let spark_levels = " .:-=+*#%@"

let sparkline t s width =
  let count = min width t.len in
  if count = 0 then ""
  else begin
    let first = t.len - count in
    let lo = ref infinity and hi = ref neg_infinity in
    for i = first to t.len - 1 do
      let v = get s t i in
      if v < !lo then lo := v;
      if v > !hi then hi := v
    done;
    let levels = String.length spark_levels in
    String.init count (fun k ->
        let v = get s t (first + k) in
        if !hi <= !lo then '-'
        else
          let norm = (v -. !lo) /. (!hi -. !lo) in
          spark_levels.[min (levels - 1) (int_of_float (norm *. float_of_int levels))])
  end

let render ?(spark_width = 48) t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "monitor: %d samples (%d retained) @ %gu interval, %gu window\n"
       t.total t.len t.m_interval t.m_window);
  let series = List.rev t.series in
  let name_w =
    List.fold_left (fun w s -> max w (String.length s.s_name)) 8 series
  in
  Buffer.add_string buf
    (Printf.sprintf "  %-*s %12s %12s  %s\n" name_w "series" "current"
       "rate/slope" "spark");
  List.iter
    (fun s ->
      let deriv =
        match s.s_label with
        | "gauge" | "latency" -> slope t s.s_name
        | _ -> rate t s.s_name
      in
      Buffer.add_string buf
        (Printf.sprintf "  %-*s %12.6g %12.6g  %s\n" name_w s.s_name
           (current t s.s_name) deriv (sparkline t s spark_width)))
    series;
  Buffer.add_string buf
    (Printf.sprintf "latency (window): p50 %.3f  p99 %.3f  (%d observations)\n"
       (latency_percentile t 50.0)
       (latency_percentile t 99.0)
       (Queue.length t.lat_obs));
  (match health t with
  | [] -> ()
  | hs ->
    Buffer.add_string buf "health:\n";
    List.iter
      (fun h ->
        Buffer.add_string buf
          (Printf.sprintf "  [%s] %s: %.6g vs %.6g\n"
             (if h.h_ok then " ok " else "FAIL")
             h.h_name h.h_value h.h_threshold))
      hs);
  Buffer.add_string buf (Printf.sprintf "verdict: %s\n" (verdict t));
  Buffer.contents buf
