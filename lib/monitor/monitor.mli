(** Time-series flight recorder for sustained-load runs.

    Everything built so far (trace, analyzer, profiler, forensics)
    reports a finished run as one aggregate; the monitor shows how a run
    behaves {e over time} — the throughput/latency curves Narwhal-lineage
    papers report for sustained load, and the growth trends that motivate
    the paper's §8 garbage collection.

    The recorder is a set of named probes (closures reading a counter or
    gauge) sampled together at a fixed virtual-time interval — the
    harness arms it on the engine's sampler hook — into bounded
    ring-buffer series sharing one time axis, so every export row is
    aligned. Counter probes additionally get a derived ["<name>/rate"]
    series (windowed rate per time unit), and latency observations fed
    by the delivery path get sliding-window ["latency.p50"] /
    ["latency.p99"] series.

    On top sit declarative SLO health checks (min throughput, max p99,
    max stall gap, bounded growth slope) evaluated at each tick; state
    {e transitions} emit typed {!Trace.Health} events, and the current
    states roll up into a pass/fail verdict for CI and swarm.

    Probes only read state and draw no randomness, so — exactly like the
    tracer and profiler — a monitored run's delivery logs are
    byte-identical to an unmonitored run on the same seed. *)

type t

type probe_kind =
  | Gauge  (** instantaneous level (queue depth, DAG size, heap words) *)
  | Counter
      (** monotone cumulative count (tx submitted, commits, messages) —
          gets a derived windowed-rate series *)

val create : ?capacity:int -> ?interval:float -> ?window:float -> unit -> t
(** [capacity] (default 4096) ticks retained per series (oldest
    overwritten); [interval] (default 1.0) virtual-time units between
    samples — what the owner should arm the engine sampler with;
    [window] (default 10.0) units of history behind derived rates,
    percentiles, and slopes.
    @raise Invalid_argument on non-positive capacity/interval/window. *)

val interval : t -> float
val window : t -> float

val add_probe : t -> name:string -> kind:probe_kind -> (unit -> float) -> unit
(** Register a probe; its series (and, for counters, the ["/rate"]
    companion) appears in every subsequent sample. Probes must all be
    registered before the first {!sample} so the rings stay aligned.
    @raise Invalid_argument on a duplicate name or after sampling
    started. *)

val set_trace : t -> Trace.t -> unit
(** Install the tracer that health-state transitions are emitted into. *)

val observe_latency : t -> now:float -> float -> unit
(** Record one proposal-to-delivery latency observed at virtual time
    [now] (the harness calls this from the observer's a_deliver path);
    feeds the sliding-window percentile series. *)

val sample : t -> now:float -> unit
(** Take one synchronized sample: read every probe, append to the rings,
    derive rates and latency percentiles, then evaluate the SLOs. *)

(** {1 Windowed views} *)

val samples : t -> int
(** Ticks retained (≤ capacity). *)

val total_samples : t -> int
(** Ticks ever taken, including ones the ring has dropped. *)

val series_names : t -> string list
(** All series in registration order (probes, derived rates, latency). *)

val current : t -> string -> float
(** Latest recorded value of a series (0 before any sample, or for an
    unknown name). *)

val rate : t -> string -> float
(** Windowed rate of change per time unit: latest value minus the value
    at the newest tick at least [window] old (falling back to the oldest
    retained tick), over the elapsed time. 0 with fewer than two ticks. *)

val slope : t -> string -> float
(** Least-squares growth per time unit over the ticks inside the window
    — the bounded-memory / bounded-DAG health signal. 0 with fewer than
    two ticks in the window. *)

val stall_gap : t -> string -> float
(** Longest time between strict increases of a cumulative series across
    the retained history, including the still-open gap at the tail — a
    liveness probe: a partition shows up as a large gap in ["commits"]
    even after traffic resumes. 0 before the second sample. *)

val latency_percentile : t -> float -> float
(** Percentile (e.g. 50.0, 99.0) over the latency observations inside
    the sliding window; 0 when the window holds none (stalls are caught
    by {!Max_stall}, not by a vanishing percentile). *)

(** {1 SLO health checks} *)

type slo =
  | Min_rate of { series : string; min_per_unit : float; after : float }
      (** windowed rate of [series] must stay ≥ [min_per_unit] once
          virtual time passes [after] (warmup grace) *)
  | Max_p99 of { max_units : float; after : float }
      (** sliding-window p99 proposal→delivery latency must stay ≤
          [max_units] after warmup *)
  | Max_stall of { series : string; max_gap : float }
      (** {!stall_gap} of [series] must stay ≤ [max_gap] *)
  | Max_slope of { series : string; max_per_unit : float; after : float }
      (** windowed growth of [series] must stay ≤ [max_per_unit] after
          warmup — bounded-memory/bounded-DAG checks *)

val add_slo : t -> ?name:string -> slo -> unit
(** Declare a check ([name] defaults to a "min-rate(series)"-style
    label). Evaluated at every subsequent {!sample}; ok↔failing
    transitions emit {!Trace.Health} into the installed tracer. *)

type health = {
  h_name : string;
  h_ok : bool;
  h_value : float;  (** last measured quantity *)
  h_threshold : float;  (** the declared bound *)
}

val health : t -> health list
(** Current state of every check, in declaration order. Checks inside
    their warmup grace read as ok. *)

val healthy : t -> bool
(** All checks currently ok (vacuously true with none declared). *)

val ever_unhealthy : t -> bool
(** Any check failed at any tick — the CI verdict: a mid-run stall stays
    visible even if the run later recovers. *)

val verdict : t -> string
(** One line: "healthy" or "FAILING: check, check" (currently-failing
    checks), with a "(recovered)" note if only historical failures
    remain. *)

(** {1 Export} *)

val to_csv : t -> string
(** Header [time,<series>,...] then one row per retained tick, oldest
    first — plotting-ready. *)

val to_json : t -> Stdx.Json.t
(** Everything: config, per-series points as [[time, value]] pairs,
    health states, and the verdict booleans. *)

val render : ?spark_width:int -> t -> string
(** ASCII dashboard: one row per series with current value, windowed
    rate, and a sparkline over the last [spark_width] (default 48)
    ticks; then the latency percentiles and per-check health lines. *)
