type commit_cert = {
  c_node : int;
  c_rule : string;
  c_sched : string;
  c_wave : int;
  c_leader_round : int;
  c_leader_source : int;
  c_direct : bool;
  c_anchor : int;
  c_via_round : int;
  c_via_source : int;
  c_support : int list;
  c_quorum : int;
  c_delivered : int;
  c_at : float;
}

type skip_cert = {
  s_node : int;
  s_rule : string;
  s_sched : string;
  s_wave : int;
  s_leader_round : int;
  s_leader_source : int;
  s_reason : string;
  s_support : int list;
  s_quorum : int;
  s_at : float;
}

type story = {
  st_wave : int;
  st_skip : skip_cert option;
  st_commit : commit_cert option;
}

type t = {
  mutable rule : string option;
  mutable wl : int option; (* wave length recovered from leader rounds *)
  stories : (int, (int, story) Hashtbl.t) Hashtbl.t; (* node -> wave -> *)
  cert_count : (int, int ref) Hashtbl.t; (* node -> certificates seen *)
  order : (int, (int * int) list ref) Hashtbl.t; (* node -> rev (r, src) *)
  last_commit : (int, commit_cert) Hashtbl.t;
  vertex_commit : (int * int * int, commit_cert) Hashtbl.t;
      (* (node, round, source) -> the commit that delivered it *)
}

let create () =
  { rule = None;
    wl = None;
    stories = Hashtbl.create 16;
    cert_count = Hashtbl.create 16;
    order = Hashtbl.create 16;
    last_commit = Hashtbl.create 16;
    vertex_commit = Hashtbl.create 4096 }

let node_stories t node =
  match Hashtbl.find_opt t.stories node with
  | Some tbl -> tbl
  | None ->
    let tbl = Hashtbl.create 256 in
    Hashtbl.add t.stories node tbl;
    tbl

let note_cert t ~node ~rule ~wave ~leader_round =
  if t.rule = None then t.rule <- Some rule;
  (* leader_round = L*(wave-1) + 1 pins the wave length once wave >= 2 *)
  if t.wl = None && wave >= 2 && (leader_round - 1) mod (wave - 1) = 0 then begin
    let l = (leader_round - 1) / (wave - 1) in
    if l >= 1 then t.wl <- Some l
  end;
  match Hashtbl.find_opt t.cert_count node with
  | Some r -> incr r
  | None -> Hashtbl.add t.cert_count node (ref 1)

let feed t (e : Trace.event) =
  match e.Trace.kind with
  | Trace.Commit_cert
      { node; rule; sched; wave; leader_round; leader_source; direct;
        anchor_wave; via_round; via_source; support; quorum; delivered } ->
    note_cert t ~node ~rule ~wave ~leader_round;
    let cert =
      { c_node = node;
        c_rule = rule;
        c_sched = sched;
        c_wave = wave;
        c_leader_round = leader_round;
        c_leader_source = leader_source;
        c_direct = direct;
        c_anchor = anchor_wave;
        c_via_round = via_round;
        c_via_source = via_source;
        c_support = support;
        c_quorum = quorum;
        c_delivered = delivered;
        c_at = e.Trace.time }
    in
    let tbl = node_stories t node in
    let prior = Hashtbl.find_opt tbl wave in
    Hashtbl.replace tbl wave
      { st_wave = wave;
        st_skip = Option.bind prior (fun s -> s.st_skip);
        st_commit = Some cert };
    Hashtbl.replace t.last_commit node cert
  | Trace.Skip_cert
      { node; rule; sched; wave; leader_round; leader_source; reason; support;
        quorum } ->
    note_cert t ~node ~rule ~wave ~leader_round;
    let cert =
      { s_node = node;
        s_rule = rule;
        s_sched = sched;
        s_wave = wave;
        s_leader_round = leader_round;
        s_leader_source = leader_source;
        s_reason = reason;
        s_support = support;
        s_quorum = quorum;
        s_at = e.Trace.time }
    in
    let tbl = node_stories t node in
    let prior = Hashtbl.find_opt tbl wave in
    (* keep the first skip; a commit recorded before a skip would be a
       tracer anomaly — never overwrite it *)
    Hashtbl.replace tbl wave
      { st_wave = wave;
        st_skip =
          (match Option.bind prior (fun s -> s.st_skip) with
          | Some s -> Some s
          | None -> Some cert);
        st_commit = Option.bind prior (fun s -> s.st_commit) }
  | Trace.A_deliver { node; round; source } -> (
    (match Hashtbl.find_opt t.order node with
    | Some r -> r := (round, source) :: !r
    | None -> Hashtbl.add t.order node (ref [ (round, source) ]));
    match Hashtbl.find_opt t.last_commit node with
    | Some cert -> Hashtbl.replace t.vertex_commit (node, round, source) cert
    | None -> ())
  | _ -> ()

let of_events events =
  let t = create () in
  List.iter (feed t) events;
  t

let of_jsonl_file path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | exception Sys_error e -> Error e
  | text -> (
    match Trace.events_of_jsonl text with
    | Error e -> Error e
    | Ok events -> Ok (of_events events))

let nodes t =
  Hashtbl.fold (fun node _ acc -> node :: acc) t.cert_count []
  |> List.sort compare

let observer t =
  Hashtbl.fold
    (fun node count acc ->
      match acc with
      | None -> Some (node, !count)
      | Some (bn, bc) ->
        if !count > bc || (!count = bc && node < bn) then Some (node, !count)
        else acc)
    t.cert_count None
  |> Option.map fst

let rule_name t = t.rule

let wave_length t =
  match t.wl with
  | Some _ as l -> l
  | None ->
    Option.bind t.rule (fun name ->
        Option.map
          (fun r -> r.Dagrider.Ordering.rule_wave_length)
          (Dagrider.Ordering.rule_of_name name))

let stories t ~node =
  match Hashtbl.find_opt t.stories node with
  | None -> []
  | Some tbl ->
    Hashtbl.fold (fun _ st acc -> st :: acc) tbl []
    |> List.sort (fun a b -> compare a.st_wave b.st_wave)

let find_story t ~node ~wave =
  Option.bind (Hashtbl.find_opt t.stories node) (fun tbl ->
      Hashtbl.find_opt tbl wave)

let find_vertex t ~node ~round ~source =
  Hashtbl.find_opt t.vertex_commit (node, round, source)

(* the chain a commit belongs to: every commit at the node sharing its
   anchor, ascending by wave (the anchor's direct commit last) *)
let chain_of t ~node (c : commit_cert) =
  List.filter_map
    (fun st ->
      match st.st_commit with
      | Some c' when c'.c_anchor = c.c_anchor -> Some c'
      | _ -> None)
    (stories t ~node)

let justification t ~node ~wave =
  match find_story t ~node ~wave with
  | None | Some { st_commit = None; _ } -> None
  | Some { st_commit = Some c; _ } ->
    let leader =
      { Dagrider.Vertex.round = c.c_leader_round; source = c.c_leader_source }
    in
    let last_round =
      match wave_length t with
      | Some l -> c.c_leader_round + l - 1
      | None -> c.c_leader_round
    in
    let support =
      List.map
        (fun src -> { Dagrider.Vertex.round = last_round; source = src })
        c.c_support
    in
    let chain =
      List.filter_map
        (fun c' ->
          if c'.c_wave = wave then None
          else
            Some
              { Dagrider.Vertex.round = c'.c_leader_round;
                source = c'.c_leader_source })
        (chain_of t ~node c)
    in
    Some (leader, support, chain)

(* ---- explain ---- *)

let fmt_sources srcs =
  "{" ^ String.concat "," (List.map (fun s -> Printf.sprintf "p%d" s) srcs) ^ "}"

let last_round_of t leader_round =
  match wave_length t with
  | Some l -> leader_round + l - 1
  | None -> leader_round

let sched_evidence (sched : string) ~wave ~leader_source =
  match sched with
  | "round-robin" ->
    Printf.sprintf "round-robin schedule: leader(w) = (w-1) mod n, so p%d"
      leader_source
  | "coin" -> Printf.sprintf "global coin of wave %d chose p%d" wave leader_source
  | other -> Printf.sprintf "%s schedule chose p%d" other leader_source

let explain_commit t ~node buf (c : commit_cert) =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if c.c_direct then begin
    add "outcome: committed (direct) at t=%.2f\n" c.c_at;
    add "  support: %d last-round (r%d) vertices reach the leader by strong \
         paths\n"
      (List.length c.c_support)
      (last_round_of t c.c_leader_round);
    add "           %s — quorum %d met (Algorithm 3 line 36 / Bullshark vote \
         count)\n"
      (fmt_sources c.c_support) c.c_quorum
  end
  else begin
    add "outcome: committed (chained) at t=%.2f\n" c.c_at;
    add "  evidence: leader (r%d,p%d) reaches (r%d,p%d) by a strong path\n"
      c.c_via_round c.c_via_source c.c_leader_round c.c_leader_source;
    add "            (lines 38-43 chain-back, anchored at wave %d's direct \
         commit)\n"
      c.c_anchor
  end;
  (match chain_of t ~node c with
  | [] | [ _ ] -> ()
  | chain ->
    add "  chain: %s\n"
      (String.concat " <- "
         (List.map
            (fun c' ->
              Printf.sprintf "w%d (r%d,p%d)%s" c'.c_wave c'.c_leader_round
                c'.c_leader_source
                (if c'.c_direct then " [direct]" else ""))
            chain)));
  add "  delivered: %d vertices\n" c.c_delivered

let explain_skip t buf (s : skip_cert) ~recovered =
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  if recovered then add "skipped first at t=%.2f: " s.s_at
  else add "outcome: skipped at t=%.2f: " s.s_at;
  (match s.s_reason with
  | "leader-absent" ->
    add "leader vertex (r%d,p%d) absent from the local DAG (line 47)\n"
      s.s_leader_round s.s_leader_source
  | "under-supported" ->
    add "under-supported — support %s (%d of quorum %d) at round r%d\n"
      (fmt_sources s.s_support)
      (List.length s.s_support)
      s.s_quorum
      (last_round_of t s.s_leader_round)
  | other -> add "%s\n" other);
  if not recovered then
    add "  never recovered: no later leader reached it by a strong path\n"

let explain_wave t ~node ~wave =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  (match find_story t ~node ~wave with
  | None ->
    add "wave %d at p%d: unresolved — no certificate (wave not processed \
         before the trace ended, or its leader never resolved)\n"
      wave node
  | Some st ->
    let rule, sched, leader_round, leader_source =
      match (st.st_commit, st.st_skip) with
      | Some c, _ -> (c.c_rule, c.c_sched, c.c_leader_round, c.c_leader_source)
      | None, Some s -> (s.s_rule, s.s_sched, s.s_leader_round, s.s_leader_source)
      | None, None -> assert false
    in
    add "== wave %d at p%d — %s ==\n" wave node rule;
    add "leader: (r%d,p%d); %s\n" leader_round leader_source
      (sched_evidence sched ~wave ~leader_source);
    (match st.st_commit with
    | Some c ->
      explain_commit t ~node buf c;
      (match st.st_skip with
      | Some s -> explain_skip t buf s ~recovered:true
      | None -> ())
    | None -> (
      match st.st_skip with
      | Some s -> explain_skip t buf s ~recovered:false
      | None -> assert false)));
  Buffer.contents buf

let commit_cert_to_json (c : commit_cert) =
  Stdx.Json.Obj
    [ ("node", Stdx.Json.Int c.c_node);
      ("rule", Stdx.Json.String c.c_rule);
      ("sched", Stdx.Json.String c.c_sched);
      ("wave", Stdx.Json.Int c.c_wave);
      ("leader_round", Stdx.Json.Int c.c_leader_round);
      ("leader_source", Stdx.Json.Int c.c_leader_source);
      ("direct", Stdx.Json.Bool c.c_direct);
      ("anchor_wave", Stdx.Json.Int c.c_anchor);
      ("via_round", Stdx.Json.Int c.c_via_round);
      ("via_source", Stdx.Json.Int c.c_via_source);
      ( "support",
        Stdx.Json.List (List.map (fun s -> Stdx.Json.Int s) c.c_support) );
      ("quorum", Stdx.Json.Int c.c_quorum);
      ("delivered", Stdx.Json.Int c.c_delivered);
      ("at", Stdx.Json.Float c.c_at) ]

let skip_cert_to_json (s : skip_cert) =
  Stdx.Json.Obj
    [ ("node", Stdx.Json.Int s.s_node);
      ("rule", Stdx.Json.String s.s_rule);
      ("sched", Stdx.Json.String s.s_sched);
      ("wave", Stdx.Json.Int s.s_wave);
      ("leader_round", Stdx.Json.Int s.s_leader_round);
      ("leader_source", Stdx.Json.Int s.s_leader_source);
      ("reason", Stdx.Json.String s.s_reason);
      ( "support",
        Stdx.Json.List (List.map (fun x -> Stdx.Json.Int x) s.s_support) );
      ("quorum", Stdx.Json.Int s.s_quorum);
      ("at", Stdx.Json.Float s.s_at) ]

let story_outcome st =
  match (st.st_commit, st.st_skip) with
  | Some c, _ when c.c_direct -> "committed"
  | Some _, _ -> "committed-chained"
  | None, Some _ -> "skipped"
  | None, None -> "unresolved"

let explain_wave_json t ~node ~wave =
  match find_story t ~node ~wave with
  | None ->
    Stdx.Json.Obj
      [ ("node", Stdx.Json.Int node);
        ("wave", Stdx.Json.Int wave);
        ("outcome", Stdx.Json.String "unresolved");
        ("commit", Stdx.Json.Null);
        ("skip", Stdx.Json.Null) ]
  | Some st ->
    let chain =
      match st.st_commit with
      | Some c when not c.c_direct ->
        [ ( "chain",
            Stdx.Json.List (List.map commit_cert_to_json (chain_of t ~node c))
          ) ]
      | _ -> []
    in
    Stdx.Json.Obj
      ([ ("node", Stdx.Json.Int node);
         ("wave", Stdx.Json.Int wave);
         ("outcome", Stdx.Json.String (story_outcome st));
         ( "commit",
           match st.st_commit with
           | Some c -> commit_cert_to_json c
           | None -> Stdx.Json.Null );
         ( "skip",
           match st.st_skip with
           | Some s -> skip_cert_to_json s
           | None -> Stdx.Json.Null ) ]
      @ chain)

let explain_vertex t ~node ~round ~source =
  match find_vertex t ~node ~round ~source with
  | None ->
    Printf.sprintf
      "vertex (r%d,p%d) at p%d: no delivering commit in the certificate \
       stream (not ordered, or delivered outside the trace window)\n"
      round source node
  | Some c ->
    Printf.sprintf "vertex (r%d,p%d) was ordered by wave %d's commit:\n%s"
      round source c.c_wave
      (explain_wave t ~node ~wave:c.c_wave)

let explain_vertex_json t ~node ~round ~source =
  match find_vertex t ~node ~round ~source with
  | None ->
    Stdx.Json.Obj
      [ ("node", Stdx.Json.Int node);
        ("vertex", Stdx.Json.List [ Stdx.Json.Int round; Stdx.Json.Int source ]);
        ("ordered_by", Stdx.Json.Null) ]
  | Some c ->
    Stdx.Json.Obj
      [ ("node", Stdx.Json.Int node);
        ("vertex", Stdx.Json.List [ Stdx.Json.Int round; Stdx.Json.Int source ]);
        ("ordered_by", Stdx.Json.Int c.c_wave);
        ("explain", explain_wave_json t ~node ~wave:c.c_wave) ]

let summary t ~node =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let sts = stories t ~node in
  add "certificate summary for p%d (%d waves%s):\n" node (List.length sts)
    (match t.rule with Some r -> ", rule " ^ r | None -> "");
  List.iter
    (fun st ->
      match (st.st_commit, st.st_skip) with
      | Some c, skip ->
        add "  w%-4d committed %s (r%d,p%d)%s%s\n" st.st_wave
          (if c.c_direct then
             Printf.sprintf "direct, support %s >= %d"
               (fmt_sources c.c_support) c.c_quorum
           else Printf.sprintf "chained via (r%d,p%d)" c.c_via_round c.c_via_source)
          c.c_leader_round c.c_leader_source
          (if skip <> None then " [recovered after skip]" else "")
          (Printf.sprintf ", %d delivered" c.c_delivered)
      | None, Some s ->
        add "  w%-4d skipped (%s, support %s < %d)\n" st.st_wave s.s_reason
          (fmt_sources s.s_support) s.s_quorum
      | None, None -> add "  w%-4d unresolved\n" st.st_wave)
    sts;
  Buffer.contents buf

(* ---- divergence ---- *)

type divergence =
  | No_certificates
  | Identical of { mode : string; compared : int }
  | Prefix of { mode : string; compared : int; longer : string; extra : int }
  | Diverged_wave of { wave : int; a : story option; b : story option }
  | Diverged_entry of {
      index : int;
      a_vertex : int * int;
      b_vertex : int * int;
      a_commit : commit_cert option;
      b_commit : commit_cert option;
    }

(* a decision's identity for stream comparison: what was decided, not
   the local evidence — two honest nodes may commit the same wave with
   different direct/chained paths and that is not a divergence *)
let story_digest = function
  | None -> "U"
  | Some { st_commit = Some c; _ } ->
    Printf.sprintf "C%d:%d" c.c_leader_round c.c_leader_source
  | Some { st_skip = Some _; st_commit = None; _ } -> "S"
  | Some { st_skip = None; st_commit = None; _ } -> "U"

(* cumulative digest chain over stream prefixes: prefix equality is one
   int comparison, so first-divergence location is a binary search *)
let cumulative digests =
  let n = Array.length digests in
  let out = Array.make n 0 in
  let h = ref 0x1505 in
  for i = 0 to n - 1 do
    h := Hashtbl.hash (!h, digests.(i));
    out.(i) <- !h
  done;
  out

(* smallest index where the cumulative chains differ; the predicate is
   monotone (once the chains split they stay split), with a linear
   fallback guarding against hash collisions *)
let first_divergent_index da db =
  let n = min (Array.length da) (Array.length db) in
  let ca = cumulative da and cb = cumulative db in
  if n = 0 || ca.(n - 1) = cb.(n - 1) then None
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if ca.(mid) = cb.(mid) then lo := mid + 1 else hi := mid
    done;
    if da.(!lo) <> db.(!lo) then Some !lo
    else begin
      (* cumulative-hash collision upstream: locate the truth linearly *)
      let i = ref 0 in
      while !i < n && da.(!i) = db.(!i) do incr i done;
      if !i < n then Some !i else None
    end
  end

let max_wave t ~node =
  List.fold_left (fun acc st -> max acc st.st_wave) 0 (stories t ~node)

(* both rules order the same vertices, so the delivery logs are always
   comparable — the cross-rule mode, and the fallback when same-rule
   wave decisions agree but the delivered histories still differ *)
let log_divergence ta ~node_a tb ~node_b =
  let log t node =
    match Hashtbl.find_opt t.order node with
    | Some r -> Array.of_list (List.rev !r)
    | None -> [||]
  in
  let la = log ta node_a and lb = log tb node_b in
  let n = min (Array.length la) (Array.length lb) in
  let digest l = Array.init n (fun i -> Printf.sprintf "%d:%d" (fst l.(i)) (snd l.(i))) in
  match first_divergent_index (digest la) (digest lb) with
  | Some i ->
    let (ra, sa) = la.(i) and (rb, sb) = lb.(i) in
    Diverged_entry
      { index = i;
        a_vertex = (ra, sa);
        b_vertex = (rb, sb);
        a_commit = find_vertex ta ~node:node_a ~round:ra ~source:sa;
        b_commit = find_vertex tb ~node:node_b ~round:rb ~source:sb }
  | None ->
    let na = Array.length la and nb = Array.length lb in
    if na = nb then Identical { mode = "log"; compared = n }
    else
      Prefix
        { mode = "log";
          compared = n;
          longer = (if na > nb then "A" else "B");
          extra = abs (na - nb) }

let divergence ta ~node_a tb ~node_b =
  let certs t node =
    match Hashtbl.find_opt t.cert_count node with Some r -> !r | None -> 0
  in
  if certs ta node_a = 0 || certs tb node_b = 0 then No_certificates
  else if ta.rule = tb.rule then begin
    (* same rule: waves are comparable decision-for-decision *)
    let wa = max_wave ta ~node:node_a and wb = max_wave tb ~node:node_b in
    let n = min wa wb in
    let da =
      Array.init n (fun i -> story_digest (find_story ta ~node:node_a ~wave:(i + 1)))
    in
    let db =
      Array.init n (fun i -> story_digest (find_story tb ~node:node_b ~wave:(i + 1)))
    in
    match first_divergent_index da db with
    | Some i ->
      Diverged_wave
        { wave = i + 1;
          a = find_story ta ~node:node_a ~wave:(i + 1);
          b = find_story tb ~node:node_b ~wave:(i + 1) }
    | None -> (
      (* identical decisions can still deliver different histories when
         a node's DAG lagged (or a sabotaged quorum committed early) —
         check the logs before declaring the runs equal *)
      match log_divergence ta ~node_a tb ~node_b with
      | Diverged_entry _ as d -> d
      | _ ->
        if wa = wb then Identical { mode = "waves"; compared = n }
        else
          Prefix
            { mode = "waves";
              compared = n;
              longer = (if wa > wb then "A" else "B");
              extra = abs (wa - wb) })
  end
  else
    (* cross-rule (e.g. dagrider vs bullshark on one schedule): wave
       numbers mean different things — compare the delivery logs *)
    log_divergence ta ~node_a tb ~node_b

let render_divergence ta ~node_a tb ~node_b =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let side name t node =
    add "%s: p%d, rule %s, %d wave stories, %d ordered vertices\n" name node
      (match t.rule with Some r -> r | None -> "?")
      (List.length (stories t ~node))
      (match Hashtbl.find_opt t.order node with
      | Some r -> List.length !r
      | None -> 0)
  in
  side "A" ta node_a;
  side "B" tb node_b;
  (match divergence ta ~node_a tb ~node_b with
  | No_certificates -> add "no certificates on at least one side — nothing to compare\n"
  | Identical { mode; compared } ->
    add "identical %s streams (%d decisions compared)\n" mode compared
  | Prefix { mode; compared; longer; extra } ->
    add
      "no divergence: one %s stream is a prefix of the other (%d compared, \
       %s has %d more)\n"
      mode compared longer extra
  | Diverged_wave { wave; a; b } ->
    add "FIRST DIVERGENT DECISION: wave %d\n\n" wave;
    add "--- side A (p%d) ---\n%s\n" node_a (explain_wave ta ~node:node_a ~wave);
    ignore a;
    ignore b;
    add "--- side B (p%d) ---\n%s" node_b (explain_wave tb ~node:node_b ~wave)
  | Diverged_entry { index; a_vertex = ra, sa; b_vertex = rb, sb; _ } ->
    add "FIRST DIVERGENT LOG ENTRY: position %d\n" index;
    add "  A ordered (r%d,p%d); B ordered (r%d,p%d)\n\n" ra sa rb sb;
    add "--- side A (p%d) ---\n%s\n" node_a
      (explain_vertex ta ~node:node_a ~round:ra ~source:sa);
    add "--- side B (p%d) ---\n%s" node_b
      (explain_vertex tb ~node:node_b ~round:rb ~source:sb));
  Buffer.contents buf

let divergence_to_json ta ~node_a tb ~node_b =
  let story_json t node wave =
    match find_story t ~node ~wave with
    | None -> Stdx.Json.Null
    | Some _ -> explain_wave_json t ~node ~wave
  in
  match divergence ta ~node_a tb ~node_b with
  | No_certificates ->
    Stdx.Json.Obj [ ("result", Stdx.Json.String "no-certificates") ]
  | Identical { mode; compared } ->
    Stdx.Json.Obj
      [ ("result", Stdx.Json.String "identical");
        ("mode", Stdx.Json.String mode);
        ("compared", Stdx.Json.Int compared) ]
  | Prefix { mode; compared; longer; extra } ->
    Stdx.Json.Obj
      [ ("result", Stdx.Json.String "prefix");
        ("mode", Stdx.Json.String mode);
        ("compared", Stdx.Json.Int compared);
        ("longer", Stdx.Json.String longer);
        ("extra", Stdx.Json.Int extra) ]
  | Diverged_wave { wave; _ } ->
    Stdx.Json.Obj
      [ ("result", Stdx.Json.String "diverged");
        ("mode", Stdx.Json.String "waves");
        ("wave", Stdx.Json.Int wave);
        ("a", story_json ta node_a wave);
        ("b", story_json tb node_b wave) ]
  | Diverged_entry { index; a_vertex = ra, sa; b_vertex = rb, sb; _ } ->
    Stdx.Json.Obj
      [ ("result", Stdx.Json.String "diverged");
        ("mode", Stdx.Json.String "log");
        ("index", Stdx.Json.Int index);
        ( "a_vertex",
          Stdx.Json.List [ Stdx.Json.Int ra; Stdx.Json.Int sa ] );
        ( "b_vertex",
          Stdx.Json.List [ Stdx.Json.Int rb; Stdx.Json.Int sb ] );
        ("a", explain_vertex_json ta ~node:node_a ~round:ra ~source:sa);
        ("b", explain_vertex_json tb ~node:node_b ~round:rb ~source:sb) ]
