(** Commit forensics: reconstruct the {e justification} of every
    ordering decision from the provenance certificates the nodes emit
    ({!Trace.Commit_cert} / {!Trace.Skip_cert}).

    DAG-Rider's correctness argument is local and causal — a commit is
    justified by a wave leader, a quorum of strong paths, and the
    Algorithm 3 lines-38-43 chain-back — and the certificates carry
    exactly that evidence. This module collects them (live via
    {!Trace.add_sink}, or replayed from JSONL) into per-node {e wave
    stories}, renders them for humans ([explain]) and machines (JSON),
    and diffs two runs' decision streams to the first divergent
    decision ([divergence]) — the tool PR 6's cross-rule differential
    harness was missing when all it could say was "logs differ". *)

type commit_cert = {
  c_node : int;
  c_rule : string;
  c_sched : string;  (** "coin" | "round-robin" *)
  c_wave : int;
  c_leader_round : int;
  c_leader_source : int;
  c_direct : bool;
  c_anchor : int;  (** wave whose direct commit fired the chain *)
  c_via_round : int;
  c_via_source : int;
      (** next committed leader up the chain (the leader itself when
          direct) — its strong path is a chained commit's evidence *)
  c_support : int list;
      (** sources of the wave's last-round vertices counted against the
          quorum (direct commits; empty for chained) *)
  c_quorum : int;
  c_delivered : int;
  c_at : float;
}

type skip_cert = {
  s_node : int;
  s_rule : string;
  s_sched : string;
  s_wave : int;
  s_leader_round : int;
  s_leader_source : int;
  s_reason : string;  (** "leader-absent" | "under-supported" *)
  s_support : int list;
  s_quorum : int;
  s_at : float;
}

type story = {
  st_wave : int;
  st_skip : skip_cert option;
      (** recorded when the wave was first processed without a commit *)
  st_commit : commit_cert option;
      (** a later chain-back can recover a skipped wave: both fields
          set means "skipped, then recovered"; skip only means the wave
          was never committed at this node *)
}

type t

val create : unit -> t

val feed : t -> Trace.event -> unit
(** Certificate and [A_deliver] events update the collector; everything
    else is ignored — safe to register directly as a tracer sink. *)

val of_events : Trace.event list -> t

val of_jsonl_file : string -> (t, string) result
(** Replay a JSONL trace dump into a fresh collector. *)

val nodes : t -> int list
(** Nodes that emitted at least one certificate, ascending. *)

val observer : t -> int option
(** The node with the most certificates (ties to the lowest id) — the
    default subject for [explain]/[divergence]. *)

val rule_name : t -> string option
(** Rule named by the certificates (they all agree within one run). *)

val wave_length : t -> int option
(** Rounds per wave, recovered from the certificates' leader rounds
    (falling back to the named rule's wave length). *)

val stories : t -> node:int -> story list
(** The node's wave stories, ascending by wave. *)

val find_story : t -> node:int -> wave:int -> story option

val find_vertex : t -> node:int -> round:int -> source:int -> commit_cert option
(** The commit whose causal-history delivery ordered this vertex at the
    node (from the [A_deliver] attribution). *)

val justification :
  t ->
  node:int ->
  wave:int ->
  (Dagrider.Vertex.vref * Dagrider.Vertex.vref list * Dagrider.Vertex.vref list)
  option
(** [(leader, supporters, chain)] of a committed wave: the leader
    vertex, the supporting-quorum vertices (direct commits), and the
    chain-back leaders that share the commit's anchor — the inputs
    {!Dagrider.Render.dot_justification} shades. [None] when the wave
    has no commit certificate. *)

val explain_wave : t -> node:int -> wave:int -> string
(** Human rendering of one wave's certificate chain: schedule evidence,
    supporter set vs quorum, chain-back path, skip evidence, and
    whether a skip was later recovered. Waves with no certificate
    render as unresolved. *)

val explain_wave_json : t -> node:int -> wave:int -> Stdx.Json.t

val explain_vertex : t -> node:int -> round:int -> source:int -> string
(** The certificate chain of the commit that ordered this vertex. *)

val explain_vertex_json :
  t -> node:int -> round:int -> source:int -> Stdx.Json.t

val summary : t -> node:int -> string
(** One line per wave story (the swarm failure artifact's explain
    digest). *)

(** First divergent decision between two certificate streams.

    Same-rule streams compare per-wave final decisions (committed
    leader / skipped / unresolved); cross-rule streams — waves mean
    different things — compare the ordered delivery logs instead. Both
    modes binary-search cumulative digests of the stream prefixes, so
    locating the divergence costs O(log n) prefix probes. *)
type divergence =
  | No_certificates  (** one side has no certificates at all *)
  | Identical of { mode : string; compared : int }
      (** mode "waves" or "log" *)
  | Prefix of { mode : string; compared : int; longer : string; extra : int }
      (** equal up to the shorter stream; [longer] is "A" or "B" *)
  | Diverged_wave of { wave : int; a : story option; b : story option }
  | Diverged_entry of {
      index : int;  (** 0-based position in the ordered logs *)
      a_vertex : int * int;
      b_vertex : int * int;  (** (round, source) *)
      a_commit : commit_cert option;
      b_commit : commit_cert option;
    }

val divergence : t -> node_a:int -> t -> node_b:int -> divergence

val render_divergence : t -> node_a:int -> t -> node_b:int -> string
(** {!divergence} plus both sides' full certificate evidence at the
    divergence point. *)

val divergence_to_json : t -> node_a:int -> t -> node_b:int -> Stdx.Json.t
