(* Cross-rule differential harness: replay the SAME seeded execution —
   schedule, fault pattern, every RNG stream — through both commit
   rules and check two things the pluggable-rule refactor promises:

   1. The rules are interchangeable consumers of one substrate: DAG
      construction (and hence the whole message schedule) is
      byte-identical across rules. The commit rule reads the DAG and the
      leader schedule but never feeds back into vertex creation,
      broadcast, or the coin cadence, so two builds differing only in
      [rule] must produce the same per-node DAGs, the same message and
      bit counts, and the same round progress.

   2. Each rule independently keeps the paper's safety properties on
      that shared substrate: per-rule honest logs totally ordered and
      prefix-comparable, no duplicate deliveries, and the full oracle
      sweep (leader support at the rule's own quorum, skip legality,
      chain quality) clean — under honest, lossy, and partitioned
      schedules alike.

   TigerBeetle-style: every case is a pure function of its seed, so a
   failing case name IS the repro. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let rules = [ Dagrider.Ordering.dag_rider; Dagrider.Ordering.bullshark ]

type flavor = Honest | Lossy | Partitioned | Attacked of Attack.strategy

let flavor_name = function
  | Honest -> "honest"
  | Lossy -> "lossy"
  | Partitioned -> "partitioned"
  | Attacked s -> "attacked-" ^ Attack.strategy_label s

(* a mid-run partition that heals well before the horizon, so liveness
   resumes and both rules get post-partition waves to order *)
let partitioned_schedule rng =
  let inner = Net.Sched.uniform_random ~rng in
  Net.Sched.with_window ~inner ~from_time:10.0 ~until_time:22.0
    ~during:(Net.Sched.partition ~inner ~left:(fun i -> i mod 2 = 0) ~factor:25.0)

let horizon = function
  | Honest -> 40.0
  (* retransmission stretches every quorum; give lossy runs room *)
  | Lossy -> 90.0
  | Partitioned -> 55.0
  (* withheld disclosures and stalled leaders slow waves down *)
  | Attacked _ -> 70.0

let options ~rule ~flavor ~n ~seed =
  { (Harness.Runner.default_options ~n) with
    seed;
    rule;
    schedule =
      (match flavor with
      | Partitioned -> Harness.Runner.Custom partitioned_schedule
      | Honest | Lossy | Attacked _ -> Harness.Runner.Uniform_random);
    link_faults =
      (match flavor with
      | Lossy ->
        Some
          { Harness.Runner.lf_drop = 0.12;
            lf_duplicate = 0.05;
            lf_corrupt = 0.03;
            lf_reorder = 0.1 }
      | Honest | Partitioned | Attacked _ -> None);
    faults =
      (* attackers are rule-oblivious by construction (they read the raw
         coin table and the static round-robin table, never ordering
         state), so the substrate fingerprint must stay byte-identical
         across rules even under attack — asserted by every Attacked
         case. No restarts here: catch-up sync responses depend on each
         rule's GC frontier, which would legitimately fork the message
         schedule. *)
      (match flavor with
      | Attacked strategy ->
        [ Harness.Runner.Adversary (n - 1, { Attack.strategy; victims = [] }) ]
      | Honest | Lossy | Partitioned -> []) }

(* run one rule over the seeded execution, capturing every commit for
   the oracle sweep *)
let run_rule ~rule ~flavor ~n ~seed =
  let commits = ref [] in
  let opts =
    { (options ~rule ~flavor ~n ~seed) with
      on_commit =
        Some
          (fun ~node c ->
            commits :=
              { Check.Oracle.cr_node = node;
                cr_wave = c.Dagrider.Ordering.wave;
                cr_leader = Dagrider.Vertex.vref_of c.Dagrider.Ordering.leader;
                cr_direct = c.Dagrider.Ordering.direct }
              :: !commits) }
  in
  let runner = Harness.Runner.build opts in
  Harness.Runner.run runner ~until:(horizon flavor);
  (runner, !commits)

let substrate_fingerprint runner =
  let n = (Harness.Runner.options runner).Harness.Runner.n in
  let dags =
    List.init n (fun i ->
        Dagrider.Snapshot.dag_to_string
          (Dagrider.Node.dag (Harness.Runner.node runner i)))
  in
  ( dags,
    Harness.Runner.honest_bits runner,
    Metrics.Counters.total_messages (Harness.Runner.counters runner) )

let check_rule_safety ~rule ~(runner : Harness.Runner.t) ~commits =
  let name = rule.Dagrider.Ordering.rule_name in
  (match Harness.Runner.check_total_order runner with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: total order violated: %s" name e);
  (match Harness.Runner.check_integrity runner with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: integrity violated: %s" name e);
  match
    Check.Oracle.check_fleet ~runner ~commits ~expect_validity:false
  with
  | [] -> ()
  | vs ->
    Alcotest.failf "%s: %d oracle violations, first: %s" name (List.length vs)
      (Check.Oracle.pp (List.hd vs))

let differential_case ~flavor ~n ~seed () =
  let runs =
    List.map (fun rule -> (rule, run_rule ~rule ~flavor ~n ~seed)) rules
  in
  (* (2) per-rule safety on every node's log plus the oracle sweep *)
  List.iter
    (fun (rule, (runner, commits)) -> check_rule_safety ~rule ~runner ~commits)
    runs;
  (* (1) the substrate never heard about the rule *)
  (match List.map (fun (_, (runner, _)) -> substrate_fingerprint runner) runs with
  | [ (dags_dr, bits_dr, msgs_dr); (dags_bs, bits_bs, msgs_bs) ] ->
    checki "honest bits identical across rules" bits_dr bits_bs;
    checki "message count identical across rules" msgs_dr msgs_bs;
    List.iteri
      (fun i (d_dr, d_bs) ->
        checkb
          (Printf.sprintf "p%d DAG byte-identical across rules" i)
          true (String.equal d_dr d_bs))
      (List.combine dags_dr dags_bs)
  | _ -> assert false);
  (* both rules must actually have ordered something, or the diff is
     vacuous *)
  List.iter
    (fun (rule, (runner, _)) ->
      let delivered =
        Dagrider.Ordering.delivered_count
          (Dagrider.Node.ordering (Harness.Runner.node runner 0))
      in
      checkb
        (Printf.sprintf "%s ordered vertices" rule.Dagrider.Ordering.rule_name)
        true (delivered > 0))
    runs

(* the seeded schedule matrix: >= 20 cases spanning honest, lossy, and
   partitioned executions at both fleet sizes *)
let cases =
  List.concat
    [ List.map (fun seed -> (Honest, 4, seed)) [ 1; 2; 3; 4; 5; 6 ];
      List.map (fun seed -> (Honest, 7, seed)) [ 7; 8; 9; 10 ];
      List.map (fun seed -> (Lossy, 4, seed)) [ 11; 12; 13; 14 ];
      List.map (fun seed -> (Lossy, 7, seed)) [ 15 ];
      List.map (fun seed -> (Partitioned, 4, seed)) [ 16; 17; 18; 19 ];
      List.map (fun seed -> (Partitioned, 7, seed)) [ 20; 21 ];
      List.map (fun seed -> (Attacked Attack.Equivocate, 4, seed)) [ 22; 23 ];
      List.map (fun seed -> (Attacked Attack.Withhold, 4, seed)) [ 24 ];
      List.map (fun seed -> (Attacked Attack.Grind, 7, seed)) [ 25 ];
      List.map (fun seed -> (Attacked Attack.Bias, 4, seed)) [ 26 ] ]

(* Bullshark's commit cadence: on a synchronous fault-free schedule the
   2-round waves commit at least as many waves as DAG-Rider's 4-round
   ones on the identical substrate — the latency win the EXPERIMENTS
   table quantifies, asserted here in its weakest safe form *)
let test_bullshark_commits_more_waves () =
  let run rule =
    let runner, commits = run_rule ~rule ~flavor:Honest ~n:4 ~seed:99 in
    ignore runner;
    List.length
      (List.filter (fun c -> c.Check.Oracle.cr_node = 0) commits)
  in
  let dr = run Dagrider.Ordering.dag_rider
  and bs = run Dagrider.Ordering.bullshark in
  checkb
    (Printf.sprintf "bullshark commits >= dagrider commits (%d vs %d)" bs dr)
    true (bs >= dr);
  checkb "bullshark commits something" true (bs > 0)

let () =
  let diff_tests =
    List.map
      (fun (flavor, n, seed) ->
        Alcotest.test_case
          (Printf.sprintf "%s n=%d seed=%d" (flavor_name flavor) n seed)
          `Slow
          (differential_case ~flavor ~n ~seed))
      cases
  in
  Alcotest.run "rules"
    [ ("differential", diff_tests);
      ( "latency",
        [ Alcotest.test_case "bullshark wave cadence" `Slow
            test_bullshark_commits_more_waves ] ) ]
