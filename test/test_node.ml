(* White-box tests of Dagrider.Node: a single node driven by scripted
   reliable-broadcast deliveries and coin shares, so we can exercise
   orderings the fleet harness can't force — coin instances resolving
   out of wave order, Byzantine vertex payloads, missing-predecessor
   buffering, and the paper's "flip the coin only after the wave" rule. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let n = 4
let f = 1

type script = {
  node : Dagrider.Node.t;
  engine : Sim.Engine.t;
  coin : Crypto.Threshold_coin.t;
  coin_net : Dagrider.Node.coin_msg Net.Network.t;
  (* the node's own broadcasts, captured instead of sent anywhere *)
  own_broadcasts : (string * int) list ref; (* payload, round *)
  deliver : payload:string -> round:int -> source:int -> unit;
  delivered : (string * int * int) list ref; (* a_deliver upcalls *)
}

let make_script ?(config_patch = fun c -> c) () =
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = Net.Sched.synchronous () in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.create 5) ~n ~f in
  let coin_net = Net.Network.create ~engine ~sched ~counters ~n in
  let own_broadcasts = ref [] in
  let captured_deliver = ref (fun ~payload:_ ~round:_ ~source:_ -> ()) in
  let make_rbc ~me:_ ~deliver =
    captured_deliver := deliver;
    { Dagrider.Node.rbc_bcast =
        (fun ~payload ~round -> own_broadcasts := (payload, round) :: !own_broadcasts)
    }
  in
  let delivered = ref [] in
  let config =
    config_patch (Dagrider.Node.default_config ~n ~f)
  in
  let node =
    Dagrider.Node.create ~config ~me:0 ~coin
      ~coin_net:(Net.Port.of_network coin_net) ~make_rbc
      ~a_deliver:(fun ~block ~round ~source ->
        delivered := (block, round, source) :: !delivered)
      ()
  in
  { node;
    engine;
    coin;
    coin_net;
    own_broadcasts;
    deliver = (fun ~payload ~round ~source -> !captured_deliver ~payload ~round ~source);
    delivered }

(* feed the node a full round of vertices from the other three sources,
   each pointing at all of the previous round; the node's own vertex is
   self-delivered from its captured broadcast *)
let feed_round s ~round =
  (* replay the node's own broadcast for this round first (reliable
     broadcast delivers to self too) *)
  (match List.assoc_opt round (List.map (fun (p, r) -> (r, p)) !(s.own_broadcasts)) with
  | Some payload -> s.deliver ~payload ~round ~source:0
  | None -> ());
  let prev =
    if round = 1 then List.init n (fun source -> { Dagrider.Vertex.round = 0; source })
    else List.init n (fun source -> { Dagrider.Vertex.round = round - 1; source })
  in
  for source = 1 to n - 1 do
    let v =
      { Dagrider.Vertex.round;
        source;
        block = Printf.sprintf "b%d.%d" round source;
        strong_edges = prev;
        weak_edges = [] }
    in
    s.deliver ~payload:(Dagrider.Vertex.encode v) ~round ~source
  done

let send_share s ~from_ ~wave =
  Net.Network.send s.coin_net ~src:from_ ~dst:0 ~kind:"coin-share" ~bits:96
    (Dagrider.Node.Coin_share
       (Crypto.Threshold_coin.make_share s.coin ~holder:from_ ~instance:wave));
  ignore (Sim.Engine.run s.engine ())

let test_rounds_advance_on_quorum () =
  let s = make_script () in
  Dagrider.Node.start s.node;
  checki "broadcast round 1 at start" 1 (List.length !(s.own_broadcasts));
  feed_round s ~round:1;
  checki "advanced to round 2" 2 (Dagrider.Node.current_round s.node);
  checki "broadcast round 2" 2 (List.length !(s.own_broadcasts));
  feed_round s ~round:2;
  checki "advanced to round 3" 3 (Dagrider.Node.current_round s.node)

let test_wave_completion_without_coin_defers_ordering () =
  let s = make_script () in
  Dagrider.Node.start s.node;
  for r = 1 to 4 do
    feed_round s ~round:r
  done;
  checki "wave 1 completed" 1 (Dagrider.Node.waves_completed s.node);
  checki "nothing delivered before the coin resolves" 0
    (List.length !(s.delivered));
  (* the node released its own share on completing the wave; one more
     share (f+1 = 2 total) resolves the instance *)
  send_share s ~from_:1 ~wave:1;
  checki "coin resolved" 1 (Dagrider.Node.coin_instances_resolved s.node)

let test_out_of_order_coin_resolution () =
  (* shares for wave 2 resolve before wave 1's: ordering must still be
     wave 1 first (the node queues wave 2 until wave 1 is processed) *)
  let s = make_script () in
  Dagrider.Node.start s.node;
  for r = 1 to 8 do
    feed_round s ~round:r
  done;
  checki "two waves completed" 2 (Dagrider.Node.waves_completed s.node);
  (* the node's own shares for waves 1 and 2 are already out (wave
     completion releases them); deliver a peer's share for wave 2 FIRST *)
  send_share s ~from_:1 ~wave:2;
  checki "wave 2 coin resolved first" 1
    (Dagrider.Node.coin_instances_resolved s.node);
  let delivered_before = List.length !(s.delivered) in
  checki "still nothing ordered (wave 1 unresolved)" 0 delivered_before;
  send_share s ~from_:1 ~wave:1;
  checki "both coins resolved" 2 (Dagrider.Node.coin_instances_resolved s.node);
  checkb "ordering happened" true (List.length !(s.delivered) > 0);
  (* decided wave advanced through both waves in order *)
  checki "decided wave 2" 2
    (Dagrider.Ordering.decided_wave (Dagrider.Node.ordering s.node));
  (* the log is causally ordered: rounds never decrease within a leader
     batch beyond causal order — minimal check: first delivery is from
     round 1 *)
  let _, first_round, _ = List.nth !(s.delivered) (List.length !(s.delivered) - 1) in
  checki "first delivered vertex is round 1" 1 first_round

let test_malformed_payload_dropped () =
  let s = make_script () in
  Dagrider.Node.start s.node;
  s.deliver ~payload:"garbage bytes" ~round:1 ~source:2;
  s.deliver ~payload:"" ~round:1 ~source:3;
  checki "node unaffected" 1 (Dagrider.Node.current_round s.node);
  checki "nothing buffered" 0 (Dagrider.Node.buffered s.node)

let test_invalid_vertex_rejected () =
  let s = make_script () in
  Dagrider.Node.start s.node;
  (* too few strong edges *)
  let bad =
    { Dagrider.Vertex.round = 1;
      source = 2;
      block = "evil";
      strong_edges = [ { Dagrider.Vertex.round = 0; source = 0 } ];
      weak_edges = [] }
  in
  s.deliver ~payload:(Dagrider.Vertex.encode bad) ~round:1 ~source:2;
  checki "rejected, not buffered" 0 (Dagrider.Node.buffered s.node);
  (* round/source in the envelope win over attacker-controlled bytes:
     deliver a valid round-1 vertex under a round-2 envelope — validation
     sees round 2 but strong edges point at round 0, so it is rejected *)
  let v =
    { Dagrider.Vertex.round = 1;
      source = 2;
      block = "";
      strong_edges = List.init n (fun source -> { Dagrider.Vertex.round = 0; source });
      weak_edges = [] }
  in
  s.deliver ~payload:(Dagrider.Vertex.encode v) ~round:2 ~source:2;
  checki "mismatched envelope rejected" 0 (Dagrider.Node.buffered s.node)

let test_future_vertex_buffers_until_predecessors () =
  let s = make_script () in
  Dagrider.Node.start s.node;
  (* a round-2 vertex arrives before any round-1 vertex *)
  let early =
    { Dagrider.Vertex.round = 2;
      source = 1;
      block = "early";
      strong_edges = List.init n (fun source -> { Dagrider.Vertex.round = 1; source });
      weak_edges = [] }
  in
  s.deliver ~payload:(Dagrider.Vertex.encode early) ~round:2 ~source:1;
  checki "buffered" 1 (Dagrider.Node.buffered s.node);
  checki "round unchanged" 1 (Dagrider.Node.current_round s.node);
  (* its predecessors arrive: the buffer drains and rounds advance *)
  feed_round s ~round:1;
  checki "buffer drained" 0 (Dagrider.Node.buffered s.node);
  checkb "vertex joined the DAG" true
    (Dagrider.Dag.contains (Dagrider.Node.dag s.node)
       { Dagrider.Vertex.round = 2; source = 1 })

let test_share_only_after_wave_completion () =
  (* the paper's unpredictability hinge: no share for wave w leaves this
     node before it completes round(w, 4) *)
  let s = make_script () in
  Dagrider.Node.start s.node;
  let coin_sends () =
    (* count coin messages the node broadcast so far: the script's
       coin_net delivers to nobody, so count via delivered+pending *)
    Sim.Engine.pending s.engine
  in
  for r = 1 to 3 do
    feed_round s ~round:r;
    checki
      (Printf.sprintf "no coin traffic during round %d" r)
      0 (coin_sends ())
  done;
  feed_round s ~round:4;
  checkb "share released on wave completion" true (coin_sends () > 0)

let test_duplicate_vertex_ignored () =
  let s = make_script () in
  Dagrider.Node.start s.node;
  feed_round s ~round:1;
  let dag_size = List.length (Dagrider.Dag.vertices (Dagrider.Node.dag s.node)) in
  (* replay the same round (reliable broadcast would never do this, but
     a Byzantine network stack might) *)
  feed_round s ~round:1;
  checki "no growth on replay" dag_size
    (List.length (Dagrider.Dag.vertices (Dagrider.Node.dag s.node)))

let test_a_bcast_blocks_ride_vertices () =
  let s = make_script () in
  Dagrider.Node.a_bcast s.node "queued-before-start";
  Dagrider.Node.start s.node;
  (* the first broadcast vertex carries the queued block *)
  let payload, round = List.hd !(s.own_broadcasts) in
  checki "round 1" 1 round;
  match Dagrider.Vertex.decode ~round:1 ~source:0 payload with
  | Some v ->
    Alcotest.(check string) "block" "queued-before-start" v.Dagrider.Vertex.block
  | None -> Alcotest.fail "own vertex must decode"

(* ---- checkpoint / restart ---- *)

let test_checkpoint_restore_roundtrip () =
  (* run a real fleet, checkpoint node 0 (through full serialization),
     rebuild it, and verify it resumes without re-delivering *)
  let opts = { (Harness.Runner.default_options ~n:4) with seed = 61 } in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:40.0;
  let original = Harness.Runner.node h 0 in
  let ck = Dagrider.Node.checkpoint original in
  (* full persistence roundtrip: DAG and delivered refs through the
     Snapshot codec, scalars as the caller would store them *)
  let dag' =
    match
      Dagrider.Snapshot.dag_of_string
        (Dagrider.Snapshot.dag_to_string ck.Dagrider.Node.ck_dag)
    with
    | Ok d -> d
    | Error e -> Alcotest.fail e
  in
  let delivered_refs =
    match
      Dagrider.Snapshot.delivered_of_string
        (Dagrider.Snapshot.delivered_to_string
           (List.map Dagrider.Vertex.vref_of ck.Dagrider.Node.ck_delivered))
    with
    | Ok refs -> refs
    | Error e -> Alcotest.fail e
  in
  let delivered =
    List.map (fun r -> Option.get (Dagrider.Dag.find dag' r)) delivered_refs
  in
  let ck' =
    { Dagrider.Node.ck_dag = dag';
      ck_delivered = delivered;
      ck_decided_wave = ck.Dagrider.Node.ck_decided_wave;
      ck_round = ck.Dagrider.Node.ck_round }
  in
  (* the fleet keeps running while node 0 is "down": its peers get ahead *)
  Harness.Runner.run h ~until:60.0;
  (* rebuild on a scripted transport *)
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let coin_net =
    Net.Network.create ~engine ~sched:(Net.Sched.synchronous ()) ~counters ~n:4
  in
  let own = ref [] in
  let captured = ref (fun ~payload:_ ~round:_ ~source:_ -> ()) in
  let make_rbc ~me:_ ~deliver =
    captured := deliver;
    { Dagrider.Node.rbc_bcast = (fun ~payload ~round -> own := (payload, round) :: !own) }
  in
  let redelivered = ref 0 in
  let restored =
    Dagrider.Node.restore
      ~config:(Dagrider.Node.default_config ~n:4 ~f:1)
      ~me:0
      ~coin:(Harness.Runner.coin h)
      ~coin_net:(Net.Port.of_network coin_net) ~make_rbc
      ~a_deliver:(fun ~block:_ ~round:_ ~source:_ -> incr redelivered)
      ck'
  in
  checki "same round" ck.Dagrider.Node.ck_round
    (Dagrider.Node.current_round restored);
  checki "same decided wave" ck.Dagrider.Node.ck_decided_wave
    (Dagrider.Ordering.decided_wave (Dagrider.Node.ordering restored));
  checki "same delivered count"
    (List.length ck.Dagrider.Node.ck_delivered)
    (Dagrider.Ordering.delivered_count (Dagrider.Node.ordering restored));
  Dagrider.Node.start restored;
  checki "no new broadcast on start (no equivocation)" 0 (List.length !own);
  checki "nothing re-delivered" 0 !redelivered;
  (* feed the restored node what another live node already has beyond the
     checkpoint: it must catch up and keep delivering in agreement *)
  let peer_dag = Dagrider.Node.dag (Harness.Runner.node h 1) in
  let ck_round = ck.Dagrider.Node.ck_round in
  let fed = ref 0 in
  for r = 1 to Dagrider.Dag.highest_round peer_dag do
    List.iter
      (fun v ->
        if not (Dagrider.Dag.contains (Dagrider.Node.dag restored) (Dagrider.Vertex.vref_of v))
        then begin
          incr fed;
          !captured
            ~payload:(Dagrider.Vertex.encode v)
            ~round:v.Dagrider.Vertex.round ~source:v.Dagrider.Vertex.source
        end)
      (Dagrider.Dag.round_vertices peer_dag r)
  done;
  checkb "received new vertices" true (!fed > 0);
  checkb "advanced past the checkpoint" true
    (Dagrider.Node.current_round restored > ck_round);
  checkb "broadcast resumed for NEW rounds only" true
    (List.for_all (fun (_, r) -> r > ck_round) !own);
  (* deliver enough coin shares for the next undecided waves *)
  for wave = ck.Dagrider.Node.ck_decided_wave + 1
      to Dagrider.Node.waves_completed restored do
    for from_ = 1 to 2 do
      Net.Network.send coin_net ~src:from_ ~dst:0 ~kind:"coin-share" ~bits:96
        (Dagrider.Node.Coin_share
           (Crypto.Threshold_coin.make_share (Harness.Runner.coin h)
              ~holder:from_ ~instance:wave))
    done
  done;
  ignore (Sim.Engine.run engine ());
  (* the restored node's continued log must extend consistently with the
     peer's log (prefix agreement) *)
  let restored_log =
    List.map Dagrider.Vertex.vref_of (Dagrider.Node.delivered_log restored)
  in
  let peer_log =
    List.map Dagrider.Vertex.vref_of
      (Dagrider.Node.delivered_log (Harness.Runner.node h 1))
  in
  let rec prefix_ok = function
    | [], _ | _, [] -> true
    | x :: xs, y :: ys -> x = y && prefix_ok (xs, ys)
  in
  checkb "restored log prefix-consistent with peer" true
    (prefix_ok (restored_log, peer_log));
  checkb "restored node delivered beyond the checkpoint" true
    (List.length restored_log > List.length ck.Dagrider.Node.ck_delivered)

let () =
  Alcotest.run "node"
    [ ( "scripted",
        [ Alcotest.test_case "rounds advance on quorum" `Quick
            test_rounds_advance_on_quorum;
          Alcotest.test_case "wave defers ordering to coin" `Quick
            test_wave_completion_without_coin_defers_ordering;
          Alcotest.test_case "out-of-order coin resolution" `Quick
            test_out_of_order_coin_resolution;
          Alcotest.test_case "malformed payloads dropped" `Quick
            test_malformed_payload_dropped;
          Alcotest.test_case "invalid vertices rejected" `Quick
            test_invalid_vertex_rejected;
          Alcotest.test_case "future vertex buffers" `Quick
            test_future_vertex_buffers_until_predecessors;
          Alcotest.test_case "share only after wave" `Quick
            test_share_only_after_wave_completion;
          Alcotest.test_case "duplicate vertex ignored" `Quick
            test_duplicate_vertex_ignored;
          Alcotest.test_case "a_bcast rides vertices" `Quick
            test_a_bcast_blocks_ride_vertices ] );
      ( "restart",
        [ Alcotest.test_case "checkpoint/restore roundtrip" `Quick
            test_checkpoint_restore_roundtrip ] )
    ]
