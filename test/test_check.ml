(* Tests for the swarm checker: oracle log checks on hand-built
   histories, shrinker convergence, scenario determinism, and the
   sabotage self-test pinned to a known-failing seed. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let vref round source = { Dagrider.Vertex.round; source }

(* a well-formed shared prefix: rounds 1..k, sources 0..3 *)
let log_prefix k =
  List.concat_map
    (fun round -> List.init 4 (fun source -> vref round source))
    (List.init k (fun i -> i + 1))

(* ---- Oracle: agreement ---- *)

let test_agreement_identical () =
  let log = log_prefix 3 in
  let logs = [ (0, log); (1, log); (2, log) ] in
  checki "no violations" 0 (List.length (Check.Oracle.check_agreement ~logs))

let test_agreement_prefix_ok () =
  (* shorter logs that are prefixes of the longest are fine *)
  let long = log_prefix 3 in
  let short = log_prefix 2 in
  let logs = [ (0, long); (1, short); (2, []) ] in
  checki "prefixes agree" 0 (List.length (Check.Oracle.check_agreement ~logs))

let test_agreement_divergence_flagged () =
  let a = log_prefix 2 @ [ vref 3 0; vref 3 1 ] in
  let b = log_prefix 2 @ [ vref 3 1; vref 3 0 ] in
  let violations = Check.Oracle.check_agreement ~logs:[ (0, a); (1, b) ] in
  checkb "divergence flagged" true (violations <> []);
  checkb "classified as agreement" true
    (List.for_all
       (fun v -> v.Check.Oracle.invariant = "agreement")
       violations)

let test_agreement_mid_log_gap_flagged () =
  (* same length, one entry swapped for a different vertex *)
  let a = log_prefix 2 in
  let b = List.mapi (fun i v -> if i = 3 then vref 9 9 else v) a in
  let violations = Check.Oracle.check_agreement ~logs:[ (0, a); (1, b) ] in
  checkb "substitution flagged" true (violations <> [])

(* ---- Oracle: extension (append-only logs) ---- *)

let test_extension_append_ok () =
  let before = log_prefix 2 in
  let after = log_prefix 3 in
  checki "append is fine" 0
    (List.length (Check.Oracle.check_extension ~node:0 ~before ~after))

let test_extension_rewrite_flagged () =
  let before = log_prefix 2 in
  let after = vref 9 9 :: List.tl (log_prefix 3) in
  let violations = Check.Oracle.check_extension ~node:0 ~before ~after in
  checkb "rewrite flagged" true (violations <> [])

let test_extension_truncation_flagged () =
  let before = log_prefix 3 in
  let after = log_prefix 2 in
  let violations = Check.Oracle.check_extension ~node:0 ~before ~after in
  checkb "truncation flagged" true (violations <> [])

(* ---- Oracle: integrity (no duplicates) ---- *)

let test_no_duplicates_clean () =
  checki "clean log passes" 0
    (List.length
       (Check.Oracle.check_no_duplicates ~logs:[ (0, log_prefix 3) ]))

let test_no_duplicates_flagged () =
  let log = log_prefix 2 @ [ vref 1 0 ] in
  let violations = Check.Oracle.check_no_duplicates ~logs:[ (0, log) ] in
  checkb "duplicate flagged" true (violations <> []);
  checkb "classified as integrity" true
    (List.for_all
       (fun v -> v.Check.Oracle.invariant = "integrity")
       violations)

(* ---- Shrinker ---- *)

let test_shrink_list_converges () =
  (* keep = "contains both 3 and 7" — everything else must be dropped *)
  let keep xs = List.mem 3 xs && List.mem 7 xs in
  let input = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
  let out = Check.Swarm.shrink_list ~keep input in
  checkb "result still failing" true (keep out);
  Alcotest.(check (list int)) "1-minimal" [ 3; 7 ] out

let test_shrink_list_keeps_all_when_needed () =
  let keep xs = List.length xs >= 3 in
  let out = Check.Swarm.shrink_list ~keep [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "nothing droppable" [ 1; 2; 3 ] out

let test_shrink_list_empties_trivial () =
  let out = Check.Swarm.shrink_list ~keep:(fun _ -> true) [ 1; 2; 3 ] in
  Alcotest.(check (list int)) "all dropped" [] out

(* ---- Scenario determinism ---- *)

let test_scenario_deterministic () =
  let a = Check.Scenario.generate ~quick:true ~seed:42 () in
  let b = Check.Scenario.generate ~quick:true ~seed:42 () in
  Alcotest.(check string)
    "same seed, same scenario" (Check.Scenario.describe a)
    (Check.Scenario.describe b);
  let c = Check.Scenario.generate ~quick:true ~seed:43 () in
  checkb "different seeds differ" true
    (Check.Scenario.describe a <> Check.Scenario.describe c)

let test_scenario_fault_budget () =
  (* the script never corrupts more than f processes in total *)
  List.iter
    (fun seed ->
      let sc = Check.Scenario.generate ~seed () in
      checkb "at most f faulty" true
        (List.length (Check.Scenario.faulty_nodes sc) <= sc.Check.Scenario.f))
    (List.init 25 (fun i -> i))

(* ---- Honest end-to-end run ---- *)

let test_honest_scenario_clean () =
  (* a fixed honest quick seed must produce a violation-free run with
     actual progress *)
  let sc = Check.Scenario.generate ~quick:true ~seed:1 () in
  let outcome = Check.Swarm.run_scenario sc in
  checki "no violations" 0 (List.length outcome.Check.Swarm.violations);
  checkb "made progress" true (outcome.Check.Swarm.delivered_min > 0)

(* ---- Sabotage self-test ---- *)

(* Seed picked by sweeping quick sabotage seeds: this one produces
   prefix-divergent logs. ISSUE.md suggested [commit_quorum = Some
   (f+1)] as the sabotage lever, but with honest (non-equivocating)
   reliable broadcast f+1 is provably still safe here — see the quorum
   discussion in lib/check/scenario.ml — so sabotage weakens the knob
   all the way to commit-on-sight. If scenario generation or the
   runner's seed derivation changes, re-sweep and update this seed.
   (Re-swept when the gossip backend gained its Byzantine quorum floors:
   the old gossip-backed seed 87 stopped diverging, and this bracha seed
   is immune to future gossip tuning.) *)
let sabotage_seed = 293

let test_sabotage_caught () =
  let sc = Check.Scenario.generate ~sabotage:true ~quick:true ~seed:sabotage_seed () in
  checkb "quorum weakened" true (sc.Check.Scenario.commit_quorum <> None);
  let outcome = Check.Swarm.run_scenario sc in
  let agreement =
    List.filter
      (fun v -> v.Check.Oracle.invariant = "agreement")
      outcome.Check.Swarm.violations
  in
  checkb "agreement violation caught" true (agreement <> []);
  let support =
    List.filter
      (fun v -> v.Check.Oracle.invariant = "leader-support")
      outcome.Check.Swarm.violations
  in
  checkb "weak commit caught" true (support <> []);
  Alcotest.(check string)
    "repro command" "dune exec bin/swarm.exe -- --seed 293 --quick --sabotage"
    (Check.Swarm.repro_command sc)

let () =
  Alcotest.run "check"
    [ ( "oracle-agreement",
        [ Alcotest.test_case "identical logs pass" `Quick
            test_agreement_identical;
          Alcotest.test_case "prefixes pass" `Quick test_agreement_prefix_ok;
          Alcotest.test_case "divergence flagged" `Quick
            test_agreement_divergence_flagged;
          Alcotest.test_case "substitution flagged" `Quick
            test_agreement_mid_log_gap_flagged ] );
      ( "oracle-extension",
        [ Alcotest.test_case "append ok" `Quick test_extension_append_ok;
          Alcotest.test_case "rewrite flagged" `Quick
            test_extension_rewrite_flagged;
          Alcotest.test_case "truncation flagged" `Quick
            test_extension_truncation_flagged ] );
      ( "oracle-integrity",
        [ Alcotest.test_case "clean" `Quick test_no_duplicates_clean;
          Alcotest.test_case "duplicate flagged" `Quick
            test_no_duplicates_flagged ] );
      ( "shrinker",
        [ Alcotest.test_case "converges to minimum" `Quick
            test_shrink_list_converges;
          Alcotest.test_case "keeps needed elements" `Quick
            test_shrink_list_keeps_all_when_needed;
          Alcotest.test_case "empties when trivial" `Quick
            test_shrink_list_empties_trivial ] );
      ( "scenario",
        [ Alcotest.test_case "deterministic from seed" `Quick
            test_scenario_deterministic;
          Alcotest.test_case "fault budget <= f" `Quick
            test_scenario_fault_budget ] );
      ( "swarm",
        [ Alcotest.test_case "honest seed clean" `Slow
            test_honest_scenario_clean;
          Alcotest.test_case "sabotage caught" `Slow test_sabotage_caught ] )
    ]
