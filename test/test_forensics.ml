(* Tests for commit forensics: the provenance-certificate collector,
   the explain renderings, JSONL round-tripping, skip evidence under
   both rules, the oracle's independent certificate re-validation over
   500+-wave runs, and divergence pinpointing on the known diverging
   sabotage seed. *)

let checkb = Alcotest.(check bool)

let contains hay needle =
  let hl = String.length hay and nl = String.length needle in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let build_traced ?(n = 4) ?(seed = 42) ?(until = 40.0)
    ?(rule = Dagrider.Ordering.dag_rider)
    ?(schedule = Harness.Runner.Uniform_random) ?(block_bytes = 0) ?gc_depth
    ?(capacity = 4096) ?(faults = []) () =
  let tracer = Trace.create ~capacity () in
  let fleet =
    Harness.Runner.build
      { (Harness.Runner.default_options ~n) with
        seed;
        rule;
        schedule;
        block_bytes;
        gc_depth;
        faults;
        trace = Some tracer }
  in
  Harness.Runner.run fleet ~until;
  (fleet, tracer)

let forensics_of fleet = Option.get (Harness.Runner.forensics fleet)

(* ---- certificate round-trip: JSONL export -> replay -> identical ---- *)

let test_jsonl_roundtrip () =
  (* the ring must retain the whole run so the JSONL dump carries every
     certificate the live sink saw *)
  let fleet, tracer =
    build_traced ~seed:1 ~until:200.0 ~capacity:Trace.default_capacity
      ~faults:[ Harness.Runner.Crash 3 ] ()
  in
  let live = forensics_of fleet in
  let path = Filename.temp_file "forensics" ".trace.jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Trace.to_jsonl tracer);
      close_out oc;
      let replayed =
        match Forensics.of_jsonl_file path with
        | Ok fx -> fx
        | Error e -> Alcotest.fail ("replay failed: " ^ e)
      in
      checki "ring did not wrap" 0 (Trace.dropped tracer);
      checkb "same node set" true
        (Forensics.nodes live = Forensics.nodes replayed);
      checkb "same rule" true
        (Forensics.rule_name live = Forensics.rule_name replayed);
      List.iter
        (fun node ->
          checks
            (Printf.sprintf "p%d summary round-trips" node)
            (Forensics.summary live ~node)
            (Forensics.summary replayed ~node);
          List.iter
            (fun st ->
              let w = st.Forensics.st_wave in
              checks
                (Printf.sprintf "p%d wave %d explain round-trips" node w)
                (Forensics.explain_wave live ~node ~wave:w)
                (Forensics.explain_wave replayed ~node ~wave:w);
              checks
                (Printf.sprintf "p%d wave %d json round-trips" node w)
                (Stdx.Json.to_string
                   (Forensics.explain_wave_json live ~node ~wave:w))
                (Stdx.Json.to_string
                   (Forensics.explain_wave_json replayed ~node ~wave:w)))
            (Forensics.stories live ~node))
        (Forensics.nodes live))

(* ---- dagrider skip evidence: coin lands on a crashed leader ---- *)

let test_dagrider_skip_evidence () =
  (* p3 crashed: whenever the wave-4 coin picks it the leader vertex is
     absent and the wave is skipped with leader-absent evidence (seed 1
     produces several such waves within the horizon) *)
  let fleet, _ =
    build_traced ~seed:1 ~until:200.0 ~faults:[ Harness.Runner.Crash 3 ] ()
  in
  let fx = forensics_of fleet in
  let node = Option.get (Forensics.observer fx) in
  let skips =
    List.filter
      (fun st ->
        st.Forensics.st_commit = None && st.Forensics.st_skip <> None)
      (Forensics.stories fx ~node)
  in
  checkb "at least one finally skipped wave" true (skips <> []);
  List.iter
    (fun st ->
      let s = Option.get st.Forensics.st_skip in
      checks "skip names the crashed leader's absence" "leader-absent"
        s.Forensics.s_reason;
      checki "absent leader is the crashed process" 3
        s.Forensics.s_leader_source;
      checks "coin schedule evidence" "coin" s.Forensics.s_sched;
      checkb "absent leader cites no supporters" true
        (s.Forensics.s_support = []);
      let text = Forensics.explain_wave fx ~node ~wave:st.Forensics.st_wave in
      checkb "explain shows the skip" true
        (contains text "skipped");
      checkb "explain shows it never recovered" true
        (contains text "never recovered"))
    skips;
  (* committed waves carry full quorum evidence *)
  List.iter
    (fun st ->
      match st.Forensics.st_commit with
      | Some c when c.Forensics.c_direct ->
        checkb "direct commit meets quorum" true
          (List.length c.Forensics.c_support >= c.Forensics.c_quorum)
      | _ -> ())
    (Forensics.stories fx ~node)

(* ---- bullshark: RR leader skipped, then chain-back recovered ---- *)

let test_bullshark_skip_recovery () =
  let fleet, _ =
    build_traced ~seed:1 ~until:150.0 ~rule:Dagrider.Ordering.bullshark
      ~schedule:Harness.Runner.Skewed_random ()
  in
  let fx = forensics_of fleet in
  let node = Option.get (Forensics.observer fx) in
  let recovered =
    List.filter
      (fun st ->
        st.Forensics.st_skip <> None && st.Forensics.st_commit <> None)
      (Forensics.stories fx ~node)
  in
  checkb "at least one skipped-then-recovered wave" true (recovered <> []);
  List.iter
    (fun st ->
      let c = Option.get st.Forensics.st_commit in
      checkb "recovery is a chained commit" false c.Forensics.c_direct;
      checkb "chained commits cite no direct support" true
        (c.Forensics.c_support = []);
      checkb "anchor is a later wave" true
        (c.Forensics.c_anchor > st.Forensics.st_wave);
      checkb "via sits above the leader" true
        (c.Forensics.c_via_round > c.Forensics.c_leader_round);
      checks "round-robin schedule evidence" "round-robin"
        c.Forensics.c_sched;
      (* the RR leader is pinned by the schedule, not a coin *)
      checki "leader is (w-1) mod n" ((st.Forensics.st_wave - 1) mod 4)
        c.Forensics.c_leader_source;
      let text = Forensics.explain_wave fx ~node ~wave:st.Forensics.st_wave in
      checkb "explain shows the chain-back" true
        (contains text "chain-back");
      checkb "explain shows the earlier skip" true
        (contains text "skipped first"))
    recovered;
  (* the justification subgraph of a recovered wave shades its chain *)
  let st = List.hd recovered in
  match Forensics.justification fx ~node ~wave:st.Forensics.st_wave with
  | None -> Alcotest.fail "recovered wave has no justification"
  | Some (leader, support, chain) ->
    checkb "chained justification has no quorum set" true (support = []);
    checkb "chain is non-empty" true (chain <> []);
    let dag = Dagrider.Node.dag (Harness.Runner.node fleet node) in
    let dot = Dagrider.Render.dot_justification ~support ~chain dag ~leader in
    checkb "leader gold in DOT" true
      (contains dot "fillcolor=gold");
    checkb "chain-back orange in DOT" true
      (contains dot "fillcolor=orange")

(* ---- acceptance: every wave certified and oracle-validated ---- *)

let certificates_validate rule =
  (* GC keeps the long run fast; the oracle's certificate check knows
     the GC horizon and still field-checks pruned waves *)
  let fleet, _ = build_traced ~gc_depth:8 ~until:4000.0 ~rule () in
  let fx = forensics_of fleet in
  let node = Option.get (Forensics.observer fx) in
  let ordering = Dagrider.Node.ordering (Harness.Runner.node fleet node) in
  let decided = Dagrider.Ordering.decided_wave ordering in
  checkb "500+ waves decided" true (decided >= 500);
  (* completeness: every wave up to the decided horizon has a story *)
  for w = 1 to decided do
    match Forensics.find_story fx ~node ~wave:w with
    | None -> Alcotest.fail (Printf.sprintf "wave %d has no certificate" w)
    | Some st ->
      checkb
        (Printf.sprintf "wave %d story is resolved" w)
        true
        (st.Forensics.st_commit <> None || st.Forensics.st_skip <> None)
  done;
  (* independence: the oracle re-derives every claim from the final DAGs *)
  let violations =
    Check.Oracle.check_certificates ~rule
      ~f:(Harness.Runner.options fleet).Harness.Runner.f ~forensics:fx
      ~dag_of:(fun i ->
        Some (Dagrider.Node.dag (Harness.Runner.node fleet i)))
  in
  Alcotest.(check (list string))
    "oracle validates every certificate" []
    (List.map Check.Oracle.pp violations)

let test_certificates_validate_dagrider () =
  certificates_validate Dagrider.Ordering.dag_rider

let test_certificates_validate_bullshark () =
  certificates_validate Dagrider.Ordering.bullshark

(* ---- oracle rejects forged certificates ---- *)

let test_oracle_rejects_forgery () =
  let fleet, tracer = build_traced ~until:60.0 () in
  let fx = forensics_of fleet in
  let node = Option.get (Forensics.observer fx) in
  ignore tracer;
  let real =
    List.find_map
      (fun st -> st.Forensics.st_commit)
      (Forensics.stories fx ~node)
    |> Option.get
  in
  (* forge: same wave, leader claimed at a non-existent source *)
  let forged =
    Trace.
      { seq = 0;
        time = 0.0;
        cause = -1;
        kind =
          Commit_cert
            { node;
              rule = real.Forensics.c_rule;
              sched = real.Forensics.c_sched;
              wave = real.Forensics.c_wave + 1000;
              leader_round =
                ((real.Forensics.c_wave + 999) * 4) + 1;
              leader_source = 2;
              direct = true;
              anchor_wave = real.Forensics.c_wave + 1000;
              via_round = ((real.Forensics.c_wave + 999) * 4) + 1;
              via_source = 2;
              support = [ 0; 1; 2 ];
              quorum = 3;
              delivered = 1 } }
  in
  let fx' = Forensics.of_events [ forged ] in
  let violations =
    Check.Oracle.check_certificates ~rule:Dagrider.Ordering.dag_rider
      ~f:(Harness.Runner.options fleet).Harness.Runner.f ~forensics:fx'
      ~dag_of:(fun i ->
        Some (Dagrider.Node.dag (Harness.Runner.node fleet i)))
  in
  checkb "forged certificate rejected" true (violations <> []);
  checkb "as a certificate violation" true
    (List.for_all (fun v -> v.Check.Oracle.invariant = "certificate") violations)

(* ---- divergence: the known diverging sabotage seed ---- *)

let test_divergence_sabotage_seed () =
  (* seed 293 is the sabotage self-test's pinned seed (see test_check):
     quorum weakened to commit-on-sight plus leader hiding makes the
     nodes disagree on wave 1 — p1 skips the hidden leader, p2 commits
     it with zero support. Divergence must pinpoint that wave with both
     sides' evidence. *)
  let sc =
    Check.Scenario.generate ~sabotage:true ~quick:true ~seed:293 ()
  in
  let tracer = Check.Swarm.trace_scenario sc in
  let fx = Forensics.of_events (Trace.events tracer) in
  (match Forensics.divergence fx ~node_a:1 fx ~node_b:2 with
  | Forensics.Diverged_wave { wave; a; b } ->
    checki "diverges at wave 1" 1 wave;
    let a = Option.get a and b = Option.get b in
    checkb "one side skipped" true
      (a.Forensics.st_commit = None && a.Forensics.st_skip <> None);
    let bc = Option.get b.Forensics.st_commit in
    checkb "other side committed on sabotaged quorum" true
      (List.length bc.Forensics.c_support < 3)
  | _ -> Alcotest.fail "expected a wave divergence between p1 and p2");
  let text = Forensics.render_divergence fx ~node_a:1 fx ~node_b:2 in
  checkb "render names the wave" true
    (contains text "FIRST DIVERGENT DECISION: wave 1");
  checkb "render shows both sides" true
    (contains text "side A (p1)"
    && contains text "side B (p2)")

(* ---- divergence: same rule, identical honest runs ---- *)

let test_divergence_identical_and_cross_rule () =
  let _, tr_a = build_traced ~until:60.0 () in
  let _, tr_b = build_traced ~until:60.0 () in
  let fa = Forensics.of_events (Trace.events tr_a) in
  let fb = Forensics.of_events (Trace.events tr_b) in
  let na = Option.get (Forensics.observer fa) in
  let nb = Option.get (Forensics.observer fb) in
  (match Forensics.divergence fa ~node_a:na fb ~node_b:nb with
  | Forensics.Identical { mode; _ } -> checks "same-rule mode" "waves" mode
  | _ -> Alcotest.fail "identical runs must not diverge");
  (* cross-rule on one schedule: both rules order the same vertices but
     in different positions — compared by delivery log *)
  let _, tr_c =
    build_traced ~until:60.0 ~rule:Dagrider.Ordering.bullshark ()
  in
  let fc = Forensics.of_events (Trace.events tr_c) in
  let nc = Option.get (Forensics.observer fc) in
  match Forensics.divergence fa ~node_a:na fc ~node_b:nc with
  | Forensics.Diverged_entry { a_commit; b_commit; _ } ->
    checkb "divergent entries carry their commits" true
      (a_commit <> None && b_commit <> None)
  | Forensics.Identical { mode; _ } | Forensics.Prefix { mode; _ } ->
    checks "cross-rule compares logs" "log" mode
  | _ -> Alcotest.fail "cross-rule comparison must use the delivery logs"

let () =
  Alcotest.run "forensics"
    [ ( "certificates",
        [ Alcotest.test_case "jsonl round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "dagrider skip evidence" `Quick
            test_dagrider_skip_evidence;
          Alcotest.test_case "bullshark skip-then-recovery" `Quick
            test_bullshark_skip_recovery ] );
      ( "oracle",
        [ Alcotest.test_case "500+-wave dagrider certificates validate" `Slow
            test_certificates_validate_dagrider;
          Alcotest.test_case "500+-wave bullshark certificates validate" `Slow
            test_certificates_validate_bullshark;
          Alcotest.test_case "forged certificate rejected" `Quick
            test_oracle_rejects_forgery ] );
      ( "divergence",
        [ Alcotest.test_case "sabotage seed 293 pinpointed" `Slow
            test_divergence_sabotage_seed;
          Alcotest.test_case "identical and cross-rule modes" `Quick
            test_divergence_identical_and_cross_rule ] ) ]
