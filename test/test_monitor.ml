(* Tests for the time-series flight recorder: ring/rate/percentile/
   stall-gap arithmetic driven by hand, SLO transitions emitting typed
   Health trace events (and surviving the JSONL round-trip), the
   monitor-attached-runs-are-byte-identical guarantee (same proof style
   as trace and prof), a sustained-load run producing the acceptance
   series, an injected partition flipping the stall check, the mempool
   gauges in Runner.metrics_snapshot, and the Latency determinism fix
   (reports independent of hashtable insertion order). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---- windowed arithmetic, driven by hand ---- *)

let test_series_rate_slope () =
  let m = Monitor.create ~capacity:16 ~interval:1.0 ~window:4.0 () in
  let counter = ref 0.0 and gauge = ref 0.0 in
  Monitor.add_probe m ~name:"c" ~kind:Monitor.Counter (fun () -> !counter);
  Monitor.add_probe m ~name:"g" ~kind:Monitor.Gauge (fun () -> !gauge);
  Monitor.sample m ~now:1.0;
  checkf "rate needs two ticks" 0.0 (Monitor.rate m "c");
  for i = 2 to 6 do
    counter := float_of_int (10 * i);
    gauge := float_of_int i;
    Monitor.sample m ~now:(float_of_int i)
  done;
  checki "samples" 6 (Monitor.samples m);
  checkf "current counter" 60.0 (Monitor.current m "c");
  (* at now=6 with window 4 the reference tick is t=2 (v=20):
     (60-20)/(6-2) = 10 per unit *)
  checkf "windowed rate" 10.0 (Monitor.rate m "c");
  checkf "derived rate series" 10.0 (Monitor.current m "c/rate");
  checkf "gauge slope" 1.0 (Monitor.slope m "g");
  checkf "unknown series" 0.0 (Monitor.current m "nope")

let test_ring_wrap () =
  let m = Monitor.create ~capacity:4 ~interval:1.0 ~window:2.0 () in
  let v = ref 0.0 in
  Monitor.add_probe m ~name:"v" ~kind:Monitor.Gauge (fun () -> !v);
  for i = 1 to 10 do
    v := float_of_int i;
    Monitor.sample m ~now:(float_of_int i)
  done;
  checki "retained capped" 4 (Monitor.samples m);
  checki "total keeps counting" 10 (Monitor.total_samples m);
  checkf "newest survives wrap" 10.0 (Monitor.current m "v");
  (* CSV shows exactly the retained window *)
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Monitor.to_csv m))
  in
  checki "csv rows = header + retained" 5 (List.length lines);
  checkb "csv header" true
    (String.length (List.hd lines) >= 5
    && String.sub (List.hd lines) 0 5 = "time,")

let test_stall_gap () =
  let m = Monitor.create ~interval:1.0 ~window:4.0 () in
  let v = ref 1.0 in
  Monitor.add_probe m ~name:"c" ~kind:Monitor.Counter (fun () -> !v);
  (* increases at t=1 (first tick baseline), stays flat through t=5,
     increases at t=6, flat to t=8: biggest gap is 1 -> 6 *)
  for i = 1 to 8 do
    if i = 6 then v := 2.0;
    Monitor.sample m ~now:(float_of_int i)
  done;
  checkf "max gap between increases" 5.0 (Monitor.stall_gap m "c");
  (* tail gap: flat-forever series keeps growing the open gap *)
  let m2 = Monitor.create ~interval:1.0 ~window:4.0 () in
  let w = ref 1.0 in
  Monitor.add_probe m2 ~name:"c" ~kind:Monitor.Counter (fun () -> !w);
  for i = 1 to 9 do
    Monitor.sample m2 ~now:(float_of_int i)
  done;
  checkf "open tail gap" 8.0 (Monitor.stall_gap m2 "c")

let test_latency_window () =
  let m = Monitor.create ~interval:1.0 ~window:5.0 () in
  checkf "empty window" 0.0 (Monitor.latency_percentile m 99.0);
  Monitor.observe_latency m ~now:1.0 10.0;
  Monitor.observe_latency m ~now:2.0 20.0;
  Monitor.sample m ~now:2.0;
  checkb "p99 sees both" true (Monitor.latency_percentile m 99.0 >= 19.0);
  (* slide the window far past both observations *)
  Monitor.sample m ~now:10.0;
  checkf "old observations evicted" 0.0 (Monitor.latency_percentile m 99.0);
  checkf "p99 series recorded" 0.0 (Monitor.current m "latency.p99")

let test_probe_registration_guard () =
  let m = Monitor.create () in
  Monitor.add_probe m ~name:"a" ~kind:Monitor.Gauge (fun () -> 0.0);
  checkb "duplicate rejected" true
    (try
       Monitor.add_probe m ~name:"a" ~kind:Monitor.Gauge (fun () -> 0.0);
       false
     with Invalid_argument _ -> true);
  Monitor.sample m ~now:1.0;
  checkb "late registration rejected" true
    (try
       Monitor.add_probe m ~name:"b" ~kind:Monitor.Gauge (fun () -> 0.0);
       false
     with Invalid_argument _ -> true)

(* ---- SLO transitions and Health trace events ---- *)

let health_events tr =
  List.filter_map
    (fun e ->
      match e.Trace.kind with
      | Trace.Health { check; ok; _ } -> Some (check, ok)
      | _ -> None)
    (Trace.events tr)

let test_slo_transitions_emit_health () =
  let m = Monitor.create ~interval:1.0 ~window:5.0 () in
  let c = ref 0.0 in
  Monitor.add_probe m ~name:"c" ~kind:Monitor.Counter (fun () -> !c);
  Monitor.add_slo m
    (Monitor.Min_rate { series = "c"; min_per_unit = 0.5; after = 2.0 });
  let tr = Trace.create () in
  Monitor.set_trace m tr;
  for i = 1 to 5 do
    c := float_of_int i;
    Monitor.sample m ~now:(float_of_int i)
  done;
  checkb "healthy while flowing" true (Monitor.healthy m);
  checkb "no transition yet" true (health_events tr = []);
  (* counter stalls: the windowed rate decays to zero *)
  for i = 6 to 12 do
    Monitor.sample m ~now:(float_of_int i)
  done;
  checkb "failing during stall" false (Monitor.healthy m);
  checkb "failure latched" true (Monitor.ever_unhealthy m);
  checkb "verdict names the check" true
    (let v = Monitor.verdict m in
     String.length v >= 7 && String.sub v 0 7 = "FAILING");
  (* traffic resumes: the check recovers, the latch does not *)
  for i = 13 to 22 do
    c := !c +. 1.0;
    Monitor.sample m ~now:(float_of_int i)
  done;
  checkb "recovered" true (Monitor.healthy m);
  checkb "still latched" true (Monitor.ever_unhealthy m);
  Alcotest.(check (list (pair string bool)))
    "exactly the two transitions, in order"
    [ ("min-rate(c)", false); ("min-rate(c)", true) ]
    (health_events tr);
  (* the typed event survives the JSONL round-trip *)
  match Trace.events_of_jsonl (Trace.to_jsonl tr) with
  | Error e -> Alcotest.fail e
  | Ok events ->
    Alcotest.(check (list (pair string bool)))
      "JSONL round-trip" [ ("min-rate(c)", false); ("min-rate(c)", true) ]
      (List.filter_map
         (fun e ->
           match e.Trace.kind with
           | Trace.Health { check; ok; _ } -> Some (check, ok)
           | _ -> None)
         events)

let test_warmup_grace () =
  let m = Monitor.create ~interval:1.0 ~window:5.0 () in
  Monitor.add_probe m ~name:"c" ~kind:Monitor.Counter (fun () -> 0.0);
  Monitor.add_slo m
    (Monitor.Min_rate { series = "c"; min_per_unit = 1.0; after = 100.0 });
  for i = 1 to 20 do
    Monitor.sample m ~now:(float_of_int i)
  done;
  checkb "inside grace everything is ok" true (Monitor.healthy m);
  checkb "no latch inside grace" false (Monitor.ever_unhealthy m)

(* ---- byte-identical delivery logs with a monitor attached ---- *)

let workload_refs ~monitored =
  let mon = if monitored then Some (Monitor.create ()) else None in
  let opts =
    { (Harness.Runner.default_options ~n:4) with
      workload = Some Harness.Runner.default_workload;
      monitor = mon }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:40.0;
  Harness.Runner.delivered_refs h

let test_monitor_byte_identical () =
  let plain = workload_refs ~monitored:false in
  let monitored = workload_refs ~monitored:true in
  checkb "delivery logs byte-identical with monitor attached" true
    (plain = monitored);
  (* same guarantee without a workload: probes only read state *)
  let bare monitored =
    let mon = if monitored then Some (Monitor.create ()) else None in
    let opts = { (Harness.Runner.default_options ~n:4) with monitor = mon } in
    let h = Harness.Runner.build opts in
    Harness.Runner.run h ~until:40.0;
    Harness.Runner.delivered_refs h
  in
  checkb "synthetic-block runs too" true (bare false = bare true)

let test_workload_replays () =
  checkb "workload-driven runs are seed-deterministic" true
    (workload_refs ~monitored:false = workload_refs ~monitored:false)

(* ---- sustained load: the acceptance series ---- *)

let sustained =
  lazy
    (let mon = Monitor.create () in
     Monitor.add_slo mon
       (Monitor.Min_rate
          { series = "tx.ordered"; min_per_unit = 1.0; after = 20.0 });
     Monitor.add_slo mon
       (Monitor.Max_stall { series = "commits"; max_gap = 30.0 });
     let opts =
       { (Harness.Runner.default_options ~n:4) with
         workload = Some Harness.Runner.default_workload;
         monitor = Some mon }
     in
     let h = Harness.Runner.build opts in
     Harness.Runner.run h ~until:60.0;
     (h, mon))

let test_sustained_load_series () =
  let _, mon = Lazy.force sustained in
  checkb ">= 50 sample points" true (Monitor.total_samples mon >= 50);
  let names = Monitor.series_names mon in
  List.iter
    (fun s -> checkb ("series " ^ s) true (List.mem s names))
    [ "node.delivered"; "commits"; "commits/rate"; "dag.vertices"; "net.bits";
      "net.messages"; "engine.events"; "gc.heap_words"; "tx.submitted";
      "tx.ordered"; "tx.ordered/rate"; "mempool.pending"; "mempool.in_flight";
      "mempool.rejected"; "latency.p50"; "latency.p99" ];
  checkb "transactions ordered" true (Monitor.current mon "tx.ordered" > 0.0);
  checkb "commit rate positive" true (Monitor.rate mon "commits" > 0.0);
  checkb "sliding p99 positive" true (Monitor.current mon "latency.p99" > 0.0);
  checkb "DAG grows" true (Monitor.current mon "dag.vertices" > 20.0);
  checkb "DAG growth slope positive (no GC)" true
    (Monitor.slope mon "dag.vertices" > 0.0);
  checkb "healthy under sustained load" true (not (Monitor.ever_unhealthy mon))

let test_sustained_load_exports () =
  let _, mon = Lazy.force sustained in
  let csv = Monitor.to_csv mon in
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' csv) in
  checki "csv rows = header + samples" (Monitor.samples mon + 1)
    (List.length lines);
  let cols = List.length (String.split_on_char ',' (List.hd lines)) in
  checki "csv columns = time + series" (1 + List.length (Monitor.series_names mon)) cols;
  List.iter
    (fun line -> checki "aligned row" cols (List.length (String.split_on_char ',' line)))
    lines;
  (* the JSON export round-trips through the parser and carries the
     acceptance series *)
  match Stdx.Json.of_string (Stdx.Json.to_string (Monitor.to_json mon)) with
  | Error e -> Alcotest.fail e
  | Ok j ->
    let member name = Stdx.Json.member name j in
    checkb "samples field" true
      (Stdx.Json.to_int_opt (Option.get (member "samples"))
      = Some (Monitor.total_samples mon));
    let series = Option.get (member "series") in
    List.iter
      (fun s ->
        match Stdx.Json.member s series with
        | Some sj ->
          let points =
            Option.get (Stdx.Json.to_list_opt (Option.get (Stdx.Json.member "points" sj)))
          in
          checki ("points for " ^ s) (Monitor.samples mon) (List.length points)
        | None -> Alcotest.fail ("missing series " ^ s))
      [ "tx.ordered/rate"; "commits/rate"; "latency.p99"; "dag.vertices" ];
    checkb "verdict field" true (member "verdict" <> None);
    checkb "healthy field" true
      (Stdx.Json.to_bool_opt (Option.get (member "healthy")) = Some true)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

let test_dashboard_renders () =
  let _, mon = Lazy.force sustained in
  let dash = Monitor.render mon in
  List.iter
    (fun needle ->
      checkb ("dashboard mentions " ^ needle) true (contains dash needle))
    [ "tx.ordered"; "latency"; "verdict:"; "dag.vertices" ]

(* ---- injected stall flips the health check ---- *)

let test_stall_flips_health () =
  let stall_run ~stalled =
    let mon = Monitor.create () in
    Monitor.add_slo mon
      (Monitor.Max_stall { series = "commits"; max_gap = 30.0 });
    let tr = Trace.create () in
    let schedule =
      if not stalled then Harness.Runner.Uniform_random
      else
        Harness.Runner.Custom
          (fun rng ->
            let inner = Net.Sched.uniform_random ~rng in
            let during =
              Net.Sched.partition ~inner ~left:(fun i -> i < 2) ~factor:200.0
            in
            Net.Sched.with_window ~inner ~from_time:20.0 ~until_time:60.0
              ~during)
    in
    let opts =
      { (Harness.Runner.default_options ~n:4) with
        schedule;
        trace = Some tr;
        workload = Some Harness.Runner.default_workload;
        monitor = Some mon }
    in
    let h = Harness.Runner.build opts in
    Harness.Runner.run h ~until:80.0;
    (mon, tr)
  in
  let mon, tr = stall_run ~stalled:true in
  checkb "partition trips the stall check" true (Monitor.ever_unhealthy mon);
  checkb "trace carries the failing transition" true
    (List.mem ("max-stall(commits)", false) (health_events tr));
  let control, _ = stall_run ~stalled:false in
  checkb "control run stays healthy" true (not (Monitor.ever_unhealthy control))

(* ---- mempool gauges in the runner snapshot ---- *)

let test_snapshot_mempool_gauges () =
  let h, _ = Lazy.force sustained in
  let snap = Harness.Runner.metrics_snapshot h in
  let gauge name = List.assoc_opt name snap.Metrics.Registry.gauges in
  List.iter
    (fun name -> checkb ("gauge " ^ name) true (gauge name <> None))
    [ "mempool.pending"; "mempool.in_flight"; "mempool.submitted";
      "mempool.retired"; "mempool.rejected" ];
  checkb "submitted counts the fleet's traffic" true
    (match gauge "mempool.submitted" with Some v -> v > 0.0 | None -> false);
  checkb "retired counts ordered transactions" true
    (match gauge "mempool.retired" with Some v -> v > 0.0 | None -> false);
  (* a workload-free run exports none of them *)
  let bare = Harness.Runner.build (Harness.Runner.default_options ~n:4) in
  Harness.Runner.run bare ~until:10.0;
  let snap = Harness.Runner.metrics_snapshot bare in
  checkb "no mempool gauges without a workload" true
    (List.for_all
       (fun (k, _) ->
         not (String.length k >= 8 && String.sub k 0 8 = "mempool."))
       snap.Metrics.Registry.gauges)

(* ---- Latency reports are insertion-order independent ---- *)

let test_latency_determinism () =
  let records =
    [ ("blk-c", 1.0, [ (0, 5.0); (1, 6.0) ]);
      ("blk-a", 2.0, [ (1, 4.0) ]);
      ("blk-undelivered-2", 3.0, []);
      ("blk-b", 0.5, [ (0, 9.0); (2, 3.5) ]);
      ("blk-undelivered-1", 4.0, []) ]
  in
  let load order =
    let t = Metrics.Latency.create () in
    List.iter
      (fun (key, at, deliveries) ->
        Metrics.Latency.proposed t key ~now:at;
        List.iter
          (fun (p, d) -> Metrics.Latency.delivered t key ~process:p ~now:d)
          deliveries)
      order;
    t
  in
  let forward = load records and reverse = load (List.rev records) in
  Alcotest.(check (list (float 1e-9)))
    "first-delivery latencies sorted and order-independent"
    (Metrics.Latency.all_first_delivery_latencies forward)
    (Metrics.Latency.all_first_delivery_latencies reverse);
  Alcotest.(check (list (float 1e-9)))
    "per-process latencies sorted and order-independent"
    (Metrics.Latency.all_per_process_latencies forward)
    (Metrics.Latency.all_per_process_latencies reverse);
  Alcotest.(check (list string))
    "undelivered sorted by key"
    [ "blk-undelivered-1"; "blk-undelivered-2" ]
    (Metrics.Latency.undelivered forward);
  Alcotest.(check (list string))
    "undelivered order-independent"
    (Metrics.Latency.undelivered forward)
    (Metrics.Latency.undelivered reverse);
  checkb "ascending" true
    (let l = Metrics.Latency.all_first_delivery_latencies forward in
     List.sort compare l = l);
  Alcotest.(check (option (float 1e-9)))
    "proposed_at recalls the proposal time" (Some 0.5)
    (Metrics.Latency.proposed_at forward "blk-b");
  Alcotest.(check (option (float 1e-9)))
    "proposed_at on unknown key" None
    (Metrics.Latency.proposed_at forward "nope")

let () =
  Alcotest.run "monitor"
    [ ( "windowed-views",
        [ Alcotest.test_case "series, rates, slopes" `Quick
            test_series_rate_slope;
          Alcotest.test_case "ring wrap" `Quick test_ring_wrap;
          Alcotest.test_case "stall gap" `Quick test_stall_gap;
          Alcotest.test_case "latency sliding window" `Quick
            test_latency_window;
          Alcotest.test_case "probe registration guard" `Quick
            test_probe_registration_guard ] );
      ( "health",
        [ Alcotest.test_case "SLO transitions emit Health events" `Quick
            test_slo_transitions_emit_health;
          Alcotest.test_case "warmup grace" `Quick test_warmup_grace ] );
      ( "zero-cost",
        [ Alcotest.test_case "byte-identical delivery logs" `Quick
            test_monitor_byte_identical;
          Alcotest.test_case "workload runs replay" `Quick
            test_workload_replays ] );
      ( "sustained-load",
        [ Alcotest.test_case "acceptance series present" `Quick
            test_sustained_load_series;
          Alcotest.test_case "CSV/JSON exports well-formed" `Quick
            test_sustained_load_exports;
          Alcotest.test_case "dashboard renders" `Quick
            test_dashboard_renders;
          Alcotest.test_case "partition stall flips health" `Quick
            test_stall_flips_health ] );
      ( "runner-export",
        [ Alcotest.test_case "mempool gauges in snapshot" `Quick
            test_snapshot_mempool_gauges ] );
      ( "latency-determinism",
        [ Alcotest.test_case "reports independent of insertion order" `Quick
            test_latency_determinism ] );
    ]
