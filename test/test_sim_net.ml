(* Tests for the discrete-event engine, scheduling policies, and the
   reliable point-to-point network layer. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---- Engine ---- *)

let test_engine_time_order () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  Sim.Engine.schedule e ~delay:3.0 (fun () -> log := 3 :: !log);
  Sim.Engine.schedule e ~delay:1.0 (fun () -> log := 1 :: !log);
  Sim.Engine.schedule e ~delay:2.0 (fun () -> log := 2 :: !log);
  ignore (Sim.Engine.run e ());
  Alcotest.(check (list int)) "time order" [ 1; 2; 3 ] (List.rev !log)

let test_engine_fifo_at_same_time () =
  let e = Sim.Engine.create () in
  let log = ref [] in
  for i = 1 to 20 do
    Sim.Engine.schedule e ~delay:1.0 (fun () -> log := i :: !log)
  done;
  ignore (Sim.Engine.run e ());
  Alcotest.(check (list int)) "fifo ties" (List.init 20 (fun i -> i + 1))
    (List.rev !log)

let test_engine_clock_advances () =
  let e = Sim.Engine.create () in
  let seen = ref [] in
  Sim.Engine.schedule e ~delay:2.5 (fun () -> seen := Sim.Engine.now e :: !seen);
  Sim.Engine.schedule e ~delay:0.5 (fun () -> seen := Sim.Engine.now e :: !seen);
  ignore (Sim.Engine.run e ());
  Alcotest.(check (list (float 1e-9))) "timestamps" [ 0.5; 2.5 ] (List.rev !seen)

let test_engine_nested_scheduling () =
  let e = Sim.Engine.create () in
  let fired = ref 0.0 in
  Sim.Engine.schedule e ~delay:1.0 (fun () ->
      Sim.Engine.schedule e ~delay:1.5 (fun () -> fired := Sim.Engine.now e));
  ignore (Sim.Engine.run e ());
  checkf "relative to parent event" 2.5 !fired

let test_engine_until () =
  let e = Sim.Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> incr count)
  done;
  ignore (Sim.Engine.run e ~until:5.5 ());
  checki "only first five" 5 !count;
  checkf "clock clamped to until" 5.5 (Sim.Engine.now e);
  ignore (Sim.Engine.run e ());
  checki "rest runs later" 10 !count

let test_engine_max_events () =
  let e = Sim.Engine.create () in
  for i = 1 to 10 do
    Sim.Engine.schedule e ~delay:(float_of_int i) (fun () -> ())
  done;
  checki "max_events respected" 3 (Sim.Engine.run e ~max_events:3 ());
  checki "pending updated" 7 (Sim.Engine.pending e)

let test_engine_step () =
  let e = Sim.Engine.create () in
  checkb "step on empty" false (Sim.Engine.step e);
  Sim.Engine.schedule e ~delay:1.0 (fun () -> ());
  checkb "step executes" true (Sim.Engine.step e);
  checki "executed counter" 1 (Sim.Engine.events_executed e)

let test_engine_negative_delay_rejected () =
  let e = Sim.Engine.create () in
  Alcotest.check_raises "negative"
    (Invalid_argument "Engine.schedule: negative delay") (fun () ->
      Sim.Engine.schedule e ~delay:(-1.0) (fun () -> ()))

let test_engine_schedule_at_past_clamped () =
  let e = Sim.Engine.create () in
  Sim.Engine.schedule e ~delay:5.0 (fun () ->
      (* scheduling in the past runs "now", not backwards *)
      Sim.Engine.schedule_at e ~time:1.0 (fun () ->
          checkf "clamped to now" 5.0 (Sim.Engine.now e)));
  ignore (Sim.Engine.run e ())

(* ---- Sched policies ---- *)

let test_sched_synchronous () =
  let s = Net.Sched.synchronous () in
  let d = s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"x" in
  checkf "always 1.0" 1.0 d.Net.Sched.delay

let test_sched_uniform_in_unit () =
  let s = Net.Sched.uniform_random ~rng:(Stdx.Rng.create 1) in
  for _ = 1 to 500 do
    let d = s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"x" in
    checkb "in (0,1]" true (d.Net.Sched.delay > 0.0 && d.Net.Sched.delay <= 1.0)
  done

let test_sched_skewed_in_unit () =
  let s = Net.Sched.skewed_random ~rng:(Stdx.Rng.create 2) in
  for _ = 1 to 500 do
    let d = s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"x" in
    checkb "in (0,1]" true (d.Net.Sched.delay > 0.0 && d.Net.Sched.delay <= 1.0)
  done

let test_sched_delay_process () =
  let inner = Net.Sched.synchronous () in
  let s = Net.Sched.delay_process ~inner ~victim:2 ~factor:10.0 in
  let v = s.Net.Sched.decide ~now:0.0 ~src:2 ~dst:0 ~kind:"x" in
  let o = s.Net.Sched.decide ~now:0.0 ~src:1 ~dst:0 ~kind:"x" in
  checkf "victim stretched" 10.0 v.Net.Sched.delay;
  checkf "others normal" 1.0 o.Net.Sched.delay

let test_sched_delay_matching () =
  let inner = Net.Sched.synchronous () in
  let s =
    Net.Sched.delay_matching ~inner
      ~pred:(fun ~src:_ ~dst ~kind -> dst = 3 && kind = "coin")
      ~factor:5.0
  in
  checkf "matched" 5.0
    (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:3 ~kind:"coin").Net.Sched.delay;
  checkf "unmatched kind" 1.0
    (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:3 ~kind:"x").Net.Sched.delay

let test_sched_partition () =
  let inner = Net.Sched.synchronous () in
  let s = Net.Sched.partition ~inner ~left:(fun i -> i < 2) ~factor:20.0 in
  checkf "crossing left->right" 20.0
    (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:3 ~kind:"x").Net.Sched.delay;
  checkf "crossing right->left" 20.0
    (s.Net.Sched.decide ~now:0.0 ~src:3 ~dst:0 ~kind:"x").Net.Sched.delay;
  checkf "within left" 1.0
    (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay;
  checkf "within right" 1.0
    (s.Net.Sched.decide ~now:0.0 ~src:2 ~dst:3 ~kind:"x").Net.Sched.delay

let test_sched_kind_storm () =
  let inner = Net.Sched.synchronous () in
  let s =
    Net.Sched.kind_storm ~inner ~kinds:[ "coin-"; "bracha-ready" ] ~factor:6.0
  in
  checkf "prefix matched" 6.0
    (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"coin-share").Net.Sched.delay;
  checkf "exact kind matched" 6.0
    (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"bracha-ready").Net.Sched.delay;
  checkf "other kinds normal" 1.0
    (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"bracha-echo").Net.Sched.delay

let test_sched_partition_window () =
  (* the sabotage scenarios build temporary partitions exactly like
     this: partition inside with_window, identity outside *)
  let inner = Net.Sched.synchronous () in
  let during = Net.Sched.partition ~inner ~left:(fun i -> i = 0) ~factor:9.0 in
  let s = Net.Sched.with_window ~inner ~from_time:10.0 ~until_time:20.0 ~during in
  checkf "before window" 1.0
    (s.Net.Sched.decide ~now:5.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay;
  checkf "inside window" 9.0
    (s.Net.Sched.decide ~now:15.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay;
  checkf "after window" 1.0
    (s.Net.Sched.decide ~now:25.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay

let test_sched_rush () =
  let inner = Net.Sched.synchronous () in
  let s = Net.Sched.rush_process ~inner ~favored:1 in
  checkb "favored fast" true
    ((s.Net.Sched.decide ~now:0.0 ~src:1 ~dst:0 ~kind:"x").Net.Sched.delay < 0.01)

let test_sched_window () =
  let inner = Net.Sched.synchronous () in
  let during = Net.Sched.delay_process ~inner ~victim:0 ~factor:100.0 in
  let s = Net.Sched.with_window ~inner ~from_time:10.0 ~until_time:20.0 ~during in
  checkf "before window" 1.0
    (s.Net.Sched.decide ~now:5.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay;
  checkf "inside window" 100.0
    (s.Net.Sched.decide ~now:15.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay;
  checkf "after window" 1.0
    (s.Net.Sched.decide ~now:25.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay

let test_sched_bimodal () =
  let s = Net.Sched.bimodal ~rng:(Stdx.Rng.create 4) () in
  let slow = ref 0 and total = 2000 in
  for _ = 1 to total do
    let d = (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay in
    checkb "positive" true (d > 0.0);
    if d > 1.0 then incr slow
  done;
  (* ~25% of draws should exceed the base unit interval *)
  checkb
    (Printf.sprintf "slow fraction ~25%% (%d/%d)" !slow total)
    true
    (!slow > total / 8 && !slow < total / 2)

let test_sched_heavy_tailed () =
  let s = Net.Sched.heavy_tailed ~rng:(Stdx.Rng.create 5) in
  let sum = ref 0.0 and above3 = ref 0 in
  for _ = 1 to 2000 do
    let d = (s.Net.Sched.decide ~now:0.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay in
    checkb "positive" true (d > 0.0);
    sum := !sum +. d;
    if d > 3.0 then incr above3
  done;
  let mean = !sum /. 2000.0 in
  checkb (Printf.sprintf "mean ~1 (%.2f)" mean) true (mean > 0.85 && mean < 1.15);
  (* exp(1): P(X > 3) ~ 5% — the tail actually exists *)
  checkb "tail present" true (!above3 > 40)

let test_sched_mobile_sluggish () =
  let inner = Net.Sched.synchronous () in
  let s =
    Net.Sched.mobile_sluggish ~inner ~n:4 ~f:1 ~period:10.0 ~factor:7.0
  in
  (* epoch 0: slowed set = {0} *)
  checkf "p0 slowed in epoch 0" 7.0
    (s.Net.Sched.decide ~now:1.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay;
  checkf "p1 fast in epoch 0" 1.0
    (s.Net.Sched.decide ~now:1.0 ~src:1 ~dst:0 ~kind:"x").Net.Sched.delay;
  (* epoch 1 (t in [10, 20)): slowed set rotates to {1} *)
  checkf "p0 recovered in epoch 1" 1.0
    (s.Net.Sched.decide ~now:11.0 ~src:0 ~dst:1 ~kind:"x").Net.Sched.delay;
  checkf "p1 slowed in epoch 1" 7.0
    (s.Net.Sched.decide ~now:11.0 ~src:1 ~dst:0 ~kind:"x").Net.Sched.delay;
  (* every process is slowed in some epoch and fast in another:
     liveness-preserving by construction *)
  for p = 0 to 3 do
    let slowed_somewhere = ref false and fast_somewhere = ref false in
    for e = 0 to 7 do
      let d =
        (s.Net.Sched.decide ~now:(float_of_int (e * 10) +. 1.0) ~src:p ~dst:0
           ~kind:"x").Net.Sched.delay
      in
      if d > 1.0 then slowed_somewhere := true else fast_somewhere := true
    done;
    checkb (Printf.sprintf "p%d rotates" p) true
      (!slowed_somewhere && !fast_somewhere)
  done

(* ---- Network ---- *)

let make_net ?(n = 4) () =
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let net =
    Net.Network.create ~engine ~sched:(Net.Sched.synchronous ()) ~counters ~n
  in
  (engine, counters, net)

let test_net_unicast_delivery () =
  let engine, _, net = make_net () in
  let got = ref None in
  Net.Network.register net 1 (fun ~src msg -> got := Some (src, msg));
  Net.Network.send net ~src:0 ~dst:1 ~kind:"k" ~bits:8 "hello";
  checkb "not delivered synchronously" true (!got = None);
  ignore (Sim.Engine.run engine ());
  Alcotest.(check (option (pair int string))) "delivered with source"
    (Some (0, "hello")) !got

let test_net_broadcast_reaches_all_including_self () =
  let engine, _, net = make_net () in
  let hits = Array.make 4 0 in
  for i = 0 to 3 do
    Net.Network.register net i (fun ~src:_ _ -> hits.(i) <- hits.(i) + 1)
  done;
  Net.Network.broadcast net ~src:2 ~kind:"k" ~bits:8 "m";
  ignore (Sim.Engine.run engine ());
  Alcotest.(check (array int)) "one delivery each" [| 1; 1; 1; 1 |] hits

let test_net_accounting () =
  let engine, counters, net = make_net () in
  Net.Network.register net 0 (fun ~src:_ _ -> ());
  Net.Network.broadcast net ~src:0 ~kind:"a" ~bits:100 "m";
  Net.Network.send net ~src:1 ~dst:0 ~kind:"b" ~bits:7 "m";
  ignore (Sim.Engine.run engine ());
  checki "total bits" 407 (Metrics.Counters.total_bits counters);
  checki "messages" 5 (Metrics.Counters.total_messages counters);
  checki "bits from p0" 400
    (Metrics.Counters.total_bits_from counters ~senders:(fun i -> i = 0));
  Alcotest.(check (list (pair string int)))
    "by kind"
    [ ("a", 400); ("b", 7) ]
    (Metrics.Counters.bits_by_kind counters)

let test_net_corrupt_drops_in_flight () =
  let engine, _, net = make_net () in
  let got = ref 0 in
  Net.Network.register net 1 (fun ~src:_ _ -> incr got);
  Net.Network.send net ~src:0 ~dst:1 ~kind:"k" ~bits:8 "m1";
  (* corrupt p0 before the message lands: the adaptive adversary may
     drop its undelivered traffic *)
  Net.Network.corrupt net 0;
  ignore (Sim.Engine.run engine ());
  checki "in-flight dropped" 0 !got

let test_net_corrupt_without_drop () =
  let engine, _, net = make_net () in
  let got = ref 0 in
  Net.Network.register net 1 (fun ~src:_ _ -> incr got);
  Net.Network.send net ~src:0 ~dst:1 ~kind:"k" ~bits:8 "m1";
  Net.Network.corrupt net ~drop_in_flight:false 0;
  ignore (Sim.Engine.run engine ());
  checki "in-flight kept" 1 !got

let test_net_corrupted_can_still_send_after () =
  (* corruption marks the process Byzantine; the adversary controls it,
     and it can keep sending (it is not crashed) *)
  let engine, _, net = make_net () in
  let got = ref 0 in
  Net.Network.register net 1 (fun ~src:_ _ -> incr got);
  Net.Network.corrupt net 0;
  Net.Network.send net ~src:0 ~dst:1 ~kind:"k" ~bits:8 "m2";
  ignore (Sim.Engine.run engine ());
  checki "post-corruption sends deliver" 1 !got;
  checkb "flagged" true (Net.Network.is_corrupted net 0);
  checkb "correct predicate" false (Net.Network.correct net 0)

let test_net_unregister_drops_then_register_revives () =
  let engine, _, net = make_net () in
  let got = ref 0 in
  Net.Network.register net 1 (fun ~src:_ _ -> incr got);
  Net.Network.send net ~src:0 ~dst:1 ~kind:"k" ~bits:8 "m1";
  ignore (Sim.Engine.run engine ());
  checki "delivered while registered" 1 !got;
  Net.Network.unregister net 1;
  Net.Network.send net ~src:0 ~dst:1 ~kind:"k" ~bits:8 "m2";
  ignore (Sim.Engine.run engine ());
  checki "dropped while crashed" 1 !got;
  Net.Network.register net 1 (fun ~src:_ _ -> incr got);
  Net.Network.send net ~src:0 ~dst:1 ~kind:"k" ~bits:8 "m3";
  ignore (Sim.Engine.run engine ());
  checki "revived by register" 2 !got;
  Alcotest.check_raises "bad index rejected"
    (Invalid_argument "Network: bad process index in unregister") (fun () ->
      Net.Network.unregister net 9)

let test_net_unregistered_destination_is_noop () =
  let engine, _, net = make_net () in
  Net.Network.send net ~src:0 ~dst:3 ~kind:"k" ~bits:8 "m";
  ignore (Sim.Engine.run engine ());
  checki "no delivery recorded" 0 (Net.Network.delivered_count net)

let test_net_reliability_under_random_sched () =
  (* every message between correct processes arrives exactly once *)
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let net =
    Net.Network.create ~engine
      ~sched:(Net.Sched.uniform_random ~rng:(Stdx.Rng.create 3))
      ~counters ~n:5
  in
  let received = Array.make 5 0 in
  for i = 0 to 4 do
    Net.Network.register net i (fun ~src:_ _ -> received.(i) <- received.(i) + 1)
  done;
  for _ = 1 to 50 do
    Net.Network.broadcast net ~src:0 ~kind:"k" ~bits:8 "m"
  done;
  ignore (Sim.Engine.run engine ());
  Array.iteri (fun i c -> checki (Printf.sprintf "p%d" i) 50 c) received

let test_net_bad_index_rejected () =
  let _, _, net = make_net () in
  Alcotest.check_raises "bad dst"
    (Invalid_argument "Network: bad process index in send") (fun () ->
      Net.Network.send net ~src:0 ~dst:9 ~kind:"k" ~bits:8 "m")

(* ---- Latency metrics ---- *)

let test_latency_first_delivery () =
  let l = Metrics.Latency.create () in
  Metrics.Latency.proposed l "tx1" ~now:2.0;
  Alcotest.(check (option (float 1e-9)))
    "undelivered" None
    (Metrics.Latency.first_delivery_latency l "tx1");
  Metrics.Latency.delivered l "tx1" ~process:1 ~now:5.0;
  Metrics.Latency.delivered l "tx1" ~process:2 ~now:4.0;
  Alcotest.(check (option (float 1e-9)))
    "earliest wins" (Some 2.0)
    (Metrics.Latency.first_delivery_latency l "tx1");
  checki "two deliverers" 2 (Metrics.Latency.delivery_count l "tx1")

let test_latency_undelivered_audit () =
  let l = Metrics.Latency.create () in
  Metrics.Latency.proposed l "a" ~now:0.0;
  Metrics.Latency.proposed l "b" ~now:0.0;
  Metrics.Latency.delivered l "a" ~process:0 ~now:1.0;
  Alcotest.(check (list string)) "b missing" [ "b" ] (Metrics.Latency.undelivered l)

(* ---- Chain quality metric ---- *)

let test_chain_quality_all_correct () =
  let r =
    Metrics.Chain_quality.audit ~f:1
      ~correct:(fun _ -> true)
      ~sources:[ 0; 1; 2; 0; 1; 2 ]
  in
  checkb "holds" true r.Metrics.Chain_quality.holds;
  checki "correct entries" 6 r.Metrics.Chain_quality.correct_entries

let test_chain_quality_violation_detected () =
  (* f=1: quorum prefix 3 needs >= 2 correct; give it 1 *)
  let r =
    Metrics.Chain_quality.audit ~f:1
      ~correct:(fun i -> i = 0)
      ~sources:[ 3; 3; 0 ]
  in
  checkb "violated" false r.Metrics.Chain_quality.holds

let test_chain_quality_boundary () =
  (* exactly f+1 of 2f+1 per prefix: holds *)
  let r =
    Metrics.Chain_quality.audit ~f:1
      ~correct:(fun i -> i < 2)
      ~sources:[ 0; 1; 3; 1; 0; 3 ]
  in
  checkb "boundary holds" true r.Metrics.Chain_quality.holds;
  checkf "worst ratio" (2.0 /. 3.0) r.Metrics.Chain_quality.worst_prefix_ratio

let () =
  Alcotest.run "sim-net"
    [ ( "engine",
        [ Alcotest.test_case "time order" `Quick test_engine_time_order;
          Alcotest.test_case "fifo ties" `Quick test_engine_fifo_at_same_time;
          Alcotest.test_case "clock advances" `Quick test_engine_clock_advances;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "until" `Quick test_engine_until;
          Alcotest.test_case "max events" `Quick test_engine_max_events;
          Alcotest.test_case "step" `Quick test_engine_step;
          Alcotest.test_case "negative delay" `Quick test_engine_negative_delay_rejected;
          Alcotest.test_case "past clamped" `Quick test_engine_schedule_at_past_clamped ] );
      ( "sched",
        [ Alcotest.test_case "synchronous" `Quick test_sched_synchronous;
          Alcotest.test_case "uniform in unit" `Quick test_sched_uniform_in_unit;
          Alcotest.test_case "skewed in unit" `Quick test_sched_skewed_in_unit;
          Alcotest.test_case "delay process" `Quick test_sched_delay_process;
          Alcotest.test_case "delay matching" `Quick test_sched_delay_matching;
          Alcotest.test_case "partition" `Quick test_sched_partition;
          Alcotest.test_case "kind storm" `Quick test_sched_kind_storm;
          Alcotest.test_case "partition window" `Quick test_sched_partition_window;
          Alcotest.test_case "rush" `Quick test_sched_rush;
          Alcotest.test_case "window" `Quick test_sched_window;
          Alcotest.test_case "bimodal" `Quick test_sched_bimodal;
          Alcotest.test_case "heavy tailed" `Quick test_sched_heavy_tailed;
          Alcotest.test_case "mobile sluggish" `Quick test_sched_mobile_sluggish ] );
      ( "network",
        [ Alcotest.test_case "unicast" `Quick test_net_unicast_delivery;
          Alcotest.test_case "broadcast incl self" `Quick
            test_net_broadcast_reaches_all_including_self;
          Alcotest.test_case "accounting" `Quick test_net_accounting;
          Alcotest.test_case "corrupt drops in-flight" `Quick
            test_net_corrupt_drops_in_flight;
          Alcotest.test_case "corrupt without drop" `Quick test_net_corrupt_without_drop;
          Alcotest.test_case "unregister drops, register revives" `Quick
            test_net_unregister_drops_then_register_revives;
          Alcotest.test_case "corrupted still sends" `Quick
            test_net_corrupted_can_still_send_after;
          Alcotest.test_case "unregistered dst" `Quick
            test_net_unregistered_destination_is_noop;
          Alcotest.test_case "reliability random sched" `Quick
            test_net_reliability_under_random_sched;
          Alcotest.test_case "bad index" `Quick test_net_bad_index_rejected ] );
      ( "metrics",
        [ Alcotest.test_case "latency first delivery" `Quick test_latency_first_delivery;
          Alcotest.test_case "latency undelivered" `Quick test_latency_undelivered_audit;
          Alcotest.test_case "chain quality all correct" `Quick
            test_chain_quality_all_correct;
          Alcotest.test_case "chain quality violation" `Quick
            test_chain_quality_violation_detected;
          Alcotest.test_case "chain quality boundary" `Quick test_chain_quality_boundary ] )
    ]
