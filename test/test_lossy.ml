(* Tests for the lossy-link stack: fault-injection policies, the
   ack/retransmit reliable transport, wire-decoder fuzzing, and
   loss-aware harness runs with their diagnostics. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Faults policies ---- *)

let test_faults_none_is_clean () =
  let v =
    Net.Faults.none.Net.Faults.decide ~now:1.0 ~src:0 ~dst:1 ~kind:"x"
  in
  checkb "none is clean" true (v = Net.Faults.clean)

let test_faults_determinism () =
  let verdicts seed =
    let p =
      Net.Faults.lossy ~rng:(Stdx.Rng.create seed) ~drop:0.3 ~duplicate:0.2
        ~corrupt:0.1 ~reorder:0.4 ()
    in
    List.init 200 (fun i ->
        p.Net.Faults.decide ~now:(float_of_int i) ~src:(i mod 4)
          ~dst:((i + 1) mod 4) ~kind:"k")
  in
  checkb "same seed, same verdicts" true (verdicts 9 = verdicts 9);
  checkb "policy actually faults" true
    (List.exists (fun v -> v.Net.Faults.drop) (verdicts 9))

let test_faults_on_links () =
  let inner =
    Net.Faults.lossy ~rng:(Stdx.Rng.create 1) ~drop:1.0 ()
  in
  let p = Net.Faults.on_links ~pred:(fun ~src ~dst -> src = 2 && dst = 0) inner in
  let v_hit = p.Net.Faults.decide ~now:0.0 ~src:2 ~dst:0 ~kind:"k" in
  let v_miss = p.Net.Faults.decide ~now:0.0 ~src:0 ~dst:2 ~kind:"k" in
  checkb "matching link faulted" true v_hit.Net.Faults.drop;
  checkb "other links clean" true (v_miss = Net.Faults.clean)

let test_faults_window () =
  let inner = Net.Faults.lossy ~rng:(Stdx.Rng.create 1) ~drop:1.0 () in
  let p = Net.Faults.with_window ~from_time:10.0 ~until_time:20.0 inner in
  checkb "before window clean" true
    (p.Net.Faults.decide ~now:5.0 ~src:0 ~dst:1 ~kind:"k" = Net.Faults.clean);
  checkb "inside window lossy" true
    (p.Net.Faults.decide ~now:15.0 ~src:0 ~dst:1 ~kind:"k").Net.Faults.drop;
  checkb "after window clean" true
    (p.Net.Faults.decide ~now:25.0 ~src:0 ~dst:1 ~kind:"k" = Net.Faults.clean)

let test_faults_validation () =
  Alcotest.check_raises "probability out of range"
    (Invalid_argument "Faults.lossy: drop must be in [0,1]") (fun () ->
      ignore (Net.Faults.lossy ~rng:(Stdx.Rng.create 1) ~drop:1.5 ()));
  Alcotest.check_raises "negative spread"
    (Invalid_argument "Faults.lossy: reorder_spread must be non-negative")
    (fun () ->
      ignore
        (Net.Faults.lossy ~rng:(Stdx.Rng.create 1) ~reorder_spread:(-1.0) ()))

(* ---- Link transport ---- *)

(* a two-process frame network with a seeded lossy policy; messages are
   raw strings so tests see the transport alone *)
let make_link_pair ?(config = Net.Link.default_config) ?(drop = 0.0)
    ?(dup = 0.0) ?(corrupt = 0.0) ?(reorder = 0.0) ?trace ~seed () =
  let engine = Sim.Engine.create () in
  let rng = Stdx.Rng.create seed in
  let counters = Metrics.Counters.create () in
  let net =
    Net.Network.create ~engine ~sched:(Net.Sched.synchronous ()) ~counters ~n:2
  in
  Net.Network.set_faults net
    (Net.Faults.lossy ~rng:(Stdx.Rng.split rng) ~drop ~duplicate:dup ~corrupt
       ~reorder ());
  Net.Network.set_corrupter net
    (Net.Link.corrupt_frame ~rng:(Stdx.Rng.split rng));
  let attach me =
    Net.Link.attach ~net ~engine ~rng:(Stdx.Rng.split rng) ~config ?trace ~me
      ~encode:(fun s -> s)
      ~decode:(fun s -> Some s)
      ()
  in
  let a = attach 0 in
  let b = attach 1 in
  (engine, a, b)

let msgs k = List.init k (fun i -> Printf.sprintf "m%03d" (i + 1))

(* send [k] messages 0 -> 1, drain the engine, return arrivals in order *)
let pump ?config ?drop ?dup ?corrupt ?reorder ?trace ~seed k =
  let engine, a, b =
    make_link_pair ?config ?drop ?dup ?corrupt ?reorder ?trace ~seed ()
  in
  let got = ref [] in
  Net.Link.set_handler b (fun ~src m ->
      checki "true source" 0 src;
      got := m :: !got);
  List.iter (fun m -> Net.Link.send a ~dst:1 ~kind:"t" ~bits:64 m) (msgs k);
  ignore (Sim.Engine.run engine ());
  (List.rev !got, Net.Link.stats a, Net.Link.stats b)

let test_link_delivers_under_loss () =
  let got, sa, _ = pump ~drop:0.4 ~seed:7 60 in
  Alcotest.(check (list string))
    "every message exactly once" (msgs 60)
    (List.sort compare got);
  checkb "loss forced retransmissions" true (sa.Net.Link.retransmits > 0);
  checki "nothing abandoned" 0 sa.Net.Link.gave_up

let test_link_dedup_exactly_once () =
  let got, sa, sb = pump ~dup:0.6 ~seed:11 60 in
  Alcotest.(check (list string))
    "duplicates suppressed, every message exactly once" (msgs 60)
    (List.sort compare got);
  let st = Net.Link.add_stats sa sb in
  checkb "dedup window absorbed copies" true (st.Net.Link.dup_suppressed > 0)

let test_link_corrupt_recovery () =
  let got, sa, sb = pump ~corrupt:0.3 ~seed:13 60 in
  Alcotest.(check (list string))
    "corruption recovered by retransmission" (msgs 60)
    (List.sort compare got);
  let st = Net.Link.add_stats sa sb in
  checkb "checksums caught corruption" true (st.Net.Link.corrupt_rejected > 0);
  checkb "rejected frames were retransmitted" true
    (sa.Net.Link.retransmits > 0);
  checki "nothing abandoned" 0 sa.Net.Link.gave_up

let test_link_reorder_delivers_all () =
  let got, sa, _ = pump ~reorder:0.8 ~seed:17 40 in
  Alcotest.(check (list string))
    "reordering loses nothing" (msgs 40)
    (List.sort compare got);
  checkb "arrival order actually scrambled" true (got <> msgs 40);
  checki "reordering alone needs no retries" 0 sa.Net.Link.gave_up

let test_link_gives_up () =
  let config =
    { Net.Link.default_config with
      rto = 0.5;
      backoff = 1.2;
      max_rto = 1.0;
      max_attempts = 4 }
  in
  let trace = Trace.create () in
  let got, sa, _ = pump ~config ~drop:1.0 ~trace ~seed:3 1 in
  checki "nothing got through a fully dead link" 0 (List.length got);
  checki "the frame was abandoned" 1 sa.Net.Link.gave_up;
  checki "after exactly max_attempts retries" 4 sa.Net.Link.retransmits;
  let kinds = List.map (fun e -> e.Trace.kind) (Trace.events trace) in
  checkb "give-up traced" true
    (List.exists
       (function
         | Trace.Drop { reason = "give-up"; _ } -> true
         | _ -> false)
       kinds);
  checkb "retransmissions traced" true
    (List.exists
       (function Trace.Retransmit _ -> true | _ -> false)
       kinds)

let test_link_no_handler () =
  let trace = Trace.create () in
  let engine, a, b = make_link_pair ~trace ~seed:5 () in
  Net.Link.clear_handler b;
  Net.Link.send a ~dst:1 ~kind:"t" ~bits:64 "hello";
  ignore (Sim.Engine.run engine ());
  let sa = Net.Link.stats a in
  (* the transport keeps acking, so the sender never burns its budget *)
  checki "acked despite no listener" 0 sa.Net.Link.gave_up;
  checki "no retries needed" 0 sa.Net.Link.retransmits;
  checkb "drop traced as no-handler" true
    (List.exists
       (function
         | { Trace.kind = Trace.Drop { reason = "no-handler"; _ }; _ } -> true
         | _ -> false)
       (Trace.events trace))

let test_link_determinism () =
  let run () = pump ~drop:0.3 ~dup:0.2 ~corrupt:0.1 ~reorder:0.3 ~seed:23 50 in
  let got_a, stats_a, _ = run () in
  let got_b, stats_b, _ = run () in
  checkb "same seed, same arrival order" true (got_a = got_b);
  checkb "same seed, same stats" true (stats_a = stats_b)

let test_link_decode_failure_dropped () =
  let engine = Sim.Engine.create () in
  let rng = Stdx.Rng.create 29 in
  let counters = Metrics.Counters.create () in
  let net =
    Net.Network.create ~engine ~sched:(Net.Sched.synchronous ()) ~counters ~n:2
  in
  let trace = Trace.create () in
  let attach me decode =
    Net.Link.attach ~net ~engine ~rng:(Stdx.Rng.split rng) ~trace ~me
      ~encode:(fun s -> s)
      ~decode ()
  in
  let a = attach 0 (fun s -> Some s) in
  (* the receiver's protocol decoder rejects this payload: the frame is
     intact (acked, not retransmitted) but the delivery is dropped *)
  let b = attach 1 (fun _ -> None) in
  let got = ref 0 in
  Net.Link.set_handler b (fun ~src:_ _ -> incr got);
  Net.Link.send a ~dst:1 ~kind:"t" ~bits:64 "junk";
  ignore (Sim.Engine.run engine ());
  checki "nothing delivered" 0 !got;
  checki "decode failure counted" 1 (Net.Link.stats b).Net.Link.decode_failures;
  checki "but the frame was acked" 0 (Net.Link.stats a).Net.Link.gave_up;
  checkb "drop traced as decode" true
    (List.exists
       (function
         | { Trace.kind = Trace.Drop { reason = "decode"; _ }; _ } -> true
         | _ -> false)
       (Trace.events trace))

let test_frame_checksum () =
  let data = Net.Link.Data { seq = 3; kind = "k"; bytes = "payload"; sum = 0 } in
  let data =
    match data with
    | Net.Link.Data d -> Net.Link.Data { d with sum = Net.Link.frame_sum data }
    | f -> f
  in
  checkb "fixed-up data frame intact" true (Net.Link.frame_intact data);
  let ack = Net.Link.Ack { seq = 3; sum = 0 } in
  let ack =
    match ack with
    | Net.Link.Ack a -> Net.Link.Ack { a with sum = Net.Link.frame_sum ack }
    | f -> f
  in
  checkb "fixed-up ack frame intact" true (Net.Link.frame_intact ack);
  let rng = Stdx.Rng.create 31 in
  for _ = 1 to 50 do
    checkb "one flipped bit breaks the data checksum" false
      (Net.Link.frame_intact (Net.Link.corrupt_frame ~rng data));
    checkb "one flipped bit breaks the ack checksum" false
      (Net.Link.frame_intact (Net.Link.corrupt_frame ~rng ack))
  done

(* ---- wire-decoder fuzzing ---- *)

(* every decoder in the stack must be total: random bytes, truncations
   and bit-flips of valid encodings may decode to Some or None but must
   never raise — a malformed frame reaching a raising decoder would
   crash the receiving process *)
let decoders :
    (string * (string -> bool)) list =
  let total decode s = ignore (decode s : _ option); true in
  [ ("bracha", total Rbc.Bracha.decode_msg);
    ("avid", total Rbc.Avid.decode_msg);
    ("gossip", total Rbc.Gossip.decode_msg);
    ("coin", total Dagrider.Node.decode_coin_msg);
    ("sync", total Dagrider.Node.decode_sync_msg) ]

let valid_encodings =
  let proof =
    { Crypto.Merkle.leaf_index = 1;
      path = [ Crypto.Sha256.digest_string "a"; Crypto.Sha256.digest_string "b" ]
    }
  in
  [ Rbc.Bracha.encode_msg (Rbc.Bracha.Init { round = 7; payload = "hello" });
    Rbc.Bracha.encode_msg
      (Rbc.Bracha.Echo { origin = 2; round = 3; payload = String.make 40 'x' });
    Rbc.Bracha.encode_msg
      (Rbc.Bracha.Ready { origin = 1; round = 0; payload = "" });
    Rbc.Avid.encode_msg
      (Rbc.Avid.Disperse
         { round = 4;
           root = Crypto.Sha256.digest_string "r";
           data_len = 64;
           frag_index = 1;
           frag = "fragment";
           proof });
    Rbc.Avid.encode_msg
      (Rbc.Avid.Ready
         { origin = 3; round = 9; root = Crypto.Sha256.digest_string "q";
           data_len = 12 });
    Rbc.Gossip.encode_msg
      (Rbc.Gossip.Gossip { origin = 0; round = 2; payload = "payload" });
    Rbc.Gossip.encode_msg
      (Rbc.Gossip.Echo
         { origin = 1; round = 5; digest = Crypto.Sha256.digest_string "d" });
    Dagrider.Node.encode_coin_msg
      (Dagrider.Node.Coin_share
         { Crypto.Threshold_coin.holder = 2; instance = 11; value = 1 });
    Dagrider.Node.encode_sync_msg (Dagrider.Node.Sync_request { from_round = 3 });
    Dagrider.Node.encode_sync_msg
      (Dagrider.Node.Sync_response
         { vertices = [ ("vertex-bytes", 4, 2); ("more-bytes", 5, 0) ] }) ]

let test_fuzz_random_bytes () =
  let rng = Stdx.Rng.create 1234 in
  for _ = 1 to 2000 do
    let len = Stdx.Rng.int rng 80 in
    let s = String.init len (fun _ -> Char.chr (Stdx.Rng.int rng 256)) in
    List.iter
      (fun (name, total) ->
        match total s with
        | true -> ()
        | false -> Alcotest.failf "%s decoder not total on %S" name s
        | exception e ->
          Alcotest.failf "%s decoder raised on %S: %s" name s
            (Printexc.to_string e))
      decoders
  done

let test_fuzz_truncations () =
  List.iter
    (fun enc ->
      for cut = 0 to String.length enc - 1 do
        let s = String.sub enc 0 cut in
        List.iter
          (fun (name, total) ->
            try ignore (total s)
            with e ->
              Alcotest.failf "%s decoder raised on truncation: %s" name
                (Printexc.to_string e))
          decoders
      done)
    valid_encodings

let test_fuzz_mutations () =
  let rng = Stdx.Rng.create 77 in
  List.iter
    (fun enc ->
      for _ = 1 to 200 do
        let b = Bytes.of_string enc in
        let i = Stdx.Rng.int rng (Bytes.length b) in
        Bytes.set b i (Char.chr (Stdx.Rng.int rng 256));
        let s = Bytes.to_string b in
        List.iter
          (fun (name, total) ->
            try ignore (total s)
            with e ->
              Alcotest.failf "%s decoder raised on mutation: %s" name
                (Printexc.to_string e))
          decoders
      done)
    valid_encodings

let test_sync_response_flood_rejected () =
  (* an honest responder never ships more than max_sync_vertices; the
     decoder treats a bigger claim as malformed rather than allocating *)
  let huge =
    Dagrider.Node.Sync_response
      { vertices = List.init 501 (fun i -> ("v", i, 0)) }
  in
  checkb "oversized sync response rejected" true
    (Dagrider.Node.decode_sync_msg (Dagrider.Node.encode_sync_msg huge) = None);
  let ok =
    Dagrider.Node.Sync_response
      { vertices = List.init 500 (fun i -> ("v", i, 0)) }
  in
  checkb "full-size sync response accepted" true
    (Dagrider.Node.decode_sync_msg (Dagrider.Node.encode_sync_msg ok) = Some ok)

(* ---- trace kinds ---- *)

let test_trace_roundtrip_loss_kinds () =
  let tr = Trace.create () in
  Trace.emit tr
    (Trace.Drop
       { src = 1; dst = 2; msg_kind = "rbc-echo"; reason = "fault"; id = 9 });
  Trace.emit tr
    (Trace.Retransmit
       { src = 0; dst = 3; msg_kind = "link-data"; seq = 17; attempt = 4;
         id = 12 });
  Trace.emit tr
    (Trace.Corrupt_reject { src = 2; dst = 0; msg_kind = "link-data"; id = -1 });
  let events = Trace.events tr in
  (match Trace.events_of_jsonl (Trace.to_jsonl tr) with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok parsed -> checkb "loss kinds round-trip" true (parsed = events));
  checkb "drop attributed to destination" true
    (Trace.node_of
       (Trace.Drop
          { src = 1; dst = 2; msg_kind = "x"; reason = "fault"; id = -1 })
    = Some 2);
  checkb "retransmit attributed to sender" true
    (Trace.node_of
       (Trace.Retransmit
          { src = 0; dst = 3; msg_kind = "x"; seq = 1; attempt = 1; id = -1 })
    = Some 0)

(* ---- harness runs over lossy links ---- *)

let lossy_rates =
  { Harness.Runner.lf_drop = 0.2;
    lf_duplicate = 0.05;
    lf_corrupt = 0.02;
    lf_reorder = 0.1 }

let assert_ok = function
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let counter snap name =
  match List.assoc_opt name snap.Metrics.Registry.counters with
  | Some v -> v
  | None -> 0

(* the acceptance bar: drop 0.2 + duplication + corruption on every
   link, and each backend still commits 100+ waves with total order and
   integrity intact *)
let test_lossy_long_run backend until () =
  let max_wave = ref 0 in
  let options =
    { (Harness.Runner.default_options ~n:4) with
      backend;
      seed = 99;
      link_faults = Some lossy_rates;
      on_commit =
        Some
          (fun ~node:_ c ->
            if c.Dagrider.Ordering.wave > !max_wave then
              max_wave := c.Dagrider.Ordering.wave) }
  in
  let t = Harness.Runner.build options in
  Harness.Runner.run t ~until;
  assert_ok (Harness.Runner.check_total_order t);
  assert_ok (Harness.Runner.check_integrity t);
  checkb
    (Printf.sprintf "100+ waves committed (got %d)" !max_wave)
    true (!max_wave >= 100);
  let st = Harness.Runner.link_stats t in
  checkb "retransmissions happened" true (st.Net.Link.retransmits > 0);
  checkb "corruption rejected by checksum" true
    (st.Net.Link.corrupt_rejected > 0);
  checkb "duplicates suppressed" true (st.Net.Link.dup_suppressed > 0);
  checki "no frame abandoned" 0 st.Net.Link.gave_up;
  (* the same counters must surface in the metrics snapshot *)
  let snap = Harness.Runner.metrics_snapshot t in
  checkb "link.retransmits in snapshot" true
    (counter snap "link.retransmits" > 0);
  checkb "link.corrupt_rejected in snapshot" true
    (counter snap "link.corrupt_rejected" > 0);
  checkb "net.drops.fault in snapshot" true (counter snap "net.drops.fault" > 0);
  checkb "per-link retransmit counters populated" true
    (Harness.Runner.retransmits_by_link t <> [])

(* transport-level duplicates only: RBC handlers must be idempotent, so
   the fleet behaves exactly like a clean one *)
let test_duplicates_are_idempotent backend () =
  let options =
    { (Harness.Runner.default_options ~n:4) with
      backend;
      seed = 41;
      link_faults =
        Some { Harness.Runner.default_link_faults with lf_duplicate = 0.5 } }
  in
  let t = Harness.Runner.build options in
  Harness.Runner.run t ~until:120.0;
  assert_ok (Harness.Runner.check_total_order t);
  assert_ok (Harness.Runner.check_integrity t);
  let refs = Harness.Runner.delivered_refs t in
  Array.iter
    (fun log -> checkb "every process progressed" true (List.length log > 0))
    refs;
  checkb "dedup window was exercised" true
    ((Harness.Runner.link_stats t).Net.Link.dup_suppressed > 0)

let test_lossy_run_deterministic () =
  let run () =
    let t =
      Harness.Runner.build
        { (Harness.Runner.default_options ~n:4) with
          seed = 21;
          link_faults = Some lossy_rates }
    in
    Harness.Runner.run t ~until:80.0;
    (Harness.Runner.delivered_refs t, Harness.Runner.link_stats t)
  in
  let a = run () in
  let b = run () in
  checkb "lossy runs are pure functions of the seed" true (a = b)

let test_disabled_faults_add_nothing () =
  (* link_faults = None must keep the historical wiring: no link
     counters, no frame traffic, no net.drops entries *)
  let t =
    Harness.Runner.build
      { (Harness.Runner.default_options ~n:4) with seed = 21 }
  in
  Harness.Runner.run t ~until:80.0;
  checkb "no link stats" true
    (Harness.Runner.link_stats t = Net.Link.zero_stats);
  checkb "no retransmit links" true (Harness.Runner.retransmits_by_link t = []);
  let snap = Harness.Runner.metrics_snapshot t in
  checkb "no link.* counters in snapshot" true
    (List.for_all
       (fun (name, _) ->
         not (String.length name >= 5 && String.sub name 0 5 = "link."))
       snap.Metrics.Registry.counters)

(* ---- restarts under hostile conditions ---- *)

let test_restart_under_byzantine () =
  let options =
    { (Harness.Runner.default_options ~n:4) with
      seed = 5;
      faults = [ Harness.Runner.Byzantine_attacker 3 ] }
  in
  let t = Harness.Runner.build options in
  Harness.Runner.run t ~until:40.0;
  let before = List.length (Harness.Runner.delivered_refs t).(1) in
  checkb "progress before the restart" true (before > 0);
  Harness.Runner.restart_node t 1;
  Harness.Runner.run t ~until:140.0;
  assert_ok (Harness.Runner.check_total_order t);
  assert_ok (Harness.Runner.check_integrity t);
  let refs = Harness.Runner.delivered_refs t in
  checkb "restarted node kept delivering despite the attacker" true
    (List.length refs.(1) > before);
  (* the restarted process must not fall permanently behind the fleet *)
  let correct = Harness.Runner.correct_indices t in
  let counts = List.map (fun i -> List.length refs.(i)) correct in
  let best = List.fold_left max 0 counts in
  checkb "restarted node caught up with the fleet" true
    (List.length refs.(1) * 2 > best)

let test_restart_under_lossy_links () =
  let options =
    { (Harness.Runner.default_options ~n:4) with
      seed = 6;
      link_faults =
        Some { lossy_rates with Harness.Runner.lf_drop = 0.15 } }
  in
  let t = Harness.Runner.build options in
  Harness.Runner.run t ~until:60.0;
  let before = List.length (Harness.Runner.delivered_refs t).(2) in
  checkb "progress before the restart" true (before > 0);
  Harness.Runner.restart_node t 2;
  Harness.Runner.run t ~until:260.0;
  assert_ok (Harness.Runner.check_total_order t);
  assert_ok (Harness.Runner.check_integrity t);
  let refs = Harness.Runner.delivered_refs t in
  checkb "restarted node kept delivering over lossy links" true
    (List.length refs.(2) > before);
  let counts = Array.to_list (Array.map List.length refs) in
  let best = List.fold_left max 0 counts in
  checkb "restarted node caught up with the fleet" true
    (List.length refs.(2) * 2 > best)

(* restart under fire: an equivocating adversary AND 20% loss at once,
   exercised under both commit rules — the restarted process must
   re-converge through the hardened sync path while the fork oracle
   proves every equivocation ended up excluded or converged *)
let test_restart_under_fire rule () =
  let options =
    { (Harness.Runner.default_options ~n:4) with
      seed = 23;
      rule;
      faults =
        [ Harness.Runner.Adversary
            (3, { Attack.strategy = Attack.Equivocate; victims = [ 1 ] }) ];
      link_faults =
        Some { lossy_rates with Harness.Runner.lf_drop = 0.2 } }
  in
  let t = Harness.Runner.build options in
  Harness.Runner.run t ~until:60.0;
  let before = List.length (Harness.Runner.delivered_refs t).(1) in
  checkb "progress before the restart" true (before > 0);
  Harness.Runner.restart_node t 1;
  Harness.Runner.run t ~until:320.0;
  assert_ok (Harness.Runner.check_total_order t);
  assert_ok (Harness.Runner.check_integrity t);
  let refs = Harness.Runner.delivered_refs t in
  checkb "restarted node kept delivering under fire" true
    (List.length refs.(1) > before);
  let correct = Harness.Runner.correct_indices t in
  let best =
    List.fold_left (fun acc i -> max acc (List.length refs.(i))) 0 correct
  in
  checkb "restarted node re-converged with the fleet" true
    (List.length refs.(1) * 2 > best);
  let reports = Harness.Runner.attack_reports t in
  checkb "the adversary actually equivocated" true
    (List.exists (fun r -> r.Harness.Runner.ar_forks <> []) reports);
  let dags =
    List.map
      (fun i -> (i, Dagrider.Node.dag (Harness.Runner.node t i)))
      correct
  in
  checkb "forks excluded or converged" true
    (Check.Oracle.check_fork_outcomes ~reports ~dags = [])

(* ---- analyzer diagnostics ---- *)

let test_analyzer_counts_loss_events () =
  let tr = Trace.create () in
  let options =
    { (Harness.Runner.default_options ~n:4) with
      seed = 33;
      link_faults = Some lossy_rates;
      trace = Some tr }
  in
  let t = Harness.Runner.build options in
  Harness.Runner.run t ~until:80.0;
  match Harness.Runner.analysis t with
  | None -> Alcotest.fail "traced run must produce an analysis"
  | Some r ->
    checkb "retransmit events counted" true (r.Analyze.r_retransmits > 0);
    checkb "corrupt rejects counted" true (r.Analyze.r_corrupt_rejects > 0);
    checkb "fault drops counted" true
      (match List.assoc_opt "fault" r.Analyze.r_drops with
      | Some v -> v > 0
      | None -> false);
    checkb "per-link retransmits populated" true
      (r.Analyze.r_link_retransmits <> []);
    (* uniform loss keeps every link near the median: the targeted-loss
       anomaly must NOT fire *)
    checkb "no lossy-link anomaly under uniform loss" true
      (List.for_all
         (function Analyze.Lossy_link _ -> false | _ -> true)
         r.Analyze.r_anomalies)

let test_analyzer_flags_targeted_loss () =
  let tr = Trace.create () in
  (* one link far above the median, one with an exhausted retry budget *)
  for i = 1 to 30 do
    Trace.emit tr
      (Trace.Retransmit
         { src = 2; dst = 1; msg_kind = "t"; seq = i; attempt = 1; id = -1 })
  done;
  List.iter
    (fun (src, dst) ->
      Trace.emit tr
        (Trace.Retransmit
           { src; dst; msg_kind = "t"; seq = 1; attempt = 1; id = -1 }))
    [ (0, 1); (1, 0); (0, 2) ];
  Trace.emit tr
    (Trace.Drop
       { src = 3; dst = 0; msg_kind = "t"; reason = "give-up"; id = -1 });
  Trace.emit tr
    (Trace.Corrupt_reject { src = 0; dst = 3; msg_kind = "t"; id = -1 });
  let r = Analyze.analyze (Trace.events tr) in
  checki "retransmit events" 33 r.Analyze.r_retransmits;
  checki "corrupt rejects" 1 r.Analyze.r_corrupt_rejects;
  checkb "give-up drop recorded" true
    (List.assoc_opt "give-up" r.Analyze.r_drops = Some 1);
  let lossy =
    List.filter_map
      (function
        | Analyze.Lossy_link { src; dst; gave_up; _ } -> Some (src, dst, gave_up)
        | _ -> None)
      r.Analyze.r_anomalies
  in
  checkb "the outlier link is flagged" true
    (List.exists (fun (s, d, _) -> s = 2 && d = 1) lossy);
  checkb "the exhausted link is flagged" true
    (List.exists (fun (s, d, g) -> s = 3 && d = 0 && g = 1) lossy);
  checkb "links near the median are not flagged" true
    (not (List.exists (fun (s, d, _) -> s = 0 && d = 1) lossy));
  (* the human rendering names the starving destination *)
  match
    List.find_opt
      (function Analyze.Lossy_link { src = 2; dst = 1; _ } -> true | _ -> false)
      r.Analyze.r_anomalies
  with
  | None -> Alcotest.fail "missing anomaly"
  | Some a ->
    let line = Analyze.describe_anomaly a in
    checkb "description mentions the link" true
      (let has sub =
         let n = String.length line and m = String.length sub in
         let rec go i =
           i + m <= n && (String.sub line i m = sub || go (i + 1))
         in
         m = 0 || go 0
       in
       has "p2->p1")

(* ---- scenario sampling ---- *)

let test_scenario_forced_lossy () =
  let sc =
    Check.Scenario.generate ~quick:true ~lossy:lossy_rates ~seed:3 ()
  in
  checkb "forced scenarios carry the rates" true
    (sc.Check.Scenario.link_faults = Some lossy_rates);
  checkb "forced flag set" true sc.Check.Scenario.lossy_forced;
  checkb "lossy runs drop the validity promise" true
    (not (Check.Scenario.expect_validity sc));
  let repro = Check.Swarm.repro_command sc in
  let has sub =
    let n = String.length repro and m = String.length sub in
    let rec go i = i + m <= n && (String.sub repro i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  checkb "repro command carries --loss" true (has "--loss");
  (* sabotage scenarios must never be lossy: the attack depends on
     exact delivery timing *)
  let sab =
    Check.Scenario.generate ~sabotage:true ~quick:true ~lossy:lossy_rates
      ~seed:3 ()
  in
  checkb "sabotage ignores lossy" true
    (sab.Check.Scenario.link_faults = None)

let test_scenario_samples_lossy_from_seed () =
  let scenarios =
    List.init 40 (fun i -> Check.Scenario.generate ~quick:true ~seed:(i + 1) ())
  in
  let lossy =
    List.filter (fun sc -> sc.Check.Scenario.link_faults <> None) scenarios
  in
  checkb "some seeds sample lossy links" true (lossy <> []);
  checkb "some seeds stay clean" true
    (List.length lossy < List.length scenarios);
  List.iter
    (fun sc ->
      checkb "seed-sampled lossy is not forced" true
        (not sc.Check.Scenario.lossy_forced);
      let repro = Check.Swarm.repro_command sc in
      let has sub =
        let n = String.length repro and m = String.length sub in
        let rec go i =
          i + m <= n && (String.sub repro i m = sub || go (i + 1))
        in
        m = 0 || go 0
      in
      checkb "seed alone reproduces sampled lossy runs" true (not (has "--loss")))
    lossy;
  (* sampling lossy last: the same seed with and without the override
     agrees on everything except the link faults and horizon *)
  List.iter
    (fun sc ->
      let forced =
        Check.Scenario.generate ~quick:true ~lossy:lossy_rates
          ~seed:sc.Check.Scenario.seed ()
      in
      checkb "fleet shape unchanged by forcing lossy" true
        (forced.Check.Scenario.n = sc.Check.Scenario.n
        && forced.Check.Scenario.f = sc.Check.Scenario.f
        && forced.Check.Scenario.backend = sc.Check.Scenario.backend
        && forced.Check.Scenario.faults = sc.Check.Scenario.faults
        && forced.Check.Scenario.layers = sc.Check.Scenario.layers))
    scenarios

(* a handful of lossy swarm seeds end to end: every safety oracle must
   hold over the ack/retransmit transport *)
let test_swarm_lossy_seeds () =
  let report =
    Check.Swarm.run_seeds ~quick:true ~lossy:lossy_rates
      ~seeds:[ 101; 102; 103 ] ()
  in
  checki "no violations across lossy seeds" 0
    (List.length report.Check.Swarm.failures)

let () =
  Alcotest.run "lossy"
    [ ( "faults",
        [ Alcotest.test_case "none is clean" `Quick test_faults_none_is_clean;
          Alcotest.test_case "determinism" `Quick test_faults_determinism;
          Alcotest.test_case "on_links restriction" `Quick test_faults_on_links;
          Alcotest.test_case "with_window" `Quick test_faults_window;
          Alcotest.test_case "validation" `Quick test_faults_validation ] );
      ( "link",
        [ Alcotest.test_case "delivers under loss" `Quick
            test_link_delivers_under_loss;
          Alcotest.test_case "dedup exactly once" `Quick
            test_link_dedup_exactly_once;
          Alcotest.test_case "corruption recovery" `Quick
            test_link_corrupt_recovery;
          Alcotest.test_case "reordering loses nothing" `Quick
            test_link_reorder_delivers_all;
          Alcotest.test_case "give-up after budget" `Quick test_link_gives_up;
          Alcotest.test_case "no handler" `Quick test_link_no_handler;
          Alcotest.test_case "determinism" `Quick test_link_determinism;
          Alcotest.test_case "decode failure dropped" `Quick
            test_link_decode_failure_dropped;
          Alcotest.test_case "frame checksums" `Quick test_frame_checksum ] );
      ( "fuzz",
        [ Alcotest.test_case "random bytes" `Quick test_fuzz_random_bytes;
          Alcotest.test_case "truncations" `Quick test_fuzz_truncations;
          Alcotest.test_case "mutations" `Quick test_fuzz_mutations;
          Alcotest.test_case "sync flood rejected" `Quick
            test_sync_response_flood_rejected ] );
      ( "trace",
        [ Alcotest.test_case "loss kinds round-trip" `Quick
            test_trace_roundtrip_loss_kinds ] );
      ( "harness",
        [ Alcotest.test_case "bracha: 100 waves over lossy links" `Slow
            (test_lossy_long_run Harness.Runner.Bracha 2400.0);
          Alcotest.test_case "avid: 100 waves over lossy links" `Slow
            (test_lossy_long_run Harness.Runner.Avid 2400.0);
          (* the horizon grew with the gossip Byzantine floors: quorum
             deliveries now need 2f+1 echoes/readies, so each wave costs
             more retransmit round-trips under loss *)
          Alcotest.test_case "gossip: 100 waves over lossy links" `Slow
            (test_lossy_long_run Harness.Runner.Gossip 1800.0);
          Alcotest.test_case "bracha: duplicate idempotence" `Quick
            (test_duplicates_are_idempotent Harness.Runner.Bracha);
          Alcotest.test_case "avid: duplicate idempotence" `Quick
            (test_duplicates_are_idempotent Harness.Runner.Avid);
          Alcotest.test_case "gossip: duplicate idempotence" `Quick
            (test_duplicates_are_idempotent Harness.Runner.Gossip);
          Alcotest.test_case "lossy runs deterministic" `Quick
            test_lossy_run_deterministic;
          Alcotest.test_case "disabled faults add nothing" `Quick
            test_disabled_faults_add_nothing;
          Alcotest.test_case "restart under byzantine attacker" `Quick
            test_restart_under_byzantine;
          Alcotest.test_case "restart under lossy links" `Slow
            test_restart_under_lossy_links;
          Alcotest.test_case "restart under fire (dag-rider)" `Slow
            (test_restart_under_fire Dagrider.Ordering.dag_rider);
          Alcotest.test_case "restart under fire (bullshark)" `Slow
            (test_restart_under_fire Dagrider.Ordering.bullshark) ] );
      ( "analyze",
        [ Alcotest.test_case "loss counters from a real run" `Quick
            test_analyzer_counts_loss_events;
          Alcotest.test_case "targeted loss flagged" `Quick
            test_analyzer_flags_targeted_loss ] );
      ( "scenario",
        [ Alcotest.test_case "forced lossy" `Quick test_scenario_forced_lossy;
          Alcotest.test_case "seed-sampled lossy" `Quick
            test_scenario_samples_lossy_from_seed;
          Alcotest.test_case "lossy swarm seeds pass" `Slow
            test_swarm_lossy_seeds ] ) ]
