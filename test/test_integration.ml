(* End-to-end tests of the full DAG-Rider stack: the BAB properties
   (agreement, integrity, validity, total order) across backends,
   schedules and fault scenarios, plus the ablations from DESIGN.md §5. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let assert_safe h =
  (match Harness.Runner.check_total_order h with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("total order violated: " ^ e));
  match Harness.Runner.check_integrity h with
  | Ok () -> ()
  | Error e -> Alcotest.fail ("integrity violated: " ^ e)

let min_delivered h =
  List.fold_left
    (fun acc i ->
      min acc
        (Dagrider.Ordering.delivered_count
           (Dagrider.Node.ordering (Harness.Runner.node h i))))
    max_int
    (Harness.Runner.correct_indices h)

(* ---- safety and liveness across backends and schedules ---- *)

let test_safety_liveness ~backend ~schedule ~n () =
  let opts =
    { (Harness.Runner.default_options ~n) with
      backend;
      schedule;
      seed = 1234 }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:80.0;
  assert_safe h;
  checkb
    (Printf.sprintf "progress (delivered %d)" (min_delivered h))
    true
    (min_delivered h > 4 * n)

let matrix_cases =
  let open Harness.Runner in
  List.concat_map
    (fun (bname, backend) ->
      List.map
        (fun (sname, schedule) ->
          Alcotest.test_case
            (Printf.sprintf "%s/%s n=4" bname sname)
            `Quick
            (test_safety_liveness ~backend ~schedule ~n:4))
        [ ("sync", Synchronous);
          ("uniform", Uniform_random);
          ("skewed", Skewed_random) ])
    [ ("bracha", Bracha); ("avid", Avid); ("gossip", Gossip) ]

let test_larger_system () =
  let opts =
    { (Harness.Runner.default_options ~n:10) with seed = 5; block_bytes = 16 }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:60.0;
  assert_safe h;
  checkb "progress" true (min_delivered h > 40)

let test_stress_n16 () =
  (* f = 5: a large fleet with mixed faults under a skewed schedule *)
  let opts =
    { (Harness.Runner.default_options ~n:16) with
      seed = 77;
      schedule = Harness.Runner.Skewed_random;
      block_bytes = 16;
      faults =
        [ Crash 13; Crash 14; Byzantine_live 15; Byzantine_attacker 12 ] }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:40.0;
  assert_safe h;
  checkb "progress at n=16 with 4 faults" true (min_delivered h > 50);
  (* chain quality still holds at this scale *)
  let sources =
    List.map
      (fun v -> v.Dagrider.Vertex.source)
      (Dagrider.Node.delivered_log (Harness.Runner.node h 0))
  in
  let report =
    Metrics.Chain_quality.audit ~f:5
      ~correct:(fun i -> Harness.Runner.is_correct h i)
      ~sources
  in
  checkb "chain quality at scale" true report.Metrics.Chain_quality.holds

(* ---- determinism ---- *)

let test_determinism_same_seed () =
  let mk () =
    let h = Harness.Runner.build (Harness.Runner.default_options ~n:4) in
    Harness.Runner.run h ~until:50.0;
    Array.to_list (Harness.Runner.delivered_logs h)
    |> List.concat_map (List.map Dagrider.Vertex.vref_of)
  in
  checkb "replay identical" true (mk () = mk ())

let test_different_seeds_still_safe () =
  List.iter
    (fun seed ->
      let opts = { (Harness.Runner.default_options ~n:4) with seed } in
      let h = Harness.Runner.build opts in
      Harness.Runner.run h ~until:50.0;
      assert_safe h;
      checkb "progress" true (min_delivered h > 10))
    [ 2; 3; 4; 5; 6; 7 ]

(* ---- crash fault tolerance ---- *)

let test_f_crashes_tolerated () =
  let opts =
    { (Harness.Runner.default_options ~n:7) with
      faults = [ Crash 5; Crash 6 ];
      seed = 8 }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:80.0;
  assert_safe h;
  checkb "liveness with f crashes" true (min_delivered h > 20)

let test_fplus1_crashes_halt_but_stay_safe () =
  (* beyond the resilience bound progress must stop, but nothing bad is
     delivered *)
  let opts =
    { (Harness.Runner.default_options ~n:7) with
      faults = [ Crash 4; Crash 5; Crash 6 ];
      seed = 10 }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:80.0;
  assert_safe h;
  checki "no progress past genesis-fed rounds" 0 (min_delivered h)

(* ---- validity / eventual fairness (the paper's headline vs SMRs) ---- *)

let test_validity_all_correct_blocks_ordered () =
  (* every a_bcast block by a correct process is eventually delivered
     by every correct process *)
  let opts = { (Harness.Runner.default_options ~n:4) with seed = 11 } in
  let h = Harness.Runner.build opts in
  (* inject explicit blocks before starting *)
  let expected = ref [] in
  Array.iteri
    (fun i node ->
      for s = 1 to 5 do
        let block = Printf.sprintf "explicit:%d:%d" i s in
        expected := block :: !expected;
        Dagrider.Node.a_bcast node block
      done)
    (Harness.Runner.nodes h);
  Harness.Runner.run h ~until:100.0;
  assert_safe h;
  let log0 =
    List.map
      (fun v -> v.Dagrider.Vertex.block)
      (Dagrider.Node.delivered_log (Harness.Runner.node h 0))
  in
  List.iter
    (fun block ->
      checkb (Printf.sprintf "%s ordered" block) true (List.mem block log0))
    !expected

let test_censored_process_still_ordered () =
  (* the adversary delays every message from p3 by 15x; weak edges must
     still pull its vertices into the total order (Validity) *)
  let opts =
    { (Harness.Runner.default_options ~n:4) with
      seed = 12;
      schedule =
        Harness.Runner.Custom
          (fun rng ->
            Net.Sched.delay_process
              ~inner:(Net.Sched.uniform_random ~rng)
              ~victim:3 ~factor:15.0) }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:150.0;
  assert_safe h;
  let victim_vertices =
    List.filter
      (fun v -> v.Dagrider.Vertex.source = 3)
      (Dagrider.Node.delivered_log (Harness.Runner.node h 0))
  in
  checkb
    (Printf.sprintf "victim blocks ordered (%d)" (List.length victim_vertices))
    true
    (List.length victim_vertices >= 3)

let test_weak_edges_off_starves_victim () =
  (* ablation: with weak edges disabled, the slow process's vertices are
     never reachable from leaders and never get ordered — validity is
     exactly what weak edges buy (DESIGN.md §5) *)
  let run ~enable_weak_edges =
    let opts =
      { (Harness.Runner.default_options ~n:4) with
        seed = 12;
        enable_weak_edges;
        schedule =
          Harness.Runner.Custom
            (fun rng ->
              Net.Sched.delay_process
                ~inner:(Net.Sched.uniform_random ~rng)
                ~victim:3 ~factor:15.0) }
    in
    let h = Harness.Runner.build opts in
    Harness.Runner.run h ~until:150.0;
    assert_safe h;
    List.length
      (List.filter
         (fun v -> v.Dagrider.Vertex.source = 3)
         (Dagrider.Node.delivered_log (Harness.Runner.node h 0)))
  in
  let with_weak = run ~enable_weak_edges:true in
  let without_weak = run ~enable_weak_edges:false in
  checkb
    (Printf.sprintf "weak on: %d, weak off: %d" with_weak without_weak)
    true
    (with_weak > without_weak)

(* ---- chain quality ---- *)

let test_chain_quality_with_byzantine_live () =
  let n = 7 in
  let opts =
    { (Harness.Runner.default_options ~n) with
      seed = 13;
      faults = [ Byzantine_live 0; Byzantine_live 1 ] }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:80.0;
  assert_safe h;
  let sources =
    List.map
      (fun v -> v.Dagrider.Vertex.source)
      (Dagrider.Node.delivered_log (Harness.Runner.node h 2))
  in
  let report =
    Metrics.Chain_quality.audit ~f:2
      ~correct:(fun i -> Harness.Runner.is_correct h i)
      ~sources
  in
  checkb "chain quality bound holds" true report.Metrics.Chain_quality.holds

(* ---- leader agreement ---- *)

let test_committed_leader_sequences_agree () =
  let opts = { (Harness.Runner.default_options ~n:4) with seed = 14 } in
  (* rebuild manually to attach on_commit hooks: use the harness then
     read each node's ordering decisions from its log instead *)
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:80.0;
  assert_safe h;
  (* decided waves should be close and logs prefix-equal (already
     checked); also every node delivered the same leader vertices in
     the same relative order - implied by total order; here we just
     confirm substantial agreement depth *)
  let decided =
    List.map
      (fun i ->
        Dagrider.Ordering.decided_wave
          (Dagrider.Node.ordering (Harness.Runner.node h i)))
      (Harness.Runner.correct_indices h)
  in
  let lo = List.fold_left min max_int decided in
  let hi = List.fold_left max 0 decided in
  checkb
    (Printf.sprintf "decided waves in [%d, %d]" lo hi)
    true
    (lo > 0 && hi - lo <= 2)

(* ---- expected waves per commit (Claim 6) ---- *)

let test_claim6_commit_rate () =
  (* under a random scheduler, the expected number of waves between
     direct commits is well under the paper's worst-case 3/2 bound;
     assert a generous <= 2.0 to keep the test robust *)
  let opts = { (Harness.Runner.default_options ~n:4) with seed = 15 } in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:200.0;
  let node = Harness.Runner.node h 0 in
  let waves = Dagrider.Node.waves_completed node in
  let decided = Dagrider.Ordering.decided_wave (Dagrider.Node.ordering node) in
  checkb "enough waves to measure" true (waves >= 10);
  (* every decided wave was committed (directly or chained); the ratio
     completed/decided >= 1 measures skips *)
  let ratio = float_of_int waves /. float_of_int (max 1 decided) in
  checkb (Printf.sprintf "waves per decided = %.2f" ratio) true (ratio <= 2.0)

(* ---- garbage collection ---- *)

let test_gc_preserves_output () =
  let run gc_depth =
    let opts =
      { (Harness.Runner.default_options ~n:4) with seed = 16; gc_depth }
    in
    let h = Harness.Runner.build opts in
    Harness.Runner.run h ~until:60.0;
    assert_safe h;
    Array.to_list (Harness.Runner.delivered_logs h)
    |> List.concat_map (List.map Dagrider.Vertex.vref_of)
  in
  checkb "gc changes nothing observable" true (run None = run (Some 8))

let test_gc_actually_prunes () =
  let opts =
    { (Harness.Runner.default_options ~n:4) with seed = 17; gc_depth = Some 4 }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:80.0;
  let dag = Dagrider.Node.dag (Harness.Runner.node h 0) in
  checki "old rounds dropped" 0 (Dagrider.Dag.round_size dag 1);
  checkb "recent rounds kept" true
    (Dagrider.Dag.round_size dag (Dagrider.Dag.highest_round dag) > 0)

(* ---- ablation: quorum below f+1 loses agreement ---- *)

let vref round source = { Dagrider.Vertex.round; source }

let test_quorum_below_fplus1_diverges () =
  (* Two DAG views of the same execution (n=4, f=1): only d0 = (8,0)
     has a strong path to the wave-2 leader a1 = (5,1). View A contains
     d0; view B completed round 8 with the other three vertices and its
     wave-3 leader avoids d0. With commit_quorum = f = 1, A commits a1
     in wave 2 while B commits wave 3 without a1 — divergent logs. With
     the paper's 2f+1 (or even f+1), A does not commit a1, so no
     divergence. This pins down why the threshold matters. *)
  let add dag ~round ~source ~strong =
    Dagrider.Dag.add dag
      { Dagrider.Vertex.round;
        source;
        block = Printf.sprintf "b%d.%d" round source;
        strong_edges = List.map (fun (r, s) -> vref r s) strong;
        weak_edges = [] }
  in
  let full dag ~round =
    let prev =
      List.map
        (fun v ->
          let r = Dagrider.Vertex.vref_of v in
          (r.Dagrider.Vertex.round, r.Dagrider.Vertex.source))
        (Dagrider.Dag.round_vertices dag (round - 1))
    in
    List.iter (fun source -> add dag ~round ~source ~strong:prev) [ 0; 1; 2; 3 ]
  in
  let build_common dag =
    for r = 1 to 5 do
      full dag ~round:r
    done;
    (* round 6: only b0 = (6,0) references a1 = (5,1) *)
    add dag ~round:6 ~source:0 ~strong:[ (5, 0); (5, 1); (5, 2) ];
    List.iter
      (fun source -> add dag ~round:6 ~source ~strong:[ (5, 0); (5, 2); (5, 3) ])
      [ 1; 2; 3 ];
    (* round 7: only c0 references b0 *)
    add dag ~round:7 ~source:0 ~strong:[ (6, 0); (6, 1); (6, 2) ];
    List.iter
      (fun source -> add dag ~round:7 ~source ~strong:[ (6, 1); (6, 2); (6, 3) ])
      [ 1; 2; 3 ]
  in
  (* One shared universe of vertices (reliable broadcast means two views
     can differ only in WHICH vertices they have, never in a vertex's
     edges). d0 = (8,0) is the only round-8 vertex reaching a1; round-9
     vertices all avoid d0, so no wave-3 leader has a strong path to a1.
     View A holds d0; view B has not received it yet. *)
  let wave3 dag =
    List.iter
      (fun source -> add dag ~round:9 ~source ~strong:[ (8, 1); (8, 2); (8, 3) ])
      [ 0; 1; 2; 3 ];
    for r = 10 to 12 do
      full dag ~round:r
    done
  in
  let dag_a = Dagrider.Dag.create ~n:4 in
  build_common dag_a;
  add dag_a ~round:8 ~source:0 ~strong:[ (7, 0); (7, 1); (7, 2) ];
  List.iter
    (fun source -> add dag_a ~round:8 ~source ~strong:[ (7, 1); (7, 2); (7, 3) ])
    [ 1; 2; 3 ];
  wave3 dag_a;
  let dag_b = Dagrider.Dag.create ~n:4 in
  build_common dag_b;
  List.iter
    (fun source -> add dag_b ~round:8 ~source ~strong:[ (7, 1); (7, 2); (7, 3) ])
    [ 1; 2; 3 ];
  wave3 dag_b;
  let leaders = function 2 -> 1 | 3 -> 2 | _ -> 0 in
  let run_view dag ~commit_quorum =
    let ord = Dagrider.Ordering.create ~commit_quorum ~f:1 () in
    ignore (Dagrider.Ordering.process_wave ord ~dag ~wave:2 ~choose_leader:leaders);
    ignore (Dagrider.Ordering.process_wave ord ~dag ~wave:3 ~choose_leader:leaders);
    List.map Dagrider.Vertex.vref_of (Dagrider.Ordering.delivered_log ord)
  in
  (* quorum f = 1: divergence *)
  let log_a = run_view dag_a ~commit_quorum:1 in
  let log_b = run_view dag_b ~commit_quorum:1 in
  checkb "A committed a1" true (List.mem (vref 5 1) log_a);
  checkb "B never delivers a1" true (not (List.mem (vref 5 1) log_b));
  checkb "B delivered something" true (log_b <> []);
  (* the logs are NOT prefix-comparable: agreement broken *)
  let prefix_comparable a b =
    let rec go = function
      | [], _ | _, [] -> true
      | x :: xs, y :: ys -> x = y && go (xs, ys)
    in
    go (a, b)
  in
  checkb "divergence with quorum f" false (prefix_comparable log_a log_b);
  (* with the paper's quorum, A refuses the weakly-supported leader and
     no divergence arises *)
  let log_a' = run_view dag_a ~commit_quorum:3 in
  let log_b' = run_view dag_b ~commit_quorum:3 in
  checkb "paper quorum: A skips a1" true (not (List.mem (vref 5 1) log_a'));
  checkb "paper quorum: prefix-comparable" true (prefix_comparable log_a' log_b')

let test_active_attacker_tolerated () =
  (* an attacker floods the broadcast channel with garbage, invalid
     vertices, out-of-range edges and equivocation attempts; correct
     processes must drop it all and keep total order + progress *)
  List.iter
    (fun seed ->
      let opts =
        { (Harness.Runner.default_options ~n:4) with
          seed;
          faults = [ Byzantine_attacker 3 ] }
      in
      let h = Harness.Runner.build opts in
      Harness.Runner.run h ~until:80.0;
      assert_safe h;
      checkb "progress despite attacker" true (min_delivered h > 15);
      (* the attacker can contribute at most one (valid) vertex per round
         it equivocated on; its garbage never enters any DAG *)
      let dag = Dagrider.Node.dag (Harness.Runner.node h 0) in
      List.iter
        (fun v ->
          checkb "only validated vertices in the DAG" true
            (Dagrider.Vertex.validate ~n:4 ~f:1 v = Ok ()))
        (Dagrider.Dag.vertices dag))
    [ 51; 52; 53 ]

let test_attacker_with_crash_at_bound () =
  (* n = 7, f = 2: one active attacker plus one crash = exactly f faults *)
  let opts =
    { (Harness.Runner.default_options ~n:7) with
      seed = 54;
      faults = [ Byzantine_attacker 5; Crash 6 ] }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:80.0;
  assert_safe h;
  checkb "progress at the resilience bound" true (min_delivered h > 15)

(* ---- in-DAG coin (paper footnote 1) ---- *)

let test_coin_in_dag_equivalent_safety () =
  List.iter
    (fun backend ->
      let opts =
        { (Harness.Runner.default_options ~n:4) with
          seed = 31;
          backend;
          coin_in_dag = true }
      in
      let h = Harness.Runner.build opts in
      Harness.Runner.run h ~until:80.0;
      assert_safe h;
      checkb "progress" true (min_delivered h > 20);
      (* no separate coin traffic at all *)
      checkb "zero coin-share messages" true
        (List.assoc_opt "coin-share"
           (Metrics.Counters.bits_by_kind (Harness.Runner.counters h))
        = None))
    [ Harness.Runner.Bracha; Harness.Runner.Avid ]

let test_coin_in_dag_with_crashes () =
  let opts =
    { (Harness.Runner.default_options ~n:7) with
      seed = 32;
      coin_in_dag = true;
      faults = [ Crash 5; Crash 6 ] }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:100.0;
  assert_safe h;
  checkb "liveness with f crashes" true (min_delivered h > 20)

let test_coin_in_dag_same_leaders_as_separate () =
  (* both coin transports resolve the same leader sequence: the shares
     are deterministic in (holder, instance), only the channel differs *)
  let leaders coin_in_dag =
    let opts =
      { (Harness.Runner.default_options ~n:4) with seed = 33; coin_in_dag }
    in
    let h = Harness.Runner.build opts in
    Harness.Runner.run h ~until:80.0;
    let node = Harness.Runner.node h 0 in
    List.filter_map
      (fun w -> Dagrider.Node.leader_of node ~wave:w)
      (List.init 8 (fun i -> i + 1))
  in
  let a = leaders false and b = leaders true in
  checkb "at least 8 waves resolved" true (List.length a >= 8);
  Alcotest.(check (list int)) "same leader sequence" a b

(* ---- random-configuration property ---- *)

let prop_safety_across_random_configs =
  QCheck.Test.make ~name:"total order holds across random configurations"
    ~count:25
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let rng = Stdx.Rng.create seed in
      let n = List.nth [ 4; 7 ] (Stdx.Rng.int rng 2) in
      let f = (n - 1) / 3 in
      let backend =
        List.nth
          [ Harness.Runner.Bracha; Harness.Runner.Avid ]
          (Stdx.Rng.int rng 2)
      in
      let schedule =
        List.nth
          [ Harness.Runner.Synchronous;
            Harness.Runner.Uniform_random;
            Harness.Runner.Skewed_random ]
          (Stdx.Rng.int rng 3)
      in
      let faults =
        if Stdx.Rng.bool rng then []
        else
          List.init (Stdx.Rng.int rng (f + 1)) (fun i ->
              Harness.Runner.Crash (n - 1 - i))
      in
      let coin_in_dag = Stdx.Rng.bool rng in
      let opts =
        { (Harness.Runner.default_options ~n) with
          seed = seed + 1;
          backend;
          schedule;
          faults;
          coin_in_dag;
          block_bytes = 16 }
      in
      let h = Harness.Runner.build opts in
      (* long enough that "every wave's leader happened to be among the
         laggards" is negligible (a wave legitimately commits nothing
         when its leader lags, p <= 1/3 per wave) *)
      Harness.Runner.run h ~until:100.0;
      Harness.Runner.check_total_order h = Ok ()
      && Harness.Runner.check_integrity h = Ok ()
      && min_delivered h > 0)

(* ---- schedule fuzzer: randomly composed adversaries ---- *)

let random_schedule rng =
  (* stack 1-3 random adversarial combinators over a random base *)
  let base r =
    match Stdx.Rng.int rng 3 with
    | 0 -> Net.Sched.uniform_random ~rng:r
    | 1 -> Net.Sched.skewed_random ~rng:r
    | _ -> Net.Sched.bimodal ~rng:r ()
  in
  let wrap inner =
    match Stdx.Rng.int rng 4 with
    | 0 ->
      Net.Sched.delay_process ~inner ~victim:(Stdx.Rng.int rng 4)
        ~factor:(float_of_int (2 + Stdx.Rng.int rng 30))
    | 1 ->
      Net.Sched.delay_matching ~inner
        ~pred:(fun ~src:_ ~dst:_ ~kind -> kind = "coin-share")
        ~factor:(float_of_int (2 + Stdx.Rng.int rng 10))
    | 2 ->
      let from_time = float_of_int (Stdx.Rng.int rng 40) in
      Net.Sched.with_window ~inner ~from_time ~until_time:(from_time +. 20.0)
        ~during:
          (Net.Sched.delay_process ~inner ~victim:(Stdx.Rng.int rng 4)
             ~factor:50.0)
    | _ -> Net.Sched.rush_process ~inner ~favored:(Stdx.Rng.int rng 4)
  in
  fun r ->
    let rec stack s k = if k = 0 then s else stack (wrap s) (k - 1) in
    stack (base r) (1 + Stdx.Rng.int rng 3)

let prop_safety_under_fuzzed_schedules =
  QCheck.Test.make ~name:"safety under randomly composed adversaries" ~count:20
    (QCheck.int_range 0 100_000)
    (fun seed ->
      let rng = Stdx.Rng.create (seed * 7) in
      let opts =
        { (Harness.Runner.default_options ~n:4) with
          seed = seed + 3;
          schedule = Harness.Runner.Custom (random_schedule rng);
          block_bytes = 16 }
      in
      let h = Harness.Runner.build opts in
      Harness.Runner.run h ~until:120.0;
      let safe =
        Harness.Runner.check_total_order h = Ok ()
        && Harness.Runner.check_integrity h = Ok ()
      in
      (* safety always; liveness whenever the adversary's delays are as
         bounded as these all are — but stacked factors can legally make
         a round cost ~30 units (e.g. input 94015 first delivers near
         t=240), so give delivery a longer horizon before failing *)
      if min_delivered h > 0 then safe
      else begin
        Harness.Runner.run h ~until:600.0;
        safe
        && Harness.Runner.check_total_order h = Ok ()
        && Harness.Runner.check_integrity h = Ok ()
        && min_delivered h > 0
      end)

(* ---- live restart + catch-up sync ---- *)

let test_restart_catches_up () =
  List.iter
    (fun seed ->
      let opts = { (Harness.Runner.default_options ~n:4) with seed } in
      let h = Harness.Runner.build opts in
      Harness.Runner.run h ~until:40.0;
      let before =
        Dagrider.Ordering.delivered_count
          (Dagrider.Node.ordering (Harness.Runner.node h 2))
      in
      Harness.Runner.restart_node h 2;
      checki "restored log carried over" before
        (Dagrider.Ordering.delivered_count
           (Dagrider.Node.ordering (Harness.Runner.node h 2)));
      Harness.Runner.run h ~until:100.0;
      assert_safe h;
      let after =
        Dagrider.Ordering.delivered_count
          (Dagrider.Node.ordering (Harness.Runner.node h 2))
      in
      checkb
        (Printf.sprintf "seed %d: restarted node kept delivering (%d -> %d)"
           seed before after)
        true (after > before + 10);
      (* it caught back up with the fleet, not just trickled *)
      let healthy =
        Dagrider.Ordering.delivered_count
          (Dagrider.Node.ordering (Harness.Runner.node h 0))
      in
      checkb
        (Printf.sprintf "seed %d: within reach of healthy peers (%d vs %d)"
           seed after healthy)
        true (after * 10 >= healthy * 8))
    [ 61; 62; 63 ]

let test_double_restart () =
  let opts = { (Harness.Runner.default_options ~n:4) with seed = 64 } in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:30.0;
  Harness.Runner.restart_node h 1;
  Harness.Runner.run h ~until:60.0;
  Harness.Runner.restart_node h 1;
  Harness.Runner.run h ~until:120.0;
  assert_safe h;
  checkb "progress through two restarts" true (min_delivered h > 40)

let test_restart_during_attack () =
  (* a node restarts while an active attacker is flooding the channel *)
  let opts =
    { (Harness.Runner.default_options ~n:7) with
      seed = 65;
      faults = [ Byzantine_attacker 6 ] }
  in
  let h = Harness.Runner.build opts in
  Harness.Runner.run h ~until:30.0;
  Harness.Runner.restart_node h 0;
  Harness.Runner.run h ~until:100.0;
  assert_safe h;
  checkb "restarted node fine despite attacker" true
    (Dagrider.Ordering.delivered_count
       (Dagrider.Node.ordering (Harness.Runner.node h 0))
    > 30)

(* ---- run_until_delivered helper ---- *)

let test_run_until_delivered () =
  let opts = { (Harness.Runner.default_options ~n:4) with seed = 18 } in
  let h = Harness.Runner.build opts in
  match Harness.Runner.run_until_delivered h ~count:20 ~max_time:200.0 with
  | Some t ->
    checkb "completed in reasonable time" true (t < 100.0);
    checkb "count reached" true (min_delivered h >= 20)
  | None -> Alcotest.fail "never delivered 20 vertices"

let () =
  Alcotest.run "integration"
    [ ("matrix", matrix_cases);
      ( "scale",
        [ Alcotest.test_case "n=10" `Slow test_larger_system;
          Alcotest.test_case "n=16 stress" `Slow test_stress_n16 ] );
      ( "determinism",
        [ Alcotest.test_case "same seed replays" `Quick test_determinism_same_seed;
          Alcotest.test_case "seeds safe" `Quick test_different_seeds_still_safe ] );
      ( "faults",
        [ Alcotest.test_case "f crashes tolerated" `Quick test_f_crashes_tolerated;
          Alcotest.test_case "f+1 crashes halt safely" `Quick
            test_fplus1_crashes_halt_but_stay_safe ] );
      ( "validity",
        [ Alcotest.test_case "all correct blocks ordered" `Quick
            test_validity_all_correct_blocks_ordered;
          Alcotest.test_case "censored process ordered" `Quick
            test_censored_process_still_ordered;
          Alcotest.test_case "weak edges ablation" `Slow
            test_weak_edges_off_starves_victim ] );
      ( "quality",
        [ Alcotest.test_case "chain quality" `Quick test_chain_quality_with_byzantine_live;
          Alcotest.test_case "leader agreement depth" `Quick
            test_committed_leader_sequences_agree;
          Alcotest.test_case "claim 6 commit rate" `Quick test_claim6_commit_rate ] );
      ( "gc",
        [ Alcotest.test_case "gc preserves output" `Quick test_gc_preserves_output;
          Alcotest.test_case "gc prunes" `Quick test_gc_actually_prunes ] );
      ( "ablation",
        [ Alcotest.test_case "quorum below f+1 diverges" `Quick
            test_quorum_below_fplus1_diverges ] );
      ( "attacker",
        [ Alcotest.test_case "active attacker tolerated" `Quick
            test_active_attacker_tolerated;
          Alcotest.test_case "attacker + crash at bound" `Quick
            test_attacker_with_crash_at_bound ] );
      ( "coin-in-dag",
        [ Alcotest.test_case "safety + zero coin traffic" `Quick
            test_coin_in_dag_equivalent_safety;
          Alcotest.test_case "with crashes" `Quick test_coin_in_dag_with_crashes;
          Alcotest.test_case "same leader sequence" `Quick
            test_coin_in_dag_same_leaders_as_separate ] );
      ( "property",
        [ (* pinned RNG: the sampled configurations/schedules are a pure
             function of this seed, like every other run in the repo —
             QCHECK_SEED still overrides for exploration *)
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 42 |])
            prop_safety_across_random_configs;
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 42 |])
            prop_safety_under_fuzzed_schedules ] );
      ( "restart",
        [ Alcotest.test_case "catches up after restart" `Quick test_restart_catches_up;
          Alcotest.test_case "double restart" `Quick test_double_restart;
          Alcotest.test_case "restart during attack" `Quick
            test_restart_during_attack ] );
      ( "harness",
        [ Alcotest.test_case "run_until_delivered" `Quick test_run_until_delivered ] )
    ]
