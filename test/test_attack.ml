(* Byzantine adversary suite: each attacker strategy runs against the
   real protocol stack and the oracles prove the paper's guarantees
   survive — equivocations end up excluded or converged, withholding
   and leader-biasing cannot break safety or chain quality, and the
   hardened catch-up path starves a lying sync responder that a
   deliberately weakened (trusting) validator provably falls for. *)

let checkb = Alcotest.(check bool)

let assert_ok = function
  | Ok () -> ()
  | Error e -> Alcotest.fail e

(* run a fleet with [faults], capturing commits for the oracle sweep *)
let run_attacked ?(n = 4) ?(seed = 7) ?(backend = Harness.Runner.Bracha)
    ?(sync_trusting = false) ?trace ?restart ~faults ~until () =
  let commits = ref [] in
  let options =
    { (Harness.Runner.default_options ~n) with
      seed;
      backend;
      faults;
      sync_trusting;
      trace;
      on_commit =
        Some
          (fun ~node c ->
            commits :=
              { Check.Oracle.cr_node = node;
                cr_wave = c.Dagrider.Ordering.wave;
                cr_leader = Dagrider.Vertex.vref_of c.Dagrider.Ordering.leader;
                cr_direct = c.Dagrider.Ordering.direct }
              :: !commits) }
  in
  let t = Harness.Runner.build options in
  (match restart with
  | None -> Harness.Runner.run t ~until
  | Some (at, node) ->
    Harness.Runner.run t ~until:at;
    Harness.Runner.restart_node t node;
    Harness.Runner.run t ~until);
  (t, !commits)

let correct_dags t =
  List.map
    (fun i -> (i, Dagrider.Node.dag (Harness.Runner.node t i)))
    (Harness.Runner.correct_indices t)

let fleet_violations t commits =
  Check.Oracle.check_fleet ~runner:t ~commits ~expect_validity:false

(* ---- equivocation: excluded or converged, per backend ---- *)

let test_equivocation_outcomes backend () =
  let spec = { Attack.strategy = Attack.Equivocate; victims = [ 1 ] } in
  let t, commits =
    run_attacked ~backend ~faults:[ Harness.Runner.Adversary (3, spec) ]
      ~until:80.0 ()
  in
  assert_ok (Harness.Runner.check_total_order t);
  assert_ok (Harness.Runner.check_integrity t);
  let reports = Harness.Runner.attack_reports t in
  checkb "attack report present" true (reports <> []);
  let forks =
    List.concat_map (fun r -> r.Harness.Runner.ar_forks) reports
  in
  checkb "attacker actually forked vertices" true (forks <> []);
  (* the tentpole oracle: every forked round is either absent from all
     correct DAGs or every correct DAG holds the same advertised copy *)
  checkb "fork outcomes clean" true
    (Check.Oracle.check_fork_outcomes ~reports ~dags:(correct_dags t) = []);
  checkb "full oracle sweep clean" true (fleet_violations t commits = [])

(* ---- withholding: victims stall but the fleet keeps ordering ---- *)

let test_withholding_cannot_stop_the_fleet () =
  let spec = { Attack.strategy = Attack.Withhold; victims = [ 0 ] } in
  let t, commits =
    run_attacked ~faults:[ Harness.Runner.Adversary (3, spec) ] ~until:90.0 ()
  in
  let reports = Harness.Runner.attack_reports t in
  checkb "withholding actions recorded" true
    (List.exists (fun r -> r.Harness.Runner.ar_actions > 0) reports);
  let refs = Harness.Runner.delivered_refs t in
  List.iter
    (fun i ->
      checkb
        (Printf.sprintf "p%d kept delivering" i)
        true
        (List.length refs.(i) > 0))
    (Harness.Runner.correct_indices t);
  checkb "full oracle sweep clean" true (fleet_violations t commits = [])

(* ---- grinding and biasing: fairness oracles stay green ---- *)

let test_leader_games_keep_chain_quality strategy () =
  let spec = { Attack.strategy; victims = [] } in
  let t, commits =
    run_attacked ~seed:11 ~faults:[ Harness.Runner.Adversary (2, spec) ]
      ~until:160.0 ()
  in
  assert_ok (Harness.Runner.check_total_order t);
  checkb "full oracle sweep clean (incl. chain quality)" true
    (fleet_violations t commits = [])

(* ---- the lying catch-up peer vs the hardened sync path ---- *)

let lying = { Attack.strategy = Attack.Lying_sync; victims = [] }

let test_hardened_sync_starves_the_liar () =
  let trace = Trace.create () in
  let t, commits =
    run_attacked ~seed:13 ~trace
      ~faults:[ Harness.Runner.Adversary (0, lying) ]
      ~restart:(30.0, 2) ~until:120.0 ()
  in
  let reports = Harness.Runner.attack_reports t in
  let lies = List.concat_map (fun r -> r.Harness.Runner.ar_lies) reports in
  checkb "the liar served corrupted sync state" true (lies <> []);
  (* every lie is rejected: typed rejection events fired and no correct
     DAG ended up holding a lied-about digest *)
  let rejects =
    List.filter
      (fun ev ->
        match ev.Trace.kind with Trace.Sync_reject _ -> true | _ -> false)
      (Trace.events trace)
  in
  checkb "typed sync rejections emitted" true (rejects <> []);
  checkb "lie exclusion holds" true
    (Check.Oracle.check_lie_exclusion ~reports ~dags:(correct_dags t) = []);
  (* the restarted process still caught up through honest responders *)
  let refs = Harness.Runner.delivered_refs t in
  let best =
    List.fold_left
      (fun acc i -> max acc (List.length refs.(i)))
      0
      (Harness.Runner.correct_indices t)
  in
  checkb "victim caught up despite the liar" true
    (List.length refs.(2) * 2 > best);
  checkb "full oracle sweep clean" true (fleet_violations t commits = [])

let test_trusting_sync_falls_for_the_liar () =
  (* the planted vulnerability: wind admission back to trusting any
     single responder and the same attack corrupts the restarted
     process — and the oracle must say so *)
  let t, _ =
    run_attacked ~seed:13 ~sync_trusting:true
      ~faults:[ Harness.Runner.Adversary (0, lying) ]
      ~restart:(30.0, 2) ~until:120.0 ()
  in
  let reports = Harness.Runner.attack_reports t in
  let caught =
    Check.Oracle.check_lie_exclusion ~reports ~dags:(correct_dags t)
  in
  checkb "oracle flags the corrupted catch-up" true (caught <> []);
  checkb "violations are classified sync-lie" true
    (List.for_all
       (fun v -> v.Check.Oracle.invariant = "sync-lie")
       caught)

(* ---- scenario plumbing: forced attacks and the planted mode ---- *)

let test_forced_attack_scenario_shape () =
  let spec = { Attack.strategy = Attack.Equivocate; victims = [] } in
  let sc = Check.Scenario.generate ~quick:true ~attack:spec ~seed:5 () in
  checkb "attack recorded" true (sc.Check.Scenario.attack <> None);
  checkb "marked forced" true sc.Check.Scenario.attack_forced;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec at i = i + nn <= nh && (String.sub hay i nn = needle || at (i + 1)) in
    at 0
  in
  checkb "described as forced" true
    (contains (Check.Scenario.describe sc) "attack(forced)");
  (* forcing is deterministic *)
  let sc' = Check.Scenario.generate ~quick:true ~attack:spec ~seed:5 () in
  Alcotest.(check string)
    "same seed, same attacked scenario"
    (Check.Scenario.describe sc) (Check.Scenario.describe sc')

let test_weaken_sync_scenario_is_planted () =
  let sc =
    Check.Scenario.generate ~quick:true
      ~attack:{ Attack.strategy = Attack.Lying_sync; victims = [] }
      ~weaken_sync:true ~seed:1 ()
  in
  checkb "weakening recorded" true sc.Check.Scenario.sync_weakened;
  checkb "options carry the weakening" true
    (Check.Scenario.to_options sc).Harness.Runner.sync_trusting;
  (* end to end: the swarm's oracles catch the planted corruption *)
  let outcome = Check.Swarm.run_scenario sc in
  checkb "planted corruption caught" true
    (List.exists
       (fun v ->
         v.Check.Oracle.invariant = "sync-lie"
         || v.Check.Oracle.invariant = "equivocation")
       outcome.Check.Swarm.violations)

let () =
  Alcotest.run "attack"
    [ ( "equivocation",
        [ Alcotest.test_case "bracha: excluded or converged" `Slow
            (test_equivocation_outcomes Harness.Runner.Bracha);
          Alcotest.test_case "avid: excluded or converged" `Slow
            (test_equivocation_outcomes Harness.Runner.Avid);
          Alcotest.test_case "gossip: excluded or converged" `Slow
            (test_equivocation_outcomes Harness.Runner.Gossip) ] );
      ( "withholding",
        [ Alcotest.test_case "fleet outlives the withholder" `Slow
            test_withholding_cannot_stop_the_fleet ] );
      ( "leader-games",
        [ Alcotest.test_case "grinding keeps chain quality" `Slow
            (test_leader_games_keep_chain_quality Attack.Grind);
          Alcotest.test_case "biasing keeps chain quality" `Slow
            (test_leader_games_keep_chain_quality Attack.Bias) ] );
      ( "lying-sync",
        [ Alcotest.test_case "hardened path starves the liar" `Slow
            test_hardened_sync_starves_the_liar;
          Alcotest.test_case "trusting path is flagged" `Slow
            test_trusting_sync_falls_for_the_liar ] );
      ( "scenario",
        [ Alcotest.test_case "forced attack shape" `Quick
            test_forced_attack_scenario_shape;
          Alcotest.test_case "weaken-sync is planted and caught" `Slow
            test_weaken_sync_scenario_is_planted ] ) ]
