(* Tests for the causal critical-path tracer: the PR's acceptance
   criterion (on a 500+-wave traced honest run, every commit's segment
   sum must reconcile with its end-to-end latency within one sim tick,
   cross-checked against the analyzer's stage histograms), the
   correlation-id JSONL round-trip, backward compatibility with
   pre-correlation-id trace files, straggler attribution under a
   deliberately slowed node, and JSONL-replay parity with live
   collection. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let contains haystack needle =
  let h = String.length haystack and n = String.length needle in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let build_traced ?(n = 4) ?(seed = 42) ?(until = 60.0) ?(capacity = 4096)
    ?(schedule = Harness.Runner.Synchronous) ?(backend = Harness.Runner.Bracha)
    ?gc_depth ?(block_bytes = 32) ?(faults = []) ?(workload = None) () =
  let tracer = Trace.create ~capacity () in
  let fleet =
    Harness.Runner.build
      { (Harness.Runner.default_options ~n) with
        seed;
        schedule;
        backend;
        gc_depth;
        block_bytes;
        faults;
        workload;
        trace = Some tracer }
  in
  Harness.Runner.run fleet ~until;
  (fleet, tracer)

let report_of fleet =
  match Harness.Runner.critpath_report fleet with
  | Some r -> r
  | None -> Alcotest.fail "traced fleet has no critpath collector"

(* ---- acceptance: 500+-wave run reconciles within one tick ---- *)

let test_reconciles_500_waves () =
  let fleet, _ =
    build_traced ~schedule:Harness.Runner.Uniform_random ~block_bytes:0
      ~gc_depth:8 ~until:4000.0 ()
  in
  let ar = Option.get (Harness.Runner.analysis fleet) in
  checkb "500+ waves resolved" true (ar.Analyze.r_waves_resolved >= 500);
  let r = report_of fleet in
  checkb "500+ commits reconstructed" true (List.length r.Critpath.r_paths >= 500);
  checki "every commit has a complete causal chain"
    (List.length r.Critpath.r_paths)
    r.Critpath.r_complete;
  checki "every segment sum reconciles within one tick"
    r.Critpath.r_complete r.Critpath.r_reconciled;
  checkb "max residual within one tick" true (r.Critpath.r_max_residual <= 1.0);
  (* the cross-check against the analyzer's stage histograms: counts
     and means must agree on every shared stage *)
  let lines = Critpath.cross_check r ar in
  checkb "cross-check produced stage lines" true (List.length lines >= 5);
  List.iter
    (fun line ->
      checkb ("stage agrees: " ^ line) true
        (String.length line >= 2 && String.sub line 0 2 = "ok"))
    lines;
  (* segment aggregates are populated and coherent *)
  let seg name =
    match List.assoc_opt name r.Critpath.r_segments with
    | Some s -> s
    | None -> Alcotest.fail ("missing segment " ^ name)
  in
  List.iter
    (fun name ->
      let s = seg name in
      checkb (name ^ " populated") true (s.Analyze.s_count > 0);
      checkb (name ^ " non-negative") true (s.Analyze.s_mean >= 0.0))
    [ "handler-hold"; "transit"; "quorum-wait"; "dag-wait"; "order-wait";
      "total" ]

(* ---- correlation ids survive the JSONL round-trip ---- *)

let arb_wire_event =
  let open QCheck in
  let gen =
    Gen.(
      let* src = int_bound 9 in
      let* dst = int_bound 9 in
      let* id = map (fun i -> i - 1) (int_bound 500) in
      let* cause = map (fun i -> i - 1) (int_bound 500) in
      let* kind =
        oneofl
          [ Trace.Send { src; dst; msg_kind = "bracha-echo"; bits = 64; id };
            Trace.Recv { src; dst; msg_kind = "bracha-ready"; id };
            Trace.Drop { src; dst; msg_kind = "avid-echo"; reason = "fault"; id };
            Trace.Retransmit
              { src; dst; msg_kind = "gossip-relay"; seq = 3; attempt = 2; id };
            Trace.Corrupt_reject { src; dst; msg_kind = "bracha-init"; id } ]
      in
      let* seq = int_bound 10_000 in
      let* time = Gen.float_bound_inclusive 1000.0 in
      Gen.return { Trace.seq; time; cause; kind })
  in
  QCheck.make ~print:(fun e -> Stdx.Json.to_string (Trace.event_to_json e)) gen

let prop_jsonl_round_trip_ids =
  QCheck.Test.make ~name:"jsonl round-trips id and cause fields" ~count:500
    arb_wire_event (fun e ->
      match Trace.event_of_json (Trace.event_to_json e) with
      | Error msg -> QCheck.Test.fail_report msg
      | Ok e' ->
        e'.Trace.seq = e.Trace.seq
        && e'.Trace.cause = e.Trace.cause
        && e'.Trace.kind = e.Trace.kind)

(* ---- pre-correlation-id trace files still parse and analyze ---- *)

(* strip one "field":value pair (and the comma that binds it) from a
   JSON line — enough to regenerate the JSONL a pre-correlation-id
   build would have written *)
let strip_field name line =
  let needle = Printf.sprintf "\"%s\":" name in
  let nlen = String.length needle in
  let llen = String.length line in
  let rec find i =
    if i + nlen > llen then None
    else if String.sub line i nlen = needle then Some i
    else find (i + 1)
  in
  match find 0 with
  | None -> line
  | Some start ->
    let stop = ref (start + nlen) in
    while
      !stop < llen && (match line.[!stop] with '-' | '0' .. '9' -> true | _ -> false)
    do
      incr stop
    done;
    let stop = !stop in
    if start > 0 && line.[start - 1] = ',' then
      String.sub line 0 (start - 1) ^ String.sub line stop (llen - stop)
    else if stop < llen && line.[stop] = ',' then
      String.sub line 0 start ^ String.sub line (stop + 1) (llen - stop - 1)
    else String.sub line 0 start ^ String.sub line stop (llen - stop)

let test_pre_id_trace_replays () =
  let _, tracer = build_traced ~capacity:100_000 ~until:60.0 () in
  let stripped =
    String.concat "\n"
      (List.map
         (fun line -> strip_field "cause" (strip_field "id" line))
         (String.split_on_char '\n' (Trace.to_jsonl tracer)))
  in
  checkb "surgery removed the id fields" true
    (not
       (List.exists
          (fun line ->
            strip_field "id" line <> line || strip_field "cause" line <> line)
          (String.split_on_char '\n' stripped)));
  let events =
    match Trace.events_of_jsonl stripped with
    | Ok evs -> evs
    | Error msg -> Alcotest.fail ("pre-id trace rejected: " ^ msg)
  in
  checki "every event survived the strip" (List.length (Trace.events tracer))
    (List.length events);
  List.iter
    (fun e ->
      checki "missing cause defaults to -1" (-1) e.Trace.cause;
      match e.Trace.kind with
      | Trace.Send { id; _ } | Trace.Recv { id; _ } | Trace.Drop { id; _ }
      | Trace.Retransmit { id; _ } | Trace.Corrupt_reject { id; _ } ->
        checki "missing id defaults to -1" (-1) id
      | _ -> ())
    events;
  (* the analyzer and forensics run unchanged on the old format... *)
  let ar = Analyze.analyze events in
  let ar_fresh = Analyze.analyze (Trace.events tracer) in
  checki "analyzer orders the same log" ar_fresh.Analyze.r_ordered
    ar.Analyze.r_ordered;
  checki "analyzer resolves the same waves" ar_fresh.Analyze.r_waves_resolved
    ar.Analyze.r_waves_resolved;
  let fx = Forensics.of_events events in
  checkb "forensics still builds stories" true (Forensics.nodes fx <> []);
  (* ...and the critical-path tracer degrades gracefully: landmarks
     resolve (so per-commit dag/order segments exist) but no causal
     chain can be walked without ids *)
  let r = Critpath.analyze events in
  checkb "commits still reconstructed" true (r.Critpath.r_paths <> []);
  checki "no chain is complete without ids" 0 r.Critpath.r_complete;
  checkb "incomplete reasons reported" true (r.Critpath.r_incomplete <> [])

(* ---- straggler attribution: a slowed node dominates quorum waits ---- *)

(* delaying one node of n=4 alone is NOT enough to put it on the
   critical path: the 2f+1 quorum completes with the three fast nodes
   and the protocol never waits for the laggard (which is DAG-Rider's
   whole point). Crashing one fast node forces the quorum to include
   the slowed one, so every commit's quorum wait is charged to it. *)
let test_straggler_named () =
  let slow_node = 3 in
  let schedule =
    Harness.Runner.Custom
      (fun rng ->
        Net.Sched.delay_process
          ~inner:(Net.Sched.uniform_random ~rng)
          ~victim:slow_node ~factor:4.0)
  in
  let fleet, _ =
    build_traced ~seed:7 ~schedule ~faults:[ Harness.Runner.Crash 1 ]
      ~until:400.0 ()
  in
  let r = report_of fleet in
  checkb "run produced commits" true (List.length r.Critpath.r_paths >= 20);
  checkb "chains complete under the slow schedule" true
    (r.Critpath.r_complete > 0);
  match r.Critpath.r_stragglers with
  | (node, count, waited) :: _ ->
    checki "slowed node dominates quorum waits" slow_node node;
    checkb "it straggled on most commits" true
      (count * 2 > r.Critpath.r_complete);
    checkb "accumulated wait is positive" true (waited > 0.0)
  | [] -> Alcotest.fail "no stragglers attributed"

(* ---- workload runs attribute per-tx mempool dwell ---- *)

let test_mempool_dwell_attributed () =
  let fleet, _ =
    build_traced ~capacity:100_000
      ~workload:(Some Harness.Runner.default_workload) ~until:60.0 ()
  in
  let r = report_of fleet in
  checkb "commits reconstructed" true (r.Critpath.r_complete > 0);
  let with_txs =
    List.filter (fun p -> p.Critpath.p_txs > 0) r.Critpath.r_paths
  in
  checkb "some commits carry attributed txs" true (with_txs <> []);
  List.iter
    (fun p ->
      checkb "per-tx dwell is non-negative" true (p.Critpath.p_tx_wait >= 0.0))
    with_txs;
  (* mempool-wait leads the segment table on workload runs... *)
  (match r.Critpath.r_segments with
  | ("mempool-wait", s) :: _ ->
    checkb "mempool-wait populated" true (s.Analyze.s_count > 0);
    checkb "mempool-wait mean non-negative" true (s.Analyze.s_mean >= 0.0)
  | _ -> Alcotest.fail "mempool-wait segment missing on a workload run");
  (* ...without perturbing reconciliation: dwell is pre-creation time,
     outside the telescoping segments *)
  checki "reconciliation unaffected by workload attribution"
    r.Critpath.r_complete r.Critpath.r_reconciled;
  (* and the waterfall header carries the tx info *)
  (match List.find_opt (fun p -> p.Critpath.p_txs > 0) r.Critpath.r_paths with
  | Some p -> checkb "waterfall shows mempool wait" true
      (contains (Critpath.waterfall p) "mempool wait")
  | None -> ());
  (* a workload-free run reports no mempool-wait segment at all *)
  let fleet0, _ = build_traced ~until:30.0 () in
  let r0 = report_of fleet0 in
  checkb "no mempool-wait segment without a workload" true
    (List.assoc_opt "mempool-wait" r0.Critpath.r_segments = None)

(* ---- JSONL replay matches live collection ---- *)

let test_replay_matches_live () =
  let fleet, tracer = build_traced ~capacity:100_000 ~until:60.0 () in
  let live = report_of fleet in
  let file = Filename.temp_file "critpath" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      let oc = open_out file in
      output_string oc (Trace.to_jsonl tracer);
      close_out oc;
      let replay =
        match
          Critpath.of_jsonl_file
            ~config:
              { Critpath.default_config with
                observer = Some live.Critpath.r_observer }
            file
        with
        | Ok r -> r
        | Error msg -> Alcotest.fail msg
      in
      checki "same observer" live.Critpath.r_observer replay.Critpath.r_observer;
      checki "same commit count"
        (List.length live.Critpath.r_paths)
        (List.length replay.Critpath.r_paths);
      checki "same complete count" live.Critpath.r_complete
        replay.Critpath.r_complete;
      checki "same reconciled count" live.Critpath.r_reconciled
        replay.Critpath.r_reconciled;
      (* segment means agree to the digit the reports print *)
      List.iter2
        (fun (name, (a : Analyze.summary)) (name', (b : Analyze.summary)) ->
          checkb ("segment list aligned: " ^ name) true (name = name');
          checki ("segment n: " ^ name) a.Analyze.s_count b.Analyze.s_count;
          checkb ("segment mean: " ^ name) true
            (Float.abs (a.Analyze.s_mean -. b.Analyze.s_mean) < 1e-9))
        live.Critpath.r_segments replay.Critpath.r_segments)

(* ---- rendering smoke: waterfall, report, DOT ---- *)

let test_render_and_dot () =
  let fleet, _ = build_traced ~until:60.0 () in
  let r = report_of fleet in
  let txt = Critpath.render ~top:2 r in
  checkb "render names the observer" true
    (String.length txt > 0
    && contains txt
         (Printf.sprintf "observer p%d" r.Critpath.r_observer));
  checkb "render carries the reconciliation line" true
    (contains txt "reconciled");
  match List.find_opt (fun p -> p.Critpath.p_complete) r.Critpath.r_paths with
  | None -> Alcotest.fail "no complete path to render"
  | Some p ->
    let wf = Critpath.waterfall p in
    checkb "waterfall shows the quorum segment" true
      (contains wf "quorum wait");
    checkb "waterfall states the residual" true
      (contains wf "residual");
    let dot = Critpath.dot_path p in
    checkb "dot opens a digraph" true (contains dot "digraph");
    checkb "dot chains into a_deliver" true
      (contains dot "adeliver");
    checkb "dot styles come from the render palette" true
      (contains dot "fillcolor=gold")

let () =
  Alcotest.run "critpath"
    [ ( "acceptance",
        [ Alcotest.test_case "500+ waves reconcile within a tick" `Slow
            test_reconciles_500_waves ] );
      ( "jsonl",
        [ QCheck_alcotest.to_alcotest prop_jsonl_round_trip_ids;
          Alcotest.test_case "pre-id traces still analyze" `Quick
            test_pre_id_trace_replays;
          Alcotest.test_case "replay matches live" `Quick
            test_replay_matches_live ] );
      ( "attribution",
        [ Alcotest.test_case "slowed node named as straggler" `Quick
            test_straggler_named;
          Alcotest.test_case "workload runs attribute mempool dwell" `Quick
            test_mempool_dwell_attributed ] );
      ( "render",
        [ Alcotest.test_case "waterfall, report and dot" `Quick
            test_render_and_dot ] )
    ]
