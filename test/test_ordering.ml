(* Tests for the ordering layer (Algorithm 3) over hand-constructed
   DAGs, including a faithful reconstruction of the paper's Figure 2
   cross-wave commit scenario. n = 4, f = 1 throughout. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

let vref round source = { Dagrider.Vertex.round; source }

let add dag ~round ~source ?(block = "") ~strong ?(weak = []) () =
  Dagrider.Dag.add dag
    { Dagrider.Vertex.round;
      source;
      block;
      strong_edges = List.map (fun (r, s) -> vref r s) strong;
      weak_edges = List.map (fun (r, s) -> vref r s) weak }

let full_round dag ~round =
  let prev =
    List.map
      (fun v ->
        let r = Dagrider.Vertex.vref_of v in
        (r.Dagrider.Vertex.round, r.Dagrider.Vertex.source))
      (Dagrider.Dag.round_vertices dag (round - 1))
  in
  for source = 0 to 3 do
    add dag ~round ~source ~block:(Printf.sprintf "b%d.%d" round source)
      ~strong:prev ()
  done

let full_dag ~rounds =
  let dag = Dagrider.Dag.create ~n:4 in
  for r = 1 to rounds do
    full_round dag ~round:r
  done;
  dag

(* most tests exercise the paper's rule: 4-round waves, 2f+1 quorum *)
let commit_rule_met ?(wave_length = 4) ?commit_quorum ~dag ~f ~wave ~leader () =
  let commit_quorum =
    match commit_quorum with Some q -> q | None -> (2 * f) + 1
  in
  Dagrider.Ordering.commit_rule_met ~wave_length ~commit_quorum ~dag ~wave
    ~leader

(* ---- helpers of the module ---- *)

let test_round_of () =
  checki "round(1,1)" 1 (Dagrider.Ordering.round_of ~wave_length:4 ~wave:1 ~k:1);
  checki "round(1,4)" 4 (Dagrider.Ordering.round_of ~wave_length:4 ~wave:1 ~k:4);
  checki "round(2,1)" 5 (Dagrider.Ordering.round_of ~wave_length:4 ~wave:2 ~k:1);
  checki "round(3,4)" 12
    (Dagrider.Ordering.round_of ~wave_length:4 ~wave:3 ~k:4);
  (* wave_length 2 (Bullshark): wave w covers rounds 2w-1 and 2w *)
  checki "L2 round(1,1)" 1
    (Dagrider.Ordering.round_of ~wave_length:2 ~wave:1 ~k:1);
  checki "L2 round(1,2)" 2
    (Dagrider.Ordering.round_of ~wave_length:2 ~wave:1 ~k:2);
  checki "L2 round(2,1)" 3
    (Dagrider.Ordering.round_of ~wave_length:2 ~wave:2 ~k:1);
  checki "L2 round(5,2)" 10
    (Dagrider.Ordering.round_of ~wave_length:2 ~wave:5 ~k:2);
  Alcotest.check_raises "k out of range"
    (Invalid_argument "Ordering.round_of: k out of wave") (fun () ->
      ignore (Dagrider.Ordering.round_of ~wave_length:4 ~wave:1 ~k:5));
  (* off-by-one guard: k = 3 fits a 4-round wave but not a 2-round one *)
  Alcotest.check_raises "L2 k=3 out of wave"
    (Invalid_argument "Ordering.round_of: k out of wave") (fun () ->
      ignore (Dagrider.Ordering.round_of ~wave_length:2 ~wave:1 ~k:3))

let test_wave_of_completed_round () =
  Alcotest.(check (option int)) "round 4 ends wave 1" (Some 1)
    (Dagrider.Ordering.wave_of_completed_round ~wave_length:4 4);
  Alcotest.(check (option int)) "round 8 ends wave 2" (Some 2)
    (Dagrider.Ordering.wave_of_completed_round ~wave_length:4 8);
  Alcotest.(check (option int)) "round 5 ends nothing" None
    (Dagrider.Ordering.wave_of_completed_round ~wave_length:4 5);
  Alcotest.(check (option int)) "round 0 ends nothing" None
    (Dagrider.Ordering.wave_of_completed_round ~wave_length:4 0);
  (* wave_length 2: every even round ends a wave, odd rounds end none *)
  Alcotest.(check (option int)) "L2 round 2 ends wave 1" (Some 1)
    (Dagrider.Ordering.wave_of_completed_round ~wave_length:2 2);
  Alcotest.(check (option int)) "L2 round 6 ends wave 3" (Some 3)
    (Dagrider.Ordering.wave_of_completed_round ~wave_length:2 6);
  Alcotest.(check (option int)) "L2 round 1 ends nothing" None
    (Dagrider.Ordering.wave_of_completed_round ~wave_length:2 1);
  Alcotest.(check (option int)) "L2 round 7 ends nothing" None
    (Dagrider.Ordering.wave_of_completed_round ~wave_length:2 7)

let test_leader_vertex_lookup () =
  let dag = full_dag ~rounds:4 in
  (match
     Dagrider.Ordering.leader_vertex ~wave_length:4 ~dag ~wave:1
       ~leader_source:2
   with
  | Some v ->
    checki "round" 1 v.Dagrider.Vertex.round;
    checki "source" 2 v.Dagrider.Vertex.source
  | None -> Alcotest.fail "leader should exist");
  checkb "absent leader" true
    (Dagrider.Ordering.leader_vertex ~wave_length:4 ~dag ~wave:2
       ~leader_source:0
    = None);
  (* L2: wave 2's leader sits in round 3, not round 5 *)
  (match
     Dagrider.Ordering.leader_vertex ~wave_length:2 ~dag ~wave:2
       ~leader_source:1
   with
  | Some v -> checki "L2 wave-2 leader round" 3 v.Dagrider.Vertex.round
  | None -> Alcotest.fail "L2 leader should exist")

(* ---- the rule records ---- *)

let test_rule_records () =
  let dr = Dagrider.Ordering.dag_rider and bs = Dagrider.Ordering.bullshark in
  checki "dagrider wave length" 4 dr.Dagrider.Ordering.rule_wave_length;
  checki "bullshark wave length" 2 bs.Dagrider.Ordering.rule_wave_length;
  checki "dagrider quorum" 3 (Dagrider.Ordering.quorum_of dr ~f:1);
  checki "bullshark quorum" 2 (Dagrider.Ordering.quorum_of bs ~f:1);
  checki "dagrider quorum f=3" 7 (Dagrider.Ordering.quorum_of dr ~f:3);
  checki "bullshark quorum f=3" 4 (Dagrider.Ordering.quorum_of bs ~f:3);
  checkb "lookup dagrider" true
    (Dagrider.Ordering.rule_of_name "dagrider" = Some dr);
  checkb "lookup bullshark" true
    (Dagrider.Ordering.rule_of_name "bullshark" = Some bs);
  checkb "lookup unknown" true (Dagrider.Ordering.rule_of_name "hotstuff" = None);
  (* the round-robin schedule wraps over n and starts at process 0 *)
  checki "rr wave 1" 0 (Dagrider.Ordering.round_robin_leader ~n:4 ~wave:1);
  checki "rr wave 4" 3 (Dagrider.Ordering.round_robin_leader ~n:4 ~wave:4);
  checki "rr wave 5 wraps" 0 (Dagrider.Ordering.round_robin_leader ~n:4 ~wave:5);
  Alcotest.check_raises "rr wave 0 rejected"
    (Invalid_argument "Ordering.round_robin_leader: wave must be >= 1")
    (fun () -> ignore (Dagrider.Ordering.round_robin_leader ~n:4 ~wave:0))

let test_create_from_rule () =
  let ord = Dagrider.Ordering.create ~rule:Dagrider.Ordering.bullshark ~f:1 () in
  checki "wave length from rule" 2 (Dagrider.Ordering.wave_length ord);
  checki "quorum from rule" 2 (Dagrider.Ordering.commit_quorum ord);
  checkb "rule retained" true
    (Dagrider.Ordering.rule ord = Dagrider.Ordering.bullshark);
  (* overrides apply on top of the rule *)
  let ord2 =
    Dagrider.Ordering.create ~rule:Dagrider.Ordering.bullshark ~wave_length:6
      ~commit_quorum:1 ~f:1 ()
  in
  checki "wave length override" 6 (Dagrider.Ordering.wave_length ord2);
  checki "quorum override" 1 (Dagrider.Ordering.commit_quorum ord2);
  checki "rule reflects override" 6
    (Dagrider.Ordering.rule ord2).Dagrider.Ordering.rule_wave_length

(* ---- commit rule ---- *)

let test_commit_rule_full_dag () =
  let dag = full_dag ~rounds:4 in
  let leader = Option.get (Dagrider.Dag.find dag (vref 1 0)) in
  checkb "full support" true
    (commit_rule_met ~dag ~f:1 ~wave:1 ~leader ())

let test_commit_rule_insufficient_support () =
  (* round 4 has only 2 vertices with a strong path to the leader *)
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~round:1;
  (* rounds 2,3: only sources 1..3 include leader (1,0)... simpler:
     rounds 2-3 full, then round 4 with only two vertices *)
  full_round dag ~round:2;
  full_round dag ~round:3;
  for source = 0 to 1 do
    add dag ~round:4 ~source ~strong:[ (3, 0); (3, 1); (3, 2) ] ()
  done;
  let leader = Option.get (Dagrider.Dag.find dag (vref 1 0)) in
  checkb "2 < 2f+1" false
    (commit_rule_met ~dag ~f:1 ~wave:1 ~leader ())

let test_commit_rule_exact_boundary () =
  let dag = Dagrider.Dag.create ~n:4 in
  for r = 1 to 3 do
    full_round dag ~round:r
  done;
  for source = 0 to 2 do
    add dag ~round:4 ~source ~strong:[ (3, 0); (3, 1); (3, 2) ] ()
  done;
  let leader = Option.get (Dagrider.Dag.find dag (vref 1 0)) in
  checkb "exactly 2f+1" true
    (commit_rule_met ~dag ~f:1 ~wave:1 ~leader ());
  checkb "stricter quorum fails" false
    (commit_rule_met ~commit_quorum:4 ~dag ~f:1 ~wave:1 ~leader ())

(* ---- process_wave ---- *)

let test_process_wave_commits_full () =
  let dag = full_dag ~rounds:4 in
  let ord = Dagrider.Ordering.create ~f:1 () in
  let commits =
    Dagrider.Ordering.process_wave ord ~dag ~wave:1 ~choose_leader:(fun _ -> 2)
  in
  checki "one commit" 1 (List.length commits);
  let c = List.hd commits in
  checki "wave" 1 c.Dagrider.Ordering.wave;
  checkb "direct" true c.Dagrider.Ordering.direct;
  (* the wave-1 leader sits in round 1: its causal history is itself *)
  checki "delivered count" 1 (List.length c.Dagrider.Ordering.delivered);
  checkb "leader delivered" true
    (Dagrider.Vertex.vref_of (List.hd c.Dagrider.Ordering.delivered) = vref 1 2);
  checki "decided wave" 1 (Dagrider.Ordering.decided_wave ord);
  (* a wave-2 commit then delivers the rest of rounds 1-5 reachable from
     its leader *)
  let dag8 = full_dag ~rounds:8 in
  let ord2 = Dagrider.Ordering.create ~f:1 () in
  let c2 =
    Dagrider.Ordering.process_wave ord2 ~dag:dag8 ~wave:2 ~choose_leader:(fun _ -> 0)
  in
  (* wave 1's leader is chained first (strong path exists in a full
     DAG); then wave 2's leader delivers the rest of rounds 1-5 it
     reaches: 16 + 1 - 1 already delivered = 16 fresh vertices *)
  checki "two commits" 2 (List.length c2);
  checki "wave-1 chain delivers leader" 1
    (List.length (List.nth c2 0).Dagrider.Ordering.delivered);
  checki "wave-2 history size" 16
    (List.length (List.nth c2 1).Dagrider.Ordering.delivered)

let test_process_wave_no_leader_vertex () =
  let dag = full_dag ~rounds:4 in
  (* remove nothing; ask for a leader source with no round-5 vertex in
     wave 2 (incomplete wave) *)
  let ord = Dagrider.Ordering.create ~f:1 () in
  let commits =
    Dagrider.Ordering.process_wave ord ~dag ~wave:2 ~choose_leader:(fun _ -> 0)
  in
  checki "no commits" 0 (List.length commits);
  checki "wave not decided" 0 (Dagrider.Ordering.decided_wave ord)

let test_process_wave_idempotent_and_monotonic () =
  let dag = full_dag ~rounds:8 in
  let ord = Dagrider.Ordering.create ~f:1 () in
  let c1 =
    Dagrider.Ordering.process_wave ord ~dag ~wave:1 ~choose_leader:(fun _ -> 0)
  in
  checki "first commit" 1 (List.length c1);
  (* re-processing the same wave does nothing *)
  let c1' =
    Dagrider.Ordering.process_wave ord ~dag ~wave:1 ~choose_leader:(fun _ -> 0)
  in
  checki "idempotent" 0 (List.length c1');
  let c2 =
    Dagrider.Ordering.process_wave ord ~dag ~wave:2 ~choose_leader:(fun _ -> 1)
  in
  checki "second wave commits" 1 (List.length c2);
  (* no vertex delivered twice across waves *)
  let log = Dagrider.Ordering.delivered_log ord in
  let refs = List.map Dagrider.Vertex.vref_of log in
  checki "no duplicates" (List.length refs)
    (List.length (List.sort_uniq Dagrider.Vertex.compare_vref refs))

let test_delivered_log_is_causal () =
  (* every vertex appears after everything in its causal history *)
  let dag = full_dag ~rounds:8 in
  let ord = Dagrider.Ordering.create ~f:1 () in
  ignore (Dagrider.Ordering.process_wave ord ~dag ~wave:1 ~choose_leader:(fun _ -> 0));
  ignore (Dagrider.Ordering.process_wave ord ~dag ~wave:2 ~choose_leader:(fun _ -> 3));
  let log = Dagrider.Ordering.delivered_log ord in
  let position = Hashtbl.create 64 in
  List.iteri
    (fun i v -> Hashtbl.add position (Dagrider.Vertex.vref_of v) i)
    log;
  List.iteri
    (fun i v ->
      List.iter
        (fun (e : Dagrider.Vertex.vref) ->
          if e.Dagrider.Vertex.round >= 1 then
            match Hashtbl.find_opt position e with
            | Some j ->
              checkb
                (Printf.sprintf "edge target before vertex (%d < %d)" j i)
                true (j < i)
            | None -> Alcotest.fail "edge target missing from log")
        (v.Dagrider.Vertex.strong_edges @ v.Dagrider.Vertex.weak_edges))
    log

(* ---- the Figure 2 scenario ---- *)

(* Build the paper's Figure 2 situation explicitly:
   - wave 2's leader a1 = (5, 1) is reachable from only 2 < 2f+1 round-8
     vertices, so wave 2 does not commit directly;
   - wave 3's leader e = (9, L3) has full round-12 support and a strong
     path to a1, so processing wave 3 commits a1 first, then e. *)
let build_fig2_dag () =
  let dag = Dagrider.Dag.create ~n:4 in
  (* wave 1: full rounds 1-4 *)
  for r = 1 to 4 do
    full_round dag ~round:r
  done;
  (* wave 2, round 5 (= round(2,1)): all four vertices; leader will be a1 *)
  full_round dag ~round:5;
  (* round 6: only b0 references a1 = (5,1) *)
  add dag ~round:6 ~source:0 ~strong:[ (5, 0); (5, 1); (5, 2) ] ();
  for source = 1 to 3 do
    add dag ~round:6 ~source ~strong:[ (5, 0); (5, 2); (5, 3) ] ()
  done;
  (* round 7: only c0 references b0 *)
  add dag ~round:7 ~source:0 ~strong:[ (6, 0); (6, 1); (6, 2) ] ();
  for source = 1 to 3 do
    add dag ~round:7 ~source ~strong:[ (6, 1); (6, 2); (6, 3) ] ()
  done;
  (* round 8: d0, d1 reference c0 (reach a1); d2, d3 avoid it *)
  add dag ~round:8 ~source:0 ~strong:[ (7, 0); (7, 1); (7, 2) ] ();
  add dag ~round:8 ~source:1 ~strong:[ (7, 0); (7, 2); (7, 3) ] ();
  add dag ~round:8 ~source:2 ~strong:[ (7, 1); (7, 2); (7, 3) ] ();
  add dag ~round:8 ~source:3 ~strong:[ (7, 1); (7, 2); (7, 3) ] ();
  (* wave 3: rounds 9-12, full; round 9 includes d0 so the wave-3 leader
     reaches a1 *)
  for r = 9 to 12 do
    full_round dag ~round:r
  done;
  dag

let fig2_leaders wave =
  match wave with
  | 2 -> 1 (* a1 = (5, 1) *)
  | 3 -> 2 (* e = (9, 2) *)
  | _ -> 0

let test_fig2_wave2_support_is_two () =
  let dag = build_fig2_dag () in
  let a1 = Option.get (Dagrider.Dag.find dag (vref 5 1)) in
  let support =
    List.filter
      (fun v ->
        Dagrider.Dag.strong_path dag (Dagrider.Vertex.vref_of v)
          (Dagrider.Vertex.vref_of a1))
      (Dagrider.Dag.round_vertices dag 8)
  in
  checki "exactly 2 supporters" 2 (List.length support);
  checkb "commit rule not met" false
    (commit_rule_met ~dag ~f:1 ~wave:2 ~leader:a1 ())

let test_fig2_wave2_does_not_commit_directly () =
  let dag = build_fig2_dag () in
  let ord = Dagrider.Ordering.create ~f:1 () in
  (* decide wave 1 first, as a process naturally would *)
  ignore
    (Dagrider.Ordering.process_wave ord ~dag ~wave:1
       ~choose_leader:fig2_leaders);
  let commits =
    Dagrider.Ordering.process_wave ord ~dag ~wave:2 ~choose_leader:fig2_leaders
  in
  checki "wave 2 skipped" 0 (List.length commits);
  checki "decidedWave still 1" 1 (Dagrider.Ordering.decided_wave ord)

let test_fig2_wave3_commits_wave2_first () =
  let dag = build_fig2_dag () in
  let ord = Dagrider.Ordering.create ~f:1 () in
  ignore
    (Dagrider.Ordering.process_wave ord ~dag ~wave:1
       ~choose_leader:fig2_leaders);
  ignore
    (Dagrider.Ordering.process_wave ord ~dag ~wave:2
       ~choose_leader:fig2_leaders);
  let commits =
    Dagrider.Ordering.process_wave ord ~dag ~wave:3 ~choose_leader:fig2_leaders
  in
  checki "two leaders committed" 2 (List.length commits);
  let first = List.nth commits 0 and second = List.nth commits 1 in
  checki "wave 2 first" 2 first.Dagrider.Ordering.wave;
  checkb "wave 2 chained, not direct" false first.Dagrider.Ordering.direct;
  checkb "wave-2 leader is a1" true
    (Dagrider.Vertex.vref_of first.Dagrider.Ordering.leader = vref 5 1);
  checki "wave 3 second" 3 second.Dagrider.Ordering.wave;
  checkb "wave 3 direct" true second.Dagrider.Ordering.direct;
  (* a1 delivered before the wave-3 leader in the log *)
  let log = Dagrider.Ordering.delivered_log ord in
  let pos r =
    let rec go i = function
      | [] -> -1
      | v :: vs -> if Dagrider.Vertex.vref_of v = r then i else go (i + 1) vs
    in
    go 0 log
  in
  checkb "a1 before wave-3 leader" true (pos (vref 5 1) < pos (vref 9 2));
  checki "decidedWave now 3" 3 (Dagrider.Ordering.decided_wave ord)

let test_fig2_skipped_leader_absent_entirely () =
  (* variant: the wave-2 leader vertex does not even exist in the DAG;
     wave 3 must then NOT commit wave 2 (Lemma 1 says nobody did) *)
  let dag = build_fig2_dag () in
  let ord = Dagrider.Ordering.create ~f:1 () in
  let leaders = function 2 -> 1 | 3 -> 2 | _ -> 0 in
  ignore (Dagrider.Ordering.process_wave ord ~dag ~wave:1 ~choose_leader:leaders);
  (* use a leader choice pointing at a vertex that is missing: source 1
     has a round-5 vertex here, so instead simulate by choosing wave-2
     leader from a fresh dag without round 5's source-1 vertex *)
  let dag2 = Dagrider.Dag.create ~n:4 in
  for r = 1 to 4 do
    full_round dag2 ~round:r
  done;
  for source = 0 to 2 do
    (* round 5 without source 3 *)
    add dag2 ~round:5 ~source ~strong:[ (4, 0); (4, 1); (4, 2); (4, 3) ] ()
  done;
  for r = 6 to 12 do
    let prev =
      List.map
        (fun v ->
          let r = Dagrider.Vertex.vref_of v in
          (r.Dagrider.Vertex.round, r.Dagrider.Vertex.source))
        (Dagrider.Dag.round_vertices dag2 (r - 1))
    in
    for source = 0 to 3 do
      add dag2 ~round:r ~source ~strong:prev ()
    done
  done;
  let ord2 = Dagrider.Ordering.create ~f:1 () in
  let leaders2 = function 2 -> 3 (* missing vertex *) | _ -> 0 in
  ignore (Dagrider.Ordering.process_wave ord2 ~dag:dag2 ~wave:1 ~choose_leader:leaders2);
  ignore (Dagrider.Ordering.process_wave ord2 ~dag:dag2 ~wave:2 ~choose_leader:leaders2);
  let commits =
    Dagrider.Ordering.process_wave ord2 ~dag:dag2 ~wave:3 ~choose_leader:leaders2
  in
  checki "only wave 3 committed" 1 (List.length commits);
  checki "wave" 3 (List.hd commits).Dagrider.Ordering.wave

let test_chained_commit_across_many_waves () =
  (* waves 2..4 all skipped (leaders missing), wave 5 commits and chains
     none of them — then delivers everything reachable *)
  let dag = full_dag ~rounds:20 in
  let ord = Dagrider.Ordering.create ~f:1 () in
  ignore (Dagrider.Ordering.process_wave ord ~dag ~wave:1 ~choose_leader:(fun _ -> 0));
  let commits =
    Dagrider.Ordering.process_wave ord ~dag ~wave:5 ~choose_leader:(fun _ -> 1)
  in
  (* full dag: wave 5's leader reaches the leaders of waves 2-4, so all
     four commit, earliest first *)
  checki "four commits" 4 (List.length commits);
  Alcotest.(check (list int)) "wave order" [ 2; 3; 4; 5 ]
    (List.map (fun c -> c.Dagrider.Ordering.wave) commits);
  checkb "only last is direct" true
    (List.for_all
       (fun c -> c.Dagrider.Ordering.direct = (c.Dagrider.Ordering.wave = 5))
       commits)

let test_total_delivered_count_matches_log () =
  let dag = full_dag ~rounds:8 in
  let ord = Dagrider.Ordering.create ~f:1 () in
  ignore (Dagrider.Ordering.process_wave ord ~dag ~wave:1 ~choose_leader:(fun _ -> 0));
  ignore (Dagrider.Ordering.process_wave ord ~dag ~wave:2 ~choose_leader:(fun _ -> 1));
  checki "count = log length"
    (List.length (Dagrider.Ordering.delivered_log ord))
    (Dagrider.Ordering.delivered_count ord);
  checkb "is_delivered agrees" true
    (List.for_all
       (fun v -> Dagrider.Ordering.is_delivered ord (Dagrider.Vertex.vref_of v))
       (Dagrider.Ordering.delivered_log ord))

(* ---- wave-length-parametric ordering ---- *)

let full_dag_len ~wave_length ~rounds =
  let dag = Dagrider.Dag.create ~n:4 in
  for r = 1 to rounds do
    full_round dag ~round:r
  done;
  ignore wave_length;
  dag

let test_ordering_wave_length_2 () =
  let dag = full_dag_len ~wave_length:2 ~rounds:6 in
  let ord = Dagrider.Ordering.create ~wave_length:2 ~f:1 () in
  (* wave 1 = rounds 1-2, leader in round 1, support in round 2 *)
  let c1 =
    Dagrider.Ordering.process_wave ord ~dag ~wave:1 ~choose_leader:(fun _ -> 0)
  in
  checki "wave 1 commits" 1 (List.length c1);
  let c2 =
    Dagrider.Ordering.process_wave ord ~dag ~wave:3 ~choose_leader:(fun _ -> 1)
  in
  (* waves 2 and 3 both commit (chained), earliest first *)
  checki "two commits" 2 (List.length c2);
  Alcotest.(check (list int)) "wave order" [ 2; 3 ]
    (List.map (fun c -> c.Dagrider.Ordering.wave) c2);
  (* leader of wave 3 sits in round round(3,1) = 5 *)
  checki "wave 3 leader round" 5
    (List.nth c2 1).Dagrider.Ordering.leader.Dagrider.Vertex.round

let test_ordering_wave_length_6 () =
  let dag = full_dag_len ~wave_length:6 ~rounds:12 in
  let ord = Dagrider.Ordering.create ~wave_length:6 ~f:1 () in
  let c =
    Dagrider.Ordering.process_wave ord ~dag ~wave:2 ~choose_leader:(fun _ -> 2)
  in
  checki "both waves commit" 2 (List.length c);
  checki "wave 2 leader round" 7
    (List.nth c 1).Dagrider.Ordering.leader.Dagrider.Vertex.round;
  (* support is counted in round round(2,6) = 12 *)
  checkb "commit rule used last round" true
    (commit_rule_met ~wave_length:6 ~dag ~f:1 ~wave:2
       ~leader:(List.nth c 1).Dagrider.Ordering.leader ())

let test_ordering_mismatched_wave_length_no_commit () =
  (* a 4-round-wave ordering over a DAG with only 6 rounds cannot commit
     wave 2 (its last round, 8, is empty) *)
  let dag = full_dag_len ~wave_length:4 ~rounds:6 in
  let ord = Dagrider.Ordering.create ~f:1 () in
  checki "wave 2 cannot commit" 0
    (List.length
       (Dagrider.Ordering.process_wave ord ~dag ~wave:2 ~choose_leader:(fun _ -> 0)))

let () =
  Alcotest.run "ordering"
    [ ( "waves",
        [ Alcotest.test_case "round_of" `Quick test_round_of;
          Alcotest.test_case "wave_of_completed_round" `Quick
            test_wave_of_completed_round;
          Alcotest.test_case "leader lookup" `Quick test_leader_vertex_lookup ] );
      ( "rules",
        [ Alcotest.test_case "rule records" `Quick test_rule_records;
          Alcotest.test_case "create from rule" `Quick test_create_from_rule ] );
      ( "commit-rule",
        [ Alcotest.test_case "full dag" `Quick test_commit_rule_full_dag;
          Alcotest.test_case "insufficient support" `Quick
            test_commit_rule_insufficient_support;
          Alcotest.test_case "exact boundary" `Quick test_commit_rule_exact_boundary ] );
      ( "process-wave",
        [ Alcotest.test_case "commits full wave" `Quick test_process_wave_commits_full;
          Alcotest.test_case "no leader vertex" `Quick test_process_wave_no_leader_vertex;
          Alcotest.test_case "idempotent + monotonic" `Quick
            test_process_wave_idempotent_and_monotonic;
          Alcotest.test_case "log is causal" `Quick test_delivered_log_is_causal;
          Alcotest.test_case "chained commit many waves" `Quick
            test_chained_commit_across_many_waves;
          Alcotest.test_case "count matches log" `Quick
            test_total_delivered_count_matches_log ] );
      ( "wave-length",
        [ Alcotest.test_case "length 2" `Quick test_ordering_wave_length_2;
          Alcotest.test_case "length 6" `Quick test_ordering_wave_length_6;
          Alcotest.test_case "mismatched length" `Quick
            test_ordering_mismatched_wave_length_no_commit ] );
      ( "figure-2",
        [ Alcotest.test_case "wave-2 support is 2" `Quick test_fig2_wave2_support_is_two;
          Alcotest.test_case "wave 2 skipped" `Quick
            test_fig2_wave2_does_not_commit_directly;
          Alcotest.test_case "wave 3 commits wave 2 first" `Quick
            test_fig2_wave3_commits_wave2_first;
          Alcotest.test_case "absent leader never chained" `Quick
            test_fig2_skipped_leader_absent_entirely ] )
    ]
