(* Tests for the span profiler: the no-perturbation guarantee when no
   profiler is installed (same proof style as the tracer's), exact
   self/total accounting against injected clock and allocation counters,
   nesting balance across a whole fleet run, folded-stacks output, and
   the prof.*/gc.* export through Runner.metrics_snapshot. Also the
   metrics-registry edge cases the export leans on: empty-histogram
   summaries, JSON round-trips, and deterministic ordering. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))
let checks = Alcotest.(check string)

(* ---- exact accounting with injected counters ---- *)

(* a profiler whose clock and allocation counter we drive by hand, so
   every self/total/alloc number is checked exactly *)
let with_fake_prof f =
  let now = ref 0.0 in
  let alloc = ref 0.0 in
  let t =
    Prof.create ~clock:(fun () -> !now) ~alloc_bytes:(fun () -> !alloc) ()
  in
  Prof.install t;
  Fun.protect ~finally:Prof.uninstall (fun () -> f t now alloc)

let row name t =
  match List.find_opt (fun r -> r.Prof.r_name = name) (Prof.rows t) with
  | Some r -> r
  | None -> Alcotest.fail ("no row for span " ^ name)

let test_exact_accounting () =
  with_fake_prof (fun t now alloc ->
      let outer = Prof.enter "outer" in
      now := 1.0;
      alloc := 100.0;
      let inner = Prof.enter "inner" in
      now := 3.0;
      alloc := 300.0;
      Prof.leave inner;
      now := 6.0;
      alloc := 600.0;
      Prof.leave outer;
      checki "depth back to 0" 0 (Prof.depth t);
      checki "balanced" 0 (Prof.unbalanced t);
      let o = row "outer" t and i = row "inner" t in
      checki "outer count" 1 o.Prof.r_count;
      checkf "outer total" 6.0 o.Prof.r_total_s;
      checkf "outer self = total - inner" 4.0 o.Prof.r_self_s;
      checkf "outer alloc" 600.0 o.Prof.r_alloc_bytes;
      checkf "outer self alloc" 400.0 o.Prof.r_self_alloc_bytes;
      checkf "inner total" 2.0 i.Prof.r_total_s;
      checkf "inner self" 2.0 i.Prof.r_self_s;
      checkf "inner alloc" 200.0 i.Prof.r_alloc_bytes;
      (* self times partition the observed window *)
      checkf "observed" 6.0 (Prof.observed_s t);
      checkf "coverage = inner share" (2.0 /. 6.0) (Prof.coverage t);
      match o.Prof.r_samples with
      | [ dt ] -> checkf "sampled duration" 6.0 dt
      | _ -> Alcotest.fail "expected one outer sample")

let test_folded_output () =
  with_fake_prof (fun t now _alloc ->
      let outer = Prof.enter "outer" in
      now := 1.0;
      let inner = Prof.enter "inner" in
      now := 3.0;
      Prof.leave inner;
      now := 6.0;
      Prof.leave outer;
      (* one line per call path, self time in microseconds *)
      checks "folded stacks" "outer 4000000\nouter;inner 2000000\n"
        (Prof.folded t))

let test_same_name_merges_across_paths () =
  with_fake_prof (fun t now _alloc ->
      let a = Prof.enter "a" in
      let x1 = Prof.enter "x" in
      now := 1.0;
      Prof.leave x1;
      Prof.leave a;
      let b = Prof.enter "b" in
      let x2 = Prof.enter "x" in
      now := 3.0;
      Prof.leave x2;
      Prof.leave b;
      (* "x" under two parents: rows merge, folded keeps paths apart *)
      let x = row "x" t in
      checki "x count" 2 x.Prof.r_count;
      checkf "x total" 3.0 x.Prof.r_total_s;
      checkb "folded keeps both paths" true
        (let f = Prof.folded t in
         let has s =
           let re = s ^ " " in
           let rec go i =
             i + String.length re <= String.length f
             && (String.sub f i (String.length re) = re || go (i + 1))
           in
           go 0
         in
         has "a;x" && has "b;x"))

let test_unbalanced_leave_counted () =
  with_fake_prof (fun t _now _alloc ->
      let a = Prof.enter "a" in
      let b = Prof.enter "b" in
      (* wrong order: leaving [a] while [b] is innermost *)
      Prof.leave a;
      checki "unbalanced counted" 1 (Prof.unbalanced t);
      checki "stack untouched" 2 (Prof.depth t);
      Prof.leave b;
      Prof.leave a;
      checki "recovers" 0 (Prof.depth t);
      let b_row = row "b" t in
      checki "b closed once" 1 b_row.Prof.r_count)

let test_time_exception_safety () =
  with_fake_prof (fun t _now _alloc ->
      (try Prof.time "boom" (fun () -> raise Exit)
       with Exit -> ());
      checki "span closed on raise" 0 (Prof.depth t);
      checki "still balanced" 0 (Prof.unbalanced t);
      checki "boom recorded" 1 (row "boom" t).Prof.r_count)

let test_leave_reraise () =
  (* the exception path of an open-coded span site: the span must close
     (so later spans don't mis-nest under a stale frame) and the
     original exception must propagate *)
  with_fake_prof (fun t now _alloc ->
      (try
         let sp = Prof.enter "boom" in
         try
           now := 2.0;
           raise Exit
         with e -> Prof.leave_reraise sp e
       with Exit -> ());
      checki "span closed on raise" 0 (Prof.depth t);
      checki "still balanced" 0 (Prof.unbalanced t);
      let r = row "boom" t in
      checki "recorded once" 1 r.Prof.r_count;
      checkf "duration up to the raise" 2.0 r.Prof.r_total_s)

let test_sample_reservoir_covers_tail () =
  with_fake_prof (fun t now _alloc ->
      (* call i has duration i, so the sample's contents say which
         calls were retained *)
      for i = 1 to 5000 do
        let sp = Prof.enter "s" in
        now := !now +. float_of_int i;
        Prof.leave sp
      done;
      let r = row "s" t in
      checki "capped at 2048" 2048 (List.length r.Prof.r_samples);
      (* a keep-first-N sample could only hold durations <= 2048; the
         reservoir must retain part of the post-warmup tail *)
      checkb "tail represented" true
        (List.exists (fun d -> d > 2048.0) r.Prof.r_samples))

let test_disabled_spans_are_inert () =
  (* nothing installed: enter/leave/time must be no-ops *)
  Alcotest.(check (option unit))
    "nothing installed" None
    (Option.map ignore (Prof.installed ()));
  let sp = Prof.enter "ghost" in
  Prof.leave sp;
  checki "time passes through" 7 (Prof.time "ghost" (fun () -> 7))

(* ---- a profiled fleet run ---- *)

let run_fleet () =
  let h = Harness.Runner.build (Harness.Runner.default_options ~n:4) in
  Harness.Runner.run h ~until:50.0;
  Harness.Runner.delivered_refs h

let profiled_run =
  lazy
    (let prof = Prof.create () in
     Prof.install prof;
     let refs = Prof.time "run" run_fleet in
     Prof.uninstall ();
     (prof, refs))

let test_disabled_prof_identical_run () =
  let _, profiled_refs = Lazy.force profiled_run in
  let a = run_fleet () and b = run_fleet () in
  checkb "unprofiled runs replay" true (a = b);
  (* instrumentation only reads clocks and counters: a profiled run
     must deliver byte-identical logs *)
  checkb "profiled delivers the same logs" true (a = profiled_refs)

let test_fleet_spans_balanced () =
  let prof, _ = Lazy.force profiled_run in
  checki "no span left open" 0 (Prof.depth prof);
  checki "no unbalanced leaves" 0 (Prof.unbalanced prof)

let test_fleet_expected_spans () =
  let prof, _ = Lazy.force profiled_run in
  let rows = Prof.rows prof in
  List.iter
    (fun name ->
      match List.find_opt (fun r -> r.Prof.r_name = name) rows with
      | Some r ->
        checkb (name ^ " called") true (r.Prof.r_count > 0);
        checkb (name ^ " nonnegative total") true (r.Prof.r_total_s >= 0.0)
      | None -> Alcotest.fail ("missing span " ^ name))
    [ "run"; "engine.dispatch"; "rbc.bracha.recv"; "rbc.bracha.bcast";
      "dag.add"; "dag.path"; "dag.causal_history"; "order.wave.dagrider";
      "node.r_deliver"; "node.coin" ]

let test_fleet_coverage () =
  let prof, _ = Lazy.force profiled_run in
  (* the acceptance bar: instrumented spans explain >= 90% of the run *)
  checkb "coverage >= 0.9" true (Prof.coverage prof >= 0.9);
  checkb "observed time positive" true (Prof.observed_s prof > 0.0)

let test_fleet_alloc_monotone () =
  let prof, _ = Lazy.force profiled_run in
  List.iter
    (fun r ->
      (* allocation counters are monotone and child windows nest inside
         the parent's, so both deltas must come out nonnegative *)
      checkb (r.Prof.r_name ^ " alloc >= 0") true (r.Prof.r_alloc_bytes >= 0.0);
      checkb
        (r.Prof.r_name ^ " self alloc <= alloc")
        true
        (r.Prof.r_self_alloc_bytes <= r.Prof.r_alloc_bytes +. 1e-6);
      checkb
        (r.Prof.r_name ^ " self time <= total")
        true
        (r.Prof.r_self_s <= r.Prof.r_total_s +. 1e-9);
      checkb
        (r.Prof.r_name ^ " samples bounded")
        true
        (List.length r.Prof.r_samples <= min r.Prof.r_count 2048))
    (Prof.rows prof)

let test_fleet_render_and_gc () =
  let prof, _ = Lazy.force profiled_run in
  let table = Prof.render_table ~top:5 prof in
  checkb "table mentions a hot span" true
    (String.length table > 0
    && (let has s =
          let rec go i =
            i + String.length s <= String.length table
            && (String.sub table i (String.length s) = s || go (i + 1))
          in
          go 0
        in
        has "engine.dispatch" || has "rbc.bracha.recv"));
  let gc = Prof.gc_summary prof in
  checkb "gc allocated > 0" true (gc.Prof.gc_allocated_bytes > 0.0);
  checkb "gc top heap > 0" true (gc.Prof.gc_top_heap_words > 0);
  checkb "gc render nonempty" true (String.length (Prof.render_gc gc) > 0)

(* ---- runner metrics export ---- *)

let test_runner_snapshot_gc_and_prof () =
  let prof = Prof.create () in
  Prof.install prof;
  let h = Harness.Runner.build (Harness.Runner.default_options ~n:4) in
  Harness.Runner.run h ~until:20.0;
  let snap = Harness.Runner.metrics_snapshot h in
  Prof.uninstall ();
  let gauge name = List.assoc_opt name snap.Metrics.Registry.gauges in
  List.iter
    (fun name -> checkb ("gauge " ^ name) true (gauge name <> None))
    [ "gc.minor_collections"; "gc.major_collections"; "gc.promoted_words";
      "gc.top_heap_words"; "prof.engine.dispatch.self_s";
      "prof.engine.dispatch.total_s"; "prof.engine.dispatch.alloc_bytes" ];
  checkb "prof calls counter" true
    (List.assoc_opt "prof.engine.dispatch.calls" snap.Metrics.Registry.counters
    <> None);
  checkb "prof histogram" true
    (List.assoc_opt "prof.engine.dispatch" snap.Metrics.Registry.histograms
    <> None)

let test_runner_snapshot_without_prof () =
  let h = Harness.Runner.build (Harness.Runner.default_options ~n:4) in
  Harness.Runner.run h ~until:20.0;
  let snap = Harness.Runner.metrics_snapshot h in
  checkb "gc gauges always present" true
    (List.assoc_opt "gc.minor_collections" snap.Metrics.Registry.gauges
    <> None);
  checkb "no prof keys when uninstalled" true
    (List.for_all
       (fun (k, _) -> not (String.length k >= 5 && String.sub k 0 5 = "prof."))
       (snap.Metrics.Registry.counters
       |> List.map (fun (k, v) -> (k, float_of_int v)))
    && List.for_all
         (fun (k, _) ->
           not (String.length k >= 5 && String.sub k 0 5 = "prof."))
         snap.Metrics.Registry.gauges)

(* ---- registry edge cases ---- *)

let test_registry_empty_histogram () =
  let reg = Metrics.Registry.create () in
  ignore (Metrics.Registry.histogram reg "empty");
  let snap = Metrics.Registry.snapshot reg in
  match snap.Metrics.Registry.histograms with
  | [ ("empty", h) ] ->
    checki "count 0" 0 h.Metrics.Registry.h_count;
    checkf "mean 0" 0.0 h.Metrics.Registry.h_mean;
    checkf "min 0" 0.0 h.Metrics.Registry.h_min;
    checkf "max 0" 0.0 h.Metrics.Registry.h_max;
    checkf "p99 0" 0.0 h.Metrics.Registry.h_p99
  | _ -> Alcotest.fail "expected exactly the empty histogram"

let test_registry_snapshot_json_round_trip () =
  let reg = Metrics.Registry.create () in
  Metrics.Registry.incr reg "c.two" ~by:2 ();
  Metrics.Registry.incr reg "c.one" ();
  Metrics.Registry.set_gauge reg "g.x" 1.5;
  Metrics.Registry.observe reg "h.lat" 0.25;
  Metrics.Registry.observe reg "h.lat" 0.75;
  ignore (Metrics.Registry.histogram reg "h.empty");
  let snap = Metrics.Registry.snapshot reg in
  let json = Metrics.Registry.snapshot_to_json snap in
  let text = Stdx.Json.to_string json in
  match Stdx.Json.of_string text with
  | Error e -> Alcotest.fail ("snapshot JSON does not parse back: " ^ e)
  | Ok parsed ->
    let section name =
      match Stdx.Json.member name parsed with
      | Some (Stdx.Json.Obj fields) -> fields
      | _ -> Alcotest.fail ("missing section " ^ name)
    in
    (match List.assoc_opt "c.two" (section "counters") with
    | Some j -> checki "counter survives" 2 (Option.get (Stdx.Json.to_int_opt j))
    | None -> Alcotest.fail "c.two lost");
    (match List.assoc_opt "g.x" (section "gauges") with
    | Some j ->
      checkf "gauge survives" 1.5 (Option.get (Stdx.Json.to_float_opt j))
    | None -> Alcotest.fail "g.x lost");
    (match List.assoc_opt "h.lat" (section "histograms") with
    | Some h ->
      checki "histogram count survives" 2
        (Option.get
           (Option.bind (Stdx.Json.member "count" h) Stdx.Json.to_int_opt));
      checkf "histogram p50 survives" 0.25
        (Option.get
           (Option.bind (Stdx.Json.member "p50" h) Stdx.Json.to_float_opt))
    | None -> Alcotest.fail "h.lat lost");
    checkb "empty histogram serialized too" true
      (List.assoc_opt "h.empty" (section "histograms") <> None)

let test_registry_deterministic_order () =
  (* same metrics, opposite insertion orders: snapshots and renders
     must be identical (sections are sorted by name) *)
  let build names =
    let reg = Metrics.Registry.create () in
    List.iter
      (fun n ->
        Metrics.Registry.incr reg ("c." ^ n) ();
        Metrics.Registry.set_gauge reg ("g." ^ n) 1.0;
        Metrics.Registry.observe reg ("h." ^ n) 1.0)
      names;
    Metrics.Registry.snapshot reg
  in
  let fwd = build [ "alpha"; "beta"; "gamma" ] in
  let rev = build [ "gamma"; "beta"; "alpha" ] in
  checkb "snapshots equal" true (fwd = rev);
  checks "renders equal" (Metrics.Registry.render fwd)
    (Metrics.Registry.render rev);
  checks "json equal"
    (Stdx.Json.to_string (Metrics.Registry.snapshot_to_json fwd))
    (Stdx.Json.to_string (Metrics.Registry.snapshot_to_json rev));
  checkb "counters sorted" true
    (let keys = List.map fst fwd.Metrics.Registry.counters in
     keys = List.sort compare keys)

let () =
  Alcotest.run "prof"
    [ ( "accounting",
        [ Alcotest.test_case "exact self/total/alloc" `Quick
            test_exact_accounting;
          Alcotest.test_case "folded stacks" `Quick test_folded_output;
          Alcotest.test_case "same name merges across paths" `Quick
            test_same_name_merges_across_paths;
          Alcotest.test_case "unbalanced leave counted" `Quick
            test_unbalanced_leave_counted;
          Alcotest.test_case "time is exception-safe" `Quick
            test_time_exception_safety;
          Alcotest.test_case "leave_reraise closes the span" `Quick
            test_leave_reraise;
          Alcotest.test_case "duration reservoir covers the tail" `Quick
            test_sample_reservoir_covers_tail;
          Alcotest.test_case "disabled spans are inert" `Quick
            test_disabled_spans_are_inert ] );
      ( "fleet",
        [ Alcotest.test_case "disabled profiler leaves run identical" `Quick
            test_disabled_prof_identical_run;
          Alcotest.test_case "spans balanced" `Quick test_fleet_spans_balanced;
          Alcotest.test_case "expected spans present" `Quick
            test_fleet_expected_spans;
          Alcotest.test_case "coverage >= 90%" `Quick test_fleet_coverage;
          Alcotest.test_case "allocation deltas monotone" `Quick
            test_fleet_alloc_monotone;
          Alcotest.test_case "table and gc render" `Quick
            test_fleet_render_and_gc ] );
      ( "runner-export",
        [ Alcotest.test_case "gc.* and prof.* in snapshot" `Quick
            test_runner_snapshot_gc_and_prof;
          Alcotest.test_case "no prof.* when uninstalled" `Quick
            test_runner_snapshot_without_prof ] );
      ( "registry",
        [ Alcotest.test_case "empty histogram summary" `Quick
            test_registry_empty_histogram;
          Alcotest.test_case "snapshot JSON round trip" `Quick
            test_registry_snapshot_json_round_trip;
          Alcotest.test_case "deterministic ordering" `Quick
            test_registry_deterministic_order ] );
    ]
