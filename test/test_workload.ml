(* Tests for transaction generation and block (batch) round-tripping. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let test_tx_roundtrip () =
  let tx = { Workload.Txgen.owner = 3; seqno = 17; body = "payload" } in
  (match Workload.Txgen.tx_of_string (Workload.Txgen.tx_to_string tx) with
  | Some tx' -> checkb "roundtrip" true (tx = tx')
  | None -> Alcotest.fail "parse failed");
  checkb "garbage rejected" true (Workload.Txgen.tx_of_string "nope" = None)

let test_gen_sequencing () =
  let g = Workload.Txgen.gen ~owner:2 ~body_bytes:16 in
  let t1 = Workload.Txgen.next_tx g in
  let t2 = Workload.Txgen.next_tx g in
  checki "owner" 2 t1.Workload.Txgen.owner;
  checki "seq 0" 0 t1.Workload.Txgen.seqno;
  checki "seq 1" 1 t2.Workload.Txgen.seqno;
  checki "produced" 2 (Workload.Txgen.produced g)

let test_gen_body_size () =
  let g = Workload.Txgen.gen ~owner:0 ~body_bytes:32 in
  let tx = Workload.Txgen.next_tx g in
  checki "body padded" 32 (String.length tx.Workload.Txgen.body)

let test_block_roundtrip () =
  let g = Workload.Txgen.gen ~owner:1 ~body_bytes:8 in
  let block = Workload.Txgen.make_block g ~count:5 in
  let txs = Workload.Txgen.block_txs block in
  checki "five txs" 5 (List.length txs);
  List.iteri
    (fun i tx ->
      checki "owner" 1 tx.Workload.Txgen.owner;
      checki "seqno" i tx.Workload.Txgen.seqno)
    txs

let test_block_of_txs_inverse () =
  let txs =
    List.init 3 (fun i ->
        { Workload.Txgen.owner = i; seqno = i * 7; body = Printf.sprintf "b%d" i })
  in
  checkb "inverse" true
    (Workload.Txgen.block_txs (Workload.Txgen.block_of_txs txs) = txs)

let test_foreign_block_parses_empty () =
  Alcotest.(check (list bool)) "padding block yields nothing" []
    (List.map (fun _ -> true) (Workload.Txgen.block_txs "xxxxxyyyyy"));
  checki "empty block" 0 (List.length (Workload.Txgen.block_txs ""))

let test_tx_bytes_estimate () =
  let g = Workload.Txgen.gen ~owner:3 ~body_bytes:20 in
  let tx = Workload.Txgen.next_tx g in
  let actual = String.length (Workload.Txgen.tx_to_string tx) in
  let estimate = Workload.Txgen.tx_bytes ~body_bytes:20 in
  checkb
    (Printf.sprintf "estimate %d within 8 of actual %d" estimate actual)
    true
    (abs (estimate - actual) <= 8)

let test_block_through_node_payload () =
  (* blocks survive the vertex codec (binary-safe separators) *)
  let g = Workload.Txgen.gen ~owner:0 ~body_bytes:16 in
  let block = Workload.Txgen.make_block g ~count:4 in
  let v =
    { Dagrider.Vertex.round = 1;
      source = 0;
      block;
      strong_edges =
        [ { Dagrider.Vertex.round = 0; source = 0 };
          { Dagrider.Vertex.round = 0; source = 1 };
          { Dagrider.Vertex.round = 0; source = 2 } ];
      weak_edges = [] }
  in
  match Dagrider.Vertex.decode ~round:1 ~source:0 (Dagrider.Vertex.encode v) with
  | Some v' ->
    checks "block intact" block v'.Dagrider.Vertex.block;
    checki "txs parse" 4 (List.length (Workload.Txgen.block_txs v'.Dagrider.Vertex.block))
  | None -> Alcotest.fail "decode failed"

(* ---- Mempool ---- *)

let mk_tx owner seqno = { Workload.Txgen.owner; seqno; body = "b" }

let test_mempool_submit_dedup () =
  let m = Workload.Mempool.create ~owner:0 () in
  checkb "first accepted" true (Workload.Mempool.submit m (mk_tx 0 1));
  checkb "duplicate dropped" false (Workload.Mempool.submit m (mk_tx 0 1));
  checkb "different seqno ok" true (Workload.Mempool.submit m (mk_tx 0 2));
  checki "pending" 2 (Workload.Mempool.pending m);
  checki "submitted counter" 2 (Workload.Mempool.submitted m)

let test_mempool_assemble_and_retire () =
  let m = Workload.Mempool.create ~owner:0 ~max_batch:2 () in
  List.iter (fun i -> ignore (Workload.Mempool.submit m (mk_tx 0 i))) [ 1; 2; 3 ];
  let block = Workload.Mempool.assemble_block m in
  checki "batch capped" 2 (List.length (Workload.Txgen.block_txs block));
  checki "one left pending" 1 (Workload.Mempool.pending m);
  checki "two in flight" 2 (Workload.Mempool.in_flight m);
  checki "both were ours" 2 (Workload.Mempool.retire_block m block);
  checki "in flight cleared" 0 (Workload.Mempool.in_flight m)

let test_mempool_empty_block () =
  let m = Workload.Mempool.create ~owner:1 () in
  checks "empty pool, empty block" "" (Workload.Mempool.assemble_block m)

let test_mempool_foreign_retirement_drops_queued () =
  (* a client multi-submitted: the tx gets ordered via another process's
     block while still queued here — it must not be proposed again *)
  let m = Workload.Mempool.create ~owner:0 () in
  ignore (Workload.Mempool.submit m (mk_tx 9 5));
  ignore (Workload.Mempool.submit m (mk_tx 0 1));
  let foreign_block = Workload.Txgen.block_of_txs [ mk_tx 9 5 ] in
  checki "not ours" 0 (Workload.Mempool.retire_block m foreign_block);
  let block = Workload.Mempool.assemble_block m in
  let txs = Workload.Txgen.block_txs block in
  checki "only the un-retired tx" 1 (List.length txs);
  checki "the right one" 0 (List.hd txs).Workload.Txgen.owner;
  (* and a late re-submission of the foreign tx is rejected *)
  checkb "re-submission rejected" false (Workload.Mempool.submit m (mk_tx 9 5))

let test_mempool_resubmit_after_retire () =
  (* ordered-and-retired transactions stay remembered: a client retrying
     a tx that already made it into the total order must be rejected,
     not ordered twice *)
  let m = Workload.Mempool.create ~owner:0 () in
  checkb "accepted" true (Workload.Mempool.submit m (mk_tx 0 7));
  let block = Workload.Mempool.assemble_block m in
  checki "retired" 1 (Workload.Mempool.retire_block m block);
  checkb "re-submit after retire rejected" false
    (Workload.Mempool.submit m (mk_tx 0 7));
  checki "nothing pending" 0 (Workload.Mempool.pending m);
  checki "submitted counted once" 1 (Workload.Mempool.submitted m)

let test_mempool_empty_assembly_no_inflight () =
  let m = Workload.Mempool.create ~owner:2 () in
  checks "empty block" "" (Workload.Mempool.assemble_block m);
  checki "no in-flight from empty assembly" 0 (Workload.Mempool.in_flight m);
  (* retiring the empty block is a no-op, not a crash *)
  checki "empty retirement" 0 (Workload.Mempool.retire_block m "")

let test_mempool_foreign_only_block () =
  (* a block of transactions this pool has never seen: nothing counts as
     ours, but the keys are remembered so later local submissions of the
     same transactions are rejected *)
  let m = Workload.Mempool.create ~owner:0 () in
  let foreign = Workload.Txgen.block_of_txs [ mk_tx 5 1; mk_tx 6 2 ] in
  checki "none of it ours" 0 (Workload.Mempool.retire_block m foreign);
  checki "nothing pending" 0 (Workload.Mempool.pending m);
  checki "nothing in flight" 0 (Workload.Mempool.in_flight m);
  checkb "ordered-elsewhere tx rejected locally" false
    (Workload.Mempool.submit m (mk_tx 5 1));
  checkb "ordered-elsewhere tx rejected locally (2)" false
    (Workload.Mempool.submit m (mk_tx 6 2));
  checkb "fresh tx still accepted" true (Workload.Mempool.submit m (mk_tx 0 1))

let test_mempool_backpressure () =
  let m = Workload.Mempool.create ~owner:0 ~max_pending:2 () in
  checkb "1 accepted" true (Workload.Mempool.submit m (mk_tx 0 1));
  checkb "2 accepted" true (Workload.Mempool.submit m (mk_tx 0 2));
  checkb "3 rejected at cap" false (Workload.Mempool.submit m (mk_tx 0 3));
  checki "rejection counted" 1 (Workload.Mempool.rejected m);
  checki "pending holds at cap" 2 (Workload.Mempool.pending m);
  checki "submitted excludes rejected" 2 (Workload.Mempool.submitted m);
  (* a rejected tx was NOT remembered: once the queue drains the client's
     retry succeeds *)
  ignore (Workload.Mempool.assemble_block m);
  checkb "retry after drain accepted" true (Workload.Mempool.submit m (mk_tx 0 3));
  checki "rejected stays at 1" 1 (Workload.Mempool.rejected m);
  (* in-flight transactions do not count against the pending cap *)
  checkb "cap is on the queue, not in-flight" true
    (Workload.Mempool.submit m (mk_tx 0 4))

let test_mempool_end_to_end_with_node () =
  (* drive a real fleet with mempools as block sources; every submitted
     transaction must appear exactly once in the total order *)
  let n = 4 in
  let mempools =
    Array.init n (fun owner -> Workload.Mempool.create ~owner ~max_batch:4 ())
  in
  let opts =
    { (Harness.Runner.default_options ~n) with
      seed = 91;
      on_deliver =
        Some
          (fun ~node ~block ~round:_ ~source:_ ~time:_ ->
            ignore (Workload.Mempool.retire_block mempools.(node) block)) }
  in
  let h = Harness.Runner.build opts in
  (* the runner's default block_source pads blocks; route through the
     mempools instead by submitting explicit blocks via a_bcast *)
  let gens =
    Array.init n (fun owner -> Workload.Txgen.gen ~owner ~body_bytes:8)
  in
  Array.iteri
    (fun i node ->
      for _ = 1 to 3 do
        ignore (Workload.Mempool.submit mempools.(i) (Workload.Txgen.next_tx gens.(i)))
      done;
      Dagrider.Node.a_bcast node (Workload.Mempool.assemble_block mempools.(i)))
    (Harness.Runner.nodes h);
  Harness.Runner.run h ~until:60.0;
  Array.iteri
    (fun i m ->
      checki (Printf.sprintf "p%d in-flight drained" i) 0
        (Workload.Mempool.in_flight m);
      checkb "retired counts the fleet's blocks" true
        (Workload.Mempool.retired m >= 12))
    mempools;
  (* exactly-once: each tx appears once in p0's ordered log *)
  let all_txs =
    List.concat_map
      (fun v -> Workload.Txgen.block_txs v.Dagrider.Vertex.block)
      (Dagrider.Node.delivered_log (Harness.Runner.node h 0))
  in
  let keys = List.map (fun (tx : Workload.Txgen.tx) -> (tx.owner, tx.seqno)) all_txs in
  checki "no duplicates in the order" (List.length keys)
    (List.length (List.sort_uniq compare keys));
  checki "all 12 explicit txs ordered" 12
    (List.length
       (List.filter (fun (tx : Workload.Txgen.tx) -> tx.body = "t" ^ String.sub tx.body 1 (String.length tx.body - 1)) all_txs))

let () =
  Alcotest.run "workload"
    [ ( "txgen",
        [ Alcotest.test_case "tx roundtrip" `Quick test_tx_roundtrip;
          Alcotest.test_case "sequencing" `Quick test_gen_sequencing;
          Alcotest.test_case "body size" `Quick test_gen_body_size;
          Alcotest.test_case "block roundtrip" `Quick test_block_roundtrip;
          Alcotest.test_case "block_of_txs inverse" `Quick test_block_of_txs_inverse;
          Alcotest.test_case "foreign block" `Quick test_foreign_block_parses_empty;
          Alcotest.test_case "tx bytes estimate" `Quick test_tx_bytes_estimate;
          Alcotest.test_case "block through codec" `Quick
            test_block_through_node_payload ] );
      ( "mempool",
        [ Alcotest.test_case "submit dedup" `Quick test_mempool_submit_dedup;
          Alcotest.test_case "assemble and retire" `Quick
            test_mempool_assemble_and_retire;
          Alcotest.test_case "empty block" `Quick test_mempool_empty_block;
          Alcotest.test_case "foreign retirement" `Quick
            test_mempool_foreign_retirement_drops_queued;
          Alcotest.test_case "re-submit after retire" `Quick
            test_mempool_resubmit_after_retire;
          Alcotest.test_case "empty assembly leaves no in-flight" `Quick
            test_mempool_empty_assembly_no_inflight;
          Alcotest.test_case "foreign-only block" `Quick
            test_mempool_foreign_only_block;
          Alcotest.test_case "backpressure cap" `Quick
            test_mempool_backpressure;
          Alcotest.test_case "end to end with fleet" `Quick
            test_mempool_end_to_end_with_node ] )
    ]
