(* Unit and property tests for the stdx utility library. *)

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* ---- Rng ---- *)

let test_rng_determinism () =
  let a = Stdx.Rng.create 123 and b = Stdx.Rng.create 123 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Stdx.Rng.next a) (Stdx.Rng.next b)
  done

let test_rng_seed_sensitivity () =
  let a = Stdx.Rng.create 1 and b = Stdx.Rng.create 2 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Stdx.Rng.next a <> Stdx.Rng.next b then differs := true
  done;
  checkb "different seeds differ" true !differs

let test_rng_split_independence () =
  let parent = Stdx.Rng.create 7 in
  let child = Stdx.Rng.split parent in
  (* child must not mirror the parent stream *)
  let same = ref 0 in
  for _ = 1 to 50 do
    if Stdx.Rng.next parent = Stdx.Rng.next child then incr same
  done;
  checkb "streams diverge" true (!same < 5)

let test_rng_split_deterministic () =
  let mk () =
    let p = Stdx.Rng.create 99 in
    let c = Stdx.Rng.split p in
    (Stdx.Rng.next p, Stdx.Rng.next c)
  in
  let p1, c1 = mk () and p2, c2 = mk () in
  check Alcotest.int64 "parent replay" p1 p2;
  check Alcotest.int64 "child replay" c1 c2

let test_rng_int_bounds () =
  let rng = Stdx.Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Stdx.Rng.int rng 7 in
    checkb "in range" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Stdx.Rng.int rng 0))

let test_rng_int_coverage () =
  let rng = Stdx.Rng.create 11 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Stdx.Rng.int rng 5) <- true
  done;
  checkb "all values hit" true (Array.for_all Fun.id seen)

let test_rng_int_in_range () =
  let rng = Stdx.Rng.create 3 in
  for _ = 1 to 200 do
    let v = Stdx.Rng.int_in_range rng ~lo:(-3) ~hi:3 in
    checkb "range" true (v >= -3 && v <= 3)
  done;
  checki "degenerate range" 9 (Stdx.Rng.int_in_range rng ~lo:9 ~hi:9)

let test_rng_float_bounds () =
  let rng = Stdx.Rng.create 17 in
  for _ = 1 to 1000 do
    let v = Stdx.Rng.float rng 2.5 in
    checkb "in [0, 2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bool_balance () =
  let rng = Stdx.Rng.create 29 in
  let trues = ref 0 in
  for _ = 1 to 2000 do
    if Stdx.Rng.bool rng then incr trues
  done;
  checkb "roughly balanced" true (!trues > 800 && !trues < 1200)

let test_rng_shuffle_permutation () =
  let rng = Stdx.Rng.create 31 in
  let a = Array.init 20 Fun.id in
  Stdx.Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "permutation" (Array.init 20 Fun.id) sorted

let test_rng_sample_without_replacement () =
  let rng = Stdx.Rng.create 37 in
  let s = Stdx.Rng.sample_without_replacement rng ~k:5 ~n:10 in
  checki "size" 5 (List.length s);
  checki "distinct" 5 (List.length (List.sort_uniq compare s));
  List.iter (fun v -> checkb "range" true (v >= 0 && v < 10)) s;
  let all = Stdx.Rng.sample_without_replacement rng ~k:10 ~n:10 in
  checki "full sample" 10 (List.length (List.sort_uniq compare all))

let test_rng_exponential_positive () =
  let rng = Stdx.Rng.create 41 in
  let sum = ref 0.0 in
  for _ = 1 to 2000 do
    let v = Stdx.Rng.exponential rng ~mean:2.0 in
    checkb "positive" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. 2000.0 in
  checkb "mean near 2.0" true (mean > 1.7 && mean < 2.3)

let test_rng_geometric () =
  let rng = Stdx.Rng.create 43 in
  let sum = ref 0 in
  for _ = 1 to 2000 do
    let v = Stdx.Rng.geometric rng ~p:0.5 in
    checkb ">= 1" true (v >= 1);
    sum := !sum + v
  done;
  let mean = float_of_int !sum /. 2000.0 in
  checkb "mean near 2" true (mean > 1.8 && mean < 2.2)

(* ---- Pqueue ---- *)

let test_pqueue_basic_order () =
  let q = Stdx.Pqueue.create () in
  Stdx.Pqueue.push q ~priority:3.0 ~seq:1 "c";
  Stdx.Pqueue.push q ~priority:1.0 ~seq:2 "a";
  Stdx.Pqueue.push q ~priority:2.0 ~seq:3 "b";
  let pop () =
    match Stdx.Pqueue.pop q with Some (_, _, v) -> v | None -> "?"
  in
  check Alcotest.string "first" "a" (pop ());
  check Alcotest.string "second" "b" (pop ());
  check Alcotest.string "third" "c" (pop ());
  checkb "empty" true (Stdx.Pqueue.pop q = None)

let test_pqueue_fifo_ties () =
  let q = Stdx.Pqueue.create () in
  for i = 1 to 10 do
    Stdx.Pqueue.push q ~priority:1.0 ~seq:i i
  done;
  for i = 1 to 10 do
    match Stdx.Pqueue.pop q with
    | Some (_, _, v) -> checki "tie broken by seq" i v
    | None -> Alcotest.fail "queue empty early"
  done

let test_pqueue_peek () =
  let q = Stdx.Pqueue.create () in
  checkb "peek empty" true (Stdx.Pqueue.peek q = None);
  Stdx.Pqueue.push q ~priority:5.0 ~seq:1 "x";
  (match Stdx.Pqueue.peek q with
  | Some (p, _, v) ->
    check Alcotest.(float 0.0) "peek priority" 5.0 p;
    check Alcotest.string "peek value" "x" v
  | None -> Alcotest.fail "peek failed");
  checki "peek does not remove" 1 (Stdx.Pqueue.length q)

let test_pqueue_clear () =
  let q = Stdx.Pqueue.create () in
  for i = 1 to 5 do
    Stdx.Pqueue.push q ~priority:(float_of_int i) ~seq:i i
  done;
  Stdx.Pqueue.clear q;
  checkb "cleared" true (Stdx.Pqueue.is_empty q)

let test_pqueue_interleaved () =
  let q = Stdx.Pqueue.create () in
  Stdx.Pqueue.push q ~priority:2.0 ~seq:1 2;
  Stdx.Pqueue.push q ~priority:1.0 ~seq:2 1;
  (match Stdx.Pqueue.pop q with
  | Some (_, _, v) -> checki "min first" 1 v
  | None -> Alcotest.fail "empty");
  Stdx.Pqueue.push q ~priority:0.5 ~seq:3 0;
  (match Stdx.Pqueue.pop q with
  | Some (_, _, v) -> checki "new min" 0 v
  | None -> Alcotest.fail "empty");
  match Stdx.Pqueue.pop q with
  | Some (_, _, v) -> checki "last" 2 v
  | None -> Alcotest.fail "empty"

let prop_pqueue_sorts =
  QCheck.Test.make ~name:"pqueue drains in sorted (priority, seq) order"
    ~count:200
    QCheck.(list (pair (float_bound_inclusive 100.0) small_nat))
    (fun items ->
      let q = Stdx.Pqueue.create () in
      List.iteri
        (fun i (p, v) -> Stdx.Pqueue.push q ~priority:p ~seq:i v)
        items;
      let rec drain acc =
        match Stdx.Pqueue.pop q with
        | Some (p, seq, _) -> drain ((p, seq) :: acc)
        | None -> List.rev acc
      in
      let popped = drain [] in
      List.length popped = List.length items
      && popped = List.sort compare popped)

let prop_pqueue_stable =
  QCheck.Test.make
    ~name:"pqueue is FIFO-stable for equal priorities" ~count:200
    QCheck.(list small_nat)
    (fun values ->
      (* every push shares one priority, so pop order must be exactly
         insertion order — the seq tiebreak at work *)
      let q = Stdx.Pqueue.create () in
      List.iteri (fun i v -> Stdx.Pqueue.push q ~priority:1.0 ~seq:i v) values;
      let rec drain acc =
        match Stdx.Pqueue.pop q with
        | Some (_, _, v) -> drain (v :: acc)
        | None -> List.rev acc
      in
      drain [] = values)

let prop_rng_same_seed_same_stream =
  QCheck.Test.make ~name:"rng: same seed yields same stream" ~count:100
    QCheck.(pair small_nat (int_bound 50))
    (fun (seed, len) ->
      let draw () =
        let rng = Stdx.Rng.create seed in
        List.init (len + 1) (fun _ -> Stdx.Rng.next rng)
      in
      draw () = draw ())

(* ---- Stats ---- *)

let test_stats_empty () =
  let s = Stdx.Stats.create () in
  checki "count" 0 (Stdx.Stats.count s);
  check Alcotest.(float 0.0) "mean" 0.0 (Stdx.Stats.mean s);
  check Alcotest.(float 0.0) "percentile" 0.0 (Stdx.Stats.percentile s 50.0)

let test_stats_mean_stddev () =
  let s = Stdx.Stats.create () in
  List.iter (Stdx.Stats.add s) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check Alcotest.(float 1e-9) "mean" 5.0 (Stdx.Stats.mean s);
  check Alcotest.(float 1e-6) "stddev" 2.13809 (Stdx.Stats.stddev s)

let test_stats_minmax () =
  let s = Stdx.Stats.create () in
  List.iter (Stdx.Stats.add s) [ 3.0; -1.0; 7.0 ];
  check Alcotest.(float 0.0) "min" (-1.0) (Stdx.Stats.min_value s);
  check Alcotest.(float 0.0) "max" 7.0 (Stdx.Stats.max_value s)

let test_stats_percentiles () =
  let s = Stdx.Stats.create () in
  for i = 1 to 100 do
    Stdx.Stats.add s (float_of_int i)
  done;
  check Alcotest.(float 0.0) "p50" 50.0 (Stdx.Stats.percentile s 50.0);
  check Alcotest.(float 0.0) "p99" 99.0 (Stdx.Stats.percentile s 99.0);
  check Alcotest.(float 0.0) "p100" 100.0 (Stdx.Stats.percentile s 100.0);
  check Alcotest.(float 0.0) "p1" 1.0 (Stdx.Stats.percentile s 1.0)

let test_stats_linear_fit () =
  (* y = 3 + 2x exactly *)
  let pts = List.map (fun x -> (float_of_int x, 3.0 +. (2.0 *. float_of_int x))) [ 0; 1; 2; 5; 9 ] in
  let a, b = Stdx.Stats.linear_fit pts in
  check Alcotest.(float 1e-9) "intercept" 3.0 a;
  check Alcotest.(float 1e-9) "slope" 2.0 b

let test_stats_growth_exponent () =
  (* y = 4 x^2: log-log slope 2 *)
  let pts =
    List.map (fun x -> (float_of_int x, 4.0 *. float_of_int (x * x))) [ 1; 2; 4; 8; 16 ]
  in
  check Alcotest.(float 1e-9) "exponent" 2.0 (Stdx.Stats.growth_exponent pts)

let test_stats_growth_exponent_drops_nonpositive () =
  let pts = [ (0.0, 1.0); (1.0, 2.0); (2.0, 4.0); (4.0, 8.0) ] in
  (* the (0, 1) point must be dropped, leaving slope 1 on log-log *)
  check Alcotest.(float 1e-9) "exponent" 1.0 (Stdx.Stats.growth_exponent pts)

let test_stats_percentile_caching_not_quadratic () =
  (* the sorted snapshot is cached between adds: 1000 summaries over
     1e5 points must cost ~one sort, not one sort per call (which
     would take minutes) *)
  let s = Stdx.Stats.create () in
  let rng = Stdx.Rng.create 77 in
  for _ = 1 to 100_000 do
    Stdx.Stats.add s (Stdx.Rng.float rng 1000.0)
  done;
  let t0 = Sys.time () in
  for _ = 1 to 1000 do
    ignore (Stdx.Stats.summary s)
  done;
  let dt = Sys.time () -. t0 in
  checkb
    (Printf.sprintf "1000 summaries on 1e5 points in %.2fs cpu (< 5s)" dt)
    true (dt < 5.0)

let test_stats_percentile_cache_invalidated () =
  let s = Stdx.Stats.create () in
  List.iter (Stdx.Stats.add s) [ 1.0; 2.0; 3.0 ];
  check Alcotest.(float 0.0) "p100 before" 3.0 (Stdx.Stats.percentile s 100.0);
  (* an add after a percentile query must invalidate the sorted cache *)
  Stdx.Stats.add s 10.0;
  check Alcotest.(float 0.0) "p100 after add" 10.0
    (Stdx.Stats.percentile s 100.0);
  check Alcotest.(float 0.0) "p1 after add" 1.0 (Stdx.Stats.percentile s 1.0)

(* ---- Json ---- *)

let json_sample =
  Stdx.Json.(
    Obj
      [ ("null", Null);
        ("flag", Bool true);
        ("count", Int (-42));
        ("pi", Float 3.14159);
        ("tiny", Float 1e-9);
        ("text", String "he said \"hi\"\n\ttab \\ slash");
        ("empty_list", List []);
        ("empty_obj", Obj []);
        ("nested", List [ Int 1; List [ Bool false ]; Obj [ ("k", Null) ] ]) ])

let test_json_round_trip () =
  let s = Stdx.Json.to_string json_sample in
  match Stdx.Json.of_string s with
  | Ok v -> checkb "round trip" true (v = json_sample)
  | Error e -> Alcotest.fail ("parse failed: " ^ e)

let test_json_floats_stay_floats () =
  (* the emitter must keep a decimal point/exponent so Float round-trips
     as Float, not Int *)
  match Stdx.Json.of_string (Stdx.Json.to_string (Stdx.Json.Float 2.0)) with
  | Ok (Stdx.Json.Float f) -> check Alcotest.(float 0.0) "value" 2.0 f
  | Ok _ -> Alcotest.fail "float re-parsed as non-float"
  | Error e -> Alcotest.fail e

let test_json_nonfinite_is_null () =
  checkb "nan" true (Stdx.Json.to_string (Stdx.Json.Float Float.nan) = "null");
  checkb "inf" true (Stdx.Json.to_string (Stdx.Json.Float infinity) = "null")

let test_json_accessors () =
  let open Stdx.Json in
  checkb "member" true (member "count" json_sample = Some (Int (-42)));
  checkb "member missing" true (member "nope" json_sample = None);
  checkb "to_int" true (to_int_opt (Int 5) = Some 5);
  checkb "int widens" true (to_float_opt (Int 5) = Some 5.0);
  checkb "to_string" true (to_string_opt (String "x") = Some "x");
  checkb "to_bool" true (to_bool_opt (Bool false) = Some false);
  checkb "to_list" true (to_list_opt (List [ Null ]) = Some [ Null ])

let test_json_parse_errors () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "12 34"; "\"unterminated" ] in
  List.iter
    (fun s ->
      match Stdx.Json.of_string s with
      | Ok _ -> Alcotest.fail (Printf.sprintf "accepted %S" s)
      | Error _ -> ())
    bad

let test_json_whitespace_tolerated () =
  match Stdx.Json.of_string "  { \"a\" : [ 1 , 2 ] }  " with
  | Ok v ->
    checkb "parsed" true
      Stdx.Json.(v = Obj [ ("a", List [ Int 1; Int 2 ]) ])
  | Error e -> Alcotest.fail e

(* ---- Table ---- *)

let test_stats_linear_fit_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Stats.linear_fit: need at least two points") (fun () ->
      ignore (Stdx.Stats.linear_fit [ (1.0, 1.0) ]));
  Alcotest.check_raises "vertical line"
    (Invalid_argument "Stats.linear_fit: degenerate x values") (fun () ->
      ignore (Stdx.Stats.linear_fit [ (1.0, 1.0); (1.0, 2.0) ]))

let test_rng_range_errors () =
  let rng = Stdx.Rng.create 1 in
  Alcotest.check_raises "hi < lo" (Invalid_argument "Rng.int_in_range: hi < lo")
    (fun () -> ignore (Stdx.Rng.int_in_range rng ~lo:5 ~hi:4));
  Alcotest.check_raises "k > n"
    (Invalid_argument "Rng.sample_without_replacement: k > n") (fun () ->
      ignore (Stdx.Rng.sample_without_replacement rng ~k:5 ~n:4));
  Alcotest.check_raises "empty choose" (Invalid_argument "Rng.choose: empty array")
    (fun () -> ignore (Stdx.Rng.choose rng [||]))

let test_table_renders () =
  let out =
    Stdx.Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  checkb "has separator" true (String.length out > 0 && String.contains out '-');
  let lines = String.split_on_char '\n' (String.trim out) in
  checki "line count" 4 (List.length lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  checki "uniform width" 1 (List.length (List.sort_uniq compare widths))

let test_table_ragged_rejected () =
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row")
    (fun () -> ignore (Stdx.Table.render ~header:[ "a" ] ~rows:[ [ "1"; "2" ] ]))

let () =
  Alcotest.run "stdx"
    [ ( "rng",
        [ Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "split deterministic" `Quick test_rng_split_deterministic;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int coverage" `Quick test_rng_int_coverage;
          Alcotest.test_case "int_in_range" `Quick test_rng_int_in_range;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "bool balance" `Quick test_rng_bool_balance;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample w/o replacement" `Quick
            test_rng_sample_without_replacement;
          Alcotest.test_case "exponential" `Quick test_rng_exponential_positive;
          Alcotest.test_case "geometric" `Quick test_rng_geometric;
          Alcotest.test_case "range errors" `Quick test_rng_range_errors;
          QCheck_alcotest.to_alcotest prop_rng_same_seed_same_stream ] );
      ( "pqueue",
        [ Alcotest.test_case "basic order" `Quick test_pqueue_basic_order;
          Alcotest.test_case "fifo ties" `Quick test_pqueue_fifo_ties;
          Alcotest.test_case "peek" `Quick test_pqueue_peek;
          Alcotest.test_case "clear" `Quick test_pqueue_clear;
          Alcotest.test_case "interleaved" `Quick test_pqueue_interleaved;
          QCheck_alcotest.to_alcotest prop_pqueue_sorts;
          QCheck_alcotest.to_alcotest prop_pqueue_stable ] );
      ( "stats",
        [ Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "mean/stddev" `Quick test_stats_mean_stddev;
          Alcotest.test_case "min/max" `Quick test_stats_minmax;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "linear fit" `Quick test_stats_linear_fit;
          Alcotest.test_case "growth exponent" `Quick test_stats_growth_exponent;
          Alcotest.test_case "growth drops nonpositive" `Quick
            test_stats_growth_exponent_drops_nonpositive;
          Alcotest.test_case "linear fit errors" `Quick test_stats_linear_fit_errors;
          Alcotest.test_case "percentile caching not quadratic" `Quick
            test_stats_percentile_caching_not_quadratic;
          Alcotest.test_case "percentile cache invalidated by add" `Quick
            test_stats_percentile_cache_invalidated ] );
      ( "json",
        [ Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "floats stay floats" `Quick
            test_json_floats_stay_floats;
          Alcotest.test_case "non-finite is null" `Quick
            test_json_nonfinite_is_null;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "whitespace tolerated" `Quick
            test_json_whitespace_tolerated ] );
      ( "table",
        [ Alcotest.test_case "renders" `Quick test_table_renders;
          Alcotest.test_case "ragged rejected" `Quick test_table_ragged_rejected ] )
    ]
