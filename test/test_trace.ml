(* Tests for the structured tracer: ring-buffer semantics, JSONL
   round-trips, timeline rendering, the events a traced fleet emits,
   and the no-perturbation guarantee when tracing is off. Also covers
   the metrics registry and the per-process latency recorder the
   tracer shipped with. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* ---- ring buffer ---- *)

let test_ring_keeps_newest () =
  let tr = Trace.create ~capacity:8 () in
  for round = 1 to 20 do
    Trace.emit tr (Trace.Vertex_created { node = 0; round })
  done;
  checki "emitted" 20 (Trace.emitted tr);
  checki "dropped" 12 (Trace.dropped tr);
  checki "capacity" 8 (Trace.capacity tr);
  let events = Trace.events tr in
  checki "retained" 8 (List.length events);
  let rounds =
    List.map
      (fun e ->
        match e.Trace.kind with
        | Trace.Vertex_created { round; _ } -> round
        | _ -> Alcotest.fail "unexpected kind")
      events
  in
  (* the newest 8 survive, oldest first *)
  checkb "newest kept" true (rounds = [ 13; 14; 15; 16; 17; 18; 19; 20 ]);
  let seqs = List.map (fun e -> e.Trace.seq) events in
  checkb "seqs monotone" true (List.sort compare seqs = seqs);
  checkb "seqs distinct" true
    (List.length (List.sort_uniq compare seqs) = List.length seqs)

let test_ring_under_capacity () =
  let tr = Trace.create ~capacity:16 () in
  for round = 1 to 5 do
    Trace.emit tr (Trace.Vertex_created { node = 1; round })
  done;
  checki "retained" 5 (List.length (Trace.events tr));
  checki "dropped" 0 (Trace.dropped tr)

let test_ring_bad_capacity () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Trace.create: capacity must be positive") (fun () ->
      ignore (Trace.create ~capacity:0 ()))

let test_clock_stamps () =
  let tr = Trace.create () in
  let now = ref 0.0 in
  Trace.set_clock tr (fun () -> !now);
  Trace.emit tr (Trace.Round_advanced { node = 0; round = 1 });
  now := 4.5;
  Trace.emit tr (Trace.Round_advanced { node = 0; round = 2 });
  match Trace.events tr with
  | [ a; b ] ->
    checkf "first at 0" 0.0 a.Trace.time;
    checkf "second at 4.5" 4.5 b.Trace.time
  | _ -> Alcotest.fail "expected two events"

(* ---- a traced fleet ---- *)

(* one traced run shared by the event-content tests below; commits as
   reported by the on_commit hook are the ground truth the trace is
   checked against *)
let traced_run =
  lazy
    (let tr = Trace.create ~capacity:200_000 () in
     let commit_log = ref [] in
     let options =
       { (Harness.Runner.default_options ~n:4) with
         Harness.Runner.trace = Some tr;
         on_commit =
           Some
             (fun ~node c ->
               commit_log := (node, c.Dagrider.Ordering.wave) :: !commit_log)
       }
     in
     let h = Harness.Runner.build options in
     Harness.Runner.run h ~until:50.0;
     (tr, List.rev !commit_log, Harness.Runner.delivered_refs h))

let test_times_monotone () =
  let tr, _, _ = Lazy.force traced_run in
  let events = Trace.events tr in
  checkb "nonempty" true (events <> []);
  checki "nothing dropped at this capacity" 0 (Trace.dropped tr);
  let rec go = function
    | a :: (b :: _ as rest) ->
      checkb "time monotone nondecreasing" true
        (a.Trace.time <= b.Trace.time);
      checkb "seq strictly increasing" true (a.Trace.seq < b.Trace.seq);
      go rest
    | _ -> ()
  in
  go events

let kinds_present events =
  List.sort_uniq compare (List.map (fun e -> Trace.kind_label e.Trace.kind) events)

let test_event_coverage () =
  let tr, _, _ = Lazy.force traced_run in
  let present = kinds_present (Trace.events tr) in
  List.iter
    (fun k ->
      checkb (Printf.sprintf "emits %s" k) true (List.mem k present))
    [ "send"; "recv"; "rbc-phase"; "vertex-created"; "vertex-added";
      "round-advanced"; "coin-flip"; "leader-elected"; "commit";
      "a-deliver"; "engine-sample" ]

let test_commit_events_cover_hook () =
  let tr, commit_log, _ = Lazy.force traced_run in
  checkb "fleet committed" true (commit_log <> []);
  let traced_commits =
    List.filter_map
      (fun e ->
        match e.Trace.kind with
        | Trace.Commit { node; wave; _ } -> Some (node, wave)
        | _ -> None)
      (Trace.events tr)
  in
  (* >= 1 commit trace event for every (node, wave) the hook reported *)
  List.iter
    (fun (node, wave) ->
      checkb
        (Printf.sprintf "trace has commit for node %d wave %d" node wave)
        true
        (List.mem (node, wave) traced_commits))
    commit_log;
  checki "and no extras" (List.length commit_log) (List.length traced_commits)

let test_disabled_trace_identical_run () =
  let _, _, traced_refs = Lazy.force traced_run in
  let run () =
    let h =
      Harness.Runner.build (Harness.Runner.default_options ~n:4)
    in
    Harness.Runner.run h ~until:50.0;
    Harness.Runner.delivered_refs h
  in
  let a = run () and b = run () in
  checkb "untraced runs replay" true (a = b);
  (* the tracer (including its engine sampler) must not change what the
     fleet delivers *)
  checkb "traced delivers the same logs" true (a = traced_refs)

(* ---- JSONL ---- *)

let test_jsonl_round_trip () =
  let tr, _, _ = Lazy.force traced_run in
  let events = Trace.events tr in
  match Trace.events_of_jsonl (Trace.to_jsonl tr) with
  | Error e -> Alcotest.fail ("parse failed: " ^ e)
  | Ok parsed ->
    checki "count" (List.length events) (List.length parsed);
    checkb "events round-trip exactly" true (parsed = events)

let test_jsonl_rejects_garbage () =
  (match Trace.events_of_jsonl "{\"seq\":1}\nnot json\n" with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error e -> checkb "error names the line" true (String.length e > 0));
  match Trace.events_of_jsonl "" with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "nonempty from empty input"
  | Error e -> Alcotest.fail e

(* ---- rendering ---- *)

let contains ~sub s =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_timeline_renders () =
  let tr, _, _ = Lazy.force traced_run in
  let out = Trace.render_timeline tr in
  List.iter
    (fun sub ->
      checkb (Printf.sprintf "timeline mentions %S" sub) true
        (contains ~sub out))
    [ "emitted"; "retained"; "dropped"; "send"; "recv"; "commit" ]

(* ---- metrics registry ---- *)

let test_registry_counters_gauges () =
  let r = Metrics.Registry.create () in
  Metrics.Registry.incr r "a" ();
  Metrics.Registry.incr r "a" ~by:4 ();
  Metrics.Registry.incr r "b" ~by:2 ();
  Metrics.Registry.set_gauge r "g" 1.5;
  Metrics.Registry.set_gauge r "g" 2.5;
  checki "a" 5 (Metrics.Registry.counter_value r "a");
  checki "b" 2 (Metrics.Registry.counter_value r "b");
  checki "missing counter" 0 (Metrics.Registry.counter_value r "zzz");
  checkb "gauge last-write-wins" true
    (Metrics.Registry.gauge_value r "g" = Some 2.5);
  checkb "missing gauge" true (Metrics.Registry.gauge_value r "zzz" = None)

let test_registry_histograms_and_snapshot () =
  let r = Metrics.Registry.create () in
  for i = 1 to 100 do
    Metrics.Registry.observe r "lat" (float_of_int i)
  done;
  Metrics.Registry.incr r "n" ~by:7 ();
  let snap = Metrics.Registry.snapshot r in
  checkb "counters sorted" true
    (snap.Metrics.Registry.counters = [ ("n", 7) ]);
  (match snap.Metrics.Registry.histograms with
  | [ ("lat", h) ] ->
    checki "count" 100 h.Metrics.Registry.h_count;
    checkf "mean" 50.5 h.Metrics.Registry.h_mean;
    checkf "p50" 50.0 h.Metrics.Registry.h_p50;
    checkf "p99" 99.0 h.Metrics.Registry.h_p99;
    checkf "max" 100.0 h.Metrics.Registry.h_max
  | _ -> Alcotest.fail "expected one histogram");
  (* the snapshot serializes to parseable JSON with all three sections *)
  let js = Stdx.Json.to_string (Metrics.Registry.snapshot_to_json snap) in
  match Stdx.Json.of_string js with
  | Ok v ->
    checkb "has counters" true (Stdx.Json.member "counters" v <> None);
    checkb "has gauges" true (Stdx.Json.member "gauges" v <> None);
    checkb "has histograms" true (Stdx.Json.member "histograms" v <> None)
  | Error e -> Alcotest.fail e

let test_runner_metrics_snapshot () =
  let h = Harness.Runner.build (Harness.Runner.default_options ~n:4) in
  Harness.Runner.run h ~until:40.0;
  let snap = Harness.Runner.metrics_snapshot h in
  let counter name =
    try List.assoc name snap.Metrics.Registry.counters
    with Not_found -> Alcotest.fail ("missing counter " ^ name)
  in
  checkb "bits flowed" true (counter "net.bits.total" > 0);
  checkb "honest <= total" true
    (counter "net.bits.honest" <= counter "net.bits.total");
  checkb "per-kind bracha counter present" true
    (List.mem_assoc "net.bits.bracha-echo" snap.Metrics.Registry.counters);
  checkb "delivered at p0" true (counter "node.0.delivered" > 0);
  checkb "latency histogram populated" true
    (match List.assoc_opt "latency.first_delivery"
             snap.Metrics.Registry.histograms with
    | Some hs -> hs.Metrics.Registry.h_count > 0
    | None -> false)

(* ---- per-process latency ---- *)

let test_per_process_latency () =
  let l = Metrics.Latency.create () in
  Metrics.Latency.proposed l "blk" ~now:10.0;
  Metrics.Latency.delivered l "blk" ~process:2 ~now:13.0;
  Metrics.Latency.delivered l "blk" ~process:0 ~now:11.5;
  (* a re-delivery at an already-recorded process must not count *)
  Metrics.Latency.delivered l "blk" ~process:2 ~now:99.0;
  checkb "sorted by process, first delivery only" true
    (Metrics.Latency.per_process_latency l "blk" = [ (0, 1.5); (2, 3.0) ]);
  checki "distinct deliverers" 2 (Metrics.Latency.delivery_count l "blk");
  checkb "unknown key" true (Metrics.Latency.per_process_latency l "?" = []);
  checkb "pooled distribution" true
    (List.sort compare (Metrics.Latency.all_per_process_latencies l)
    = [ 1.5; 3.0 ])

let test_runner_latency_recorder () =
  let h = Harness.Runner.build (Harness.Runner.default_options ~n:4) in
  Harness.Runner.run h ~until:40.0;
  let l = Harness.Runner.latency h in
  let firsts = Metrics.Latency.all_first_delivery_latencies l in
  checkb "blocks measured" true (firsts <> []);
  List.iter (fun x -> checkb "positive latency" true (x > 0.0)) firsts;
  (* per-process latencies pool at least as many samples as payloads *)
  checkb "per-process >= first-delivery samples" true
    (List.length (Metrics.Latency.all_per_process_latencies l)
    >= List.length firsts)

let () =
  Alcotest.run "trace"
    [ ( "ring",
        [ Alcotest.test_case "keeps newest" `Quick test_ring_keeps_newest;
          Alcotest.test_case "under capacity" `Quick test_ring_under_capacity;
          Alcotest.test_case "bad capacity" `Quick test_ring_bad_capacity;
          Alcotest.test_case "clock stamps" `Quick test_clock_stamps ] );
      ( "fleet",
        [ Alcotest.test_case "times monotone" `Quick test_times_monotone;
          Alcotest.test_case "event coverage" `Quick test_event_coverage;
          Alcotest.test_case "commit events cover hook" `Quick
            test_commit_events_cover_hook;
          Alcotest.test_case "disabled trace leaves run identical" `Quick
            test_disabled_trace_identical_run ] );
      ( "jsonl",
        [ Alcotest.test_case "round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage ] );
      ( "render",
        [ Alcotest.test_case "timeline" `Quick test_timeline_renders ] );
      ( "metrics",
        [ Alcotest.test_case "counters and gauges" `Quick
            test_registry_counters_gauges;
          Alcotest.test_case "histograms and snapshot" `Quick
            test_registry_histograms_and_snapshot;
          Alcotest.test_case "runner snapshot" `Quick
            test_runner_metrics_snapshot ] );
      ( "latency",
        [ Alcotest.test_case "per-process" `Quick test_per_process_latency;
          Alcotest.test_case "runner recorder" `Quick
            test_runner_latency_recorder ] )
    ]
