(* Tests for the protocol analyzer: the PR's acceptance criteria (a
   500+-wave honest run must report waves-per-commit within the paper's
   3/2 bound and chain quality within (f+1)/(2f+1); an injected
   partition stall must be flagged by the anomaly detector), the JSONL
   replay and JSON report paths, the classified DOT export, and the
   metrics edge cases the analyzer leans on (empty-log chain quality,
   all-Byzantine prefixes, single-sample percentiles, per-process
   latency corner cases). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let build_traced ?(n = 4) ?(seed = 42) ?(until = 40.0) ?(block_bytes = 32)
    ?gc_depth ?(capacity = 4096) ?(schedule = Harness.Runner.Uniform_random)
    ?(faults = []) () =
  let tracer = Trace.create ~capacity () in
  let fleet =
    Harness.Runner.build
      { (Harness.Runner.default_options ~n) with
        seed;
        schedule;
        block_bytes;
        gc_depth;
        faults;
        trace = Some tracer }
  in
  Harness.Runner.run fleet ~until;
  (fleet, tracer)

(* ---- acceptance: 500+-wave honest run within the paper's bounds ---- *)

let test_honest_500_waves () =
  (* GC keeps the causal-history walks bounded so a 500+-wave run stays
     fast; the analyzer sees the full stream through its sink even
     though the ring only retains the newest 4096 events *)
  let fleet, _ =
    build_traced ~block_bytes:0 ~gc_depth:8 ~until:4000.0 ()
  in
  let r = Option.get (Harness.Runner.analysis fleet) in
  checkb "500+ waves resolved" true (r.Analyze.r_waves_resolved >= 500);
  checkb "truncation not reported (sink saw everything)" false
    r.Analyze.r_truncated;
  checkb "waves per commit within Claim 6 bound" true
    (r.Analyze.r_waves_per_commit <= 1.5);
  checkb "claim6_ok agrees" true r.Analyze.r_claim6_ok;
  checkf "chain quality bound is (f+1)/(2f+1)" (2.0 /. 3.0)
    r.Analyze.r_chain_quality_bound;
  checkb "chain quality holds" true
    r.Analyze.r_chain_quality.Metrics.Chain_quality.holds;
  checkb "chain quality worst ratio >= bound" true
    (r.Analyze.r_chain_quality.Metrics.Chain_quality.worst_prefix_ratio
     >= r.Analyze.r_chain_quality_bound);
  checkb "ordered a substantial log" true (r.Analyze.r_ordered > 1000);
  (* every stage histogram of the commit-latency breakdown is populated *)
  List.iter
    (fun (stage, s) ->
      checkb (stage ^ " populated") true (s.Analyze.s_count > 0);
      checkb (stage ^ " p99 >= p50") true (s.Analyze.s_p99 >= s.Analyze.s_p50))
    r.Analyze.r_stages;
  checki "no incomplete vertices on a full stream" 0
    r.Analyze.r_incomplete_vertices;
  (* wave records are ascending and the last running mean matches *)
  let waves = List.map (fun w -> w.Analyze.w_wave) r.Analyze.r_waves in
  checkb "waves ascending" true (List.sort compare waves = waves)

(* ---- acceptance: injected partition stall is flagged ---- *)

let test_partition_stall_flagged () =
  (* quorum-splitting 2/2 partition for 30 time units mid-run: rounds
     and commits stop until the window closes, which the stall detector
     must flag *)
  let schedule =
    Harness.Runner.Custom
      (fun rng ->
        let inner = Net.Sched.uniform_random ~rng in
        Net.Sched.with_window ~inner ~from_time:30.0 ~until_time:60.0
          ~during:
            (Net.Sched.partition ~inner ~left:(fun i -> i < 2) ~factor:60.0))
  in
  let fleet, _ = build_traced ~schedule ~until:120.0 () in
  let r = Option.get (Harness.Runner.analysis fleet) in
  let is_stall = function
    | Analyze.Round_stall _ | Analyze.Commit_stall _
    | Analyze.Quorum_starvation _ ->
      true
    | Analyze.Skip_streak _ | Analyze.Slow_wave _ | Analyze.Lossy_link _
    | Analyze.Attacker_active _ | Analyze.Sync_rejections _ ->
      false
  in
  checkb "at least one stall anomaly flagged" true
    (List.exists is_stall r.Analyze.r_anomalies);
  (* the run recovers after the window: the horizon is not starved *)
  checkb "still made progress overall" true (r.Analyze.r_waves_resolved >= 5)

let test_honest_run_no_anomalies () =
  let fleet, _ = build_traced ~until:60.0 () in
  let r = Option.get (Harness.Runner.analysis fleet) in
  checki "clean honest run" 0 (List.length r.Analyze.r_anomalies)

(* ---- replay: JSONL round trip and of_tracer agree ---- *)

let test_jsonl_replay_matches_live () =
  let _, tracer = build_traced ~capacity:65536 ~until:40.0 () in
  checki "nothing dropped at this capacity" 0 (Trace.dropped tracer);
  let live = Analyze.of_tracer tracer in
  let path = Filename.temp_file "analyze" ".trace.jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc (Trace.to_jsonl tracer);
      close_out oc;
      match Analyze.of_jsonl_file path with
      | Error e -> Alcotest.fail e
      | Ok replayed ->
        checki "events" live.Analyze.r_events replayed.Analyze.r_events;
        checki "ordered" live.Analyze.r_ordered replayed.Analyze.r_ordered;
        checki "waves resolved" live.Analyze.r_waves_resolved
          replayed.Analyze.r_waves_resolved;
        checkf "waves per commit" live.Analyze.r_waves_per_commit
          replayed.Analyze.r_waves_per_commit;
        checki "anomaly count"
          (List.length live.Analyze.r_anomalies)
          (List.length replayed.Analyze.r_anomalies))

let test_jsonl_missing_file () =
  match Analyze.of_jsonl_file "/nonexistent/definitely-not-here.jsonl" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error _ -> ()

let test_report_json_parses () =
  let fleet, _ = build_traced ~until:40.0 () in
  let json = Option.get (Harness.Runner.analysis_report fleet) in
  let s = Stdx.Json.to_string json in
  match Stdx.Json.of_string s with
  | Error e -> Alcotest.fail e
  | Ok parsed ->
    let member k =
      match Stdx.Json.member k parsed with
      | Some v -> v
      | None -> Alcotest.fail (k ^ " missing from report JSON")
    in
    checkb "processes" true
      (Stdx.Json.to_int_opt (member "processes") = Some 4);
    checkb "waves_per_commit is a number" true
      (Stdx.Json.to_float_opt (member "waves_per_commit") <> None);
    checkb "claim6_bound" true
      (Stdx.Json.to_float_opt (member "claim6_bound") = Some 1.5);
    (match member "waves" with
    | Stdx.Json.List (_ :: _) -> ()
    | _ -> Alcotest.fail "waves should be a non-empty list");
    (match member "anomalies" with
    | Stdx.Json.List _ -> ()
    | _ -> Alcotest.fail "anomalies should be a list")

(* ---- DOT export ---- *)

let test_dot_classified_output () =
  let fleet, _ = build_traced ~until:60.0 () in
  let r = Option.get (Harness.Runner.analysis fleet) in
  let dag = Dagrider.Node.dag (Harness.Runner.node fleet 0) in
  let out = Analyze.dot ~dag r in
  let contains hay needle =
    let hl = String.length hay and nl = String.length needle in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  checkb "is a digraph" true (contains out "digraph");
  checkb "legend present" true (contains out "legend");
  checkb "committed leaders gold" true (contains out "fillcolor=gold");
  checkb "causal history shaded" true (contains out "fillcolor=gray90");
  (* explicit shade target: an uncommitted wave number shades nothing
     (the legend comment still mentions gray90, so match the attribute) *)
  let out2 = Analyze.dot ~shade_wave:9999 ~dag r in
  checkb "bogus shade wave leaves DAG unshaded" false
    (contains out2 "fillcolor=gray90")

(* ---- metrics edge cases (satellite #3) ---- *)

let test_chain_quality_empty_log () =
  let r =
    Metrics.Chain_quality.audit ~f:1 ~correct:(fun _ -> true) ~sources:[]
  in
  checki "total" 0 r.Metrics.Chain_quality.total;
  checki "correct entries" 0 r.Metrics.Chain_quality.correct_entries;
  checki "worst prefix len" 0 r.Metrics.Chain_quality.worst_prefix_len;
  checkf "worst prefix ratio" 1.0 r.Metrics.Chain_quality.worst_prefix_ratio;
  checkb "vacuously holds" true r.Metrics.Chain_quality.holds

let test_chain_quality_all_byzantine_prefix () =
  (* f=1: the first (2f+1)-prefix is entirely Byzantine, so the bound
     fails there no matter how correct the tail is *)
  let sources = [ 0; 0; 0; 1; 2; 3; 1; 2; 3 ] in
  let r =
    Metrics.Chain_quality.audit ~f:1 ~correct:(fun i -> i <> 0) ~sources
  in
  checkb "violated" false r.Metrics.Chain_quality.holds;
  checki "worst prefix is the first quorum" 3
    r.Metrics.Chain_quality.worst_prefix_len;
  checkf "its ratio is zero" 0.0 r.Metrics.Chain_quality.worst_prefix_ratio;
  checki "total still audited" 9 r.Metrics.Chain_quality.total

let test_single_sample_percentiles () =
  let s = Stdx.Stats.create () in
  Stdx.Stats.add s 7.25;
  checkf "p50 of one sample" 7.25 (Stdx.Stats.percentile s 50.0);
  checkf "p99 of one sample" 7.25 (Stdx.Stats.percentile s 99.0);
  checkf "p0 of one sample" 7.25 (Stdx.Stats.percentile s 0.0);
  let reg = Metrics.Registry.create () in
  Metrics.Registry.observe reg "solo" 3.5;
  let snap = Metrics.Registry.snapshot reg in
  let h = List.assoc "solo" snap.Metrics.Registry.histograms in
  checki "count" 1 h.Metrics.Registry.h_count;
  checkf "p50" 3.5 h.Metrics.Registry.h_p50;
  checkf "p99" 3.5 h.Metrics.Registry.h_p99

let test_per_process_latency_edges () =
  let l = Metrics.Latency.create () in
  (* never proposed: deliveries are ignored *)
  Metrics.Latency.delivered l "ghost" ~process:0 ~now:5.0;
  checkb "never proposed -> []" true
    (Metrics.Latency.per_process_latency l "ghost" = []);
  checkb "never proposed -> no first-delivery" true
    (Metrics.Latency.first_delivery_latency l "ghost" = None);
  (* proposed but undelivered *)
  Metrics.Latency.proposed l "pending" ~now:1.0;
  checkb "undelivered -> []" true
    (Metrics.Latency.per_process_latency l "pending" = []);
  checkb "undelivered is audited" true
    (List.mem "pending" (Metrics.Latency.undelivered l));
  (* only the first delivery at each process counts *)
  Metrics.Latency.proposed l "block" ~now:10.0;
  Metrics.Latency.delivered l "block" ~process:1 ~now:12.0;
  Metrics.Latency.delivered l "block" ~process:1 ~now:50.0;
  Metrics.Latency.delivered l "block" ~process:0 ~now:13.5;
  checkb "first delivery wins, sorted by process" true
    (Metrics.Latency.per_process_latency l "block" = [ (0, 3.5); (1, 2.0) ]);
  checkb "re-proposal keeps the original timestamp" true
    (Metrics.Latency.proposed l "block" ~now:0.0;
     Metrics.Latency.per_process_latency l "block" = [ (0, 3.5); (1, 2.0) ])

(* ---- faulted runs through the runner's analyzer config ---- *)

let test_byzantine_run_audited () =
  let fleet, _ =
    build_traced ~until:60.0 ~faults:[ Harness.Runner.Byzantine_live 0 ] ()
  in
  let r = Option.get (Harness.Runner.analysis fleet) in
  (* the runner marks p0 Byzantine for the audit and observes from the
     lowest correct process *)
  checkb "observer is correct" true (r.Analyze.r_observer <> 0);
  let cq = r.Analyze.r_chain_quality in
  checkb "byzantine entries counted" true
    (cq.Metrics.Chain_quality.correct_entries < cq.Metrics.Chain_quality.total);
  checkb "bound still holds with one live Byzantine" true
    cq.Metrics.Chain_quality.holds

let () =
  Alcotest.run "analyze"
    [ ( "acceptance",
        [ Alcotest.test_case "honest 500+-wave run within bounds" `Slow
            test_honest_500_waves;
          Alcotest.test_case "partition stall flagged" `Quick
            test_partition_stall_flagged;
          Alcotest.test_case "honest run has no anomalies" `Quick
            test_honest_run_no_anomalies ] );
      ( "replay",
        [ Alcotest.test_case "jsonl replay matches live" `Quick
            test_jsonl_replay_matches_live;
          Alcotest.test_case "missing file is an error" `Quick
            test_jsonl_missing_file;
          Alcotest.test_case "report JSON parses" `Quick
            test_report_json_parses ] );
      ( "dot",
        [ Alcotest.test_case "classified output" `Quick
            test_dot_classified_output ] );
      ( "metrics-edges",
        [ Alcotest.test_case "chain quality: empty log" `Quick
            test_chain_quality_empty_log;
          Alcotest.test_case "chain quality: all-Byzantine prefix" `Quick
            test_chain_quality_all_byzantine_prefix;
          Alcotest.test_case "single-sample percentiles" `Quick
            test_single_sample_percentiles;
          Alcotest.test_case "per-process latency edges" `Quick
            test_per_process_latency_edges;
          Alcotest.test_case "byzantine run audited" `Quick
            test_byzantine_run_audited ] ) ]
