(* Benchmark and experiment driver.

   Usage:
     dune exec bench/main.exe                  -- everything: all paper
                                                  tables + micro benches
     dune exec bench/main.exe -- table1-comm   -- one experiment
     dune exec bench/main.exe -- micro         -- Bechamel microbenches
     dune exec bench/main.exe -- list          -- list experiment names
     dune exec bench/main.exe -- baseline      -- write perf baseline
                                                  (BENCH.json, committed)
     dune exec bench/main.exe -- diff          -- compare a fresh run
                                                  against the baseline;
                                                  exit 1 on regression
                                                  (--advisory-time: report
                                                  time misses but gate only
                                                  alloc/count metrics)
     dune exec bench/main.exe -- diff --self-test
                                               -- hermetic gate check: an
                                                  unmodified rerun passes
                                                  and an injected 2x
                                                  slowdown fails

   Add "--json [FILE]" to any experiment invocation to also serialize
   the table(s) — rows, notes, and the runs' metrics snapshots
   (per-kind bit counters, latency percentiles, engine gauges) — as a
   JSON array. FILE defaults to BENCH_TABLES.json (BENCH.json is the
   committed perf baseline owned by `baseline`; EXPERIMENTS.md documents
   its schema).

   Each table regenerates one artifact of the paper (DESIGN.md §4 maps
   table/figure -> experiment id); EXPERIMENTS.md records paper-claimed
   vs measured values. *)

let experiments :
    (string * string * (unit -> Harness.Experiments.table)) list =
  [ ( "table1-comm",
      "Table 1 communication complexity column (E1)",
      fun () -> Harness.Experiments.table1_communication () );
    ( "table1-time",
      "Table 1 expected time complexity column (E2)",
      fun () -> Harness.Experiments.table1_time () );
    ( "table1-fairness",
      "Table 1 eventual fairness + post-quantum columns (E3)",
      fun () -> Harness.Experiments.table1_fairness () );
    ( "table1",
      "Table 1 combined reproduction",
      fun () -> Harness.Experiments.table1_combined () );
    ( "claim6-waves",
      "Claim 6: expected waves per commit (E6)",
      fun () -> Harness.Experiments.claim6_waves () );
    ( "chain-quality",
      "Chain quality bound of section 3 (E7)",
      fun () -> Harness.Experiments.chain_quality () );
    ( "batching",
      "Section 6.2 batching amortization (E8)",
      fun () -> Harness.Experiments.batching () );
    ( "ablation-waves",
      "Ablation: wave length 2..6",
      fun () -> Harness.Experiments.ablation_wave_length () );
    ( "ablation-rbc",
      "Ablation: reliable-broadcast backends",
      fun () -> Harness.Experiments.ablation_rbc () );
    ( "ablation-weak-edges",
      "Ablation: weak edges vs censorship",
      fun () -> Harness.Experiments.ablation_weak_edges () );
    ( "ablation-coin",
      "Ablation: coin transport (footnote 1 in-DAG shares)",
      fun () -> Harness.Experiments.ablation_coin () );
    ( "latency",
      "Proposal-to-delivery latency distribution",
      fun () -> Harness.Experiments.latency () );
    ( "ablation-gc",
      "Ablation: garbage collection window",
      fun () -> Harness.Experiments.ablation_gc () );
    ( "throughput",
      "Throughput scaling with n (DAG-Rider+AVID)",
      fun () -> Harness.Experiments.throughput () );
    ( "sustained-load",
      "Sustained load over time: monitored n=10 fleet, DAG growth",
      fun () -> Harness.Experiments.sustained_load () );
    ( "related-work",
      "Section 7: Aleph-style baseline vs DAG-Rider",
      fun () -> Harness.Experiments.related_work () );
    ( "rules-latency",
      "Commit rules on one substrate: Bullshark vs DAG-Rider latency",
      fun () -> Harness.Experiments.rules_latency () ) ]

(* ---- Bechamel microbenches (E9) plus one Test.make per paper table:
   each table's test runs a scaled-down instance of the simulation that
   regenerates it, so the cost of reproducing every artifact is itself
   tracked. ---- *)

let micro_tests () =
  let open Bechamel in
  let payload_1k = String.init 1024 (fun i -> Char.chr (i mod 256)) in
  let rs_coder = Crypto.Reed_solomon.make ~k:3 ~n:10 in
  let rs_frags = Crypto.Reed_solomon.encode rs_coder payload_1k in
  let rs_pieces = [ (0, rs_frags.(0)); (4, rs_frags.(4)); (9, rs_frags.(9)) ] in
  let merkle_leaves =
    Array.init 16 (fun i -> Printf.sprintf "leaf-%d-%s" i payload_1k)
  in
  let merkle_tree = Crypto.Merkle.build merkle_leaves in
  let merkle_proof = Crypto.Merkle.prove merkle_tree 7 in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.create 1) ~n:10 ~f:3 in
  let coin_shares =
    List.init 4 (fun holder ->
        Crypto.Threshold_coin.make_share coin ~holder ~instance:5)
  in
  (* a 40-round full DAG for path/history queries *)
  let dag =
    let dag = Dagrider.Dag.create ~n:4 in
    for round = 1 to 40 do
      let prev =
        List.map Dagrider.Vertex.vref_of
          (Dagrider.Dag.round_vertices dag (round - 1))
      in
      for source = 0 to 3 do
        Dagrider.Dag.add dag
          { Dagrider.Vertex.round; source; block = "b"; strong_edges = prev;
            weak_edges = [] }
      done
    done;
    dag
  in
  let vx =
    { Dagrider.Vertex.round = 9;
      source = 2;
      block = payload_1k;
      strong_edges =
        List.init 7 (fun source -> { Dagrider.Vertex.round = 8; source });
      weak_edges = [ { Dagrider.Vertex.round = 3; source = 1 } ] }
  in
  let vx_payload = Dagrider.Vertex.encode vx in
  let mini_run backend () =
    let opts =
      { (Harness.Runner.default_options ~n:4) with backend; block_bytes = 32 }
    in
    let h = Harness.Runner.build opts in
    Harness.Runner.run h ~until:10.0
  in
  let mini_smr protocol () =
    let rng = Stdx.Rng.create 3 in
    let engine = Sim.Engine.create () in
    let counters = Metrics.Counters.create () in
    let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng) in
    let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.split rng) ~n:4 in
    let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n:4 ~f:1 in
    let smr =
      Baselines.Smr.create ~engine ~counters ~sched ~auth ~coin ~protocol ~n:4
        ~f:1 ~concurrency:4 ~total_slots:4
        ~batch:(fun ~slot ~me -> Printf.sprintf "s%d-p%d" slot me)
        ~on_output:(fun ~slot:_ ~value:_ ~time:_ -> ())
        ()
    in
    Baselines.Smr.start smr;
    ignore (Sim.Engine.run engine ~until:100.0 ())
  in
  [ Test.make ~name:"sha256/1KiB"
      (Staged.stage (fun () -> ignore (Crypto.Sha256.digest_string payload_1k)));
    Test.make ~name:"rs/encode-1KiB-k3n10"
      (Staged.stage (fun () ->
           ignore (Crypto.Reed_solomon.encode rs_coder payload_1k)));
    Test.make ~name:"rs/decode-1KiB-k3n10"
      (Staged.stage (fun () ->
           ignore (Crypto.Reed_solomon.decode rs_coder ~data_len:1024 rs_pieces)));
    Test.make ~name:"merkle/build-16"
      (Staged.stage (fun () -> ignore (Crypto.Merkle.build merkle_leaves)));
    Test.make ~name:"merkle/verify"
      (Staged.stage (fun () ->
           ignore
             (Crypto.Merkle.verify
                ~root:(Crypto.Merkle.root merkle_tree)
                ~leaf_count:16 ~leaf:merkle_leaves.(7) merkle_proof)));
    Test.make ~name:"coin/combine-f3"
      (Staged.stage (fun () ->
           ignore (Crypto.Threshold_coin.combine coin ~instance:5 coin_shares)));
    Test.make ~name:"vertex/encode"
      (Staged.stage (fun () -> ignore (Dagrider.Vertex.encode vx)));
    Test.make ~name:"vertex/decode"
      (Staged.stage (fun () ->
           ignore (Dagrider.Vertex.decode ~round:9 ~source:2 vx_payload)));
    Test.make ~name:"dag/strong-path-depth-39"
      (Staged.stage (fun () ->
           ignore
             (Dagrider.Dag.strong_path dag
                { Dagrider.Vertex.round = 40; source = 0 }
                { Dagrider.Vertex.round = 1; source = 3 })));
    Test.make ~name:"dag/causal-history-r40"
      (Staged.stage (fun () ->
           ignore
             (Dagrider.Dag.causal_history dag
                { Dagrider.Vertex.round = 40; source = 0 })));
    (* one Test.make per paper table: scaled-down regeneration cost *)
    Test.make ~name:"table1-comm/dagrider-bracha-n4"
      (Staged.stage (mini_run Harness.Runner.Bracha));
    Test.make ~name:"table1-comm/dagrider-avid-n4"
      (Staged.stage (mini_run Harness.Runner.Avid));
    Test.make ~name:"table1-comm/dagrider-gossip-n4"
      (Staged.stage (mini_run Harness.Runner.Gossip));
    Test.make ~name:"table1-time/vaba-smr-n4"
      (Staged.stage (mini_smr Baselines.Smr.Vaba_smr));
    Test.make ~name:"table1-time/dumbo-smr-n4"
      (Staged.stage (mini_smr Baselines.Smr.Dumbo_smr)) ]

let run_micro () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) () in
  print_endline "== E9 / microbenchmarks (Bechamel, monotonic clock) ==";
  Printf.printf "%-36s %14s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name result ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              instance result
          in
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "%-36s %11.0f ns\n" name t
          | Some _ | None -> Printf.printf "%-36s %14s\n" name "n/a")
        results)
    (micro_tests ())

(* ---- performance baseline & regression diff (E10) ----

   `baseline` measures a fixed set of scaled-down, fixed-seed scenarios
   and writes schema-versioned medians + MADs to BENCH.json (committed).
   `diff` reruns the same scenarios and gates each metric against the
   baseline: wall-time thresholds are rescaled by a CPU calibration spin
   measured on both machines, allocation and logical counts are held to
   much tighter bounds because fixed seeds make them near-deterministic. *)

module Regress = struct
  type kind = Time | Alloc | Count

  let kind_name = function Time -> "time" | Alloc -> "alloc" | Count -> "count"

  let kind_of_name = function
    | "time" -> Some Time
    | "alloc" -> Some Alloc
    | "count" -> Some Count
    | _ -> None

  let schema = "dagrider-bench/1"

  let default_time_threshold = 0.5

  (* relative headroom per kind: wall time is noisy, allocation nearly
     deterministic, logical counts exactly reproducible with the seed *)
  let threshold ~time_threshold = function
    | Time -> time_threshold
    | Alloc -> 0.10
    | Count -> 0.02

  (* absolute slack floors so microscopic metrics don't gate on noise *)
  let slack = function Time -> 0.005 | Alloc -> 65536.0 | Count -> 1.0

  (* -- scenarios: each run returns (metric, kind, value) rows -- *)

  (* OCaml 5's [Gc.allocated_bytes] is quantized to whole minor-heap
     arenas; flushing the young generation first makes the counter
     byte-exact, which is what lets Alloc metrics gate at 10% *)
  let alloc_now () =
    Gc.minor ();
    Gc.allocated_bytes ()

  let fleet ?(trace = false) ?link_faults ?rule ?schedule ~backend ~n ~until ()
      =
    let tracer =
      if trace then Some (Trace.create ~capacity:4096 ()) else None
    in
    let base = Harness.Runner.default_options ~n in
    let fleet =
      Harness.Runner.build
        { base with
          backend;
          block_bytes = 32;
          link_faults;
          rule = Option.value rule ~default:base.Harness.Runner.rule;
          schedule = Option.value schedule ~default:base.Harness.Runner.schedule;
          trace = tracer }
    in
    let a0 = alloc_now () in
    let t0 = Unix.gettimeofday () in
    Harness.Runner.run fleet ~until;
    let dt = Unix.gettimeofday () -. t0 in
    let da = alloc_now () -. a0 in
    [ ("time_s", Time, dt);
      ("alloc_bytes", Alloc, da);
      ( "delivered",
        Count,
        float_of_int
          (Dagrider.Ordering.delivered_count
             (Dagrider.Node.ordering (Harness.Runner.node fleet 0))) );
      ("honest_bits", Count, float_of_int (Harness.Runner.honest_bits fleet))
    ]

  let dag_paths () =
    let dag = Dagrider.Dag.create ~n:4 in
    for round = 1 to 40 do
      let prev =
        List.map Dagrider.Vertex.vref_of
          (Dagrider.Dag.round_vertices dag (round - 1))
      in
      for source = 0 to 3 do
        Dagrider.Dag.add dag
          { Dagrider.Vertex.round;
            source;
            block = "b";
            strong_edges = prev;
            weak_edges = [] }
      done
    done;
    let a0 = alloc_now () in
    let t0 = Unix.gettimeofday () in
    let reached = ref 0 in
    for i = 0 to 499 do
      if
        Dagrider.Dag.strong_path dag
          { Dagrider.Vertex.round = 40; source = i mod 4 }
          { Dagrider.Vertex.round = 1; source = (i + 1) mod 4 }
      then incr reached
    done;
    let history = ref 0 in
    for _ = 1 to 5 do
      for source = 0 to 3 do
        history :=
          !history
          + List.length
              (Dagrider.Dag.causal_history dag
                 { Dagrider.Vertex.round = 40; source })
      done
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let da = alloc_now () -. a0 in
    [ ("time_s", Time, dt);
      ("alloc_bytes", Alloc, da);
      ("reached", Count, float_of_int !reached);
      ("history_len", Count, float_of_int !history) ]

  (* the critical-path tracer at fleet scale: a traced synchronous n=10
     run plus the full per-commit reconstruction, with the
     reconciliation counters (segment sums vs end-to-end latency) gated
     as exact Counts — a reconstruction regression shows up as a count
     drop before it shows up as wrong attributions *)
  let critpath_sync () =
    let tracer = Trace.create ~capacity:4096 () in
    let fleet =
      Harness.Runner.build
        { (Harness.Runner.default_options ~n:10) with
          backend = Harness.Runner.Bracha;
          schedule = Harness.Runner.Synchronous;
          block_bytes = 32;
          trace = Some tracer }
    in
    let a0 = alloc_now () in
    let t0 = Unix.gettimeofday () in
    Harness.Runner.run fleet ~until:60.0;
    let report =
      match Harness.Runner.critpath_report fleet with
      | Some r -> r
      | None -> failwith "critpath.n10.sync: traced fleet has no collector"
    in
    let dt = Unix.gettimeofday () -. t0 in
    let da = alloc_now () -. a0 in
    [ ("time_s", Time, dt);
      ("alloc_bytes", Alloc, da);
      ("commits", Count, float_of_int (List.length report.Critpath.r_paths));
      ("complete", Count, float_of_int report.Critpath.r_complete);
      ("reconciled", Count, float_of_int report.Critpath.r_reconciled) ]

  let scenarios =
    [ ( "bracha.n4",
        fun () -> fleet ~backend:Harness.Runner.Bracha ~n:4 ~until:60.0 () );
      ( "avid.n4",
        fun () -> fleet ~backend:Harness.Runner.Avid ~n:4 ~until:40.0 () );
      ( "gossip.n4",
        fun () -> fleet ~backend:Harness.Runner.Gossip ~n:4 ~until:60.0 () );
      ( "bracha.n7.lossy",
        fun () ->
          fleet ~backend:Harness.Runner.Bracha ~n:7 ~until:25.0
            ~link_faults:
              { Harness.Runner.default_link_faults with
                lf_drop = 0.05;
                lf_duplicate = 0.02 }
            () );
      ( "bracha.n4.traced",
        fun () ->
          fleet ~trace:true ~backend:Harness.Runner.Bracha ~n:4 ~until:60.0 ()
      );
      (* the Bullshark rule at fleet scale, on the same substrate the
         dagrider scenarios measure. "sync" is its best case — a
         synchronous period where every round-robin leader commits
         directly; "fallback" slows process 0 heavily, so every wave it
         leads misses its votes and is skipped (the timeout path),
         exercising the chain-back recovery the rule leans on *)
      ( "bullshark.n10.sync",
        fun () ->
          fleet
            ~rule:Dagrider.Ordering.bullshark
            ~schedule:Harness.Runner.Synchronous ~backend:Harness.Runner.Bracha
            ~n:10 ~until:30.0 () );
      ( "bullshark.n10.fallback",
        fun () ->
          fleet
            ~rule:Dagrider.Ordering.bullshark
            ~schedule:
              (Harness.Runner.Custom
                 (fun rng ->
                   Net.Sched.delay_process
                     ~inner:(Net.Sched.uniform_random ~rng)
                     ~victim:0 ~factor:12.0))
            ~backend:Harness.Runner.Bracha ~n:10 ~until:30.0 () );
      ( "dagrider.n10.sync",
        fun () ->
          fleet ~schedule:Harness.Runner.Synchronous
            ~backend:Harness.Runner.Bracha ~n:10 ~until:30.0 () );
      ("critpath.n10.sync", critpath_sync);
      ("dag.paths", dag_paths) ]

  (* -- statistics -- *)

  let median xs =
    let a = Array.of_list xs in
    Array.sort compare a;
    let k = Array.length a in
    if k = 0 then 0.0
    else if k mod 2 = 1 then a.(k / 2)
    else (a.((k / 2) - 1) +. a.(k / 2)) /. 2.0

  let mad xs =
    let m = median xs in
    median (List.map (fun x -> Float.abs (x -. m)) xs)

  (* fixed CPU-bound spin, measured when the baseline is written and
     again at diff time: the ratio rescales wall-time bounds so a
     committed baseline transfers across machines *)
  let calibrate () =
    let spin () =
      let t0 = Unix.gettimeofday () in
      let acc = ref 0 in
      for i = 1 to 20_000_000 do
        acc := (!acc + i) land 0xFFFFFF
      done;
      ignore (Sys.opaque_identity !acc);
      Unix.gettimeofday () -. t0
    in
    ignore (spin ());
    Float.min (spin ()) (spin ())

  type metric = { m_kind : kind; m_median : float; m_mad : float }

  type record = {
    r_calibration : float;
    r_repeats : int;
    r_scenarios : (string * (string * metric) list) list;
  }

  let measure ?(progress = false) ~repeats () =
    let cal = calibrate () in
    let scen =
      List.map
        (fun (name, run) ->
          if progress then Printf.printf "  %s x%d...\n%!" name repeats;
          let samples = Hashtbl.create 8 in
          let order = ref [] in
          for _ = 1 to repeats do
            List.iter
              (fun (m, kind, v) ->
                match Hashtbl.find_opt samples m with
                | Some (k, vs) -> Hashtbl.replace samples m (k, v :: vs)
                | None ->
                  order := m :: !order;
                  Hashtbl.add samples m (kind, [ v ]))
              (run ())
          done;
          let metrics =
            List.rev_map
              (fun m ->
                let kind, vs = Hashtbl.find samples m in
                (m, { m_kind = kind; m_median = median vs; m_mad = mad vs }))
              !order
          in
          (name, metrics))
        scenarios
    in
    { r_calibration = cal; r_repeats = repeats; r_scenarios = scen }

  (* -- (de)serialization -- *)

  let to_json r =
    let open Stdx.Json in
    let metric_json (name, m) =
      ( name,
        Obj
          [ ("kind", String (kind_name m.m_kind));
            ("median", Float m.m_median);
            ("mad", Float m.m_mad) ] )
    in
    Obj
      [ ("schema", String schema);
        ("calibration_s", Float r.r_calibration);
        ("repeats", Int r.r_repeats);
        ( "scenarios",
          Obj
            (List.map
               (fun (n, ms) -> (n, Obj (List.map metric_json ms)))
               r.r_scenarios) ) ]

  let of_json j =
    let getf name obj =
      match Option.bind (Stdx.Json.member name obj) Stdx.Json.to_float_opt with
      | Some f -> f
      | None -> failwith name
    in
    match Stdx.Json.member "schema" j with
    | Some (Stdx.Json.String s) when s = schema -> (
      try
        let repeats =
          match
            Option.bind (Stdx.Json.member "repeats" j) Stdx.Json.to_int_opt
          with
          | Some k -> k
          | None -> failwith "repeats"
        in
        let scen =
          match Stdx.Json.member "scenarios" j with
          | Some (Stdx.Json.Obj scen) ->
            List.map
              (fun (sname, sobj) ->
                match sobj with
                | Stdx.Json.Obj ms ->
                  ( sname,
                    List.map
                      (fun (mname, mobj) ->
                        let kind =
                          match Stdx.Json.member "kind" mobj with
                          | Some (Stdx.Json.String k) -> (
                            match kind_of_name k with
                            | Some k -> k
                            | None -> failwith "kind")
                          | _ -> failwith "kind"
                        in
                        ( mname,
                          { m_kind = kind;
                            m_median = getf "median" mobj;
                            m_mad = getf "mad" mobj } ))
                      ms )
                | _ -> failwith "scenario")
              scen
          | _ -> failwith "scenarios"
        in
        Ok
          { r_calibration = getf "calibration_s" j;
            r_repeats = repeats;
            r_scenarios = scen }
      with Failure m -> Error ("bad baseline field: " ^ m))
    | Some (Stdx.Json.String s) ->
      Error (Printf.sprintf "unsupported schema %S (want %S)" s schema)
    | _ -> Error "missing schema"

  (* -- the gate -- *)

  type verdict = {
    v_scenario : string;
    v_metric : string;
    v_kind : kind;
    v_base : float;
    v_fresh : float;
    v_allowed : float;
    v_regressed : bool;
  }

  (* [inject] multiplies fresh Time medians before the comparison — the
     self-test's artificial slowdown, applied after measurement so the
     check is deterministic and costs nothing *)
  let diff ?(inject = 1.0) ~time_threshold ~base ~fresh () =
    let scale_time =
      if base.r_calibration > 0.0 then
        fresh.r_calibration /. base.r_calibration
      else 1.0
    in
    List.concat_map
      (fun (sname, metrics) ->
        let fresh_metrics =
          Option.value ~default:[] (List.assoc_opt sname fresh.r_scenarios)
        in
        List.map
          (fun (mname, bm) ->
            match List.assoc_opt mname fresh_metrics with
            | None ->
              (* a vanished metric is itself a regression of coverage *)
              { v_scenario = sname;
                v_metric = mname;
                v_kind = bm.m_kind;
                v_base = bm.m_median;
                v_fresh = nan;
                v_allowed = nan;
                v_regressed = true }
            | Some fm ->
              let scale =
                match bm.m_kind with Time -> scale_time | _ -> 1.0
              in
              let measured =
                match bm.m_kind with
                | Time -> fm.m_median *. inject
                | _ -> fm.m_median
              in
              let thr = threshold ~time_threshold bm.m_kind in
              let allowed =
                (scale *. ((bm.m_median *. (1.0 +. thr)) +. (3.0 *. bm.m_mad)))
                +. slack bm.m_kind
              in
              { v_scenario = sname;
                v_metric = mname;
                v_kind = bm.m_kind;
                v_base = bm.m_median;
                v_fresh = measured;
                v_allowed = allowed;
                v_regressed = measured > allowed })
          metrics)
      base.r_scenarios

  let regressions vs = List.filter (fun v -> v.v_regressed) vs

  let render_verdicts vs =
    Printf.printf "%-18s %-12s %-6s %12s %12s %12s  %s\n" "scenario" "metric"
      "kind" "baseline" "fresh" "allowed" "verdict";
    List.iter
      (fun v ->
        Printf.printf "%-18s %-12s %-6s %12.4g %12.4g %12.4g  %s\n"
          v.v_scenario v.v_metric (kind_name v.v_kind) v.v_base v.v_fresh
          v.v_allowed
          (if v.v_regressed then "REGRESSED" else "ok"))
      vs
end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* numeric flag values get a clean usage error, not an uncaught
   [Failure "int_of_string"] stack trace *)
let int_flag ~cmd ~flag v =
  match int_of_string_opt v with
  | Some i -> i
  | None ->
    Printf.eprintf "%s: %s expects an integer, got %S\n" cmd flag v;
    exit 2

let float_flag ~cmd ~flag v =
  match float_of_string_opt v with
  | Some f -> f
  | None ->
    Printf.eprintf "%s: %s expects a number, got %S\n" cmd flag v;
    exit 2

let run_baseline args =
  let out = ref "BENCH.json" in
  let repeats = ref 5 in
  let rec parse = function
    | [] -> ()
    | "--out" :: v :: rest ->
      out := v;
      parse rest
    | "--repeats" :: v :: rest ->
      repeats := int_flag ~cmd:"baseline" ~flag:"--repeats" v;
      parse rest
    | a :: _ ->
      Printf.eprintf "baseline: unknown argument %S\n" a;
      exit 2
  in
  parse args;
  Printf.printf "measuring %d scenarios x %d repeats...\n%!"
    (List.length Regress.scenarios) !repeats;
  let record = Regress.measure ~progress:true ~repeats:!repeats () in
  let oc = open_out !out in
  output_string oc (Stdx.Json.to_string (Regress.to_json record));
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (schema %s, calibration %.3fs)\n" !out Regress.schema
    record.Regress.r_calibration

let run_diff args =
  let file = ref "BENCH.json" in
  let repeats = ref 5 in
  let time_threshold = ref Regress.default_time_threshold in
  let inject = ref 1.0 in
  let self_test = ref false in
  let advisory_time = ref false in
  let rec parse = function
    | [] -> ()
    | "--baseline" :: v :: rest ->
      file := v;
      parse rest
    | "--repeats" :: v :: rest ->
      repeats := int_flag ~cmd:"diff" ~flag:"--repeats" v;
      parse rest
    | "--threshold" :: v :: rest ->
      time_threshold := float_flag ~cmd:"diff" ~flag:"--threshold" v;
      parse rest
    | "--inject-slowdown" :: v :: rest ->
      inject := float_flag ~cmd:"diff" ~flag:"--inject-slowdown" v;
      parse rest
    | "--self-test" :: rest ->
      self_test := true;
      parse rest
    | "--advisory-time" :: rest ->
      advisory_time := true;
      parse rest
    | a :: _ ->
      Printf.eprintf "diff: unknown argument %S\n" a;
      exit 2
  in
  parse args;
  if !self_test then begin
    (* hermetic: both records come from this machine and binary, so the
       check does not depend on the committed baseline's hardware *)
    Printf.printf "self-test: deriving a fresh baseline...\n%!";
    let base = Regress.measure ~repeats:!repeats () in
    Printf.printf "self-test: rerunning unmodified...\n%!";
    let fresh = Regress.measure ~repeats:!repeats () in
    let clean =
      Regress.diff ~time_threshold:!time_threshold ~base ~fresh ()
    in
    let slowed =
      Regress.diff ~inject:2.0 ~time_threshold:!time_threshold ~base ~fresh ()
    in
    let clean_bad = Regress.regressions clean in
    let slow_hit =
      List.exists
        (fun v -> v.Regress.v_regressed && v.Regress.v_kind = Regress.Time)
        slowed
    in
    if clean_bad <> [] then begin
      print_endline "self-test FAILED: unmodified rerun was flagged:";
      Regress.render_verdicts clean_bad;
      exit 1
    end;
    if not slow_hit then begin
      print_endline
        "self-test FAILED: an injected 2x slowdown was not detected:";
      Regress.render_verdicts slowed;
      exit 1
    end;
    Printf.printf
      "self-test OK: unmodified rerun passes (%d metrics), injected 2x \
       slowdown detected (%d time regressions)\n"
      (List.length clean)
      (List.length
         (List.filter (fun v -> v.Regress.v_regressed) slowed))
  end
  else begin
    let base =
      match Stdx.Json.of_string (read_file !file) with
      | Ok json -> (
        match Regress.of_json json with
        | Ok base -> base
        | Error e ->
          Printf.eprintf "diff: %s: %s\n" !file e;
          exit 2)
      | Error e ->
        Printf.eprintf "diff: %s: %s\n" !file e;
        exit 2
      | exception Sys_error e ->
        Printf.eprintf "diff: %s (run `baseline` first)\n" e;
        exit 2
    in
    Printf.printf "measuring %d scenarios x %d repeats against %s...\n%!"
      (List.length Regress.scenarios) !repeats !file;
    let fresh = Regress.measure ~progress:true ~repeats:!repeats () in
    let verdicts =
      Regress.diff ~inject:!inject ~time_threshold:!time_threshold ~base
        ~fresh ()
    in
    Regress.render_verdicts verdicts;
    Printf.printf
      "calibration: baseline %.3fs, here %.3fs (time bounds scaled %.2fx)\n"
      base.Regress.r_calibration fresh.Regress.r_calibration
      (if base.Regress.r_calibration > 0.0 then
         fresh.Regress.r_calibration /. base.Regress.r_calibration
       else 1.0);
    let bad = Regress.regressions verdicts in
    (* --advisory-time: wall time on a shared machine (a CI runner) is
       subject to co-tenant jitter the calibration spin cannot see, so
       time misses are reported but only the near-deterministic
       alloc/count metrics decide the exit status *)
    let gating, advisory =
      if !advisory_time then
        List.partition (fun v -> v.Regress.v_kind <> Regress.Time) bad
      else (bad, [])
    in
    if advisory <> [] then
      Printf.printf "%d time regression(s) — advisory only, not gating\n"
        (List.length advisory);
    if gating = [] then print_endline "no gating regressions"
    else begin
      Printf.printf "%d metric(s) regressed\n" (List.length gating);
      exit 1
    end
  end

let run_experiment (name, _desc, f) =
  let t0 = Sys.time () in
  let table = f () in
  let dt = Sys.time () -. t0 in
  print_string (Harness.Experiments.render table);
  Printf.printf "  (regenerated in %.1fs cpu)\n\n" dt;
  (name, table)

let write_json path named_tables =
  let entry (name, table) =
    match Harness.Experiments.to_json table with
    | Stdx.Json.Obj fields ->
      Stdx.Json.Obj (("experiment", Stdx.Json.String name) :: fields)
    | other -> other
  in
  let json = Stdx.Json.List (List.map entry named_tables) in
  let oc = open_out path in
  output_string oc (Stdx.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d experiment%s)\n" path
    (List.length named_tables)
    (if List.length named_tables = 1 then "" else "s")

(* experiment tables go to a separate default file: BENCH.json is the
   committed perf baseline written by the `baseline` subcommand *)
let default_json_file = "BENCH_TABLES.json"

(* pull "--json [FILE]" out of the argument list; the remaining
   arguments parse as before *)
let rec extract_json acc = function
  | [] -> (None, List.rev acc)
  | "--json" :: rest -> (
    match rest with
    | file :: more when file = "" || file.[0] <> '-' ->
      (Some file, List.rev_append acc more)
    | _ -> (Some default_json_file, List.rev_append acc rest))
  | a :: rest -> extract_json (a :: acc) rest

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json_out, args = extract_json [] args in
  let maybe_write tables =
    match json_out with None -> () | Some path -> write_json path tables
  in
  match args with
  | [ "list" ] ->
    List.iter
      (fun (name, desc, _) -> Printf.printf "%-22s %s\n" name desc)
      experiments;
    print_endline "micro                  Bechamel microbenchmarks (E9)";
    print_endline
      "baseline               write the perf baseline BENCH.json (E10)";
    print_endline
      "diff                   gate a fresh run against BENCH.json (E10)"
  | [ "micro" ] -> run_micro ()
  | "baseline" :: rest -> run_baseline rest
  | "diff" :: rest -> run_diff rest
  | [ name ] -> (
    match List.find_opt (fun (n, _, _) -> n = name) experiments with
    | Some exp -> maybe_write [ run_experiment exp ]
    | None ->
      Printf.eprintf "unknown experiment %S; try 'list'\n" name;
      exit 1)
  | [] ->
    print_endline
      "DAG-Rider reproduction: regenerating every paper table/figure\n";
    let tables = List.map run_experiment experiments in
    run_micro ();
    maybe_write tables
  | _ ->
    prerr_endline
      "usage: main.exe [list | micro | baseline | diff | <experiment>] \
       [--json [FILE]]";
    exit 1
