(* Benchmark and experiment driver.

   Usage:
     dune exec bench/main.exe                  -- everything: all paper
                                                  tables + micro benches
     dune exec bench/main.exe -- table1-comm   -- one experiment
     dune exec bench/main.exe -- micro         -- Bechamel microbenches
     dune exec bench/main.exe -- list          -- list experiment names

   Add "--json [FILE]" to any experiment invocation to also serialize
   the table(s) — rows, notes, and the runs' metrics snapshots
   (per-kind bit counters, latency percentiles, engine gauges) — as a
   JSON array. FILE defaults to BENCH.json.

   Each table regenerates one artifact of the paper (DESIGN.md §4 maps
   table/figure -> experiment id); EXPERIMENTS.md records paper-claimed
   vs measured values. *)

let experiments :
    (string * string * (unit -> Harness.Experiments.table)) list =
  [ ( "table1-comm",
      "Table 1 communication complexity column (E1)",
      fun () -> Harness.Experiments.table1_communication () );
    ( "table1-time",
      "Table 1 expected time complexity column (E2)",
      fun () -> Harness.Experiments.table1_time () );
    ( "table1-fairness",
      "Table 1 eventual fairness + post-quantum columns (E3)",
      fun () -> Harness.Experiments.table1_fairness () );
    ( "table1",
      "Table 1 combined reproduction",
      fun () -> Harness.Experiments.table1_combined () );
    ( "claim6-waves",
      "Claim 6: expected waves per commit (E6)",
      fun () -> Harness.Experiments.claim6_waves () );
    ( "chain-quality",
      "Chain quality bound of section 3 (E7)",
      fun () -> Harness.Experiments.chain_quality () );
    ( "batching",
      "Section 6.2 batching amortization (E8)",
      fun () -> Harness.Experiments.batching () );
    ( "ablation-waves",
      "Ablation: wave length 2..6",
      fun () -> Harness.Experiments.ablation_wave_length () );
    ( "ablation-rbc",
      "Ablation: reliable-broadcast backends",
      fun () -> Harness.Experiments.ablation_rbc () );
    ( "ablation-weak-edges",
      "Ablation: weak edges vs censorship",
      fun () -> Harness.Experiments.ablation_weak_edges () );
    ( "ablation-coin",
      "Ablation: coin transport (footnote 1 in-DAG shares)",
      fun () -> Harness.Experiments.ablation_coin () );
    ( "latency",
      "Proposal-to-delivery latency distribution",
      fun () -> Harness.Experiments.latency () );
    ( "ablation-gc",
      "Ablation: garbage collection window",
      fun () -> Harness.Experiments.ablation_gc () );
    ( "throughput",
      "Throughput scaling with n (DAG-Rider+AVID)",
      fun () -> Harness.Experiments.throughput () );
    ( "related-work",
      "Section 7: Aleph-style baseline vs DAG-Rider",
      fun () -> Harness.Experiments.related_work () ) ]

(* ---- Bechamel microbenches (E9) plus one Test.make per paper table:
   each table's test runs a scaled-down instance of the simulation that
   regenerates it, so the cost of reproducing every artifact is itself
   tracked. ---- *)

let micro_tests () =
  let open Bechamel in
  let payload_1k = String.init 1024 (fun i -> Char.chr (i mod 256)) in
  let rs_coder = Crypto.Reed_solomon.make ~k:3 ~n:10 in
  let rs_frags = Crypto.Reed_solomon.encode rs_coder payload_1k in
  let rs_pieces = [ (0, rs_frags.(0)); (4, rs_frags.(4)); (9, rs_frags.(9)) ] in
  let merkle_leaves =
    Array.init 16 (fun i -> Printf.sprintf "leaf-%d-%s" i payload_1k)
  in
  let merkle_tree = Crypto.Merkle.build merkle_leaves in
  let merkle_proof = Crypto.Merkle.prove merkle_tree 7 in
  let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.create 1) ~n:10 ~f:3 in
  let coin_shares =
    List.init 4 (fun holder ->
        Crypto.Threshold_coin.make_share coin ~holder ~instance:5)
  in
  (* a 40-round full DAG for path/history queries *)
  let dag =
    let dag = Dagrider.Dag.create ~n:4 in
    for round = 1 to 40 do
      let prev =
        List.map Dagrider.Vertex.vref_of
          (Dagrider.Dag.round_vertices dag (round - 1))
      in
      for source = 0 to 3 do
        Dagrider.Dag.add dag
          { Dagrider.Vertex.round; source; block = "b"; strong_edges = prev;
            weak_edges = [] }
      done
    done;
    dag
  in
  let vx =
    { Dagrider.Vertex.round = 9;
      source = 2;
      block = payload_1k;
      strong_edges =
        List.init 7 (fun source -> { Dagrider.Vertex.round = 8; source });
      weak_edges = [ { Dagrider.Vertex.round = 3; source = 1 } ] }
  in
  let vx_payload = Dagrider.Vertex.encode vx in
  let mini_run backend () =
    let opts =
      { (Harness.Runner.default_options ~n:4) with backend; block_bytes = 32 }
    in
    let h = Harness.Runner.build opts in
    Harness.Runner.run h ~until:10.0
  in
  let mini_smr protocol () =
    let rng = Stdx.Rng.create 3 in
    let engine = Sim.Engine.create () in
    let counters = Metrics.Counters.create () in
    let sched = Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng) in
    let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.split rng) ~n:4 in
    let coin = Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n:4 ~f:1 in
    let smr =
      Baselines.Smr.create ~engine ~counters ~sched ~auth ~coin ~protocol ~n:4
        ~f:1 ~concurrency:4 ~total_slots:4
        ~batch:(fun ~slot ~me -> Printf.sprintf "s%d-p%d" slot me)
        ~on_output:(fun ~slot:_ ~value:_ ~time:_ -> ())
        ()
    in
    Baselines.Smr.start smr;
    ignore (Sim.Engine.run engine ~until:100.0 ())
  in
  [ Test.make ~name:"sha256/1KiB"
      (Staged.stage (fun () -> ignore (Crypto.Sha256.digest_string payload_1k)));
    Test.make ~name:"rs/encode-1KiB-k3n10"
      (Staged.stage (fun () ->
           ignore (Crypto.Reed_solomon.encode rs_coder payload_1k)));
    Test.make ~name:"rs/decode-1KiB-k3n10"
      (Staged.stage (fun () ->
           ignore (Crypto.Reed_solomon.decode rs_coder ~data_len:1024 rs_pieces)));
    Test.make ~name:"merkle/build-16"
      (Staged.stage (fun () -> ignore (Crypto.Merkle.build merkle_leaves)));
    Test.make ~name:"merkle/verify"
      (Staged.stage (fun () ->
           ignore
             (Crypto.Merkle.verify
                ~root:(Crypto.Merkle.root merkle_tree)
                ~leaf_count:16 ~leaf:merkle_leaves.(7) merkle_proof)));
    Test.make ~name:"coin/combine-f3"
      (Staged.stage (fun () ->
           ignore (Crypto.Threshold_coin.combine coin ~instance:5 coin_shares)));
    Test.make ~name:"vertex/encode"
      (Staged.stage (fun () -> ignore (Dagrider.Vertex.encode vx)));
    Test.make ~name:"vertex/decode"
      (Staged.stage (fun () ->
           ignore (Dagrider.Vertex.decode ~round:9 ~source:2 vx_payload)));
    Test.make ~name:"dag/strong-path-depth-39"
      (Staged.stage (fun () ->
           ignore
             (Dagrider.Dag.strong_path dag
                { Dagrider.Vertex.round = 40; source = 0 }
                { Dagrider.Vertex.round = 1; source = 3 })));
    Test.make ~name:"dag/causal-history-r40"
      (Staged.stage (fun () ->
           ignore
             (Dagrider.Dag.causal_history dag
                { Dagrider.Vertex.round = 40; source = 0 })));
    (* one Test.make per paper table: scaled-down regeneration cost *)
    Test.make ~name:"table1-comm/dagrider-bracha-n4"
      (Staged.stage (mini_run Harness.Runner.Bracha));
    Test.make ~name:"table1-comm/dagrider-avid-n4"
      (Staged.stage (mini_run Harness.Runner.Avid));
    Test.make ~name:"table1-comm/dagrider-gossip-n4"
      (Staged.stage (mini_run Harness.Runner.Gossip));
    Test.make ~name:"table1-time/vaba-smr-n4"
      (Staged.stage (mini_smr Baselines.Smr.Vaba_smr));
    Test.make ~name:"table1-time/dumbo-smr-n4"
      (Staged.stage (mini_smr Baselines.Smr.Dumbo_smr)) ]

let run_micro () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:100 ~quota:(Time.second 0.25) () in
  print_endline "== E9 / microbenchmarks (Bechamel, monotonic clock) ==";
  Printf.printf "%-36s %14s\n" "benchmark" "time/run";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      Hashtbl.iter
        (fun name result ->
          let ols =
            Analyze.one
              (Analyze.ols ~bootstrap:0 ~r_square:false
                 ~predictors:[| Measure.run |])
              instance result
          in
          match Analyze.OLS.estimates ols with
          | Some [ t ] -> Printf.printf "%-36s %11.0f ns\n" name t
          | Some _ | None -> Printf.printf "%-36s %14s\n" name "n/a")
        results)
    (micro_tests ())

let run_experiment (name, _desc, f) =
  let t0 = Sys.time () in
  let table = f () in
  let dt = Sys.time () -. t0 in
  print_string (Harness.Experiments.render table);
  Printf.printf "  (regenerated in %.1fs cpu)\n\n" dt;
  (name, table)

let write_json path named_tables =
  let entry (name, table) =
    match Harness.Experiments.to_json table with
    | Stdx.Json.Obj fields ->
      Stdx.Json.Obj (("experiment", Stdx.Json.String name) :: fields)
    | other -> other
  in
  let json = Stdx.Json.List (List.map entry named_tables) in
  let oc = open_out path in
  output_string oc (Stdx.Json.to_string json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s (%d experiment%s)\n" path
    (List.length named_tables)
    (if List.length named_tables = 1 then "" else "s")

let default_json_file = "BENCH.json"

(* pull "--json [FILE]" out of the argument list; the remaining
   arguments parse as before *)
let rec extract_json acc = function
  | [] -> (None, List.rev acc)
  | "--json" :: rest -> (
    match rest with
    | file :: more when file = "" || file.[0] <> '-' ->
      (Some file, List.rev_append acc more)
    | _ -> (Some default_json_file, List.rev_append acc rest))
  | a :: rest -> extract_json (a :: acc) rest

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let json_out, args = extract_json [] args in
  let maybe_write tables =
    match json_out with None -> () | Some path -> write_json path tables
  in
  match args with
  | [ "list" ] ->
    List.iter
      (fun (name, desc, _) -> Printf.printf "%-22s %s\n" name desc)
      experiments;
    print_endline "micro                  Bechamel microbenchmarks (E9)"
  | [ "micro" ] -> run_micro ()
  | [ name ] -> (
    match List.find_opt (fun (n, _, _) -> n = name) experiments with
    | Some exp -> maybe_write [ run_experiment exp ]
    | None ->
      Printf.eprintf "unknown experiment %S; try 'list'\n" name;
      exit 1)
  | [] ->
    print_endline
      "DAG-Rider reproduction: regenerating every paper table/figure\n";
    let tables = List.map run_experiment experiments in
    run_micro ();
    maybe_write tables
  | _ ->
    prerr_endline "usage: main.exe [list | micro | <experiment>] [--json [FILE]]";
    exit 1
