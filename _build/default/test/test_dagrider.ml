(* Unit and property tests for the DAG layer: vertex codec and
   validation (Algorithm 1 / Algorithm 2 line 25), and the DAG store's
   reachability semantics (Claim 1's invariant). *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let vref round source = { Dagrider.Vertex.round; source }

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
  m = 0 || go 0

let mkv ~round ~source ?(block = "") ?(strong = []) ?(weak = []) () =
  { Dagrider.Vertex.round;
    source;
    block;
    strong_edges = List.map (fun (r, s) -> vref r s) strong;
    weak_edges = List.map (fun (r, s) -> vref r s) weak }

(* ---- Vertex codec ---- *)

let test_codec_roundtrip_simple () =
  let v =
    mkv ~round:3 ~source:1 ~block:"transactions here"
      ~strong:[ (2, 0); (2, 1); (2, 2) ]
      ~weak:[ (1, 3) ] ()
  in
  match Dagrider.Vertex.decode ~round:3 ~source:1 (Dagrider.Vertex.encode v) with
  | Some v' -> checkb "identical" true (v = v')
  | None -> Alcotest.fail "decode failed"

let test_codec_envelope_wins () =
  (* round/source come from the RBC envelope, not the payload *)
  let v = mkv ~round:3 ~source:1 ~strong:[ (2, 0); (2, 1); (2, 2) ] () in
  match Dagrider.Vertex.decode ~round:9 ~source:2 (Dagrider.Vertex.encode v) with
  | Some v' ->
    checki "envelope round" 9 v'.Dagrider.Vertex.round;
    checki "envelope source" 2 v'.Dagrider.Vertex.source
  | None -> Alcotest.fail "decode failed"

let test_codec_rejects_garbage () =
  checkb "empty" true (Dagrider.Vertex.decode ~round:1 ~source:0 "" = None);
  checkb "truncated" true
    (Dagrider.Vertex.decode ~round:1 ~source:0 "\x00\x00\x00\xFFxx" = None);
  checkb "trailing junk" true
    (let v = mkv ~round:1 ~source:0 ~strong:[ (0, 0) ] () in
     Dagrider.Vertex.decode ~round:1 ~source:0 (Dagrider.Vertex.encode v ^ "z")
     = None)

let test_codec_binary_block () =
  let block = String.init 257 (fun i -> Char.chr (i mod 256)) in
  let v = mkv ~round:2 ~source:0 ~block ~strong:[ (1, 0); (1, 1); (1, 2) ] () in
  match Dagrider.Vertex.decode ~round:2 ~source:0 (Dagrider.Vertex.encode v) with
  | Some v' -> checks "binary block survives" block v'.Dagrider.Vertex.block
  | None -> Alcotest.fail "decode failed"

let prop_codec_roundtrip =
  let gen =
    QCheck.Gen.(
      let* round = int_range 2 40 in
      let* source = int_range 0 9 in
      let* block = string_size (int_range 0 300) in
      let* n_strong = int_range 3 10 in
      let* strong_sources = list_repeat n_strong (int_range 0 9) in
      let* weak_rounds = list_size (int_range 0 4) (int_range 1 (max 1 (round - 2))) in
      let strong =
        List.mapi (fun i s -> (round - 1, (s + i) mod 10)) strong_sources
        |> List.sort_uniq compare
      in
      let weak =
        List.mapi (fun i r -> (r, i mod 10)) weak_rounds |> List.sort_uniq compare
      in
      (* drop weak refs colliding with strong refs *)
      let weak = List.filter (fun w -> not (List.mem w strong)) weak in
      return (round, source, block, strong, weak))
  in
  QCheck.Test.make ~name:"vertex codec roundtrip" ~count:300
    (QCheck.make gen) (fun (round, source, block, strong, weak) ->
      let v = mkv ~round ~source ~block ~strong ~weak () in
      Dagrider.Vertex.decode ~round ~source (Dagrider.Vertex.encode v) = Some v)

(* ---- Vertex validation ---- *)

let ok = function Ok () -> true | Error _ -> false

let test_validate_accepts_good () =
  let v =
    mkv ~round:3 ~source:0 ~strong:[ (2, 0); (2, 1); (2, 2) ] ~weak:[ (1, 3) ] ()
  in
  checkb "valid" true (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v))

let test_validate_rejects_too_few_strong () =
  let v = mkv ~round:3 ~source:0 ~strong:[ (2, 0); (2, 1) ] () in
  checkb "2 < 2f+1" false (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v))

let test_validate_rejects_wrong_round_strong () =
  let v = mkv ~round:3 ~source:0 ~strong:[ (1, 0); (2, 1); (2, 2) ] () in
  checkb "strong edge to r-2" false (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v))

let test_validate_rejects_weak_to_previous_round () =
  let v =
    mkv ~round:3 ~source:0 ~strong:[ (2, 0); (2, 1); (2, 2) ] ~weak:[ (2, 3) ] ()
  in
  checkb "weak edge to r-1" false (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v))

let test_validate_rejects_weak_in_round_one () =
  let v =
    mkv ~round:1 ~source:0 ~strong:[ (0, 0); (0, 1); (0, 2) ] ~weak:[ (1, 3) ] ()
  in
  checkb "round-1 vertex cannot have weak edges" false
    (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v))

let test_validate_rejects_round_zero () =
  let v = mkv ~round:0 ~source:0 () in
  checkb "round 0 not broadcastable" false (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v))

let test_validate_rejects_bad_source () =
  let v = mkv ~round:3 ~source:7 ~strong:[ (2, 0); (2, 1); (2, 2) ] () in
  checkb "source out of range" false (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v));
  let v2 = mkv ~round:3 ~source:0 ~strong:[ (2, 0); (2, 1); (2, 9) ] () in
  checkb "edge source out of range" false (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v2))

let test_validate_rejects_duplicate_edges () =
  let v =
    mkv ~round:3 ~source:0 ~strong:[ (2, 0); (2, 0); (2, 1) ] ()
  in
  checkb "duplicate strong" false (ok (Dagrider.Vertex.validate ~n:4 ~f:1 v))

let test_validate_error_messages_name_rule () =
  (match
     Dagrider.Vertex.validate ~n:4 ~f:1
       (mkv ~round:3 ~source:0 ~strong:[ (2, 0) ] ())
   with
  | Error msg -> checkb "mentions strong edges" true
      (contains msg "strong")
  | Ok () -> Alcotest.fail "should reject")

(* ---- Dag store ---- *)

let full_round dag ~n ~round =
  (* add n vertices at [round], each pointing to all of round-1 *)
  let prev =
    List.map Dagrider.Vertex.vref_of (Dagrider.Dag.round_vertices dag (round - 1))
  in
  for source = 0 to n - 1 do
    Dagrider.Dag.add dag
      { Dagrider.Vertex.round;
        source;
        block = Printf.sprintf "b%d.%d" round source;
        strong_edges = prev;
        weak_edges = [] }
  done

let test_dag_genesis () =
  let dag = Dagrider.Dag.create ~n:4 in
  checki "genesis size" 4 (Dagrider.Dag.round_size dag 0);
  checki "round 1 empty" 0 (Dagrider.Dag.round_size dag 1);
  checki "highest" 0 (Dagrider.Dag.highest_round dag);
  checkb "genesis present" true (Dagrider.Dag.contains dag (vref 0 2))

let test_dag_add_and_lookup () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  checki "round 1 full" 4 (Dagrider.Dag.round_size dag 1);
  checki "highest" 1 (Dagrider.Dag.highest_round dag);
  match Dagrider.Dag.find dag (vref 1 2) with
  | Some v -> checks "block" "b1.2" v.Dagrider.Vertex.block
  | None -> Alcotest.fail "vertex missing"

let test_dag_missing_predecessor_rejected () =
  let dag = Dagrider.Dag.create ~n:4 in
  let orphan =
    mkv ~round:2 ~source:0 ~strong:[ (1, 0); (1, 1); (1, 2) ] ()
  in
  checkb "can_add false" false (Dagrider.Dag.can_add dag orphan);
  Alcotest.check_raises "add raises"
    (Invalid_argument "Dag.add: missing predecessor") (fun () ->
      Dagrider.Dag.add dag orphan)

let test_dag_conflicting_vertex_rejected () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  let conflicting =
    mkv ~round:1 ~source:0 ~block:"different"
      ~strong:[ (0, 0); (0, 1); (0, 2); (0, 3) ] ()
  in
  Alcotest.check_raises "equivocation caught"
    (Invalid_argument "Dag.add: conflicting vertex for (round, source)")
    (fun () -> Dagrider.Dag.add dag conflicting)

let test_dag_readd_identical_noop () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  let v = Option.get (Dagrider.Dag.find dag (vref 1 0)) in
  Dagrider.Dag.add dag v;
  checki "still 4" 4 (Dagrider.Dag.round_size dag 1)

let test_dag_strong_path_reflexive_and_transitive () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  full_round dag ~n:4 ~round:2;
  full_round dag ~n:4 ~round:3;
  checkb "reflexive" true (Dagrider.Dag.strong_path dag (vref 2 1) (vref 2 1));
  checkb "one hop" true (Dagrider.Dag.strong_path dag (vref 2 1) (vref 1 3));
  checkb "two hops" true (Dagrider.Dag.strong_path dag (vref 3 0) (vref 1 2));
  checkb "no forward path" false (Dagrider.Dag.strong_path dag (vref 1 0) (vref 2 0));
  checkb "absent target" false (Dagrider.Dag.strong_path dag (vref 3 0) (vref 2 9))

let test_dag_weak_edges_only_in_path () =
  let dag = Dagrider.Dag.create ~n:4 in
  (* round 1: only 3 vertices (p3 slow) *)
  let prev = List.map Dagrider.Vertex.vref_of (Dagrider.Dag.round_vertices dag 0) in
  for source = 0 to 2 do
    Dagrider.Dag.add dag
      { Dagrider.Vertex.round = 1; source; block = ""; strong_edges = prev;
        weak_edges = [] }
  done;
  (* round 2: 3 vertices pointing to those *)
  let r1 = List.map Dagrider.Vertex.vref_of (Dagrider.Dag.round_vertices dag 1) in
  for source = 0 to 2 do
    Dagrider.Dag.add dag
      { Dagrider.Vertex.round = 2; source; block = ""; strong_edges = r1;
        weak_edges = [] }
  done;
  (* now p3's round-1 vertex arrives late *)
  Dagrider.Dag.add dag
    { Dagrider.Vertex.round = 1; source = 3; block = "late"; strong_edges = prev;
      weak_edges = [] };
  (* a round-3 vertex weak-links it *)
  let r2 = List.map Dagrider.Vertex.vref_of (Dagrider.Dag.round_vertices dag 2) in
  Dagrider.Dag.add dag
    { Dagrider.Vertex.round = 3; source = 0; block = ""; strong_edges = r2;
      weak_edges = [ vref 1 3 ] };
  checkb "strong_path misses late vertex" false
    (Dagrider.Dag.strong_path dag (vref 3 0) (vref 1 3));
  checkb "path reaches via weak edge" true
    (Dagrider.Dag.path dag (vref 3 0) (vref 1 3))

let test_dag_causal_history_complete_and_sorted () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  full_round dag ~n:4 ~round:2;
  full_round dag ~n:4 ~round:3;
  let hist = Dagrider.Dag.causal_history dag (vref 3 1) in
  (* full DAG: history of a round-3 vertex = rounds 1,2 fully + itself *)
  checki "size" 9 (List.length hist);
  let refs = List.map Dagrider.Vertex.vref_of hist in
  checkb "sorted" true (refs = List.sort Dagrider.Vertex.compare_vref refs);
  checkb "excludes genesis" true
    (List.for_all (fun (r : Dagrider.Vertex.vref) -> r.Dagrider.Vertex.round >= 1) refs);
  checkb "includes itself" true (List.mem (vref 3 1) refs)

let test_dag_causal_history_partial () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  (* round 2: vertex from p0 pointing to only 3 of round 1 *)
  Dagrider.Dag.add dag
    { Dagrider.Vertex.round = 2; source = 0; block = "";
      strong_edges = [ vref 1 0; vref 1 1; vref 1 2 ];
      weak_edges = [] };
  let hist = Dagrider.Dag.causal_history dag (vref 2 0) in
  checki "only reachable vertices" 4 (List.length hist);
  checkb "p3's round-1 vertex excluded" true
    (not (List.exists (fun v -> Dagrider.Vertex.vref_of v = vref 1 3) hist))

let test_dag_vertices_listing () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  full_round dag ~n:4 ~round:2;
  checki "8 non-genesis" 8 (List.length (Dagrider.Dag.vertices dag))

let test_dag_prune () =
  let dag = Dagrider.Dag.create ~n:4 in
  for r = 1 to 6 do
    full_round dag ~n:4 ~round:r
  done;
  Dagrider.Dag.prune_below dag ~round:3;
  checki "round 2 gone" 0 (Dagrider.Dag.round_size dag 2);
  checki "round 3 kept" 4 (Dagrider.Dag.round_size dag 3);
  (* a new vertex whose edges point into pruned rounds can still be
     added (its targets were delivered before pruning) *)
  let v =
    mkv ~round:3 ~source:0 ~strong:[ (2, 0); (2, 1); (2, 2) ] ()
  in
  checkb "edges into pruned rounds satisfied" true (Dagrider.Dag.can_add dag v);
  (* reachability stops at the pruned frontier instead of crashing *)
  checkb "path query safe" false (Dagrider.Dag.path dag (vref 4 0) (vref 1 1))

let prop_dag_path_strong_implies_path =
  QCheck.Test.make ~name:"strong_path implies path" ~count:50
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Stdx.Rng.create seed in
      let n = 4 in
      let dag = Dagrider.Dag.create ~n in
      (* random partial rounds, each vertex points to 3 random vertices
         of the previous round when available *)
      for round = 1 to 5 do
        let prev = Dagrider.Dag.round_vertices dag (round - 1) in
        if List.length prev >= 3 then
          for source = 0 to n - 1 do
            if Stdx.Rng.bool rng || round = 1 then begin
              let prev_arr = Array.of_list prev in
              Stdx.Rng.shuffle rng prev_arr;
              let strong =
                Array.to_list (Array.sub prev_arr 0 3)
                |> List.map Dagrider.Vertex.vref_of
              in
              Dagrider.Dag.add dag
                { Dagrider.Vertex.round; source; block = "";
                  strong_edges = strong; weak_edges = [] }
            end
          done
      done;
      let vs = Dagrider.Dag.vertices dag in
      List.for_all
        (fun v ->
          List.for_all
            (fun u ->
              let a = Dagrider.Vertex.vref_of v in
              let b = Dagrider.Vertex.vref_of u in
              (not (Dagrider.Dag.strong_path dag a b)) || Dagrider.Dag.path dag a b)
            vs)
        vs)

let prop_dag_causal_history_closed =
  QCheck.Test.make ~name:"causal history is edge-closed" ~count:50
    (QCheck.int_range 0 10_000) (fun seed ->
      let rng = Stdx.Rng.create seed in
      let n = 4 in
      let dag = Dagrider.Dag.create ~n in
      for round = 1 to 4 do
        let prev = Dagrider.Dag.round_vertices dag (round - 1) in
        if List.length prev >= 3 then
          for source = 0 to n - 1 do
            let prev_arr = Array.of_list prev in
            Stdx.Rng.shuffle rng prev_arr;
            let strong =
              Array.to_list (Array.sub prev_arr 0 3)
              |> List.map Dagrider.Vertex.vref_of
            in
            Dagrider.Dag.add dag
              { Dagrider.Vertex.round; source; block = "";
                strong_edges = strong; weak_edges = [] }
          done
      done;
      List.for_all
        (fun v ->
          let hist = Dagrider.Dag.causal_history dag (Dagrider.Vertex.vref_of v) in
          let in_hist (r : Dagrider.Vertex.vref) =
            r.Dagrider.Vertex.round = 0
            || List.exists (fun u -> Dagrider.Vertex.vref_of u = r) hist
          in
          List.for_all
            (fun u ->
              List.for_all in_hist
                (u.Dagrider.Vertex.strong_edges @ u.Dagrider.Vertex.weak_edges))
            hist)
        (Dagrider.Dag.vertices dag))

(* ---- Snapshot ---- *)

let test_snapshot_roundtrip_full () =
  let dag = Dagrider.Dag.create ~n:4 in
  for r = 1 to 6 do
    full_round dag ~n:4 ~round:r
  done;
  match Dagrider.Snapshot.dag_of_string (Dagrider.Snapshot.dag_to_string dag) with
  | Error e -> Alcotest.fail e
  | Ok dag' ->
    checki "same n" 4 (Dagrider.Dag.n dag');
    checkb "same vertex set" true
      (Dagrider.Dag.vertices dag = Dagrider.Dag.vertices dag');
    checkb "reachability preserved" true
      (Dagrider.Dag.strong_path dag' (vref 6 0) (vref 1 3))

let test_snapshot_roundtrip_live_node () =
  (* snapshot a DAG produced by an actual protocol run (weak edges,
     partial rounds and all) *)
  let h = Harness.Runner.build { (Harness.Runner.default_options ~n:4) with seed = 71 } in
  Harness.Runner.run h ~until:40.0;
  let dag = Dagrider.Node.dag (Harness.Runner.node h 0) in
  match Dagrider.Snapshot.dag_of_string (Dagrider.Snapshot.dag_to_string dag) with
  | Error e -> Alcotest.fail e
  | Ok dag' ->
    checkb "identical vertex sets" true
      (Dagrider.Dag.vertices dag = Dagrider.Dag.vertices dag');
    (* causal histories agree on a sample vertex *)
    let some_vertex =
      List.nth (Dagrider.Dag.vertices dag) (List.length (Dagrider.Dag.vertices dag) / 2)
    in
    let r = Dagrider.Vertex.vref_of some_vertex in
    checkb "same causal history" true
      (Dagrider.Dag.causal_history dag r = Dagrider.Dag.causal_history dag' r)

let test_snapshot_detects_corruption () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  let snap = Dagrider.Snapshot.dag_to_string dag in
  (* flip a byte in the middle *)
  let corrupted = Bytes.of_string snap in
  Bytes.set corrupted (String.length snap / 2)
    (Char.chr (Char.code (Bytes.get corrupted (String.length snap / 2)) lxor 1));
  (match Dagrider.Snapshot.dag_of_string (Bytes.to_string corrupted) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption undetected");
  (* truncation *)
  (match Dagrider.Snapshot.dag_of_string (String.sub snap 0 (String.length snap - 5)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncation undetected");
  (* garbage *)
  match Dagrider.Snapshot.dag_of_string "not a snapshot at all" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage accepted"

let test_snapshot_delivered_roundtrip () =
  let refs = [ vref 1 0; vref 1 2; vref 2 1; vref 3 3 ] in
  (match
     Dagrider.Snapshot.delivered_of_string
       (Dagrider.Snapshot.delivered_to_string refs)
   with
  | Ok refs' -> checkb "roundtrip" true (refs = refs')
  | Error e -> Alcotest.fail e);
  (match Dagrider.Snapshot.delivered_of_string "junk" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted");
  match
    Dagrider.Snapshot.delivered_of_string (Dagrider.Snapshot.delivered_to_string [])
  with
  | Ok [] -> ()
  | Ok _ -> Alcotest.fail "empty list mangled"
  | Error e -> Alcotest.fail e

let prop_snapshot_roundtrip =
  QCheck.Test.make ~name:"snapshot roundtrips random protocol DAGs" ~count:20
    (QCheck.int_range 0 10_000) (fun seed ->
      let h =
        Harness.Runner.build { (Harness.Runner.default_options ~n:4) with seed }
      in
      Harness.Runner.run h ~until:20.0;
      let dag = Dagrider.Node.dag (Harness.Runner.node h 0) in
      match
        Dagrider.Snapshot.dag_of_string (Dagrider.Snapshot.dag_to_string dag)
      with
      | Ok dag' -> Dagrider.Dag.vertices dag = Dagrider.Dag.vertices dag'
      | Error _ -> false)

(* ---- Render smoke tests ---- *)

let test_render_ascii () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  full_round dag ~n:4 ~round:2;
  let out = Dagrider.Render.ascii dag in
  checkb "mentions p0" true (contains out "p0");
  checkb "has vertices" true (contains out "*")

let test_render_dot () =
  let dag = Dagrider.Dag.create ~n:4 in
  full_round dag ~n:4 ~round:1;
  full_round dag ~n:4 ~round:2;
  let out = Dagrider.Render.dot dag in
  checkb "digraph" true (contains out "digraph");
  checkb "edges" true (contains out "->")

let () =
  Alcotest.run "dagrider-core"
    [ ( "vertex-codec",
        [ Alcotest.test_case "roundtrip" `Quick test_codec_roundtrip_simple;
          Alcotest.test_case "envelope wins" `Quick test_codec_envelope_wins;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "binary block" `Quick test_codec_binary_block;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip ] );
      ( "vertex-validate",
        [ Alcotest.test_case "accepts good" `Quick test_validate_accepts_good;
          Alcotest.test_case "too few strong" `Quick test_validate_rejects_too_few_strong;
          Alcotest.test_case "wrong round strong" `Quick
            test_validate_rejects_wrong_round_strong;
          Alcotest.test_case "weak to r-1" `Quick
            test_validate_rejects_weak_to_previous_round;
          Alcotest.test_case "weak in round 1" `Quick
            test_validate_rejects_weak_in_round_one;
          Alcotest.test_case "round zero" `Quick test_validate_rejects_round_zero;
          Alcotest.test_case "bad source" `Quick test_validate_rejects_bad_source;
          Alcotest.test_case "duplicate edges" `Quick test_validate_rejects_duplicate_edges;
          Alcotest.test_case "error names rule" `Quick
            test_validate_error_messages_name_rule ] );
      ( "dag",
        [ Alcotest.test_case "genesis" `Quick test_dag_genesis;
          Alcotest.test_case "add and lookup" `Quick test_dag_add_and_lookup;
          Alcotest.test_case "missing predecessor" `Quick
            test_dag_missing_predecessor_rejected;
          Alcotest.test_case "conflicting vertex" `Quick
            test_dag_conflicting_vertex_rejected;
          Alcotest.test_case "re-add identical" `Quick test_dag_readd_identical_noop;
          Alcotest.test_case "strong path semantics" `Quick
            test_dag_strong_path_reflexive_and_transitive;
          Alcotest.test_case "weak edge reachability" `Quick
            test_dag_weak_edges_only_in_path;
          Alcotest.test_case "causal history full" `Quick
            test_dag_causal_history_complete_and_sorted;
          Alcotest.test_case "causal history partial" `Quick
            test_dag_causal_history_partial;
          Alcotest.test_case "vertices listing" `Quick test_dag_vertices_listing;
          Alcotest.test_case "prune" `Quick test_dag_prune;
          QCheck_alcotest.to_alcotest prop_dag_path_strong_implies_path;
          QCheck_alcotest.to_alcotest prop_dag_causal_history_closed ] );
      ( "snapshot",
        [ Alcotest.test_case "roundtrip full" `Quick test_snapshot_roundtrip_full;
          Alcotest.test_case "roundtrip live node" `Quick
            test_snapshot_roundtrip_live_node;
          Alcotest.test_case "detects corruption" `Quick test_snapshot_detects_corruption;
          Alcotest.test_case "delivered roundtrip" `Quick
            test_snapshot_delivered_roundtrip;
          QCheck_alcotest.to_alcotest prop_snapshot_roundtrip ] );
      ( "render",
        [ Alcotest.test_case "ascii" `Quick test_render_ascii;
          Alcotest.test_case "dot" `Quick test_render_dot ] )
    ]
