(* Tests for the distributed key generation ceremony (the paper's §2
   trusted-dealer relaxation): keys aggregate to one degree-f sharing,
   the derived coin works, share recovery handles withheld deals, and
   silent dealers are excluded. *)

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

type ceremony = {
  engine : Sim.Engine.t;
  parties : Adkg.t array;
  keys : int option array;
  quals : int list option array;
}

let make_ceremony ?(seed = 3) ?(n = 4) ?(sched_wrap = fun s -> s)
    ?(mute = []) () =
  let f = (n - 1) / 3 in
  let rng = Stdx.Rng.create seed in
  let engine = Sim.Engine.create () in
  let counters = Metrics.Counters.create () in
  let sched = sched_wrap (Net.Sched.uniform_random ~rng:(Stdx.Rng.split rng)) in
  let net = Net.Network.create ~engine ~sched ~counters ~n in
  let vaba_net = Net.Network.create ~engine ~sched ~counters ~n in
  let auth = Crypto.Auth.setup ~rng:(Stdx.Rng.split rng) ~n in
  let bootstrap_coin =
    Crypto.Threshold_coin.setup ~rng:(Stdx.Rng.split rng) ~n ~f
  in
  let keys = Array.make n None in
  let quals = Array.make n None in
  let parties =
    Array.init n (fun me ->
        Adkg.create ~net ~vaba_net ~auth ~bootstrap_coin
          ~rng:(Stdx.Rng.split rng) ~me ~f
          ~on_key:(fun ~key ~qualified ->
            keys.(me) <- Some key;
            quals.(me) <- Some qualified)
          ())
  in
  Array.iteri
    (fun i p ->
      if List.mem i mute then begin
        Net.Network.register net i (fun ~src:_ _ -> ());
        Net.Network.register vaba_net i (fun ~src:_ _ -> ())
      end
      else Adkg.start p)
    parties;
  { engine; parties; keys; quals }

let run c = ignore (Sim.Engine.run c.engine ~until:500.0 ())

let test_happy_path_all_keys () =
  let c = make_ceremony ~n:4 () in
  run c;
  Array.iteri
    (fun i k -> checkb (Printf.sprintf "p%d has key" i) true (k <> None))
    c.keys;
  (* everyone decided the same qualified set *)
  let qs = Array.to_list c.quals |> List.filter_map Fun.id in
  checki "all reported" 4 (List.length qs);
  checki "identical sets" 1 (List.length (List.sort_uniq compare qs));
  checkb "at least f+1 dealers" true (List.length (List.hd qs) >= 2)

let test_keys_form_degree_f_sharing () =
  let n = 4 and f = 1 in
  let c = make_ceremony ~n () in
  run c;
  let keys = Array.map Option.get c.keys in
  let q = Option.get c.quals.(0) in
  (* expected master secret: sum of qualified dealers' polynomial
     constants (exposed by the testing hook) *)
  let expected =
    List.fold_left
      (fun acc dealer ->
        match Adkg.derived_secret c.parties.(dealer) with
        | Some s -> Crypto.Field.add acc (Crypto.Field.of_int s)
        | None -> Alcotest.fail "qualified dealer lacks secret")
      0 q
  in
  (* every (f+1)-subset of keys interpolates to the same master secret *)
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let secret =
        Crypto.Field.lagrange_at_zero [ (i + 1, keys.(i)); (j + 1, keys.(j)) ]
      in
      checki (Printf.sprintf "pair (%d,%d)" i j) expected secret
    done
  done;
  ignore f

let test_derived_coin_works () =
  let n = 4 and f = 1 in
  let c = make_ceremony ~n () in
  run c;
  let keys = Array.map Option.get c.keys in
  let coin = Crypto.Threshold_coin.of_keys ~n ~f ~keys in
  (* shares verify and any f+1 subset elects the same leader *)
  let shares =
    List.init n (fun holder ->
        Crypto.Threshold_coin.make_share coin ~holder ~instance:7)
  in
  List.iter
    (fun s -> checkb "share verifies" true (Crypto.Threshold_coin.verify_share coin s))
    shares;
  let expected =
    Crypto.Threshold_coin.combine coin ~instance:7
      (List.filteri (fun i _ -> i < 2) shares)
  in
  checkb "resolves" true (expected <> None);
  for offset = 1 to 2 do
    let subset = List.filteri (fun i _ -> i >= offset && i < offset + 2) shares in
    checkb "agreement" true
      (Crypto.Threshold_coin.combine coin ~instance:7 subset = expected)
  done

let test_share_recovery_path () =
  (* dealer p0's private deal to p3 is delayed 2000x: p3 must finish via
     the recovery protocol long before that message lands *)
  let sched_wrap inner =
    Net.Sched.delay_matching ~inner
      ~pred:(fun ~src ~dst ~kind -> kind = "adkg-deal" && src = 0 && dst = 3)
      ~factor:2000.0
  in
  let c = make_ceremony ~seed:5 ~n:4 ~sched_wrap () in
  ignore (Sim.Engine.run c.engine ~until:400.0 ());
  (match c.quals.(3) with
  | Some q when List.mem 0 q ->
    (* p3 needed dealer 0's share and could not have received the deal *)
    checkb "p3 recovered its share" true (c.keys.(3) <> None)
  | Some _ ->
    (* dealer 0 not qualified on this seed: recovery not exercised;
       still expect completion *)
    checkb "p3 finished" true (c.keys.(3) <> None)
  | None -> Alcotest.fail "p3 never finished (recovery failed)");
  (* and the sharing is still consistent *)
  let keys = Array.map Option.get c.keys in
  let s01 = Crypto.Field.lagrange_at_zero [ (1, keys.(0)); (2, keys.(1)) ] in
  let s23 = Crypto.Field.lagrange_at_zero [ (3, keys.(2)); (4, keys.(3)) ] in
  checki "recovered key on the same polynomial" s01 s23

let test_silent_dealers_excluded () =
  let n = 7 in
  let c = make_ceremony ~seed:8 ~n ~mute:[ 5; 6 ] () in
  run c;
  for i = 0 to 4 do
    checkb (Printf.sprintf "p%d finished" i) true (c.keys.(i) <> None);
    match c.quals.(i) with
    | Some q ->
      checkb "silent dealers not qualified" true
        (not (List.mem 5 q || List.mem 6 q))
    | None -> Alcotest.fail "no qualified set"
  done;
  (* the sharing among live parties is consistent *)
  let k i = Option.get c.keys.(i) in
  let a =
    Crypto.Field.lagrange_at_zero [ (1, k 0); (2, k 1); (3, k 2) ]
  in
  let b =
    Crypto.Field.lagrange_at_zero [ (3, k 2); (4, k 3); (5, k 4) ]
  in
  checki "consistent sharing" a b

let test_determinism () =
  let result seed =
    let c = make_ceremony ~seed ~n:4 () in
    run c;
    (Array.map Option.get c.keys, Option.get c.quals.(0))
  in
  checkb "same seed same ceremony" true (result 11 = result 11);
  (* different seeds give different keys (overwhelmingly) *)
  let k1, _ = result 11 and k2, _ = result 12 in
  checkb "different seeds differ" true (k1 <> k2)

let test_many_seeds_complete () =
  List.iter
    (fun seed ->
      let c = make_ceremony ~seed ~n:4 () in
      run c;
      Array.iteri
        (fun i k ->
          checkb (Printf.sprintf "seed %d p%d key" seed i) true (k <> None))
        c.keys)
    [ 20; 21; 22; 23; 24; 25 ]

let () =
  Alcotest.run "adkg"
    [ ( "ceremony",
        [ Alcotest.test_case "happy path" `Quick test_happy_path_all_keys;
          Alcotest.test_case "degree-f sharing" `Quick test_keys_form_degree_f_sharing;
          Alcotest.test_case "derived coin" `Quick test_derived_coin_works;
          Alcotest.test_case "share recovery" `Quick test_share_recovery_path;
          Alcotest.test_case "silent dealers excluded" `Quick
            test_silent_dealers_excluded;
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "many seeds" `Slow test_many_seeds_complete ] )
    ]
