test/test_sim_net.mli:
