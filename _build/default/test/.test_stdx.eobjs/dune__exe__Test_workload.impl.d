test/test_workload.ml: Alcotest Array Dagrider Harness List Printf String Workload
