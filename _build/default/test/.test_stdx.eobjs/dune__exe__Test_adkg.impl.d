test/test_adkg.ml: Adkg Alcotest Array Crypto Fun List Metrics Net Option Printf Sim Stdx
