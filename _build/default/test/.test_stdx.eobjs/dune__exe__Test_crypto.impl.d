test/test_crypto.ml: Alcotest Array Char Crypto List Printf QCheck QCheck_alcotest Stdx String
