test/test_adkg.mli:
