test/test_stdx.ml: Alcotest Array Fun List QCheck QCheck_alcotest Stdx String
