test/test_dagrider.mli:
