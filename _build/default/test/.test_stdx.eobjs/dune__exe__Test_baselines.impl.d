test/test_baselines.ml: Alcotest Array Baselines Char Crypto Fun List Metrics Net Option Printf Sim Stdx String
