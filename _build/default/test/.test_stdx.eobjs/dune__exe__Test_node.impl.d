test/test_node.ml: Alcotest Crypto Dagrider Harness List Metrics Net Option Printf Sim Stdx
