test/test_integration.ml: Alcotest Array Dagrider Harness List Metrics Net Printf QCheck QCheck_alcotest Stdx
