test/test_abba_aleph.ml: Alcotest Array Baselines Crypto Dagrider Fun Harness List Metrics Net Option Printf Seq Sim Stdx
