test/test_ordering.ml: Alcotest Dagrider Hashtbl List Option Printf
