test/test_sim_net.ml: Alcotest Array List Metrics Net Printf Sim Stdx
