test/test_abba_aleph.mli:
