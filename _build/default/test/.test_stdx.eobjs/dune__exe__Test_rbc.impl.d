test/test_rbc.ml: Alcotest Array Char Crypto List Metrics Net Printf QCheck QCheck_alcotest Rbc Sim Stdx String
