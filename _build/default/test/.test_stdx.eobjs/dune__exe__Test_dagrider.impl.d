test/test_dagrider.ml: Alcotest Array Bytes Char Dagrider Harness List Option Printf QCheck QCheck_alcotest Stdx String
